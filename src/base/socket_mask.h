/**
 * @file
 * Bitmask of NUMA sockets, the currency of Mitosis replication policy.
 *
 * Mirrors the nodemask passed to the paper's libnuma extension
 * numa_set_pgtable_replication_mask(): N set bits request page-table
 * replicas on N sockets; the empty mask restores native behaviour.
 */

#ifndef MITOSIM_BASE_SOCKET_MASK_H
#define MITOSIM_BASE_SOCKET_MASK_H

#include <cstdint>
#include <string>

#include "src/base/logging.h"
#include "src/base/types.h"

namespace mitosim
{

/** Up to 64 sockets, plenty for the 16-replica Table 4 sweep. */
class SocketMask
{
  public:
    constexpr SocketMask() = default;

    /** Mask with sockets [0, n) set. */
    static constexpr SocketMask
    all(int n)
    {
        SocketMask m;
        m.bits = (n >= 64) ? ~0ull : ((1ull << n) - 1);
        return m;
    }

    /** Mask with exactly one socket set. */
    static constexpr SocketMask
    single(SocketId s)
    {
        SocketMask m;
        m.bits = 1ull << s;
        return m;
    }

    static constexpr SocketMask none() { return SocketMask{}; }

    constexpr bool contains(SocketId s) const
    {
        return s >= 0 && s < 64 && (bits >> s) & 1;
    }

    constexpr bool empty() const { return bits == 0; }

    constexpr int count() const { return __builtin_popcountll(bits); }

    void set(SocketId s)
    {
        MITOSIM_ASSERT(s >= 0 && s < 64);
        bits |= 1ull << s;
    }

    void clear(SocketId s)
    {
        MITOSIM_ASSERT(s >= 0 && s < 64);
        bits &= ~(1ull << s);
    }

    /** Lowest set socket id, or InvalidSocket when empty. */
    SocketId
    first() const
    {
        return bits ? __builtin_ctzll(bits) : InvalidSocket;
    }

    /** Next set socket id strictly above @p s, or InvalidSocket. */
    SocketId
    nextAfter(SocketId s) const
    {
        std::uint64_t rest = bits & ~((s >= 63) ? ~0ull : ((2ull << s) - 1));
        return rest ? __builtin_ctzll(rest) : InvalidSocket;
    }

    constexpr bool operator==(const SocketMask &o) const = default;

    constexpr SocketMask
    operator|(const SocketMask &o) const
    {
        SocketMask m;
        m.bits = bits | o.bits;
        return m;
    }

    constexpr SocketMask
    operator&(const SocketMask &o) const
    {
        SocketMask m;
        m.bits = bits & o.bits;
        return m;
    }

    std::uint64_t raw() const { return bits; }

    /** e.g. "{0,2,3}" */
    std::string
    str() const
    {
        std::string s = "{";
        bool first_one = true;
        for (SocketId i = 0; i < 64; ++i) {
            if (contains(i)) {
                if (!first_one)
                    s += ",";
                s += std::to_string(i);
                first_one = false;
            }
        }
        return s + "}";
    }

  private:
    std::uint64_t bits = 0;
};

} // namespace mitosim

#endif // MITOSIM_BASE_SOCKET_MASK_H
