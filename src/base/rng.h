/**
 * @file
 * Deterministic pseudo-random number generation for workloads and policies.
 *
 * MitoSim runs must be bit-for-bit reproducible: every component that needs
 * randomness owns an Rng seeded from the experiment configuration. The
 * generator is xoshiro256** (public domain, Blackman & Vigna), chosen for
 * speed and statistical quality in address-stream generation.
 */

#ifndef MITOSIM_BASE_RNG_H
#define MITOSIM_BASE_RNG_H

#include <cstdint>

namespace mitosim
{

/** xoshiro256** deterministic PRNG. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed (any value is fine). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free mapping is fine here:
        // slight bias is irrelevant for workload streams.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Approximate Zipf-like skew: picks in [0, n) where low indices are
     * exponentially more likely. Models hot-key popularity in key-value
     * store workloads without the cost of a true Zipf sampler.
     */
    std::uint64_t
    skewed(std::uint64_t n, double hot_fraction = 0.2,
           double hot_probability = 0.8)
    {
        std::uint64_t hot = static_cast<std::uint64_t>(
            static_cast<double>(n) * hot_fraction);
        if (hot == 0)
            hot = 1;
        if (chance(hot_probability))
            return below(hot);
        return below(n);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t state[4];
};

} // namespace mitosim

#endif // MITOSIM_BASE_RNG_H
