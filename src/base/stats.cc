#include "stats.h"

#include <cmath>

#include "src/base/logging.h"

namespace mitosim
{

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

std::string
Summary::str() const
{
    return format("mean=%.3f min=%.3f max=%.3f sd=%.3f n=%llu", mean(),
                  min(), max(), stddev(),
                  static_cast<unsigned long long>(n));
}

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : width(bucket_width), counts(num_buckets, 0)
{
    MITOSIM_ASSERT(bucket_width > 0 && num_buckets > 0);
}

void
Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    std::size_t bucket = static_cast<std::size_t>(value / width);
    if (bucket >= counts.size())
        overflow_ += weight;
    else
        counts[bucket] += weight;
    total_ += weight;
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0;
    std::uint64_t target = static_cast<std::uint64_t>(
        p * static_cast<double>(total_));
    if (target == 0)
        target = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen >= target)
            return (i + 1) * width - 1;
    }
    return counts.size() * width; // in the overflow bucket
}

std::string
Histogram::str() const
{
    std::string out;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        out += format("[%llu,%llu): %llu\n",
                      static_cast<unsigned long long>(i * width),
                      static_cast<unsigned long long>((i + 1) * width),
                      static_cast<unsigned long long>(counts[i]));
    }
    if (overflow_)
        out += format("overflow: %llu\n",
                      static_cast<unsigned long long>(overflow_));
    return out;
}

} // namespace mitosim
