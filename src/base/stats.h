/**
 * @file
 * Small statistics helpers: streaming summaries and fixed-bucket histograms.
 *
 * Used by benches to report means/percentiles and by the analysis module to
 * summarize page-table distributions.
 */

#ifndef MITOSIM_BASE_STATS_H
#define MITOSIM_BASE_STATS_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace mitosim
{

/** Streaming min/max/mean/stddev accumulator (Welford). */
class Summary
{
  public:
    void
    add(double x)
    {
        ++n;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n);
        m2 += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    std::uint64_t count() const { return n; }
    double mean() const { return n ? mean_ : 0.0; }
    double min() const { return n ? min_ : 0.0; }
    double max() const { return n ? max_ : 0.0; }

    double
    variance() const
    {
        return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
    }

    double stddev() const;

    /** "mean=... min=... max=... n=..." */
    std::string str() const;

  private:
    std::uint64_t n = 0;
    double mean_ = 0.0;
    double m2 = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

/** Histogram over [0, bucket_width * num_buckets) with overflow bucket. */
class Histogram
{
  public:
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets);

    void add(std::uint64_t value, std::uint64_t weight = 1);

    std::uint64_t total() const { return total_; }
    std::size_t numBuckets() const { return counts.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts.at(i); }
    std::uint64_t overflow() const { return overflow_; }

    /** Smallest value v such that at least fraction p of samples are <= v. */
    std::uint64_t percentile(double p) const;

    std::string str() const;

  private:
    std::uint64_t width;
    std::vector<std::uint64_t> counts;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace mitosim

#endif // MITOSIM_BASE_STATS_H
