/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * - panic():  an internal simulator invariant broke; aborts.
 * - fatal():  the user asked for something impossible; exits cleanly.
 * - warn():   something works but imperfectly.
 * - inform(): plain status output.
 *
 * All take printf-style format strings; formatting is done eagerly so the
 * functions stay out of hot paths.
 *
 * Output is thread-safe: lines are formatted outside the lock and
 * emitted whole under a single mutex, so parallel driver jobs never
 * interleave mid-line. A per-thread tag (setLogThreadTag, set by the
 * driver to the running job's name) prefixes every line so interleaved
 * output from a parallel run stays attributable.
 */

#ifndef MITOSIM_BASE_LOGGING_H
#define MITOSIM_BASE_LOGGING_H

#include <cstdarg>
#include <string>

namespace mitosim
{

/** Exception thrown by panic()/fatal() so tests can observe failures. */
class SimError : public std::exception
{
  public:
    SimError(std::string kind, std::string message);

    const char *what() const noexcept override { return _what.c_str(); }
    const std::string &kind() const { return _kind; }
    const std::string &message() const { return _message; }

  private:
    std::string _kind;
    std::string _message;
    std::string _what;
};

/** Internal invariant violation: throws SimError("panic"). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Unrecoverable user/configuration error: throws SimError("fatal"). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning on stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message on stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

/**
 * Tag every log line emitted by *this thread* with "[tag] " (empty
 * clears it). The parallel experiment runner sets the active job's
 * name around each run.
 */
void setLogThreadTag(std::string tag);

/** This thread's current log tag (empty when untagged). */
const std::string &logThreadTag();

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, va_list ap);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assert a simulator invariant; active in all build types.
 * Prefer this to <cassert> so release benchmarks still check invariants.
 */
#define MITOSIM_ASSERT(cond, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::mitosim::panic("assertion failed: %s (%s:%d) " __VA_ARGS__,   \
                             #cond, __FILE__, __LINE__);                    \
        }                                                                   \
    } while (0)

/**
 * Debug-only assert for per-access hot paths (TLB lookup, page walk,
 * topology decode, metadata reads): checked in Debug and sanitizer
 * builds, compiled out under NDEBUG so optimized benchmarks do not pay
 * for it millions of times per simulated second. Everything off the
 * per-access path should keep using MITOSIM_ASSERT — one check per
 * fault or per daemon pass is free, and release runs still catch it.
 */
#ifdef NDEBUG
#define MITOSIM_DASSERT(cond, ...)                                          \
    do {                                                                    \
        if (false) {                                                        \
            (void)(cond);                                                   \
        }                                                                   \
    } while (0)
#else
#define MITOSIM_DASSERT(cond, ...) MITOSIM_ASSERT(cond, __VA_ARGS__)
#endif

} // namespace mitosim

#endif // MITOSIM_BASE_LOGGING_H
