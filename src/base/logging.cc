#include "logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

namespace mitosim
{

namespace
{

std::atomic<bool> informEnabled{true};

/** Serializes whole lines so parallel jobs never interleave mid-line. */
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

thread_local std::string threadTag;

/** Emit one complete "<kind>: [tag] <msg>" line under the lock. */
void
emitLine(std::FILE *to, const char *kind, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    if (threadTag.empty())
        std::fprintf(to, "%s: %s\n", kind, msg.c_str());
    else
        std::fprintf(to, "%s: [%s] %s\n", kind, threadTag.c_str(),
                     msg.c_str());
}

} // namespace

SimError::SimError(std::string kind, std::string message)
    : _kind(std::move(kind)), _message(std::move(message)),
      _what(_kind + ": " + _message)
{
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(stderr, "panic", msg);
    throw SimError("panic", msg);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(stderr, "fatal", msg);
    throw SimError("fatal", msg);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(stderr, "warn", msg);
}

void
inform(const char *fmt, ...)
{
    if (!informEnabled.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(stdout, "info", msg);
}

void
setInformEnabled(bool enabled)
{
    informEnabled.store(enabled, std::memory_order_relaxed);
}

void
setLogThreadTag(std::string tag)
{
    threadTag = std::move(tag);
}

const std::string &
logThreadTag()
{
    return threadTag;
}

} // namespace mitosim
