#include "logging.h"

#include <cstdio>
#include <vector>

namespace mitosim
{

namespace
{
bool informEnabled = true;
} // namespace

SimError::SimError(std::string kind, std::string message)
    : _kind(std::move(kind)), _message(std::move(message)),
      _what(_kind + ": " + _message)
{
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw SimError("panic", msg);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw SimError("fatal", msg);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (!informEnabled)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

} // namespace mitosim
