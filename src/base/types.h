/**
 * @file
 * Fundamental types and constants shared by every MitoSim subsystem.
 *
 * MitoSim models an x86-64 style machine: 4 KB base pages, 2 MB large
 * pages, 4-level radix page-tables with 512 entries per level, 64-byte
 * cache lines. All quantities are expressed in the simulated machine's
 * units; nothing in this header depends on the host.
 */

#ifndef MITOSIM_BASE_TYPES_H
#define MITOSIM_BASE_TYPES_H

#include <cstddef>
#include <cstdint>
#include <limits>

namespace mitosim
{

/** Simulated virtual address. */
using VirtAddr = std::uint64_t;

/** Simulated physical address. */
using PhysAddr = std::uint64_t;

/** Simulated physical frame number (PhysAddr >> PageShift). */
using Pfn = std::uint64_t;

/** Simulated virtual page number (VirtAddr >> PageShift). */
using Vpn = std::uint64_t;

/** Simulated cycle count. */
using Cycles = std::uint64_t;

/** Socket (NUMA node) identifier. */
using SocketId = int;

/** Core identifier, global across sockets. */
using CoreId = int;

/** Process identifier. */
using ProcId = int;

/**
 * Address-space identifier tagging TLB/PWC entries (x86 PCID / Arm
 * ASID). 0 is the boot/global address space; the scheduler hands out
 * 1..4095 and recycles with a generation bump (see os/scheduler.h).
 */
using Asid = std::uint16_t;

/** Sentinel for "no frame". */
inline constexpr Pfn InvalidPfn = std::numeric_limits<Pfn>::max();

/** Sentinel for "no socket". */
inline constexpr SocketId InvalidSocket = -1;

/** Base page: 4 KB. */
inline constexpr unsigned PageShift = 12;
inline constexpr std::uint64_t PageSize = 1ull << PageShift;

/** Large page: 2 MB (512 base pages). */
inline constexpr unsigned LargePageShift = 21;
inline constexpr std::uint64_t LargePageSize = 1ull << LargePageShift;
inline constexpr std::uint64_t FramesPerLargePage =
    LargePageSize / PageSize;

/** Cache line: 64 bytes. */
inline constexpr unsigned LineShift = 6;
inline constexpr std::uint64_t LineSize = 1ull << LineShift;

/** Radix page-table geometry: 512 entries x 8 bytes = one 4 KB page. */
inline constexpr unsigned PtEntriesPerPage = 512;
inline constexpr unsigned PtIndexBits = 9;
inline constexpr unsigned PtLevels = 4;

/** Page-table level names, matching the paper's L4 (root) .. L1 (leaf). */
enum class PtLevel : int
{
    L1 = 1, //!< leaf: PTEs mapping 4 KB pages (or PS entries at L2)
    L2 = 2, //!< page directory; PS bit here maps 2 MB pages
    L3 = 3, //!< page directory pointer table
    L4 = 4, //!< root (PML4); CR3 points at one of these
};

/** Page sizes the simulated MMU understands. */
enum class PageSizeKind
{
    Base4K,
    Large2M,
};

/** Convert a level number (1..4) to PtLevel. */
constexpr PtLevel
ptLevel(int level)
{
    return static_cast<PtLevel>(level);
}

/** Numeric value of a PtLevel (1..4). */
constexpr int
levelNum(PtLevel level)
{
    return static_cast<int>(level);
}

/** Bytes mapped by one entry at the given level (4 KB / 2 MB / 1 GB ...). */
constexpr std::uint64_t
bytesPerEntry(PtLevel level)
{
    return 1ull << (PageShift + PtIndexBits * (levelNum(level) - 1));
}

/** 9-bit page-table index for @p va at @p level. */
constexpr unsigned
ptIndex(VirtAddr va, PtLevel level)
{
    unsigned shift = PageShift + PtIndexBits * (levelNum(level) - 1);
    return static_cast<unsigned>((va >> shift) & (PtEntriesPerPage - 1));
}

constexpr PhysAddr
pfnToAddr(Pfn pfn)
{
    return pfn << PageShift;
}

constexpr Pfn
addrToPfn(PhysAddr pa)
{
    return pa >> PageShift;
}

constexpr Vpn
vaToVpn(VirtAddr va)
{
    return va >> PageShift;
}

/** Round @p v down to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Kibi/mebi/gibi helpers for readable configuration values. */
constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}
constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}
constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

} // namespace mitosim

#endif // MITOSIM_BASE_TYPES_H
