/**
 * @file
 * Shared entry point for every bench binary. A main() reduces to
 *
 *   int main(int argc, char **argv)
 *   {
 *       driver::BenchSpec spec;
 *       spec.name = "...";            // -> BENCH_<name>.json
 *       spec.registerJobs = ...;      // populate the JobRegistry
 *       spec.emit = ...;              // table printing + report rows
 *       return driver::benchMain(argc, argv, spec);
 *   }
 *
 * benchMain owns the command line (--list, --filter=<regex>, --jobs=N,
 * --help), the parallel Runner, and the report write. emit() only runs
 * when every registered job executed (so cross-job normalization is
 * always well-defined); under a partial --filter the driver instead
 * emits a generic per-job metric listing, which is how any single
 * config point is re-run in isolation.
 *
 * Exit codes: 0 success; 1 when any job aborts (panic/fatal/throw) or
 * the report cannot be written; 2 on a bad command line or a filter
 * matching nothing.
 */

#ifndef MITOSIM_DRIVER_BENCH_MAIN_H
#define MITOSIM_DRIVER_BENCH_MAIN_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench/report.h"
#include "src/driver/job.h"

namespace mitosim::driver
{

/** What a bench binary declares instead of a hand-rolled main(). */
struct BenchSpec
{
    std::string name;  //!< report name: BENCH_<name>.json
    std::string title; //!< banner printed before results (empty: none)
    std::function<void(JobRegistry &)> registerJobs;
    /** Config section of the report (machine shape etc.); optional. */
    std::function<void(bench::BenchReport &)> describe;
    /**
     * Print the paper-style table and fill the report from the full,
     * registration-ordered result vector. Only called when every job
     * ran (no filter, or a filter matching everything).
     */
    std::function<void(const std::vector<JobResult> &,
                       bench::BenchReport &)>
        emit;
};

/** Parsed command line of a bench binary. */
struct BenchOptions
{
    bool help = false;
    bool list = false;
    std::string filter;
    unsigned jobs = 0; //!< 0 = defaultThreads()
    /**
     * Host threads sharding each job's simulation (sim::setSimThreads).
     * 0 = unset: $MITOSIM_SIM_THREADS, else 1 (serial). Deliberately
     * not recorded in the report config — results are byte-identical
     * at any value, and CI diffs reports across values to prove it.
     */
    unsigned simThreads = 0;
};

/** nullopt + @p error message on a malformed command line. */
std::optional<BenchOptions> parseBenchArgs(int argc, char *const *argv,
                                           std::string &error);

/** Run @p spec under the flags in argv; returns the process exit code. */
int benchMain(int argc, char **argv, const BenchSpec &spec);

} // namespace mitosim::driver

#endif // MITOSIM_DRIVER_BENCH_MAIN_H
