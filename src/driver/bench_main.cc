#include "bench_main.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/base/logging.h"
#include "src/driver/runner.h"
#include "src/sim/sharded.h"

namespace mitosim::driver
{

namespace
{

void
printUsage(std::FILE *to, const char *prog)
{
    std::fprintf(
        to,
        "usage: %s [options]\n"
        "\n"
        "  --list            print every job name and exit\n"
        "  --filter=<regex>  run only jobs whose name matches (regex\n"
        "                    search, or literal substring — a name\n"
        "                    pasted from --list always works); a\n"
        "                    partial selection emits a generic per-job\n"
        "                    metric listing instead of the bench's\n"
        "                    table\n"
        "  --jobs=N          worker threads (default: $MITOSIM_JOBS,\n"
        "                    else hardware concurrency)\n"
        "  --sim-threads=N   host threads sharding each job's\n"
        "                    simulation (default:\n"
        "                    $MITOSIM_SIM_THREADS, else 1 = serial);\n"
        "                    results are byte-identical at any value\n"
        "  --help            this message\n"
        "\n"
        "Jobs are independent config points (each simulates a private\n"
        "machine), so the thread count cannot change reported numbers;\n"
        "results are always emitted in registration order.\n",
        prog);
}

/**
 * Per-job listing for partial --filter selections, where the bench's
 * own table (which normalizes across jobs) is not well-defined.
 */
void
emitGeneric(const JobRegistry &registry,
            const std::vector<std::optional<JobResult>> &results,
            const std::vector<std::size_t> &selected,
            bench::BenchReport &report)
{
    for (std::size_t index : selected) {
        const Job &job = registry.job(index);
        const JobResult &res = *results[index];
        bench::BenchRun &run = report.addRun(job.name);
        run.tag("job", job.name);
        std::printf("%s:\n", job.name.c_str());
        if (res.outcome) {
            std::printf("  runtime_cycles=%llu walk_fraction=%.4f "
                        "remote_pt_fraction=%.4f\n",
                        static_cast<unsigned long long>(
                            res.outcome->runtime),
                        res.outcome->walkFraction(),
                        res.outcome->remotePtFraction());
            run.metric("runtime_cycles",
                       static_cast<double>(res.outcome->runtime));
            run.metric("walk_fraction", res.outcome->walkFraction());
            run.metric("remote_pt_fraction",
                       res.outcome->remotePtFraction());
        }
        for (const auto &[key, value] : res.values) {
            std::printf("  %s=%g\n", key.c_str(), value);
            run.metric(key, value);
        }
        if (!res.text.empty())
            std::printf("%s", res.text.c_str());
    }
}

/**
 * Write one job's exported trace to TRACE_<bench>_<job>.json next to
 * the report (same $MITOSIM_BENCH_DIR rule as BenchReport::outputPath;
 * non-alphanumeric job-name characters become '_' so names like
 * "canneal/F+M" stay filesystem-safe). Best-effort: an I/O failure
 * warns and keeps going — the trace is diagnostic, not a result.
 */
void
writeTraceFile(const std::string &bench, const std::string &job,
               const std::string &json)
{
    std::string path;
    if (const char *dir = std::getenv("MITOSIM_BENCH_DIR");
        dir && *dir) {
        path = dir;
        if (path.back() != '/')
            path += '/';
    }
    path += "TRACE_" + bench + "_";
    for (char c : job)
        path += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    path += ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "[trace] cannot open %s\n", path.c_str());
        return;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("[trace] %s\n", path.c_str());
}

} // namespace

std::optional<BenchOptions>
parseBenchArgs(int argc, char *const *argv, std::string &error)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
            opts.help = true;
        } else if (!std::strcmp(arg, "--list")) {
            opts.list = true;
        } else if (!std::strncmp(arg, "--filter=", 9)) {
            opts.filter = arg + 9;
        } else if (!std::strncmp(arg, "--jobs=", 7)) {
            char *end = nullptr;
            long n = std::strtol(arg + 7, &end, 10);
            if (!end || *end != '\0' || n <= 0) {
                error = format("--jobs wants a positive integer, got "
                               "'%s'",
                               arg + 7);
                return std::nullopt;
            }
            opts.jobs = static_cast<unsigned>(n);
        } else if (!std::strncmp(arg, "--sim-threads=", 14)) {
            char *end = nullptr;
            long n = std::strtol(arg + 14, &end, 10);
            if (!end || *end != '\0' || n <= 0) {
                error = format("--sim-threads wants a positive "
                               "integer, got '%s'",
                               arg + 14);
                return std::nullopt;
            }
            opts.simThreads = static_cast<unsigned>(n);
        } else {
            error = format("unknown option '%s'", arg);
            return std::nullopt;
        }
    }
    return opts;
}

int
benchMain(int argc, char **argv, const BenchSpec &spec)
{
    const char *prog = argc > 0 ? argv[0] : "bench";
    std::string error;
    auto opts = parseBenchArgs(argc, argv, error);
    if (!opts) {
        std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
        printUsage(stderr, prog);
        return 2;
    }
    if (opts->help) {
        printUsage(stdout, prog);
        return 0;
    }

    unsigned sim_threads = opts->simThreads;
    if (!sim_threads) {
        if (const char *env = std::getenv("MITOSIM_SIM_THREADS"))
            if (long n = std::strtol(env, nullptr, 10); n > 0)
                sim_threads = static_cast<unsigned>(n);
    }
    if (sim_threads)
        sim::setSimThreads(static_cast<int>(sim_threads));

    setInformEnabled(false);
    try {
        JobRegistry registry;
        spec.registerJobs(registry);

        if (opts->list) {
            for (const Job &job : registry.jobs())
                std::printf("%s\n", job.name.c_str());
            return 0;
        }

        auto selected = selectJobs(registry, opts->filter);
        if (selected.empty()) {
            std::fprintf(stderr,
                         "%s: --filter='%s' matched 0 of %zu jobs "
                         "(--list shows them)\n",
                         prog, opts->filter.c_str(), registry.size());
            return 2;
        }

        Runner runner(opts->jobs);
        if (!spec.title.empty())
            std::printf("\n=== %s ===\n", spec.title.c_str());
        std::printf("[driver] %zu job(s) on %u thread(s)\n",
                    selected.size(),
                    static_cast<unsigned>(std::min<std::size_t>(
                        runner.threads(), selected.size())));
        auto wall0 = std::chrono::steady_clock::now();
        auto results = runner.run(registry, selected);
        double total_wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - wall0)
                .count();

        bench::BenchReport report(spec.name);
        if (spec.describe)
            spec.describe(report);
        // Host telemetry, outside "metrics" (see report.h): per-job
        // thunk wall-clock (with the populate/run/report phase split
        // when the job stamped one), the job's simulated access count
        // and resulting host ops/sec, plus this invocation's total.
        // Recorded before emit() moves the results out.
        for (std::size_t index : selected) {
            const JobResult &res = *results[index];
            std::uint64_t sim_accesses =
                res.outcome ? res.outcome->totals.accesses : 0;
            report.wallMsPhases(registry.job(index).name, res.wallMs,
                                res.wallPopulateMs, res.wallRunMs,
                                sim_accesses);
        }
        report.wallMs("total", total_wall_ms);
        // Host-side hot-path telemetry (fused replay, table arena):
        // appended into the per-job wall_ms entries written above, so
        // it rides the section already excluded from comparisons.
        for (std::size_t index : selected) {
            for (const auto &[key, value] : results[index]->host)
                report.wallMsHostStat(registry.job(index).name, key, value);
        }
        // Scheduler activity (context switches, preemptions, ...):
        // deterministic but diagnostic — its own excluded section.
        for (std::size_t index : selected) {
            for (const auto &[key, value] : results[index]->sched)
                report.schedStat(registry.job(index).name, key, value);
        }
        // THP lifecycle activity (collapses, splits, compaction):
        // emitted only when the daemons ran, same excluded contract.
        for (std::size_t index : selected) {
            for (const auto &[key, value] : results[index]->thp)
                report.thpStat(registry.job(index).name, key, value);
        }
        // vmcheck invariant battery: emitted only when a job's kernel
        // ran with checking enabled, same excluded contract. CI greps
        // this section for violations == 0.
        for (std::size_t index : selected) {
            for (const auto &[key, value] : results[index]->check)
                report.checkStat(registry.job(index).name, key, value);
        }
        // Observability: flattened metrics registry + walk-cycle
        // attribution into the excluded "metrics" section; any
        // exported trace goes to its own TRACE_*.json file, never into
        // the report, so traced runs keep identical BENCH_*.json.
        for (std::size_t index : selected) {
            const JobResult &res = *results[index];
            const std::string &job = registry.job(index).name;
            for (const auto &[key, value] : res.metrics)
                report.metricStat(job, key, value);
            if (!res.traceJson.empty())
                writeTraceFile(spec.name, job, res.traceJson);
        }
        if (selected.size() == registry.size()) {
            std::vector<JobResult> full;
            full.reserve(results.size());
            for (auto &res : results)
                full.push_back(std::move(*res));
            spec.emit(full, report);
        } else {
            report.config("filter", opts->filter);
            emitGeneric(registry, results, selected, report);
        }
        if (!report.write())
            return 1;
        std::printf("\n[report] %s\n", report.outputPath().c_str());
        return 0;
    } catch (const SimError &) {
        // panic()/fatal() already printed the message.
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", prog, e.what());
        return 1;
    }
}

} // namespace mitosim::driver
