/**
 * @file
 * The parallel experiment runner. Jobs are embarrassingly parallel —
 * each constructs a private Machine + Kernel — so the Runner drains the
 * registry through a work queue on a pool of std::jthread workers.
 * Results land at their job's registration index, making collection
 * order (and therefore every table and BENCH_*.json byte) independent
 * of the thread count.
 */

#ifndef MITOSIM_DRIVER_RUNNER_H
#define MITOSIM_DRIVER_RUNNER_H

#include <optional>
#include <vector>

#include "src/driver/job.h"

namespace mitosim::driver
{

/**
 * Worker count to use when none was requested: $MITOSIM_JOBS when set
 * to a positive integer, else std::thread::hardware_concurrency()
 * (minimum 1).
 */
unsigned defaultThreads();

class Runner
{
  public:
    /** @p threads 0 resolves to defaultThreads(). */
    explicit Runner(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /**
     * Execute the @p selected jobs (registration indices). Returns one
     * slot per registered job; unselected slots stay nullopt. A
     * throwing job never hangs the pool: the worker captures the
     * failure, remaining jobs still run, and after the pool drains the
     * Runner warn()s every failure and throws SimError("fatal") so the
     * binary exits nonzero.
     */
    std::vector<std::optional<JobResult>>
    run(const JobRegistry &registry,
        const std::vector<std::size_t> &selected) const;

  private:
    unsigned threads_;
};

} // namespace mitosim::driver

#endif // MITOSIM_DRIVER_RUNNER_H
