#include "job.h"

#include <regex>

#include "src/base/logging.h"

namespace mitosim::driver
{

double
JobResult::valueOf(const std::string &key) const
{
    for (const auto &[k, v] : values)
        if (k == key)
            return v;
    fatal("job result has no value '%s'", key.c_str());
}

double
JobResult::runtime() const
{
    if (!outcome)
        fatal("job result has no run outcome");
    return static_cast<double>(outcome->runtime);
}

std::size_t
JobRegistry::add(std::string name, std::function<JobResult()> run)
{
    for (const Job &job : jobs_)
        if (job.name == name)
            fatal("duplicate job name '%s'", name.c_str());
    jobs_.push_back(Job{std::move(name), std::move(run)});
    return jobs_.size() - 1;
}

std::vector<std::size_t>
selectJobs(const JobRegistry &registry, const std::string &filter)
{
    std::vector<std::size_t> selected;
    if (filter.empty()) {
        for (std::size_t i = 0; i < registry.size(); ++i)
            selected.push_back(i);
        return selected;
    }
    std::regex re;
    try {
        re = std::regex(filter);
    } catch (const std::regex_error &e) {
        fatal("invalid --filter regex '%s': %s", filter.c_str(),
              e.what());
    }
    // Job names use regex metacharacters ("canneal/F+M"), and --list
    // presents them as the re-run handles — so a pasted name must
    // select its job. Literal substring containment is accepted
    // alongside the regex match.
    for (std::size_t i = 0; i < registry.size(); ++i) {
        const std::string &name = registry.job(i).name;
        if (std::regex_search(name, re) ||
            name.find(filter) != std::string::npos)
            selected.push_back(i);
    }
    return selected;
}

} // namespace mitosim::driver
