/**
 * @file
 * Declarative experiment jobs. A benchmark is a *matrix* of independent
 * configuration points; each point is a Job — a unique name plus a
 * thunk that constructs its own Machine + Kernel, simulates, and hands
 * back a JobResult. Bench binaries populate a JobRegistry instead of
 * hand-rolling matrix loops; the Runner (runner.h) executes registered
 * jobs on a host thread pool, and results are always collected and
 * emitted in registration order, so parallelism can never change
 * reported numbers.
 */

#ifndef MITOSIM_DRIVER_JOB_H
#define MITOSIM_DRIVER_JOB_H

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/base/types.h"
#include "src/sim/perf_counters.h"

namespace mitosim::driver
{

/** Aggregate counters + runtime of one simulated configuration point. */
struct RunOutcome
{
    Cycles runtime = 0;
    sim::PerfCounters totals;

    double walkFraction() const { return totals.walkFraction(); }
    double remotePtFraction() const { return totals.remotePtFraction(); }
};

/**
 * Everything a job hands back: the scenario outcome (when the job is a
 * timed run), named analysis scalars, and optional free-form text
 * (e.g. a page-table dump). All three are optional so placement
 * analyses, micro-measurements and full runs share one result type.
 */
struct JobResult
{
    std::optional<RunOutcome> outcome;
    std::vector<std::pair<std::string, double>> values;
    std::string text;

    /**
     * Host wall-clock of the job's thunk, stamped by the Runner. Pure
     * host-side telemetry (machine construction + simulation + op
     * phases): it lands in the report's "wall_ms" section, never in
     * "metrics", and is excluded from metric comparisons — simulated
     * numbers must stay independent of host speed and thread count.
     */
    double wallMs = 0.0;

    /**
     * Host wall-clock phase breakdown, stamped by the job body itself
     * (bench::PhaseTimer): time spent building + populating the
     * simulated machine (construction, fragmentation, process setup,
     * replication) and time spent running simulated operations. The
     * remainder of wallMs is the report phase (teardown, end-of-run
     * checks, analysis). Same contract as wallMs: host telemetry,
     * excluded from metric comparisons. Zero when a job never stamps
     * phases.
     */
    double wallPopulateMs = 0.0;
    double wallRunMs = 0.0;

    /**
     * Scheduler activity counters (context switches, preemptions,
     * migrations, ...) recorded by jobs that run the time-sharing
     * scheduler. Deterministic simulated telemetry, but *diagnostic*
     * rather than a benchmark result: the driver lands it in the
     * report's "scheduler" section, which — like "wall_ms" — metric
     * comparison tooling ignores. Keys the bench wants compared belong
     * in values/metrics instead.
     */
    std::vector<std::pair<std::string, double>> sched;

    JobResult &
    value(std::string key, double v)
    {
        values.emplace_back(std::move(key), v);
        return *this;
    }

    /**
     * THP lifecycle counters (collapses, splits, compaction activity,
     * failed allocations) recorded by jobs that ran the khugepaged /
     * kcompactd daemons. Same contract as `sched`: deterministic
     * diagnostic telemetry, landed in the report's "thp" section and
     * excluded from metric comparisons.
     */
    std::vector<std::pair<std::string, double>> thp;

    /**
     * vmcheck invariant-checker counters (checkpoints reached, checks
     * run, violations found, ...) recorded by jobs whose kernel ran
     * with checking enabled (src/check/). Same contract as `sched` and
     * `thp`: deterministic diagnostic telemetry, landed in the
     * report's "check" section and excluded from metric comparisons.
     * A clean checked run reports violations == 0 here; CI asserts on
     * exactly that.
     */
    std::vector<std::pair<std::string, double>> check;

    /**
     * Host-side hot-path telemetry (fused replay runs/ops, table-arena
     * slab activity) recorded by jobs that ran through the bench
     * harness. Unlike `sched`/`thp`/`check` this is *not* simulated
     * state — it varies with MITOSIM_FUSE and snapshot reuse — so it
     * lands inside the report's "wall_ms" section (excluded wholesale
     * from metric comparisons) rather than a section of its own.
     */
    std::vector<std::pair<std::string, double>> host;

    /**
     * Observability metrics (src/obs): the job machine's flattened
     * MetricsRegistry — named counters/gauges/histogram digests plus
     * the walk-cycle attribution table — recorded by the bench
     * harness's stat-sink helper. Deterministic simulated telemetry
     * landed in the report's "metrics" section, which metric
     * comparison tooling ignores (like "wall_ms" and "check"): it is
     * an *observability* surface, free to grow richer between PRs
     * without breaking report identity.
     */
    std::vector<std::pair<std::string, double>> metrics;

    /**
     * Chrome/Perfetto trace-event JSON exported from the job machine's
     * tracer; empty unless MITOSIM_TRACE enabled categories. The
     * driver writes it to TRACE_<bench>_<job>.json next to the report
     * — never *into* the report, so traced runs keep byte-identical
     * BENCH_*.json metrics.
     */
    std::string traceJson;

    JobResult &
    schedStat(std::string key, double v)
    {
        sched.emplace_back(std::move(key), v);
        return *this;
    }

    JobResult &
    thpStat(std::string key, double v)
    {
        thp.emplace_back(std::move(key), v);
        return *this;
    }

    JobResult &
    checkStat(std::string key, double v)
    {
        check.emplace_back(std::move(key), v);
        return *this;
    }

    JobResult &
    hostStat(std::string key, double v)
    {
        host.emplace_back(std::move(key), v);
        return *this;
    }

    JobResult &
    metricStat(std::string key, double v)
    {
        metrics.emplace_back(std::move(key), v);
        return *this;
    }

    /** Named scalar lookup; fatal()s when @p key was never recorded. */
    double valueOf(const std::string &key) const;

    static JobResult
    of(const RunOutcome &out)
    {
        JobResult r;
        r.outcome = out;
        return r;
    }

    /** The outcome's runtime as a double (fatal() when not a run). */
    double runtime() const;
};

/** One config point: a unique name plus the thunk that simulates it. */
struct Job
{
    std::string name;
    std::function<JobResult()> run;
};

/**
 * Registration-ordered set of jobs. Bench binaries populate it
 * declaratively; job names must be unique (they are the --filter and
 * --list handles for re-running any single config point).
 */
class JobRegistry
{
  public:
    /** Register a job; returns its index (== emission position). */
    std::size_t add(std::string name, std::function<JobResult()> run);

    std::size_t size() const { return jobs_.size(); }
    const Job &job(std::size_t index) const { return jobs_.at(index); }
    const std::vector<Job> &jobs() const { return jobs_; }

  private:
    std::vector<Job> jobs_;
};

/**
 * Indices of jobs whose name matches @p filter — as an ECMAScript
 * regex (search semantics) or as a literal substring, so a job name
 * pasted from --list always selects its job even though names contain
 * metacharacters ("canneal/F+M") — in registration order. An empty
 * filter selects every job; an invalid regex is fatal().
 */
std::vector<std::size_t> selectJobs(const JobRegistry &registry,
                                    const std::string &filter);

} // namespace mitosim::driver

#endif // MITOSIM_DRIVER_JOB_H
