#include "runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <thread>

#include "src/base/logging.h"

namespace mitosim::driver
{

unsigned
defaultThreads()
{
    if (const char *env = std::getenv("MITOSIM_JOBS"); env && *env) {
        char *end = nullptr;
        long n = std::strtol(env, &end, 10);
        if (end && *end == '\0' && n > 0)
            return static_cast<unsigned>(n);
        warn("ignoring invalid MITOSIM_JOBS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

Runner::Runner(unsigned threads)
    : threads_(threads ? threads : defaultThreads())
{
}

std::vector<std::optional<JobResult>>
Runner::run(const JobRegistry &registry,
            const std::vector<std::size_t> &selected) const
{
    std::vector<std::optional<JobResult>> results(registry.size());
    // Indexed by queue position, not job index: workers only ever touch
    // their own slot, so no synchronization beyond the queue cursor.
    std::vector<std::string> failures(selected.size());
    std::vector<char> failed(selected.size(), 0);
    std::atomic<std::size_t> next{0};

    auto worker = [&] {
        for (;;) {
            std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
            if (k >= selected.size())
                return;
            const Job &job = registry.job(selected[k]);
            setLogThreadTag(job.name);
            try {
                auto t0 = std::chrono::steady_clock::now();
                results[selected[k]] = job.run();
                results[selected[k]]->wallMs =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
            } catch (const std::exception &e) {
                failed[k] = 1;
                failures[k] = e.what();
            } catch (...) {
                failed[k] = 1;
                failures[k] = "unknown exception";
            }
            setLogThreadTag("");
        }
    };

    std::size_t pool = std::min<std::size_t>(threads_, selected.size());
    if (pool <= 1) {
        worker(); // strictly serial --jobs=1: no threads to debug around
    } else {
        std::vector<std::jthread> workers;
        workers.reserve(pool);
        for (std::size_t t = 0; t < pool; ++t)
            workers.emplace_back(worker);
        // jthreads join on scope exit.
    }

    std::size_t nfailed = 0;
    std::string first;
    for (std::size_t k = 0; k < selected.size(); ++k) {
        if (!failed[k])
            continue;
        const Job &job = registry.job(selected[k]);
        warn("job '%s' failed: %s", job.name.c_str(),
             failures[k].c_str());
        if (nfailed++ == 0)
            first = job.name + ": " + failures[k];
    }
    if (nfailed) {
        fatal("%zu of %zu jobs failed; first: %s", nfailed,
              selected.size(), first.c_str());
    }
    return results;
}

} // namespace mitosim::driver
