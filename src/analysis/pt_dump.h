/**
 * @file
 * Page-table placement analysis, the C++ analogue of the paper's kernel
 * module that "walks the page-table of a process and dumps the PTEs
 * including the value of the page-table root register" (§3.1).
 *
 * Produces the per-level x per-socket statistics of Figure 3 (page
 * counts, pointer-target distribution, remote percentage) and the
 * remote-leaf-PTE percentages per observing socket of Figures 1 and 4.
 */

#ifndef MITOSIM_ANALYSIS_PT_DUMP_H
#define MITOSIM_ANALYSIS_PT_DUMP_H

#include <array>
#include <string>
#include <vector>

#include "src/mem/physical_memory.h"
#include "src/pt/operations.h"
#include "src/pt/root_set.h"

namespace mitosim::analysis
{

/** Statistics for one (level, holder-socket) cell of the dump. */
struct LevelSocketCell
{
    std::uint64_t pages = 0; //!< PT pages of this level on this socket
    /** Valid PTEs in those pages, bucketed by target socket. */
    std::vector<std::uint64_t> pointersTo;
    std::uint64_t validPtes = 0;
    std::uint64_t remotePtes = 0; //!< targets on another socket

    double
    remoteFraction() const
    {
        return validPtes ? static_cast<double>(remotePtes) /
                               static_cast<double>(validPtes)
                         : 0.0;
    }
};

/** A full snapshot: 4 levels x N sockets. */
class PtSnapshot
{
  public:
    PtSnapshot(int num_sockets);

    LevelSocketCell &cell(int level, SocketId socket);
    const LevelSocketCell &cell(int level, SocketId socket) const;

    int numSockets() const { return sockets; }

    /** Total leaf (L1 + huge-L2) PTEs on @p socket. */
    std::uint64_t leafPtesOn(SocketId socket) const;

    /** Total leaf PTEs in the snapshot. */
    std::uint64_t totalLeafPtes() const;

    /**
     * The paper's headline metric: the fraction of leaf PTEs a thread on
     * @p observer has to fetch from a *remote* socket on a TLB miss,
     * i.e. leaf PTEs stored on sockets != observer / all leaf PTEs.
     */
    double remoteLeafFractionFrom(SocketId observer) const;

    /** Render in the format of the paper's Figure 3. */
    std::string str() const;

  private:
    int sockets;
    // [level 1..4][socket]
    std::array<std::vector<LevelSocketCell>, 5> cells;
};

/** Walks a process's page-table(s) and produces snapshots. */
class PtAnalyzer
{
  public:
    PtAnalyzer(mem::PhysicalMemory &physmem, pt::PageTableOps &ops)
        : mem(physmem), ptops(ops)
    {
    }

    /**
     * Snapshot the *primary* tree of @p roots (what the paper's module
     * saw: CR3 of the running task).
     */
    PtSnapshot snapshot(const pt::RootSet &roots) const;

    /**
     * Snapshot the tree a thread on @p socket actually walks (the local
     * replica under Mitosis). With replication enabled this shows 0%
     * remote leaf PTEs — the paper's Figure 7(a)(ii) state.
     */
    PtSnapshot snapshotFor(const pt::RootSet &roots, SocketId socket) const;

  private:
    PtSnapshot snapshotTree(Pfn root) const;

    mem::PhysicalMemory &mem;
    pt::PageTableOps &ptops;
};

/**
 * Table 4's analytical model: memory overhead of page-table replication
 * for a compact address space of @p footprint bytes with @p replicas
 * replicas, relative to the single-page-table baseline.
 *
 * Returns the multiplier (e.g. 1.006 = +0.6%).
 */
double replicationMemOverhead(std::uint64_t footprint, int replicas);

/** Size in bytes of a single 4-level page-table mapping [0, footprint). */
std::uint64_t pageTableBytes(std::uint64_t footprint);

} // namespace mitosim::analysis

#endif // MITOSIM_ANALYSIS_PT_DUMP_H
