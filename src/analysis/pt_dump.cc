#include "pt_dump.h"

#include "src/base/logging.h"
#include "src/pt/pte.h"

namespace mitosim::analysis
{

PtSnapshot::PtSnapshot(int num_sockets) : sockets(num_sockets)
{
    for (auto &level : cells) {
        level.resize(static_cast<std::size_t>(sockets));
        for (auto &c : level)
            c.pointersTo.assign(static_cast<std::size_t>(sockets), 0);
    }
}

LevelSocketCell &
PtSnapshot::cell(int level, SocketId socket)
{
    MITOSIM_ASSERT(level >= 1 && level <= 4);
    MITOSIM_ASSERT(socket >= 0 && socket < sockets);
    return cells[static_cast<std::size_t>(level)]
                [static_cast<std::size_t>(socket)];
}

const LevelSocketCell &
PtSnapshot::cell(int level, SocketId socket) const
{
    MITOSIM_ASSERT(level >= 1 && level <= 4);
    MITOSIM_ASSERT(socket >= 0 && socket < sockets);
    return cells[static_cast<std::size_t>(level)]
                [static_cast<std::size_t>(socket)];
}

std::uint64_t
PtSnapshot::leafPtesOn(SocketId socket) const
{
    // Leaf PTEs live in L1 pages, plus huge-page entries in L2 pages.
    // L2 cells count pointers to children (PT pages or 2MB frames); for
    // the leaf metric we rely on the analyzer filling L1 cells with leaf
    // counts and recording huge L2 leaves in L1 as well (see analyzer).
    return cell(1, socket).validPtes;
}

std::uint64_t
PtSnapshot::totalLeafPtes() const
{
    std::uint64_t total = 0;
    for (SocketId s = 0; s < sockets; ++s)
        total += leafPtesOn(s);
    return total;
}

double
PtSnapshot::remoteLeafFractionFrom(SocketId observer) const
{
    std::uint64_t total = totalLeafPtes();
    if (total == 0)
        return 0.0;
    std::uint64_t local = leafPtesOn(observer);
    return static_cast<double>(total - local) /
           static_cast<double>(total);
}

namespace
{

std::string
humanCount(std::uint64_t v)
{
    if (v >= 1000000)
        return format("%lluM", (unsigned long long)(v / 1000000));
    if (v >= 10000)
        return format("%lluk", (unsigned long long)(v / 1000));
    return format("%llu", (unsigned long long)v);
}

} // namespace

std::string
PtSnapshot::str() const
{
    // Figure 3 layout: one row per level (L4 root first), one column per
    // socket; each cell prints "pages [ptrs to s0 s1 ...] (remote%)".
    std::string out;
    out += "Level |";
    for (SocketId s = 0; s < sockets; ++s)
        out += format(" %-28s|", format("Socket %d", s).c_str());
    out += "\n";
    for (int level = 4; level >= 1; --level) {
        out += format("L%d    |", level);
        for (SocketId s = 0; s < sockets; ++s) {
            const auto &c = cell(level, s);
            std::string ptrs;
            for (SocketId t = 0; t < sockets; ++t) {
                ptrs += humanCount(
                    c.pointersTo[static_cast<std::size_t>(t)]);
                if (t + 1 < sockets)
                    ptrs += " ";
            }
            out += format(" %5s [%s] (%3.0f%%)",
                          humanCount(c.pages).c_str(), ptrs.c_str(),
                          100.0 * c.remoteFraction());
            out += " |";
        }
        out += "\n";
    }
    return out;
}

PtSnapshot
PtAnalyzer::snapshotTree(Pfn root) const
{
    PtSnapshot snap(mem.topology().numSockets());
    if (root == InvalidPfn)
        return snap;

    struct Frame
    {
        Pfn table;
        int level;
    };
    std::vector<Frame> stack{{root, 4}};
    while (!stack.empty()) {
        Frame f = stack.back();
        stack.pop_back();
        SocketId holder = mem.socketOf(f.table);
        auto &c = snap.cell(f.level, holder);
        ++c.pages;

        const std::uint64_t *tbl = mem.table(f.table);
        for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
            pt::Pte entry{tbl[i]};
            if (!entry.present())
                continue;
            SocketId target = mem.socketOf(entry.pfn());
            ++c.validPtes;
            ++c.pointersTo[static_cast<std::size_t>(target)];
            if (target != holder)
                ++c.remotePtes;
            bool is_leaf =
                (f.level == 1) || (f.level == 2 && entry.huge());
            if (!is_leaf) {
                stack.push_back({entry.pfn(), f.level - 1});
            } else if (f.level == 2) {
                // Count huge leaves into the L1 row as well so the
                // leaf-PTE metrics see them (they are leaf translations
                // held by an L2 page on `holder`).
                auto &leaf_cell = snap.cell(1, holder);
                ++leaf_cell.validPtes;
                ++leaf_cell.pointersTo[static_cast<std::size_t>(target)];
                if (target != holder)
                    ++leaf_cell.remotePtes;
            }
        }
    }
    return snap;
}

PtSnapshot
PtAnalyzer::snapshot(const pt::RootSet &roots) const
{
    return snapshotTree(roots.primaryRoot);
}

PtSnapshot
PtAnalyzer::snapshotFor(const pt::RootSet &roots, SocketId socket) const
{
    return snapshotTree(roots.rootFor(socket));
}

std::uint64_t
pageTableBytes(std::uint64_t footprint)
{
    // Compact address space [0, footprint): each level needs
    // ceil(entries-covered / 512) pages, minimum 1 (Table 4's model:
    // "each level has at least one page-table allocated").
    std::uint64_t bytes = 0;
    std::uint64_t covered = PageSize; // bytes mapped per L1 entry
    for (int level = 1; level <= 4; ++level) {
        std::uint64_t entries =
            (footprint + covered - 1) / covered; // entries needed
        std::uint64_t pages =
            (entries + PtEntriesPerPage - 1) / PtEntriesPerPage;
        if (pages == 0)
            pages = 1;
        bytes += pages * PageSize;
        covered *= PtEntriesPerPage;
    }
    return bytes;
}

double
replicationMemOverhead(std::uint64_t footprint, int replicas)
{
    MITOSIM_ASSERT(replicas >= 1);
    double pt = static_cast<double>(pageTableBytes(footprint));
    double base = static_cast<double>(footprint) + pt;
    double with = static_cast<double>(footprint) +
                  pt * static_cast<double>(replicas);
    return with / base;
}

} // namespace mitosim::analysis
