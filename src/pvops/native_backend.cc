#include "native_backend.h"

#include "src/pvops/costs.h"

namespace mitosim::pvops
{

Pfn
NativeBackend::allocPtPage(pt::RootSet &roots, ProcId owner, int level,
                           SocketId hint_socket, KernelCost *cost)
{
    (void)roots;
    auto pfn = mem.allocPt(hint_socket, level, owner);
    if (!pfn) {
        // Fall back to any socket, as Linux does under node pressure.
        for (SocketId s = 0; s < mem.topology().numSockets() && !pfn; ++s) {
            if (s != hint_socket)
                pfn = mem.allocPt(s, level, owner);
        }
    }
    if (!pfn)
        return InvalidPfn;
    if (cost) {
        cost->charge(PtPageSetupCost);
        ++cost->ptPagesAllocated;
    }
    return *pfn;
}

void
NativeBackend::releasePtPage(pt::RootSet &roots, Pfn pfn, KernelCost *cost)
{
    (void)roots;
    mem.freePt(pfn);
    if (cost) {
        cost->charge(PageFreeCost);
        ++cost->ptPagesFreed;
    }
}

void
NativeBackend::setPte(pt::RootSet &roots, pt::PteLoc loc, pt::Pte value,
                      int level, KernelCost *cost)
{
    (void)roots;
    (void)level;
    mem.table(loc.ptPfn)[loc.index] = value.raw();
    if (cost) {
        cost->charge(PteWriteCost);
        ++cost->pteWrites;
    }
}

void
NativeBackend::setPtes(pt::RootSet &roots, pt::PteLoc loc,
                       const pt::Pte *values, unsigned count, int level,
                       KernelCost *cost)
{
    (void)roots;
    (void)level;
    std::uint64_t *tbl = mem.table(loc.ptPfn) + loc.index;
    for (unsigned k = 0; k < count; ++k)
        tbl[k] = values[k].raw();
    if (cost) {
        cost->charge(PteWriteCost * count);
        cost->pteWrites += count;
    }
}

pt::Pte
NativeBackend::readPte(const pt::RootSet &roots, pt::PteLoc loc,
                       KernelCost *cost) const
{
    (void)roots;
    if (cost)
        cost->charge(PteReadCost);
    return pt::Pte{mem.table(loc.ptPfn)[loc.index]};
}

pt::Pte
NativeBackend::readPteMany(const pt::RootSet &roots, pt::PteLoc loc,
                           unsigned n, KernelCost *cost) const
{
    (void)roots;
    if (cost)
        cost->charge(PteReadCost * n);
    return pt::Pte{mem.table(loc.ptPfn)[loc.index]};
}

void
NativeBackend::clearAccessedDirty(pt::RootSet &roots, pt::PteLoc loc,
                                  std::uint64_t bits, KernelCost *cost)
{
    (void)roots;
    mem.table(loc.ptPfn)[loc.index] &= ~bits;
    if (cost) {
        cost->charge(PteWriteCost);
        ++cost->pteWrites;
    }
}

Pfn
NativeBackend::cr3For(const pt::RootSet &roots, SocketId socket) const
{
    (void)socket;
    return roots.primaryRoot;
}

void
NativeBackend::onProcessMigrated(pt::RootSet &roots, ProcId owner,
                                 SocketId from, SocketId to,
                                 KernelCost *cost)
{
    // Stock kernels do not migrate page-tables (§3.2: "page-table
    // migration is not supported"). Nothing to do.
    (void)roots;
    (void)owner;
    (void)from;
    (void)to;
    (void)cost;
}

} // namespace mitosim::pvops
