/**
 * @file
 * The native PV-Ops backend: no replication, direct PTE stores.
 *
 * Matches stock Linux behaviour: page-table pages are allocated on the
 * hint socket (first touch), writes go to the single copy, CR3 is the
 * primary root for every socket, and process migration leaves page-tables
 * behind (the paper's §3.2 problem statement).
 */

#ifndef MITOSIM_PVOPS_NATIVE_BACKEND_H
#define MITOSIM_PVOPS_NATIVE_BACKEND_H

#include "src/mem/physical_memory.h"
#include "src/pvops/pvops.h"

namespace mitosim::pvops
{

/** Stock, replication-free backend. */
class NativeBackend : public PvOps
{
  public:
    explicit NativeBackend(mem::PhysicalMemory &physmem) : mem(physmem) {}

    Pfn allocPtPage(pt::RootSet &roots, ProcId owner, int level,
                    SocketId hint_socket, KernelCost *cost) override;

    void releasePtPage(pt::RootSet &roots, Pfn pfn,
                       KernelCost *cost) override;

    void setPte(pt::RootSet &roots, pt::PteLoc loc, pt::Pte value, int level,
                KernelCost *cost) override;

    /** Streamed stores into one table; charges stay per-entry. */
    void setPtes(pt::RootSet &roots, pt::PteLoc loc, const pt::Pte *values,
                 unsigned count, int level, KernelCost *cost) override;

    pt::Pte readPte(const pt::RootSet &roots, pt::PteLoc loc,
                    KernelCost *cost) const override;

    /** One host read, n-fold charge (no replicas to merge). */
    pt::Pte readPteMany(const pt::RootSet &roots, pt::PteLoc loc,
                        unsigned n, KernelCost *cost) const override;

    void clearAccessedDirty(pt::RootSet &roots, pt::PteLoc loc,
                            std::uint64_t bits, KernelCost *cost) override;

    Pfn cr3For(const pt::RootSet &roots, SocketId socket) const override;

    void onProcessMigrated(pt::RootSet &roots, ProcId owner, SocketId from,
                           SocketId to, KernelCost *cost) override;

    const char *name() const override { return "native"; }

  private:
    mem::PhysicalMemory &mem;
};

} // namespace mitosim::pvops

#endif // MITOSIM_PVOPS_NATIVE_BACKEND_H
