/**
 * @file
 * Cycle cost constants for kernel-side virtual-memory work.
 *
 * The simulator charges OS operations (page faults, VMA system calls,
 * replica maintenance) with flat per-step costs rather than running them
 * through the cache hierarchy: what matters for the paper's Table 5 / 6 is
 * the *ratio* between baseline kernel work and the extra replica
 * maintenance Mitosis adds. Values are loosely calibrated to Linux on a
 * Haswell-class part (zeroing a 4 KB page dominates a fault; a hot PTE
 * store is a handful of cycles; a TLB shootdown IPI is microseconds).
 */

#ifndef MITOSIM_PVOPS_COSTS_H
#define MITOSIM_PVOPS_COSTS_H

#include "src/base/types.h"

namespace mitosim::pvops
{

/** Allocating a physical frame from the buddy/free lists. */
inline constexpr Cycles PageAllocCost = 300;

/** Zeroing a fresh 4 KB frame (dominates fault cost). */
inline constexpr Cycles PageZeroCost = 1200;

/** Returning a frame to the allocator (no zeroing on free). */
inline constexpr Cycles PageFreeCost = 100;

/** One PTE store into the local, cache-hot page-table. */
inline constexpr Cycles PteWriteCost = 12;

/** One PTE store into a *replica* page-table on another socket.
 *  Stores are posted; the cost is issue bandwidth, not round-trip. */
inline constexpr Cycles PteRemoteWriteCost = 8;

/** One PTE load (read-modify-write cycles in mprotect etc.). */
inline constexpr Cycles PteReadCost = 8;

/** Following one struct-page replica pointer (Figure 8 list hop). */
inline constexpr Cycles ReplicaHopCost = 3;

/** Locating a replica by walking a replica tree (the 4N alternative). */
inline constexpr Cycles ReplicaWalkStepCost = 30;

/** Fixed syscall + VMA bookkeeping per mmap/munmap/mprotect call. */
inline constexpr Cycles VmaOpFixedCost = 900;

/** One TLB shootdown round (IPI + remote flush), charged per ranged op. */
inline constexpr Cycles TlbShootdownCost = 2600;

/** Allocating + zeroing one page-table page. */
inline constexpr Cycles PtPageSetupCost = PageAllocCost + PageZeroCost;

/** Page-fault entry/exit overhead (trap, VMA lookup). */
inline constexpr Cycles FaultFixedCost = 450;

/** Copying one 4 KB page during data migration. */
inline constexpr Cycles PageCopyCost = 1500;

/**
 * One context switch on a core: trap, state save/restore, run-queue
 * bookkeeping — everything *except* the CR3 write (the hardware-side
 * sim::Core::Cr3LoadCost) and the TLB/PWC refill, which the simulation
 * produces organically. Calibrated to the ~1-2 us direct cost measured
 * on Linux.
 */
inline constexpr Cycles ContextSwitchCost = 2000;

} // namespace mitosim::pvops

#endif // MITOSIM_PVOPS_COSTS_H
