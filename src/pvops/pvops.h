/**
 * @file
 * The paravirt-ops style page-table hook interface.
 *
 * The paper implements Mitosis "as a new backend for PV-Ops alongside the
 * native and Xen backends" (§5.2): every kernel write to a page-table goes
 * through this indirection, which lets the Mitosis backend propagate the
 * update to all replicas. We reproduce the same seam. The OS layer never
 * touches a PTE directly; the hardware page-walker *does* (A/D bits),
 * which is why readPte()/clearAccessedDirty() exist — the Mitosis backend
 * must consult every replica to return correct flags (§5.4).
 */

#ifndef MITOSIM_PVOPS_PVOPS_H
#define MITOSIM_PVOPS_PVOPS_H

#include <cstdint>

#include "src/base/socket_mask.h"
#include "src/base/types.h"
#include "src/pt/pte.h"
#include "src/pt/root_set.h"

namespace mitosim::pvops
{

/** Accumulator for kernel-side cycle charging; any field may be ignored. */
struct KernelCost
{
    Cycles cycles = 0;
    std::uint64_t pteWrites = 0;      //!< primary PTE stores
    std::uint64_t replicaWrites = 0;  //!< extra stores into replicas
    std::uint64_t replicaHops = 0;    //!< circular-list pointer follows
    std::uint64_t ptPagesAllocated = 0;
    std::uint64_t ptPagesFreed = 0;

    void
    charge(Cycles c)
    {
        cycles += c;
    }
};

/**
 * Page-table hook interface (excerpt mirroring the paper's Listing 1:
 * write_cr3 / paravirt_alloc_pte / paravirt_release_pte / set_pte, plus
 * the get-side functions the paper had to add for A/D correctness).
 */
class PvOps
{
  public:
    virtual ~PvOps() = default;

    /**
     * Allocate a page-table page at @p level for the process owning
     * @p roots. @p hint_socket is where the native policy would place it
     * (the socket of the faulting thread, or a forced socket). Backends
     * may allocate additional replica pages and link them.
     *
     * @return the pfn the *primary* tree should reference, or InvalidPfn
     *         on allocation failure.
     */
    virtual Pfn allocPtPage(pt::RootSet &roots, ProcId owner, int level,
                            SocketId hint_socket, KernelCost *cost) = 0;

    /**
     * Release the page-table page @p pfn (a primary-tree page). Backends
     * release every linked replica as well.
     */
    virtual void releasePtPage(pt::RootSet &roots, Pfn pfn,
                               KernelCost *cost) = 0;

    /**
     * Store @p value at @p loc (a PTE slot in the primary tree) and
     * propagate to replicas. @p level is the level of the containing
     * page (1..4); backends use it to fix up child pointers per replica.
     */
    virtual void setPte(pt::RootSet &roots, pt::PteLoc loc, pt::Pte value,
                        int level, KernelCost *cost) = 0;

    /**
     * Batched set_pte: store @p values[0..count) into the @p count
     * consecutive slots starting at @p loc. All slots live in the same
     * page-table page (the caller guarantees
     * loc.index + count <= PtEntriesPerPage), which is what lets
     * replicating backends locate the replica set once per table and
     * stream the stores instead of chasing the replica list per entry.
     *
     * The default forwards to setPte per entry, so every backend
     * inherits correct semantics and the exact per-entry cost model.
     * Overrides must keep the *charged* costs per-entry-identical under
     * their default configuration; cheaper batched charging is opt-in
     * (see core::UpdateMode::Batched).
     */
    virtual void
    setPtes(pt::RootSet &roots, pt::PteLoc loc, const pt::Pte *values,
            unsigned count, int level, KernelCost *cost)
    {
        for (unsigned k = 0; k < count; ++k) {
            setPte(roots, pt::PteLoc{loc.ptPfn, loc.index + k}, values[k],
                   level, cost);
        }
    }

    /**
     * THP collapse (khugepaged): store @p huge — a PS=1 L2 leaf — at
     * @p dir_loc, the L2 slot currently referencing the fully-populated
     * leaf table @p leaf_table, then release that leaf table. The
     * default composes the existing hooks, which is what keeps *every*
     * backend replica-coherent without a per-backend rewrite: setPte
     * rewrites the slot in each ring member (huge leaves copy verbatim;
     * one replica-locate per ring, the batched-update model) and
     * releasePtPage frees every linked replica of the dead leaf table.
     * Lazily-propagating backends inherit correctness too: the
     * present→present slot rewrite is eager by their own rule, and
     * their releasePtPage override purges update messages aimed at the
     * freed replica set.
     */
    virtual void
    collapseRange(pt::RootSet &roots, pt::PteLoc dir_loc, pt::Pte huge,
                  Pfn leaf_table, KernelCost *cost)
    {
        setPte(roots, dir_loc, huge, 2, cost);
        releasePtPage(roots, leaf_table, cost);
    }

    /**
     * THP demotion: split the huge leaf at @p dir_loc into 512 4 KB
     * PTEs. @p values[0..PtEntriesPerPage) map the huge page's
     * constituent frames; a fresh leaf table is allocated on
     * @p hint_socket (replica sets included), the values streamed into
     * it through the batched store hook, and only then is @p dir_loc
     * swung from the huge leaf to the new table — the Linux ordering
     * (populate the pmd-less table, then pmd_populate), so no replica
     * ever exposes a partially-filled leaf level.
     *
     * @return false when no leaf table could be allocated; the huge
     *         mapping is left intact.
     */
    virtual bool
    splitHuge(pt::RootSet &roots, ProcId owner, pt::PteLoc dir_loc,
              const pt::Pte *values, SocketId hint_socket,
              KernelCost *cost)
    {
        Pfn table = allocPtPage(roots, owner, 1, hint_socket, cost);
        if (table == InvalidPfn)
            return false;
        setPtes(roots, pt::PteLoc{table, 0}, values, PtEntriesPerPage, 1,
                cost);
        setPte(roots, dir_loc,
               pt::Pte::make(table,
                             pt::PtePresent | pt::PteWrite | pt::PteUser),
               2, cost);
        return true;
    }

    /**
     * Read the PTE at @p loc for OS purposes. Backends with replicas must
     * OR the Accessed/Dirty bits across all replicas (§5.4).
     */
    virtual pt::Pte readPte(const pt::RootSet &roots, pt::PteLoc loc,
                            KernelCost *cost) const = 0;

    /**
     * Charge-equivalent of calling readPte(loc) @p n times (range ops
     * re-reading the same upper-level slot once per page below it).
     * The default loops; backends override to read once and charge the
     * identical n-fold cost, so range operations keep per-page charge
     * parity with the per-page walk without per-page host work.
     */
    virtual pt::Pte
    readPteMany(const pt::RootSet &roots, pt::PteLoc loc, unsigned n,
                KernelCost *cost) const
    {
        pt::Pte value;
        for (unsigned k = 0; k < n; ++k)
            value = readPte(roots, loc, cost);
        return value;
    }

    /** Clear Accessed/Dirty at @p loc in *all* replicas. */
    virtual void clearAccessedDirty(pt::RootSet &roots, pt::PteLoc loc,
                                    std::uint64_t bits,
                                    KernelCost *cost) = 0;

    /**
     * write_cr3: the root the MMU of a core on @p socket must load when
     * the process is scheduled there (§5.3).
     */
    virtual Pfn cr3For(const pt::RootSet &roots, SocketId socket) const = 0;

    /**
     * Notification that the process has been migrated between sockets.
     * The native backend ignores it; the Mitosis backend migrates the
     * page-tables per its policy (§5.5).
     */
    virtual void onProcessMigrated(pt::RootSet &roots, ProcId owner,
                                   SocketId from, SocketId to,
                                   KernelCost *cost) = 0;

    /**
     * Notification that a thread of the process owning @p roots has
     * been switched in on a core of @p socket (§5.3: "Mitosis
     * allocates a replica when the process is scheduled there"). The
     * time-sharing scheduler fires this on every dispatch; backends
     * doing schedule-driven replication build the socket's replica on
     * the *first* timeslice there and no-op afterwards. The default —
     * and the native backend — ignores it.
     */
    virtual void
    onThreadScheduled(pt::RootSet &roots, ProcId owner, SocketId socket,
                      KernelCost *cost)
    {
        (void)roots;
        (void)owner;
        (void)socket;
        (void)cost;
    }

    /**
     * Pre-fault hook: a walk on @p socket faulted at @p va. Backends
     * with *lazy* replica propagation (the §7.2 library-OS design)
     * drain their pending update queue for that socket here and return
     * true so the access retries; eager backends return false and the
     * kernel services the fault normally.
     */
    virtual bool
    onTranslationFault(pt::RootSet &roots, SocketId socket, VirtAddr va,
                       KernelCost *cost)
    {
        (void)roots;
        (void)socket;
        (void)va;
        (void)cost;
        return false;
    }

    /** Human-readable backend name ("native", "mitosis"). */
    virtual const char *name() const = 0;
};

/** Where PteLoc is in terms of a specific replica page (helper). */
struct PteRef
{
    Pfn ptPfn;
    unsigned index;
};

} // namespace mitosim::pvops

#endif // MITOSIM_PVOPS_PVOPS_H
