/**
 * @file
 * Sharded intra-job simulation: shared types and the global shard-count
 * knob (--sim-threads / MITOSIM_SIM_THREADS).
 *
 * The sharded engine (src/workloads/sharded_engine.cc) splits one
 * measured run into three phases. Phase A records the workload's
 * access trace serially without touching the machine. Phase B replays
 * each simulated core's private state (TLB, PWC, L1D) on a host
 * thread, charging the core-private latency portions and deferring
 * every shared-state effect as a SharedOp tagged with its global trace
 * order. Phase C applies the deferred ops serially in ascending order:
 * L3 / DRAM references and A/D-bit stores happen in exactly the
 * sequence the serial simulator would have issued them, so the final
 * machine state and every counter are byte-identical to a serial run.
 */

#ifndef MITOSIM_SIM_SHARDED_H
#define MITOSIM_SIM_SHARDED_H

#include <cstdint>

#include "src/base/types.h"

namespace mitosim::sim
{

/**
 * One deferred shared-state operation from a private (phase B) replay.
 *
 * @c seq is the index of the originating access in the recorded trace
 * — unique and totally ordered, so a k-way merge of the per-thread op
 * lists reconstructs the exact serial interleaving.
 */
struct SharedOp
{
    enum Kind : std::uint8_t
    {
        L3Data, //!< data line missed the private L1; resolve below it
        L3Pt,   //!< page-table line missed the private L1
        AdSet,  //!< walker wants Accessed/Dirty bits set in a PTE
    };

    std::uint64_t seq = 0;
    /** Line address (L3Data/L3Pt) or exact PTE slot address (AdSet). */
    PhysAddr pa = 0;
    CoreId core = 0;
    Kind kind = L3Data;
    /** Post-switch window was open when the access issued. */
    bool inWindow = false;
    /** AdSet only: the A/D bit mask the walk wanted present. */
    std::uint8_t want = 0;
    /** L3Pt/AdSet: radix level the walker was resolving (1 = leaf),
     *  so phase C can attribute the charge (walkCyclesAttr). */
    std::uint8_t level = 0;
};

/**
 * Host threads used to shard eligible runInterleaved calls. 1 (the
 * default) means the serial simulator runs untouched; N > 1 shards
 * simulated cores across min(N, threads) host threads. Any value is
 * safe: results are byte-identical by construction, and ineligible
 * runs (time-shared scheduler, THP ticks, AutoNUMA) fall back to
 * serial automatically.
 */
int simThreads();
void setSimThreads(int n);

} // namespace mitosim::sim

#endif // MITOSIM_SIM_SHARDED_H
