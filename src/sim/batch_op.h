/**
 * @file
 * The batched-replay operation record and the run-fusion gate.
 *
 * Workloads pre-generate short runs of BatchOp into per-thread buffers
 * (Workload::stepBatch) and ExecContext::runBatch replays them. On the
 * pinned steady-state fast path the replay additionally *fuses*
 * maximal runs of consecutive same-page accesses (Core::accessRun):
 * one real TLB probe and one real cache probe per distinct line, with
 * the remainder charged in bulk. Fusion is exact — see accessRun —
 * and MITOSIM_FUSE=0 restores the per-op reference path so CI can
 * diff the two for byte-identical reports.
 */

#ifndef MITOSIM_SIM_BATCH_OP_H
#define MITOSIM_SIM_BATCH_OP_H

#include "src/base/types.h"

namespace mitosim::sim
{

/**
 * One pre-generated workload operation for the batched stepping path:
 * either a memory access or a compute charge.
 */
struct BatchOp
{
    VirtAddr va = 0;
    Cycles cycles = 0; //!< compute ops: the charged amount
    bool isWrite = false;
    bool isCompute = false;
};

/**
 * Host-side toggle for run fusion inside ExecContext::runBatch. On by
 * default; MITOSIM_FUSE=0 forces the per-op replay loop (while still
 * honouring MITOSIM_BATCH for the batching layer underneath). Read
 * once from the environment: flipping it mid-run is not a supported
 * mode.
 */
bool fuseEnabled();

/**
 * Test-only override of fuseEnabled(): 0 forces per-op replay, 1
 * forces the fused path, -1 restores the environment setting. The
 * batched-stepping property test compares both paths in one process;
 * production code never calls this.
 */
void setFuseEnabledForTest(int enabled);

} // namespace mitosim::sim

#endif // MITOSIM_SIM_BATCH_OP_H
