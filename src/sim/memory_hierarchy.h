/**
 * @file
 * The timing model: per-core L1D, per-socket shared L3, NUMA DRAM.
 *
 * Every simulated memory reference (data or page-table) is charged here.
 * The latency ladder follows the paper's platform: ~4 cycles L1, ~40
 * cycles local L3, a remote-L3 probe that is faster than remote DRAM
 * ("accessing a remote last-level cache may be faster than accessing
 * DRAM", §8.1), then local/remote DRAM at 280/580 cycles, doubled-ish on
 * sockets hosting a bandwidth interferer.
 *
 * Page-table lines and data lines share the L3, so data streaming evicts
 * PT entries naturally — the effect behind Figure 10b's GUPS result.
 */

#ifndef MITOSIM_SIM_MEMORY_HIERARCHY_H
#define MITOSIM_SIM_MEMORY_HIERARCHY_H

#include <vector>

#include "src/base/types.h"
#include "src/cache/set_assoc_cache.h"
#include "src/numa/topology.h"
#include "src/sim/perf_counters.h"

namespace mitosim::sim
{

/** What kind of line an access touches (for counter attribution). */
enum class AccessKind
{
    Data,
    PageTable,
};

/** Cache sizing and latency knobs. */
struct HierarchyConfig
{
    std::uint64_t l1dBytes = 32ull << 10; //!< per-core L1D
    unsigned l1dWays = 8;
    Cycles l1dHitLatency = 4;

    /**
     * Per-socket shared L3. The paper's machine has 35 MB for ~500 GB of
     * DRAM; we default to 1 MB against 4 GB/socket to preserve the
     * leaf-PTE-working-set vs L3 ratio (see DESIGN.md scaling note).
     */
    std::uint64_t l3BytesPerSocket = 1ull << 20;
    unsigned l3Ways = 16;
    Cycles l3HitLatency = 40;

    /** Remote-L3 probe (directory hit in the home socket's cache). */
    bool remoteL3ProbeEnabled = true;
    Cycles l3RemoteHitLatency = 300;
};

/** The full cache + DRAM timing model. */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(numa::Topology &topology, const HierarchyConfig &config);

    /**
     * Perform (and charge) one reference to physical address @p pa from
     * @p core. Updates cache state and @p pc (if non-null).
     *
     * @return latency in cycles.
     */
    Cycles access(CoreId core, PhysAddr pa, bool is_write, AccessKind kind,
                  PerfCounters *pc);

    /**
     * Drop all cached lines of frame @p pfn everywhere (page freed or
     * page-table page torn down).
     */
    void invalidateFrame(Pfn pfn);

    cache::SetAssocCache &l3Of(SocketId socket);
    cache::SetAssocCache &l1dOf(CoreId core);
    const HierarchyConfig &config() const { return cfg; }
    numa::Topology &topology() { return topo; }

  private:
    numa::Topology &topo;
    HierarchyConfig cfg;
    std::vector<cache::SetAssocCache> l1d; //!< per core
    std::vector<cache::SetAssocCache> l3;  //!< per socket
};

} // namespace mitosim::sim

#endif // MITOSIM_SIM_MEMORY_HIERARCHY_H
