/**
 * @file
 * The timing model: per-core L1D, per-socket shared L3, NUMA DRAM.
 *
 * Every simulated memory reference (data or page-table) is charged here.
 * The latency ladder follows the paper's platform: ~4 cycles L1, ~40
 * cycles local L3, a remote-L3 probe that is faster than remote DRAM
 * ("accessing a remote last-level cache may be faster than accessing
 * DRAM", §8.1), then local/remote DRAM at 280/580 cycles, doubled-ish on
 * sockets hosting a bandwidth interferer.
 *
 * Page-table lines and data lines share the L3, so data streaming evicts
 * PT entries naturally — the effect behind Figure 10b's GUPS result.
 */

#ifndef MITOSIM_SIM_MEMORY_HIERARCHY_H
#define MITOSIM_SIM_MEMORY_HIERARCHY_H

#include <vector>

#include "src/base/logging.h"
#include "src/base/types.h"
#include "src/cache/set_assoc_cache.h"
#include "src/numa/topology.h"
#include "src/sim/perf_counters.h"

namespace mitosim::sim
{

/** What kind of line an access touches (for counter attribution). */
enum class AccessKind
{
    Data,
    PageTable,
};

/** Cache sizing and latency knobs. */
struct HierarchyConfig
{
    std::uint64_t l1dBytes = 32ull << 10; //!< per-core L1D
    unsigned l1dWays = 8;
    Cycles l1dHitLatency = 4;

    /**
     * Per-socket shared L3. The paper's machine has 35 MB for ~500 GB of
     * DRAM; we default to 1 MB against 4 GB/socket to preserve the
     * leaf-PTE-working-set vs L3 ratio (see DESIGN.md scaling note).
     */
    std::uint64_t l3BytesPerSocket = 1ull << 20;
    unsigned l3Ways = 16;
    Cycles l3HitLatency = 40;

    /** Remote-L3 probe (directory hit in the home socket's cache). */
    bool remoteL3ProbeEnabled = true;
    Cycles l3RemoteHitLatency = 300;
};

/** The full cache + DRAM timing model. */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(numa::Topology &topology, const HierarchyConfig &config);

    /**
     * Perform (and charge) one reference to physical address @p pa from
     * @p core. Updates cache state and @p pc (if non-null).
     *
     * @return latency in cycles.
     */
    Cycles
    access(CoreId core, PhysAddr pa, bool is_write, AccessKind kind,
           PerfCounters *pc)
    {
        auto &my_l1 = l1d[static_cast<std::size_t>(core)];
        (void)is_write; // presence-only model: writes allocate like reads

        // Fused probe+fill: on a miss the line is installed now rather
        // than after the lower levels respond — state-identical, since
        // accessBelowL1 never touches the private L1.
        if (my_l1.probeInsert(pa)) {
            if (pc)
                ++pc->l1dHits;
            return cfg.l1dHitLatency;
        }

        Cycles below = accessBelowL1(core, pa, kind, pc);
        return cfg.l1dHitLatency + below;
    }

    /**
     * The shared part of an access: everything below the private L1D
     * (local L3, remote-L3 probe, DRAM). Touches only per-socket and
     * global state, never the per-core L1 — the sharded simulator
     * resolves these in global order on one thread while per-core L1
     * probes run privately. Latency excludes the L1 charge.
     */
    Cycles
    accessBelowL1(CoreId core, PhysAddr pa, AccessKind kind,
                  PerfCounters *pc)
    {
        SocketId here = topo.socketOfCore(core);
        SocketId home = topo.socketOfPfn(addrToPfn(pa));
        auto &my_l3 = l3[static_cast<std::size_t>(here)];

        // A socket hosting a bandwidth interferer has its L3 continuously
        // thrashed by the interferer's stream; model it as always-miss.
        // Fused probe+fill: both miss continuations (remote hit, DRAM)
        // install the line locally, so doing it during the probe scan is
        // state-identical — the intervening probe hits a *different*
        // socket's cache.
        bool here_thrashed = topo.hasInterferer(here);
        if (!here_thrashed && my_l3.probeInsert(pa)) {
            if (pc)
                ++pc->l3LocalHits;
            return cfg.l3HitLatency;
        }

        // Remote-L3 probe: the home socket's cache may hold the line.
        if (cfg.remoteL3ProbeEnabled && home != here &&
            !topo.hasInterferer(home)) {
            auto &home_l3 = l3[static_cast<std::size_t>(home)];
            if (home_l3.lookup(pa)) {
                if (pc)
                    ++pc->l3RemoteHits;
                return cfg.l3RemoteHitLatency;
            }
        }

        // DRAM at the home socket.
        Cycles dram = topo.dramLatency(here, home);
        if (pc) {
            bool remote = here != home;
            if (kind == AccessKind::PageTable) {
                if (remote)
                    ++pc->ptDramRemote;
                else
                    ++pc->ptDramLocal;
            } else {
                if (remote)
                    ++pc->dataDramRemote;
                else
                    ++pc->dataDramLocal;
            }
        }
        return cfg.l3HitLatency + dram;
    }

    /**
     * The private part of an access: probe+fill @p core's L1D only, no
     * counters, no latency. The sharded simulator runs this on the
     * owning shard thread (each core's L1 is touched by exactly one
     * thread) and defers the below-L1 resolution of misses.
     */
    bool
    l1ProbeInsert(CoreId core, PhysAddr pa)
    {
        return l1d[static_cast<std::size_t>(core)].probeInsert(pa);
    }

    /**
     * Drop all cached lines of frame @p pfn everywhere (page freed or
     * page-table page torn down).
     */
    void invalidateFrame(Pfn pfn);

    /**
     * Snapshot restore: adopt every cache line (all L1Ds, all L3s) of
     * @p src, which must model the same topology and sizing.
     */
    void
    cloneStateFrom(const MemoryHierarchy &src)
    {
        MITOSIM_ASSERT(l1d.size() == src.l1d.size() &&
                           l3.size() == src.l3.size(),
                       "cloneStateFrom: hierarchy shape mismatch");
        l1d = src.l1d;
        l3 = src.l3;
    }

    cache::SetAssocCache &l3Of(SocketId socket);
    cache::SetAssocCache &l1dOf(CoreId core);
    const HierarchyConfig &config() const { return cfg; }
    numa::Topology &topology() { return topo; }

  private:
    numa::Topology &topo;
    HierarchyConfig cfg;
    std::vector<cache::SetAssocCache> l1d; //!< per core
    std::vector<cache::SetAssocCache> l3;  //!< per socket
};

} // namespace mitosim::sim

#endif // MITOSIM_SIM_MEMORY_HIERARCHY_H
