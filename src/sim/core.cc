#include "core.h"

#include "src/base/logging.h"

namespace mitosim::sim
{

Core::Core(CoreId id, MemoryHierarchy &hierarchy,
           mem::PhysicalMemory &physmem, const tlb::TlbConfig &tlb_cfg,
           const tlb::PwcConfig &pwc_cfg)
    : coreId(id), socketId(hierarchy.topology().socketOfCore(id)),
      hier(hierarchy), walker(physmem, hierarchy), tlb_(tlb_cfg),
      pwc_(pwc_cfg)
{
}

Cycles
Core::loadCr3(Pfn root, Asid asid, bool preserve_translations)
{
    cr3_ = root;
    asid_ = asid;
    tlb_.setAsid(asid);
    pwc_.setAsid(asid);
    if (!preserve_translations) {
        tlb_.flushAll();
        pwc_.flushAll();
    }
    sinceSwitch_ = 0;
    return Cr3LoadCost;
}

void
Core::clearContext()
{
    cr3_ = InvalidPfn;
    tlb_.flushAll();
    pwc_.flushAll();
}

void
Core::flushAsid(Asid asid)
{
    tlb_.flushAsid(asid);
    pwc_.flushAsid(asid);
}

} // namespace mitosim::sim
