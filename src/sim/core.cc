#include "core.h"

#include "src/base/logging.h"

namespace mitosim::sim
{

Core::Core(CoreId id, MemoryHierarchy &hierarchy,
           mem::PhysicalMemory &physmem, const tlb::TlbConfig &tlb_cfg,
           const tlb::PwcConfig &pwc_cfg)
    : coreId(id), socketId(hierarchy.topology().socketOfCore(id)),
      hier(hierarchy), walker(physmem, hierarchy), tlb_(tlb_cfg),
      pwc_(pwc_cfg)
{
}

Cycles
Core::loadCr3(Pfn root, Asid asid, bool preserve_translations)
{
    cr3_ = root;
    asid_ = asid;
    tlb_.setAsid(asid);
    pwc_.setAsid(asid);
    if (!preserve_translations) {
        tlb_.flushAll();
        pwc_.flushAll();
    }
    sinceSwitch_ = 0;
    return Cr3LoadCost;
}

void
Core::clearContext()
{
    cr3_ = InvalidPfn;
    tlb_.flushAll();
    pwc_.flushAll();
}

void
Core::flushAsid(Asid asid)
{
    tlb_.flushAsid(asid);
    pwc_.flushAsid(asid);
}

Cycles
Core::access(VirtAddr va, bool is_write, PerfCounters &pc)
{
    MITOSIM_ASSERT(hasContext(), "access on a core with no CR3");
    ++pc.accesses;
    bool in_window = sinceSwitch_ < PostSwitchWindow;
    ++sinceSwitch_;
    Cycles total = 0;

    // A fault may need several service rounds (e.g. NUMA hint then a
    // normal re-walk); bound retries to catch livelock bugs.
    for (int attempt = 0; attempt < 8; ++attempt) {
        auto look = tlb_.lookup(va);
        total += look.latency;

        if (look.hit) {
            if (look.hitLevel == 1)
                ++pc.tlbL1Hits;
            else
                ++pc.tlbL2Hits;

            if (is_write && !look.entry.writable) {
                // Stale or read-only: raise a protection fault.
                tlb_.invalidatePage(va);
                MITOSIM_ASSERT(faultHandler && *faultHandler,
                               "no fault handler registered");
                Cycles kc = (*faultHandler)(
                    coreId, FaultRequest{va, is_write,
                                         WalkFault::Protection});
                pc.kernelCycles += kc;
                total += kc;
                continue;
            }

            std::uint64_t offset_mask =
                (look.entry.size == PageSizeKind::Large2M)
                    ? (LargePageSize - 1)
                    : (PageSize - 1);
            PhysAddr pa = pfnToAddr(look.entry.pfn) + (va & offset_mask);
            Cycles dl = hier.access(coreId, pa, is_write, AccessKind::Data,
                                    &pc);
            pc.dataStallCycles += dl;
            total += dl;
            pc.cycles += total;
            return total;
        }

        ++pc.tlbMisses;
        auto out = walker.walk(coreId, cr3_, va, is_write, pwc_, &pc);
        pc.walkCycles += out.latency;
        if (in_window) {
            ++pc.postSwitchTlbMisses;
            pc.postSwitchWalkCycles += out.latency;
        }
        total += out.latency;

        if (out.fault == WalkFault::None) {
            tlb_.insert(va, out.entry);
            std::uint64_t offset_mask =
                (out.entry.size == PageSizeKind::Large2M)
                    ? (LargePageSize - 1)
                    : (PageSize - 1);
            PhysAddr pa = pfnToAddr(out.entry.pfn) + (va & offset_mask);
            Cycles dl = hier.access(coreId, pa, is_write, AccessKind::Data,
                                    &pc);
            pc.dataStallCycles += dl;
            total += dl;
            pc.cycles += total;
            return total;
        }

        MITOSIM_ASSERT(faultHandler && *faultHandler,
                       "no fault handler registered");
        Cycles kc = (*faultHandler)(
            coreId, FaultRequest{va, is_write, out.fault});
        pc.kernelCycles += kc;
        total += kc;
    }
    panic("core %d: unresolved fault at va=0x%llx", coreId,
          (unsigned long long)va);
}

} // namespace mitosim::sim
