/**
 * @file
 * Performance counters, the simulated analogue of the paper's perf
 * measurements ("execution cycles and TLB load and store miss walk cycles,
 * i.e. the cycles that the page walker is active for", §3.2).
 */

#ifndef MITOSIM_SIM_PERF_COUNTERS_H
#define MITOSIM_SIM_PERF_COUNTERS_H

#include <cstdint>

#include "src/base/types.h"

namespace mitosim::sim
{

/** Counter block; one per logical thread, aggregated for reporting. */
struct PerfCounters
{
    /// @name Cycle accounting
    /// @{
    Cycles cycles = 0;        //!< total execution cycles
    Cycles walkCycles = 0;    //!< cycles the page walker was active
    Cycles dataStallCycles = 0; //!< cycles in the data-side hierarchy
    Cycles kernelCycles = 0;  //!< cycles in fault/syscall handling
    Cycles computeCycles = 0; //!< non-memory work charged by workloads
    /// @}

    /// @name TLB
    /// @{
    std::uint64_t accesses = 0;
    std::uint64_t tlbL1Hits = 0;
    std::uint64_t tlbL2Hits = 0;
    std::uint64_t tlbMisses = 0;
    /// @}

    /// @name Page walks
    /// @{
    std::uint64_t walks = 0;
    std::uint64_t walkMemRefs = 0;   //!< PT reads issued by the walker
    std::uint64_t ptDramLocal = 0;   //!< walker refs served by local DRAM
    std::uint64_t ptDramRemote = 0;  //!< walker refs served by remote DRAM
    /// @}

    /// @name Data side
    /// @{
    std::uint64_t dataDramLocal = 0;
    std::uint64_t dataDramRemote = 0;
    std::uint64_t l1dHits = 0;
    std::uint64_t l3LocalHits = 0;
    std::uint64_t l3RemoteHits = 0;
    /// @}

    /// @name OS events
    /// @{
    std::uint64_t pageFaults = 0;
    std::uint64_t numaHintFaults = 0;
    std::uint64_t dataPagesMigrated = 0;
    std::uint64_t tlbShootdowns = 0;
    /** Scheduler switch-ins of this thread — including same-process
     *  handovers that keep CR3 loaded (Linux's same-mm fast path), so
     *  not every switch opens a post-switch refill window. */
    std::uint64_t contextSwitches = 0;
    /// @}

    /// @name Post-context-switch window (first accesses after a CR3 load)
    /// @{

    /**
     * TLB misses and the walk cycles they cost within the first
     * Core::PostSwitchWindow accesses after each CR3 load — the refill
     * tax a context switch levies. PCID keeps tagged entries alive
     * across switches and shrinks the miss count; page-table replicas
     * make the walks that do happen local and shrink the cycles.
     */
    std::uint64_t postSwitchTlbMisses = 0;
    Cycles postSwitchWalkCycles = 0;
    /// @}

    /// @name Walk-cycle attribution
    /// @{

    /**
     * walkCycles broken out by [walk level - 1][remote]: which radix
     * level the walker was resolving (0 = leaf PTE .. 3 = root) and
     * whether the page-table page it referenced lived on a different
     * socket than the walking core. Every cycle that lands in
     * walkCycles also lands in exactly one bucket, so the buckets sum
     * to walkCycles exactly — the signal replication policies act on
     * is the remote-leaf share collapsing (§3.2).
     */
    Cycles walkCyclesAttr[PtLevels][2] = {};
    /// @}

    /** Fraction of cycles spent walking page-tables (hashed bars). */
    double
    walkFraction() const
    {
        return cycles ? static_cast<double>(walkCycles) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Fraction of walker DRAM refs that were remote. */
    double
    remotePtFraction() const
    {
        std::uint64_t total = ptDramLocal + ptDramRemote;
        return total ? static_cast<double>(ptDramRemote) /
                           static_cast<double>(total)
                     : 0.0;
    }

    void
    add(const PerfCounters &o)
    {
        cycles += o.cycles;
        walkCycles += o.walkCycles;
        dataStallCycles += o.dataStallCycles;
        kernelCycles += o.kernelCycles;
        computeCycles += o.computeCycles;
        accesses += o.accesses;
        tlbL1Hits += o.tlbL1Hits;
        tlbL2Hits += o.tlbL2Hits;
        tlbMisses += o.tlbMisses;
        walks += o.walks;
        walkMemRefs += o.walkMemRefs;
        ptDramLocal += o.ptDramLocal;
        ptDramRemote += o.ptDramRemote;
        dataDramLocal += o.dataDramLocal;
        dataDramRemote += o.dataDramRemote;
        l1dHits += o.l1dHits;
        l3LocalHits += o.l3LocalHits;
        l3RemoteHits += o.l3RemoteHits;
        pageFaults += o.pageFaults;
        numaHintFaults += o.numaHintFaults;
        dataPagesMigrated += o.dataPagesMigrated;
        tlbShootdowns += o.tlbShootdowns;
        contextSwitches += o.contextSwitches;
        postSwitchTlbMisses += o.postSwitchTlbMisses;
        postSwitchWalkCycles += o.postSwitchWalkCycles;
        for (unsigned l = 0; l < PtLevels; ++l)
            for (int r = 0; r < 2; ++r)
                walkCyclesAttr[l][r] += o.walkCyclesAttr[l][r];
    }
};

} // namespace mitosim::sim

#endif // MITOSIM_SIM_PERF_COUNTERS_H
