#include "walker.h"

// PageWalker::walk is defined inline in walker.h (hot path; see the
// header comment). This TU only anchors the header for the build.
