#include "walker.h"

#include "src/base/logging.h"

namespace mitosim::sim
{

WalkOutcome
PageWalker::walk(CoreId core, Pfn cr3, VirtAddr va, bool is_write,
                 tlb::PagingStructureCache &pwc, PerfCounters *pc)
{
    WalkOutcome out;
    MITOSIM_ASSERT(cr3 != InvalidPfn, "walk with no CR3 loaded");

    auto probe = pwc.lookup(cr3, va);
    Pfn table = probe.tablePfn;
    int level = probe.startLevel;

    while (true) {
        unsigned idx = ptIndex(va, ptLevel(level));
        PhysAddr pte_addr =
            pfnToAddr(table) + idx * sizeof(std::uint64_t);
        out.latency +=
            hier.access(core, pte_addr, false, AccessKind::PageTable, pc);
        ++out.memRefs;

        std::uint64_t *slot = &mem.table(table)[idx];
        pt::Pte entry{*slot};

        if (!entry.present()) {
            out.fault = pt::Pte{*slot}.numaHint() ? WalkFault::NumaHint
                                                  : WalkFault::NotPresent;
            return out;
        }

        bool is_leaf = (level == 1) || (level == 2 && entry.huge());

        if (is_leaf && entry.numaHint()) {
            // AutoNUMA sampling: treated like a (soft) fault.
            out.fault = WalkFault::NumaHint;
            return out;
        }
        if (is_leaf && is_write && !entry.writable()) {
            out.fault = WalkFault::Protection;
            return out;
        }

        // Hardware sets Accessed on every level it traverses and Dirty on
        // the leaf of a store — *directly*, not via PV-Ops (§5.4).
        std::uint64_t want = pt::PteAccessed;
        if (is_leaf && is_write)
            want |= pt::PteDirty;
        if ((entry.raw() & want) != want) {
            *slot = entry.raw() | want;
            // The read above brought the line in; the A/D store is a hit.
            out.latency += 1;
        }

        if (is_leaf) {
            out.entry.pfn = entry.pfn();
            out.entry.writable = entry.writable();
            out.entry.size = (level == 2) ? PageSizeKind::Large2M
                                          : PageSizeKind::Base4K;
            if (pc) {
                ++pc->walks;
                pc->walkMemRefs += out.memRefs;
            }
            return out;
        }

        // Descend; cache the pointer we just resolved.
        pwc.fill(cr3, va, level - 1, entry.pfn());
        table = entry.pfn();
        --level;
    }
}

} // namespace mitosim::sim
