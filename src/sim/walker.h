/**
 * @file
 * The hardware page-table walker.
 *
 * On a TLB miss the walker descends the radix tree starting from the
 * deepest paging-structure-cache hit, issuing one memory reference per
 * level through the cache hierarchy — this is where NUMA placement of
 * page-table pages turns into cycles. It also sets Accessed/Dirty bits
 * *directly in the replica it walks*, bypassing PV-Ops, exactly like
 * real hardware (the behaviour that forces Mitosis to OR A/D bits across
 * replicas when the OS reads them, §5.4).
 */

#ifndef MITOSIM_SIM_WALKER_H
#define MITOSIM_SIM_WALKER_H

#include "src/mem/physical_memory.h"
#include "src/pt/pte.h"
#include "src/sim/memory_hierarchy.h"
#include "src/sim/perf_counters.h"
#include "src/tlb/paging_structure_cache.h"
#include "src/tlb/tlb.h"

namespace mitosim::sim
{

/** Why a walk could not produce a translation. */
enum class WalkFault
{
    None,
    NotPresent, //!< demand-paging fault
    NumaHint,   //!< AutoNUMA sampling fault (leaf had the hint bit)
    Protection, //!< write to a read-only mapping
};

/** Everything a walk produces. */
struct WalkOutcome
{
    WalkFault fault = WalkFault::None;
    tlb::TlbEntry entry;  //!< valid when fault == None
    Cycles latency = 0;   //!< cycles the walker was active
    unsigned memRefs = 0; //!< PT references issued
};

/** One walker per core (state lives in the PWC owned by the core). */
class PageWalker
{
  public:
    PageWalker(mem::PhysicalMemory &physmem, MemoryHierarchy &hierarchy)
        : mem(physmem), hier(hierarchy)
    {
    }

    /**
     * Walk @p va under root @p cr3 on behalf of @p core.
     *
     * @param pwc the core's paging-structure cache (probed and filled)
     * @param is_write whether the faulting access is a store (Dirty bit)
     * @param pc counters to update (may be null)
     */
    WalkOutcome walk(CoreId core, Pfn cr3, VirtAddr va, bool is_write,
                     tlb::PagingStructureCache &pwc, PerfCounters *pc);

  private:
    mem::PhysicalMemory &mem;
    MemoryHierarchy &hier;
};

} // namespace mitosim::sim

#endif // MITOSIM_SIM_WALKER_H
