/**
 * @file
 * The hardware page-table walker.
 *
 * On a TLB miss the walker descends the radix tree starting from the
 * deepest paging-structure-cache hit, issuing one memory reference per
 * level through the cache hierarchy — this is where NUMA placement of
 * page-table pages turns into cycles. It also sets Accessed/Dirty bits
 * *directly in the replica it walks*, bypassing PV-Ops, exactly like
 * real hardware (the behaviour that forces Mitosis to OR A/D bits across
 * replicas when the OS reads them, §5.4).
 */

#ifndef MITOSIM_SIM_WALKER_H
#define MITOSIM_SIM_WALKER_H

#include <vector>

#include "src/base/logging.h"
#include "src/mem/physical_memory.h"
#include "src/pt/pte.h"
#include "src/sim/memory_hierarchy.h"
#include "src/sim/perf_counters.h"
#include "src/sim/sharded.h"
#include "src/tlb/paging_structure_cache.h"
#include "src/tlb/tlb.h"

namespace mitosim::sim
{

/** Why a walk could not produce a translation. */
enum class WalkFault
{
    None,
    NotPresent, //!< demand-paging fault
    NumaHint,   //!< AutoNUMA sampling fault (leaf had the hint bit)
    Protection, //!< write to a read-only mapping
};

/** Everything a walk produces. */
struct WalkOutcome
{
    WalkFault fault = WalkFault::None;
    tlb::TlbEntry entry;  //!< valid when fault == None
    Cycles latency = 0;   //!< cycles the walker was active
    unsigned memRefs = 0; //!< PT references issued
};

/** One walker per core (state lives in the PWC owned by the core). */
class PageWalker
{
  public:
    PageWalker(mem::PhysicalMemory &physmem, MemoryHierarchy &hierarchy)
        : mem(physmem), hier(hierarchy)
    {
    }

    /**
     * Walk @p va under root @p cr3 on behalf of @p core.
     *
     * Defined inline: this is the single hottest function of the whole
     * simulator (every TLB miss lands here), and keeping the body
     * visible to Core::access lets the compiler fold the per-level loop
     * into the access path instead of a cross-TU call.
     *
     * @param pwc the core's paging-structure cache (probed and filled)
     * @param is_write whether the faulting access is a store (Dirty bit)
     * @param pc counters to update (may be null)
     */
    WalkOutcome
    walk(CoreId core, Pfn cr3, VirtAddr va, bool is_write,
         tlb::PagingStructureCache &pwc, PerfCounters *pc)
    {
        WalkOutcome out;
        MITOSIM_DASSERT(cr3 != InvalidPfn, "walk with no CR3 loaded");
        // Read PTEs through tableView: a mutable table() touch on a
        // snapshot-shared arena chunk detaches a 256 KiB copy, and the
        // steady state of a forked run sets no new A/D bits, so walks
        // must not pay that. The mutable slot is fetched only when the
        // store below actually happens.
        const mem::PhysicalMemory &cmem = mem;
        const numa::Topology &topo = hier.topology();
        const SocketId here = topo.socketOfCore(core);

        auto probe = pwc.lookup(cr3, va);
        Pfn table = probe.tablePfn;
        int level = probe.startLevel;

        while (true) {
            unsigned idx = ptIndex(va, ptLevel(level));
            PhysAddr pte_addr =
                pfnToAddr(table) + idx * sizeof(std::uint64_t);
            // Attribution bucket for every cycle this level charges:
            // which level, and was the PT page remote to the core.
            const int remote = topo.socketOfPfn(table) != here;
            Cycles ref = hier.access(core, pte_addr, false,
                                     AccessKind::PageTable, pc);
            out.latency += ref;
            if (pc)
                pc->walkCyclesAttr[level - 1][remote] += ref;
            ++out.memRefs;

            pt::Pte entry{cmem.tableView(table)[idx]};

            if (!entry.present()) {
                out.fault = entry.numaHint() ? WalkFault::NumaHint
                                             : WalkFault::NotPresent;
                return out;
            }

            bool is_leaf = (level == 1) || (level == 2 && entry.huge());

            if (is_leaf && entry.numaHint()) {
                // AutoNUMA sampling: treated like a (soft) fault.
                out.fault = WalkFault::NumaHint;
                return out;
            }
            if (is_leaf && is_write && !entry.writable()) {
                out.fault = WalkFault::Protection;
                return out;
            }

            // Hardware sets Accessed on every level it traverses and
            // Dirty on the leaf of a store — *directly*, not via PV-Ops
            // (§5.4).
            std::uint64_t want = pt::PteAccessed;
            if (is_leaf && is_write)
                want |= pt::PteDirty;
            if ((entry.raw() & want) != want) {
                mem.table(table)[idx] = entry.raw() | want;
                // The read brought the line in; the A/D store is a hit.
                out.latency += 1;
                if (pc)
                    pc->walkCyclesAttr[level - 1][remote] += 1;
            }

            if (is_leaf) {
                out.entry.pfn = entry.pfn();
                out.entry.writable = entry.writable();
                out.entry.size = (level == 2) ? PageSizeKind::Large2M
                                              : PageSizeKind::Base4K;
                if (pc) {
                    ++pc->walks;
                    pc->walkMemRefs += out.memRefs;
                }
                return out;
            }

            // Descend; cache the pointer we just resolved.
            pwc.fill(cr3, va, level - 1, entry.pfn());
            table = entry.pfn();
            --level;
        }
    }

    /**
     * Sharded (phase B) walk: the identical descent to walk(), but
     * touching only core-private state — the PWC, this core's L1D, and
     * a *const* view of physical memory — so concurrent walks of
     * different cores never race. @p out.latency carries the private
     * L1 portion of every PT reference (plus nothing for A/D stores);
     * the below-L1 resolution of L1 misses and the A/D-bit stores are
     * appended to @p sink as deferred ops tagged @p seq / @p in_window
     * for the serial phase C. Page-table contents are stable during a
     * sharded segment (nothing maps, unmaps or migrates), so reading
     * the segment-start PTE values is exact; the only PTE bits another
     * core can set concurrently are A/D, which never change the
     * descent. A fault outcome aborts the whole segment — the caller
     * restores the pre-segment state and replays serially.
     */
    WalkOutcome
    walkSharded(CoreId core, Pfn cr3, VirtAddr va, bool is_write,
                tlb::PagingStructureCache &pwc, PerfCounters *pc,
                std::vector<SharedOp> &sink, std::uint64_t seq,
                bool in_window)
    {
        WalkOutcome out;
        MITOSIM_DASSERT(cr3 != InvalidPfn, "walk with no CR3 loaded");
        const mem::PhysicalMemory &cmem = mem;
        const numa::Topology &topo = hier.topology();
        const SocketId here = topo.socketOfCore(core);

        auto probe = pwc.lookup(cr3, va);
        Pfn table = probe.tablePfn;
        int level = probe.startLevel;

        while (true) {
            unsigned idx = ptIndex(va, ptLevel(level));
            PhysAddr pte_addr =
                pfnToAddr(table) + idx * sizeof(std::uint64_t);
            const int remote = topo.socketOfPfn(table) != here;
            if (hier.l1ProbeInsert(core, pte_addr)) {
                if (pc)
                    ++pc->l1dHits;
            } else {
                // Phase C attributes the below-L1 latency using the
                // level recorded on the deferred op.
                sink.push_back(SharedOp{seq, pte_addr, core,
                                        SharedOp::L3Pt, in_window, 0,
                                        static_cast<std::uint8_t>(level)});
            }
            out.latency += hier.config().l1dHitLatency;
            if (pc)
                pc->walkCyclesAttr[level - 1][remote] +=
                    hier.config().l1dHitLatency;
            ++out.memRefs;

            pt::Pte entry{cmem.tableView(table)[idx]};

            if (!entry.present()) {
                out.fault = entry.numaHint() ? WalkFault::NumaHint
                                             : WalkFault::NotPresent;
                return out;
            }

            bool is_leaf = (level == 1) || (level == 2 && entry.huge());

            if (is_leaf && entry.numaHint()) {
                out.fault = WalkFault::NumaHint;
                return out;
            }
            if (is_leaf && is_write && !entry.writable()) {
                out.fault = WalkFault::Protection;
                return out;
            }

            std::uint64_t want = pt::PteAccessed;
            if (is_leaf && is_write)
                want |= pt::PteDirty;
            // Bits already set at segment start were set at serial
            // time too (nothing clears A/D inside a segment): the
            // serial walk would charge nothing, so skip the op. Bits
            // missing here may still have been set by an *earlier*
            // access of the serial order — phase C re-checks the live
            // slot before charging the +1 store.
            if ((entry.raw() & want) != want) {
                sink.push_back(
                    SharedOp{seq, pte_addr, core, SharedOp::AdSet,
                             in_window, static_cast<std::uint8_t>(want),
                             static_cast<std::uint8_t>(level)});
            }

            if (is_leaf) {
                out.entry.pfn = entry.pfn();
                out.entry.writable = entry.writable();
                out.entry.size = (level == 2) ? PageSizeKind::Large2M
                                              : PageSizeKind::Base4K;
                if (pc) {
                    ++pc->walks;
                    pc->walkMemRefs += out.memRefs;
                }
                return out;
            }

            pwc.fill(cr3, va, level - 1, entry.pfn());
            table = entry.pfn();
            --level;
        }
    }

  private:
    mem::PhysicalMemory &mem;
    MemoryHierarchy &hier;
};

} // namespace mitosim::sim

#endif // MITOSIM_SIM_WALKER_H
