/**
 * @file
 * One simulated CPU core: TLB, paging-structure cache, current CR3, and
 * the access entry point that drives the whole translation pipeline.
 *
 * Faults discovered by the walker are punted to a fault handler the OS
 * layer registers on the Machine (hardware raises, software services).
 */

#ifndef MITOSIM_SIM_CORE_H
#define MITOSIM_SIM_CORE_H

#include "src/base/types.h"
#include "src/sim/batch_op.h"
#include "src/sim/memory_hierarchy.h"
#include "src/sim/perf_counters.h"
#include "src/sim/walker.h"
#include "src/tlb/paging_structure_cache.h"
#include "src/tlb/tlb.h"

namespace mitosim::sim
{

/** A fault the core delivers to the OS. */
struct FaultRequest
{
    VirtAddr va = 0;
    bool isWrite = false;
    WalkFault kind = WalkFault::None;
};

/**
 * Fault service routine: resolves the fault (mapping the page, clearing
 * the hint, upgrading protection, ...) and returns the kernel cycles
 * spent. Must make forward progress or the core panics after retries.
 *
 * A raw function pointer plus opaque context, not a std::function: the
 * handler sits on the access fast path of every simulated fault, and
 * the type-erased call gate plus its per-call validity re-checks showed
 * up in profiles. Validity is asserted once at registration instead.
 */
using FaultHandler = Cycles (*)(void *ctx, CoreId,
                                const FaultRequest &);

/** A CPU core. */
class Core
{
  public:
    Core(CoreId id, MemoryHierarchy &hierarchy,
         mem::PhysicalMemory &physmem, const tlb::TlbConfig &tlb_cfg,
         const tlb::PwcConfig &pwc_cfg);

    CoreId id() const { return coreId; }
    SocketId socket() const { return socketId; }

    /** The serializing CR3 write itself (pipeline drain). */
    static constexpr Cycles Cr3LoadCost = 150;

    /**
     * Accesses after a CR3 load that count into the post-switch
     * counters (PerfCounters::postSwitch*): the TLB-refill window whose
     * misses are the direct price of the context switch.
     */
    static constexpr std::uint64_t PostSwitchWindow = 256;

    /**
     * Context-switch entry point: load a page-table root tagged with
     * @p asid. With @p preserve_translations false (PCID off, or the
     * OS decided the ASID was recycled) the TLB and PWC are flushed
     * outright; with it true they are kept — entries of other address
     * spaces are hidden by their ASID tags, and this space's survivors
     * hit again. Returns the hardware cost of the CR3 write so the
     * scheduler can charge it to the incoming thread.
     */
    Cycles loadCr3(Pfn root, Asid asid, bool preserve_translations);

    /** Legacy single-context load: ASID 0, full flush (seed behaviour). */
    void loadCr3(Pfn root) { loadCr3(root, 0, false); }

    /**
     * Park the core: drop the CR3 (hasContext() goes false) and flush,
     * so a dead process's root can never be walked again.
     */
    void clearContext();

    /** Selective INVPCID: drop @p asid's TLB and PWC entries. */
    void flushAsid(Asid asid);

    /**
     * Snapshot restore: adopt the architectural state of @p src — TLB,
     * PWC, CR3, ASID and the post-switch window counter. Raw field
     * copies on purpose: loadCr3 would flush the translations the
     * donor accumulated. The caller guarantees both cores simulate the
     * same machine shape and core id.
     */
    void
    cloneStateFrom(const Core &src)
    {
        tlb_ = src.tlb_;
        pwc_ = src.pwc_;
        cr3_ = src.cr3_;
        asid_ = src.asid_;
        sinceSwitch_ = src.sinceSwitch_;
    }

    Pfn cr3() const { return cr3_; }
    Asid asid() const { return asid_; }
    bool hasContext() const { return cr3_ != InvalidPfn; }

    /**
     * Execute one load/store to @p va. Drives TLB lookup, page walk,
     * fault servicing and the data-side cache access; charges everything
     * into @p pc and returns the total latency. Defined inline: with
     * the walker and hierarchy also visible in headers, the entire
     * no-fault translation pipeline compiles into one call-free path.
     */
    Cycles
    access(VirtAddr va, bool is_write, PerfCounters &pc)
    {
        tlb::TlbEntry used;
        return accessCaptured(va, is_write, pc, used);
    }

    /**
     * access(), additionally reporting the translation the data access
     * actually used through @p used (post fault servicing). This is
     * what accessRun fuses against; plain access() delegates here and
     * the dead capture store folds away.
     *
     * [[gnu::flatten]] keeps the "one call-free path" promise above:
     * with two callers (access and accessRun) this body exceeds GCC's
     * ordinary inline budget and the walker/TLB/cache calls fall out
     * of line, which costs double-digit percent on the replay loop.
     */
    [[gnu::flatten]] Cycles
    accessCaptured(VirtAddr va, bool is_write, PerfCounters &pc,
                   tlb::TlbEntry &used)
    {
        MITOSIM_DASSERT(hasContext(), "access on a core with no CR3");
        ++pc.accesses;
        bool in_window = sinceSwitch_ < PostSwitchWindow;
        ++sinceSwitch_;
        Cycles total = 0;

        // A fault may need several service rounds (e.g. NUMA hint then
        // a normal re-walk); bound retries to catch livelock bugs.
        for (int attempt = 0; attempt < 8; ++attempt) {
            auto look = tlb_.lookup(va);
            total += look.latency;

            if (look.hit) {
                if (look.hitLevel == 1)
                    ++pc.tlbL1Hits;
                else
                    ++pc.tlbL2Hits;

                if (is_write && !look.entry.writable) {
                    // Stale or read-only: raise a protection fault.
                    tlb_.invalidatePage(va);
                    Cycles kc = faultFn_(
                        faultCtx_, coreId,
                        FaultRequest{va, is_write,
                                     WalkFault::Protection});
                    pc.kernelCycles += kc;
                    total += kc;
                    continue;
                }

                std::uint64_t offset_mask =
                    (look.entry.size == PageSizeKind::Large2M)
                        ? (LargePageSize - 1)
                        : (PageSize - 1);
                PhysAddr pa =
                    pfnToAddr(look.entry.pfn) + (va & offset_mask);
                Cycles dl = hier.access(coreId, pa, is_write,
                                        AccessKind::Data, &pc);
                pc.dataStallCycles += dl;
                total += dl;
                pc.cycles += total;
                used = look.entry;
                return total;
            }

            ++pc.tlbMisses;
            auto out = walker.walk(coreId, cr3_, va, is_write, pwc_, &pc);
            pc.walkCycles += out.latency;
            if (in_window) {
                ++pc.postSwitchTlbMisses;
                pc.postSwitchWalkCycles += out.latency;
            }
            total += out.latency;

            if (out.fault == WalkFault::None) {
                tlb_.insert(va, out.entry);
                std::uint64_t offset_mask =
                    (out.entry.size == PageSizeKind::Large2M)
                        ? (LargePageSize - 1)
                        : (PageSize - 1);
                PhysAddr pa =
                    pfnToAddr(out.entry.pfn) + (va & offset_mask);
                Cycles dl = hier.access(coreId, pa, is_write,
                                        AccessKind::Data, &pc);
                pc.dataStallCycles += dl;
                total += dl;
                pc.cycles += total;
                used = out.entry;
                return total;
            }

            Cycles kc = faultFn_(
                faultCtx_, coreId,
                FaultRequest{va, is_write, out.fault});
            pc.kernelCycles += kc;
            total += kc;
        }
        panic("core %d: unresolved fault at va=0x%llx", coreId,
              (unsigned long long)va);
    }

    /**
     * Fused replay of the maximal run of ops starting at ops[0], which
     * must be an access (not a compute). Returns how many ops were
     * consumed (>= 1).
     *
     * ops[0] goes through the full accessCaptured() pipeline — TLB
     * probe, walk and fault servicing as needed, real data-side cache
     * access — and yields the translation entry. Each subsequent op on
     * the *same page* is then a guaranteed L1-TLB hit on the entry
     * ops[0] just made MRU (nothing evicts or invalidates mid-run: no
     * daemon, scheduler or fault can interleave — runBatch only calls
     * this pinned, and under THP ticks passes a budget that ends the
     * run before any tick could fire), so the
     * probe is skipped and its effects are charged directly:
     * hit counters, the configured L1 hit latency, and a bulk LRU-free
     * stats bump (exact by MRU idempotence — see
     * TwoLevelTlb::noteFusedL1Hits). The data side fuses the same way
     * per cache line: a repeat of the previous line is a guaranteed
     * L1D hit charged without re-probing; a line change issues a real
     * hierarchy access (which may miss to L3/DRAM and evict). Compute
     * ops inside the run are absorbed as plain cycle charges.
     *
     * The run ends at the first op on a different page — or at a write
     * through a read-only translation, which must take the full
     * protection-fault path; both become ops[0] of the next call.
     *
     * @p budget (0 = unlimited) is a cycle cutoff for THP-tick replay:
     * the run also ends — after consuming the crossing op — once the
     * cycles charged by this call reach it. The caller (runBatch's
     * tick-aware fused path) sets budget to the cycles remaining until
     * the next daemon tick: ops strictly before the crossing op can
     * have no tick between them (credit stays below the period), and
     * the per-op reference path fires the tick after exactly the
     * crossing op, so cutting the run there keeps tick points
     * byte-identical to per-op replay.
     */
    [[gnu::flatten]] std::size_t
    accessRun(const BatchOp *ops, std::size_t n, PerfCounters &pc,
              Cycles budget = 0)
    {
        tlb::TlbEntry entry;
        Cycles charged =
            accessCaptured(ops[0].va, ops[0].isWrite, pc, entry);
        if (budget != 0 && charged >= budget)
            return 1;

        const std::uint64_t offset_mask =
            (entry.size == PageSizeKind::Large2M) ? (LargePageSize - 1)
                                                  : (PageSize - 1);
        const VirtAddr page = ops[0].va & ~offset_mask;
        const PhysAddr base = pfnToAddr(entry.pfn);
        const Cycles tlb_lat = tlb_.config().l1HitLatency;
        const Cycles l1d_lat = hier.config().l1dHitLatency;
        PhysAddr prev_line = (base + (ops[0].va & offset_mask)) >>
                             LineShift;

        std::uint64_t fused = 0;
        std::uint64_t fused_l1d = 0;
        std::size_t i = 1;
        for (; i < n; ++i) {
            if (ops[i].isCompute) {
                pc.cycles += ops[i].cycles;
                pc.computeCycles += ops[i].cycles;
                charged += ops[i].cycles;
                if (budget != 0 && charged >= budget) {
                    ++i;
                    break;
                }
                continue;
            }
            if ((ops[i].va & ~offset_mask) != page ||
                (ops[i].isWrite && !entry.writable))
                break;

            ++pc.accesses;
            ++sinceSwitch_;
            ++pc.tlbL1Hits;
            ++fused;
            Cycles total = tlb_lat;

            PhysAddr pa = base + (ops[i].va & offset_mask);
            PhysAddr line = pa >> LineShift;
            Cycles dl;
            if (line == prev_line) {
                ++pc.l1dHits;
                ++fused_l1d;
                dl = l1d_lat;
            } else {
                dl = hier.access(coreId, pa, ops[i].isWrite,
                                 AccessKind::Data, &pc);
                prev_line = line;
            }
            pc.dataStallCycles += dl;
            total += dl;
            pc.cycles += total;
            charged += total;
            if (budget != 0 && charged >= budget) {
                ++i;
                break;
            }
        }

        if (fused) {
            tlb_.noteFusedL1Hits(fused);
            if (fused_l1d)
                hier.l1dOf(coreId).noteFusedHits(fused_l1d);
            ++fusedRuns_;
            fusedOps_ += fused;
        }
        return i;
    }

    /** Host telemetry: runs that fused at least one repeat. */
    std::uint64_t fusedRuns() const { return fusedRuns_; }
    /** Host telemetry: repeats absorbed by fused runs. */
    std::uint64_t fusedOps() const { return fusedOps_; }

    /**
     * Sharded (phase B) access: the core-private half of access().
     * Evolves this core's TLB / PWC / L1D and charges the private
     * latency portions into @p pc; every shared-state effect (L3 and
     * DRAM references, A/D-bit stores) is deferred into @p sink tagged
     * with the global trace order @p seq for the serial phase C.
     * Returns false on any fault — including a protection fault on a
     * TLB hit — without running the handler: the segment aborts, the
     * caller restores the saved pre-segment state and replays the
     * trace serially with fault servicing active.
     */
    bool
    accessSharded(VirtAddr va, bool is_write, PerfCounters &pc,
                  std::vector<SharedOp> &sink, std::uint64_t seq)
    {
        MITOSIM_DASSERT(hasContext(), "access on a core with no CR3");
        ++pc.accesses;
        bool in_window = sinceSwitch_ < PostSwitchWindow;
        ++sinceSwitch_;
        Cycles total = 0;

        auto look = tlb_.lookup(va);
        total += look.latency;

        tlb::TlbEntry entry;
        if (look.hit) {
            if (look.hitLevel == 1)
                ++pc.tlbL1Hits;
            else
                ++pc.tlbL2Hits;
            if (is_write && !look.entry.writable)
                return false;
            entry = look.entry;
        } else {
            ++pc.tlbMisses;
            auto out = walker.walkSharded(coreId, cr3_, va, is_write,
                                          pwc_, &pc, sink, seq,
                                          in_window);
            pc.walkCycles += out.latency;
            if (in_window) {
                ++pc.postSwitchTlbMisses;
                pc.postSwitchWalkCycles += out.latency;
            }
            total += out.latency;
            if (out.fault != WalkFault::None)
                return false;
            tlb_.insert(va, out.entry);
            entry = out.entry;
        }

        std::uint64_t offset_mask =
            (entry.size == PageSizeKind::Large2M) ? (LargePageSize - 1)
                                                  : (PageSize - 1);
        PhysAddr pa = pfnToAddr(entry.pfn) + (va & offset_mask);
        if (hier.l1ProbeInsert(coreId, pa))
            ++pc.l1dHits;
        else
            sink.push_back(SharedOp{seq, pa, coreId, SharedOp::L3Data,
                                    in_window, 0});
        Cycles dl = hier.config().l1dHitLatency;
        pc.dataStallCycles += dl;
        total += dl;
        pc.cycles += total;
        return true;
    }

    /** Architectural state accessSharded can change: a segment abort
     *  restores exactly this (plus the L1D, saved by the engine). */
    struct ShardBackup
    {
        tlb::TwoLevelTlb tlb;
        tlb::PagingStructureCache pwc;
        std::uint64_t sinceSwitch = 0;
    };

    ShardBackup
    saveShardState() const
    {
        return ShardBackup{tlb_, pwc_, sinceSwitch_};
    }

    void
    restoreShardState(ShardBackup &&b)
    {
        tlb_ = std::move(b.tlb);
        pwc_ = std::move(b.pwc);
        sinceSwitch_ = b.sinceSwitch;
    }

    /** OS hook for fault servicing; validity checked here, once. */
    void setFaultHandler(FaultHandler fn, void *ctx)
    {
        MITOSIM_ASSERT(fn, "null fault handler registered");
        faultFn_ = fn;
        faultCtx_ = ctx;
    }

    tlb::TwoLevelTlb &tlb() { return tlb_; }
    tlb::PagingStructureCache &pwc() { return pwc_; }

  private:
    CoreId coreId;
    SocketId socketId;
    MemoryHierarchy &hier;
    PageWalker walker;
    tlb::TwoLevelTlb tlb_;
    tlb::PagingStructureCache pwc_;
    Pfn cr3_ = InvalidPfn;
    Asid asid_ = 0;
    std::uint64_t sinceSwitch_ = 0; //!< accesses since the last CR3 load
    FaultHandler faultFn_ = nullptr;
    void *faultCtx_ = nullptr;

    // Host telemetry (never simulated state; not adopted by
    // cloneStateFrom — a fork counts its own fusion work).
    std::uint64_t fusedRuns_ = 0;
    std::uint64_t fusedOps_ = 0;
};

} // namespace mitosim::sim

#endif // MITOSIM_SIM_CORE_H
