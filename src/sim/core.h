/**
 * @file
 * One simulated CPU core: TLB, paging-structure cache, current CR3, and
 * the access entry point that drives the whole translation pipeline.
 *
 * Faults discovered by the walker are punted to a fault handler the OS
 * layer registers on the Machine (hardware raises, software services).
 */

#ifndef MITOSIM_SIM_CORE_H
#define MITOSIM_SIM_CORE_H

#include <functional>

#include "src/base/types.h"
#include "src/sim/memory_hierarchy.h"
#include "src/sim/perf_counters.h"
#include "src/sim/walker.h"
#include "src/tlb/paging_structure_cache.h"
#include "src/tlb/tlb.h"

namespace mitosim::sim
{

/** A fault the core delivers to the OS. */
struct FaultRequest
{
    VirtAddr va = 0;
    bool isWrite = false;
    WalkFault kind = WalkFault::None;
};

/**
 * Fault service routine: resolves the fault (mapping the page, clearing
 * the hint, upgrading protection, ...) and returns the kernel cycles
 * spent. Must make forward progress or the core panics after retries.
 */
using FaultHandler = std::function<Cycles(CoreId, const FaultRequest &)>;

/** A CPU core. */
class Core
{
  public:
    Core(CoreId id, MemoryHierarchy &hierarchy,
         mem::PhysicalMemory &physmem, const tlb::TlbConfig &tlb_cfg,
         const tlb::PwcConfig &pwc_cfg);

    CoreId id() const { return coreId; }
    SocketId socket() const { return socketId; }

    /** The serializing CR3 write itself (pipeline drain). */
    static constexpr Cycles Cr3LoadCost = 150;

    /**
     * Accesses after a CR3 load that count into the post-switch
     * counters (PerfCounters::postSwitch*): the TLB-refill window whose
     * misses are the direct price of the context switch.
     */
    static constexpr std::uint64_t PostSwitchWindow = 256;

    /**
     * Context-switch entry point: load a page-table root tagged with
     * @p asid. With @p preserve_translations false (PCID off, or the
     * OS decided the ASID was recycled) the TLB and PWC are flushed
     * outright; with it true they are kept — entries of other address
     * spaces are hidden by their ASID tags, and this space's survivors
     * hit again. Returns the hardware cost of the CR3 write so the
     * scheduler can charge it to the incoming thread.
     */
    Cycles loadCr3(Pfn root, Asid asid, bool preserve_translations);

    /** Legacy single-context load: ASID 0, full flush (seed behaviour). */
    void loadCr3(Pfn root) { loadCr3(root, 0, false); }

    /**
     * Park the core: drop the CR3 (hasContext() goes false) and flush,
     * so a dead process's root can never be walked again.
     */
    void clearContext();

    /** Selective INVPCID: drop @p asid's TLB and PWC entries. */
    void flushAsid(Asid asid);

    Pfn cr3() const { return cr3_; }
    Asid asid() const { return asid_; }
    bool hasContext() const { return cr3_ != InvalidPfn; }

    /**
     * Execute one load/store to @p va. Drives TLB lookup, page walk,
     * fault servicing and the data-side cache access; charges everything
     * into @p pc and returns the total latency.
     */
    Cycles access(VirtAddr va, bool is_write, PerfCounters &pc);

    /** OS hook for fault servicing; owned by the Machine, shared. */
    void setFaultHandler(const FaultHandler *handler)
    {
        faultHandler = handler;
    }

    tlb::TwoLevelTlb &tlb() { return tlb_; }
    tlb::PagingStructureCache &pwc() { return pwc_; }

  private:
    CoreId coreId;
    SocketId socketId;
    MemoryHierarchy &hier;
    PageWalker walker;
    tlb::TwoLevelTlb tlb_;
    tlb::PagingStructureCache pwc_;
    Pfn cr3_ = InvalidPfn;
    Asid asid_ = 0;
    std::uint64_t sinceSwitch_ = 0; //!< accesses since the last CR3 load
    const FaultHandler *faultHandler = nullptr;
};

} // namespace mitosim::sim

#endif // MITOSIM_SIM_CORE_H
