/**
 * @file
 * One simulated CPU core: TLB, paging-structure cache, current CR3, and
 * the access entry point that drives the whole translation pipeline.
 *
 * Faults discovered by the walker are punted to a fault handler the OS
 * layer registers on the Machine (hardware raises, software services).
 */

#ifndef MITOSIM_SIM_CORE_H
#define MITOSIM_SIM_CORE_H

#include <functional>

#include "src/base/types.h"
#include "src/sim/memory_hierarchy.h"
#include "src/sim/perf_counters.h"
#include "src/sim/walker.h"
#include "src/tlb/paging_structure_cache.h"
#include "src/tlb/tlb.h"

namespace mitosim::sim
{

/** A fault the core delivers to the OS. */
struct FaultRequest
{
    VirtAddr va = 0;
    bool isWrite = false;
    WalkFault kind = WalkFault::None;
};

/**
 * Fault service routine: resolves the fault (mapping the page, clearing
 * the hint, upgrading protection, ...) and returns the kernel cycles
 * spent. Must make forward progress or the core panics after retries.
 */
using FaultHandler = std::function<Cycles(CoreId, const FaultRequest &)>;

/** A CPU core. */
class Core
{
  public:
    Core(CoreId id, MemoryHierarchy &hierarchy,
         mem::PhysicalMemory &physmem, const tlb::TlbConfig &tlb_cfg,
         const tlb::PwcConfig &pwc_cfg);

    CoreId id() const { return coreId; }
    SocketId socket() const { return socketId; }

    /** Context switch: load a page-table root, flushing TLB and PWC. */
    void loadCr3(Pfn root);

    Pfn cr3() const { return cr3_; }
    bool hasContext() const { return cr3_ != InvalidPfn; }

    /**
     * Execute one load/store to @p va. Drives TLB lookup, page walk,
     * fault servicing and the data-side cache access; charges everything
     * into @p pc and returns the total latency.
     */
    Cycles access(VirtAddr va, bool is_write, PerfCounters &pc);

    /** OS hook for fault servicing; owned by the Machine, shared. */
    void setFaultHandler(const FaultHandler *handler)
    {
        faultHandler = handler;
    }

    tlb::TwoLevelTlb &tlb() { return tlb_; }
    tlb::PagingStructureCache &pwc() { return pwc_; }

  private:
    CoreId coreId;
    SocketId socketId;
    MemoryHierarchy &hier;
    PageWalker walker;
    tlb::TwoLevelTlb tlb_;
    tlb::PagingStructureCache pwc_;
    Pfn cr3_ = InvalidPfn;
    const FaultHandler *faultHandler = nullptr;
};

} // namespace mitosim::sim

#endif // MITOSIM_SIM_CORE_H
