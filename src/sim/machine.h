/**
 * @file
 * The simulated machine: topology + physical memory + cache hierarchy +
 * cores. Pure hardware; the OS layer (os::Kernel) runs "on top" and
 * registers the fault handler.
 */

#ifndef MITOSIM_SIM_MACHINE_H
#define MITOSIM_SIM_MACHINE_H

#include <memory>
#include <vector>

#include "src/mem/physical_memory.h"
#include "src/numa/topology.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/core.h"
#include "src/sim/memory_hierarchy.h"
#include "src/tlb/paging_structure_cache.h"
#include "src/tlb/tlb.h"

namespace mitosim::sim
{

/** Aggregate configuration; defaults model the paper's testbed, scaled. */
struct MachineConfig
{
    numa::TopologyConfig topo;
    HierarchyConfig hier;
    tlb::TlbConfig tlb;
    tlb::PwcConfig pwc;

    /** A small machine for unit tests: 2 sockets x 2 cores x 64 MiB. */
    static MachineConfig
    tiny()
    {
        MachineConfig cfg;
        cfg.topo.numSockets = 2;
        cfg.topo.coresPerSocket = 2;
        cfg.topo.memPerSocket = 64ull << 20;
        cfg.hier.l3BytesPerSocket = 256ull << 10;
        return cfg;
    }
};

/** The hardware. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);

    numa::Topology &topology() { return topo; }
    const numa::Topology &topology() const { return topo; }
    mem::PhysicalMemory &physmem() { return mem_; }
    MemoryHierarchy &hierarchy() { return hier; }

    /**
     * Observability (src/obs): per-machine — and therefore per-job —
     * metrics registry and event tracer. Deliberately NOT part of
     * cloneStateFrom: observability is host telemetry, not simulated
     * hardware state, and snapshot forks reset it instead (see
     * bench::preparePopulated).
     */
    obs::MetricsRegistry &metrics() { return metrics_; }
    obs::Tracer &tracer() { return tracer_; }

    int numCores() const { return topo.numCores(); }
    int numSockets() const { return topo.numSockets(); }
    Core &core(CoreId id);

    /** Register the OS fault service routine (fanned out to all cores). */
    void setFaultHandler(FaultHandler fn, void *ctx);

    /**
     * Snapshot restore: adopt the complete hardware state of @p src —
     * physical memory (frames, metadata, page-table storage), every
     * cache, every core's TLB/PWC/CR3. Both machines must be built
     * from the same MachineConfig; @p src must carry no bandwidth
     * interferers (donors are captured before interferers attach).
     */
    void cloneStateFrom(const Machine &src);

    const MachineConfig &config() const { return cfg; }

  private:
    MachineConfig cfg;
    numa::Topology topo;
    mem::PhysicalMemory mem_;
    MemoryHierarchy hier;
    std::vector<std::unique_ptr<Core>> cores;
    obs::MetricsRegistry metrics_;
    obs::Tracer tracer_;
};

} // namespace mitosim::sim

#endif // MITOSIM_SIM_MACHINE_H
