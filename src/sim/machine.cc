#include "machine.h"

#include "src/base/logging.h"

namespace mitosim::sim
{

Machine::Machine(const MachineConfig &config)
    : cfg(config), topo(cfg.topo), mem_(topo), hier(topo, cfg.hier)
{
    cores.reserve(static_cast<std::size_t>(topo.numCores()));
    for (CoreId c = 0; c < topo.numCores(); ++c)
        cores.push_back(
            std::make_unique<Core>(c, hier, mem_, cfg.tlb, cfg.pwc));
}

Core &
Machine::core(CoreId id)
{
    MITOSIM_ASSERT(id >= 0 && id < numCores(), "core id out of range");
    return *cores[static_cast<std::size_t>(id)];
}

void
Machine::setFaultHandler(FaultHandler h)
{
    handler = std::move(h);
    for (auto &c : cores)
        c->setFaultHandler(&handler);
}

} // namespace mitosim::sim
