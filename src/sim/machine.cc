#include "machine.h"

#include "src/base/logging.h"

namespace mitosim::sim
{

Machine::Machine(const MachineConfig &config)
    : cfg(config), topo(cfg.topo), mem_(topo), hier(topo, cfg.hier)
{
    cores.reserve(static_cast<std::size_t>(topo.numCores()));
    for (CoreId c = 0; c < topo.numCores(); ++c)
        cores.push_back(
            std::make_unique<Core>(c, hier, mem_, cfg.tlb, cfg.pwc));
    tracer_.initFromEnv();
}

Core &
Machine::core(CoreId id)
{
    MITOSIM_ASSERT(id >= 0 && id < numCores(), "core id out of range");
    return *cores[static_cast<std::size_t>(id)];
}

void
Machine::cloneStateFrom(const Machine &src)
{
    MITOSIM_ASSERT(topo.numCores() == src.topo.numCores() &&
                       topo.numSockets() == src.topo.numSockets(),
                   "cloneStateFrom: machine shape mismatch");
    for (SocketId s = 0; s < topo.numSockets(); ++s)
        MITOSIM_ASSERT(!src.topo.hasInterferer(s),
                       "cloneStateFrom: donor has a live interferer");
    mem_.cloneStateFrom(src.mem_);
    hier.cloneStateFrom(src.hier);
    for (std::size_t i = 0; i < cores.size(); ++i)
        cores[i]->cloneStateFrom(*src.cores[i]);
}

void
Machine::setFaultHandler(FaultHandler fn, void *ctx)
{
    MITOSIM_ASSERT(fn, "null fault handler registered");
    for (auto &c : cores)
        c->setFaultHandler(fn, ctx);
}

} // namespace mitosim::sim
