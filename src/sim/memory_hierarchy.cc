#include "memory_hierarchy.h"

#include "src/base/logging.h"

namespace mitosim::sim
{

MemoryHierarchy::MemoryHierarchy(numa::Topology &topology,
                                 const HierarchyConfig &config)
    : topo(topology), cfg(config)
{
    l1d.reserve(static_cast<std::size_t>(topo.numCores()));
    for (int c = 0; c < topo.numCores(); ++c)
        l1d.emplace_back(cfg.l1dBytes, cfg.l1dWays);
    l3.reserve(static_cast<std::size_t>(topo.numSockets()));
    for (SocketId s = 0; s < topo.numSockets(); ++s)
        l3.emplace_back(cfg.l3BytesPerSocket, cfg.l3Ways);
}

void
MemoryHierarchy::invalidateFrame(Pfn pfn)
{
    for (auto &c : l1d)
        c.invalidateFrame(pfn);
    for (auto &c : l3)
        c.invalidateFrame(pfn);
}

cache::SetAssocCache &
MemoryHierarchy::l3Of(SocketId socket)
{
    MITOSIM_ASSERT(socket >= 0 && socket < topo.numSockets());
    return l3[static_cast<std::size_t>(socket)];
}

cache::SetAssocCache &
MemoryHierarchy::l1dOf(CoreId core)
{
    MITOSIM_ASSERT(core >= 0 && core < topo.numCores());
    return l1d[static_cast<std::size_t>(core)];
}

} // namespace mitosim::sim
