#include "memory_hierarchy.h"

#include "src/base/logging.h"

namespace mitosim::sim
{

MemoryHierarchy::MemoryHierarchy(numa::Topology &topology,
                                 const HierarchyConfig &config)
    : topo(topology), cfg(config)
{
    l1d.reserve(static_cast<std::size_t>(topo.numCores()));
    for (int c = 0; c < topo.numCores(); ++c)
        l1d.emplace_back(cfg.l1dBytes, cfg.l1dWays);
    l3.reserve(static_cast<std::size_t>(topo.numSockets()));
    for (SocketId s = 0; s < topo.numSockets(); ++s)
        l3.emplace_back(cfg.l3BytesPerSocket, cfg.l3Ways);
}

Cycles
MemoryHierarchy::access(CoreId core, PhysAddr pa, bool is_write,
                        AccessKind kind, PerfCounters *pc)
{
    SocketId here = topo.socketOfCore(core);
    SocketId home = topo.socketOfPfn(addrToPfn(pa));
    auto &my_l1 = l1d[static_cast<std::size_t>(core)];
    auto &my_l3 = l3[static_cast<std::size_t>(here)];
    (void)is_write; // presence-only model: writes allocate like reads

    if (my_l1.lookup(pa)) {
        if (pc)
            ++pc->l1dHits;
        return cfg.l1dHitLatency;
    }

    // A socket hosting a bandwidth interferer has its L3 continuously
    // thrashed by the interferer's stream; model it as always-miss.
    bool here_thrashed = topo.hasInterferer(here);
    if (!here_thrashed && my_l3.lookup(pa)) {
        my_l1.insert(pa);
        if (pc)
            ++pc->l3LocalHits;
        return cfg.l1dHitLatency + cfg.l3HitLatency;
    }

    // Remote-L3 probe: the home socket's cache may hold the line.
    if (cfg.remoteL3ProbeEnabled && home != here &&
        !topo.hasInterferer(home)) {
        auto &home_l3 = l3[static_cast<std::size_t>(home)];
        if (home_l3.lookup(pa)) {
            my_l1.insert(pa);
            if (!here_thrashed)
                my_l3.insert(pa);
            if (pc)
                ++pc->l3RemoteHits;
            return cfg.l1dHitLatency + cfg.l3RemoteHitLatency;
        }
    }

    // DRAM at the home socket.
    Cycles dram = topo.dramLatency(here, home);
    my_l1.insert(pa);
    if (!here_thrashed)
        my_l3.insert(pa);
    if (pc) {
        bool remote = here != home;
        if (kind == AccessKind::PageTable) {
            if (remote)
                ++pc->ptDramRemote;
            else
                ++pc->ptDramLocal;
        } else {
            if (remote)
                ++pc->dataDramRemote;
            else
                ++pc->dataDramLocal;
        }
    }
    return cfg.l1dHitLatency + cfg.l3HitLatency + dram;
}

void
MemoryHierarchy::invalidateFrame(Pfn pfn)
{
    for (auto &c : l1d)
        c.invalidateFrame(pfn);
    for (auto &c : l3)
        c.invalidateFrame(pfn);
}

cache::SetAssocCache &
MemoryHierarchy::l3Of(SocketId socket)
{
    MITOSIM_ASSERT(socket >= 0 && socket < topo.numSockets());
    return l3[static_cast<std::size_t>(socket)];
}

cache::SetAssocCache &
MemoryHierarchy::l1dOf(CoreId core)
{
    MITOSIM_ASSERT(core >= 0 && core < topo.numCores());
    return l1d[static_cast<std::size_t>(core)];
}

} // namespace mitosim::sim
