#include "batch_op.h"

#include <cstdlib>

namespace mitosim::sim
{

namespace
{

/** setFuseEnabledForTest() override; -1 defers to the environment. */
int fuseOverride = -1;

} // namespace

bool
fuseEnabled()
{
    if (fuseOverride >= 0)
        return fuseOverride != 0;
    static const bool on = [] {
        const char *e = std::getenv("MITOSIM_FUSE");
        return e == nullptr || *e != '0';
    }();
    return on;
}

void
setFuseEnabledForTest(int enabled)
{
    fuseOverride = enabled;
}

} // namespace mitosim::sim
