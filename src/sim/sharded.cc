#include "src/sim/sharded.h"

#include "src/base/logging.h"

namespace mitosim::sim
{

namespace
{
int gSimThreads = 1;
} // namespace

int
simThreads()
{
    return gSimThreads;
}

void
setSimThreads(int n)
{
    MITOSIM_ASSERT(n >= 1, "setSimThreads: want n >= 1");
    gSimThreads = n;
}

} // namespace mitosim::sim
