/**
 * @file
 * vmcheck: whole-machine kernel-invariant checker (CONFIG_DEBUG_VM
 * spirit).
 *
 * An opt-in validation layer that sweeps the entire simulated machine
 * state — every process's page-table replica set, VMA tree, physical
 * frame, core context and TLB/PWC entry — and verifies the invariants
 * the Mitosis replica-update protocol (§4/§5) must preserve by
 * construction:
 *
 *  1. Replica coherence: every per-socket replica tree is structurally
 *     equal to the primary tree modulo socket-local table frames and
 *     hardware-written A/D bits (the walker writes those per-replica;
 *     the OS read path ORs them, §5.4).
 *  2. VMA <-> PTE agreement: every present leaf lies inside a VMA, and
 *     a writable PTE never maps a read-only VMA.
 *  3. Frame accounting: walking every page-table (all replicas) plus
 *     the fragmentation injector and PT reserve caches reaches exactly
 *     the frames the allocators say are allocated — no orphans, no
 *     double owners, no type confusion.
 *  4. CR3/ASID liveness: every loaded CR3 points into a live process's
 *     replica ring; no TLB/PWC entry carries a dead ASID or references
 *     a freed frame (time-shared mode, where stale tags must be
 *     flushed; the pinned seed legally leaves entries behind on
 *     vacated cores).
 *  5. Charge conservation: the per-socket MemStats counters equal a
 *     full PageMeta recount, allocator free+used == total, the Mitosis
 *     backend's replica-page counters match the live replica
 *     population, and the kernel's per-fault-kind cycle buckets sum to
 *     the fault-path total.
 *
 * Checks run at configurable checkpoints (syscall boundaries, scheduler
 * dispatch, THP daemon ticks, end-of-run). A violation produces a
 * structured diagnostic (process, VA range, replica socket,
 * expected/actual) and, by default, fails the run via fatal().
 */

#ifndef MITOSIM_CHECK_VMCHECK_H
#define MITOSIM_CHECK_VMCHECK_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/types.h"

namespace mitosim::os
{
class Kernel;
class Process;
} // namespace mitosim::os

namespace mitosim::check
{

/** The invariant families vmcheck knows how to verify. */
enum class CheckClass
{
    ReplicaCoherence,
    VmaPteAgreement,
    FrameAccounting,
    Cr3AsidLiveness,
    ChargeConservation,
};

const char *checkClassName(CheckClass cls);

/** Knobs (KernelConfig::check); all checks on, checker itself off. */
struct CheckConfig
{
    /** Master switch; nothing below matters while false. */
    bool enabled = false;

    /// @name Checkpoint granularity
    /// @{
    bool atSyscalls = true;  //!< end of every mutating VMA syscall
    bool atThpTicks = true;  //!< after each THP daemon period
    bool atDispatch = false; //!< after real context switches (costly)
    unsigned dispatchEveryN = 64; //!< check every Nth context switch
    /// @}

    /// @name Per-class switches
    /// @{
    bool replicaCoherence = true;
    bool vmaPte = true;
    bool frameAccounting = true;
    bool cr3AsidLiveness = true;
    bool chargeConservation = true;
    /// @}

    /** fatal() on the first violation (tests turn this off to inspect). */
    bool failFast = true;

    /**
     * Apply the MITOSIM_CHECK environment on top of @p base:
     *   MITOSIM_CHECK=1            enable (0 force-disables)
     *   MITOSIM_CHECK_LEVEL=end    end-of-run only
     *                     =syscall syscalls + THP ticks (default)
     *                     =dispatch syscalls + THP ticks + dispatch
     *   MITOSIM_CHECK_FAILFAST=0   collect violations instead of dying
     */
    static CheckConfig fromEnv(CheckConfig base);
};

/** One violated invariant, with enough context to debug it. */
struct Violation
{
    CheckClass cls = CheckClass::ReplicaCoherence;
    ProcId pid = -1;                 //!< offending process, -1 if none
    VirtAddr vaStart = 0;            //!< VA range, 0/0 when not VA-bound
    VirtAddr vaEnd = 0;
    SocketId socket = InvalidSocket; //!< replica / frame socket
    std::string expected;
    std::string actual;
    std::string detail;              //!< free-form context

    /** One-line human-readable rendering. */
    std::string str() const;
};

/** Work counters; surfaced as the per-job "check" report section. */
struct CheckStats
{
    std::uint64_t checkpoints = 0;   //!< checkpoint sites that fired
    std::uint64_t checksRun = 0;     //!< individual class sweeps
    std::uint64_t violations = 0;    //!< total violations recorded
    std::uint64_t replicaTablesCompared = 0;
    std::uint64_t leavesChecked = 0;
    std::uint64_t framesAccounted = 0;
};

/** Fault-path cycle buckets for the conservation check (class 5). */
enum class FaultCharge
{
    Demand = 0,   //!< WalkFault::NotPresent -> faultIn
    NumaHint,     //!< WalkFault::NumaHint -> AutoNuma
    Upgrade,      //!< WalkFault::Protection -> PTE write upgrade
    LazyDrain,    //!< onTranslationFault absorbed the fault
    NumKinds,
};

/**
 * The checker. One per Kernel, owned by it when CheckConfig::enabled;
 * tests and benches may also construct one directly against a kernel
 * and invoke individual checks.
 */
class Checker
{
  public:
    Checker(os::Kernel &kernel, const CheckConfig &config);

    const CheckConfig &config() const { return cfg; }

    /// @name Checkpoint entry points (granularity-gated)
    /// @{
    void atSyscall(const char *what);
    void atThpTick();
    void atDispatch();
    void atEndOfRun();
    /// @}

    /**
     * Run every enabled check class once, regardless of granularity
     * gates. @p where tags diagnostics. Returns violations found *by
     * this sweep*.
     */
    std::size_t runAll(const char *where);

    /// @name Individual invariant sweeps
    /// @{
    void checkReplicaCoherence();
    void checkVmaPteAgreement();
    void checkFrameAccounting();
    void checkCr3AsidLiveness();
    void checkChargeConservation();
    /// @}

    const std::vector<Violation> &violations() const { return found; }
    void clearViolations() { found.clear(); }
    const CheckStats &stats() const { return stats_; }

    /// @name Fault-path charge ledger (fed by Kernel::handleFault)
    /// @{

    /** Accumulate @p cycles into the bucket of @p kind (per case). */
    void noteFaultCharge(FaultCharge kind, Cycles cycles);

    /** Accumulate @p cycles into the grand total (once per fault). */
    void noteFaultTotal(Cycles cycles);
    /// @}

    /**
     * Snapshot restore: adopt the accumulated ledger of @p src —
     * violations, stats, dispatch count and fault-charge buckets — so
     * a forked kernel reports exactly what a from-scratch populate
     * would have. Both checkers must share one CheckConfig.
     */
    void
    cloneStateFrom(const Checker &src)
    {
        found = src.found;
        stats_ = src.stats_;
        where_ = src.where_;
        dispatchCount = src.dispatchCount;
        for (int i = 0; i < static_cast<int>(FaultCharge::NumKinds); ++i)
            faultBuckets[i] = src.faultBuckets[i];
        faultTotal = src.faultTotal;
    }

  private:
    void report(Violation v);

    /** Lockstep descent of one (primary, replica) table pair. */
    void compareTables(os::Process &proc, SocketId socket, Pfn primary,
                       Pfn replica, int level, VirtAddr base,
                       bool lazy_pending);

    os::Kernel &k;
    CheckConfig cfg;
    std::vector<Violation> found;
    CheckStats stats_;
    const char *where_ = "";
    std::uint64_t dispatchCount = 0;

    Cycles faultBuckets[static_cast<int>(FaultCharge::NumKinds)] = {};
    Cycles faultTotal = 0;
};

} // namespace mitosim::check

#endif // MITOSIM_CHECK_VMCHECK_H
