#include "vmcheck.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "src/base/logging.h"
#include "src/core/lazy_backend.h"
#include "src/core/mitosis.h"
#include "src/os/kernel.h"

namespace mitosim::check
{

const char *
checkClassName(CheckClass cls)
{
    switch (cls) {
      case CheckClass::ReplicaCoherence:
        return "replica-coherence";
      case CheckClass::VmaPteAgreement:
        return "vma-pte";
      case CheckClass::FrameAccounting:
        return "frame-accounting";
      case CheckClass::Cr3AsidLiveness:
        return "cr3-asid-liveness";
      case CheckClass::ChargeConservation:
        return "charge-conservation";
    }
    return "unknown";
}

std::string
Violation::str() const
{
    std::string s = format("%s:", checkClassName(cls));
    if (pid >= 0)
        s += format(" pid=%d", pid);
    if (vaEnd > vaStart)
        s += format(" va=[0x%llx,0x%llx)", (unsigned long long)vaStart,
                    (unsigned long long)vaEnd);
    if (socket != InvalidSocket)
        s += format(" socket=%d", socket);
    if (!expected.empty())
        s += format(" expected=%s", expected.c_str());
    if (!actual.empty())
        s += format(" actual=%s", actual.c_str());
    if (!detail.empty())
        s += format(" (%s)", detail.c_str());
    return s;
}

CheckConfig
CheckConfig::fromEnv(CheckConfig base)
{
    if (const char *v = std::getenv("MITOSIM_CHECK"))
        base.enabled = !(v[0] == '0' && v[1] == '\0');
    if (const char *v = std::getenv("MITOSIM_CHECK_LEVEL")) {
        std::string level(v);
        if (level == "end") {
            base.atSyscalls = false;
            base.atThpTicks = false;
            base.atDispatch = false;
        } else if (level == "syscall") {
            base.atSyscalls = true;
            base.atThpTicks = true;
            base.atDispatch = false;
        } else if (level == "dispatch") {
            base.atSyscalls = true;
            base.atThpTicks = true;
            base.atDispatch = true;
        } else {
            warn("MITOSIM_CHECK_LEVEL: unknown level '%s' "
                 "(want end|syscall|dispatch)",
                 v);
        }
    }
    if (const char *v = std::getenv("MITOSIM_CHECK_FAILFAST"))
        base.failFast = !(v[0] == '0' && v[1] == '\0');
    return base;
}

Checker::Checker(os::Kernel &kernel, const CheckConfig &config)
    : k(kernel), cfg(config)
{
}

void
Checker::report(Violation v)
{
    ++stats_.violations;
    found.push_back(v);
    if (cfg.failFast)
        fatal("vmcheck[%s] %s", where_, v.str().c_str());
    warn("vmcheck[%s] %s", where_, v.str().c_str());
}

void
Checker::atSyscall(const char *what)
{
    if (cfg.atSyscalls)
        runAll(what);
}

void
Checker::atThpTick()
{
    if (cfg.atThpTicks)
        runAll("thp-tick");
}

void
Checker::atDispatch()
{
    if (!cfg.atDispatch)
        return;
    if (++dispatchCount % std::max(1u, cfg.dispatchEveryN) != 0)
        return;
    runAll("dispatch");
}

void
Checker::atEndOfRun()
{
    runAll("end-of-run");
}

std::size_t
Checker::runAll(const char *where)
{
    ++stats_.checkpoints;
    where_ = where;
    std::size_t before = found.size();
    if (cfg.replicaCoherence)
        checkReplicaCoherence();
    if (cfg.vmaPte)
        checkVmaPteAgreement();
    if (cfg.frameAccounting)
        checkFrameAccounting();
    if (cfg.cr3AsidLiveness)
        checkCr3AsidLiveness();
    if (cfg.chargeConservation)
        checkChargeConservation();
    return found.size() - before;
}

// ---------------------------------------------------------------------
// 1. Replica coherence
// ---------------------------------------------------------------------

void
Checker::checkReplicaCoherence()
{
    ++stats_.checksRun;
    auto &pm = k.machine().physmem();
    auto *lazy = dynamic_cast<core::LazyMitosisBackend *>(&k.backend());

    for (os::Process *p : k.liveProcesses()) {
        const pt::RootSet &roots = p->roots();
        if (roots.primaryRoot == InvalidPfn)
            continue;
        for (SocketId s = 0; s < k.machine().numSockets(); ++s) {
            Pfn root = roots.rootFor(s);
            if (root == roots.primaryRoot)
                continue;
            if (pm.replicaOnSocket(roots.primaryRoot, s) != root) {
                report({CheckClass::ReplicaCoherence, p->id(), 0, 0, s,
                        "per-socket root in primary's replica ring",
                        format("pfn %llu", (unsigned long long)root),
                        "RootSet::perSocketRoot points outside the "
                        "replica set"});
                continue;
            }
            bool pending = lazy && lazy->pendingFor(s) > 0;
            compareTables(*p, s, roots.primaryRoot, root, 4, 0, pending);
        }
    }
}

void
Checker::compareTables(os::Process &proc, SocketId socket, Pfn primary,
                       Pfn replica, int level, VirtAddr base,
                       bool lazy_pending)
{
    if (primary == replica)
        return; // degraded allocation: the socket shares this frame
    auto &pm = k.machine().physmem();
    ++stats_.replicaTablesCompared;
    const std::uint64_t *tbl_p = pm.table(primary);
    const std::uint64_t *tbl_r = pm.table(replica);
    std::uint64_t span = bytesPerEntry(ptLevel(level));

    for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
        pt::Pte ep{tbl_p[i]};
        pt::Pte er{tbl_r[i]};
        VirtAddr va = base + i * span;
        if (ep.present() != er.present()) {
            // A lazily-propagating backend queues installs per socket;
            // a replica missing an entry is legal while updates are
            // pending for that socket. Present-entry changes are eager
            // by the lazy rule, so everything else stays strict.
            if (lazy_pending)
                continue;
            report({CheckClass::ReplicaCoherence, proc.id(), va, va + span,
                    socket, ep.present() ? "present" : "non-present",
                    er.present() ? "present" : "non-present",
                    format("L%d entry %u diverges between primary pfn "
                           "%llu and replica pfn %llu",
                           level, i, (unsigned long long)primary,
                           (unsigned long long)replica)});
            continue;
        }
        if (!ep.present())
            continue;

        // Hardware walkers write A/D bits into the replica they walked
        // (§5.4: the read path ORs them), so compare modulo A/D.
        std::uint64_t flags_p = ep.raw() & ~(pt::PtePfnMask | pt::PteAdMask);
        std::uint64_t flags_r = er.raw() & ~(pt::PtePfnMask | pt::PteAdMask);
        if (flags_p != flags_r) {
            report({CheckClass::ReplicaCoherence, proc.id(), va, va + span,
                    socket, format("flags 0x%llx",
                                   (unsigned long long)flags_p),
                    format("flags 0x%llx", (unsigned long long)flags_r),
                    format("L%d entry %u flag divergence", level, i)});
            continue;
        }

        bool leaf = (level == 1) || (level == 2 && ep.huge());
        if (leaf) {
            ++stats_.leavesChecked;
            // Data frames are shared by all replicas: copied verbatim.
            if (ep.pfn() != er.pfn()) {
                report({CheckClass::ReplicaCoherence, proc.id(), va,
                        va + span, socket,
                        format("data pfn %llu",
                               (unsigned long long)ep.pfn()),
                        format("data pfn %llu",
                               (unsigned long long)er.pfn()),
                        "leaf entries must reference the same frame"});
            }
            continue;
        }

        // Non-leaf: each copy references the child replica local to its
        // own socket when one exists (semantic replication, §2.3), and
        // falls back to a cross-socket link after a degraded
        // allocation — either way both sides must name members of the
        // *same* replica ring.
        bool in_ring = false;
        pm.forEachReplica(ep.pfn(), [&](Pfn member) {
            if (member == er.pfn())
                in_ring = true;
        });
        if (!in_ring) {
            report({CheckClass::ReplicaCoherence, proc.id(), va, va + span,
                    socket,
                    format("child in replica ring of pfn %llu",
                           (unsigned long long)ep.pfn()),
                    format("pfn %llu", (unsigned long long)er.pfn()),
                    format("L%d entry %u links outside the child's "
                           "replica set",
                           level, i)});
            continue;
        }
        compareTables(proc, socket, ep.pfn(), er.pfn(), level - 1, va,
                      lazy_pending);
    }
}

// ---------------------------------------------------------------------
// 2. VMA <-> PTE agreement
// ---------------------------------------------------------------------

void
Checker::checkVmaPteAgreement()
{
    ++stats_.checksRun;
    for (os::Process *p : k.liveProcesses()) {
        k.ptOps().forEachLeaf(
            p->roots(),
            [&](VirtAddr va, pt::PteLoc, pt::Pte pte, PageSizeKind size) {
                ++stats_.leavesChecked;
                std::uint64_t span = size == PageSizeKind::Large2M
                                         ? LargePageSize
                                         : PageSize;
                VirtAddr end = va + span;
                // Every present leaf must lie inside VMA coverage.
                // (The reverse — every VMA page being mapped — is NOT
                // an invariant: demand paging leaves VMAs unbacked.)
                VirtAddr cur = va;
                const os::Vma *only = nullptr;
                int vma_count = 0;
                bool hole = false;
                while (cur < end) {
                    const os::Vma *vma = p->findVma(cur);
                    if (!vma) {
                        report({CheckClass::VmaPteAgreement, p->id(), va,
                                end, InvalidSocket, "VMA covering leaf",
                                format("no VMA at va=0x%llx",
                                       (unsigned long long)cur),
                                "mapped PTE outside any VMA"});
                        hole = true;
                        break;
                    }
                    only = vma;
                    ++vma_count;
                    cur = vma->end;
                }
                if (hole)
                    return;
                // Protection agreement: a writable PTE in a read-only
                // VMA would let the simulated MMU skip a fault the VMA
                // metadata promises. The inverse (read-only PTE in a
                // writable VMA) is the legal lazy-upgrade state the
                // Protection fault path resolves. Huge leaves spanning
                // several VMAs are skipped: with splitPartial off, a
                // partial mprotect legally rewrites the whole leaf
                // while splitting only the VMA.
                if (vma_count == 1 && pte.writable() &&
                    !(only->prot & os::ProtWrite)) {
                    report({CheckClass::VmaPteAgreement, p->id(), va, end,
                            InvalidSocket, "read-only PTE (VMA lacks "
                            "ProtWrite)",
                            "writable PTE",
                            "PTE grants write the VMA forbids"});
                }
            });
    }
}

// ---------------------------------------------------------------------
// 3. Frame accounting
// ---------------------------------------------------------------------

namespace
{

enum class Reach : std::uint8_t
{
    Pt,
    Data,
    LargeHead,
    LargeTail,
};

const char *
reachName(Reach r)
{
    switch (r) {
      case Reach::Pt:
        return "page-table";
      case Reach::Data:
        return "4K data";
      case Reach::LargeHead:
        return "2M head";
      case Reach::LargeTail:
        return "2M tail";
    }
    return "?";
}

} // namespace

void
Checker::checkFrameAccounting()
{
    ++stats_.checksRun;
    auto &pm = k.machine().physmem();

    // Phase 1: walk every process's page-tables (full replica rings)
    // and leaves, recording what each reached frame must be.
    struct Mark
    {
        Reach reach;
        ProcId pid;
    };
    std::unordered_map<Pfn, Mark> reached;
    std::unordered_set<ProcId> live_pids;
    auto mark = [&](Pfn pfn, Reach r, ProcId pid) {
        auto [it, fresh] = reached.try_emplace(pfn, Mark{r, pid});
        if (!fresh) {
            report({CheckClass::FrameAccounting, pid, 0, 0,
                    pm.socketOf(pfn),
                    format("single owner (first reached as %s by pid %d)",
                           reachName(it->second.reach), it->second.pid),
                    format("reached again as %s", reachName(r)),
                    format("pfn %llu has two owners",
                           (unsigned long long)pfn)});
        }
    };

    for (os::Process *p : k.liveProcesses()) {
        live_pids.insert(p->id());
        if (p->roots().primaryRoot == InvalidPfn)
            continue;
        k.ptOps().forEachTable(p->roots(), [&](Pfn pt_pfn, int) {
            pm.forEachReplica(pt_pfn, [&](Pfn member) {
                mark(member, Reach::Pt, p->id());
            });
        });
        k.ptOps().forEachLeaf(
            p->roots(),
            [&](VirtAddr, pt::PteLoc, pt::Pte pte, PageSizeKind size) {
                if (size == PageSizeKind::Large2M) {
                    mark(pte.pfn(), Reach::LargeHead, p->id());
                    for (std::uint64_t j = 1; j < FramesPerLargePage; ++j)
                        mark(pte.pfn() + j, Reach::LargeTail, p->id());
                } else {
                    mark(pte.pfn(), Reach::Data, p->id());
                }
            });
    }

    // Phase 2: sweep every physical frame and reconcile allocator
    // state, PageMeta and reachability.
    for (SocketId s = 0; s < k.machine().numSockets(); ++s) {
        const mem::FrameAllocator &alloc = pm.allocator(s);
        Pfn base = alloc.firstPfn();
        Pfn limit = base + alloc.totalFrames();
        for (Pfn pfn = base; pfn < limit; ++pfn) {
            const mem::PageMeta &m = pm.meta(pfn);
            auto it = reached.find(pfn);
            if (!alloc.isAllocated(pfn)) {
                if (!m.isFree()) {
                    report({CheckClass::FrameAccounting, m.owner, 0, 0, s,
                            "FrameType::Free",
                            format("type %d", (int)m.type),
                            format("pfn %llu free in the allocator but "
                                   "typed as in-use",
                                   (unsigned long long)pfn)});
                }
                if (it != reached.end()) {
                    report({CheckClass::FrameAccounting, it->second.pid,
                            0, 0, s, "allocated frame",
                            "free frame",
                            format("page-tables reference freed pfn %llu "
                                   "as %s",
                                   (unsigned long long)pfn,
                                   reachName(it->second.reach))});
                }
                continue;
            }
            ++stats_.framesAccounted;
            switch (m.type) {
              case mem::FrameType::Free:
                report({CheckClass::FrameAccounting, m.owner, 0, 0, s,
                        "in-use frame type",
                        "FrameType::Free",
                        format("pfn %llu allocated but typed Free",
                               (unsigned long long)pfn)});
                break;
              case mem::FrameType::Reserved:
                // Legal reserves: fragmentation-injector fillers and
                // the per-socket PT page caches. Both are invisible to
                // page-tables.
                if (!m.hasFlag(mem::FrameFlagFragPin) &&
                    !m.hasFlag(mem::FrameFlagPtReserve)) {
                    report({CheckClass::FrameAccounting, m.owner, 0, 0, s,
                            "FragPin or PtReserve flag",
                            format("flags 0x%x", m.flags),
                            format("reserved pfn %llu belongs to no "
                                   "known reserve",
                                   (unsigned long long)pfn)});
                }
                if (it != reached.end()) {
                    report({CheckClass::FrameAccounting, it->second.pid,
                            0, 0, s, "unreferenced reserve frame",
                            reachName(it->second.reach),
                            format("page-tables reference reserved pfn "
                                   "%llu",
                                   (unsigned long long)pfn)});
                }
                break;
              case mem::FrameType::PageTable:
                if (!m.hasTable()) {
                    report({CheckClass::FrameAccounting, m.owner, 0, 0, s,
                            "host-backed table storage",
                            "null", format("PT pfn %llu has no storage",
                                           (unsigned long long)pfn)});
                }
                if (it == reached.end()) {
                    // Frames of processes this kernel does not know
                    // (another kernel sharing the machine) cannot be
                    // classified; orphans are only provable for our
                    // own live processes.
                    if (live_pids.count(m.owner)) {
                        report({CheckClass::FrameAccounting, m.owner, 0,
                                0, s, "reachable from owner's tables",
                                "orphaned",
                                format("PT pfn %llu (L%d) unreachable "
                                       "from pid %d's replica rings",
                                       (unsigned long long)pfn, m.level,
                                       m.owner)});
                    }
                } else if (it->second.reach != Reach::Pt) {
                    report({CheckClass::FrameAccounting, it->second.pid,
                            0, 0, s, "page-table reference",
                            reachName(it->second.reach),
                            format("pfn %llu typed PageTable but mapped "
                                   "as data",
                                   (unsigned long long)pfn)});
                }
                break;
              case mem::FrameType::Data:
                if (it == reached.end()) {
                    if (live_pids.count(m.owner)) {
                        report({CheckClass::FrameAccounting, m.owner, 0,
                                0, s, "reachable from owner's leaves",
                                "orphaned",
                                format("data pfn %llu unreachable from "
                                       "pid %d's page-tables",
                                       (unsigned long long)pfn,
                                       m.owner)});
                    }
                } else {
                    bool head = m.hasFlag(mem::FrameFlagLargeHead);
                    bool tail = m.hasFlag(mem::FrameFlagLargeTail);
                    Reach expect = head ? Reach::LargeHead
                                   : tail ? Reach::LargeTail
                                          : Reach::Data;
                    if (it->second.reach != expect) {
                        report({CheckClass::FrameAccounting,
                                it->second.pid, 0, 0, s,
                                reachName(expect),
                                reachName(it->second.reach),
                                format("pfn %llu size-class confusion",
                                       (unsigned long long)pfn)});
                    }
                }
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// 4. CR3 / ASID liveness
// ---------------------------------------------------------------------

void
Checker::checkCr3AsidLiveness()
{
    ++stats_.checksRun;
    auto &mach = k.machine();
    auto &pm = mach.physmem();
    std::vector<os::Process *> procs = k.liveProcesses();

    auto owner_of_root = [&](Pfn cr3) -> os::Process * {
        for (os::Process *p : procs) {
            if (p->roots().primaryRoot == InvalidPfn)
                continue;
            bool member = false;
            pm.forEachReplica(p->roots().primaryRoot, [&](Pfn m) {
                if (m == cr3)
                    member = true;
            });
            if (member)
                return p;
        }
        return nullptr;
    };

    // Loaded CR3s must point into a live process's root replica ring
    // (both modes: dead processes park their cores in removeProcess).
    for (CoreId c = 0; c < mach.numCores(); ++c) {
        sim::Core &core = mach.core(c);
        if (!core.hasContext())
            continue;
        Pfn cr3 = core.cr3();
        os::Process *owner = owner_of_root(cr3);
        if (!owner) {
            report({CheckClass::Cr3AsidLiveness, -1, 0, 0,
                    mach.topology().socketOfCore(c),
                    "CR3 in a live process's root ring",
                    format("pfn %llu", (unsigned long long)cr3),
                    format("core %d holds a dangling CR3", c)});
            continue;
        }
        const mem::PageMeta &m = pm.meta(cr3);
        if (!m.isPageTable() || m.level != 4) {
            report({CheckClass::Cr3AsidLiveness, owner->id(), 0, 0,
                    mach.topology().socketOfCore(c),
                    "live L4 page-table frame",
                    format("type %d level %d", (int)m.type, m.level),
                    format("core %d CR3 pfn %llu", c,
                           (unsigned long long)cr3)});
        }
        if (core.asid() != owner->asid) {
            report({CheckClass::Cr3AsidLiveness, owner->id(), 0, 0,
                    mach.topology().socketOfCore(c),
                    format("ASID %u", owner->asid),
                    format("ASID %u", core.asid()),
                    format("core %d ASID does not match the resident "
                           "address space",
                           c)});
        }
    }

    // Entry-level TLB/PWC checks need the time-shared flush discipline:
    // the pinned seed legally leaves stale tagged entries on cores a
    // process migrated away from (removeProcess only parks owned cores,
    // and migrateThreads clears vacated contexts without flushing
    // elsewhere).
    if (!k.scheduler().timeShared())
        return;

    std::unordered_map<Asid, os::Process *> live_asid;
    for (os::Process *p : procs)
        live_asid.emplace(p->asid, p);

    for (CoreId c = 0; c < mach.numCores(); ++c) {
        sim::Core &core = mach.core(c);
        SocketId cs = mach.topology().socketOfCore(c);

        core.tlb().forEachEntry([&](VirtAddr va, Asid asid,
                                    const tlb::TlbEntry &entry) {
            auto it = live_asid.find(asid);
            if (it == live_asid.end()) {
                report({CheckClass::Cr3AsidLiveness, -1, va,
                        va + (entry.size == PageSizeKind::Large2M
                                  ? LargePageSize
                                  : PageSize),
                        cs, "live ASID",
                        format("dead ASID %u", asid),
                        format("core %d TLB entry outlived its address "
                               "space",
                               c)});
                return;
            }
            // The entry must agree with the owner's current mapping:
            // any PTE change (unmap, migrate, collapse, split) must
            // have shot this entry down before a checkpoint runs.
            os::Process *p = it->second;
            pt::WalkResult w = k.ptOps().walk(p->roots(), va);
            std::uint64_t span = entry.size == PageSizeKind::Large2M
                                     ? LargePageSize
                                     : PageSize;
            if (!w.mapped) {
                report({CheckClass::Cr3AsidLiveness, p->id(), va,
                        va + span, cs, "mapped leaf",
                        "unmapped va",
                        format("core %d TLB entry for a torn-down "
                               "mapping",
                               c)});
                return;
            }
            Pfn expect;
            if (w.size == PageSizeKind::Large2M) {
                expect = entry.size == PageSizeKind::Large2M
                             ? w.leaf.pfn()
                             : w.leaf.pfn() +
                                   ((va >> PageShift) &
                                    (FramesPerLargePage - 1));
            } else {
                if (entry.size == PageSizeKind::Large2M) {
                    report({CheckClass::Cr3AsidLiveness, p->id(), va,
                            va + span, cs, "4K translation",
                            "stale 2M TLB entry",
                            format("core %d entry survived a huge-page "
                                   "split",
                                   c)});
                    return;
                }
                expect = w.leaf.pfn();
            }
            if (entry.pfn != expect) {
                report({CheckClass::Cr3AsidLiveness, p->id(), va,
                        va + span, cs,
                        format("pfn %llu", (unsigned long long)expect),
                        format("pfn %llu", (unsigned long long)entry.pfn),
                        format("core %d TLB entry maps a stale frame",
                               c)});
                return;
            }
            if (entry.writable && !w.leaf.writable()) {
                report({CheckClass::Cr3AsidLiveness, p->id(), va,
                        va + span, cs, "read-only translation",
                        "writable TLB entry",
                        format("core %d entry grants revoked write "
                               "access",
                               c)});
            }
        });

        core.pwc().forEachEntry([&](Pfn cr3, Asid asid, int level,
                                    Pfn table_pfn) {
            auto it = live_asid.find(asid);
            if (it == live_asid.end()) {
                report({CheckClass::Cr3AsidLiveness, -1, 0, 0, cs,
                        "live ASID", format("dead ASID %u", asid),
                        format("core %d PWC entry outlived its address "
                               "space",
                               c)});
                return;
            }
            os::Process *p = it->second;
            bool root_live = false;
            if (p->roots().primaryRoot != InvalidPfn) {
                pm.forEachReplica(p->roots().primaryRoot, [&](Pfn m) {
                    if (m == cr3)
                        root_live = true;
                });
            }
            if (!root_live) {
                report({CheckClass::Cr3AsidLiveness, p->id(), 0, 0, cs,
                        "PWC tag CR3 in the owner's root ring",
                        format("pfn %llu", (unsigned long long)cr3),
                        format("core %d PWC entry tagged with a freed "
                               "root",
                               c)});
                return;
            }
            const mem::PageMeta &m = pm.meta(table_pfn);
            if (!m.isPageTable() || m.level != level) {
                report({CheckClass::Cr3AsidLiveness, p->id(), 0, 0, cs,
                        format("live L%d page-table frame", level),
                        format("type %d level %d", (int)m.type, m.level),
                        format("core %d PWC entry references pfn %llu",
                               c, (unsigned long long)table_pfn)});
            }
        });
    }
}

// ---------------------------------------------------------------------
// 5. Charge conservation
// ---------------------------------------------------------------------

void
Checker::checkChargeConservation()
{
    ++stats_.checksRun;
    auto &pm = k.machine().physmem();

    for (SocketId s = 0; s < k.machine().numSockets(); ++s) {
        const mem::FrameAllocator &alloc = pm.allocator(s);
        Pfn base = alloc.firstPfn();
        Pfn limit = base + alloc.totalFrames();
        std::uint64_t n_data = 0;
        std::uint64_t n_heads = 0;
        std::uint64_t n_tails = 0;
        std::uint64_t n_pt = 0;
        std::uint64_t n_pt_reserve = 0;
        std::uint64_t n_alloc = 0;
        for (Pfn pfn = base; pfn < limit; ++pfn) {
            if (!alloc.isAllocated(pfn))
                continue;
            ++n_alloc;
            const mem::PageMeta &m = pm.meta(pfn);
            switch (m.type) {
              case mem::FrameType::Data:
                if (m.hasFlag(mem::FrameFlagLargeHead))
                    ++n_heads;
                else if (m.hasFlag(mem::FrameFlagLargeTail))
                    ++n_tails;
                else
                    ++n_data;
                break;
              case mem::FrameType::PageTable:
                ++n_pt;
                break;
              case mem::FrameType::Reserved:
                if (m.hasFlag(mem::FrameFlagPtReserve))
                    ++n_pt_reserve;
                break;
              default:
                break;
            }
        }

        const mem::MemStats &st = pm.stats(s);
        auto mismatch = [&](const char *what, std::uint64_t counted,
                            std::uint64_t claimed) {
            if (counted == claimed)
                return;
            report({CheckClass::ChargeConservation, -1, 0, 0, s,
                    format("%llu", (unsigned long long)counted),
                    format("%llu", (unsigned long long)claimed),
                    format("MemStats.%s disagrees with a full PageMeta "
                           "recount",
                           what)});
        };
        mismatch("dataPages", n_data, st.dataPages);
        mismatch("dataLargePages", n_heads, st.dataLargePages);
        mismatch("ptPages", n_pt, st.ptPages);
        if (n_heads * (FramesPerLargePage - 1) != n_tails) {
            report({CheckClass::ChargeConservation, -1, 0, 0, s,
                    format("%llu tails",
                           (unsigned long long)(n_heads *
                                                (FramesPerLargePage - 1))),
                    format("%llu tails", (unsigned long long)n_tails),
                    "2M head/tail population out of balance"});
        }
        if (n_pt_reserve != pm.ptCacheSize(s)) {
            report({CheckClass::ChargeConservation, -1, 0, 0, s,
                    format("%llu", (unsigned long long)pm.ptCacheSize(s)),
                    format("%llu", (unsigned long long)n_pt_reserve),
                    "PT reserve cache size disagrees with PtReserve "
                    "frame count"});
        }
        std::uint64_t by_level = 0;
        for (int level = 1; level <= 4; ++level)
            by_level += pm.ptPagesAt(s, level);
        if (by_level != st.ptPages) {
            report({CheckClass::ChargeConservation, -1, 0, 0, s,
                    format("%llu", (unsigned long long)st.ptPages),
                    format("%llu", (unsigned long long)by_level),
                    "per-level PT counters do not sum to ptPages"});
        }
        if (n_alloc + alloc.freeFrames() != alloc.totalFrames()) {
            report({CheckClass::ChargeConservation, -1, 0, 0, s,
                    format("%llu", (unsigned long long)alloc.totalFrames()),
                    format("%llu allocated + %llu free",
                           (unsigned long long)n_alloc,
                           (unsigned long long)alloc.freeFrames()),
                    "allocator free-count drifted from its bitmap"});
        }
    }

    // Mitosis replica-page conservation: pages created minus freed must
    // equal the live replica population reachable from this kernel's
    // processes (valid because a backend serves exactly one kernel).
    if (auto *mb = dynamic_cast<core::MitosisBackend *>(&k.backend())) {
        std::uint64_t live_replicas = 0;
        for (os::Process *p : k.liveProcesses()) {
            if (p->roots().primaryRoot == InvalidPfn)
                continue;
            k.ptOps().forEachTable(p->roots(), [&](Pfn pt_pfn, int) {
                live_replicas += static_cast<std::uint64_t>(
                    pm.replicaCount(pt_pfn) - 1);
            });
        }
        const core::MitosisStats &ms = mb->stats();
        std::uint64_t net =
            ms.replicaPagesCreated - ms.replicaPagesFreed;
        if (net != live_replicas) {
            report({CheckClass::ChargeConservation, -1, 0, 0,
                    InvalidSocket,
                    format("%llu live replica pages",
                           (unsigned long long)live_replicas),
                    format("created %llu - freed %llu = %llu",
                           (unsigned long long)ms.replicaPagesCreated,
                           (unsigned long long)ms.replicaPagesFreed,
                           (unsigned long long)net),
                    "backend replica-page counters do not match the "
                    "live population"});
        }
    }

    // Fault-path cycle ledger: the per-kind buckets (accumulated inside
    // each handleFault case) must sum to the totals (accumulated once
    // at return) — a fault kind that forgets its bucket breaks this.
    Cycles sum = 0;
    for (Cycles bucket : faultBuckets)
        sum += bucket;
    if (sum != faultTotal) {
        report({CheckClass::ChargeConservation, -1, 0, 0, InvalidSocket,
                format("%llu total fault cycles",
                       (unsigned long long)faultTotal),
                format("%llu across buckets", (unsigned long long)sum),
                "per-kind fault charges do not sum to the fault-path "
                "total"});
    }
}

void
Checker::noteFaultCharge(FaultCharge kind, Cycles cycles)
{
    faultBuckets[static_cast<int>(kind)] += cycles;
}

void
Checker::noteFaultTotal(Cycles cycles)
{
    faultTotal += cycles;
}

} // namespace mitosim::check
