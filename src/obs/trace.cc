#include "trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mitosim::obs
{

namespace
{

const char *const kCatNames[NumTraceCats] = {
    "fault", "shootdown", "replica", "sched", "thp", "asid",
};

/** splitmix64: deterministic, well-mixed 64-bit hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

unsigned
parseMask(const char *spec)
{
    if (!spec || !*spec || std::strcmp(spec, "0") == 0)
        return 0;
    if (std::strcmp(spec, "all") == 0 || std::strcmp(spec, "1") == 0)
        return (1u << NumTraceCats) - 1;
    unsigned mask = 0;
    const char *p = spec;
    while (*p) {
        const char *end = p;
        while (*end && *end != ',')
            ++end;
        std::size_t len = static_cast<std::size_t>(end - p);
        for (unsigned c = 0; c < NumTraceCats; ++c)
            if (len == std::strlen(kCatNames[c]) &&
                std::strncmp(p, kCatNames[c], len) == 0)
                mask |= 1u << c;
        p = *end ? end + 1 : end;
    }
    return mask;
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoull(v, nullptr, 10);
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
}

} // namespace

const char *
traceCatName(TraceCat cat)
{
    return kCatNames[static_cast<unsigned>(cat)];
}

void
Tracer::initFromEnv()
{
    mask_ = parseMask(std::getenv("MITOSIM_TRACE"));
    cap_ = static_cast<std::size_t>(envU64("MITOSIM_TRACE_CAP", 65536));
    if (cap_ == 0)
        cap_ = 1;
    sample_ = envU64("MITOSIM_TRACE_SAMPLE", 1);
    if (sample_ == 0)
        sample_ = 1;
    seed_ = envU64("MITOSIM_TRACE_SEED", 0);
}

void
Tracer::configure(unsigned mask, std::size_t capacity,
                  std::uint64_t sample, std::uint64_t seed)
{
    mask_ = mask & ((1u << NumTraceCats) - 1);
    cap_ = capacity ? capacity : 1;
    sample_ = sample ? sample : 1;
    seed_ = seed;
    reset();
}

void
Tracer::push(const TraceEvent &ev)
{
    // Per-category 1-in-N sampling, keyed on the category's own event
    // sequence number so the kept subset is independent of other
    // categories' volume (and of anything host-side).
    unsigned c = static_cast<unsigned>(ev.cat);
    std::uint64_t seq = catSeq_[c]++;
    if (sample_ > 1 &&
        mix64(seed_ ^ (static_cast<std::uint64_t>(c) << 56) ^ seq) %
                sample_ !=
            0)
        return;
    if (ring_.size() < cap_) {
        ring_.push_back(ev);
        return;
    }
    // Full: overwrite the oldest so the ring keeps the newest events.
    ring_[head_] = ev;
    head_ = (head_ + 1) % cap_;
    ++dropped_;
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

std::string
Tracer::exportJson() const
{
    if (ring_.empty())
        return "";
    std::string out;
    out.reserve(ring_.size() * 96 + 256);
    out += "{\"traceEvents\":[\n";
    bool first = true;
    for (const TraceEvent &ev : events()) {
        if (!first)
            out += ",\n";
        first = false;
        out += "{\"name\":\"";
        out += ev.name;
        out += "\",\"cat\":\"";
        out += traceCatName(ev.cat);
        out += "\",\"ph\":\"";
        out += ev.ph;
        out += "\",\"ts\":";
        appendU64(out, ev.ts);
        if (ev.ph == 'X') {
            out += ",\"dur\":";
            appendU64(out, ev.dur);
        } else {
            out += ",\"s\":\"t\"";
        }
        out += ",\"pid\":";
        appendU64(out, static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(ev.pid)));
        out += ",\"tid\":";
        appendU64(out, static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(ev.tid)));
        if (ev.arg0Name) {
            out += ",\"args\":{\"";
            out += ev.arg0Name;
            out += "\":";
            appendU64(out, ev.arg0);
            if (ev.arg1Name) {
                out += ",\"";
                out += ev.arg1Name;
                out += "\":";
                appendU64(out, ev.arg1);
            }
            out += "}";
        }
        out += "}";
    }
    out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
           "\"dropped_events\":";
    appendU64(out, dropped_);
    out += ",\"virtual_cycles_per_us\":1}}\n";
    return out;
}

void
Tracer::reset()
{
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
    now_ = 0;
    for (auto &s : catSeq_)
        s = 0;
}

} // namespace mitosim::obs
