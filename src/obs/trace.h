/**
 * @file
 * Event tracer: an opt-in, fixed-capacity ring buffer of
 * virtual-cycle-stamped simulation events, exported as Chrome /
 * Perfetto trace-event JSON so a whole run can be opened on a
 * timeline (chrome://tracing or https://ui.perfetto.dev).
 *
 * Off by default: `MITOSIM_TRACE=<categories>` enables it (see
 * TraceCat for names; "all" enables everything). While disabled every
 * emission point is a single inlined mask test against zero, so the
 * hot path stays within the perf regression gate and reports remain
 * metric-identical. Companion knobs:
 *
 *   MITOSIM_TRACE_CAP=N     ring capacity in events (default 65536);
 *                           on overflow the ring keeps the NEWEST
 *                           events and counts the overwritten ones
 *   MITOSIM_TRACE_SAMPLE=N  keep 1-in-N events per category
 *                           (default 1 = keep all); the keep decision
 *                           hashes (seed, category, per-category
 *                           sequence number), so it is deterministic
 *                           and independent of host threading
 *   MITOSIM_TRACE_SEED=S    sampling hash seed (default 0)
 *
 * Timestamps are virtual cycles advanced by the owning job's
 * execution context; the exported JSON maps 1 cycle = 1 trace
 * microsecond (integer-only, so traces are byte-stable across hosts).
 */

#ifndef MITOSIM_OBS_TRACE_H
#define MITOSIM_OBS_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/types.h"

namespace mitosim::obs
{

/** Event categories (bit positions for the enable mask). */
enum class TraceCat : unsigned
{
    Fault = 0,     //!< page-fault handled (complete event, dur = cost)
    Shootdown = 1, //!< TLB shootdown / remote flush
    Replica = 2,   //!< replica page create / update / free
    Sched = 3,     //!< dispatch / preempt / migrate
    Thp = 4,       //!< khugepaged collapse, kcompactd relocation
    Asid = 5,      //!< ASID recycle flush
};
inline constexpr unsigned NumTraceCats = 6;

/** Category display name ("fault", "sched", ...). */
const char *traceCatName(TraceCat cat);

/** One trace event. Names point at string literals — never freed. */
struct TraceEvent
{
    const char *name = nullptr;
    const char *arg0Name = nullptr; //!< nullptr: no args
    const char *arg1Name = nullptr; //!< nullptr: one arg at most
    std::uint64_t ts = 0;           //!< virtual cycles
    std::uint64_t dur = 0;          //!< complete events only
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    std::int32_t pid = 0;
    std::int32_t tid = 0;
    TraceCat cat = TraceCat::Fault;
    char ph = 'i'; //!< 'X' complete, 'i' instant
};

/**
 * Per-machine tracer. One tracer per job (it lives on the job's
 * sim::Machine), so traces are deterministic regardless of how many
 * jobs run concurrently.
 */
class Tracer
{
  public:
    /** Read MITOSIM_TRACE* from the environment (done by Machine). */
    void initFromEnv();

    /** Test hook: override the env-derived configuration. */
    void configure(unsigned mask, std::size_t capacity,
                   std::uint64_t sample, std::uint64_t seed);

    bool enabled() const { return mask_ != 0; }

    bool
    enabled(TraceCat cat) const
    {
        return (mask_ >> static_cast<unsigned>(cat)) & 1u;
    }

    /** Advance the virtual clock (called per workload op; a single
     *  inlined test-against-zero when tracing is off). */
    void
    advance(Cycles c)
    {
        if (mask_)
            now_ += c;
    }

    std::uint64_t now() const { return now_; }

    /** Instant event at the current virtual time. */
    void
    instant(TraceCat cat, const char *name, std::int32_t pid,
            std::int32_t tid, const char *arg0_name = nullptr,
            std::uint64_t arg0 = 0, const char *arg1_name = nullptr,
            std::uint64_t arg1 = 0)
    {
        if (!enabled(cat))
            return;
        TraceEvent ev;
        ev.name = name;
        ev.cat = cat;
        ev.ph = 'i';
        ev.ts = now_;
        ev.pid = pid;
        ev.tid = tid;
        ev.arg0Name = arg0_name;
        ev.arg0 = arg0;
        ev.arg1Name = arg1_name;
        ev.arg1 = arg1;
        push(ev);
    }

    /** Complete event starting now, lasting @p dur virtual cycles. */
    void
    complete(TraceCat cat, const char *name, std::uint64_t dur,
             std::int32_t pid, std::int32_t tid,
             const char *arg0_name = nullptr, std::uint64_t arg0 = 0,
             const char *arg1_name = nullptr, std::uint64_t arg1 = 0)
    {
        if (!enabled(cat))
            return;
        TraceEvent ev;
        ev.name = name;
        ev.cat = cat;
        ev.ph = 'X';
        ev.ts = now_;
        ev.dur = dur;
        ev.pid = pid;
        ev.tid = tid;
        ev.arg0Name = arg0_name;
        ev.arg0 = arg0;
        ev.arg1Name = arg1_name;
        ev.arg1 = arg1;
        push(ev);
    }

    /** Events in chronological order (oldest retained first). */
    std::vector<TraceEvent> events() const;

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** Chrome trace-event JSON ("" when nothing was recorded). */
    std::string exportJson() const;

    /**
     * Drop recorded events, the dropped-count, per-category sampling
     * sequence numbers and the virtual clock; keep the configuration.
     * Used after snapshot populate so a forked job starts from the
     * same observability state as a fresh one.
     */
    void reset();

  private:
    void push(const TraceEvent &ev);

    unsigned mask_ = 0; //!< 0 = tracing off (the default)
    std::size_t cap_ = 65536;
    std::uint64_t sample_ = 1; //!< keep 1-in-N per category
    std::uint64_t seed_ = 0;
    std::uint64_t now_ = 0;
    std::uint64_t dropped_ = 0;
    std::size_t head_ = 0; //!< next write position once full
    std::uint64_t catSeq_[NumTraceCats] = {};
    std::vector<TraceEvent> ring_;
};

} // namespace mitosim::obs

#endif // MITOSIM_OBS_TRACE_H
