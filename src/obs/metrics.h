/**
 * @file
 * Metrics registry: named counters, gauges and log2-bucketed
 * histograms with label dimensions (pid, socket, page size, walk
 * level, ...).
 *
 * Subsystems register instruments once (at construction or lazily at
 * the first event) and hold the returned pointer; bumping an
 * instrument is then a single inlined integer add with no lookup, map
 * access or branch on the hot path. The registry owns the storage
 * (std::deque, so handles stay stable across registrations) and
 * flattens everything into an ordered name -> value list for the
 * report's "metrics" section.
 *
 * Instruments are plain value accumulators — they never touch
 * simulated state, so the "metrics" report section is excluded from
 * the paper-metric identity contract (tools/cmp_reports.py strips it
 * alongside "wall_ms" and "check").
 */

#ifndef MITOSIM_OBS_METRICS_H
#define MITOSIM_OBS_METRICS_H

#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace mitosim::obs
{

/** One label dimension: key -> value, e.g. {"socket", "1"}. */
using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

/** Monotonic counter. */
struct Counter
{
    std::uint64_t value = 0;

    void inc(std::uint64_t n = 1) { value += n; }
};

/**
 * Last-write-wins gauge. Signed: a gauge tracking live objects can dip
 * below its post-reset() baseline when objects created before the
 * reset are freed after it (e.g. populate-phase replicas freed during
 * measurement), and -3 reads better than a wrapped uint64.
 */
struct Gauge
{
    std::int64_t value = 0;

    void set(std::int64_t v) { value = v; }
    void add(std::int64_t n) { value += n; }
    void sub(std::int64_t n) { value -= n; }
};

/**
 * Log2-bucketed histogram: bucket 0 holds value 0, bucket k >= 1
 * holds values in [2^(k-1), 2^k). 64-bit values need 65 buckets.
 * Percentiles are reported as the lower bound of the bucket holding
 * the requested rank — deterministic and integer-only.
 */
struct Histogram
{
    static constexpr int NumBuckets = 65;

    std::uint64_t buckets[NumBuckets] = {};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    void
    observe(std::uint64_t v)
    {
        ++buckets[std::bit_width(v)];
        ++count;
        sum += v;
    }

    /** Lower bound of bucket @p b (the reported percentile value). */
    static std::uint64_t
    bucketFloor(int b)
    {
        return b == 0 ? 0 : 1ull << (b - 1);
    }

    /** Percentile @p q in [0,1]; 0 when empty. */
    std::uint64_t percentile(double q) const;
};

/**
 * Registry of named instruments. Registration is idempotent: asking
 * for the same name+labels again returns the existing instrument, so
 * per-event lazy registration is safe (but callers should still cache
 * the handle — registration does a map lookup).
 */
class MetricsRegistry
{
  public:
    Counter &counter(std::string name, Labels labels = {});
    Gauge &gauge(std::string name, Labels labels = {});
    Histogram &histogram(std::string name, Labels labels = {});

    /**
     * Flatten every instrument into (name, value) pairs in
     * registration order. Counter/gauge emit one pair; a histogram
     * emits name_count / name_sum / name_p50 / name_p90 / name_p99.
     * Labels render as name{k=v,...} with keys in registration order.
     * Values are doubles (the report's number type); every counter and
     * bucket bound in practice is far below 2^53, so the conversion is
     * exact.
     */
    std::vector<std::pair<std::string, double>> flatten() const;

    /**
     * Zero every instrument, keeping registrations (and therefore
     * every handle held by kernel/scheduler/backend code) valid.
     * Used after snapshot populate so observability state is
     * identical whether a job ran fresh or from a fork.
     */
    void reset();

    bool empty() const { return entries_.empty(); }

  private:
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram
    };

    struct Entry
    {
        std::string key; //!< rendered name{labels}
        Kind kind;
        Counter counter;
        Gauge gauge;
        Histogram hist;
    };

    Entry &find(Kind kind, std::string name, Labels &labels);

    static std::string render(const std::string &name,
                              const Labels &labels);

    std::deque<Entry> entries_; //!< deque: stable handle addresses
    std::map<std::string, std::size_t> index_;
};

} // namespace mitosim::obs

#endif // MITOSIM_OBS_METRICS_H
