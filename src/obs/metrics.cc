#include "metrics.h"

#include "src/base/logging.h"

namespace mitosim::obs
{

std::uint64_t
Histogram::percentile(double q) const
{
    if (count == 0)
        return 0;
    // Rank of the requested observation (0-based, floor).
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count - 1));
    std::uint64_t seen = 0;
    for (int b = 0; b < NumBuckets; ++b) {
        seen += buckets[b];
        if (seen > rank)
            return bucketFloor(b);
    }
    return bucketFloor(NumBuckets - 1);
}

std::string
MetricsRegistry::render(const std::string &name, const Labels &labels)
{
    if (labels.empty())
        return name;
    std::string out = name;
    out += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i)
            out += ',';
        out += labels[i].first;
        out += '=';
        out += labels[i].second;
    }
    out += '}';
    return out;
}

MetricsRegistry::Entry &
MetricsRegistry::find(Kind kind, std::string name, Labels &labels)
{
    std::string key = render(name, labels);
    auto it = index_.find(key);
    if (it != index_.end()) {
        Entry &e = entries_[it->second];
        MITOSIM_ASSERT(e.kind == kind,
                       "metric re-registered with a different kind");
        return e;
    }
    entries_.emplace_back();
    Entry &e = entries_.back();
    e.key = std::move(key);
    e.kind = kind;
    index_.emplace(e.key, entries_.size() - 1);
    return e;
}

Counter &
MetricsRegistry::counter(std::string name, Labels labels)
{
    return find(Kind::Counter, std::move(name), labels).counter;
}

Gauge &
MetricsRegistry::gauge(std::string name, Labels labels)
{
    return find(Kind::Gauge, std::move(name), labels).gauge;
}

Histogram &
MetricsRegistry::histogram(std::string name, Labels labels)
{
    return find(Kind::Histogram, std::move(name), labels).hist;
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::flatten() const
{
    auto num = [](auto v) { return static_cast<double>(v); };
    std::vector<std::pair<std::string, double>> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_) {
        switch (e.kind) {
        case Kind::Counter:
            out.emplace_back(e.key, num(e.counter.value));
            break;
        case Kind::Gauge:
            out.emplace_back(e.key, num(e.gauge.value));
            break;
        case Kind::Histogram:
            out.emplace_back(e.key + "_count", num(e.hist.count));
            out.emplace_back(e.key + "_sum", num(e.hist.sum));
            out.emplace_back(e.key + "_p50",
                             num(e.hist.percentile(0.50)));
            out.emplace_back(e.key + "_p90",
                             num(e.hist.percentile(0.90)));
            out.emplace_back(e.key + "_p99",
                             num(e.hist.percentile(0.99)));
            break;
        }
    }
    return out;
}

void
MetricsRegistry::reset()
{
    for (Entry &e : entries_) {
        e.counter = Counter{};
        e.gauge = Gauge{};
        e.hist = Histogram{};
    }
}

} // namespace mitosim::obs
