#include <vector>

#include "src/base/logging.h"
#include "src/os/kernel.h"
#include "src/pvops/costs.h"

namespace mitosim::os
{

void
AutoNuma::scan(Process &proc, double fraction, Rng &rng)
{
    // Collect candidate leaves first; placing hints mutates leaf values
    // (never structure, but keep the phases separate for clarity).
    std::vector<VirtAddr> sampled;
    k.ptOps().forEachLeaf(
        proc.roots(),
        [&](VirtAddr va, pt::PteLoc, pt::Pte pte, PageSizeKind) {
            ++stats_.pagesScanned;
            if (!pte.numaHint() && rng.chance(fraction))
                sampled.push_back(va);
        });

    pvops::KernelCost cost;
    for (VirtAddr va : sampled) {
        k.ptOps().protect(proc.roots(), va, pt::PteNumaHint, 0, &cost);
        k.shootdown(proc, va, &cost);
        ++stats_.hintsPlaced;
    }
}

Cycles
AutoNuma::onHintFault(Process &proc, CoreId core, VirtAddr va)
{
    ++stats_.hintFaults;
    pvops::KernelCost cost;
    cost.charge(pvops::FaultFixedCost);

    auto &ops = k.ptOps();
    pt::WalkResult res = ops.walk(proc.roots(), va);
    if (!res.mapped) {
        // Raced with an unmap; nothing to do.
        return cost.cycles;
    }

    // Clear the hint so the retry proceeds.
    ops.protect(proc.roots(), va, 0, pt::PteNumaHint, &cost);
    k.shootdown(proc, va, &cost);

    // Migrate the *data* page towards the accessor if it is remote.
    // Page-table pages are deliberately never migrated here — that is
    // the stock-kernel behaviour Mitosis fixes.
    auto &physmem = k.machine().physmem();
    SocketId here = k.machine().topology().socketOfCore(core);
    Pfn data = res.leaf.pfn();
    if (physmem.socketOf(data) != here) {
        auto fresh = physmem.migrateData(data, here);
        if (fresh) {
            int level = (res.size == PageSizeKind::Large2M) ? 2 : 1;
            pt::WalkResult cur = ops.walk(proc.roots(), va);
            MITOSIM_ASSERT(cur.mapped);
            k.backend().setPte(proc.roots(), cur.loc,
                               cur.leaf.withPfn(*fresh), level, &cost);
            std::uint64_t frames = (res.size == PageSizeKind::Large2M)
                                       ? FramesPerLargePage
                                       : 1;
            cost.charge(pvops::PageCopyCost * frames);
            ++stats_.pagesMigrated;
        } else {
            ++stats_.migrationFailures;
        }
    }
    return cost.cycles;
}

} // namespace mitosim::os
