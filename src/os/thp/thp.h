/**
 * @file
 * THP lifecycle subsystem: huge pages as a managed lifecycle instead of
 * a fault-time-only decision.
 *
 * The paper's Figure 11 shows the *static* end state of fragmentation:
 * 2 MB allocations fail, workloads silently fall back to 4 KB pages,
 * and remote page-table walks get devastating. Real Linux fights back
 * with two daemons, which this subsystem reproduces:
 *
 *  - **khugepaged**: scans THP-eligible VMAs for fully-populated,
 *    same-socket 512-PTE runs and collapses them into one 2 MB mapping
 *    (a fresh large block, the data copied over, the leaf table
 *    released — in *every* replica, via the PV-Ops collapseRange hook).
 *  - **kcompactd**: reconstitutes allocLargeBlock() capacity when
 *    collapse fails for lack of contiguity, by relocating the few
 *    allocated frames out of nearly-free 2 MB blocks (mapped data
 *    frames move through the data-migration path — PTE rewrite plus
 *    stale-translation shootdown — and fragmentation-injector fillers
 *    move as modelled movable kernel memory).
 *  - a **split path**: partial munmap/mprotect over a 2 MB mapping (and
 *    madvise boundaries) demote it to 512 4 KB PTEs through the PV-Ops
 *    splitHuge hook instead of silently zapping 2 MB of data.
 *
 * Everything is off by default and the split path is gated
 * (ThpConfig::splitPartial), so a kernel built with the default config
 * is charge-identical to one without the subsystem.
 */

#ifndef MITOSIM_OS_THP_THP_H
#define MITOSIM_OS_THP_THP_H

#include <cstdint>
#include <map>
#include <vector>

#include "src/base/types.h"
#include "src/obs/metrics.h"
#include "src/os/process.h"
#include "src/pvops/pvops.h"

namespace mitosim::os
{
class Kernel;
}

namespace mitosim::os::thp
{

/** Construction-time knobs (Kernel::KernelConfig::thp). */
struct ThpConfig
{
    /** Run the background collapse daemon on thpTick(). */
    bool khugepaged = false;

    /** Run the background compaction daemon on thpTick(). */
    bool kcompactd = false;

    /**
     * Demote huge pages that partially overlap a munmap/mprotect range
     * instead of the seed's whole-leaf zap. Gated so the default
     * kernel stays charge-identical; madvise() always splits straddling
     * huge pages (it is new API with no legacy callers).
     */
    bool splitPartial = false;

    /** khugepaged: 2 MB candidate ranges examined per process, per
     *  tick (Linux's pages_to_scan analogue). */
    std::uint64_t scanRangesPerTick = 512;

    /** khugepaged: collapse budget per process, per tick. */
    unsigned collapsesPerTick = 64;

    /**
     * khugepaged: how many of a candidate range's 512 PTEs may be
     * *empty* and still collapse, the holes becoming zero-filled
     * subpages of the huge mapping (Linux's max_ptes_none; 511 is the
     * Linux default — one resident page suffices). 0 restricts
     * collapse to fully-populated runs.
     */
    unsigned maxPtesNone = 511;

    /** kcompactd: source blocks drained per socket, per tick. */
    unsigned compactBlocksPerTick = 64;

    /** kcompactd: only drain blocks with at most this many allocated
     *  frames (cheap wins first; Linux's fragmentation-index role). */
    std::uint32_t compactMaxUsed = 64;
};

/** Lifecycle activity counters (the bench report's "thp" section). */
struct ThpStats
{
    std::uint64_t rangesScanned = 0;     //!< khugepaged 2 MB candidates
    std::uint64_t collapses = 0;         //!< 4K→2M promotions
    std::uint64_t collapseFailedNoBlock = 0; //!< failed 2 MB allocations
    std::uint64_t splits = 0;            //!< 2M→4K demotions
    std::uint64_t compactionBlocksReclaimed = 0; //!< blocks drained free
    std::uint64_t compactionPagesMoved = 0;      //!< frames relocated
    std::uint64_t compactionFailures = 0; //!< unmovable block / no dest
    Cycles daemonCycles = 0; //!< kernel-side work, off the app threads
};

/**
 * The lifecycle manager: owns the daemons' state (scan cursors, stats)
 * and the promote/demote mechanics. One per kernel; ticked explicitly
 * (Kernel::thpTick) or from the execution clock
 * (ExecContext::enableThpTicks), like the AutoNUMA scanner.
 */
class ThpManager
{
  public:
    ThpManager(Kernel &kernel, const ThpConfig &config)
        : k(kernel), cfg(config)
    {
    }

    const ThpConfig &config() const { return cfg; }
    bool enabled() const { return cfg.khugepaged || cfg.kcompactd; }

    /**
     * One daemon period over @p procs: kcompactd first (so collapse
     * finds the blocks it just reconstituted), then khugepaged. Work is
     * charged to ThpStats::daemonCycles — the daemons run on kernel
     * threads, not the app's — but their shootdowns disturb the
     * workload's TLBs organically, as in Linux.
     */
    void tick(const std::vector<Process *> &procs);

    /**
     * Collapse [va2m, va2m + 2 MB) into one huge mapping if eligible:
     * THP-enabled VMA containing the whole range, a same-socket run of
     * present 4 KB PTEs with uniform flags (A/D ignored, NUMA hints
     * disqualify, at most maxPtesNone holes), and a free 2 MB block
     * available on that socket. Copies the resident data, zero-fills
     * the holes, rewrites the leaf level in every replica, frees the
     * old frames, one shootdown per range.
     */
    bool collapseAt(Process &proc, VirtAddr va2m,
                    pvops::KernelCost *cost);

    /**
     * Demote the huge page covering @p va to 512 4 KB PTEs mapping the
     * same frames (the data does not move; the 2 MB block becomes 512
     * individually-freeable frames). False when @p va has no huge leaf
     * or the leaf-table allocation failed.
     */
    bool splitAt(Process &proc, VirtAddr va, pvops::KernelCost *cost);

    /**
     * 2 MB coverage of @p proc's resident memory: 4 KB-units mapped
     * through huge leaves / all resident 4 KB-units (0 when nothing is
     * resident). The recovery metric of ext_thp_aging.
     */
    double coverage(const Process &proc) const;

    const ThpStats &stats() const { return stats_; }
    void resetStats() { stats_ = ThpStats{}; }

    /** Drop per-process daemon state (Kernel::destroyProcess). */
    void
    onProcessDestroyed(ProcId pid)
    {
        scanCursor.erase(pid);
    }

    /**
     * Snapshot restore: adopt counters and scan cursors from @p src.
     * The config is *not* copied — a fork may run with different
     * daemon settings than the donor it was populated by.
     */
    void
    cloneStateFrom(const ThpManager &src)
    {
        stats_ = src.stats_;
        scanCursor = src.scanCursor;
    }

  private:
    /** khugepaged: one scan pass over @p proc from its cursor. */
    void scanProcess(Process &proc, pvops::KernelCost *cost);

    /** kcompactd: one compaction pass over every socket. */
    void compactTick(const std::vector<Process *> &procs,
                     pvops::KernelCost *cost);

    /**
     * Register the metric handles on first use. Lazy because the ctor
     * runs while Kernel is still incomplete here (thp.h is included
     * from kernel.h), so k.machine() is only reachable from the .cc
     * files.
     */
    void ensureObs();

    Kernel &k;
    ThpConfig cfg;
    ThpStats stats_;

    /// @name Observability handles (lazily registered, see ensureObs)
    /// @{
    obs::Counter *mCollapses = nullptr;
    obs::Counter *mSplits = nullptr;
    obs::Counter *mPagesMoved = nullptr;
    obs::Counter *mBlocksReclaimed = nullptr;
    /// @}

    /** khugepaged resume addresses, per pid (Linux's scan cursor). */
    std::map<ProcId, VirtAddr> scanCursor;
};

} // namespace mitosim::os::thp

#endif // MITOSIM_OS_THP_THP_H
