/**
 * @file
 * kcompactd: the background compaction daemon.
 *
 * When khugepaged cannot collapse for lack of a free 2 MB block,
 * compaction reconstitutes allocLargeBlock() capacity by draining the
 * few allocated frames out of nearly-free blocks:
 *
 *  - mapped 4 KB data frames of the scanned processes move through the
 *    data-migration path — a targeted same-socket reallocation
 *    (FrameAllocator::allocFrameForCompaction, which never splits a
 *    free block), a PageCopyCost copy, a replica-coherent PTE rewrite
 *    through the PV-Ops backend, and a range shootdown per process so
 *    stale translations — including descheduled tenants' ASID-tagged
 *    entries — die before the freed frames can be reused;
 *  - fragmentation-injector fillers move as modelled movable kernel
 *    memory (no PTE involved);
 *  - anything else (page-table frames, 2 MB data, unscanned owners)
 *    makes the block unmovable and it is skipped.
 *
 * The pfn→(process, va) reverse map Linux keeps in struct page/rmap is
 * rebuilt per tick from the scanned processes' leaf entries.
 */

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/logging.h"
#include "src/os/kernel.h"
#include "src/os/thp/thp.h"
#include "src/pvops/costs.h"

namespace mitosim::os::thp
{

void
ThpManager::compactTick(const std::vector<Process *> &procs,
                        pvops::KernelCost *cost)
{
    auto &machine = k.machine();
    auto &physmem = machine.physmem();
    auto &ops = k.ptOps();
    ensureObs();

    // Reverse map (rmap): mapped 4 KB data pfn -> (process, va).
    std::unordered_map<Pfn, std::pair<Process *, VirtAddr>> rmap;
    for (Process *p : procs) {
        ops.forEachLeaf(p->roots(),
                        [&](VirtAddr va, pt::PteLoc, pt::Pte pte,
                            PageSizeKind size) {
                            if (size == PageSizeKind::Base4K)
                                rmap[pte.pfn()] = {p, va};
                        });
    }

    for (SocketId s = 0; s < machine.numSockets(); ++s) {
        const mem::FrameAllocator &alloc = physmem.allocator(s);

        // Source candidates: nearly-free blocks, emptiest first (the
        // cheapest reclaims), ties by block index for determinism.
        std::vector<std::pair<std::uint32_t, std::uint64_t>> cands;
        for (std::uint64_t b = 0; b < alloc.numBlocks(); ++b) {
            std::uint32_t used = alloc.blockUsedCount(b);
            if (used > 0 && used <= cfg.compactMaxUsed)
                cands.emplace_back(used, b);
        }
        std::sort(cands.begin(), cands.end());

        unsigned budget = cfg.compactBlocksPerTick;
        for (const auto &[used_snapshot, b] : cands) {
            (void)used_snapshot;
            if (!budget)
                break;
            // Earlier relocations may have drained or refilled this
            // block; re-check before working on it.
            std::uint32_t used = alloc.blockUsedCount(b);
            if (used == 0 || used > cfg.compactMaxUsed)
                continue;

            std::vector<Pfn> frames;
            alloc.forEachAllocatedInBlock(
                b, [&](Pfn p) { frames.push_back(p); });

            // Movability pre-check: one immovable frame pins the
            // block. Unmovable candidates cost no budget — a socket
            // full of PT-pinned near-empty blocks must not starve the
            // drainable ones behind them in the list.
            bool movable = true;
            for (Pfn p : frames) {
                if (physmem.isFragPinned(p))
                    continue;
                const mem::PageMeta &m = physmem.meta(p);
                if (m.type == mem::FrameType::Data &&
                    !m.hasFlag(mem::FrameFlagLargeHead) &&
                    !m.hasFlag(mem::FrameFlagLargeTail) &&
                    rmap.count(p))
                    continue;
                movable = false;
                break;
            }
            if (!movable) {
                ++stats_.compactionFailures;
                continue;
            }
            --budget;

            bool drained = true;
            std::vector<std::pair<Process *, VirtAddr>> moved;
            for (Pfn p : frames) {
                if (physmem.isFragPinned(p)) {
                    if (!physmem.compactReservedPin(p)) {
                        ++stats_.compactionFailures;
                        drained = false;
                        break;
                    }
                    if (cost)
                        cost->charge(pvops::PageCopyCost);
                    ++stats_.compactionPagesMoved;
                    mPagesMoved->inc();
                    continue;
                }
                auto [proc, va] = rmap.at(p);
                auto fresh = physmem.compactData(p);
                if (!fresh) {
                    ++stats_.compactionFailures;
                    drained = false;
                    break;
                }
                pt::WalkResult cur = ops.walk(proc->roots(), va);
                MITOSIM_ASSERT(cur.mapped && cur.leaf.pfn() == p,
                               "kcompactd: rmap out of date");
                k.backend().setPte(proc->roots(), cur.loc,
                                   cur.leaf.withPfn(*fresh), 1, cost);
                if (cost)
                    cost->charge(pvops::PageCopyCost);
                rmap.erase(p);
                rmap[*fresh] = {proc, va};
                moved.emplace_back(proc, va);
                ++stats_.compactionPagesMoved;
                mPagesMoved->inc();
            }

            // Shoot down the moved translations per owning process —
            // stale (possibly descheduled, ASID-tagged) entries must
            // die before the vacated frames are reused. Grouped in
            // procs order so the simulated TLB traffic is
            // deterministic.
            for (Process *p : procs) {
                std::vector<VirtAddr> vas;
                for (const auto &[owner, va] : moved) {
                    if (owner == p)
                        vas.push_back(va);
                }
                if (!vas.empty())
                    k.shootdownRange(*p, vas, vas.size(), cost);
            }

            if (drained) {
                ++stats_.compactionBlocksReclaimed;
                mBlocksReclaimed->inc();
                machine.tracer().instant(
                    obs::TraceCat::Thp, "kcompactd_reclaim", 0, 0,
                    "socket", static_cast<std::uint64_t>(s), "block",
                    b);
            }
        }
    }
}

} // namespace mitosim::os::thp
