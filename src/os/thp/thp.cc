/**
 * @file
 * ThpManager core: the promote (collapse) and demote (split) mechanics
 * shared by khugepaged, madvise and the partial-unmap split path. The
 * daemon loops live in khugepaged.cc / kcompactd.cc.
 */

#include "thp.h"

#include <array>

#include "src/base/logging.h"
#include "src/os/kernel.h"
#include "src/pvops/costs.h"

namespace mitosim::os::thp
{

using pvops::KernelCost;

void
ThpManager::ensureObs()
{
    if (mCollapses)
        return;
    obs::MetricsRegistry &mr = k.machine().metrics();
    mCollapses = &mr.counter("thp_collapses");
    mSplits = &mr.counter("thp_splits");
    mPagesMoved = &mr.counter("thp_compaction_pages_moved");
    mBlocksReclaimed = &mr.counter("thp_compaction_blocks_reclaimed");
}

void
ThpManager::tick(const std::vector<Process *> &procs)
{
    KernelCost cost;
    if (cfg.kcompactd)
        compactTick(procs, &cost);
    if (cfg.khugepaged) {
        for (Process *p : procs)
            scanProcess(*p, &cost);
    }
    stats_.daemonCycles += cost.cycles;
}

bool
ThpManager::collapseAt(Process &proc, VirtAddr va2m, KernelCost *cost)
{
    MITOSIM_ASSERT((va2m & (LargePageSize - 1)) == 0,
                   "collapseAt: va not 2MB aligned");
    const Vma *vma = proc.findVma(va2m);
    if (!vma || !vma->thpEnabled || va2m < vma->start ||
        va2m + LargePageSize > vma->end)
        return false;

    auto &ops = k.ptOps();
    auto &physmem = k.machine().physmem();

    // Raw eligibility pre-check (uncharged, like the AutoNUMA scan):
    // a run of present 4 KB PTEs with uniform flags, no pending NUMA
    // hints, plain data frames, and at most maxPtesNone holes
    // (Linux's max_ptes_none — holes become zero-filled subpages).
    // The collapse target is the socket holding the most resident
    // frames (Linux's find_target_node); minority frames migrate
    // there as a side effect of the copy.
    Pfn leaf_table = ops.tableFor(proc.roots(), va2m, 1);
    if (leaf_table == InvalidPfn)
        return false; // no leaf table (vacant range, or already huge)
    const std::uint64_t *tbl = physmem.table(leaf_table);
    std::uint64_t uniform = 0;
    unsigned present = 0;
    std::array<Pfn, PtEntriesPerPage> old_frames;
    std::array<bool, PtEntriesPerPage> resident{};
    std::array<unsigned, pt::MaxSockets> per_socket{};
    for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
        pt::Pte entry{tbl[i]};
        if (!entry.present())
            continue;
        if (entry.numaHint())
            return false; // don't race a pending AutoNUMA sample
        std::uint64_t flags =
            entry.raw() & ~pt::PteAdMask & ~pt::PtePfnMask;
        Pfn pfn = entry.pfn();
        if (present == 0)
            uniform = flags;
        else if (flags != uniform)
            return false;
        const mem::PageMeta &m = physmem.meta(pfn);
        if (m.type != mem::FrameType::Data ||
            m.hasFlag(mem::FrameFlagLargeHead) ||
            m.hasFlag(mem::FrameFlagLargeTail))
            return false;
        ++per_socket[static_cast<std::size_t>(physmem.socketOf(pfn))];
        old_frames[i] = pfn;
        resident[i] = true;
        ++present;
    }
    if (present == 0 ||
        PtEntriesPerPage - present > cfg.maxPtesNone)
        return false;
    SocketId socket = 0;
    for (SocketId s = 1; s < k.machine().numSockets(); ++s) {
        if (per_socket[static_cast<std::size_t>(s)] >
            per_socket[static_cast<std::size_t>(socket)])
            socket = s;
    }

    // A 2 MB block on the run's socket; without one the collapse fails
    // (the signal kcompactd exists to clear).
    auto head = physmem.allocDataLarge(socket, proc.id());
    if (!head) {
        ++stats_.collapseFailedNoBlock;
        return false;
    }
    if (cost)
        cost->charge(pvops::PageAllocCost);

    // Charged re-read of every resident PTE through the backend —
    // khugepaged must observe A/D bits OR-ed across replicas (§5.4)
    // before the copy — then copy the resident frames into the fresh
    // block and zero-fill the holes.
    std::uint64_t ad = 0;
    for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
        if (!resident[i])
            continue;
        pt::Pte cur =
            k.backend().readPte(proc.roots(),
                                pt::PteLoc{leaf_table, i}, cost);
        ad |= cur.raw() & pt::PteAdMask;
    }
    if (cost) {
        cost->charge(pvops::PageCopyCost * present);
        cost->charge(pvops::PageZeroCost *
                     (FramesPerLargePage - present));
    }

    std::uint64_t flags =
        (uniform & ~static_cast<std::uint64_t>(pt::PteHuge)) | ad |
        pt::PteHuge;
    bool ok = ops.collapse2M(proc.roots(), va2m,
                             pt::Pte::make(*head, flags), cost);
    MITOSIM_ASSERT(ok, "collapseAt: leaf table vanished underneath");

    for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
        if (!resident[i])
            continue;
        physmem.freeData(old_frames[i]);
        if (cost)
            cost->charge(pvops::PageFreeCost);
    }
    // Holes became zero-filled resident subpages of the huge mapping.
    proc.residentPages += FramesPerLargePage - present;
    // One shootdown for the whole range; 512 pages is far beyond the
    // single-page-flush ceiling, so this is a flush on every core that
    // can hold the process's translations.
    k.shootdownRange(proc, {}, FramesPerLargePage, cost);
    ++stats_.collapses;
    ensureObs();
    mCollapses->inc();
    k.machine().tracer().instant(obs::TraceCat::Thp,
                                 "khugepaged_collapse", proc.id(), 0,
                                 "va", va2m);
    return true;
}

bool
ThpManager::splitAt(Process &proc, VirtAddr va, KernelCost *cost)
{
    VirtAddr base = alignDown(va, LargePageSize);
    auto &ops = k.ptOps();
    pt::WalkResult res = ops.walk(proc.roots(), base);
    if (!res.mapped || res.size != PageSizeKind::Large2M)
        return false;
    Pfn head = res.leaf.pfn();

    // Place the fresh leaf table as a fault at this address would have:
    // first-touch resolves to the directory table's socket, keeping the
    // split tree as local as the huge mapping was.
    auto &physmem = k.machine().physmem();
    SocketId hint = physmem.socketOf(res.loc.ptPfn);
    if (!ops.split2M(proc.roots(), proc.id(), base, proc.ptPolicy, hint,
                     cost))
        return false;
    physmem.splitLargeData(head);
    // The huge mapping was a single TLB entry; one targeted shootdown
    // also clears the covering PWC prefixes on every core.
    k.shootdown(proc, base, cost);
    ++stats_.splits;
    ensureObs();
    mSplits->inc();
    k.machine().tracer().instant(obs::TraceCat::Thp, "thp_split",
                                 proc.id(), 0, "va", base);
    return true;
}

double
ThpManager::coverage(const Process &proc) const
{
    std::uint64_t small = 0;
    std::uint64_t huge = 0;
    k.ptOps().forEachLeaf(proc.roots(),
                          [&](VirtAddr, pt::PteLoc, pt::Pte,
                              PageSizeKind size) {
                              if (size == PageSizeKind::Large2M)
                                  ++huge;
                              else
                                  ++small;
                          });
    std::uint64_t total = small + huge * FramesPerLargePage;
    return total ? static_cast<double>(huge * FramesPerLargePage) /
                       static_cast<double>(total)
                 : 0.0;
}

} // namespace mitosim::os::thp
