/**
 * @file
 * khugepaged: the background collapse daemon.
 *
 * Linux's khugepaged keeps a scan cursor per mm and examines a bounded
 * number of pages per wakeup (pages_to_scan), collapsing readily
 * collapsible ranges and resuming where it left off. The reproduction
 * mirrors that: per tick and per process, up to scanRangesPerTick 2 MB
 * candidate ranges are examined from the saved cursor (wrapping once),
 * and at most collapsesPerTick of them are promoted. The scan itself is
 * raw and uncharged — like the AutoNUMA scanner — while every collapse
 * charges its full work (backend PTE re-reads with A/D merge, the 2 MB
 * allocation, the copy, replica-coherent leaf rewrite, frees and one
 * range shootdown) to the daemon.
 */

#include <algorithm>

#include "src/os/kernel.h"
#include "src/os/thp/thp.h"

namespace mitosim::os::thp
{

void
ThpManager::scanProcess(Process &proc, pvops::KernelCost *cost)
{
    const auto &vmas = proc.vmas();
    if (vmas.empty())
        return;
    VirtAddr cursor = scanCursor[proc.id()];
    std::uint64_t scanned = 0;
    unsigned collapsed = 0;

    auto it = vmas.upper_bound(cursor);
    if (it != vmas.begin())
        --it;
    bool wrapped = false;
    VirtAddr from = cursor; // only the first VMA resumes mid-way
    while (true) {
        if (it == vmas.end()) {
            if (wrapped)
                break;
            wrapped = true;
            it = vmas.begin();
            from = 0;
        }
        const Vma &v = it->second;
        // The wrapped pass covers [0, cursor) only — one full scan of
        // the address space per cycle, never a rescan within a tick.
        if (wrapped && v.start >= cursor)
            break;
        if (v.thpEnabled) {
            VirtAddr first =
                alignUp(std::max(v.start, from), LargePageSize);
            VirtAddr stop = v.end;
            if (wrapped)
                stop = std::min(stop, cursor);
            for (VirtAddr base = first; base + LargePageSize <= stop;
                 base += LargePageSize) {
                if (scanned >= cfg.scanRangesPerTick ||
                    collapsed >= cfg.collapsesPerTick) {
                    scanCursor[proc.id()] = base;
                    return;
                }
                ++scanned;
                ++stats_.rangesScanned;
                if (collapseAt(proc, base, cost))
                    ++collapsed;
            }
        }
        from = 0;
        ++it;
    }
    scanCursor[proc.id()] = 0;
}

} // namespace mitosim::os::thp
