/**
 * @file
 * The simulated OS kernel: process lifecycle, VMA system calls, demand
 * paging, THP, NUMA data placement, AutoNUMA hint faults, scheduling and
 * cross-socket process migration.
 *
 * The kernel never writes a PTE directly: every mutation goes through the
 * PV-Ops backend it was constructed with, which is the seam where Mitosis
 * plugs in (§5.2). Swapping the backend is the only difference between a
 * "stock Linux" and a "Mitosis" kernel in MitoSim.
 */

#ifndef MITOSIM_OS_KERNEL_H
#define MITOSIM_OS_KERNEL_H

#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/check/vmcheck.h"
#include "src/os/process.h"
#include "src/os/scheduler.h"
#include "src/os/thp/thp.h"
#include "src/pt/operations.h"
#include "src/pvops/pvops.h"
#include "src/sim/machine.h"

namespace mitosim::os
{

class Kernel;

/** AutoNUMA: hint-fault driven data-page migration (data pages only —
 *  "page-table pages were never migrated", §3.1 observation 4). */
class AutoNuma
{
  public:
    struct Stats
    {
        std::uint64_t pagesScanned = 0;
        std::uint64_t hintsPlaced = 0;
        std::uint64_t hintFaults = 0;
        std::uint64_t pagesMigrated = 0;
        std::uint64_t migrationFailures = 0;
    };

    explicit AutoNuma(Kernel &kernel) : k(kernel) {}

    /**
     * Periodic scan: mark a random @p fraction of present leaves with the
     * NUMA hint bit so the next touch faults and reveals the accessor.
     */
    void scan(Process &proc, double fraction, Rng &rng);

    /**
     * Service a hint fault at @p va from @p core: clear the hint and
     * migrate the data page towards the accessing socket if remote.
     */
    Cycles onHintFault(Process &proc, CoreId core, VirtAddr va);

    const Stats &stats() const { return stats_; }
    void resetStats() { stats_ = Stats{}; }

    /** Snapshot restore: adopt the cumulative counters of @p src. */
    void cloneStateFrom(const AutoNuma &src) { stats_ = src.stats_; }

  private:
    Kernel &k;
    Stats stats_;
};

/** A mapped range returned by mmap. */
struct Region
{
    VirtAddr start = 0;
    std::uint64_t length = 0;

    VirtAddr end() const { return start + length; }
};

/** Options for Kernel::mmap. */
struct MmapOptions
{
    bool populate = false; //!< MAP_POPULATE: fault everything in eagerly
    bool thp = false;      //!< region is THP-eligible (2 MB pages)
    std::uint64_t prot = ProtRead | ProtWrite;
    CoreId populateCore = -1; //!< first-touch context; -1 = home socket
};

/** madvise() advice values the kernel understands. */
enum class Madvise
{
    Huge,   //!< MADV_HUGEPAGE: make the range THP-eligible
    NoHuge, //!< MADV_NOHUGEPAGE: stop backing the range with 2 MB pages
};

/** Kernel-wide construction-time knobs. */
struct KernelConfig
{
    /**
     * Core scheduling: the default is the seed's pinning (one thread
     * per core, flush-all CR3 loads); sched.timeShared opts into the
     * run-queue scheduler with ASID-tagged context switches.
     */
    SchedulerConfig sched;

    /**
     * THP lifecycle: khugepaged collapse, kcompactd compaction and the
     * partial-op huge-page split path. All off by default — a default
     * kernel is charge-identical to one without the subsystem.
     */
    thp::ThpConfig thp;

    /**
     * vmcheck: whole-machine invariant checking at syscall/dispatch/THP
     * checkpoints. Off by default (zero cost, zero metric impact); the
     * MITOSIM_CHECK environment overrides whatever is set here, and a
     * MITOSIM_CHECK_DEFAULT build flips the default on (Debug CI).
     */
    check::CheckConfig check;
};

/** The kernel. */
class Kernel
{
  public:
    Kernel(sim::Machine &machine, pvops::PvOps &backend);
    Kernel(sim::Machine &machine, pvops::PvOps &backend,
           const KernelConfig &config);
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /// @name Process lifecycle
    /// @{
    Process &createProcess(const std::string &name, SocketId home_socket);
    void destroyProcess(Process &proc);

    /**
     * End-of-run teardown for @p proc, valid only when the whole
     * Machine is about to be destroyed (the last statement of a bench
     * job, after every metric was recorded). Skips the simulated
     * bookkeeping destroyProcess exists for — the per-leaf data-frame
     * frees with their cache invalidations and the page-table tree
     * teardown — because nothing can observe the machine afterwards;
     * for a multi-GiB 4 KB-mapped process that sweep is millions of
     * host operations of pure accounting. With vmcheck active it
     * falls back to destroyProcess: the checker's frame ledger must
     * see every free to stay balanced through atEndOfRun().
     */
    void finalizeProcess(Process &proc);

    /**
     * Snapshot restore: deep-copy the OS state of @p src into this
     * freshly constructed kernel — processes (address spaces, VMAs,
     * threads), scheduler queues/ASIDs, THP cursors, AutoNUMA and
     * checker ledgers, pid/tid counters. The machine must already have
     * been restored (Machine::cloneStateFrom) so the copied roots and
     * residencies reference live frames. The kernel's own config
     * (daemon settings, scheduler mode) is kept: a fork may diverge
     * from its donor in everything that does not act during populate.
     */
    void cloneStateFrom(const Kernel &src);

    Process *findProcess(ProcId pid);

    /**
     * Process currently *resident* on @p core (its CR3 loaded). Under
     * pinning this is the core's owner; under the time-sharing
     * scheduler it is whichever tenant ran most recently, and nullptr
     * for a core whose queue exists but never dispatched.
     */
    Process *processOnCore(CoreId core);
    SocketId homeSocket(const Process &proc) const;

    /** Sockets on which @p proc has threads assigned (or pinned). */
    SocketMask socketsOf(const Process &proc) const;
    /// @}

    /// @name VMA system calls
    /// @{
    Region mmap(Process &proc, std::uint64_t length,
                const MmapOptions &opts,
                pvops::KernelCost *cost = nullptr);

    /**
     * MAP_FIXED: map at exactly @p start (page aligned, must not overlap
     * an existing VMA). Used by micro-benchmarks that repeatedly remap
     * the same region, and by allocators with address requirements.
     */
    Region mmapFixed(Process &proc, VirtAddr start, std::uint64_t length,
                     const MmapOptions &opts,
                     pvops::KernelCost *cost = nullptr);

    void munmap(Process &proc, VirtAddr start, std::uint64_t length,
                pvops::KernelCost *cost = nullptr);

    void mprotect(Process &proc, VirtAddr start, std::uint64_t length,
                  std::uint64_t prot, pvops::KernelCost *cost = nullptr);

    /**
     * Toggle THP eligibility over [start, start + length) after mmap
     * (madvise(MADV_HUGEPAGE / MADV_NOHUGEPAGE)). VMAs split/merge at
     * the exact boundaries through the tree ops; a huge page straddling
     * a boundary is demoted first so no 2 MB mapping ever spans two
     * VMAs (the lifetime-coupling hazard Vma::mergeableWith documents).
     */
    void madvise(Process &proc, VirtAddr start, std::uint64_t length,
                 Madvise advice, pvops::KernelCost *cost = nullptr);

    /** Touch every page of a range from @p core (first-touch context). */
    void populate(Process &proc, VirtAddr start, std::uint64_t length,
                  CoreId core, pvops::KernelCost *cost = nullptr);
    /// @}

    /// @name Threads and scheduling
    /// @{

    /**
     * Start a new thread on @p core: pinned mode claims the core (it
     * must be free) and loads CR3; time-shared mode joins the core's
     * run queue. Returns the tid.
     */
    int spawnThread(Process &proc, CoreId core);

    /**
     * Start a new thread on @p socket. Pinned mode needs a free core
     * and returns -1 when the socket is full (the seed fatal()ed);
     * time-shared mode enqueues on the least-loaded core and cannot
     * fail.
     */
    [[nodiscard]] int spawnThreadOnSocket(Process &proc, SocketId socket);

    /**
     * Move every thread of @p proc to @p target. Optionally migrates all
     * data pages (what stock NUMA balancing achieves over time); informs
     * the PV-Ops backend so Mitosis can migrate the page-tables (§5.5).
     *
     * @return false — with no state changed — when pinned mode cannot
     *         seat every thread on @p target (the seed fatal()ed with
     *         threads half moved). Time-shared mode always succeeds.
     */
    [[nodiscard]] bool migrateProcess(Process &proc, SocketId target,
                                      bool migrate_data,
                                      pvops::KernelCost *cost = nullptr);

    /**
     * Re-sync cores after @p proc's address space changed underneath
     * them (replication-mask changes, migration): pinned mode reloads
     * each thread core's CR3 with a full flush (seed behaviour);
     * time-shared mode first drops the process's tagged TLB/PWC
     * entries on every core — stale survivors could reference frames
     * the change just freed — then reloads the resident cores.
     */
    void reloadContexts(Process &proc);

    /** The core scheduler (run queues, ASIDs, dispatch stats). */
    Scheduler &scheduler() { return sched; }
    const Scheduler &scheduler() const { return sched; }
    /// @}

    /// @name Policy knobs
    /// @{
    void setDataPolicy(Process &proc, DataPolicy policy,
                       SocketId fixed_socket = 0);
    void setPtPlacement(Process &proc, pt::PtPlacement placement,
                        SocketId fixed_socket = 0);
    void enableAutoNuma(Process &proc, bool on);
    /// @}

    /** One AutoNUMA period: scan every opted-in process. */
    void autoNumaTick(double sample_fraction, Rng &rng);

    /**
     * One THP daemon period: kcompactd reconstitutes 2 MB blocks, then
     * khugepaged collapses eligible ranges, over every live process.
     * No-op unless KernelConfig::thp enabled a daemon.
     */
    void thpTick();

    /** The THP lifecycle manager (collapse/split/compact mechanics). */
    thp::ThpManager &thp() { return thpMgr; }
    const thp::ThpManager &thp() const { return thpMgr; }

    /**
     * The invariant checker, or nullptr when checking is off (the
     * default). Drivers call checker()->atEndOfRun() before teardown
     * and copy checker()->stats() into the per-job "check" report.
     */
    check::Checker *checker() { return chk.get(); }

    /** Every live process, in creation order (vmcheck sweeps these). */
    std::vector<Process *> liveProcesses()
    {
        std::vector<Process *> list;
        list.reserve(procs.size());
        for (auto &p : procs)
            list.push_back(p.get());
        return list;
    }

    /// @name Internals exposed for the Mitosis manager and analysis
    /// @{
    pt::PageTableOps &ptOps() { return ops; }
    pvops::PvOps &backend() { return *pv; }
    sim::Machine &machine() { return mach; }
    AutoNuma &autoNuma() { return autonuma; }

    /** Invalidate @p va in the TLB/PWC of every core running @p proc. */
    void shootdown(Process &proc, VirtAddr va, pvops::KernelCost *cost);

    /** Full TLB flush on every core running @p proc. */
    void flushProcess(Process &proc, pvops::KernelCost *cost);

    /**
     * One shootdown decision per range op: invalidate the (≤ threshold)
     * collected @p vas individually, or flush every core's TLB outright
     * when @p pages exceeds the single-page-flush ceiling. Exactly one
     * IPI round (TlbShootdownCost) is charged to @p cost when any page
     * was touched — the seed charged this blindly at each call site
     * while its per-page shootdowns ran uncharged.
     */
    void shootdownRange(Process &proc, const std::vector<VirtAddr> &vas,
                        std::uint64_t pages, pvops::KernelCost *cost);
    /// @}

    /** Fault service routine registered with the Machine. */
    Cycles handleFault(CoreId core, const sim::FaultRequest &req);

  private:
    friend class AutoNuma;

    /**
     * Demand-fault @p va into @p proc from @p core. @p mapped_size (if
     * non-null) reports what was installed, so range loops can step
     * without re-walking the tree.
     */
    bool faultIn(Process &proc, CoreId core, VirtAddr va,
                 pvops::KernelCost &cost,
                 PageSizeKind *mapped_size = nullptr);

    /** Populate one VMA-covered subrange of a populate() request. */
    void populateVmaRange(Process &proc, const Vma &vma, VirtAddr start,
                          VirtAddr end, CoreId core,
                          pvops::KernelCost &cost);

    SocketId chooseDataSocket(Process &proc, VirtAddr va,
                              SocketId faulting_socket, bool large);

    /** Free the data frame behind a leaf (4 KB or 2 MB). */
    void freeLeafData(pt::Pte leaf, PageSizeKind size);

    /**
     * Demote the huge page straddling @p boundary, if one exists (the
     * boundary is interior to a mapped 2 MB range). Used by madvise
     * always, and by munmap/mprotect when ThpConfig::splitPartial opts
     * out of the seed's whole-leaf zap.
     */
    void splitStraddlingHuge(Process &proc, VirtAddr boundary,
                             pvops::KernelCost *cost);

    /**
     * Cores an invalidation of @p proc's mappings must reach: exactly
     * the pinned thread cores (the seed's targeting), or — time-shared,
     * where descheduled tenants leave tagged entries behind — every
     * core, like Linux's mm_cpumask broadcast over every CPU the mm
     * ever ran on.
     */
    template <typename Fn>
    void
    forEachShootdownCore(Process &proc, Fn &&fn)
    {
        if (!sched.timeShared()) {
            for (const auto &t : proc.threads())
                fn(mach.core(t.core));
        } else {
            for (CoreId c = 0; c < mach.numCores(); ++c)
                fn(mach.core(c));
        }
    }

    /** Syscall-boundary vmcheck checkpoint; no-op when checking is off. */
    void
    checkpoint(const char *what)
    {
        if (chk)
            chk->atSyscall(what);
    }

    sim::Machine &mach;
    pvops::PvOps *pv;
    pt::PageTableOps ops;
    AutoNuma autonuma;
    Scheduler sched;
    thp::ThpManager thpMgr;
    std::unique_ptr<check::Checker> chk;

    /// @name Observability handles (registered once in the ctor)
    /// @{
    obs::Counter *mFaultNotPresent = nullptr;
    obs::Counter *mFaultNumaHint = nullptr;
    obs::Counter *mFaultProtection = nullptr;
    obs::Histogram *mFaultCycles = nullptr;
    obs::Counter *mShootdowns = nullptr;
    /// @}

    std::vector<std::unique_ptr<Process>> procs;
    std::vector<SocketId> homeSockets; // parallel to procs by pid index
    ProcId nextPid = 1;
    int nextTid = 1;

    /**
     * Linux flushes the whole TLB instead of single pages beyond a
     * small threshold (tlb_single_page_flush_ceiling); we do the same.
     */
    static constexpr std::uint64_t FlushAllThresholdPages = 33;
};

} // namespace mitosim::os

#endif // MITOSIM_OS_KERNEL_H
