#include "kernel.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/pvops/costs.h"

namespace mitosim::os
{

using pvops::KernelCost;

Kernel::Kernel(sim::Machine &machine, pvops::PvOps &backend)
    : Kernel(machine, backend, KernelConfig{})
{
}

Kernel::Kernel(sim::Machine &machine, pvops::PvOps &backend,
               const KernelConfig &config)
    : mach(machine), pv(&backend), ops(machine.physmem(), backend),
      autonuma(*this), sched(machine, config.sched),
      thpMgr(*this, config.thp)
{
    obs::MetricsRegistry &mr = mach.metrics();
    mFaultNotPresent = &mr.counter("kernel_faults", {{"kind", "not_present"}});
    mFaultNumaHint = &mr.counter("kernel_faults", {{"kind", "numa_hint"}});
    mFaultProtection = &mr.counter("kernel_faults", {{"kind", "protection"}});
    mFaultCycles = &mr.histogram("kernel_fault_cycles");
    mShootdowns = &mr.counter("kernel_tlb_shootdowns");

    sched.attachBackend(backend);
    mach.setFaultHandler(
        [](void *ctx, CoreId core, const sim::FaultRequest &req) {
            return static_cast<Kernel *>(ctx)->handleFault(core, req);
        },
        this);

    check::CheckConfig cc = config.check;
#ifdef MITOSIM_CHECK_DEFAULT
    cc.enabled = true; // -DMITOSIM_CHECK_DEFAULT=ON build: on unless
                       // MITOSIM_CHECK=0 overrides below
#endif
    cc = check::CheckConfig::fromEnv(cc);
    if (cc.enabled) {
        chk = std::make_unique<check::Checker>(*this, cc);
        sched.setDispatchHook([this] { chk->atDispatch(); });
    }
}

Kernel::~Kernel()
{
    // Tear down any still-live processes so physical memory balances.
    while (!procs.empty())
        destroyProcess(*procs.back());
}

Process &
Kernel::createProcess(const std::string &name, SocketId home_socket)
{
    MITOSIM_ASSERT(home_socket >= 0 &&
                   home_socket < mach.numSockets());
    auto proc = std::make_unique<Process>(nextPid++, name);
    Process &ref = *proc;
    ref.asid = sched.assignAsid();
    ref.asidGeneration = sched.generationOf(ref.asid);
    KernelCost cost;
    if (!ops.createRoot(ref.roots(), ref.id(), home_socket, &cost))
        fatal("out of memory creating root table for '%s'", name.c_str());
    procs.push_back(std::move(proc));
    homeSockets.push_back(home_socket);
    checkpoint("createProcess");
    return ref;
}

void
Kernel::destroyProcess(Process &proc)
{
    // Free all data frames referenced by the primary tree.
    std::vector<std::pair<pt::Pte, PageSizeKind>> leaves;
    ops.forEachLeaf(proc.roots(),
                    [&](VirtAddr, pt::PteLoc, pt::Pte pte,
                        PageSizeKind size) {
                        leaves.emplace_back(pte, size);
                    });
    for (const auto &[pte, size] : leaves)
        freeLeafData(pte, size);

    // Dequeue the threads and park every core still holding this
    // address space (the seed left dead CR3s loaded — see scheduler.h)
    // — before ops.destroy wipes the RootSet the cores are matched
    // against and frees the frames their CR3s point into.
    sched.removeProcess(proc);
    thpMgr.onProcessDestroyed(proc.id());

    KernelCost cost;
    ops.destroy(proc.roots(), &cost);

    auto it = std::find_if(procs.begin(), procs.end(),
                           [&](const auto &p) { return p.get() == &proc; });
    MITOSIM_ASSERT(it != procs.end(), "destroyProcess: unknown process");
    homeSockets.erase(homeSockets.begin() + (it - procs.begin()));
    procs.erase(it);
    checkpoint("destroyProcess");
}

void
Kernel::finalizeProcess(Process &proc)
{
    if (chk) {
        // The checker's ledger tracks every frame; it must watch the
        // frees or atEndOfRun() reports leaks that never were.
        destroyProcess(proc);
        return;
    }
    sched.removeProcess(proc);
    thpMgr.onProcessDestroyed(proc.id());
    auto it = std::find_if(procs.begin(), procs.end(),
                           [&](const auto &p) { return p.get() == &proc; });
    MITOSIM_ASSERT(it != procs.end(), "finalizeProcess: unknown process");
    homeSockets.erase(homeSockets.begin() + (it - procs.begin()));
    procs.erase(it);
}

void
Kernel::cloneStateFrom(const Kernel &src)
{
    MITOSIM_ASSERT(procs.empty(),
                   "cloneStateFrom: target kernel already has processes");
    MITOSIM_ASSERT(sched.timeShared() == src.sched.timeShared(),
                   "cloneStateFrom: scheduler mode mismatch");
    MITOSIM_ASSERT(static_cast<bool>(chk) == static_cast<bool>(src.chk),
                   "cloneStateFrom: vmcheck enablement mismatch");
    procs.reserve(src.procs.size());
    for (const auto &p : src.procs)
        procs.push_back(std::unique_ptr<Process>(new Process(*p)));
    homeSockets = src.homeSockets;
    nextPid = src.nextPid;
    nextTid = src.nextTid;
    sched.cloneStateFrom(src.sched);
    thpMgr.cloneStateFrom(src.thpMgr);
    autonuma.cloneStateFrom(src.autonuma);
    if (chk)
        chk->cloneStateFrom(*src.chk);
}

Process *
Kernel::findProcess(ProcId pid)
{
    for (auto &p : procs) {
        if (p->id() == pid)
            return p.get();
    }
    return nullptr;
}

Process *
Kernel::processOnCore(CoreId core)
{
    MITOSIM_ASSERT(core >= 0 && core < mach.numCores());
    ProcId pid = sched.residentPid(core);
    return pid < 0 ? nullptr : findProcess(pid);
}

SocketMask
Kernel::socketsOf(const Process &proc) const
{
    SocketMask mask;
    for (const auto &t : proc.threads())
        mask.set(mach.topology().socketOfCore(t.core));
    return mask;
}

SocketId
Kernel::homeSocket(const Process &proc) const
{
    for (std::size_t i = 0; i < procs.size(); ++i) {
        if (procs[i].get() == &proc)
            return homeSockets[i];
    }
    panic("homeSocket: unknown process");
}

Region
Kernel::mmap(Process &proc, std::uint64_t length, const MmapOptions &opts,
             KernelCost *cost)
{
    MITOSIM_ASSERT(length > 0, "mmap of zero length");
    std::uint64_t rounded = alignUp(length, PageSize);
    return mmapFixed(proc, proc.reserveRange(rounded), rounded, opts,
                     cost);
}

Region
Kernel::mmapFixed(Process &proc, VirtAddr start, std::uint64_t length,
                  const MmapOptions &opts, KernelCost *cost)
{
    MITOSIM_ASSERT(length > 0, "mmap of zero length");
    MITOSIM_ASSERT((start & (PageSize - 1)) == 0, "mmapFixed: unaligned");
    std::uint64_t rounded = alignUp(length, PageSize);
    if (proc.overlapsRange(start, start + rounded))
        fatal("mmapFixed: range overlaps an existing VMA");

    Vma vma;
    vma.start = start;
    vma.end = start + rounded;
    vma.prot = opts.prot;
    vma.thpEnabled = opts.thp;
    proc.insertVma(vma);

    if (cost)
        cost->charge(pvops::VmaOpFixedCost);

    if (opts.populate) {
        CoreId core = opts.populateCore;
        if (core < 0)
            core = mach.topology().firstCoreOf(homeSocket(proc));
        populate(proc, start, rounded, core, cost);
    }
    checkpoint("mmap");
    return Region{start, rounded};
}

void
Kernel::populateVmaRange(Process &proc, const Vma &vma, VirtAddr start,
                         VirtAddr end, CoreId core, KernelCost &cost)
{
    if (vma.thpEnabled) {
        // THP ranges keep the per-page fault path: each page decides
        // between a 2 MB and a 4 KB mapping against the current
        // fragmentation state, exactly like the demand-fault handler
        // (one faultIn per 2 MB in the common case).
        VirtAddr va = start;
        while (va < end) {
            pt::WalkResult existing = ops.walk(proc.roots(), va);
            PageSizeKind size = existing.size;
            if (!existing.mapped) {
                if (!faultIn(proc, core, va, cost, &size))
                    fatal("populate: out of memory at va=0x%llx",
                          (unsigned long long)va);
            }
            va += (size == PageSizeKind::Large2M)
                      ? LargePageSize - (va & (LargePageSize - 1))
                      : PageSize;
        }
        return;
    }

    // 4 KB ranges go through the leaf-table cursor: one descent per
    // table instead of three per page, with the mapping streamed
    // through the backend's batched hook.
    SocketId faulting_socket = mach.topology().socketOfCore(core);
    auto &physmem = mach.physmem();
    std::uint64_t flags = pt::PteUser;
    if (vma.prot & ProtWrite)
        flags |= pt::PteWrite;

    ops.mapRange4K(
        proc.roots(), proc.id(), start, end, proc.ptPolicy,
        faulting_socket,
        [&](VirtAddr va) {
            cost.charge(pvops::FaultFixedCost);
            SocketId target =
                chooseDataSocket(proc, va, faulting_socket, false);
            auto pfn = physmem.allocData(target, proc.id());
            if (!pfn)
                pfn = physmem.allocDataAny(target, proc.id());
            if (!pfn)
                fatal("populate: out of memory at va=0x%llx",
                      (unsigned long long)va);
            cost.charge(pvops::PageAllocCost + pvops::PageZeroCost);
            ++proc.residentPages;
            return pt::Pte::make(*pfn, flags | pt::PtePresent);
        },
        &cost);
}

void
Kernel::populate(Process &proc, VirtAddr start, std::uint64_t length,
                 CoreId core, KernelCost *cost)
{
    KernelCost local;
    KernelCost &c = cost ? *cost : local;
    VirtAddr end = start + length;

    // A VMA-less gap is tolerated only if fully mapped (e.g. by hand
    // through ptOps), as the per-page path would have skipped it; the
    // first unmapped page in it is a segfault, as it was for faultIn.
    auto checkGapMapped = [&](VirtAddr from, VirtAddr to) {
        VirtAddr expect = from;
        ops.forRange(proc.roots(), from, to,
                     [&](VirtAddr va, pt::PteLoc, pt::Pte,
                         PageSizeKind size) {
                         if (std::max(va, from) > expect)
                             return; // keep the *first* hole
                         VirtAddr span =
                             size == PageSizeKind::Large2M
                                 ? LargePageSize
                                 : PageSize;
                         expect = std::max(expect, va + span);
                     });
        if (expect < to)
            panic("segfault: pid %d touched unmapped va=0x%llx",
                  proc.id(), (unsigned long long)expect);
    };

    // Collect the VMA-covered subranges first (populate never mutates
    // the VMA tree), then sweep them in address order.
    struct Segment
    {
        const Vma *vma;
        VirtAddr start;
        VirtAddr end;
    };
    std::vector<Segment> segments;
    proc.forEachVmaIn(start, end, [&](const Vma &v) {
        segments.push_back({&v, std::max(start, v.start),
                            std::min(end, v.end)});
    });

    VirtAddr at = start;
    for (const Segment &seg : segments) {
        if (at < seg.start)
            checkGapMapped(at, seg.start);
        populateVmaRange(proc, *seg.vma, seg.start, seg.end, core, c);
        at = seg.end;
    }
    if (at < end)
        checkGapMapped(at, end);
    checkpoint("populate");
}

void
Kernel::munmap(Process &proc, VirtAddr start, std::uint64_t length,
               KernelCost *cost)
{
    MITOSIM_ASSERT((start & (PageSize - 1)) == 0, "munmap: unaligned");
    std::uint64_t rounded = alignUp(length, PageSize);
    VirtAddr end = start + rounded;

    if (cost)
        cost->charge(pvops::VmaOpFixedCost);

    // Seed semantics zapped a partially-covered huge leaf whole (2 MB
    // of data for a one-page unmap); the gated split path demotes it
    // to 4 KB PTEs first so only the requested range goes away.
    if (thpMgr.config().splitPartial) {
        splitStraddlingHuge(proc, start, cost);
        splitStraddlingHuge(proc, end, cost);
    }

    std::vector<VirtAddr> invalidate;
    std::uint64_t pages = ops.unmapRange(
        proc.roots(), start, end,
        [&](VirtAddr va, pt::Pte old, PageSizeKind size) {
            freeLeafData(old, size);
            if (cost)
                cost->charge(pvops::PageFreeCost);
            if (invalidate.size() <= FlushAllThresholdPages)
                invalidate.push_back(std::max(va, start));
        },
        cost);
    shootdownRange(proc, invalidate, pages, cost);

    proc.removeVmaRange(start, end);
    checkpoint("munmap");
}

void
Kernel::mprotect(Process &proc, VirtAddr start, std::uint64_t length,
                 std::uint64_t prot, KernelCost *cost)
{
    MITOSIM_ASSERT((start & (PageSize - 1)) == 0, "mprotect: unaligned");
    std::uint64_t rounded = alignUp(length, PageSize);
    VirtAddr end = start + rounded;

    if (cost)
        cost->charge(pvops::VmaOpFixedCost);

    // As in munmap: don't rewrite 2 MB of permissions for a partial
    // request — demote the boundary huge pages first when the split
    // path is on (the VMA tree splits at the same boundaries below).
    if (thpMgr.config().splitPartial) {
        splitStraddlingHuge(proc, start, cost);
        splitStraddlingHuge(proc, end, cost);
    }

    std::uint64_t set = 0;
    std::uint64_t clear = 0;
    if (prot & ProtWrite)
        set |= pt::PteWrite;
    else
        clear |= pt::PteWrite;

    std::vector<VirtAddr> invalidate;
    std::uint64_t pages = ops.protectRange(
        proc.roots(), start, end, set, clear,
        [&](VirtAddr va, PageSizeKind) {
            if (invalidate.size() <= FlushAllThresholdPages)
                invalidate.push_back(std::max(va, start));
        },
        cost);
    shootdownRange(proc, invalidate, pages, cost);

    // Split partially covered VMAs so the metadata matches the PTEs
    // (the seed skipped them, leaving a stale prot).
    proc.protectVmaRange(start, end, prot);
    checkpoint("mprotect");
}

void
Kernel::splitStraddlingHuge(Process &proc, VirtAddr boundary,
                            KernelCost *cost)
{
    if ((boundary & (LargePageSize - 1)) == 0)
        return; // an aligned boundary cannot cut a huge page
    VirtAddr base = alignDown(boundary, LargePageSize);
    pt::WalkResult res = ops.walk(proc.roots(), base);
    if (!res.mapped || res.size != PageSizeKind::Large2M)
        return;
    if (!thpMgr.splitAt(proc, boundary, cost))
        fatal("out of memory splitting huge page at va=0x%llx",
              (unsigned long long)base);
}

void
Kernel::madvise(Process &proc, VirtAddr start, std::uint64_t length,
                Madvise advice, KernelCost *cost)
{
    MITOSIM_ASSERT((start & (PageSize - 1)) == 0, "madvise: unaligned");
    MITOSIM_ASSERT(length > 0, "madvise of zero length");
    std::uint64_t rounded = alignUp(length, PageSize);
    VirtAddr end = start + rounded;

    if (cost)
        cost->charge(pvops::VmaOpFixedCost);

    // A huge page straddling an eligibility boundary would couple the
    // two sides' lifetimes across the VMA split below; demote it
    // unconditionally (madvise is new API — no legacy charge parity).
    splitStraddlingHuge(proc, start, cost);
    splitStraddlingHuge(proc, end, cost);

    proc.adviseThpRange(start, end, advice == Madvise::Huge);
    checkpoint("madvise");
}

void
Kernel::thpTick()
{
    if (!thpMgr.enabled())
        return;
    thpMgr.tick(liveProcesses());
    if (chk)
        chk->atThpTick();
}

int
Kernel::spawnThread(Process &proc, CoreId core)
{
    MITOSIM_ASSERT(core >= 0 && core < mach.numCores());
    MITOSIM_ASSERT(sched.canAdmit(core), "core already occupied");
    Thread t;
    t.tid = nextTid++;
    t.core = core;
    proc.threads().push_back(t);
    sched.admitThread(proc,
                      static_cast<int>(proc.threads().size()) - 1);
    return t.tid;
}

int
Kernel::spawnThreadOnSocket(Process &proc, SocketId socket)
{
    CoreId core = sched.pickCore(socket);
    if (core < 0)
        return -1; // pinned mode, socket full: recoverable
    return spawnThread(proc, core);
}

bool
Kernel::migrateProcess(Process &proc, SocketId target, bool migrate_data,
                       KernelCost *cost)
{
    MITOSIM_ASSERT(target >= 0 && target < mach.numSockets());
    SocketId from = homeSocket(proc);

    // Move the threads (pinned: re-pin, seed core-choice order;
    // time-shared: re-queue on the target's cores). A full target
    // socket fails cleanly before anything moved.
    if (!sched.migrateThreads(proc, target))
        return false;
    for (std::size_t i = 0; i < procs.size(); ++i) {
        if (procs[i].get() == &proc)
            homeSockets[i] = target;
    }

    if (migrate_data) {
        // Collect first: migrating mutates the tree we iterate.
        struct Item
        {
            VirtAddr va;
            pt::Pte pte;
            PageSizeKind size;
        };
        std::vector<Item> items;
        ops.forEachLeaf(proc.roots(),
                        [&](VirtAddr va, pt::PteLoc, pt::Pte pte,
                            PageSizeKind size) {
                            items.push_back({va, pte, size});
                        });
        auto &physmem = mach.physmem();
        for (const auto &it : items) {
            if (physmem.socketOf(it.pte.pfn()) == target)
                continue;
            auto fresh = physmem.migrateData(it.pte.pfn(), target);
            if (!fresh)
                continue; // target full; leave the page behind
            pt::WalkResult cur = ops.walk(proc.roots(), it.va);
            MITOSIM_ASSERT(cur.mapped);
            int level = (it.size == PageSizeKind::Large2M) ? 2 : 1;
            pv->setPte(proc.roots(), cur.loc, cur.leaf.withPfn(*fresh),
                       level, cost);
            if (cost) {
                std::uint64_t frames =
                    (it.size == PageSizeKind::Large2M) ? FramesPerLargePage
                                                       : 1;
                cost->charge(pvops::PageCopyCost * frames);
            }
        }
    }

    // Tell the backend (Mitosis migrates the page-tables here, §5.5).
    pv->onProcessMigrated(proc.roots(), proc.id(), from, target, cost);

    // Fresh CR3 on the new cores (full flush on the old ones is implicit:
    // nothing runs there any more).
    reloadContexts(proc);
    if (cost)
        cost->charge(pvops::TlbShootdownCost);
    checkpoint("migrateProcess");
    return true;
}

void
Kernel::reloadContexts(Process &proc)
{
    if (!sched.timeShared()) {
        // Pinned: each thread owns its core; flush-all load, as seeded.
        for (const auto &t : proc.threads()) {
            SocketId s = mach.topology().socketOfCore(t.core);
            mach.core(t.core).loadCr3(pv->cr3For(proc.roots(), s),
                                      proc.asid, false);
        }
        return;
    }
    // Time-shared: a reload means the address space changed underneath
    // the tags — data pages moved to fresh frames (migrate_data), or
    // page-table pages were freed by the backend (§5.5 eager migration,
    // replication-mask shrink). Tagged TLB/PWC survivors anywhere —
    // including cores the process is *not* resident on — would point
    // into freed, recyclable frames, and no ASID-generation mismatch
    // protects against that (same owner, same generation). Drop them
    // all, then re-arm the resident cores.
    flushProcess(proc, nullptr);
    for (CoreId c : sched.residentCores(proc)) {
        SocketId s = mach.topology().socketOfCore(c);
        mach.core(c).loadCr3(pv->cr3For(proc.roots(), s), proc.asid,
                             sched.config().pcid);
    }
}

void
Kernel::setDataPolicy(Process &proc, DataPolicy policy,
                      SocketId fixed_socket)
{
    proc.dataPolicy = policy;
    proc.dataFixedSocket = fixed_socket;
}

void
Kernel::setPtPlacement(Process &proc, pt::PtPlacement placement,
                       SocketId fixed_socket)
{
    proc.ptPolicy.mode = placement;
    proc.ptPolicy.fixedSocket = fixed_socket;
}

void
Kernel::enableAutoNuma(Process &proc, bool on)
{
    proc.autoNumaEnabled = on;
}

void
Kernel::autoNumaTick(double sample_fraction, Rng &rng)
{
    for (auto &p : procs) {
        if (p->autoNumaEnabled)
            autonuma.scan(*p, sample_fraction, rng);
    }
}

void
Kernel::shootdown(Process &proc, VirtAddr va, KernelCost *cost)
{
    forEachShootdownCore(proc, [&](sim::Core &core) {
        core.tlb().invalidatePage(va);
        core.pwc().invalidate(va);
    });
    if (cost)
        cost->charge(pvops::TlbShootdownCost);
    mShootdowns->inc();
    mach.tracer().instant(obs::TraceCat::Shootdown, "tlb_shootdown",
                          proc.id(), 0, "va", va);
}

void
Kernel::flushProcess(Process &proc, KernelCost *cost)
{
    // Pinned: the seed's MOV-CR3-style full flush on the owned cores.
    // Time-shared: selective — drop only this tenant's tagged entries,
    // wherever they linger; the other tenants sharing the cores keep
    // theirs (INVPCID rather than a full flush).
    bool selective = sched.timeShared();
    forEachShootdownCore(proc, [&](sim::Core &core) {
        if (selective) {
            core.flushAsid(proc.asid);
        } else {
            core.tlb().flushAll();
            core.pwc().flushAll();
        }
    });
    if (cost) {
        cost->charge(pvops::TlbShootdownCost);
        // Uncosted calls are subsumed by a caller that reports its own
        // shootdown (e.g. shootdownRange's full-flush escalation).
        mShootdowns->inc();
        mach.tracer().instant(obs::TraceCat::Shootdown,
                              "tlb_flush_process", proc.id(), 0);
    }
}

void
Kernel::shootdownRange(Process &proc, const std::vector<VirtAddr> &vas,
                       std::uint64_t pages, KernelCost *cost)
{
    if (pages == 0)
        return;
    if (pages > FlushAllThresholdPages) {
        // Beyond the single-page-flush ceiling one full flush is
        // cheaper than per-page invalidations (Linux's heuristic).
        flushProcess(proc, nullptr);
    } else {
        forEachShootdownCore(proc, [&](sim::Core &core) {
            for (VirtAddr va : vas) {
                core.tlb().invalidatePage(va);
                core.pwc().invalidate(va);
            }
        });
    }
    // One IPI round per range op, attributed to the caller.
    if (cost)
        cost->charge(pvops::TlbShootdownCost);
    mShootdowns->inc();
    mach.tracer().instant(obs::TraceCat::Shootdown,
                          "tlb_shootdown_range", proc.id(), 0, "pages",
                          pages);
}

SocketId
Kernel::chooseDataSocket(Process &proc, VirtAddr va,
                         SocketId faulting_socket, bool large)
{
    switch (proc.dataPolicy) {
      case DataPolicy::FirstTouch:
        return faulting_socket;
      case DataPolicy::Interleave: {
        unsigned shift = large ? LargePageShift : PageShift;
        return static_cast<SocketId>((va >> shift) %
                                     static_cast<std::uint64_t>(
                                         mach.numSockets()));
      }
      case DataPolicy::Fixed:
        return proc.dataFixedSocket;
    }
    return faulting_socket;
}

bool
Kernel::faultIn(Process &proc, CoreId core, VirtAddr va, KernelCost &cost,
                PageSizeKind *mapped_size)
{
    if (mapped_size)
        *mapped_size = PageSizeKind::Base4K;
    const Vma *vma = proc.findVma(va);
    if (!vma)
        panic("segfault: pid %d touched unmapped va=0x%llx", proc.id(),
              (unsigned long long)va);

    cost.charge(pvops::FaultFixedCost);
    SocketId faulting_socket = mach.topology().socketOfCore(core);
    auto &physmem = mach.physmem();

    std::uint64_t flags = pt::PteUser;
    if (vma->prot & ProtWrite)
        flags |= pt::PteWrite;

    // THP path: map a whole 2 MB page when the aligned block fits the VMA
    // and a contiguous run is available (falls back under fragmentation,
    // the Figure 11 effect). Linux's pmd_none rule applies: the L2 slot
    // must be *vacant* — a range already holding 4 KB mappings is
    // promoted by khugepaged's collapse, never by the fault handler,
    // which would otherwise orphan the live leaf table (and its data
    // frames) and leave stale PWC entries pointing into it.
    VirtAddr huge_base = alignDown(va, LargePageSize);
    bool slot_vacant = true;
    if (Pfn dir = ops.tableFor(proc.roots(), huge_base, 2);
        dir != InvalidPfn) {
        pt::Pte slot{
            mach.physmem().table(dir)[ptIndex(huge_base, PtLevel::L2)]};
        slot_vacant = !slot.present();
    }
    if (vma->thpEnabled && slot_vacant && huge_base >= vma->start &&
        huge_base + LargePageSize <= vma->end) {
        SocketId target = chooseDataSocket(proc, huge_base,
                                           faulting_socket, true);
        if (auto head = physmem.allocDataLarge(target, proc.id())) {
            cost.charge(pvops::PageAllocCost +
                        pvops::PageZeroCost * FramesPerLargePage);
            if (ops.map2M(proc.roots(), proc.id(), huge_base, *head, flags,
                          proc.ptPolicy, faulting_socket, &cost)) {
                proc.residentPages += FramesPerLargePage;
                if (mapped_size)
                    *mapped_size = PageSizeKind::Large2M;
                return true;
            }
            physmem.freeDataLarge(*head);
            return false;
        }
        // Fall through to a 4 KB mapping.
    }

    SocketId target = chooseDataSocket(proc, va, faulting_socket, false);
    auto pfn = physmem.allocData(target, proc.id());
    if (!pfn)
        pfn = physmem.allocDataAny(target, proc.id());
    if (!pfn)
        return false;
    cost.charge(pvops::PageAllocCost + pvops::PageZeroCost);
    VirtAddr page_va = alignDown(va, PageSize);
    if (!ops.map4K(proc.roots(), proc.id(), page_va, *pfn, flags,
                   proc.ptPolicy, faulting_socket, &cost)) {
        physmem.freeData(*pfn);
        return false;
    }
    ++proc.residentPages;
    return true;
}

void
Kernel::freeLeafData(pt::Pte leaf, PageSizeKind size)
{
    auto &physmem = mach.physmem();
    if (size == PageSizeKind::Large2M)
        physmem.freeDataLarge(leaf.pfn());
    else
        physmem.freeData(leaf.pfn());
}

Cycles
Kernel::handleFault(CoreId core, const sim::FaultRequest &req)
{
    Process *proc = processOnCore(core);
    if (!proc)
        panic("fault on core %d with no process scheduled", core);

    KernelCost cost;
    SocketId fault_socket = mach.topology().socketOfCore(core);
    // Each case banks its cycles into a per-kind vmcheck bucket; the
    // conservation check verifies the buckets sum to the total banked
    // at return, so a future fault path cannot silently go uncharged.
    switch (req.kind) {
      case sim::WalkFault::NotPresent:
        if (pv->onTranslationFault(proc->roots(), fault_socket, req.va,
                                   &cost)) {
            if (chk)
                chk->noteFaultCharge(check::FaultCharge::LazyDrain,
                                     cost.cycles);
            break; // lazy replica updates applied; the access retries
        }
        if (!faultIn(*proc, core, req.va, cost))
            fatal("out of memory demand-faulting va=0x%llx",
                  (unsigned long long)req.va);
        if (chk)
            chk->noteFaultCharge(check::FaultCharge::Demand, cost.cycles);
        break;

      case sim::WalkFault::NumaHint:
        cost.charge(autonuma.onHintFault(*proc, core, req.va));
        if (chk)
            chk->noteFaultCharge(check::FaultCharge::NumaHint,
                                 cost.cycles);
        break;

      case sim::WalkFault::Protection: {
        if (pv->onTranslationFault(proc->roots(), fault_socket, req.va,
                                   &cost)) {
            if (chk)
                chk->noteFaultCharge(check::FaultCharge::LazyDrain,
                                     cost.cycles);
            break; // a pending permission upgrade was applied
        }
        const Vma *vma = proc->findVma(req.va);
        if (!vma || !(vma->prot & ProtWrite))
            panic("write to read-only mapping at va=0x%llx",
                  (unsigned long long)req.va);
        // VMA allows writing but the PTE lagged (e.g. after mprotect
        // round-trip): upgrade the leaf.
        cost.charge(pvops::FaultFixedCost);
        ops.protect(proc->roots(), req.va, pt::PteWrite, 0, &cost);
        shootdown(*proc, req.va, &cost);
        if (chk)
            chk->noteFaultCharge(check::FaultCharge::Upgrade,
                                 cost.cycles);
        break;
      }

      case sim::WalkFault::None:
        panic("handleFault called with WalkFault::None");
    }
    if (chk)
        chk->noteFaultTotal(cost.cycles);
    const char *ev = nullptr;
    switch (req.kind) {
      case sim::WalkFault::NotPresent:
        mFaultNotPresent->inc();
        ev = "fault_not_present";
        break;
      case sim::WalkFault::NumaHint:
        mFaultNumaHint->inc();
        ev = "fault_numa_hint";
        break;
      case sim::WalkFault::Protection:
        mFaultProtection->inc();
        ev = "fault_protection";
        break;
      case sim::WalkFault::None:
        break;
    }
    mFaultCycles->observe(cost.cycles);
    mach.tracer().complete(obs::TraceCat::Fault, ev, cost.cycles,
                           proc->id(), core, "va", req.va);
    return cost.cycles;
}

} // namespace mitosim::os
