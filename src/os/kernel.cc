#include "kernel.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/pvops/costs.h"

namespace mitosim::os
{

using pvops::KernelCost;

Kernel::Kernel(sim::Machine &machine, pvops::PvOps &backend)
    : mach(machine), pv(&backend), ops(machine.physmem(), backend),
      autonuma(*this),
      coreOwner(static_cast<std::size_t>(machine.numCores()), -1)
{
    mach.setFaultHandler(
        [this](CoreId core, const sim::FaultRequest &req) {
            return handleFault(core, req);
        });
}

Kernel::~Kernel()
{
    // Tear down any still-live processes so physical memory balances.
    while (!procs.empty())
        destroyProcess(*procs.back());
}

Process &
Kernel::createProcess(const std::string &name, SocketId home_socket)
{
    MITOSIM_ASSERT(home_socket >= 0 &&
                   home_socket < mach.numSockets());
    auto proc = std::make_unique<Process>(nextPid++, name);
    Process &ref = *proc;
    KernelCost cost;
    if (!ops.createRoot(ref.roots(), ref.id(), home_socket, &cost))
        fatal("out of memory creating root table for '%s'", name.c_str());
    procs.push_back(std::move(proc));
    homeSockets.push_back(home_socket);
    return ref;
}

void
Kernel::destroyProcess(Process &proc)
{
    // Free all data frames referenced by the primary tree.
    std::vector<pt::WalkResult> leaves;
    ops.forEachLeaf(proc.roots(),
                    [&](VirtAddr, pt::PteLoc loc, pt::Pte pte,
                        PageSizeKind size) {
                        pt::WalkResult r;
                        r.mapped = true;
                        r.leaf = pte;
                        r.loc = loc;
                        r.size = size;
                        leaves.push_back(r);
                    });
    for (const auto &leaf : leaves)
        freeLeafData(leaf);

    KernelCost cost;
    ops.destroy(proc.roots(), &cost);

    for (const auto &t : proc.threads())
        coreOwner[static_cast<std::size_t>(t.core)] = -1;

    auto it = std::find_if(procs.begin(), procs.end(),
                           [&](const auto &p) { return p.get() == &proc; });
    MITOSIM_ASSERT(it != procs.end(), "destroyProcess: unknown process");
    homeSockets.erase(homeSockets.begin() + (it - procs.begin()));
    procs.erase(it);
}

Process *
Kernel::findProcess(ProcId pid)
{
    for (auto &p : procs) {
        if (p->id() == pid)
            return p.get();
    }
    return nullptr;
}

Process *
Kernel::processOnCore(CoreId core)
{
    MITOSIM_ASSERT(core >= 0 && core < mach.numCores());
    ProcId pid = coreOwner[static_cast<std::size_t>(core)];
    return pid < 0 ? nullptr : findProcess(pid);
}

SocketId
Kernel::homeSocket(const Process &proc) const
{
    for (std::size_t i = 0; i < procs.size(); ++i) {
        if (procs[i].get() == &proc)
            return homeSockets[i];
    }
    panic("homeSocket: unknown process");
}

Region
Kernel::mmap(Process &proc, std::uint64_t length, const MmapOptions &opts,
             KernelCost *cost)
{
    MITOSIM_ASSERT(length > 0, "mmap of zero length");
    std::uint64_t rounded = alignUp(length, PageSize);
    return mmapFixed(proc, proc.reserveRange(rounded), rounded, opts,
                     cost);
}

Region
Kernel::mmapFixed(Process &proc, VirtAddr start, std::uint64_t length,
                  const MmapOptions &opts, KernelCost *cost)
{
    MITOSIM_ASSERT(length > 0, "mmap of zero length");
    MITOSIM_ASSERT((start & (PageSize - 1)) == 0, "mmapFixed: unaligned");
    std::uint64_t rounded = alignUp(length, PageSize);
    for (const Vma &v : proc.vmas()) {
        if (start < v.end && start + rounded > v.start)
            fatal("mmapFixed: range overlaps an existing VMA");
    }

    Vma vma;
    vma.start = start;
    vma.end = start + rounded;
    vma.prot = opts.prot;
    vma.thpEnabled = opts.thp;
    proc.vmas().push_back(vma);

    if (cost)
        cost->charge(pvops::VmaOpFixedCost);

    if (opts.populate) {
        CoreId core = opts.populateCore;
        if (core < 0)
            core = mach.topology().firstCoreOf(homeSocket(proc));
        populate(proc, start, rounded, core, cost);
    }
    return Region{start, rounded};
}

void
Kernel::populate(Process &proc, VirtAddr start, std::uint64_t length,
                 CoreId core, KernelCost *cost)
{
    KernelCost local;
    KernelCost &c = cost ? *cost : local;
    VirtAddr va = start;
    VirtAddr end = start + length;
    while (va < end) {
        pt::WalkResult existing = ops.walk(proc.roots(), va);
        if (existing.mapped) {
            va += (existing.size == PageSizeKind::Large2M)
                      ? LargePageSize - (va & (LargePageSize - 1))
                      : PageSize;
            continue;
        }
        if (!faultIn(proc, core, va, c))
            fatal("populate: out of memory at va=0x%llx",
                  (unsigned long long)va);
        pt::WalkResult mapped = ops.walk(proc.roots(), va);
        MITOSIM_ASSERT(mapped.mapped, "populate: fault-in did not map");
        va += (mapped.size == PageSizeKind::Large2M)
                  ? LargePageSize - (va & (LargePageSize - 1))
                  : PageSize;
    }
}

void
Kernel::munmap(Process &proc, VirtAddr start, std::uint64_t length,
               KernelCost *cost)
{
    MITOSIM_ASSERT((start & (PageSize - 1)) == 0, "munmap: unaligned");
    std::uint64_t rounded = alignUp(length, PageSize);
    VirtAddr end = start + rounded;

    if (cost)
        cost->charge(pvops::VmaOpFixedCost);

    std::uint64_t pages_touched = 0;
    for (VirtAddr va = start; va < end;) {
        pt::WalkResult res = ops.unmap(proc.roots(), va, cost);
        if (!res.mapped) {
            va += PageSize;
            continue;
        }
        freeLeafData(res);
        if (cost)
            cost->charge(pvops::PageFreeCost);
        ++pages_touched;
        if (pages_touched <= FlushAllThresholdPages)
            shootdown(proc, va, nullptr);
        va += (res.size == PageSizeKind::Large2M)
                  ? LargePageSize - (va & (LargePageSize - 1))
                  : PageSize;
    }
    if (pages_touched > FlushAllThresholdPages)
        flushProcess(proc, nullptr);
    if (pages_touched > 0 && cost)
        cost->charge(pvops::TlbShootdownCost);

    // Trim / split the VMA list.
    std::vector<Vma> updated;
    for (const Vma &v : proc.vmas()) {
        if (v.end <= start || v.start >= end) {
            updated.push_back(v);
            continue;
        }
        if (v.start < start) {
            Vma left = v;
            left.end = start;
            updated.push_back(left);
        }
        if (v.end > end) {
            Vma right = v;
            right.start = end;
            updated.push_back(right);
        }
    }
    proc.vmas() = std::move(updated);
}

void
Kernel::mprotect(Process &proc, VirtAddr start, std::uint64_t length,
                 std::uint64_t prot, KernelCost *cost)
{
    MITOSIM_ASSERT((start & (PageSize - 1)) == 0, "mprotect: unaligned");
    std::uint64_t rounded = alignUp(length, PageSize);
    VirtAddr end = start + rounded;

    if (cost)
        cost->charge(pvops::VmaOpFixedCost);

    std::uint64_t set = 0;
    std::uint64_t clear = 0;
    if (prot & ProtWrite)
        set |= pt::PteWrite;
    else
        clear |= pt::PteWrite;

    std::uint64_t pages_touched = 0;
    for (VirtAddr va = start; va < end;) {
        pt::WalkResult res = ops.walk(proc.roots(), va);
        if (!res.mapped) {
            va += PageSize;
            continue;
        }
        ops.protect(proc.roots(), va, set, clear, cost);
        ++pages_touched;
        if (pages_touched <= FlushAllThresholdPages)
            shootdown(proc, va, nullptr);
        va += (res.size == PageSizeKind::Large2M)
                  ? LargePageSize - (va & (LargePageSize - 1))
                  : PageSize;
    }
    if (pages_touched > FlushAllThresholdPages)
        flushProcess(proc, nullptr);
    if (pages_touched > 0 && cost)
        cost->charge(pvops::TlbShootdownCost);

    for (Vma &v : proc.vmas()) {
        if (v.start >= start && v.end <= end)
            v.prot = prot;
    }
}

int
Kernel::spawnThread(Process &proc, CoreId core)
{
    MITOSIM_ASSERT(core >= 0 && core < mach.numCores());
    MITOSIM_ASSERT(coreOwner[static_cast<std::size_t>(core)] < 0,
                   "core already occupied");
    coreOwner[static_cast<std::size_t>(core)] = proc.id();
    Thread t;
    t.tid = nextTid++;
    t.core = core;
    proc.threads().push_back(t);
    SocketId s = mach.topology().socketOfCore(core);
    mach.core(core).loadCr3(pv->cr3For(proc.roots(), s));
    return t.tid;
}

CoreId
Kernel::findFreeCore(SocketId socket) const
{
    const auto &topo = mach.topology();
    CoreId first = topo.firstCoreOf(socket);
    for (CoreId c = first; c < first + topo.coresPerSocket(); ++c) {
        if (coreOwner[static_cast<std::size_t>(c)] < 0)
            return c;
    }
    return -1;
}

int
Kernel::spawnThreadOnSocket(Process &proc, SocketId socket)
{
    CoreId core = findFreeCore(socket);
    if (core < 0)
        fatal("no free core on socket %d", socket);
    return spawnThread(proc, core);
}

void
Kernel::migrateProcess(Process &proc, SocketId target, bool migrate_data,
                       KernelCost *cost)
{
    MITOSIM_ASSERT(target >= 0 && target < mach.numSockets());
    SocketId from = homeSocket(proc);

    // Re-pin threads onto the target socket.
    for (auto &t : proc.threads()) {
        coreOwner[static_cast<std::size_t>(t.core)] = -1;
        CoreId fresh = findFreeCore(target);
        if (fresh < 0)
            fatal("migrateProcess: no free core on socket %d", target);
        coreOwner[static_cast<std::size_t>(fresh)] = proc.id();
        t.core = fresh;
    }
    for (std::size_t i = 0; i < procs.size(); ++i) {
        if (procs[i].get() == &proc)
            homeSockets[i] = target;
    }

    if (migrate_data) {
        // Collect first: migrating mutates the tree we iterate.
        struct Item
        {
            VirtAddr va;
            pt::Pte pte;
            PageSizeKind size;
        };
        std::vector<Item> items;
        ops.forEachLeaf(proc.roots(),
                        [&](VirtAddr va, pt::PteLoc, pt::Pte pte,
                            PageSizeKind size) {
                            items.push_back({va, pte, size});
                        });
        auto &physmem = mach.physmem();
        for (const auto &it : items) {
            if (physmem.socketOf(it.pte.pfn()) == target)
                continue;
            auto fresh = physmem.migrateData(it.pte.pfn(), target);
            if (!fresh)
                continue; // target full; leave the page behind
            pt::WalkResult cur = ops.walk(proc.roots(), it.va);
            MITOSIM_ASSERT(cur.mapped);
            int level = (it.size == PageSizeKind::Large2M) ? 2 : 1;
            pv->setPte(proc.roots(), cur.loc, cur.leaf.withPfn(*fresh),
                       level, cost);
            if (cost) {
                std::uint64_t frames =
                    (it.size == PageSizeKind::Large2M) ? FramesPerLargePage
                                                       : 1;
                cost->charge(pvops::PageCopyCost * frames);
            }
        }
    }

    // Tell the backend (Mitosis migrates the page-tables here, §5.5).
    pv->onProcessMigrated(proc.roots(), proc.id(), from, target, cost);

    // Fresh CR3 on the new cores (full flush on the old ones is implicit:
    // nothing runs there any more).
    reloadContexts(proc);
    if (cost)
        cost->charge(pvops::TlbShootdownCost);
}

void
Kernel::reloadContexts(Process &proc)
{
    for (const auto &t : proc.threads()) {
        SocketId s = mach.topology().socketOfCore(t.core);
        mach.core(t.core).loadCr3(pv->cr3For(proc.roots(), s));
    }
}

void
Kernel::setDataPolicy(Process &proc, DataPolicy policy,
                      SocketId fixed_socket)
{
    proc.dataPolicy = policy;
    proc.dataFixedSocket = fixed_socket;
}

void
Kernel::setPtPlacement(Process &proc, pt::PtPlacement placement,
                       SocketId fixed_socket)
{
    proc.ptPolicy.mode = placement;
    proc.ptPolicy.fixedSocket = fixed_socket;
}

void
Kernel::enableAutoNuma(Process &proc, bool on)
{
    proc.autoNumaEnabled = on;
}

void
Kernel::autoNumaTick(double sample_fraction, Rng &rng)
{
    for (auto &p : procs) {
        if (p->autoNumaEnabled)
            autonuma.scan(*p, sample_fraction, rng);
    }
}

void
Kernel::shootdown(Process &proc, VirtAddr va, KernelCost *cost)
{
    for (const auto &t : proc.threads()) {
        auto &core = mach.core(t.core);
        core.tlb().invalidatePage(va);
        core.pwc().invalidate(va);
    }
    if (cost)
        cost->charge(pvops::TlbShootdownCost);
}

void
Kernel::flushProcess(Process &proc, KernelCost *cost)
{
    for (const auto &t : proc.threads()) {
        auto &core = mach.core(t.core);
        core.tlb().flushAll();
        core.pwc().flushAll();
    }
    if (cost)
        cost->charge(pvops::TlbShootdownCost);
}

SocketId
Kernel::chooseDataSocket(Process &proc, VirtAddr va,
                         SocketId faulting_socket, bool large)
{
    switch (proc.dataPolicy) {
      case DataPolicy::FirstTouch:
        return faulting_socket;
      case DataPolicy::Interleave: {
        unsigned shift = large ? LargePageShift : PageShift;
        return static_cast<SocketId>((va >> shift) %
                                     static_cast<std::uint64_t>(
                                         mach.numSockets()));
      }
      case DataPolicy::Fixed:
        return proc.dataFixedSocket;
    }
    return faulting_socket;
}

bool
Kernel::faultIn(Process &proc, CoreId core, VirtAddr va, KernelCost &cost)
{
    const Vma *vma = proc.findVma(va);
    if (!vma)
        panic("segfault: pid %d touched unmapped va=0x%llx", proc.id(),
              (unsigned long long)va);

    cost.charge(pvops::FaultFixedCost);
    SocketId faulting_socket = mach.topology().socketOfCore(core);
    auto &physmem = mach.physmem();

    std::uint64_t flags = pt::PteUser;
    if (vma->prot & ProtWrite)
        flags |= pt::PteWrite;

    // THP path: map a whole 2 MB page when the aligned block fits the VMA
    // and a contiguous run is available (falls back under fragmentation,
    // the Figure 11 effect).
    VirtAddr huge_base = alignDown(va, LargePageSize);
    if (vma->thpEnabled && huge_base >= vma->start &&
        huge_base + LargePageSize <= vma->end) {
        SocketId target = chooseDataSocket(proc, huge_base,
                                           faulting_socket, true);
        if (auto head = physmem.allocDataLarge(target, proc.id())) {
            cost.charge(pvops::PageAllocCost +
                        pvops::PageZeroCost * FramesPerLargePage);
            if (ops.map2M(proc.roots(), proc.id(), huge_base, *head, flags,
                          proc.ptPolicy, faulting_socket, &cost)) {
                proc.residentPages += FramesPerLargePage;
                return true;
            }
            physmem.freeDataLarge(*head);
            return false;
        }
        // Fall through to a 4 KB mapping.
    }

    SocketId target = chooseDataSocket(proc, va, faulting_socket, false);
    auto pfn = physmem.allocData(target, proc.id());
    if (!pfn)
        pfn = physmem.allocDataAny(target, proc.id());
    if (!pfn)
        return false;
    cost.charge(pvops::PageAllocCost + pvops::PageZeroCost);
    VirtAddr page_va = alignDown(va, PageSize);
    if (!ops.map4K(proc.roots(), proc.id(), page_va, *pfn, flags,
                   proc.ptPolicy, faulting_socket, &cost)) {
        physmem.freeData(*pfn);
        return false;
    }
    ++proc.residentPages;
    return true;
}

void
Kernel::freeLeafData(const pt::WalkResult &leaf)
{
    auto &physmem = mach.physmem();
    if (leaf.size == PageSizeKind::Large2M)
        physmem.freeDataLarge(leaf.leaf.pfn());
    else
        physmem.freeData(leaf.leaf.pfn());
}

Cycles
Kernel::handleFault(CoreId core, const sim::FaultRequest &req)
{
    Process *proc = processOnCore(core);
    if (!proc)
        panic("fault on core %d with no process scheduled", core);

    KernelCost cost;
    SocketId fault_socket = mach.topology().socketOfCore(core);
    switch (req.kind) {
      case sim::WalkFault::NotPresent:
        if (pv->onTranslationFault(proc->roots(), fault_socket, req.va,
                                   &cost)) {
            break; // lazy replica updates applied; the access retries
        }
        if (!faultIn(*proc, core, req.va, cost))
            fatal("out of memory demand-faulting va=0x%llx",
                  (unsigned long long)req.va);
        break;

      case sim::WalkFault::NumaHint:
        cost.charge(autonuma.onHintFault(*proc, core, req.va));
        break;

      case sim::WalkFault::Protection: {
        if (pv->onTranslationFault(proc->roots(), fault_socket, req.va,
                                   &cost)) {
            break; // a pending permission upgrade was applied
        }
        const Vma *vma = proc->findVma(req.va);
        if (!vma || !(vma->prot & ProtWrite))
            panic("write to read-only mapping at va=0x%llx",
                  (unsigned long long)req.va);
        // VMA allows writing but the PTE lagged (e.g. after mprotect
        // round-trip): upgrade the leaf.
        cost.charge(pvops::FaultFixedCost);
        ops.protect(proc->roots(), req.va, pt::PteWrite, 0, &cost);
        shootdown(*proc, req.va, &cost);
        break;
      }

      case sim::WalkFault::None:
        panic("handleFault called with WalkFault::None");
    }
    return cost.cycles;
}

} // namespace mitosim::os
