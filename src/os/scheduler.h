/**
 * @file
 * Time-sharing CPU scheduler: per-core run queues, round-robin
 * timeslices, oversubscription, and ASID-aware context switching.
 *
 * The seed kernel could only *pin*: one thread per core, `fatal()` when
 * a socket filled up, and every CR3 load flushed the whole TLB+PWC. The
 * paper's second scenario (§3.2, §5.3) is about processes *moving under
 * a scheduler* — "Mitosis allocates a replica when the process is
 * scheduled there" — which needs cores that are time-shared between
 * tenants with honestly modelled switch costs.
 *
 * Two modes, selected by SchedulerConfig::timeShared:
 *
 *  - **Pinned** (default): bit-for-bit the seed semantics. A thread owns
 *    its core, placement fails recoverably when a socket is full, every
 *    CR3 load flushes. All existing benches run in this mode and their
 *    numbers are unchanged.
 *
 *  - **Time-shared**: threads are *assigned* to a per-core run queue
 *    (least-loaded core of the requested socket; more threads than
 *    cores is fine) and become *resident* — CR3 actually loaded — only
 *    when they run. A dispatch of a non-resident thread is a context
 *    switch: the outgoing thread re-queues (counted as a preemption
 *    when its timeslice had expired), ContextSwitchCost + the CR3 write
 *    are charged to the incoming thread, and the TLB/PWC are either
 *    flushed (PCID off) or preserved under ASID tags (PCID on; a
 *    recycled ASID gets a selective flushAsid first). Each dispatch
 *    also fires PvOps::onThreadScheduled, the §5.3 seam where Mitosis
 *    builds a replica on a socket's first timeslice.
 *
 * The scheduler clock is virtual: ExecContext reports the simulated
 * cycles each access/compute step consumed (tick()), and a thread whose
 * accumulated slice exceeds the configured timeslice is marked expired —
 * the next dispatch of a competitor counts as a preemption. Waiting
 * time is not charged to waiting threads (runtimes stay per-thread
 * cycle counts; consolidation benches report the shared-core pressure
 * through switch counts and post-switch miss cycles instead).
 */

#ifndef MITOSIM_OS_SCHEDULER_H
#define MITOSIM_OS_SCHEDULER_H

#include <deque>
#include <functional>
#include <vector>

#include "src/os/process.h"
#include "src/pvops/pvops.h"
#include "src/sim/machine.h"
#include "src/sim/perf_counters.h"

namespace mitosim::os
{

/** Scheduler knobs (KernelConfig::sched). */
struct SchedulerConfig
{
    /** Off = seed-faithful pinning; on = run queues + timeslicing. */
    bool timeShared = false;

    /**
     * Tag TLB/PWC entries with the process ASID and preserve them
     * across context switches (x86 PCID). Off degenerates to the
     * seed's flush-everything CR3 load on every switch.
     */
    bool pcid = true;

    /** Timeslice in simulated cycles before a thread is preemptible. */
    Cycles timeslice = 50000;

    /**
     * ASID space size (x86: 12-bit PCID = 4096). Small values force
     * recycling, which costs a selective flush per generation bump.
     */
    int maxAsids = 4096;
};

/** Scheduling activity counters (reported outside bench metrics). */
struct SchedulerStats
{
    std::uint64_t contextSwitches = 0; //!< CR3 loads for a new thread
    std::uint64_t preemptions = 0;     //!< switches off an expired slice
    std::uint64_t migrations = 0;      //!< thread moved to another core
    std::uint64_t asidRecycleFlushes = 0; //!< selective flushes on reuse
    std::uint64_t enqueues = 0;        //!< threads admitted to run queues
};

/** Per-core run queues + residency; owned by the Kernel. */
class Scheduler
{
  public:
    Scheduler(sim::Machine &machine, const SchedulerConfig &config);

    /** Late-bound: the Kernel's PV-Ops backend (CR3 values, §5.3 hook). */
    void attachBackend(pvops::PvOps &backend) { pv = &backend; }

    /**
     * Invoked after every real (cross-address-space) context switch,
     * once the incoming CR3 is loaded. The Kernel points this at the
     * vmcheck dispatch checkpoint when checking is enabled.
     */
    void setDispatchHook(std::function<void()> hook)
    {
        dispatchHook = std::move(hook);
    }

    bool timeShared() const { return cfg.timeShared; }
    const SchedulerConfig &config() const { return cfg; }
    const SchedulerStats &stats() const { return stats_; }

    /// @name Address-space identifiers
    /// @{

    /**
     * Assign an ASID to a new process. ASIDs recycle round-robin with
     * a generation bump, so a core that still holds another owner's
     * tagged entries selectively flushes them before trusting the tag
     * (dispatch compares the owner's generation, which also keeps two
     * *live* aliasing owners apart under ASID-space pressure).
     */
    Asid assignAsid();

    /** Generation of the most recent assignAsid() for @p asid. */
    std::uint64_t generationOf(Asid asid) const
    {
        return asidGen[asid];
    }
    /// @}

    /// @name Thread placement
    /// @{

    /**
     * Core a new thread of @p proc should join on @p socket: pinned
     * mode scans for a free core (seed's findFreeCore order) and
     * returns -1 when the socket is full — the recoverable replacement
     * for the seed's fatal(); time-shared mode picks the least-loaded
     * core and never fails.
     */
    CoreId pickCore(SocketId socket) const;

    /** May a new thread join @p core? (pinned mode: is it free?) */
    bool canAdmit(CoreId core) const;

    /**
     * Admit thread @p tid of @p proc (already appended to the process's
     * thread list with its core set) to its core. Pinned mode makes it
     * resident immediately and loads CR3 (seed behaviour); time-shared
     * mode only enqueues — CR3 is loaded at first dispatch.
     */
    void admitThread(Process &proc, int tid);

    /**
     * Move every thread of @p proc to cores of @p target. Pinned mode
     * re-pins in the seed's core-choice order, returning false — with
     * nothing moved — when the socket cannot seat them all; time-shared
     * mode reassigns to the least-loaded queues (counting migrations;
     * CR3s reload lazily at the next dispatch) and always succeeds.
     */
    bool migrateThreads(Process &proc, SocketId target);

    /** Drop all of @p proc's threads: dequeue, park residencies
     *  (clearing CR3 on cores still holding the dying address space —
     *  the seed left those loaded against freed frames), and flush the
     *  process's tagged entries everywhere. */
    void removeProcess(Process &proc);
    /// @}

    /// @name Dispatch (time-shared mode)
    /// @{

    /**
     * Make thread @p tid of @p proc resident on its core, context
     * switching if another thread holds it. Switch costs (fixed cost,
     * CR3 write, §5.3 replica work) are charged to @p pc; a switch
     * between two threads of the *same* process keeps CR3 (Linux's
     * prev->mm == next->mm fast path) and pays only the fixed cost —
     * no flush even with PCID off. Returns the core to run on.
     */
    CoreId dispatch(Process &proc, int tid, sim::PerfCounters &pc);

    /** Advance the resident thread's slice clock on @p core. */
    void tick(CoreId core, Cycles spent);
    /// @}

    /// @name Residency queries (both modes)
    /// @{

    /** Pid resident on @p core, -1 when the core is idle. */
    ProcId residentPid(CoreId core) const;

    /** Cores on which @p proc is currently resident. */
    std::vector<CoreId> residentCores(const Process &proc) const;

    /** Threads assigned (queued or resident) to @p core. */
    int assignedThreads(CoreId core) const;
    /// @}

    /**
     * Snapshot restore: adopt the run queues, residencies, ASID
     * generations and activity counters of @p src. Both schedulers
     * must have been built from the same config over the same machine
     * shape; the late-bound backend/hook of *this* kernel stay.
     */
    void
    cloneStateFrom(const Scheduler &src)
    {
        MITOSIM_ASSERT(cfg.timeShared == src.cfg.timeShared &&
                           cores.size() == src.cores.size(),
                       "cloneStateFrom: scheduler config mismatch");
        cores = src.cores;
        asidGen = src.asidGen;
        nextAsid = src.nextAsid;
        stats_ = src.stats_;
    }

  private:
    /** A (process, thread) reference in a run queue. */
    struct ThreadRef
    {
        ProcId pid = -1;
        int tid = -1;

        bool valid() const { return pid >= 0; }
        bool operator==(const ThreadRef &) const = default;
    };

    struct CoreState
    {
        std::deque<ThreadRef> queue; //!< runnable, excluding resident
        ThreadRef resident;          //!< thread whose CR3 is loaded
        Cycles sliceUsed = 0;
        bool sliceExpired = false;
        int assigned = 0;            //!< threads homed on this queue
        std::vector<std::uint64_t> seenGen; //!< observed ASID generations
    };

    CoreState &state(CoreId core);
    const CoreState &state(CoreId core) const;

    /** Least-loaded core of @p socket (ties: lowest id). */
    CoreId leastLoadedCore(SocketId socket) const;

    sim::Machine &mach;
    SchedulerConfig cfg;
    pvops::PvOps *pv = nullptr;
    std::function<void()> dispatchHook;
    std::vector<CoreState> cores;
    std::vector<std::uint64_t> asidGen; //!< generation per ASID
    int nextAsid = 1; //!< round-robin cursor; 0 is the kernel/boot space
    SchedulerStats stats_;

    /// @name Observability handles (registered once in the ctor)
    /// @{
    obs::Counter *mSwitches = nullptr;
    obs::Counter *mPreemptions = nullptr;
    obs::Counter *mMigrations = nullptr;
    obs::Counter *mAsidRecycles = nullptr;
    /// @}
};

} // namespace mitosim::os

#endif // MITOSIM_OS_SCHEDULER_H
