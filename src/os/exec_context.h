/**
 * @file
 * Execution context: N logical workload threads pinned to cores, with
 * per-thread performance counters.
 *
 * Threads are simulated round-robin in small chunks so that same-socket
 * threads share L3 state roughly the way concurrent execution would.
 * The reported "runtime" of a parallel phase is the maximum per-thread
 * cycle count (threads run concurrently in the modelled machine).
 */

#ifndef MITOSIM_OS_EXEC_CONTEXT_H
#define MITOSIM_OS_EXEC_CONTEXT_H

#include <vector>

#include "src/os/kernel.h"
#include "src/os/process.h"
#include "src/sim/perf_counters.h"

namespace mitosim::os
{

/** Workload-facing execution handle. */
class ExecContext
{
  public:
    ExecContext(Kernel &kernel, Process &proc) : k(kernel), proc_(proc) {}

    /** Pin a new logical thread to a free core of @p socket. */
    int
    addThread(SocketId socket)
    {
        k.spawnThreadOnSocket(proc_, socket);
        counters.emplace_back();
        return static_cast<int>(counters.size()) - 1;
    }

    int numThreads() const { return static_cast<int>(counters.size()); }

    /** Core currently backing logical thread @p tid. */
    CoreId
    coreOf(int tid) const
    {
        return proc_.threads().at(static_cast<std::size_t>(tid)).core;
    }

    SocketId
    socketOf(int tid) const
    {
        return k.machine().topology().socketOfCore(coreOf(tid));
    }

    /** One load/store by thread @p tid. */
    Cycles
    access(int tid, VirtAddr va, bool is_write)
    {
        return k.machine()
            .core(coreOf(tid))
            .access(va, is_write, counters[static_cast<std::size_t>(tid)]);
    }

    /** Charge non-memory work to thread @p tid. */
    void
    compute(int tid, Cycles c)
    {
        auto &pc = counters[static_cast<std::size_t>(tid)];
        pc.cycles += c;
        pc.computeCycles += c;
    }

    sim::PerfCounters &
    threadCounters(int tid)
    {
        return counters[static_cast<std::size_t>(tid)];
    }

    /** Aggregate counters over all threads. */
    sim::PerfCounters
    totals() const
    {
        sim::PerfCounters sum;
        for (const auto &pc : counters)
            sum.add(pc);
        return sum;
    }

    /** Parallel runtime: the slowest thread's cycles. */
    Cycles
    runtime() const
    {
        Cycles max = 0;
        for (const auto &pc : counters)
            max = std::max(max, pc.cycles);
        return max;
    }

    /** Walk-cycle fraction of the slowest thread's socket-mates. */
    double
    walkFraction() const
    {
        sim::PerfCounters sum = totals();
        return sum.walkFraction();
    }

    /** Reset counters (benches exclude the initialization phase). */
    void
    resetCounters()
    {
        for (auto &pc : counters)
            pc = sim::PerfCounters{};
    }

    Kernel &kernel() { return k; }
    Process &process() { return proc_; }

  private:
    Kernel &k;
    Process &proc_;
    std::vector<sim::PerfCounters> counters;
};

} // namespace mitosim::os

#endif // MITOSIM_OS_EXEC_CONTEXT_H
