/**
 * @file
 * Execution context: N logical workload threads with per-thread
 * performance counters, pinned to cores or (when the kernel runs the
 * time-sharing scheduler) assigned to per-core run queues.
 *
 * Threads are simulated round-robin in small chunks so that same-socket
 * threads share L3 state roughly the way concurrent execution would.
 * Under the scheduler every access/compute step also advances the
 * scheduler clock: a step by a non-resident thread context-switches its
 * core (costed through Scheduler::dispatch), which is how tenant
 * processes interleave on shared cores and L3. The reported "runtime"
 * of a parallel phase is the maximum per-thread cycle count (threads
 * run concurrently in the modelled machine).
 */

#ifndef MITOSIM_OS_EXEC_CONTEXT_H
#define MITOSIM_OS_EXEC_CONTEXT_H

#include <vector>

#include "src/base/logging.h"
#include "src/os/kernel.h"
#include "src/os/process.h"
#include "src/sim/batch_op.h"
#include "src/sim/perf_counters.h"

namespace mitosim::os
{

/**
 * One recorded workload action (sharded simulation, phase A): either a
 * memory access or a compute charge by logical thread @p tid. The
 * index of an op in the trace is the global serial order.
 */
struct TraceOp
{
    VirtAddr va = 0;
    Cycles cycles = 0; //!< compute ops: the charged amount
    std::int32_t tid = 0;
    bool isWrite = false;
    bool isCompute = false;
};

/**
 * One pre-generated workload operation for the batched stepping path:
 * workloads emit short runs of these into a per-thread buffer
 * (Workload::stepBatch) and ExecContext::runBatch consumes the run in
 * a tight loop with the per-op mode checks hoisted out. The record
 * itself lives in sim/ so Core::accessRun can fuse over it.
 */
using BatchOp = sim::BatchOp;

/** Workload-facing execution handle. */
class ExecContext
{
  public:
    ExecContext(Kernel &kernel, Process &proc) : k(kernel), proc_(proc) {}

    /**
     * Snapshot-fork constructor: bind to a process whose threads were
     * already spawned by the donor and copied in with the kernel state
     * (addThread would spawn them a second time), and adopt the
     * donor context's per-thread counters and THP-tick clock so the
     * fork is indistinguishable from the context that populated.
     */
    ExecContext(Kernel &kernel, Process &proc, const ExecContext &donor)
        : k(kernel), proc_(proc), counters(donor.counters),
          thpTickPeriod(donor.thpTickPeriod),
          thpTickCredit(donor.thpTickCredit)
    {
        MITOSIM_ASSERT(counters.size() == proc.threads().size(),
                       "snapshot fork: thread/counter count mismatch");
    }

    /** Start a new logical thread on @p socket (pinned: needs a free
     *  core; time-shared: joins a run queue). */
    int
    addThread(SocketId socket)
    {
        if (k.spawnThreadOnSocket(proc_, socket) < 0)
            fatal("addThread: no free core on socket %d", socket);
        counters.emplace_back();
        return static_cast<int>(counters.size()) - 1;
    }

    /** Start a new logical thread on exactly @p core (time-shared mode
     *  joins its queue; pinned mode claims it, which must be free). */
    int
    addThreadOnCore(CoreId core)
    {
        k.spawnThread(proc_, core);
        counters.emplace_back();
        return static_cast<int>(counters.size()) - 1;
    }

    int numThreads() const { return static_cast<int>(counters.size()); }

    /** Core currently backing logical thread @p tid. */
    CoreId
    coreOf(int tid) const
    {
        return proc_.threads().at(static_cast<std::size_t>(tid)).core;
    }

    SocketId
    socketOf(int tid) const
    {
        return k.machine().topology().socketOfCore(coreOf(tid));
    }

    /** One load/store by thread @p tid. */
    Cycles
    access(int tid, VirtAddr va, bool is_write)
    {
        if (trace_) {
            // Recording (sharded phase A): log the op, touch nothing.
            // No workload consumes the returned latency, so 0 is safe.
            trace_->push_back(TraceOp{va, 0, tid, is_write, false});
            return 0;
        }
        auto &pc = counters[static_cast<std::size_t>(tid)];
        Scheduler &sched = k.scheduler();
        Cycles c;
        if (sched.timeShared()) {
            // Running a step makes the thread resident (context
            // switching if a competitor holds the core) and advances
            // the core's timeslice clock by the simulated cycles.
            CoreId core = sched.dispatch(proc_, tid, pc);
            c = k.machine().core(core).access(va, is_write, pc);
            sched.tick(core, c);
        } else {
            c = k.machine().core(coreOf(tid)).access(va, is_write, pc);
        }
        noteThpCycles(c);
        k.machine().tracer().advance(c);
        return c;
    }

    /** Charge non-memory work to thread @p tid. */
    void
    compute(int tid, Cycles c)
    {
        if (trace_) {
            trace_->push_back(TraceOp{0, c, tid, false, true});
            return;
        }
        auto &pc = counters[static_cast<std::size_t>(tid)];
        Scheduler &sched = k.scheduler();
        if (sched.timeShared()) {
            CoreId core = sched.dispatch(proc_, tid, pc);
            sched.tick(core, c);
        }
        pc.cycles += c;
        pc.computeCycles += c;
        noteThpCycles(c);
        k.machine().tracer().advance(c);
    }

    /**
     * Replay @p n pre-generated ops for thread @p tid.
     *
     * Semantically identical to calling access()/compute() once per op
     * in order — and when tracing or time-sharing it literally does
     * that, so TraceOp recording and scheduler dispatch points stay
     * byte-identical. In the pinned steady state it instead hoists the
     * per-op mode checks, the counter lookup and the core lookup out
     * of the loop: nothing hoisted can change mid-batch there (threads
     * never migrate cores in pinned mode, and fault handlers do not
     * flip scheduler modes), so the simulated outcome is unchanged.
     *
     * Pinned runs with THP ticks active fuse too: each accessRun call
     * gets the cycles remaining until the next daemon tick as a budget
     * and ends at the op that crosses it, after which noteThpCycles
     * fires the tick — the exact op boundary where the per-op path
     * would have run it (see Core::accessRun). With fusion disabled
     * (MITOSIM_FUSE=0) tick runs take the literal per-op path.
     */
    void
    runBatch(int tid, const BatchOp *ops, std::size_t n)
    {
        if (trace_ || k.scheduler().timeShared() ||
            k.machine().tracer().enabled() ||
            (thpTickPeriod != 0 && !sim::fuseEnabled())) {
            for (std::size_t i = 0; i < n; ++i) {
                if (ops[i].isCompute)
                    compute(tid, ops[i].cycles);
                else
                    access(tid, ops[i].va, ops[i].isWrite);
            }
            return;
        }
        auto &pc = counters[static_cast<std::size_t>(tid)];
        sim::Core &core = k.machine().core(coreOf(tid));
        if (thpTickPeriod != 0) {
            // Tick-aware fusion: noteThpCycles keeps thpTickCredit
            // strictly below thpTickPeriod, so the budget is always
            // positive and accessRun stops on (and consumes) exactly
            // the op whose charge crosses the tick boundary. pc.cycles
            // advances by precisely the sum the per-op path would have
            // passed to noteThpCycles op by op, so measuring its delta
            // fires ticks at identical points. Computes outside a run
            // tick individually, as in the per-op path.
            std::size_t i = 0;
            while (i < n) {
                if (ops[i].isCompute) {
                    pc.cycles += ops[i].cycles;
                    pc.computeCycles += ops[i].cycles;
                    noteThpCycles(ops[i].cycles);
                    ++i;
                    continue;
                }
                Cycles before = pc.cycles;
                i += core.accessRun(ops + i, n - i, pc,
                                    thpTickPeriod - thpTickCredit);
                noteThpCycles(pc.cycles - before);
            }
            return;
        }
        if (sim::fuseEnabled()) {
            // Run fusion: each accessRun call replays one maximal run
            // of same-page ops with a single real TLB probe and one
            // real cache probe per distinct line (exact — see
            // Core::accessRun). Leading computes are charged here so
            // every accessRun starts on an access.
            std::size_t i = 0;
            while (i < n) {
                if (ops[i].isCompute) {
                    pc.cycles += ops[i].cycles;
                    pc.computeCycles += ops[i].cycles;
                    ++i;
                    continue;
                }
                i += core.accessRun(ops + i, n - i, pc);
            }
            return;
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (ops[i].isCompute) {
                pc.cycles += ops[i].cycles;
                pc.computeCycles += ops[i].cycles;
            } else {
                core.access(ops[i].va, ops[i].isWrite, pc);
            }
        }
    }

    /**
     * Tie the THP daemons to this context's execution clock: every
     * @p period simulated cycles spent in access()/compute(), the
     * kernel runs one khugepaged + kcompactd pass (Kernel::thpTick) —
     * the same explicit-period pattern as the AutoNUMA scan ticks.
     * 0 (the default) disables.
     */
    void
    enableThpTicks(Cycles period)
    {
        thpTickPeriod = period;
        thpTickCredit = 0;
    }

    sim::PerfCounters &
    threadCounters(int tid)
    {
        return counters[static_cast<std::size_t>(tid)];
    }

    /** Aggregate counters over all threads. */
    sim::PerfCounters
    totals() const
    {
        sim::PerfCounters sum;
        for (const auto &pc : counters)
            sum.add(pc);
        return sum;
    }

    /** Parallel runtime: the slowest thread's cycles. */
    Cycles
    runtime() const
    {
        Cycles max = 0;
        for (const auto &pc : counters)
            max = std::max(max, pc.cycles);
        return max;
    }

    /** Walk-cycle fraction of the slowest thread's socket-mates. */
    double
    walkFraction() const
    {
        sim::PerfCounters sum = totals();
        return sum.walkFraction();
    }

    /** Reset counters (benches exclude the initialization phase). */
    void
    resetCounters()
    {
        for (auto &pc : counters)
            pc = sim::PerfCounters{};
    }

    /**
     * Route access()/compute() into @p sink instead of the machine
     * (sharded phase A). The caller owns the vector and must call
     * endTrace() before any real simulation resumes.
     */
    void beginTrace(std::vector<TraceOp> *sink) { trace_ = sink; }
    void endTrace() { trace_ = nullptr; }
    bool tracing() const { return trace_ != nullptr; }

    /** Are THP daemon ticks tied to this context's clock? (Such runs
     *  are ineligible for sharding: ticks mutate shared state at
     *  cycle-dependent points.) */
    bool thpTicksEnabled() const { return thpTickPeriod != 0; }

    Kernel &kernel() { return k; }
    Process &process() { return proc_; }

  private:
    void
    noteThpCycles(Cycles c)
    {
        if (!thpTickPeriod)
            return;
        thpTickCredit += c;
        while (thpTickCredit >= thpTickPeriod) {
            thpTickCredit -= thpTickPeriod;
            k.thpTick();
        }
    }

    Kernel &k;
    Process &proc_;
    std::vector<sim::PerfCounters> counters;
    Cycles thpTickPeriod = 0; //!< 0 = no daemon ticks from this context
    Cycles thpTickCredit = 0;
    std::vector<TraceOp> *trace_ = nullptr; //!< non-null: recording
};

} // namespace mitosim::os

#endif // MITOSIM_OS_EXEC_CONTEXT_H
