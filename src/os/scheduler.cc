#include "scheduler.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/pvops/costs.h"

namespace mitosim::os
{

Scheduler::Scheduler(sim::Machine &machine, const SchedulerConfig &config)
    : mach(machine), cfg(config),
      cores(static_cast<std::size_t>(machine.numCores())),
      asidGen(static_cast<std::size_t>(std::max(2, config.maxAsids)), 0)
{
    // Lower bound: {0 = kernel/boot, 1} must exist. Upper bound: the
    // Asid type is 16 bits; a larger space would truncate back onto
    // the reserved ASID 0.
    MITOSIM_ASSERT(cfg.maxAsids >= 2 && cfg.maxAsids <= 65536,
                   "maxAsids must be in [2, 65536]");
    for (auto &cs : cores)
        cs.seenGen.assign(asidGen.size(), 0);

    obs::MetricsRegistry &mr = mach.metrics();
    mSwitches = &mr.counter("sched_context_switches");
    mPreemptions = &mr.counter("sched_preemptions");
    mMigrations = &mr.counter("sched_migrations");
    mAsidRecycles = &mr.counter("sched_asid_recycle_flushes");
}

Scheduler::CoreState &
Scheduler::state(CoreId core)
{
    MITOSIM_ASSERT(core >= 0 && core < mach.numCores());
    return cores[static_cast<std::size_t>(core)];
}

const Scheduler::CoreState &
Scheduler::state(CoreId core) const
{
    MITOSIM_ASSERT(core >= 0 && core < mach.numCores());
    return cores[static_cast<std::size_t>(core)];
}

Asid
Scheduler::assignAsid()
{
    Asid asid = static_cast<Asid>(nextAsid);
    if (++nextAsid >= static_cast<int>(asidGen.size()))
        nextAsid = 1; // 0 stays the kernel/boot space
    std::uint64_t &gen = asidGen[asid];
    // First use is generation 1 (no core can hold entries yet); reuse
    // bumps the generation so cores selectively flush the previous
    // owner's leftovers before trusting the tag.
    ++gen;
    return asid;
}

CoreId
Scheduler::leastLoadedCore(SocketId socket) const
{
    const auto &topo = mach.topology();
    CoreId first = topo.firstCoreOf(socket);
    CoreId best = first;
    for (CoreId c = first; c < first + topo.coresPerSocket(); ++c) {
        if (state(c).assigned < state(best).assigned)
            best = c;
    }
    return best;
}

CoreId
Scheduler::pickCore(SocketId socket) const
{
    if (cfg.timeShared)
        return leastLoadedCore(socket);
    // Pinned: the seed's findFreeCore scan order, but recoverable.
    const auto &topo = mach.topology();
    CoreId first = topo.firstCoreOf(socket);
    for (CoreId c = first; c < first + topo.coresPerSocket(); ++c) {
        if (state(c).assigned == 0)
            return c;
    }
    return -1;
}

bool
Scheduler::canAdmit(CoreId core) const
{
    return cfg.timeShared || state(core).assigned == 0;
}

void
Scheduler::admitThread(Process &proc, int tid)
{
    const Thread &t = proc.threads().at(static_cast<std::size_t>(tid));
    CoreState &cs = state(t.core);
    ++cs.assigned;
    ++stats_.enqueues;
    if (cfg.timeShared) {
        cs.queue.push_back(ThreadRef{proc.id(), tid});
        return; // CR3 loads lazily, at the first dispatch
    }
    // Pinned: the thread owns the core; load its context now (flushing,
    // exactly the seed's CR3 semantics).
    cs.resident = ThreadRef{proc.id(), tid};
    SocketId socket = mach.topology().socketOfCore(t.core);
    mach.core(t.core).loadCr3(pv->cr3For(proc.roots(), socket), proc.asid,
                              false);
}

bool
Scheduler::migrateThreads(Process &proc, SocketId target)
{
    const auto &topo = mach.topology();
    auto &threads = proc.threads();

    if (!cfg.timeShared) {
        // Feasibility first, so a full target socket is a clean failure
        // instead of the seed's mid-loop fatal() with threads half
        // moved: every target core that is free — or will be freed by
        // this very migration — can host one thread.
        int available = 0;
        CoreId first = topo.firstCoreOf(target);
        for (CoreId c = first; c < first + topo.coresPerSocket(); ++c) {
            if (state(c).assigned == 0)
                ++available;
        }
        for (const auto &t : threads) {
            if (topo.socketOfCore(t.core) == target)
                ++available;
        }
        if (available < static_cast<int>(threads.size()))
            return false;

        // The seed's re-pin loop: free the thread's core, then claim
        // the first free core of the target socket. The vacated core
        // is parked outright — leaving its CR3 loaded would dangle
        // into page-table frames the Mitosis backend eagerly frees
        // right after the move (§5.5), beyond what destroy-time root
        // matching can recognize. reloadContexts() re-arms any core
        // this same loop hands back to the process.
        for (std::size_t i = 0; i < threads.size(); ++i) {
            CoreState &old_cs = state(threads[i].core);
            old_cs.assigned = 0;
            old_cs.resident = ThreadRef{};
            mach.core(threads[i].core).clearContext();
            CoreId fresh = pickCore(target);
            MITOSIM_ASSERT(fresh >= 0, "migrate feasibility check lied");
            CoreState &new_cs = state(fresh);
            new_cs.assigned = 1;
            new_cs.resident = ThreadRef{proc.id(), static_cast<int>(i)};
            threads[i].core = fresh;
        }
        return true;
    }

    for (std::size_t i = 0; i < threads.size(); ++i) {
        if (topo.socketOfCore(threads[i].core) == target)
            continue; // already local; keep its queue position
        ThreadRef me{proc.id(), static_cast<int>(i)};
        CoreState &old_cs = state(threads[i].core);
        if (old_cs.resident == me) {
            // Deschedule and park: leaving the CR3 loaded would keep
            // the old core walkable into page-tables this process may
            // free (e.g. Mitosis releasing the source replicas right
            // after the migration, §5.5).
            old_cs.resident = ThreadRef{};
            mach.core(threads[i].core).clearContext();
        } else {
            auto it = std::find(old_cs.queue.begin(), old_cs.queue.end(),
                                me);
            if (it != old_cs.queue.end())
                old_cs.queue.erase(it);
        }
        --old_cs.assigned;
        CoreId fresh = leastLoadedCore(target);
        CoreState &new_cs = state(fresh);
        ++new_cs.assigned;
        new_cs.queue.push_back(me);
        threads[i].core = fresh;
        ++stats_.migrations;
        mMigrations->inc();
        mach.tracer().instant(obs::TraceCat::Sched, "sched_migrate",
                              proc.id(), static_cast<int>(i), "core",
                              static_cast<std::uint64_t>(fresh));
    }
    return true;
}

void
Scheduler::removeProcess(Process &proc)
{
    ProcId pid = proc.id();
    // Is a core's loaded CR3 one of this process's roots? Residency is
    // not enough: a deschedule (migration) can leave the CR3 behind
    // with no resident ref, and under ASID aliasing the tag alone
    // would not prove ownership.
    auto owns_context = [&](const sim::Core &hw) {
        if (!hw.hasContext())
            return false;
        if (hw.cr3() == proc.roots().primaryRoot)
            return true;
        for (Pfn root : proc.roots().perSocketRoot) {
            if (root != InvalidPfn && root == hw.cr3())
                return true;
        }
        return false;
    };

    for (const auto &t : proc.threads())
        --state(t.core).assigned;
    for (CoreId c = 0; c < mach.numCores(); ++c) {
        CoreState &cs = state(c);
        std::erase_if(cs.queue,
                      [&](const ThreadRef &r) { return r.pid == pid; });
        if (cs.resident.pid == pid || owns_context(mach.core(c))) {
            // Park the context: the seed left the dead process's CR3
            // loaded here, a root pointer into freed (and reusable)
            // page-table frames.
            cs.resident = ThreadRef{};
            mach.core(c).clearContext();
        } else if (cfg.timeShared) {
            // The process may have run here earlier; its tagged
            // TLB/PWC entries must not survive the frames they map.
            mach.core(c).flushAsid(proc.asid);
        }
    }
}

CoreId
Scheduler::dispatch(Process &proc, int tid, sim::PerfCounters &pc)
{
    MITOSIM_ASSERT(cfg.timeShared, "dispatch in pinned mode");
    const Thread &t = proc.threads().at(static_cast<std::size_t>(tid));
    CoreId core = t.core;
    CoreState &cs = state(core);
    ThreadRef me{proc.id(), tid};
    if (cs.resident == me)
        return core; // already running; no cost

    ++stats_.contextSwitches;
    ++pc.contextSwitches;
    mSwitches->inc();
    mach.tracer().instant(obs::TraceCat::Sched, "sched_dispatch",
                          proc.id(), tid, "core",
                          static_cast<std::uint64_t>(core));
    // Linux's prev->mm == next->mm fast path: switching between two
    // threads of one process keeps CR3 — no flush even with PCID off,
    // no CR3 write, no replica work; only the fixed switch cost.
    bool same_space = cs.resident.valid() && cs.resident.pid == proc.id();
    if (cs.resident.valid()) {
        if (cs.sliceExpired) {
            ++stats_.preemptions;
            mPreemptions->inc();
            mach.tracer().instant(obs::TraceCat::Sched, "sched_preempt",
                                  cs.resident.pid, cs.resident.tid,
                                  "core",
                                  static_cast<std::uint64_t>(core));
        }
        cs.queue.push_back(cs.resident);
    }
    // Take our queue slot. Round-robin order is advisory in this
    // discrete-event model: the workload's interleaving decides who
    // runs next; the queue records who shares the core.
    auto it = std::find(cs.queue.begin(), cs.queue.end(), me);
    if (it != cs.queue.end())
        cs.queue.erase(it);
    cs.resident = me;
    cs.sliceUsed = 0;
    cs.sliceExpired = false;

    MITOSIM_ASSERT(proc.asidGeneration != 0,
                   "dispatching a process with no assigned ASID");

    // Kernel-side switch work, charged to the incoming thread.
    Cycles cost = pvops::ContextSwitchCost;

    if (same_space) {
        pc.cycles += cost;
        pc.kernelCycles += cost;
        return core;
    }

    // §5.3: first timeslice on a new socket builds the local replica.
    SocketId socket = mach.topology().socketOfCore(core);
    pvops::KernelCost kc;
    pv->onThreadScheduled(proc.roots(), proc.id(), socket, &kc);
    cost += kc.cycles;

    Pfn root = pv->cr3For(proc.roots(), socket);
    sim::Core &hw = mach.core(core);
    if (!cfg.pcid) {
        cost += hw.loadCr3(root, proc.asid, false); // flush everything
    } else {
        // Compare against the *incoming process's own* generation, not
        // the ASID's latest: under ASID pressure two live processes
        // can alias one ASID (each with its own generation), and the
        // mismatch then forces a selective flush on every handover so
        // neither can hit the other's tagged entries. seen == 0 means
        // this core never held the ASID at all — nothing to flush.
        std::uint64_t &seen = cs.seenGen[proc.asid];
        if (seen != 0 && seen != proc.asidGeneration) {
            hw.flushAsid(proc.asid);
            ++stats_.asidRecycleFlushes;
            mAsidRecycles->inc();
            mach.tracer().instant(obs::TraceCat::Asid,
                                  "asid_recycle_flush", proc.id(), tid,
                                  "asid", proc.asid);
        }
        seen = proc.asidGeneration;
        cost += hw.loadCr3(root, proc.asid, true);
    }
    pc.cycles += cost;
    pc.kernelCycles += cost;
    if (dispatchHook)
        dispatchHook();
    return core;
}

void
Scheduler::tick(CoreId core, Cycles spent)
{
    CoreState &cs = state(core);
    cs.sliceUsed += spent;
    if (cs.sliceUsed >= cfg.timeslice)
        cs.sliceExpired = true;
}

ProcId
Scheduler::residentPid(CoreId core) const
{
    const CoreState &cs = state(core);
    return cs.resident.valid() ? cs.resident.pid : -1;
}

std::vector<CoreId>
Scheduler::residentCores(const Process &proc) const
{
    std::vector<CoreId> out;
    for (CoreId c = 0; c < mach.numCores(); ++c) {
        if (state(c).resident.pid == proc.id())
            out.push_back(c);
    }
    return out;
}

int
Scheduler::assignedThreads(CoreId core) const
{
    return state(core).assigned;
}

} // namespace mitosim::os
