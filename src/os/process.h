/**
 * @file
 * Processes, their address spaces (VMAs) and placement policies.
 *
 * The process owns a pt::RootSet (its CR3 array), a sorted VMA list, and
 * the data/page-table placement policies the paper's analysis varies
 * (first-touch vs interleave data placement, §3.1; forced page-table
 * sockets, §3.2).
 */

#ifndef MITOSIM_OS_PROCESS_H
#define MITOSIM_OS_PROCESS_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/pt/operations.h"
#include "src/pt/root_set.h"

namespace mitosim::os
{

/** Data page placement policy (numactl-style). */
enum class DataPolicy
{
    FirstTouch, //!< allocate on the faulting thread's socket (default)
    Interleave, //!< round-robin across sockets by page index
    Fixed,      //!< always a designated socket (§3.2 methodology)
};

/** Protection bits for mmap/mprotect. */
enum ProtFlags : std::uint64_t
{
    ProtRead = 1 << 0,
    ProtWrite = 1 << 1,
};

/** One virtual memory area. */
struct Vma
{
    VirtAddr start = 0;
    VirtAddr end = 0; //!< exclusive
    std::uint64_t prot = ProtRead | ProtWrite;
    bool thpEnabled = false; //!< eligible for transparent 2 MB pages

    bool contains(VirtAddr va) const { return va >= start && va < end; }
    std::uint64_t length() const { return end - start; }
};

/** A runnable thread pinned to one core. */
struct Thread
{
    int tid = -1;
    CoreId core = -1;
};

/** A process. */
class Process
{
  public:
    Process(ProcId id, std::string name) : pid(id), name_(std::move(name))
    {
    }

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    ProcId id() const { return pid; }
    const std::string &name() const { return name_; }

    /// @name Address space
    /// @{
    pt::RootSet &roots() { return roots_; }
    const pt::RootSet &roots() const { return roots_; }

    std::vector<Vma> &vmas() { return vmas_; }
    const std::vector<Vma> &vmas() const { return vmas_; }

    /** VMA containing @p va, or nullptr. */
    const Vma *
    findVma(VirtAddr va) const
    {
        for (const auto &v : vmas_) {
            if (v.contains(va))
                return &v;
        }
        return nullptr;
    }

    Vma *
    findVma(VirtAddr va)
    {
        return const_cast<Vma *>(
            static_cast<const Process *>(this)->findVma(va));
    }

    /** Bump-allocated mmap area; 2 MB aligned for THP friendliness. */
    VirtAddr
    reserveRange(std::uint64_t length)
    {
        VirtAddr base = nextMmap;
        nextMmap = alignUp(nextMmap + length, LargePageSize);
        return base;
    }
    /// @}

    /// @name Policies
    /// @{
    DataPolicy dataPolicy = DataPolicy::FirstTouch;
    SocketId dataFixedSocket = 0;
    pt::PtPlacementPolicy ptPolicy;
    bool autoNumaEnabled = false;
    /// @}

    /// @name Scheduling
    /// @{
    std::vector<Thread> &threads() { return threads_; }
    const std::vector<Thread> &threads() const { return threads_; }
    /// @}

    /** Round-robin rotor for interleaved data placement. */
    int interleaveNext = 0;

    /** Cumulative count of pages faulted in (4 KB units). */
    std::uint64_t residentPages = 0;

  private:
    ProcId pid;
    std::string name_;
    pt::RootSet roots_;
    std::vector<Vma> vmas_;
    std::vector<Thread> threads_;
    VirtAddr nextMmap = 0x10000000000ull; //!< 1 TiB, clear of nullptr
};

} // namespace mitosim::os

#endif // MITOSIM_OS_PROCESS_H
