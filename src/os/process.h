/**
 * @file
 * Processes, their address spaces (VMAs) and placement policies.
 *
 * The process owns a pt::RootSet (its CR3 array), an ordered VMA tree,
 * and the data/page-table placement policies the paper's analysis varies
 * (first-touch vs interleave data placement, §3.1; forced page-table
 * sockets, §3.2).
 *
 * The VMA tree is keyed by start address (Linux's maple-tree role):
 * findVma is O(log V), and mmap/munmap/mprotect manipulate exact ranges
 * with Linux-style split/merge — a range op splits partially covered
 * VMAs so the metadata always matches the PTEs, and adjacent non-THP
 * VMAs with identical attributes merge back into one (see
 * Vma::mergeableWith for why THP regions stay separate).
 */

#ifndef MITOSIM_OS_PROCESS_H
#define MITOSIM_OS_PROCESS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/pt/operations.h"
#include "src/pt/root_set.h"

namespace mitosim::os
{

/** Data page placement policy (numactl-style). */
enum class DataPolicy
{
    FirstTouch, //!< allocate on the faulting thread's socket (default)
    Interleave, //!< round-robin across sockets by page index
    Fixed,      //!< always a designated socket (§3.2 methodology)
};

/** Protection bits for mmap/mprotect. */
enum ProtFlags : std::uint64_t
{
    ProtRead = 1 << 0,
    ProtWrite = 1 << 1,
};

/** One virtual memory area. */
struct Vma
{
    VirtAddr start = 0;
    VirtAddr end = 0; //!< exclusive
    std::uint64_t prot = ProtRead | ProtWrite;
    bool thpEnabled = false; //!< eligible for transparent 2 MB pages

    bool contains(VirtAddr va) const { return va >= start && va < end; }
    std::uint64_t length() const { return end - start; }

    /**
     * May this VMA merge with adjacent @p o? Attributes must match,
     * and THP VMAs never merge: a merged THP VMA would let a later
     * fault install a 2 MB page spanning the old boundary, silently
     * coupling the two mappings' lifetimes (an munmap of one region
     * would tear down its neighbour's huge page) — behaviour the
     * per-region seed semantics never allowed.
     */
    bool
    mergeableWith(const Vma &o) const
    {
        return prot == o.prot && !thpEnabled && !o.thpEnabled;
    }
};

/**
 * A runnable thread and the core it is assigned to: its owned core
 * under pinning, or the run queue it waits on under the time-sharing
 * scheduler (which moves `core` when it rebalances).
 */
struct Thread
{
    int tid = -1;
    CoreId core = -1;
};

/** A process. */
class Process
{
  public:
    /** VMAs ordered by start address. */
    using VmaMap = std::map<VirtAddr, Vma>;

    Process(ProcId id, std::string name) : pid(id), name_(std::move(name))
    {
    }

    Process &operator=(const Process &) = delete;

    ProcId id() const { return pid; }
    const std::string &name() const { return name_; }

    /// @name Address space
    /// @{
    pt::RootSet &roots() { return roots_; }
    const pt::RootSet &roots() const { return roots_; }

    const VmaMap &vmas() const { return vmas_; }

    /** VMA containing @p va, or nullptr. O(log V). */
    const Vma *
    findVma(VirtAddr va) const
    {
        auto it = vmas_.upper_bound(va);
        if (it == vmas_.begin())
            return nullptr;
        --it;
        return it->second.contains(va) ? &it->second : nullptr;
    }

    Vma *
    findVma(VirtAddr va)
    {
        return const_cast<Vma *>(
            static_cast<const Process *>(this)->findVma(va));
    }

    /** Does any VMA intersect [start, end)? O(log V). */
    bool
    overlapsRange(VirtAddr start, VirtAddr end) const
    {
        auto it = vmas_.lower_bound(start);
        if (it != vmas_.end() && it->second.start < end)
            return true;
        if (it == vmas_.begin())
            return false;
        --it;
        return it->second.end > start;
    }

    /**
     * Insert @p vma (must not overlap an existing VMA), merging with
     * mergeable adjacent VMAs (same attributes, non-THP).
     */
    void
    insertVma(Vma vma)
    {
        auto next = vmas_.lower_bound(vma.start);
        if (next != vmas_.begin()) {
            auto prev = std::prev(next);
            if (prev->second.end == vma.start &&
                prev->second.mergeableWith(vma)) {
                vma.start = prev->second.start;
                vmas_.erase(prev);
            }
        }
        if (next != vmas_.end() && next->second.start == vma.end &&
            next->second.mergeableWith(vma)) {
            vma.end = next->second.end;
            vmas_.erase(next);
        }
        vmas_.emplace(vma.start, vma);
    }

    /**
     * Remove [start, end) from the VMA metadata: fully covered VMAs
     * vanish, partially covered ones are split/trimmed to the exact
     * boundary (what Linux's munmap does to the tree).
     */
    void
    removeVmaRange(VirtAddr start, VirtAddr end)
    {
        auto it = vmas_.upper_bound(start);
        if (it != vmas_.begin())
            --it;
        while (it != vmas_.end() && it->second.start < end) {
            Vma v = it->second;
            if (v.end <= start) {
                ++it;
                continue;
            }
            it = vmas_.erase(it);
            if (v.start < start) {
                Vma left = v;
                left.end = start;
                vmas_.emplace(left.start, left);
            }
            if (v.end > end) {
                Vma right = v;
                right.start = end;
                it = vmas_.emplace(right.start, right).first;
                ++it;
            }
        }
    }

    /**
     * Set @p prot over exactly [start, end): partially covered VMAs are
     * split at the boundary so the metadata matches the rewritten PTEs
     * (the seed only updated fully-contained VMAs, leaving partial
     * overlaps stale). Mergeable adjacent VMAs merge back.
     */
    void
    protectVmaRange(VirtAddr start, VirtAddr end, std::uint64_t prot)
    {
        auto it = vmas_.upper_bound(start);
        if (it != vmas_.begin())
            --it;
        while (it != vmas_.end() && it->second.start < end) {
            Vma &v = it->second;
            if (v.end <= start || v.prot == prot) {
                ++it;
                continue;
            }
            if (v.start < start) {
                // Split off the uncovered head, then revisit the tail.
                Vma left = v;
                left.end = start;
                Vma right = v;
                right.start = start;
                vmas_.erase(it);
                vmas_.emplace(left.start, left);
                it = vmas_.emplace(right.start, right).first;
                continue;
            }
            if (v.end > end) {
                Vma head = v;
                head.end = end;
                head.prot = prot;
                Vma tail = v;
                tail.start = end;
                vmas_.erase(it);
                vmas_.emplace(head.start, head);
                it = vmas_.emplace(tail.start, tail).first;
            } else {
                v.prot = prot;
                ++it;
            }
        }
        mergeAdjacent(start, end);
    }

    /**
     * Set THP eligibility over exactly [start, end) — the tree half of
     * madvise(MADV_HUGEPAGE / MADV_NOHUGEPAGE): partially covered VMAs
     * split at the boundary, and newly-non-THP neighbours with matching
     * attributes merge back (THP VMAs never merge, see mergeableWith).
     * The caller must demote any huge page straddling a boundary first
     * (Kernel::madvise does) so no 2 MB mapping ever spans two VMAs.
     */
    void
    adviseThpRange(VirtAddr start, VirtAddr end, bool enable)
    {
        auto it = vmas_.upper_bound(start);
        if (it != vmas_.begin())
            --it;
        while (it != vmas_.end() && it->second.start < end) {
            Vma &v = it->second;
            if (v.end <= start || v.thpEnabled == enable) {
                ++it;
                continue;
            }
            if (v.start < start) {
                // Split off the uncovered head, then revisit the tail.
                Vma left = v;
                left.end = start;
                Vma right = v;
                right.start = start;
                vmas_.erase(it);
                vmas_.emplace(left.start, left);
                it = vmas_.emplace(right.start, right).first;
                continue;
            }
            if (v.end > end) {
                Vma head = v;
                head.end = end;
                head.thpEnabled = enable;
                Vma tail = v;
                tail.start = end;
                vmas_.erase(it);
                vmas_.emplace(head.start, head);
                it = vmas_.emplace(tail.start, tail).first;
            } else {
                v.thpEnabled = enable;
                ++it;
            }
        }
        mergeAdjacent(start, end);
    }

    /** Visit every VMA intersecting [start, end), in address order. */
    template <typename Fn>
    void
    forEachVmaIn(VirtAddr start, VirtAddr end, Fn &&fn) const
    {
        auto it = vmas_.upper_bound(start);
        if (it != vmas_.begin())
            --it;
        for (; it != vmas_.end() && it->second.start < end; ++it) {
            if (it->second.end > start)
                fn(it->second);
        }
    }

    /** Bump-allocated mmap area; 2 MB aligned for THP friendliness. */
    VirtAddr
    reserveRange(std::uint64_t length)
    {
        VirtAddr base = nextMmap;
        nextMmap = alignUp(nextMmap + length, LargePageSize);
        return base;
    }
    /// @}

    /// @name Policies
    /// @{
    DataPolicy dataPolicy = DataPolicy::FirstTouch;
    SocketId dataFixedSocket = 0;
    pt::PtPlacementPolicy ptPolicy;
    bool autoNumaEnabled = false;
    /// @}

    /// @name Scheduling
    /// @{
    std::vector<Thread> &threads() { return threads_; }
    const std::vector<Thread> &threads() const { return threads_; }

    /**
     * Address-space identifier the kernel assigned at creation; tags
     * this process's TLB/PWC entries on time-shared cores. The
     * generation distinguishes successive (or, under ASID pressure,
     * concurrent) owners of the same recycled ASID: a core switching
     * in compares the generation it last observed for the ASID and
     * selectively flushes on mismatch, so an alias can never hit
     * another owner's tagged entries.
     */
    Asid asid = 0;
    std::uint64_t asidGeneration = 0;
    /// @}

    /** Round-robin rotor for interleaved data placement. */
    int interleaveNext = 0;

    /** Cumulative count of pages faulted in (4 KB units). */
    std::uint64_t residentPages = 0;

  private:
    /**
     * Deep copy for Kernel::cloneStateFrom (snapshot forking) only:
     * every member is a value, so the defaulted copy is exact. Kept
     * private so nothing else can duplicate a live address space.
     */
    friend class Kernel;
    Process(const Process &) = default;

    /** Merge same-attribute neighbours around [from, to]. */
    void
    mergeAdjacent(VirtAddr from, VirtAddr to)
    {
        auto it = vmas_.lower_bound(from);
        if (it != vmas_.begin())
            --it;
        while (it != vmas_.end() && it->second.start <= to) {
            auto next = std::next(it);
            if (next == vmas_.end())
                break;
            if (it->second.end == next->second.start &&
                it->second.mergeableWith(next->second)) {
                it->second.end = next->second.end;
                vmas_.erase(next);
            } else {
                it = next;
            }
        }
    }

    ProcId pid;
    std::string name_;
    pt::RootSet roots_;
    VmaMap vmas_;
    std::vector<Thread> threads_;
    VirtAddr nextMmap = 0x10000000000ull; //!< 1 TiB, clear of nullptr
};

} // namespace mitosim::os

#endif // MITOSIM_OS_PROCESS_H
