#include "physical_memory.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <mutex>
#include <new>

#ifdef __linux__
#include <sys/mman.h>
#endif

#include "src/base/logging.h"

namespace mitosim::mem
{

namespace
{

/**
 * Process-wide slab arena + recycling pool for metadata chunks.
 *
 * Chunks churn constantly (snapshot forks detach CoW copies, machines
 * are built and torn down mid-run), and the snapshot cache keeps donor
 * machines alive, so a large share of newChunk() calls cannot be
 * served by recycling at all — they are fresh, and a per-chunk host
 * allocation pays a page-fault per 4 KiB of metadata. Minting chunks
 * out of multi-megabyte value-initialized slabs faults the host pages
 * sequentially (and lets the kernel use transparent huge pages),
 * which is several times cheaper per chunk. Slabs are never freed;
 * released chunks are scrubbed back to pristine and parked in `free`
 * for reuse, so arena growth is bounded by the peak live chunk count.
 * Deliberately leaked so chunk deleters running during static
 * destruction stay safe.
 */
struct ChunkPool
{
    std::mutex mu;
    std::vector<PageMeta *> free; //!< scrubbed, ready to hand out
    std::uint64_t slabs = 0;      //!< telemetry: 2 MiB slabs minted
    std::uint64_t recycles = 0;   //!< telemetry: chunks reused
};

ChunkPool &
chunkPool()
{
    static ChunkPool *pool = new ChunkPool;
    return *pool;
}

/**
 * Same shape for page-table storage: 2 MiB slabs of u64 PTE words,
 * split into the 256 KiB chunks the per-socket table arenas share
 * copy-on-write. Kept separate from ChunkPool only because the
 * element types (and scrub passes) differ.
 */
struct TablePool
{
    std::mutex mu;
    std::vector<std::uint64_t *> free; //!< zeroed, ready to hand out
    std::uint64_t slabs = 0;
    std::uint64_t recycles = 0;
};

TablePool &
tablePool()
{
    static TablePool *pool = new TablePool;
    return *pool;
}

/** Chunks minted per slab (the slab is the host-fault granule). */
constexpr std::size_t SlabChunks = 64;

/** Table chunks per 2 MiB slab (8 x 256 KiB). */
constexpr std::size_t TableSlabChunks = 8;

/**
 * One slab: a 2 MiB-aligned block advised towards transparent huge
 * pages *before* the initializing pass touches it, so the kernel can
 * back the whole slab with a handful of huge-page faults instead of
 * one 4 KiB fault per page. Slabs are intentionally never freed (the
 * pool owns every chunk for the process lifetime), so the raw pointer
 * is all the bookkeeping needed.
 */
template <typename T>
T *
newSlab(std::size_t elems)
{
    void *mem = ::operator new(elems * sizeof(T),
                               std::align_val_t{2ull << 20});
#ifdef __linux__
    (void)madvise(mem, elems * sizeof(T), MADV_HUGEPAGE);
#endif
    T *base = static_cast<T *>(mem);
    for (std::size_t i = 0; i < elems; ++i)
        new (base + i) T{};
    return base;
}

} // namespace

SlabPoolStats
slabPoolStats()
{
    SlabPoolStats out;
    {
        ChunkPool &pool = chunkPool();
        std::lock_guard<std::mutex> g(pool.mu);
        out.metaSlabs = pool.slabs;
        out.metaRecycles = pool.recycles;
    }
    {
        TablePool &pool = tablePool();
        std::lock_guard<std::mutex> g(pool.mu);
        out.tableSlabs = pool.slabs;
        out.tableRecycles = pool.recycles;
    }
    return out;
}

PhysicalMemory::PhysicalMemory(const numa::Topology &topology)
    : topo(topology),
      totalFrames_(topo.totalFrames()),
      metaChunks((topo.totalFrames() + MetaChunkSize - 1) >> MetaChunkShift),
      perSocket(static_cast<std::size_t>(topo.numSockets())),
      ptCache(static_cast<std::size_t>(topo.numSockets())),
      ptCacheTarget(static_cast<std::size_t>(topo.numSockets()), 0),
      fragPinned(static_cast<std::size_t>(topo.numSockets())),
      ptLive(static_cast<std::size_t>(topo.numSockets())),
      tableArenas(static_cast<std::size_t>(topo.numSockets()))
{
    allocators.reserve(static_cast<std::size_t>(topo.numSockets()));
    for (SocketId s = 0; s < topo.numSockets(); ++s)
        allocators.emplace_back(topo.firstPfnOf(s), topo.framesPerSocket());
    for (auto &arr : ptLive)
        arr.fill(0);
}

FrameAllocator &
PhysicalMemory::alloc(SocketId socket)
{
    MITOSIM_ASSERT(socket >= 0 && socket < topo.numSockets());
    return allocators[static_cast<std::size_t>(socket)];
}

const FrameAllocator &
PhysicalMemory::alloc(SocketId socket) const
{
    MITOSIM_ASSERT(socket >= 0 && socket < topo.numSockets());
    return allocators[static_cast<std::size_t>(socket)];
}

std::optional<Pfn>
PhysicalMemory::allocData(SocketId socket, ProcId owner)
{
    auto pfn = alloc(socket).allocFrame();
    if (!pfn)
        return std::nullopt;
    PageMeta &m = meta(*pfn);
    m.type = FrameType::Data;
    m.owner = owner;
    m.level = 0;
    m.flags = FrameFlagNone;
    m.replicaNext = *pfn;
    ++perSocket[static_cast<std::size_t>(socket)].dataPages;
    return pfn;
}

std::optional<Pfn>
PhysicalMemory::allocDataAny(SocketId preferred, ProcId owner)
{
    auto pfn = allocData(preferred, owner);
    if (pfn)
        return pfn;
    for (int d = 1; d < topo.numSockets(); ++d) {
        SocketId s = (preferred + d) % topo.numSockets();
        pfn = allocData(s, owner);
        if (pfn)
            return pfn;
    }
    return std::nullopt;
}

std::optional<Pfn>
PhysicalMemory::allocDataLarge(SocketId socket, ProcId owner)
{
    auto head = alloc(socket).allocLargeBlock();
    if (!head)
        return std::nullopt;
    for (Pfn p = *head; p < *head + FramesPerLargePage; ++p) {
        PageMeta &m = meta(p);
        m.type = FrameType::Data;
        m.owner = owner;
        m.level = 0;
        m.flags = (p == *head) ? FrameFlagLargeHead : FrameFlagLargeTail;
        m.replicaNext = p;
    }
    ++perSocket[static_cast<std::size_t>(socket)].dataLargePages;
    return head;
}

void
PhysicalMemory::freeData(Pfn pfn)
{
    PageMeta &m = meta(pfn);
    MITOSIM_ASSERT(m.type == FrameType::Data && !m.hasFlag(FrameFlagLargeHead)
                       && !m.hasFlag(FrameFlagLargeTail),
                   "freeData: not a small data frame");
    m.type = FrameType::Free;
    m.owner = -1;
    m.replicaNext = InvalidPfn;
    SocketId s = socketOf(pfn);
    --perSocket[static_cast<std::size_t>(s)].dataPages;
    alloc(s).freeFrame(pfn);
}

void
PhysicalMemory::freeDataLarge(Pfn head)
{
    PageMeta &hm = meta(head);
    MITOSIM_ASSERT(hm.type == FrameType::Data &&
                       hm.hasFlag(FrameFlagLargeHead),
                   "freeDataLarge: not a large-page head");
    for (Pfn p = head; p < head + FramesPerLargePage; ++p) {
        PageMeta &m = meta(p);
        m.type = FrameType::Free;
        m.owner = -1;
        m.flags = FrameFlagNone;
        m.replicaNext = InvalidPfn;
    }
    SocketId s = socketOf(head);
    --perSocket[static_cast<std::size_t>(s)].dataLargePages;
    alloc(s).freeLargeBlock(head);
}

std::optional<Pfn>
PhysicalMemory::migrateData(Pfn pfn, SocketId target)
{
    PageMeta &m = meta(pfn);
    MITOSIM_ASSERT(m.type == FrameType::Data, "migrateData: not data");
    bool large = m.hasFlag(FrameFlagLargeHead);
    MITOSIM_ASSERT(!m.hasFlag(FrameFlagLargeTail),
                   "migrateData: interior of a large page");
    ProcId owner = m.owner;
    std::optional<Pfn> fresh = large ? allocDataLarge(target, owner)
                                     : allocData(target, owner);
    if (!fresh)
        return std::nullopt;
    if (large)
        freeDataLarge(pfn);
    else
        freeData(pfn);
    return fresh;
}

void
PhysicalMemory::splitLargeData(Pfn head)
{
    PageMeta &hm = meta(head);
    MITOSIM_ASSERT(hm.type == FrameType::Data &&
                       hm.hasFlag(FrameFlagLargeHead),
                   "splitLargeData: not a large-page head");
    for (Pfn p = head; p < head + FramesPerLargePage; ++p) {
        PageMeta &m = meta(p);
        m.flags = FrameFlagNone;
        m.replicaNext = p;
    }
    auto &st = perSocket[static_cast<std::size_t>(socketOf(head))];
    --st.dataLargePages;
    st.dataPages += FramesPerLargePage;
}

std::optional<Pfn>
PhysicalMemory::compactData(Pfn pfn)
{
    PageMeta &m = meta(pfn);
    MITOSIM_ASSERT(m.type == FrameType::Data &&
                       !m.hasFlag(FrameFlagLargeHead) &&
                       !m.hasFlag(FrameFlagLargeTail),
                   "compactData: not a small data frame");
    SocketId s = socketOf(pfn);
    auto dest = alloc(s).allocFrameForCompaction(pfn);
    if (!dest)
        return std::nullopt;
    PageMeta &d = meta(*dest);
    d.type = FrameType::Data;
    d.owner = m.owner;
    d.level = 0;
    d.flags = FrameFlagNone;
    d.replicaNext = *dest;
    m.type = FrameType::Free;
    m.owner = -1;
    m.replicaNext = InvalidPfn;
    alloc(s).freeFrame(pfn);
    // dataPages is unchanged: one frame freed, one allocated, same
    // socket.
    return dest;
}

bool
PhysicalMemory::isFragPinned(Pfn pfn) const
{
    const PageMeta &m = meta(pfn);
    return m.type == FrameType::Reserved &&
           m.hasFlag(FrameFlagFragPin);
}

bool
PhysicalMemory::compactReservedPin(Pfn pfn)
{
    MITOSIM_ASSERT(isFragPinned(pfn),
                   "compactReservedPin: not a fragmentation filler");
    SocketId s = socketOf(pfn);
    auto &list = fragPinned[static_cast<std::size_t>(s)];
    auto it = std::find(list.begin(), list.end(), pfn);
    MITOSIM_ASSERT(it != list.end());
    auto dest = alloc(s).allocFrameForCompaction(pfn);
    if (!dest)
        return false;
    PageMeta &d = meta(*dest);
    d.type = FrameType::Reserved;
    d.owner = -1;
    d.level = 0;
    d.flags = FrameFlagFragPin;
    d.replicaNext = InvalidPfn;
    PageMeta &m = meta(pfn);
    m.type = FrameType::Free;
    m.flags = FrameFlagNone;
    m.replicaNext = InvalidPfn;
    alloc(s).freeFrame(pfn);
    *it = *dest;
    return true;
}

double
PhysicalMemory::largeBlockFreeRatio(SocketId socket) const
{
    return alloc(socket).largeBlockFreeRatio();
}

std::optional<Pfn>
PhysicalMemory::popPtCache(SocketId socket)
{
    auto &cache = ptCache[static_cast<std::size_t>(socket)];
    if (cache.empty())
        return std::nullopt;
    Pfn pfn = cache.back();
    cache.pop_back();
    return pfn;
}

std::optional<Pfn>
PhysicalMemory::allocPt(SocketId socket, int level, ProcId owner)
{
    MITOSIM_ASSERT(level >= 1 && level <= 4, "bad page-table level");
    auto &st = perSocket[static_cast<std::size_t>(socket)];
    ++st.ptAllocs;

    std::optional<Pfn> pfn = alloc(socket).allocFrame();
    if (!pfn) {
        pfn = popPtCache(socket); // reserve pool fallback (§5.1)
        if (pfn)
            ++st.ptCacheHits;
    }
    if (!pfn) {
        ++st.ptAllocFailures;
        return std::nullopt;
    }

    PageMeta &m = meta(*pfn);
    m.type = FrameType::PageTable;
    m.owner = owner;
    m.level = static_cast<std::uint8_t>(level);
    m.flags = FrameFlagNone;
    m.replicaNext = *pfn; // self-linked until replicated
    m.tableSlot = allocTableSlot(socket);

    ++st.ptPages;
    ++ptLive[static_cast<std::size_t>(socket)][static_cast<std::size_t>(
        level)];
    return pfn;
}

void
PhysicalMemory::freePt(Pfn pfn)
{
    PageMeta &m = meta(pfn);
    MITOSIM_ASSERT(m.isPageTable(), "freePt: not a page-table frame");
    MITOSIM_ASSERT(m.replicaNext == pfn,
                   "freePt: page still linked in a replica list");
    SocketId s = socketOf(pfn);
    auto &st = perSocket[static_cast<std::size_t>(s)];
    --st.ptPages;
    --ptLive[static_cast<std::size_t>(s)][m.level];

    releaseTableSlot(s, m.tableSlot);
    m.tableSlot = NoTableSlot;
    m.owner = -1;
    m.level = 0;
    m.replicaNext = InvalidPfn;

    auto &cache = ptCache[static_cast<std::size_t>(s)];
    if (cache.size() < ptCacheTarget[static_cast<std::size_t>(s)]) {
        m.type = FrameType::Reserved;
        m.flags = FrameFlagPtReserve;
        cache.push_back(pfn);
    } else {
        m.type = FrameType::Free;
        m.flags = FrameFlagNone;
        alloc(s).freeFrame(pfn);
    }
}

void
PhysicalMemory::setPtCacheTarget(SocketId socket, std::uint64_t frames)
{
    MITOSIM_ASSERT(socket >= 0 && socket < topo.numSockets());
    auto idx = static_cast<std::size_t>(socket);
    ptCacheTarget[idx] = frames;
    auto &cache = ptCache[idx];
    // Grow eagerly while memory is available.
    while (cache.size() < frames) {
        auto pfn = alloc(socket).allocFrame();
        if (!pfn)
            break;
        PageMeta &m = meta(*pfn);
        m.type = FrameType::Reserved;
        m.flags = FrameFlagPtReserve;
        cache.push_back(*pfn);
    }
    // Shrink eagerly when the target drops.
    while (cache.size() > frames) {
        Pfn pfn = cache.back();
        cache.pop_back();
        PageMeta &m = meta(pfn);
        m.type = FrameType::Free;
        m.flags = FrameFlagNone;
        alloc(socket).freeFrame(pfn);
    }
}

std::uint64_t
PhysicalMemory::ptCacheSize(SocketId socket) const
{
    MITOSIM_ASSERT(socket >= 0 && socket < topo.numSockets());
    return ptCache[static_cast<std::size_t>(socket)].size();
}

void
PhysicalMemory::linkReplica(Pfn base, Pfn added)
{
    PageMeta &bm = meta(base);
    PageMeta &am = meta(added);
    MITOSIM_ASSERT(bm.isPageTable() && am.isPageTable());
    MITOSIM_ASSERT(am.replicaNext == added,
                   "linkReplica: page already in a list");
    am.replicaNext = bm.replicaNext;
    bm.replicaNext = added;
}

void
PhysicalMemory::unlinkReplica(Pfn pfn)
{
    PageMeta &m = meta(pfn);
    MITOSIM_ASSERT(m.isPageTable());
    if (m.replicaNext == pfn)
        return; // already alone
    Pfn prev = pfn;
    while (meta(prev).replicaNext != pfn)
        prev = meta(prev).replicaNext;
    meta(prev).replicaNext = m.replicaNext;
    m.replicaNext = pfn;
}

Pfn
PhysicalMemory::replicaOnSocket(Pfn pfn, SocketId socket) const
{
    Pfn p = pfn;
    do {
        if (socketOf(p) == socket)
            return p;
        p = meta(p).replicaNext;
    } while (p != pfn);
    return InvalidPfn;
}

int
PhysicalMemory::replicaCount(Pfn pfn) const
{
    int n = 0;
    Pfn p = pfn;
    do {
        ++n;
        p = meta(p).replicaNext;
    } while (p != pfn);
    return n;
}

void
PhysicalMemory::forEachReplica(Pfn pfn,
                               const std::function<void(Pfn)> &fn) const
{
    Pfn p = pfn;
    do {
        fn(p);
        p = meta(p).replicaNext;
    } while (p != pfn);
}

std::uint64_t
PhysicalMemory::freeFrames(SocketId socket) const
{
    return alloc(socket).freeFrames();
}

std::uint64_t
PhysicalMemory::freeLargeBlocks(SocketId socket) const
{
    return alloc(socket).freeLargeBlocks();
}

const MemStats &
PhysicalMemory::stats(SocketId socket) const
{
    MITOSIM_ASSERT(socket >= 0 && socket < topo.numSockets());
    return perSocket[static_cast<std::size_t>(socket)];
}

std::uint64_t
PhysicalMemory::ptPagesAt(SocketId socket, int level) const
{
    MITOSIM_ASSERT(socket >= 0 && socket < topo.numSockets());
    MITOSIM_ASSERT(level >= 1 && level <= 4);
    return ptLive[static_cast<std::size_t>(socket)][static_cast<std::size_t>(
        level)];
}

void
PhysicalMemory::fragment(SocketId socket, double fraction, Rng &rng)
{
    auto pinned = alloc(socket).fragment(fraction, rng);
    for (Pfn pfn : pinned) {
        PageMeta &m = meta(pfn);
        m.type = FrameType::Reserved;
        m.flags = FrameFlagFragPin;
    }
    auto &list = fragPinned[static_cast<std::size_t>(socket)];
    list.insert(list.end(), pinned.begin(), pinned.end());
}

void
PhysicalMemory::defragment(SocketId socket)
{
    auto &list = fragPinned[static_cast<std::size_t>(socket)];
    for (Pfn pfn : list) {
        PageMeta &m = meta(pfn);
        MITOSIM_ASSERT(m.type == FrameType::Reserved);
        m.type = FrameType::Free;
        m.flags = FrameFlagNone;
        alloc(socket).freeFrame(pfn);
    }
    list.clear();
}


PhysicalMemory::ChunkPtr
PhysicalMemory::newChunk()
{
    ChunkPool &pool = chunkPool();
    PageMeta *raw = nullptr;
    {
        std::lock_guard<std::mutex> g(pool.mu);
        if (pool.free.empty()) {
            PageMeta *base = newSlab<PageMeta>(SlabChunks * MetaChunkSize);
            ++pool.slabs;
            // Push in descending address order so chunks are handed
            // out ascending, matching the slab's fault order.
            for (std::size_t c = SlabChunks; c-- > 0;)
                pool.free.push_back(base + c * MetaChunkSize);
        }
        raw = pool.free.back();
        pool.free.pop_back();
    }
    // The deleter scrubs the chunk back to pristine (indistinguishable
    // from a fresh one) and parks it for reuse.
    auto recycle = [](PageMeta *p) {
        for (std::uint64_t i = 0; i < MetaChunkSize; ++i)
            p[i] = PageMeta{};
        ChunkPool &pl = chunkPool();
        std::lock_guard<std::mutex> g(pl.mu);
        pl.free.push_back(p);
        ++pl.recycles;
    };
    return ChunkPtr(raw, recycle);
}

PhysicalMemory::TableChunkPtr
PhysicalMemory::newTableChunk()
{
    TablePool &pool = tablePool();
    std::uint64_t *raw = nullptr;
    {
        std::lock_guard<std::mutex> g(pool.mu);
        if (pool.free.empty()) {
            std::uint64_t *base =
                newSlab<std::uint64_t>(TableSlabChunks * TableChunkElems);
            ++pool.slabs;
            for (std::size_t c = TableSlabChunks; c-- > 0;)
                pool.free.push_back(base + c * TableChunkElems);
        }
        raw = pool.free.back();
        pool.free.pop_back();
    }
    // Pooled chunks are always fully zeroed, so a fresh chunk's slots
    // need no scrub at allocTableSlot time.
    auto recycle = [](std::uint64_t *p) {
        std::memset(p, 0, TableChunkElems * sizeof(std::uint64_t));
        TablePool &pl = tablePool();
        std::lock_guard<std::mutex> g(pl.mu);
        pl.free.push_back(p);
        ++pl.recycles;
    };
    return TableChunkPtr(raw, recycle);
}

void
PhysicalMemory::detachChunk(ChunkPtr &chunk)
{
    ChunkPtr copy = newChunk();
    std::copy(chunk.get(), chunk.get() + MetaChunkSize, copy.get());
    // Keep the shared original alive for this instance's lifetime:
    // callers may still hold const meta() references into it, and the
    // donor owning it can be evicted at any time.
    retired_.push_back(std::move(chunk));
    chunk = std::move(copy);
}

void
PhysicalMemory::detachTableChunk(TableChunkPtr &chunk)
{
    TableChunkPtr copy = newTableChunk();
    std::copy(chunk.get(), chunk.get() + TableChunkElems, copy.get());
    // Same lifetime rule as detachChunk: const tableView() pointers
    // into the donor's chunk must survive donor eviction.
    retiredTables_.push_back(std::move(chunk));
    chunk = std::move(copy);
    ++tableChunkDetaches_;
}

std::uint32_t
PhysicalMemory::allocTableSlot(SocketId socket)
{
    TableArena &arena = tableArenas[static_cast<std::size_t>(socket)];
    std::uint32_t slot;
    bool recycled = false;
    if (!arena.freeSlots.empty()) {
        slot = arena.freeSlots.back();
        arena.freeSlots.pop_back();
        recycled = true;
        ++tableSlotRecycles_;
    } else {
        slot = arena.highWater++;
    }
    std::size_t c = slot >> TableChunkShift;
    if (c >= arena.chunks.size())
        arena.chunks.resize(c + 1);
    auto &chunk = arena.chunks[c];
    if (!chunk) {
        chunk = newTableChunk(); // arrives zeroed
    } else if (recycled) {
        // A recycled slot still holds the retired table's stale PTEs
        // (releaseTableSlot never scrubs — that would detach chunks a
        // fork shares). Zero it through the detaching path so a donor
        // never observes the scrub.
        if (chunk.use_count() > 1)
            detachTableChunk(chunk);
        std::uint64_t *tbl =
            chunk.get() +
            (slot & (TableChunkTables - 1)) * PtEntriesPerPage;
        std::memset(tbl, 0, PtEntriesPerPage * sizeof(std::uint64_t));
    }
    // Never-yet-used slots of an existing chunk are zero by
    // construction (chunks are born zeroed and detach copies preserve
    // that), so the fresh-highWater case needs no scrub either.
    return slot;
}

void
PhysicalMemory::releaseTableSlot(SocketId socket, std::uint32_t slot)
{
    MITOSIM_ASSERT(slot != NoTableSlot, "releaseTableSlot: no slot");
    tableArenas[static_cast<std::size_t>(socket)].freeSlots.push_back(slot);
}

TableArenaStats
PhysicalMemory::tableArenaStats() const
{
    TableArenaStats out;
    out.detaches = tableChunkDetaches_;
    out.slotRecycles = tableSlotRecycles_;
    for (const TableArena &arena : tableArenas) {
        for (const TableChunkPtr &chunk : arena.chunks)
            if (chunk)
                ++out.chunks;
        out.liveSlots += arena.highWater - arena.freeSlots.size();
    }
    return out;
}

void
PhysicalMemory::cloneStateFrom(const PhysicalMemory &src)
{
    MITOSIM_ASSERT(totalFrames_ == src.totalFrames_ &&
                       allocators.size() == src.allocators.size(),
                   "cloneStateFrom: machine shape mismatch");
    allocators = src.allocators;
    perSocket = src.perSocket;
    ptCache = src.ptCache;
    ptCacheTarget = src.ptCacheTarget;
    fragPinned = src.fragPinned;
    ptLive = src.ptLive;
    // Share every materialized chunk copy-on-write: the first mutable
    // meta() touch detaches a private copy, so neither side can ever
    // observe the other's subsequent writes. Table-arena chunks share
    // the same way (first PTE write detaches); slot free lists and
    // high-water marks are plain state, copied eagerly.
    metaChunks = src.metaChunks;
    tableArenas = src.tableArenas;
    tableChunkDetaches_ = src.tableChunkDetaches_;
    tableSlotRecycles_ = src.tableSlotRecycles_;
    retired_.clear();
    retiredTables_.clear();
}

} // namespace mitosim::mem
