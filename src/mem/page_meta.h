/**
 * @file
 * Per-frame metadata, MitoSim's equivalent of Linux's struct page.
 *
 * The paper stores the replica circular-list pointer in struct page (§5.2,
 * Figure 8) so that a PTE write can find all replicas of a page-table page
 * in O(replicas) without walking any page-table. We do the same: every
 * physical frame has a PageMeta; page-table frames additionally reference
 * their 512-entry table storage (a slot in the owning socket's arena, see
 * PhysicalMemory) and participate in a circular replica list.
 */

#ifndef MITOSIM_MEM_PAGE_META_H
#define MITOSIM_MEM_PAGE_META_H

#include <cstdint>
#include <type_traits>

#include "src/base/types.h"

namespace mitosim::mem
{

/** What a physical frame currently holds. */
enum class FrameType : std::uint8_t
{
    Free,      //!< on a free list
    Data,      //!< application data (unbacked in the host)
    PageTable, //!< one page of a process page-table (host-backed)
    Reserved,  //!< kernel junk, e.g. fragmentation filler
};

/** Flags on a frame. */
enum FrameFlags : std::uint16_t
{
    FrameFlagNone = 0,
    FrameFlagLargeHead = 1 << 0, //!< first frame of a 2 MB data page
    FrameFlagLargeTail = 1 << 1, //!< interior frame of a 2 MB data page
    FrameFlagPtReserve = 1 << 2, //!< lives in a per-socket PT page cache
    FrameFlagFragPin = 1 << 3,   //!< fragmentation-injector filler
                                 //!< (movable by kcompactd)
};

/** "No table storage" sentinel for PageMeta::tableSlot. */
inline constexpr std::uint32_t NoTableSlot = 0xffffffffu;

/**
 * Metadata for one 4 KB physical frame.
 *
 * Trivially copyable by design: metadata chunks are detached (CoW) and
 * recycled wholesale, and the 512 x u64 table storage of PageTable
 * frames lives in the per-socket slot arenas of PhysicalMemory, not
 * inline here.
 *
 * @invariant type == PageTable  <=>  tableSlot != NoTableSlot
 * @invariant For PageTable frames, replicaNext forms a circular list over
 *            all replicas of the same logical page-table page; an
 *            unreplicated page links to itself.
 */
struct PageMeta
{
    /** Next frame in the circular replica list (self if unreplicated). */
    Pfn replicaNext = InvalidPfn;

    /** Owning process, or -1 for kernel/none. */
    ProcId owner = -1;

    /**
     * PT frames: slot of their 512 x u64 storage in the owning
     * socket's table arena; NoTableSlot otherwise.
     */
    std::uint32_t tableSlot = NoTableSlot;

    FrameType type = FrameType::Free;

    /** Page-table level 1..4 for PageTable frames, 0 otherwise. */
    std::uint8_t level = 0;

    std::uint16_t flags = FrameFlagNone;

    bool isPageTable() const { return type == FrameType::PageTable; }
    bool isFree() const { return type == FrameType::Free; }
    bool hasFlag(FrameFlags f) const { return (flags & f) != 0; }
    bool hasTable() const { return tableSlot != NoTableSlot; }
};

static_assert(std::is_trivially_copyable_v<PageMeta>,
              "metadata chunks are copied and scrubbed wholesale");

} // namespace mitosim::mem

#endif // MITOSIM_MEM_PAGE_META_H
