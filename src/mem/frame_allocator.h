/**
 * @file
 * Per-socket physical frame allocator.
 *
 * Tracks 4 KB frames inside 2 MB-aligned blocks so it can serve both base
 * pages and contiguous 512-frame large pages (for THP). Fragmentation is
 * first-class: the fragmentation injector pins scattered frames inside
 * otherwise-free blocks, making 2 MB allocations fail exactly the way an
 * aged Linux buddy allocator does (paper §8.2, Figure 11).
 */

#ifndef MITOSIM_MEM_FRAME_ALLOCATOR_H
#define MITOSIM_MEM_FRAME_ALLOCATOR_H

#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/rng.h"
#include "src/base/types.h"

namespace mitosim::mem
{

/** Free-frame bookkeeping for one socket's contiguous PFN range. */
class FrameAllocator
{
  public:
    /**
     * @param first_pfn lowest frame this allocator owns (2 MB aligned)
     * @param num_frames number of frames owned (multiple of 512)
     */
    FrameAllocator(Pfn first_pfn, std::uint64_t num_frames);

    /** Allocate one 4 KB frame; nullopt when the socket is exhausted. */
    std::optional<Pfn> allocFrame();

    /**
     * Allocate 512 contiguous, 2 MB-aligned frames; nullopt when no fully
     * free block exists (exhaustion or fragmentation).
     */
    std::optional<Pfn> allocLargeBlock();

    /** Return one 4 KB frame. Double-free is a panic. */
    void freeFrame(Pfn pfn);

    /** Return a 2 MB block previously obtained from allocLargeBlock(). */
    void freeLargeBlock(Pfn head);

    std::uint64_t freeFrames() const { return freeCount; }
    std::uint64_t totalFrames() const { return numFrames; }
    Pfn firstPfn() const { return basePfn; }

    /** Number of fully-free 2 MB blocks (capacity for THP allocations). */
    std::uint64_t freeLargeBlocks() const;

    /**
     * Fragmentation observability: the fraction of this socket's 2 MB
     * blocks that are fully free, i.e. the remaining allocLargeBlock()
     * capacity (1.0 = pristine, 0.0 = every block broken).
     */
    double largeBlockFreeRatio() const;

    /// @name Targeted relocation (kcompactd support)
    /// @{

    std::uint64_t numBlocks() const { return blocks.size(); }

    /** Allocated-frame count of block @p index (0 = fully free). */
    std::uint32_t blockUsedCount(std::uint64_t index) const;

    /** Visit every allocated pfn of block @p index, ascending. */
    template <typename Fn>
    void
    forEachAllocatedInBlock(std::uint64_t index, Fn &&fn) const
    {
        const Block &b = blocks[index];
        for (unsigned slot = 0; slot < framesPerBlock; ++slot) {
            if (testSlot(b, slot))
                fn(basePfn + index * framesPerBlock + slot);
        }
    }

    /**
     * Compaction destination: allocate one frame from the *fullest*
     * partially-used block other than @p avoid's block. Never splits a
     * fully-free block — compaction must consume fragmentation, not
     * create it. nullopt when no other partial block has room.
     */
    std::optional<Pfn> allocFrameForCompaction(Pfn avoid);

    /// @}

    bool
    owns(Pfn pfn) const
    {
        return pfn >= basePfn && pfn < basePfn + numFrames;
    }

    bool isAllocated(Pfn pfn) const;

    /**
     * Fragmentation injector: for each fully-free 2 MB block, with
     * probability @p fraction allocate one interior frame and report it.
     * The caller marks those frames Reserved so they are never reused as
     * data; freeing them later "compacts" memory.
     *
     * @return the pinned frames.
     */
    std::vector<Pfn> fragment(double fraction, Rng &rng);

  private:
    static constexpr unsigned framesPerBlock = 512;

    /**
     * One cache line of bitmap per block. The per-block allocated
     * count lives in the separate usedCounts vector (struct of
     * arrays): kcompactd's fullest-partial-block scan in
     * allocFrameForCompaction reads only the counts, and packing them
     * 16-per-line instead of 1-per-72-byte-struct makes that O(blocks)
     * scan stream instead of stride.
     */
    struct Block
    {
        std::uint64_t used[8] = {0, 0, 0, 0, 0, 0, 0, 0}; // 512-bit bitmap
    };

    std::uint64_t blockOf(Pfn pfn) const { return (pfn - basePfn) / 512; }
    unsigned slotOf(Pfn pfn) const
    {
        return static_cast<unsigned>((pfn - basePfn) % 512);
    }

    bool testSlot(const Block &b, unsigned slot) const;
    void setSlot(std::uint64_t block, unsigned slot);
    void clearSlot(std::uint64_t block, unsigned slot);
    int findFreeSlot(const Block &b) const;

    Pfn basePfn;
    std::uint64_t numFrames;
    std::uint64_t freeCount;
    std::vector<Block> blocks;
    std::vector<std::uint32_t> usedCounts; // parallel to blocks

    // Lazily-maintained stacks of candidate block indices. Entries may be
    // stale; pop verifies against the block's actual state.
    std::vector<std::uint32_t> fullyFreeStack;
    std::vector<std::uint32_t> partialStack;
};

} // namespace mitosim::mem

#endif // MITOSIM_MEM_FRAME_ALLOCATOR_H
