#include "frame_allocator.h"

#include "src/base/logging.h"

namespace mitosim::mem
{

FrameAllocator::FrameAllocator(Pfn first_pfn, std::uint64_t num_frames)
    : basePfn(first_pfn), numFrames(num_frames), freeCount(num_frames),
      blocks(num_frames / framesPerBlock)
{
    if (num_frames == 0 || num_frames % framesPerBlock != 0)
        fatal("FrameAllocator size must be a positive multiple of 512");
    fullyFreeStack.reserve(blocks.size());
    // Push in reverse so allocation proceeds from low addresses upward.
    for (std::size_t i = blocks.size(); i-- > 0;)
        fullyFreeStack.push_back(static_cast<std::uint32_t>(i));
}

bool
FrameAllocator::testSlot(const Block &b, unsigned slot) const
{
    return (b.used[slot >> 6] >> (slot & 63)) & 1;
}

void
FrameAllocator::setSlot(Block &b, unsigned slot)
{
    b.used[slot >> 6] |= 1ull << (slot & 63);
    ++b.usedCount;
}

void
FrameAllocator::clearSlot(Block &b, unsigned slot)
{
    b.used[slot >> 6] &= ~(1ull << (slot & 63));
    --b.usedCount;
}

int
FrameAllocator::findFreeSlot(const Block &b) const
{
    for (unsigned w = 0; w < 8; ++w) {
        std::uint64_t inv = ~b.used[w];
        if (inv)
            return static_cast<int>(w * 64 +
                                    static_cast<unsigned>(
                                        __builtin_ctzll(inv)));
    }
    return -1;
}

std::optional<Pfn>
FrameAllocator::allocFrame()
{
    if (freeCount == 0)
        return std::nullopt;

    // Prefer a partially-used block to keep fully-free blocks intact for
    // large-page allocations (mirrors buddy-allocator behaviour).
    while (!partialStack.empty()) {
        std::uint32_t bi = partialStack.back();
        Block &b = blocks[bi];
        if (b.usedCount == 0 || b.usedCount >= framesPerBlock) {
            partialStack.pop_back(); // stale entry
            continue;
        }
        int slot = findFreeSlot(b);
        MITOSIM_ASSERT(slot >= 0);
        setSlot(b, static_cast<unsigned>(slot));
        if (b.usedCount >= framesPerBlock)
            partialStack.pop_back();
        --freeCount;
        return basePfn + bi * 512ull + static_cast<unsigned>(slot);
    }

    // Split a fully-free block.
    while (!fullyFreeStack.empty()) {
        std::uint32_t bi = fullyFreeStack.back();
        Block &b = blocks[bi];
        if (b.usedCount != 0) {
            fullyFreeStack.pop_back(); // stale entry
            continue;
        }
        fullyFreeStack.pop_back();
        setSlot(b, 0);
        partialStack.push_back(bi);
        --freeCount;
        return basePfn + bi * 512ull;
    }

    // freeCount > 0 but no block found: stacks were stale; rebuild.
    for (std::size_t i = blocks.size(); i-- > 0;) {
        if (blocks[i].usedCount == 0)
            fullyFreeStack.push_back(static_cast<std::uint32_t>(i));
        else if (blocks[i].usedCount < framesPerBlock)
            partialStack.push_back(static_cast<std::uint32_t>(i));
    }
    if (partialStack.empty() && fullyFreeStack.empty())
        return std::nullopt;
    return allocFrame();
}

std::optional<Pfn>
FrameAllocator::allocLargeBlock()
{
    while (!fullyFreeStack.empty()) {
        std::uint32_t bi = fullyFreeStack.back();
        Block &b = blocks[bi];
        if (b.usedCount != 0) {
            fullyFreeStack.pop_back(); // stale
            continue;
        }
        fullyFreeStack.pop_back();
        for (auto &w : b.used)
            w = ~0ull;
        b.usedCount = framesPerBlock;
        freeCount -= framesPerBlock;
        return basePfn + bi * 512ull;
    }
    // Rebuild in case frees made blocks fully free without stack entries.
    bool found = false;
    for (std::size_t i = blocks.size(); i-- > 0;) {
        if (blocks[i].usedCount == 0) {
            fullyFreeStack.push_back(static_cast<std::uint32_t>(i));
            found = true;
        }
    }
    if (!found)
        return std::nullopt;
    return allocLargeBlock();
}

void
FrameAllocator::freeFrame(Pfn pfn)
{
    MITOSIM_ASSERT(owns(pfn), "freeFrame: pfn not owned by this socket");
    Block &b = blocks[blockOf(pfn)];
    unsigned slot = slotOf(pfn);
    if (!testSlot(b, slot))
        panic("double free of pfn %llu", (unsigned long long)pfn);
    bool was_full = b.usedCount >= framesPerBlock;
    clearSlot(b, slot);
    ++freeCount;
    std::uint32_t bi = static_cast<std::uint32_t>(blockOf(pfn));
    if (b.usedCount == 0)
        fullyFreeStack.push_back(bi);
    else if (was_full)
        partialStack.push_back(bi);
}

void
FrameAllocator::freeLargeBlock(Pfn head)
{
    MITOSIM_ASSERT(owns(head) && slotOf(head) == 0,
                   "freeLargeBlock: head not 2MB aligned");
    Block &b = blocks[blockOf(head)];
    if (b.usedCount != framesPerBlock)
        panic("freeLargeBlock: block not fully allocated");
    for (auto &w : b.used)
        w = 0;
    b.usedCount = 0;
    freeCount += framesPerBlock;
    fullyFreeStack.push_back(static_cast<std::uint32_t>(blockOf(head)));
}

std::uint64_t
FrameAllocator::freeLargeBlocks() const
{
    std::uint64_t n = 0;
    for (const auto &b : blocks)
        if (b.usedCount == 0)
            ++n;
    return n;
}

double
FrameAllocator::largeBlockFreeRatio() const
{
    return blocks.empty()
               ? 0.0
               : static_cast<double>(freeLargeBlocks()) /
                     static_cast<double>(blocks.size());
}

std::uint32_t
FrameAllocator::blockUsedCount(std::uint64_t index) const
{
    MITOSIM_ASSERT(index < blocks.size());
    return blocks[index].usedCount;
}

std::optional<Pfn>
FrameAllocator::allocFrameForCompaction(Pfn avoid)
{
    MITOSIM_ASSERT(owns(avoid));
    std::uint64_t avoid_block = blockOf(avoid);
    // The fullest partial block packs relocated frames densest, which
    // is what turns scattered occupancy back into free 2 MB blocks.
    std::uint64_t best = blocks.size();
    std::uint32_t best_used = 0;
    for (std::uint64_t i = 0; i < blocks.size(); ++i) {
        const Block &b = blocks[i];
        if (i == avoid_block || b.usedCount == 0 ||
            b.usedCount >= framesPerBlock)
            continue;
        if (b.usedCount > best_used) {
            best = i;
            best_used = b.usedCount;
        }
    }
    if (best == blocks.size())
        return std::nullopt;
    Block &b = blocks[best];
    int slot = findFreeSlot(b);
    MITOSIM_ASSERT(slot >= 0);
    // A now-full block may leave a stale partialStack entry behind;
    // pops verify against the block's actual state, as everywhere.
    setSlot(b, static_cast<unsigned>(slot));
    --freeCount;
    return basePfn + best * 512ull + static_cast<unsigned>(slot);
}

bool
FrameAllocator::isAllocated(Pfn pfn) const
{
    MITOSIM_ASSERT(owns(pfn));
    return testSlot(blocks[blockOf(pfn)], slotOf(pfn));
}

std::vector<Pfn>
FrameAllocator::fragment(double fraction, Rng &rng)
{
    std::vector<Pfn> pinned;
    for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
        Block &b = blocks[bi];
        if (b.usedCount != 0)
            continue;
        if (!rng.chance(fraction))
            continue;
        unsigned slot = static_cast<unsigned>(rng.below(framesPerBlock));
        setSlot(b, slot);
        --freeCount;
        partialStack.push_back(static_cast<std::uint32_t>(bi));
        pinned.push_back(basePfn + bi * 512ull + slot);
    }
    return pinned;
}

} // namespace mitosim::mem
