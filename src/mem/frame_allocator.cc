#include "frame_allocator.h"

#include "src/base/logging.h"

namespace mitosim::mem
{

FrameAllocator::FrameAllocator(Pfn first_pfn, std::uint64_t num_frames)
    : basePfn(first_pfn), numFrames(num_frames), freeCount(num_frames),
      blocks(num_frames / framesPerBlock),
      usedCounts(num_frames / framesPerBlock, 0)
{
    if (num_frames == 0 || num_frames % framesPerBlock != 0)
        fatal("FrameAllocator size must be a positive multiple of 512");
    fullyFreeStack.reserve(blocks.size());
    // Push in reverse so allocation proceeds from low addresses upward.
    for (std::size_t i = blocks.size(); i-- > 0;)
        fullyFreeStack.push_back(static_cast<std::uint32_t>(i));
}

bool
FrameAllocator::testSlot(const Block &b, unsigned slot) const
{
    return (b.used[slot >> 6] >> (slot & 63)) & 1;
}

void
FrameAllocator::setSlot(std::uint64_t block, unsigned slot)
{
    blocks[block].used[slot >> 6] |= 1ull << (slot & 63);
    ++usedCounts[block];
}

void
FrameAllocator::clearSlot(std::uint64_t block, unsigned slot)
{
    blocks[block].used[slot >> 6] &= ~(1ull << (slot & 63));
    --usedCounts[block];
}

int
FrameAllocator::findFreeSlot(const Block &b) const
{
    for (unsigned w = 0; w < 8; ++w) {
        std::uint64_t inv = ~b.used[w];
        if (inv)
            return static_cast<int>(w * 64 +
                                    static_cast<unsigned>(
                                        __builtin_ctzll(inv)));
    }
    return -1;
}

std::optional<Pfn>
FrameAllocator::allocFrame()
{
    if (freeCount == 0)
        return std::nullopt;

    // Prefer a partially-used block to keep fully-free blocks intact for
    // large-page allocations (mirrors buddy-allocator behaviour).
    while (!partialStack.empty()) {
        std::uint32_t bi = partialStack.back();
        if (usedCounts[bi] == 0 || usedCounts[bi] >= framesPerBlock) {
            partialStack.pop_back(); // stale entry
            continue;
        }
        int slot = findFreeSlot(blocks[bi]);
        MITOSIM_ASSERT(slot >= 0);
        setSlot(bi, static_cast<unsigned>(slot));
        if (usedCounts[bi] >= framesPerBlock)
            partialStack.pop_back();
        --freeCount;
        return basePfn + bi * 512ull + static_cast<unsigned>(slot);
    }

    // Split a fully-free block.
    while (!fullyFreeStack.empty()) {
        std::uint32_t bi = fullyFreeStack.back();
        if (usedCounts[bi] != 0) {
            fullyFreeStack.pop_back(); // stale entry
            continue;
        }
        fullyFreeStack.pop_back();
        setSlot(bi, 0);
        partialStack.push_back(bi);
        --freeCount;
        return basePfn + bi * 512ull;
    }

    // freeCount > 0 but no block found: stacks were stale; rebuild.
    for (std::size_t i = blocks.size(); i-- > 0;) {
        if (usedCounts[i] == 0)
            fullyFreeStack.push_back(static_cast<std::uint32_t>(i));
        else if (usedCounts[i] < framesPerBlock)
            partialStack.push_back(static_cast<std::uint32_t>(i));
    }
    if (partialStack.empty() && fullyFreeStack.empty())
        return std::nullopt;
    return allocFrame();
}

std::optional<Pfn>
FrameAllocator::allocLargeBlock()
{
    while (!fullyFreeStack.empty()) {
        std::uint32_t bi = fullyFreeStack.back();
        if (usedCounts[bi] != 0) {
            fullyFreeStack.pop_back(); // stale
            continue;
        }
        fullyFreeStack.pop_back();
        for (auto &w : blocks[bi].used)
            w = ~0ull;
        usedCounts[bi] = framesPerBlock;
        freeCount -= framesPerBlock;
        return basePfn + bi * 512ull;
    }
    // Rebuild in case frees made blocks fully free without stack entries.
    bool found = false;
    for (std::size_t i = blocks.size(); i-- > 0;) {
        if (usedCounts[i] == 0) {
            fullyFreeStack.push_back(static_cast<std::uint32_t>(i));
            found = true;
        }
    }
    if (!found)
        return std::nullopt;
    return allocLargeBlock();
}

void
FrameAllocator::freeFrame(Pfn pfn)
{
    MITOSIM_ASSERT(owns(pfn), "freeFrame: pfn not owned by this socket");
    std::uint64_t bi = blockOf(pfn);
    unsigned slot = slotOf(pfn);
    if (!testSlot(blocks[bi], slot))
        panic("double free of pfn %llu", (unsigned long long)pfn);
    bool was_full = usedCounts[bi] >= framesPerBlock;
    clearSlot(bi, slot);
    ++freeCount;
    if (usedCounts[bi] == 0)
        fullyFreeStack.push_back(static_cast<std::uint32_t>(bi));
    else if (was_full)
        partialStack.push_back(static_cast<std::uint32_t>(bi));
}

void
FrameAllocator::freeLargeBlock(Pfn head)
{
    MITOSIM_ASSERT(owns(head) && slotOf(head) == 0,
                   "freeLargeBlock: head not 2MB aligned");
    std::uint64_t bi = blockOf(head);
    if (usedCounts[bi] != framesPerBlock)
        panic("freeLargeBlock: block not fully allocated");
    for (auto &w : blocks[bi].used)
        w = 0;
    usedCounts[bi] = 0;
    freeCount += framesPerBlock;
    fullyFreeStack.push_back(static_cast<std::uint32_t>(bi));
}

std::uint64_t
FrameAllocator::freeLargeBlocks() const
{
    std::uint64_t n = 0;
    for (std::uint32_t c : usedCounts)
        if (c == 0)
            ++n;
    return n;
}

double
FrameAllocator::largeBlockFreeRatio() const
{
    return blocks.empty()
               ? 0.0
               : static_cast<double>(freeLargeBlocks()) /
                     static_cast<double>(blocks.size());
}

std::uint32_t
FrameAllocator::blockUsedCount(std::uint64_t index) const
{
    MITOSIM_ASSERT(index < blocks.size());
    return usedCounts[index];
}

std::optional<Pfn>
FrameAllocator::allocFrameForCompaction(Pfn avoid)
{
    MITOSIM_ASSERT(owns(avoid));
    std::uint64_t avoid_block = blockOf(avoid);
    // The fullest partial block packs relocated frames densest, which
    // is what turns scattered occupancy back into free 2 MB blocks.
    // Same decision as the old AoS scan: strict > keeps the lowest
    // index on ties, avoid/empty/full blocks are skipped.
    std::uint64_t best = blocks.size();
    std::uint32_t best_used = 0;
    for (std::uint64_t i = 0; i < usedCounts.size(); ++i) {
        std::uint32_t used = usedCounts[i];
        if (i == avoid_block || used == 0 || used >= framesPerBlock)
            continue;
        if (used > best_used) {
            best = i;
            best_used = used;
        }
    }
    if (best == blocks.size())
        return std::nullopt;
    int slot = findFreeSlot(blocks[best]);
    MITOSIM_ASSERT(slot >= 0);
    // A now-full block may leave a stale partialStack entry behind;
    // pops verify against the block's actual state, as everywhere.
    setSlot(best, static_cast<unsigned>(slot));
    --freeCount;
    return basePfn + best * 512ull + static_cast<unsigned>(slot);
}

bool
FrameAllocator::isAllocated(Pfn pfn) const
{
    MITOSIM_ASSERT(owns(pfn));
    return testSlot(blocks[blockOf(pfn)], slotOf(pfn));
}

std::vector<Pfn>
FrameAllocator::fragment(double fraction, Rng &rng)
{
    std::vector<Pfn> pinned;
    for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
        if (usedCounts[bi] != 0)
            continue;
        if (!rng.chance(fraction))
            continue;
        unsigned slot = static_cast<unsigned>(rng.below(framesPerBlock));
        setSlot(bi, slot);
        --freeCount;
        partialStack.push_back(static_cast<std::uint32_t>(bi));
        pinned.push_back(basePfn + bi * 512ull + slot);
    }
    return pinned;
}

} // namespace mitosim::mem
