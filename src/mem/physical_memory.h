/**
 * @file
 * Socket-homed simulated physical memory.
 *
 * Combines the NUMA topology, one FrameAllocator per socket, the PageMeta
 * array, and the per-socket page-table reserve caches (paper §5.1: "we
 * implemented per-socket page-caches to reserve pages for page-table
 * allocations", sized via sysctl).
 *
 * Data frames are *unbacked*: the simulator never stores data bytes, only
 * placement. Page-table frames are host-backed (512 x u64) because the
 * radix trees must really exist for replication to be semantic.
 */

#ifndef MITOSIM_MEM_PHYSICAL_MEMORY_H
#define MITOSIM_MEM_PHYSICAL_MEMORY_H

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/types.h"
#include "src/mem/frame_allocator.h"
#include "src/mem/page_meta.h"
#include "src/numa/topology.h"

namespace mitosim::mem
{

/** Allocation / liveness statistics, queryable per socket. */
struct MemStats
{
    std::uint64_t dataPages = 0;      //!< live 4 KB data frames
    std::uint64_t dataLargePages = 0; //!< live 2 MB data pages
    std::uint64_t ptPages = 0;        //!< live page-table frames
    std::uint64_t ptAllocs = 0;       //!< cumulative PT allocations
    std::uint64_t ptCacheHits = 0;    //!< PT allocs served from reserve
    std::uint64_t ptAllocFailures = 0;
};

/**
 * Host-side telemetry of the process-wide slab pools backing metadata
 * chunks and page-table storage (never part of simulated results).
 */
struct SlabPoolStats
{
    std::uint64_t metaSlabs = 0;     //!< 2 MiB metadata slabs minted
    std::uint64_t metaRecycles = 0;  //!< metadata chunks scrubbed + reused
    std::uint64_t tableSlabs = 0;    //!< 2 MiB table slabs minted
    std::uint64_t tableRecycles = 0; //!< table chunks scrubbed + reused
};

SlabPoolStats slabPoolStats();

/** Per-instance table-arena telemetry (host-side, see wall_ms). */
struct TableArenaStats
{
    std::uint64_t chunks = 0;       //!< arena chunks referenced
    std::uint64_t detaches = 0;     //!< CoW chunk detaches performed
    std::uint64_t slotRecycles = 0; //!< slots served from free lists
    std::uint64_t liveSlots = 0;    //!< slots currently allocated
};

/** All simulated physical memory of the machine. */
class PhysicalMemory
{
  public:
    explicit PhysicalMemory(const numa::Topology &topology);

    const numa::Topology &topology() const { return topo; }

    /// @name Data frames
    /// @{

    /** Strictly allocate a 4 KB data frame on @p socket. */
    std::optional<Pfn> allocData(SocketId socket, ProcId owner);

    /**
     * Allocate a 4 KB data frame, preferring @p preferred but falling back
     * to other sockets in nearest-first order (Linux's default behaviour
     * when a node is exhausted).
     */
    std::optional<Pfn> allocDataAny(SocketId preferred, ProcId owner);

    /** Strictly allocate a 2 MB data page on @p socket. */
    std::optional<Pfn> allocDataLarge(SocketId socket, ProcId owner);

    void freeData(Pfn pfn);
    void freeDataLarge(Pfn head);

    /** Move a data frame to @p target socket; returns the new pfn. */
    std::optional<Pfn> migrateData(Pfn pfn, SocketId target);

    /// @}
    /// @name THP lifecycle support (collapse / split / compaction)
    /// @{

    /**
     * Demote a live 2 MB data page into 512 individually-freeable 4 KB
     * data frames (same pfns, same socket): the huge-head/tail flags
     * are dropped and the per-socket accounting moves from
     * dataLargePages to dataPages. The frame allocator's bitmap needs
     * no change — the block stays fully allocated, it just becomes
     * per-frame reclaimable.
     */
    void splitLargeData(Pfn head);

    /**
     * kcompactd: relocate one 4 KB data frame into another partial
     * block on the *same* socket (never splitting a free block),
     * freeing its slot so nearly-empty blocks can drain back to fully
     * free. Returns the new pfn; the caller rewrites the PTE.
     */
    std::optional<Pfn> compactData(Pfn pfn);

    /**
     * kcompactd: relocate one fragmentation-injector filler frame
     * (modelled as movable kernel memory) the same way. @p pfn must be
     * a pinned filler of fragment(); the pin list is updated so
     * defragment() stays balanced.
     */
    bool compactReservedPin(Pfn pfn);

    /** Is @p pfn a fragmentation-injector filler (movable Reserved)? */
    bool isFragPinned(Pfn pfn) const;

    /** Fraction of @p socket's 2 MB blocks that are fully free. */
    double largeBlockFreeRatio(SocketId socket) const;

    /// @}
    /// @name Page-table frames
    /// @{

    /**
     * Allocate a zeroed page-table frame on @p socket: strict allocation
     * first, then the socket's reserve cache (§5.1). Returns nullopt only
     * when both fail.
     */
    std::optional<Pfn> allocPt(SocketId socket, int level, ProcId owner);

    void freePt(Pfn pfn);

    /** sysctl-style control of the per-socket PT reserve size. */
    void setPtCacheTarget(SocketId socket, std::uint64_t frames);
    std::uint64_t ptCacheSize(SocketId socket) const;

    /**
     * Backing storage of a PT frame (512 entries), writable. Table
     * storage lives in per-socket slot arenas whose 256 KiB chunks are
     * shared copy-on-write across snapshot forks; this overload
     * detaches a shared chunk before handing out the pointer, so a
     * fork can never write through to its donor. Note it does NOT
     * detach (or even materialize) the frame's *metadata* chunk — a
     * PTE store is not a metadata write.
     */
    std::uint64_t *
    table(Pfn pfn)
    {
        const PageMeta &m = std::as_const(*this).meta(pfn);
        MITOSIM_DASSERT(m.isPageTable() && m.hasTable(),
                        "table(): not a PT frame");
        auto &arena = tableArenas[static_cast<std::size_t>(socketOf(pfn))];
        auto &chunk = arena.chunks[m.tableSlot >> TableChunkShift];
        if (chunk.use_count() > 1) [[unlikely]]
            detachTableChunk(chunk);
        return chunk.get() +
               (m.tableSlot & (TableChunkTables - 1)) * PtEntriesPerPage;
    }

    /**
     * Flat read-only view of a PT frame's 512-entry storage: never
     * detaches, never materializes. The walker's descent, pt/operations
     * range sweeps and vmcheck's coherence scan all read through here.
     */
    const std::uint64_t *
    tableView(Pfn pfn) const
    {
        const PageMeta &m = meta(pfn);
        MITOSIM_DASSERT(m.isPageTable() && m.hasTable(),
                        "tableView(): not a PT frame");
        const auto &arena =
            tableArenas[static_cast<std::size_t>(socketOf(pfn))];
        return arena.chunks[m.tableSlot >> TableChunkShift].get() +
               (m.tableSlot & (TableChunkTables - 1)) * PtEntriesPerPage;
    }

    const std::uint64_t *table(Pfn pfn) const { return tableView(pfn); }

    /** Host telemetry: this instance's table-arena activity. */
    TableArenaStats tableArenaStats() const;

    /// @}
    /// @name Replica circular list (Figure 8)
    /// @{

    /** Insert @p added into the circular replica list containing @p base. */
    void linkReplica(Pfn base, Pfn added);

    /** Remove @p pfn from its replica list (self-link afterwards). */
    void unlinkReplica(Pfn pfn);

    /** Replica of @p pfn's list homed on @p socket, or InvalidPfn. */
    Pfn replicaOnSocket(Pfn pfn, SocketId socket) const;

    /** Number of pages in @p pfn's replica list (>= 1). */
    int replicaCount(Pfn pfn) const;

    /** Visit every page in the replica list, starting at @p pfn. */
    void forEachReplica(Pfn pfn,
                        const std::function<void(Pfn)> &fn) const;

    /// @}

    /**
     * Metadata of frame @p pfn. Storage is chunked and materialized on
     * first (mutable) touch: a multi-TiB simulated machine costs host
     * memory only for the frames actually used, and constructing /
     * destroying a PhysicalMemory is O(chunks touched), not O(frames).
     *
     * Chunks are copy-on-write: cloneStateFrom (snapshot forking)
     * shares the donor's chunks by reference, and the first mutable
     * touch of a shared chunk detaches a private copy. Every metadata
     * write reaches the chunk through this accessor, so a clone can
     * never write through to its donor. (PTE writes go through the
     * non-const table() overload, which detaches the *table arena*
     * chunk the same way — they do not touch metadata chunks.)
     */
    PageMeta &
    meta(Pfn pfn)
    {
        MITOSIM_DASSERT(pfn < totalFrames_, "meta(): pfn out of range");
        auto &chunk = metaChunks[pfn >> MetaChunkShift];
        if (!chunk) [[unlikely]]
            chunk = newChunk();
        else if (chunk.use_count() > 1) [[unlikely]]
            detachChunk(chunk);
        return chunk[pfn & (MetaChunkSize - 1)];
    }

    /** Read-only view; an untouched frame reads as pristine Free. */
    const PageMeta &
    meta(Pfn pfn) const
    {
        MITOSIM_DASSERT(pfn < totalFrames_, "meta(): pfn out of range");
        const auto &chunk = metaChunks[pfn >> MetaChunkShift];
        if (!chunk) [[unlikely]]
            return pristineMeta;
        return chunk[pfn & (MetaChunkSize - 1)];
    }

    SocketId socketOf(Pfn pfn) const { return topo.socketOfPfn(pfn); }

    std::uint64_t freeFrames(SocketId socket) const;
    std::uint64_t freeLargeBlocks(SocketId socket) const;

    /** Read-only allocator view (kcompactd's block scan). */
    const FrameAllocator &allocator(SocketId socket) const
    {
        return alloc(socket);
    }
    const MemStats &stats(SocketId socket) const;

    /** Live PT frames on @p socket at @p level (analysis, Fig 3). */
    std::uint64_t ptPagesAt(SocketId socket, int level) const;

    /**
     * Snapshot restore: copy the full frame state of @p src —
     * allocators, stats, PT reserve caches and fragmentation pins are
     * copied eagerly; metadata chunks and table-arena chunks (the
     * host-backed 512-entry page-table storage) are shared
     * copy-on-write, so a fork pays for a chunk only when it first
     * writes to it. @p src must describe the same topology.
     */
    void cloneStateFrom(const PhysicalMemory &src);

    /// @name Fragmentation injection (Figure 11)
    /// @{
    void fragment(SocketId socket, double fraction, Rng &rng);
    void defragment(SocketId socket);
    /// @}

    /**
     * Visit the metadata of every frame whose chunk has ever been
     * touched, as (pfn, meta). Frames in never-touched chunks are
     * pristine by construction and are skipped — this is the sparse
     * scan the snapshot subsystem uses to find live state.
     */
    template <typename Fn>
    void
    forEachTouchedMeta(Fn &&fn) const
    {
        for (std::size_t c = 0; c < metaChunks.size(); ++c) {
            const auto &chunk = metaChunks[c];
            if (!chunk)
                continue;
            Pfn base = static_cast<Pfn>(c) << MetaChunkShift;
            std::uint64_t n =
                std::min<std::uint64_t>(MetaChunkSize, totalFrames_ - base);
            for (std::uint64_t i = 0; i < n; ++i)
                fn(base + i, chunk[i]);
        }
    }

  private:
    using ChunkPtr = std::shared_ptr<PageMeta[]>;
    using TableChunkPtr = std::shared_ptr<std::uint64_t[]>;

    /**
     * One per-socket arena of page-table storage: a growable sequence
     * of slots (512 x u64 each), addressed by PageMeta::tableSlot and
     * packed into chunks of TableChunkTables tables. The chunk is the
     * CoW granule: cloneStateFrom shares chunks by reference and the
     * first PTE write into a shared chunk detaches a private copy.
     * Freed slots are recycled LIFO *without* scrubbing (scrubbing
     * would detach chunks a fork still shares); allocTableSlot zeroes
     * a recycled slot through the detaching path instead.
     */
    struct TableArena
    {
        std::vector<TableChunkPtr> chunks;
        std::vector<std::uint32_t> freeSlots;
        std::uint32_t highWater = 0; //!< slots ever allocated
    };

    FrameAllocator &alloc(SocketId socket);
    const FrameAllocator &alloc(SocketId socket) const;
    std::optional<Pfn> popPtCache(SocketId socket);

    static ChunkPtr newChunk();
    static TableChunkPtr newTableChunk();

    /** Replace a shared @p chunk with a private deep copy (CoW). */
    void detachChunk(ChunkPtr &chunk);
    void detachTableChunk(TableChunkPtr &chunk);

    /** Slot with zeroed 512-entry storage on @p socket's arena. */
    std::uint32_t allocTableSlot(SocketId socket);
    void releaseTableSlot(SocketId socket, std::uint32_t slot);

    /**
     * 4096 frames (16 MiB of simulated memory) per metadata chunk —
     * the materialization / copy-on-write granule. Kept small so a
     * fork's first write detaches (and a sparse touch initializes)
     * roughly what it uses rather than a 128 MiB-of-memory span, while
     * staying large enough that the chunk pointer table is trivial.
     */
    static constexpr unsigned MetaChunkShift = 12;
    static constexpr std::uint64_t MetaChunkSize = 1ull << MetaChunkShift;

    /**
     * 64 tables (256 KiB) per table-arena chunk — the CoW granule for
     * page-table storage. An order of magnitude smaller than a 2 MiB
     * slab so a fork's first PTE write copies roughly the tables it
     * mutates, while staying large enough that eight chunks tile one
     * THP-advised slab exactly.
     */
    static constexpr unsigned TableChunkShift = 6;
    static constexpr std::uint32_t TableChunkTables = 1u << TableChunkShift;
    static constexpr std::size_t TableChunkElems =
        static_cast<std::size_t>(TableChunkTables) * PtEntriesPerPage;

    /** What meta() const reports for frames in untouched chunks. */
    inline static const PageMeta pristineMeta{};

    const numa::Topology &topo;
    std::uint64_t totalFrames_;
    std::vector<FrameAllocator> allocators;
    std::vector<ChunkPtr> metaChunks;
    std::vector<MemStats> perSocket;

    // PT reserve caches: frames pre-allocated per socket.
    std::vector<std::vector<Pfn>> ptCache;
    std::vector<std::uint64_t> ptCacheTarget;

    // Fragmentation filler frames, per socket, so we can undo.
    std::vector<std::vector<Pfn>> fragPinned;

    // Live PT page counts [socket][level 0..4] (level index 1..4 used).
    std::vector<std::array<std::uint64_t, 5>> ptLive;

    // Page-table storage arenas, one per socket.
    std::vector<TableArena> tableArenas;

    // Host telemetry (never simulated state).
    std::uint64_t tableChunkDetaches_ = 0;
    std::uint64_t tableSlotRecycles_ = 0;

    // Chunks this instance detached from. Holding a reference keeps a
    // donor's storage alive even if the donor is evicted while a
    // caller still reads through an earlier const meta() reference.
    std::vector<ChunkPtr> retired_;
    std::vector<TableChunkPtr> retiredTables_;
};

} // namespace mitosim::mem

#endif // MITOSIM_MEM_PHYSICAL_MEMORY_H
