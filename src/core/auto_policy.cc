#include "auto_policy.h"

namespace mitosim::core
{

SocketMask
AutoPolicyEngine::runningSockets(os::Kernel &kernel,
                                 const os::Process &proc)
{
    SocketMask mask;
    const auto &topo = kernel.machine().topology();
    for (const auto &t : proc.threads())
        mask.set(topo.socketOfCore(t.core));
    return mask;
}

AutoPolicyAction
AutoPolicyEngine::sample(os::Kernel &kernel, os::Process &proc,
                         const sim::PerfCounters &window)
{
    ++stats_.samples;

    if (window.accesses < cfg.minAccessesPerSample) {
        ++stats_.skippedNoSignal;
        streak[proc.id()] = 0;
        return AutoPolicyAction::None;
    }
    if (proc.residentPages < cfg.minResidentPages) {
        // Small footprints fit the TLB; replication cost would dominate
        // (§8.3: the 1 MB case is 23% memory overhead for nothing).
        ++stats_.skippedSmall;
        streak[proc.id()] = 0;
        return AutoPolicyAction::None;
    }

    double walk_fraction = window.walkFraction();
    bool replicated = proc.roots().replicated();

    if (!replicated && walk_fraction >= cfg.enableWalkFraction) {
        int &run = streak[proc.id()];
        if (++run < cfg.samplesBeforeAction)
            return AutoPolicyAction::None;
        run = 0;
        SocketMask mask = runningSockets(kernel, proc);
        if (mask.count() < 2) {
            // Single-socket process: nothing to replicate across. A
            // future extension could trigger migration health checks.
            return AutoPolicyAction::None;
        }
        if (!mitosis.setReplicationMask(proc.roots(), proc.id(), mask))
            return AutoPolicyAction::None;
        kernel.reloadContexts(proc);
        ++stats_.enables;
        return AutoPolicyAction::Enabled;
    }

    if (replicated && walk_fraction <= cfg.disableWalkFraction) {
        int &run = streak[proc.id()];
        if (++run < cfg.samplesBeforeAction)
            return AutoPolicyAction::None;
        run = 0;
        if (!mitosis.setReplicationMask(proc.roots(), proc.id(),
                                        SocketMask::none()))
            return AutoPolicyAction::None;
        kernel.reloadContexts(proc);
        ++stats_.disables;
        return AutoPolicyAction::Disabled;
    }

    streak[proc.id()] = 0;
    return AutoPolicyAction::None;
}

} // namespace mitosim::core
