#include "auto_policy.h"

namespace mitosim::core
{

SocketMask
AutoPolicyEngine::runningSockets(os::Kernel &kernel,
                                 const os::Process &proc)
{
    // Sockets the scheduler has the process's threads assigned to —
    // pinned cores, or run-queue homes under time sharing. Replicating
    // onto exactly these is the counter-driven analogue of the §5.3
    // schedule-driven path (which the Mitosis backend also walks per
    // first timeslice when configured scheduleDriven).
    return kernel.socketsOf(proc);
}

AutoPolicyAction
AutoPolicyEngine::sample(os::Kernel &kernel, os::Process &proc,
                         const sim::PerfCounters &window)
{
    ++stats_.samples;

    if (window.accesses < cfg.minAccessesPerSample) {
        ++stats_.skippedNoSignal;
        streak[proc.id()] = 0;
        return AutoPolicyAction::None;
    }
    if (proc.residentPages < cfg.minResidentPages) {
        // Small footprints fit the TLB; replication cost would dominate
        // (§8.3: the 1 MB case is 23% memory overhead for nothing).
        ++stats_.skippedSmall;
        streak[proc.id()] = 0;
        return AutoPolicyAction::None;
    }

    double walk_fraction = window.walkFraction();
    bool replicated = proc.roots().replicated();

    if (!replicated && walk_fraction >= cfg.enableWalkFraction) {
        int &run = streak[proc.id()];
        if (++run < cfg.samplesBeforeAction)
            return AutoPolicyAction::None;
        run = 0;
        SocketMask mask = runningSockets(kernel, proc);
        if (mask.count() < 2) {
            // Single-socket process: nothing to replicate across. A
            // future extension could trigger migration health checks.
            return AutoPolicyAction::None;
        }
        if (!mitosis.setReplicationMask(proc.roots(), proc.id(), mask))
            return AutoPolicyAction::None;
        kernel.reloadContexts(proc);
        ++stats_.enables;
        return AutoPolicyAction::Enabled;
    }

    if (replicated && walk_fraction <= cfg.disableWalkFraction) {
        int &run = streak[proc.id()];
        if (++run < cfg.samplesBeforeAction)
            return AutoPolicyAction::None;
        run = 0;
        if (!mitosis.setReplicationMask(proc.roots(), proc.id(),
                                        SocketMask::none()))
            return AutoPolicyAction::None;
        kernel.reloadContexts(proc);
        ++stats_.disables;
        return AutoPolicyAction::Disabled;
    }

    streak[proc.id()] = 0;
    return AutoPolicyAction::None;
}

} // namespace mitosim::core
