#include "lazy_backend.h"

#include "src/base/logging.h"
#include "src/pvops/costs.h"

namespace mitosim::core
{

LazyMitosisBackend::LazyMitosisBackend(mem::PhysicalMemory &physmem,
                                       const MitosisConfig &config)
    : MitosisBackend(physmem, config),
      queues(static_cast<std::size_t>(physmem.topology().numSockets()))
{
}

void
LazyMitosisBackend::propagateToReplica(Pfn replica, unsigned index,
                                       pt::Pte value, int level,
                                       bool charge_hop,
                                       pvops::KernelCost *cost)
{
    // Installs are deferred as messages; changes to a present entry
    // must stay eager (see header).
    pt::Pte existing{mem.table(replica)[index]};
    if (!existing.present() && value.present()) {
        auto &q = queues[static_cast<std::size_t>(mem.socketOf(replica))];
        q.push_back(Update{replica, index, value, level});
        ++lstats.queued;
        lstats.maxQueueDepth =
            std::max<std::uint64_t>(lstats.maxQueueDepth, q.size());
        if (charge_hop && cost)
            cost->charge(pvops::ReplicaHopCost); // enqueue bookkeeping
    } else {
        if (charge_hop)
            chargeLocate(cost);
        writeReplicaEntry(replica, index, value, level, cost);
        ++lstats.eagerFallbacks;
    }
}

void
LazyMitosisBackend::setPte(pt::RootSet &roots, pt::PteLoc loc,
                           pt::Pte value, int level,
                           pvops::KernelCost *cost)
{
    // Unreplicated pages: nothing to defer.
    if (mem.meta(loc.ptPfn).replicaNext == loc.ptPfn) {
        MitosisBackend::setPte(roots, loc, value, level, cost);
        return;
    }

    writePrimaryEntry(loc, value, level, cost);

    Pfn p = mem.meta(loc.ptPfn).replicaNext;
    while (p != loc.ptPfn) {
        propagateToReplica(p, loc.index, value, level,
                           /*charge_hop=*/true, cost);
        p = mem.meta(p).replicaNext;
    }
}

void
LazyMitosisBackend::setPtes(pt::RootSet &roots, pt::PteLoc loc,
                            const pt::Pte *values, unsigned count,
                            int level, pvops::KernelCost *cost)
{
    if (mem.meta(loc.ptPfn).replicaNext == loc.ptPfn) {
        MitosisBackend::setPtes(roots, loc, values, count, level, cost);
        return;
    }

    bool batched = config().updateMode == UpdateMode::Batched;
    for (unsigned k = 0; k < count; ++k)
        writePrimaryEntry(pt::PteLoc{loc.ptPfn, loc.index + k}, values[k],
                          level, cost);

    Pfn p = mem.meta(loc.ptPfn).replicaNext;
    while (p != loc.ptPfn) {
        if (batched && cost) {
            cost->charge(pvops::ReplicaHopCost);
            ++cost->replicaHops;
        }
        for (unsigned k = 0; k < count; ++k)
            propagateToReplica(p, loc.index + k, values[k], level,
                               /*charge_hop=*/!batched, cost);
        p = mem.meta(p).replicaNext;
    }
}

void
LazyMitosisBackend::releasePtPage(pt::RootSet &roots, Pfn pfn,
                                  pvops::KernelCost *cost)
{
    // Drop pending messages aimed at any page of the dying replica set;
    // applying them later would write into freed (possibly reused)
    // frames.
    std::vector<Pfn> dying;
    mem.forEachReplica(pfn, [&](Pfn p) { dying.push_back(p); });
    for (auto &q : queues) {
        std::deque<Update> kept;
        for (const Update &u : q) {
            bool doomed = false;
            for (Pfn d : dying) {
                if (u.replicaPfn == d) {
                    doomed = true;
                    break;
                }
            }
            if (!doomed)
                kept.push_back(u);
        }
        q = std::move(kept);
    }
    MitosisBackend::releasePtPage(roots, pfn, cost);
}

bool
LazyMitosisBackend::onTranslationFault(pt::RootSet &roots, SocketId socket,
                                       VirtAddr va,
                                       pvops::KernelCost *cost)
{
    (void)roots;
    (void)va;
    MITOSIM_ASSERT(socket >= 0 &&
                   socket < static_cast<SocketId>(queues.size()));
    auto &q = queues[static_cast<std::size_t>(socket)];
    if (q.empty())
        return false;

    // Batch-apply every pending message for this socket (the fault
    // handler is the message-processing point, §7.2).
    ++lstats.drains;
    while (!q.empty()) {
        Update u = q.front();
        q.pop_front();
        writeReplicaEntry(u.replicaPfn, u.index, u.value, u.level, cost);
        ++lstats.applied;
    }
    if (cost)
        cost->charge(pvops::FaultFixedCost);
    return true;
}

std::size_t
LazyMitosisBackend::pendingFor(SocketId socket) const
{
    MITOSIM_ASSERT(socket >= 0 &&
                   socket < static_cast<SocketId>(queues.size()));
    return queues[static_cast<std::size_t>(socket)].size();
}

} // namespace mitosim::core
