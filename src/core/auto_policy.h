/**
 * @file
 * Counter-driven automatic replication policy — the extension the paper
 * sketches in §6.1 and leaves as future work:
 *
 *   "the OS can obtain TLB miss rates or cycles spent walking
 *    page-tables through performance counters ... and then apply policy
 *    decisions automatically. A high TLB miss rate suggests that a
 *    process can benefit from page-table replication or migration. ...
 *    we disable page-table replication for short-running processes
 *    since the performance and memory cost ... cannot be amortized."
 *
 * The engine samples each process's walk-cycle fraction over a window
 * and, with hysteresis, enables replication onto the sockets the
 * process runs on (or tears it down again). Small processes are never
 * replicated: their working set fits the TLB anyway (§8.3's 1 MB
 * argument) and the relative memory overhead is largest there.
 */

#ifndef MITOSIM_CORE_AUTO_POLICY_H
#define MITOSIM_CORE_AUTO_POLICY_H

#include <cstdint>
#include <map>

#include "src/core/mitosis.h"
#include "src/os/exec_context.h"
#include "src/os/kernel.h"
#include "src/sim/perf_counters.h"

namespace mitosim::core
{

/** Thresholds for the automatic policy. */
struct AutoPolicyConfig
{
    /** Enable replication above this walk-cycle fraction. */
    double enableWalkFraction = 0.15;

    /** Tear replicas down below this fraction (hysteresis band). */
    double disableWalkFraction = 0.05;

    /** Ignore windows with fewer accesses (no signal). */
    std::uint64_t minAccessesPerSample = 5000;

    /** Never replicate processes smaller than this (4 KB pages). */
    std::uint64_t minResidentPages = 1024; // 4 MiB

    /**
     * Consecutive qualifying samples required before acting — filters
     * short-running processes, whose replication cost cannot be
     * amortized (§6.1).
     */
    int samplesBeforeAction = 2;
};

/** What a sample decided. */
enum class AutoPolicyAction
{
    None,
    Enabled,
    Disabled,
};

/** Engine statistics. */
struct AutoPolicyStats
{
    std::uint64_t samples = 0;
    std::uint64_t enables = 0;
    std::uint64_t disables = 0;
    std::uint64_t skippedSmall = 0;   //!< below minResidentPages
    std::uint64_t skippedNoSignal = 0; //!< too few accesses
};

/**
 * The automatic policy engine. One instance per kernel; call sample()
 * periodically per process with the counters accumulated since the last
 * sample (the model of a per-task perf-counter readout).
 */
class AutoPolicyEngine
{
  public:
    AutoPolicyEngine(MitosisBackend &backend,
                     const AutoPolicyConfig &config = AutoPolicyConfig{})
        : mitosis(backend), cfg(config)
    {
    }

    /**
     * Feed one measurement window for @p proc.
     *
     * @param window counters accumulated over the window
     * @return the action taken (replication mask changes are applied
     *         and contexts reloaded via @p kernel).
     */
    AutoPolicyAction sample(os::Kernel &kernel, os::Process &proc,
                            const sim::PerfCounters &window);

    /** Forget per-process history (e.g. after process exit). */
    void forget(ProcId pid) { streak.erase(pid); }

    const AutoPolicyStats &stats() const { return stats_; }
    const AutoPolicyConfig &config() const { return cfg; }

  private:
    /** Sockets on which @p proc currently has threads. */
    static SocketMask runningSockets(os::Kernel &kernel,
                                     const os::Process &proc);

    MitosisBackend &mitosis;
    AutoPolicyConfig cfg;
    AutoPolicyStats stats_;
    std::map<ProcId, int> streak; //!< consecutive qualifying samples
};

} // namespace mitosim::core

#endif // MITOSIM_CORE_AUTO_POLICY_H
