#include "mitosis.h"

#include <vector>

#include "src/base/logging.h"
#include "src/pt/pte.h"
#include "src/pvops/costs.h"

namespace mitosim::core
{

using pvops::KernelCost;

namespace
{

/** Tiny extra cost of the PV-Ops indirection itself (Table 6). */
constexpr Cycles IndirectionCost = 1;

} // namespace

MitosisBackend::MitosisBackend(mem::PhysicalMemory &physmem,
                               const MitosisConfig &config)
    : mem(physmem), cfg(config)
{
}

void
MitosisBackend::attachObs(obs::MetricsRegistry *metrics,
                          obs::Tracer *tracer)
{
    trc_ = tracer;
    if (!metrics)
        return;
    mReplCreated = &metrics->counter("mitosis_replica_pages_created");
    mReplFreed = &metrics->counter("mitosis_replica_pages_freed");
    gReplLive = &metrics->gauge("mitosis_replica_pages_live");
    mEagerUpdates = &metrics->counter("mitosis_eager_updates");
    mTreeRepl = &metrics->counter("mitosis_tree_replications");
    mTreeMigr = &metrics->counter("mitosis_tree_migrations");
    mSchedRepl = &metrics->counter("mitosis_schedule_replications");
}

void
MitosisBackend::setSystemPolicy(SystemPolicy policy, SocketId fixed_socket)
{
    cfg.policy = policy;
    cfg.fixedSocket = fixed_socket;
}

SocketMask
MitosisBackend::effectiveMask(const pt::RootSet &roots) const
{
    if (cfg.policy == SystemPolicy::Disabled ||
        cfg.policy == SystemPolicy::FixedSocket) {
        return SocketMask::none();
    }
    if (cfg.policy == SystemPolicy::AllProcesses && !cfg.scheduleDriven)
        return SocketMask::all(mem.topology().numSockets());
    // Schedule-driven: new page-table pages replicate only onto the
    // sockets the process has actually been scheduled on so far (the
    // mask onThreadScheduled grows) — §5.3's lazy allocation.
    return roots.replicaMask;
}

Pfn
MitosisBackend::allocSingle(ProcId owner, int level, SocketId hint,
                            KernelCost *cost)
{
    if (cfg.policy == SystemPolicy::FixedSocket)
        hint = cfg.fixedSocket;
    auto pfn = mem.allocPt(hint, level, owner);
    if (!pfn) {
        for (SocketId s = 0; s < mem.topology().numSockets() && !pfn; ++s) {
            if (s != hint)
                pfn = mem.allocPt(s, level, owner);
        }
    }
    if (!pfn)
        return InvalidPfn;
    if (cost) {
        cost->charge(pvops::PtPageSetupCost);
        ++cost->ptPagesAllocated;
    }
    return *pfn;
}

Pfn
MitosisBackend::allocPtPage(pt::RootSet &roots, ProcId owner, int level,
                            SocketId hint_socket, KernelCost *cost)
{
    if (cost)
        cost->charge(IndirectionCost);

    SocketMask mask = effectiveMask(roots);
    if (mask.empty())
        return allocSingle(owner, level, hint_socket, cost);

    // Replicated allocation: one page per socket in the mask, linked into
    // a circular list. The primary copy lives on the hint socket when the
    // hint is in the mask, otherwise on the mask's first socket.
    SocketId primary_socket =
        mask.contains(hint_socket) ? hint_socket : mask.first();

    // Only the non-primary copies count as replica pages, matching
    // releasePtPage / freeOtherReplicas on the free side — the counters
    // must conserve against the live ring population (vmcheck class 5).
    Pfn primary = allocSingle(owner, level, primary_socket, cost);
    if (primary == InvalidPfn)
        return InvalidPfn;

    for (SocketId s = mask.first(); s != InvalidSocket;
         s = mask.nextAfter(s)) {
        if (s == mem.socketOf(primary))
            continue;
        auto replica = mem.allocPt(s, level, owner);
        if (!replica) {
            // Degraded: this socket simply won't get a local copy.
            ++stats_.degradedAllocs;
            continue;
        }
        if (cost) {
            cost->charge(pvops::PtPageSetupCost);
            ++cost->ptPagesAllocated;
        }
        mem.linkReplica(primary, *replica);
        ++stats_.replicaPagesCreated;
        bump(mReplCreated);
        if (gReplLive)
            gReplLive->add(1);
        if (trc_)
            trc_->instant(obs::TraceCat::Replica, "replica_create",
                          owner, 0, "socket",
                          static_cast<std::uint64_t>(s));
    }
    return primary;
}

void
MitosisBackend::releasePtPage(pt::RootSet &roots, Pfn pfn, KernelCost *cost)
{
    (void)roots;
    if (cost)
        cost->charge(IndirectionCost);
    // Free the whole replica set.
    std::vector<Pfn> pages;
    mem.forEachReplica(pfn, [&](Pfn p) { pages.push_back(p); });
    for (Pfn p : pages) {
        mem.unlinkReplica(p);
        mem.freePt(p);
        if (cost) {
            cost->charge(pvops::PageFreeCost);
            ++cost->ptPagesFreed;
        }
        if (p != pfn) {
            ++stats_.replicaPagesFreed;
            bump(mReplFreed);
            if (gReplLive)
                gReplLive->sub(1);
            if (trc_)
                trc_->instant(obs::TraceCat::Replica, "replica_free",
                              0, 0, "pfn", p);
        }
    }
}

void
MitosisBackend::chargeLocate(KernelCost *cost) const
{
    if (!cost)
        return;
    if (cfg.updateMode != UpdateMode::WalkReplicas) {
        // One struct-page pointer chase per replica (2N total refs: N
        // writes + N metadata reads, §5.2). Batched mode pays the same
        // per single update; it only amortizes inside setPtes.
        cost->charge(pvops::ReplicaHopCost);
        ++cost->replicaHops;
    } else {
        // Walk the replica's tree from its root: 4 steps on x86-64.
        cost->charge(4 * pvops::ReplicaWalkStepCost);
    }
}

void
MitosisBackend::writeReplicaEntry(Pfn replica, unsigned index,
                                  pt::Pte value, int level,
                                  KernelCost *cost)
{
    // Non-leaf present entries point at child page-table pages; each
    // replica must reference the child copy on its own socket (semantic
    // replication, §2.3). Leaf entries (L1, or L2 with PS) are copied
    // verbatim — data frames are shared by all replicas.
    mem.table(replica)[index] =
        localizedValue(replica, value, level).raw();
    if (cost) {
        cost->charge(pvops::PteRemoteWriteCost);
        ++cost->replicaWrites;
    }
    ++stats_.eagerUpdates;
    ++stats_.replicaRefsOnUpdate;
    bump(mEagerUpdates);
}

pt::Pte
MitosisBackend::localizedValue(Pfn table, pt::Pte value, int level) const
{
    // Replica trees are symmetric: the copy in @p table must reference
    // the child replica local to *its* socket (the tree a core walks
    // must never leave its socket when a local child exists).
    bool non_leaf = value.present() && level > 1 &&
                    !(level == 2 && value.huge());
    if (non_leaf && mem.meta(value.pfn()).isPageTable()) {
        Pfn local_child =
            mem.replicaOnSocket(value.pfn(), mem.socketOf(table));
        if (local_child != InvalidPfn)
            return value.withPfn(local_child);
    }
    return value;
}

void
MitosisBackend::writePrimaryEntry(pt::PteLoc loc, pt::Pte value, int level,
                                  KernelCost *cost)
{
    mem.table(loc.ptPfn)[loc.index] =
        localizedValue(loc.ptPfn, value, level).raw();
    if (cost) {
        cost->charge(pvops::PteWriteCost);
        ++cost->pteWrites;
    }
}

void
MitosisBackend::setPte(pt::RootSet &roots, pt::PteLoc loc, pt::Pte value,
                       int level, KernelCost *cost)
{
    (void)roots;
    if (cost)
        cost->charge(IndirectionCost);

    writePrimaryEntry(loc, value, level, cost);

    // Eager propagation along the circular list (Figure 8).
    Pfn p = mem.meta(loc.ptPfn).replicaNext;
    while (p != loc.ptPfn) {
        chargeLocate(cost);
        writeReplicaEntry(p, loc.index, value, level, cost);
        p = mem.meta(p).replicaNext;
    }
}

void
MitosisBackend::setPtes(pt::RootSet &roots, pt::PteLoc loc,
                        const pt::Pte *values, unsigned count, int level,
                        KernelCost *cost)
{
    (void)roots;
    bool batched = cfg.updateMode == UpdateMode::Batched;
    if (cost)
        cost->charge(batched ? IndirectionCost : IndirectionCost * count);

    std::uint64_t *primary = mem.table(loc.ptPfn) + loc.index;
    for (unsigned k = 0; k < count; ++k)
        primary[k] = localizedValue(loc.ptPfn, values[k], level).raw();
    if (cost) {
        cost->charge(pvops::PteWriteCost * count);
        cost->pteWrites += count;
    }

    // One ring traversal per table; each replica gets the whole run
    // streamed. Under the default modes the locate is still charged per
    // entry (metric parity with the per-entry path); Batched charges it
    // once per (replica, table) — the range-op amortization.
    Pfn p = mem.meta(loc.ptPfn).replicaNext;
    while (p != loc.ptPfn) {
        if (cost) {
            unsigned locates = batched ? 1 : count;
            if (cfg.updateMode != UpdateMode::WalkReplicas) {
                cost->charge(pvops::ReplicaHopCost * locates);
                cost->replicaHops += locates;
            } else {
                cost->charge(4 * pvops::ReplicaWalkStepCost * locates);
            }
        }
        std::uint64_t *replica = mem.table(p) + loc.index;
        for (unsigned k = 0; k < count; ++k)
            replica[k] = localizedValue(p, values[k], level).raw();
        if (cost) {
            cost->charge(pvops::PteRemoteWriteCost * count);
            cost->replicaWrites += count;
        }
        stats_.eagerUpdates += count;
        stats_.replicaRefsOnUpdate += count;
        bump(mEagerUpdates, count);
        p = mem.meta(p).replicaNext;
    }
}

void
MitosisBackend::collapseRange(pt::RootSet &roots, pt::PteLoc dir_loc,
                              pt::Pte huge, Pfn leaf_table,
                              KernelCost *cost)
{
    ++stats_.hugeCollapses;
    PvOps::collapseRange(roots, dir_loc, huge, leaf_table, cost);
}

bool
MitosisBackend::splitHuge(pt::RootSet &roots, ProcId owner,
                          pt::PteLoc dir_loc, const pt::Pte *values,
                          SocketId hint_socket, KernelCost *cost)
{
    if (!PvOps::splitHuge(roots, owner, dir_loc, values, hint_socket,
                          cost))
        return false;
    ++stats_.hugeSplits;
    return true;
}

pt::Pte
MitosisBackend::readPte(const pt::RootSet &roots, pt::PteLoc loc,
                        KernelCost *cost) const
{
    (void)roots;
    if (cost)
        cost->charge(IndirectionCost + pvops::PteReadCost);

    std::uint64_t raw = mem.table(loc.ptPfn)[loc.index];
    Pfn p = mem.meta(loc.ptPfn).replicaNext;
    if (p != loc.ptPfn) {
        // OR the hardware-written bits across every replica (§5.4).
        auto *self = const_cast<MitosisBackend *>(this);
        ++self->stats_.adMergedReads;
        while (p != loc.ptPfn) {
            raw |= mem.table(p)[loc.index] & pt::PteAdMask;
            // The ring pointer shares the struct-page line with other
            // metadata the read path already touched; charge only the
            // PTE load itself.
            if (cost)
                cost->charge(pvops::PteReadCost);
            p = mem.meta(p).replicaNext;
        }
    }
    return pt::Pte{raw};
}

pt::Pte
MitosisBackend::readPteMany(const pt::RootSet &roots, pt::PteLoc loc,
                            unsigned n, KernelCost *cost) const
{
    (void)roots;
    if (n == 0)
        return pt::Pte{};
    if (cost)
        cost->charge((IndirectionCost + pvops::PteReadCost) * n);

    std::uint64_t raw = mem.table(loc.ptPfn)[loc.index];
    Pfn p = mem.meta(loc.ptPfn).replicaNext;
    if (p != loc.ptPfn) {
        auto *self = const_cast<MitosisBackend *>(this);
        self->stats_.adMergedReads += n;
        while (p != loc.ptPfn) {
            raw |= mem.table(p)[loc.index] & pt::PteAdMask;
            if (cost)
                cost->charge(pvops::PteReadCost * n);
            p = mem.meta(p).replicaNext;
        }
    }
    return pt::Pte{raw};
}

void
MitosisBackend::clearAccessedDirty(pt::RootSet &roots, pt::PteLoc loc,
                                   std::uint64_t bits, KernelCost *cost)
{
    (void)roots;
    if (cost)
        cost->charge(IndirectionCost);
    Pfn p = loc.ptPfn;
    do {
        mem.table(p)[loc.index] &= ~bits;
        if (cost) {
            cost->charge(pvops::PteWriteCost);
            ++cost->pteWrites;
        }
        p = mem.meta(p).replicaNext;
    } while (p != loc.ptPfn);
}

Pfn
MitosisBackend::cr3For(const pt::RootSet &roots, SocketId socket) const
{
    return roots.rootFor(socket);
}

Pfn
MitosisBackend::replicateSubtree(Pfn src, int level, SocketId target,
                                 ProcId owner, KernelCost *cost)
{
    Pfn dst = mem.replicaOnSocket(src, target);
    bool fresh = false;
    if (dst == InvalidPfn) {
        auto page = mem.allocPt(target, level, owner);
        if (!page) {
            ++stats_.degradedAllocs;
            return InvalidPfn;
        }
        dst = *page;
        mem.linkReplica(src, dst);
        ++stats_.replicaPagesCreated;
        bump(mReplCreated);
        if (gReplLive)
            gReplLive->add(1);
        if (trc_)
            trc_->instant(obs::TraceCat::Replica, "replica_create",
                          owner, 0, "socket",
                          static_cast<std::uint64_t>(target));
        fresh = true;
        if (cost) {
            cost->charge(pvops::PtPageSetupCost);
            ++cost->ptPagesAllocated;
        }
    }

    const std::uint64_t *src_tbl = mem.table(src);
    std::uint64_t *dst_tbl = mem.table(dst);
    for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
        pt::Pte entry{src_tbl[i]};
        if (!entry.present()) {
            if (fresh)
                dst_tbl[i] = entry.raw();
            continue;
        }
        bool leaf = (level == 1) || (level == 2 && entry.huge());
        if (leaf) {
            dst_tbl[i] = entry.raw();
        } else {
            Pfn child_copy = replicateSubtree(entry.pfn(), level - 1,
                                              target, owner, cost);
            dst_tbl[i] = (child_copy != InvalidPfn)
                             ? entry.withPfn(child_copy).raw()
                             : entry.raw(); // degraded cross-socket link
        }
        if (cost) {
            cost->charge(pvops::PteWriteCost + pvops::PteReadCost);
            ++cost->pteWrites;
        }
    }
    return dst;
}

bool
MitosisBackend::setReplicationMask(pt::RootSet &roots, ProcId owner,
                                   SocketMask mask, KernelCost *cost)
{
    if (cfg.policy == SystemPolicy::Disabled ||
        cfg.policy == SystemPolicy::FixedSocket) {
        return false;
    }
    MITOSIM_ASSERT(roots.primaryRoot != InvalidPfn,
                   "setReplicationMask: process has no page-table");

    SocketMask old_mask = roots.replicaMask;

    // Build replicas for newly requested sockets.
    for (SocketId s = mask.first(); s != InvalidSocket;
         s = mask.nextAfter(s)) {
        if (s >= mem.topology().numSockets())
            fatal("replication mask names socket %d beyond topology", s);
        replicateSubtree(roots.primaryRoot, 4, s, owner, cost);
        ++stats_.treeReplications;
        bump(mTreeRepl);
        if (trc_)
            trc_->instant(obs::TraceCat::Replica, "tree_replicate",
                          owner, 0, "socket",
                          static_cast<std::uint64_t>(s));
    }

    // Tear down replicas for sockets no longer in the mask. Primary-tree
    // pages are never freed even if their socket leaves the mask.
    for (SocketId s = old_mask.first(); s != InvalidSocket;
         s = old_mask.nextAfter(s)) {
        if (mask.contains(s))
            continue;
        // Collect pages of the primary tree, then free their s-replicas.
        std::vector<Pfn> to_free;
        collectReplicasOn(roots, s, to_free);
        for (Pfn p : to_free) {
            mem.unlinkReplica(p);
            mem.freePt(p);
            ++stats_.replicaPagesFreed;
            bump(mReplFreed);
            if (gReplLive)
                gReplLive->sub(1);
            if (cost) {
                cost->charge(pvops::PageFreeCost);
                ++cost->ptPagesFreed;
            }
        }
    }

    roots.replicaMask = mask;
    for (SocketId s = 0; s < pt::MaxSockets; ++s) {
        Pfn root = (s < mem.topology().numSockets())
                       ? mem.replicaOnSocket(roots.primaryRoot, s)
                       : InvalidPfn;
        roots.perSocketRoot[static_cast<std::size_t>(s)] =
            (root != InvalidPfn && (mask.contains(s) ||
                                    root == roots.primaryRoot))
                ? root
                : roots.primaryRoot;
    }
    return true;
}

void
MitosisBackend::collectReplicasOn(pt::RootSet &roots, SocketId socket,
                                  std::vector<Pfn> &out)
{
    // DFS over the primary tree; for each page record its replica on
    // @p socket unless that replica *is* the primary page.
    struct Frame
    {
        Pfn table;
        int level;
    };
    std::vector<Frame> stack{{roots.primaryRoot, 4}};
    while (!stack.empty()) {
        Frame f = stack.back();
        stack.pop_back();
        Pfn replica = mem.replicaOnSocket(f.table, socket);
        if (replica != InvalidPfn && replica != f.table)
            out.push_back(replica);
        if (f.level == 1)
            continue;
        const std::uint64_t *tbl = mem.table(f.table);
        for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
            pt::Pte entry{tbl[i]};
            if (entry.present() && !(f.level == 2 && entry.huge()))
                stack.push_back({entry.pfn(), f.level - 1});
        }
    }
}

void
MitosisBackend::freeOtherReplicas(Pfn keep, KernelCost *cost)
{
    std::vector<Pfn> others;
    mem.forEachReplica(keep, [&](Pfn p) {
        if (p != keep)
            others.push_back(p);
    });
    for (Pfn p : others) {
        mem.unlinkReplica(p);
        mem.freePt(p);
        ++stats_.replicaPagesFreed;
        bump(mReplFreed);
        if (gReplLive)
            gReplLive->sub(1);
        if (cost) {
            cost->charge(pvops::PageFreeCost);
            ++cost->ptPagesFreed;
        }
    }
}

bool
MitosisBackend::migratePageTables(pt::RootSet &roots, ProcId owner,
                                  SocketId target, KernelCost *cost)
{
    if (cfg.policy == SystemPolicy::Disabled ||
        cfg.policy == SystemPolicy::FixedSocket) {
        return false;
    }
    MITOSIM_ASSERT(roots.primaryRoot != InvalidPfn,
                   "migratePageTables: process has no page-table");
    MITOSIM_ASSERT(target >= 0 && target < mem.topology().numSockets());

    // Step 1: replicate onto the target (§5.5: migration reuses the
    // replication machinery).
    Pfn new_root =
        replicateSubtree(roots.primaryRoot, 4, target, owner, cost);
    if (new_root == InvalidPfn)
        return false;
    ++stats_.treeMigrations;
    bump(mTreeMigr);
    if (trc_)
        trc_->instant(obs::TraceCat::Replica, "tree_migrate", owner, 0,
                      "socket", static_cast<std::uint64_t>(target));

    Pfn old_root = roots.primaryRoot;
    roots.primaryRoot = new_root;

    if (cfg.eagerFreeOnMigration) {
        // Step 2 (eager): free every non-target copy. Walk the *new*
        // tree; its replica lists still link the old copies.
        struct Frame
        {
            Pfn table;
            int level;
        };
        std::vector<Frame> stack{{new_root, 4}};
        while (!stack.empty()) {
            Frame f = stack.back();
            stack.pop_back();
            if (f.level > 1) {
                const std::uint64_t *tbl = mem.table(f.table);
                for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
                    pt::Pte entry{tbl[i]};
                    if (entry.present() &&
                        !(f.level == 2 && entry.huge()))
                        stack.push_back({entry.pfn(), f.level - 1});
                }
            }
            freeOtherReplicas(f.table, cost);
        }
        roots.resetToPrimary();
    } else {
        // Lazy: keep the old copies as live replicas; the old home
        // socket keeps a local tree in case the process migrates back.
        SocketMask mask = roots.replicaMask;
        mask.set(target);
        mask.set(mem.socketOf(old_root));
        roots.replicaMask = mask;
        for (SocketId s = 0; s < pt::MaxSockets; ++s) {
            Pfn root = (s < mem.topology().numSockets())
                           ? mem.replicaOnSocket(new_root, s)
                           : InvalidPfn;
            roots.perSocketRoot[static_cast<std::size_t>(s)] =
                (root != InvalidPfn) ? root : new_root;
        }
    }
    return true;
}

void
MitosisBackend::onProcessMigrated(pt::RootSet &roots, ProcId owner,
                                  SocketId from, SocketId to,
                                  KernelCost *cost)
{
    (void)from;
    if (!cfg.migrateOnProcessMove)
        return;
    if (cfg.policy == SystemPolicy::Disabled ||
        cfg.policy == SystemPolicy::FixedSocket) {
        return;
    }
    if (roots.replicated()) {
        // Fully replicated processes already have a local tree wherever
        // they land; nothing to migrate.
        if (roots.replicaMask.contains(to))
            return;
    }
    migratePageTables(roots, owner, to, cost);
}

void
MitosisBackend::onThreadScheduled(pt::RootSet &roots, ProcId owner,
                                  SocketId socket, KernelCost *cost)
{
    if (!cfg.scheduleDriven)
        return;
    if (cfg.policy == SystemPolicy::Disabled ||
        cfg.policy == SystemPolicy::FixedSocket) {
        return;
    }
    // PerProcess: only processes that opted in (non-empty mask) grow.
    if (cfg.policy == SystemPolicy::PerProcess &&
        roots.replicaMask.empty()) {
        return;
    }
    if (roots.replicaMask.contains(socket))
        return; // not the first timeslice here: the replica exists
    SocketMask mask = roots.replicaMask;
    mask.set(socket);
    if (setReplicationMask(roots, owner, mask, cost)) {
        ++stats_.scheduleReplications;
        bump(mSchedRepl);
        if (trc_)
            trc_->instant(obs::TraceCat::Replica, "schedule_replicate",
                          owner, 0, "socket",
                          static_cast<std::uint64_t>(socket));
    }
}

} // namespace mitosim::core
