/**
 * @file
 * Mitosis: transparently self-replicating page-tables (the paper's core
 * contribution, §4-§6).
 *
 * MitosisBackend is a PV-Ops backend that
 *  - allocates page-table pages as *replica sets* (one page per socket in
 *    the process's replication mask), linked through the circular
 *    struct-page list of Figure 8;
 *  - eagerly propagates every PTE store to all replicas, rewriting
 *    non-leaf entries so each replica's upper levels point at that
 *    socket's copy of the child table (semantic, not bytewise,
 *    replication — §2.3);
 *  - ORs hardware-written Accessed/Dirty bits across replicas on reads
 *    and clears them everywhere (§5.4);
 *  - supplies per-socket CR3 values so a scheduled thread walks its local
 *    replica (§5.3);
 *  - implements page-table *migration* as replicate-to-target followed by
 *    eager (or lazy) release of the source copies (§5.5);
 *  - carries the policy surface of §6: a system-wide 4-state knob and the
 *    per-process replication bitmask behind
 *    numa_set_pgtable_replication_mask().
 */

#ifndef MITOSIM_CORE_MITOSIS_H
#define MITOSIM_CORE_MITOSIS_H

#include <cstdint>
#include <vector>

#include "src/base/socket_mask.h"
#include "src/mem/physical_memory.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pvops/pvops.h"

namespace mitosim::core
{

/** §6.1: the system-wide policy states exposed via sysctl. */
enum class SystemPolicy
{
    Disabled,     //!< Mitosis off: behave exactly like the native backend
    PerProcess,   //!< replicate only for processes with a non-empty mask
    FixedSocket,  //!< force all PT allocations onto one socket (analysis)
    AllProcesses, //!< replicate to all sockets for every process
};

/** §5.2: how replica locations are found on an update. */
enum class UpdateMode
{
    CircularList, //!< struct-page list: 2N references per update (Fig 8)
    WalkReplicas, //!< walk each replica tree: 4N references (the strawman)

    /**
     * Range-op extension (not in the paper): batched setPtes calls
     * charge the struct-page locate once per (replica, table) instead
     * of once per entry — the "2 refs per table" amortization a
     * range-first kernel makes possible. Single-entry updates behave
     * exactly like CircularList, so only genuinely batched operations
     * (munmap/mprotect/populate over ranges) get cheaper.
     */
    Batched,
};

/** Tunables. */
struct MitosisConfig
{
    SystemPolicy policy = SystemPolicy::PerProcess;
    SocketId fixedSocket = 0; //!< for SystemPolicy::FixedSocket
    UpdateMode updateMode = UpdateMode::CircularList;

    /**
     * After migration, free the source replica eagerly (default) or keep
     * it consistent for a cheap migrate-back (§5.5).
     */
    bool eagerFreeOnMigration = true;

    /** Migrate page-tables when the kernel migrates a process. */
    bool migrateOnProcessMove = true;

    /**
     * §5.3 schedule-driven replication: instead of replicating to every
     * socket up front, grow the replica set lazily — the first timeslice
     * a thread gets on a new socket (onThreadScheduled) replicates the
     * tree there. Under SystemPolicy::AllProcesses this narrows the
     * eager "replicate everywhere" to "replicate where scheduled";
     * under PerProcess it extends an explicitly opted-in process's
     * mask to sockets the scheduler actually uses. Off by default:
     * the pinned kernel never fires the hook and eager benches keep
     * their up-front replica sets.
     */
    bool scheduleDriven = false;
};

/** Replication activity counters. */
struct MitosisStats
{
    std::uint64_t replicaPagesCreated = 0;
    std::uint64_t replicaPagesFreed = 0;
    std::uint64_t eagerUpdates = 0;      //!< propagated PTE stores
    std::uint64_t replicaRefsOnUpdate = 0; //!< memory refs those stores cost
    std::uint64_t adMergedReads = 0;     //!< OR-ed A/D reads
    std::uint64_t treeReplications = 0;  //!< full-tree replicate calls
    std::uint64_t treeMigrations = 0;    //!< §5.5 migrations
    std::uint64_t degradedAllocs = 0;    //!< replica alloc failures
    std::uint64_t scheduleReplications = 0; //!< §5.3 first-timeslice builds
    std::uint64_t hugeCollapses = 0;     //!< THP collapses applied ring-wide
    std::uint64_t hugeSplits = 0;        //!< THP demotions applied ring-wide
};

/** The Mitosis PV-Ops backend. */
class MitosisBackend : public pvops::PvOps
{
  public:
    explicit MitosisBackend(mem::PhysicalMemory &physmem,
                            const MitosisConfig &config = MitosisConfig{});

    /// @name Policy surface (§6)
    /// @{

    /** sysctl: change the system-wide state. */
    void setSystemPolicy(SystemPolicy policy, SocketId fixed_socket = 0);
    SystemPolicy systemPolicy() const { return cfg.policy; }

    /**
     * The numa_set_pgtable_replication_mask() syscall: replicate the
     * process's page-table onto every socket in @p mask (walking and
     * copying the existing tree), or tear replicas down for an empty
     * mask. No-op under SystemPolicy::Disabled.
     *
     * @return true if the mask was applied.
     */
    bool setReplicationMask(pt::RootSet &roots, ProcId owner,
                            SocketMask mask,
                            pvops::KernelCost *cost = nullptr);

    /** numa_get_pgtable_replication_mask(). */
    SocketMask replicationMask(const pt::RootSet &roots) const
    {
        return roots.replicaMask;
    }

    /**
     * §5.5: migrate the page-table to @p target. Implemented as
     * replicate-to-target; source copies are freed eagerly or kept
     * (lazily releasable) per configuration.
     */
    bool migratePageTables(pt::RootSet &roots, ProcId owner,
                           SocketId target,
                           pvops::KernelCost *cost = nullptr);

    /// @}
    /// @name PV-Ops implementation (§5)
    /// @{

    Pfn allocPtPage(pt::RootSet &roots, ProcId owner, int level,
                    SocketId hint_socket, pvops::KernelCost *cost) override;

    void releasePtPage(pt::RootSet &roots, Pfn pfn,
                       pvops::KernelCost *cost) override;

    void setPte(pt::RootSet &roots, pt::PteLoc loc, pt::Pte value,
                int level, pvops::KernelCost *cost) override;

    /**
     * Batched stores into one table: the replica ring is chased once
     * per table and the entries streamed into each copy. Charged costs
     * are per-entry-identical to looping setPte under CircularList /
     * WalkReplicas; UpdateMode::Batched charges the locate per table.
     */
    void setPtes(pt::RootSet &roots, pt::PteLoc loc,
                 const pt::Pte *values, unsigned count, int level,
                 pvops::KernelCost *cost) override;

    /**
     * THP lifecycle hooks: the base-class composition over this
     * backend's own setPte/setPtes/allocPtPage/releasePtPage already
     * rewrites the leaf level in every replica (one ring locate per
     * replica per table, the batched-update model) and frees/creates
     * whole replica sets; these overrides only count the events so the
     * per-replica view can be cross-checked against the OS-side
     * ThpStats.
     */
    void collapseRange(pt::RootSet &roots, pt::PteLoc dir_loc,
                       pt::Pte huge, Pfn leaf_table,
                       pvops::KernelCost *cost) override;

    bool splitHuge(pt::RootSet &roots, ProcId owner, pt::PteLoc dir_loc,
                   const pt::Pte *values, SocketId hint_socket,
                   pvops::KernelCost *cost) override;

    pt::Pte readPte(const pt::RootSet &roots, pt::PteLoc loc,
                    pvops::KernelCost *cost) const override;

    /** One ring traversal, n-fold readPte charges (A/D merge incl.). */
    pt::Pte readPteMany(const pt::RootSet &roots, pt::PteLoc loc,
                        unsigned n, pvops::KernelCost *cost) const override;

    void clearAccessedDirty(pt::RootSet &roots, pt::PteLoc loc,
                            std::uint64_t bits,
                            pvops::KernelCost *cost) override;

    Pfn cr3For(const pt::RootSet &roots, SocketId socket) const override;

    void onProcessMigrated(pt::RootSet &roots, ProcId owner, SocketId from,
                           SocketId to, pvops::KernelCost *cost) override;

    /** §5.3: first timeslice on a new socket grows the replica set. */
    void onThreadScheduled(pt::RootSet &roots, ProcId owner,
                           SocketId socket,
                           pvops::KernelCost *cost) override;

    const char *name() const override { return "mitosis"; }

    /// @}

    const MitosisStats &stats() const { return stats_; }
    void resetStats() { stats_ = MitosisStats{}; }
    const MitosisConfig &config() const { return cfg; }

    /**
     * Attach the owning machine's observability sinks. The backend is
     * constructed from a PhysicalMemory alone (no Machine in reach),
     * so snapshot::Universe wires this after construction; a detached
     * backend (nulls, e.g. one built by hand in a test or bench) skips
     * every metric/trace emission.
     */
    void attachObs(obs::MetricsRegistry *metrics, obs::Tracer *tracer);

    /**
     * Snapshot restore: adopt the cumulative counters of @p src (the
     * backend's only state — page-table contents live in the
     * PhysicalMemory the fork restores separately).
     */
    void cloneStateFrom(const MitosisBackend &src) { stats_ = src.stats_; }

  protected:
    /** Mask in force for new PT pages of a process. */
    SocketMask effectiveMask(const pt::RootSet &roots) const;

    /** Allocate one PT page honoring the FixedSocket analysis policy. */
    Pfn allocSingle(ProcId owner, int level, SocketId hint,
                    pvops::KernelCost *cost);

    /**
     * Ensure a replica of the subtree rooted at @p src exists on
     * @p target; returns the target-socket copy of @p src.
     */
    Pfn replicateSubtree(Pfn src, int level, SocketId target, ProcId owner,
                         pvops::KernelCost *cost);

    /** Free every replica of @p pfn's list except @p keep. */
    void freeOtherReplicas(Pfn keep, pvops::KernelCost *cost);

    /** Collect the @p socket replicas of all primary-tree pages. */
    void collectReplicasOn(pt::RootSet &roots, SocketId socket,
                           std::vector<Pfn> &out);

    /** Write @p value into replica page @p replica, fixing child links. */
    void writeReplicaEntry(Pfn replica, unsigned index, pt::Pte value,
                           int level, pvops::KernelCost *cost);

    /** Charge the per-replica locate cost for the configured mode. */
    void chargeLocate(pvops::KernelCost *cost) const;

    /**
     * @p value with a non-leaf child pointer redirected to the child
     * replica local to the socket holding @p table (no-op for leaves).
     */
    pt::Pte localizedValue(Pfn table, pt::Pte value, int level) const;

    /** Primary store of one entry, charged like the setPte fast path. */
    void writePrimaryEntry(pt::PteLoc loc, pt::Pte value, int level,
                           pvops::KernelCost *cost);

    /** Null-safe counter bump for detached backends. */
    static void
    bump(obs::Counter *c, std::uint64_t n = 1)
    {
        if (c)
            c->inc(n);
    }

    mem::PhysicalMemory &mem;
    MitosisConfig cfg;
    MitosisStats stats_;

    /// @name Observability handles (null until attachObs)
    /// @{
    obs::Tracer *trc_ = nullptr;
    obs::Counter *mReplCreated = nullptr;
    obs::Counter *mReplFreed = nullptr;
    obs::Gauge *gReplLive = nullptr;
    obs::Counter *mEagerUpdates = nullptr;
    obs::Counter *mTreeRepl = nullptr;
    obs::Counter *mTreeMigr = nullptr;
    obs::Counter *mSchedRepl = nullptr;
    /// @}
};

} // namespace mitosim::core

#endif // MITOSIM_CORE_MITOSIS_H
