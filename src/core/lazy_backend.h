/**
 * @file
 * Lazy replica propagation — the §7.2 library-OS design, realized as a
 * PV-Ops backend:
 *
 *   "Updates to page-tables might need to be converted to explicit
 *    update messages to other sockets, which avoid the need for global
 *    locks and propagates updates lazily. On a page-fault, updates can
 *    be processed and applied accordingly in the page-fault handling
 *    routine."
 *
 * LazyMitosisBackend queues *installing* PTE stores (non-present ->
 * present) as per-socket update messages instead of writing every
 * replica eagerly; a replica that has not received the message simply
 * faults, and the kernel's pre-fault hook drains the socket's queue.
 *
 * Correctness rule: only installs may be lazy. Any store that changes a
 * *present* replica entry (unmap, permission downgrade, frame
 * migration) is propagated eagerly — a stale present entry would keep
 * translating and never fault, which could leak freed frames.
 *
 * The THP lifecycle hooks (PvOps::collapseRange / splitHuge) need no
 * override here: the rule above makes the base composition coherent by
 * construction. Collapse rewrites a *present* L2 slot (eager in every
 * replica) and then releases the leaf table, whose override purges any
 * update messages still queued at the dying replica set; a split fills
 * a fresh leaf table (pure installs — queued, drained at fault time)
 * before the eager present→present L2 swing, so a replica that races
 * ahead simply faults at L1 and drains its queue.
 */

#ifndef MITOSIM_CORE_LAZY_BACKEND_H
#define MITOSIM_CORE_LAZY_BACKEND_H

#include <deque>
#include <vector>

#include "src/core/mitosis.h"

namespace mitosim::core
{

/** Lazy-propagation statistics. */
struct LazyStats
{
    std::uint64_t queued = 0;       //!< update messages enqueued
    std::uint64_t applied = 0;      //!< messages applied at fault time
    std::uint64_t drains = 0;       //!< fault-time queue drains
    std::uint64_t eagerFallbacks = 0; //!< present-entry stores kept eager
    std::uint64_t maxQueueDepth = 0;
};

/** MitosisBackend with message-based lazy install propagation. */
class LazyMitosisBackend : public MitosisBackend
{
  public:
    explicit LazyMitosisBackend(
        mem::PhysicalMemory &physmem,
        const MitosisConfig &config = MitosisConfig{});

    void setPte(pt::RootSet &roots, pt::PteLoc loc, pt::Pte value,
                int level, pvops::KernelCost *cost) override;

    /**
     * Batched stores keep the lazy install/eager-fallback split per
     * entry, but chase the replica ring once per table. Default modes
     * charge exactly like per-entry setPte; UpdateMode::Batched charges
     * the per-replica ring hop once per (replica, table).
     */
    void setPtes(pt::RootSet &roots, pt::PteLoc loc,
                 const pt::Pte *values, unsigned count, int level,
                 pvops::KernelCost *cost) override;

    /** Purges queued messages aimed at the freed replica set. */
    void releasePtPage(pt::RootSet &roots, Pfn pfn,
                       pvops::KernelCost *cost) override;

    bool onTranslationFault(pt::RootSet &roots, SocketId socket,
                            VirtAddr va, pvops::KernelCost *cost) override;

    const char *name() const override { return "mitosis-lazy"; }

    const LazyStats &lazyStats() const { return lstats; }

    /** Pending messages for @p socket (diagnostics / tests). */
    std::size_t pendingFor(SocketId socket) const;

    /** Snapshot restore: adopt queued updates and counters of @p src. */
    void
    cloneStateFrom(const LazyMitosisBackend &src)
    {
        MitosisBackend::cloneStateFrom(src);
        queues = src.queues;
        lstats = src.lstats;
    }

  private:
    /** One queued replica update. */
    struct Update
    {
        Pfn replicaPfn;
        unsigned index;
        pt::Pte value;
        int level;
    };

    /**
     * Queue-or-eager decision for one replica entry. @p charge_hop
     * controls whether the per-entry ring-hop cost is charged here
     * (per-entry paths) or was already charged per table (Batched).
     */
    void propagateToReplica(Pfn replica, unsigned index, pt::Pte value,
                            int level, bool charge_hop,
                            pvops::KernelCost *cost);

    std::vector<std::deque<Update>> queues; //!< per socket
    LazyStats lstats;
};

} // namespace mitosim::core

#endif // MITOSIM_CORE_LAZY_BACKEND_H
