#include "snapshot.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/base/logging.h"

namespace mitosim::snapshot
{

namespace
{

std::unique_ptr<pvops::PvOps>
makeBackend(BackendKind kind, mem::PhysicalMemory &physmem,
            const core::MitosisConfig &cfg)
{
    switch (kind) {
      case BackendKind::Native:
        return std::make_unique<pvops::NativeBackend>(physmem);
      case BackendKind::Mitosis:
        return std::make_unique<core::MitosisBackend>(physmem, cfg);
      case BackendKind::LazyMitosis:
        return std::make_unique<core::LazyMitosisBackend>(physmem, cfg);
    }
    panic("makeBackend: unknown backend kind");
}

} // namespace

Universe::Universe(const sim::MachineConfig &machine_cfg, BackendKind k,
                   const core::MitosisConfig &backend_cfg,
                   const os::KernelConfig &kernel_cfg)
    : machine(machine_cfg), kind(k), backendCfg(backend_cfg),
      backend_(makeBackend(k, machine.physmem(), backend_cfg)),
      kernel(machine, *backend_, kernel_cfg)
{
    if (kind != BackendKind::Native)
        mitosis().attachObs(&machine.metrics(), &machine.tracer());
}

void
Universe::finalize()
{
    if (!proc)
        return;
    kernel.finalizeProcess(*proc);
    proc = nullptr;
}

core::MitosisBackend &
Universe::mitosis()
{
    MITOSIM_ASSERT(kind != BackendKind::Native,
                   "mitosis(): universe runs the native backend");
    return static_cast<core::MitosisBackend &>(*backend_);
}

std::unique_ptr<Universe>
Universe::fork(const os::KernelConfig &kernel_cfg) const
{
    MITOSIM_ASSERT(proc && workload && ctx,
                   "fork: donor universe was never captured");
    auto t0 = std::chrono::steady_clock::now();
    auto u = std::make_unique<Universe>(machine.config(), kind, backendCfg,
                                        kernel_cfg);
    auto t1 = std::chrono::steady_clock::now();
    u->machine.cloneStateFrom(machine);
    auto t2 = std::chrono::steady_clock::now();
    u->kernel.cloneStateFrom(kernel);
    auto t3 = std::chrono::steady_clock::now();
    if (std::getenv("MITOSIM_SNAPSHOT_TIMING")) {
        auto ms = [](auto a, auto b) {
            return std::chrono::duration<double, std::milli>(b - a).count();
        };
        std::fprintf(stderr, "[fork] ctor %.1f machine %.1f kernel %.1f\n",
                     ms(t0, t1), ms(t1, t2), ms(t2, t3));
    }
    switch (kind) {
      case BackendKind::Native:
        break; // stateless: only holds the PhysicalMemory reference
      case BackendKind::Mitosis:
        static_cast<core::MitosisBackend &>(*u->backend_)
            .cloneStateFrom(
                static_cast<const core::MitosisBackend &>(*backend_));
        break;
      case BackendKind::LazyMitosis:
        static_cast<core::LazyMitosisBackend &>(*u->backend_)
            .cloneStateFrom(
                static_cast<const core::LazyMitosisBackend &>(*backend_));
        break;
    }
    u->proc = u->kernel.findProcess(proc->id());
    MITOSIM_ASSERT(u->proc, "fork: populated process missing in clone");
    u->workload = workload->clone();
    u->ctx = std::make_unique<os::ExecContext>(u->kernel, *u->proc, *ctx);
    return u;
}

SnapshotCache &
SnapshotCache::instance()
{
    static SnapshotCache cache;
    return cache;
}

bool
SnapshotCache::enabled()
{
    const char *env = std::getenv("MITOSIM_SNAPSHOTS");
    return !(env && env[0] == '0' && env[1] == '\0');
}

std::unique_ptr<Universe>
SnapshotCache::populated(const std::string &key,
                         const os::KernelConfig &kernel_cfg,
                         const Builder &build)
{
    if (!enabled())
        return build();

    std::lock_guard<std::mutex> lock(mu);
    if (cap == 0) {
        cap = 32;
        if (const char *env = std::getenv("MITOSIM_SNAPSHOT_CACHE_CAP"))
            if (long v = std::atol(env); v > 0)
                cap = static_cast<std::size_t>(v);
    }
    auto it = donors.find(key);
    if (it == donors.end()) {
        std::unique_ptr<Universe> donor = build();
        MITOSIM_ASSERT(donor && donor->proc && donor->workload &&
                           donor->ctx,
                       "snapshot builder returned an uncaptured universe");
        it = donors.emplace(key, std::move(donor)).first;
        lru.push_front(key);
        evictIfNeeded();
    } else {
        lru.remove(key);
        lru.push_front(key);
    }
    return it->second->fork(kernel_cfg);
}

void
SnapshotCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    donors.clear();
    lru.clear();
}

void
SnapshotCache::evictIfNeeded()
{
    while (donors.size() > cap && !lru.empty()) {
        donors.erase(lru.back());
        lru.pop_back();
    }
}

} // namespace mitosim::snapshot
