/**
 * @file
 * Populate-phase checkpointing: capture a fully populated Machine +
 * Kernel once, then fork every bench job that shares the populate from
 * the captured state instead of re-faulting gigabytes of pages.
 *
 * A paper-scale matrix (registerMsMatrix, registerWmTrio, the THP aging
 * study) runs the *same* deterministic populate — same workload, seed,
 * footprint, placement policies, fragmentation — under many measurement
 * configs (replication mask on/off, AutoNUMA on/off, THP daemons
 * on/off, interferers). Everything that distinguishes those configs
 * acts strictly *after* populate, so the post-populate state is shared.
 * MitoSim state is small and explicit (frame allocators, PageMeta,
 * host-backed page-table pages, caches, TLBs, run queues), which makes
 * a checkpoint an exact deep copy rather than a serialization format:
 *
 *  - Universe owns one complete simulation stack (Machine, PV-Ops
 *    backend, Kernel, the populated Process, the Workload generator
 *    and its ExecContext) with the construction-order dependencies
 *    encoded once.
 *  - Universe::fork() builds a *fresh* stack from the same configs and
 *    restores every piece of donor state into it via the per-class
 *    cloneStateFrom members. Byte-identity rule: a forked job must
 *    report exactly what a from-scratch populate + run would.
 *  - SnapshotCache keys donors by a caller-built string of everything
 *    that influences populate. It ALWAYS hands out a fork and never
 *    the donor itself, so a job's starting state does not depend on
 *    whether it hit or missed, or on matrix execution order.
 *
 * MITOSIM_SNAPSHOTS=0 disables reuse (every request builds fresh);
 * the cache keeps at most a bounded number of live donors
 * (MITOSIM_SNAPSHOT_CACHE_CAP, default 32) and evicts least-recently
 * used — an evicted donor just costs one re-populate later.
 */

#ifndef MITOSIM_SNAPSHOT_SNAPSHOT_H
#define MITOSIM_SNAPSHOT_SNAPSHOT_H

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/core/lazy_backend.h"
#include "src/core/mitosis.h"
#include "src/os/exec_context.h"
#include "src/os/kernel.h"
#include "src/pvops/native_backend.h"
#include "src/sim/machine.h"
#include "src/workloads/workload.h"

namespace mitosim::snapshot
{

/** Which concrete PV-Ops backend a Universe runs on. */
enum class BackendKind
{
    Native,
    Mitosis,
    LazyMitosis,
};

/**
 * One complete simulation stack, owned together so the reference
 * dependencies (kernel on backend on machine) cannot dangle and the
 * whole populated state can be forked as a unit.
 */
class Universe
{
  public:
    Universe(const sim::MachineConfig &machine_cfg, BackendKind kind,
             const core::MitosisConfig &backend_cfg,
             const os::KernelConfig &kernel_cfg);

    /**
     * Fork: construct a fresh Universe from the same machine/backend
     * configs but @p kernel_cfg (a fork may diverge from its donor in
     * any kernel knob that does not act during populate, e.g. THP
     * daemon settings), then deep-copy all populated state across.
     * Requires a captured universe: proc, workload and ctx set.
     */
    std::unique_ptr<Universe>
    fork(const os::KernelConfig &kernel_cfg) const;

    /**
     * End-of-life teardown of the captured process via
     * Kernel::finalizeProcess (skipping the simulated free sweep that
     * nothing can observe). Jobs call this after recording metrics;
     * the destructor calls it for cached donors, so a bench process
     * never pays the multi-GiB teardown at exit either.
     */
    void finalize();

    ~Universe() { finalize(); }

    /** The backend as its concrete Mitosis type (kind != Native). */
    core::MitosisBackend &mitosis();

    sim::Machine machine;

  private:
    BackendKind kind;
    core::MitosisConfig backendCfg;
    std::unique_ptr<pvops::PvOps> backend_;

  public:
    os::Kernel kernel;

    /** The populated process (owned by kernel); set by the builder. */
    os::Process *proc = nullptr;

    /** The workload that populated proc; set by the builder. */
    std::unique_ptr<workloads::Workload> workload;

    /** Execution context driving proc's threads; set by the builder. */
    std::unique_ptr<os::ExecContext> ctx;
};

/**
 * Process-wide donor cache. Thread-safe: bench drivers run jobs on
 * worker threads (--jobs=N), and build/fork both mutate or read large
 * donor state, so the whole operation is serialized per cache.
 */
class SnapshotCache
{
  public:
    /** A builder constructs and populates a donor (cache miss path). */
    using Builder = std::function<std::unique_ptr<Universe>()>;

    /** The process-wide instance benches share. */
    static SnapshotCache &instance();

    /** False when MITOSIM_SNAPSHOTS=0 disables checkpoint reuse. */
    static bool enabled();

    /**
     * A universe populated per @p key: with snapshots enabled, build
     * the donor once via @p build and return a fork of it (always a
     * fork — hit and miss paths hand out identical state); disabled,
     * just build fresh. @p kernel_cfg configures the returned
     * universe's kernel (see Universe::fork).
     */
    std::unique_ptr<Universe> populated(const std::string &key,
                                        const os::KernelConfig &kernel_cfg,
                                        const Builder &build);

    /** Drop every donor (tests; also frees the host memory). */
    void clear();

  private:
    void evictIfNeeded();

    std::mutex mu;
    std::map<std::string, std::unique_ptr<Universe>> donors;
    std::list<std::string> lru; //!< front = most recently used
    std::size_t cap = 0;        //!< resolved from env on first use
};

} // namespace mitosim::snapshot

#endif // MITOSIM_SNAPSHOT_SNAPSHOT_H
