/**
 * @file
 * BTree: random index lookups over an implicit complete B-tree, the
 * paper's stand-in for database index probes (Table 1: 145 GB MS /
 * 35 GB WM). Each lookup is a short dependent pointer chase — one node
 * per tree level — whose nodes are scattered across the footprint, so a
 * lookup costs several TLB misses when the tree exceeds TLB reach.
 */

#ifndef MITOSIM_WORKLOADS_BTREE_H
#define MITOSIM_WORKLOADS_BTREE_H

#include <vector>

#include <memory>

#include "src/workloads/workload.h"

namespace mitosim::workloads
{

/** Random lookups over an implicit B-tree laid out level by level. */
class BTree : public Workload
{
  public:
    explicit BTree(const WorkloadParams &params) : Workload(params) {}

    const char *name() const override { return "btree"; }
    std::unique_ptr<Workload> clone() const override
    {
        return std::unique_ptr<Workload>(new BTree(*this));
    }
    void setup(os::ExecContext &ctx) override;
    void step(os::ExecContext &ctx, int tid) override;
    bool stepBatch(int tid, unsigned nsteps,
                   std::vector<os::BatchOp> &out) override;

    int depth() const { return static_cast<int>(levelBase.size()); }

  private:
    template <class Sink> void genStep(Sink &sink, int tid);

    static constexpr std::uint64_t NodeBytes = 256; //!< 4 cache lines
    static constexpr std::uint64_t Fanout = 16;

    VirtAddr base = 0;
    std::vector<std::uint64_t> levelBase;  //!< node index of level start
    std::vector<std::uint64_t> levelCount; //!< nodes per level
    std::vector<Rng> rngs;
};

} // namespace mitosim::workloads

#endif // MITOSIM_WORKLOADS_BTREE_H
