#include "src/workloads/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "src/base/logging.h"
#include "src/cache/set_assoc_cache.h"
#include "src/os/kernel.h"
#include "src/sim/core.h"
#include "src/sim/machine.h"
#include "src/sim/sharded.h"

namespace mitosim::workloads
{

bool
shardedEligible(os::ExecContext &ctx)
{
    os::Kernel &k = ctx.kernel();
    if (k.scheduler().timeShared())
        return false; // dispatch order depends on interleaved cycles
    if (ctx.thpTicksEnabled())
        return false; // daemons mutate shared state mid-run
    if (ctx.process().autoNumaEnabled)
        return false; // hint faults would abort every segment
    if (k.machine().tracer().enabled())
        return false; // traced runs take the literal per-op path so
                      // event order and timestamps stay identical
    int threads = ctx.numThreads();
    if (threads < 2)
        return false;
    // Pinned scheduling maps logical threads to distinct cores by
    // construction; verify anyway so a future sharing mode degrades
    // to the serial path instead of racing on per-core state.
    std::vector<bool> seen(
        static_cast<std::size_t>(k.machine().numCores()), false);
    for (int t = 0; t < threads; ++t) {
        auto c = static_cast<std::size_t>(ctx.coreOf(t));
        if (seen[c])
            return false;
        seen[c] = true;
    }
    return true;
}

void
runTraceSharded(os::ExecContext &ctx,
                const std::vector<os::TraceOp> &trace, int nshards)
{
    os::Kernel &k = ctx.kernel();
    sim::Machine &machine = k.machine();
    sim::MemoryHierarchy &hier = machine.hierarchy();
    int threads = ctx.numThreads();
    nshards = std::min(nshards, threads);

    // Slice the trace per logical thread; an op's trace index is its
    // global sequence number, so each slice is seq-ascending.
    std::vector<std::vector<std::uint64_t>> per_tid(
        static_cast<std::size_t>(threads));
    for (std::uint64_t i = 0; i < trace.size(); ++i)
        per_tid[static_cast<std::size_t>(trace[i].tid)].push_back(i);

    // Pre-segment backups: everything phase B can touch. A fault
    // aborts the segment, restores this, and replays serially.
    struct Backup
    {
        sim::Core::ShardBackup core;
        cache::SetAssocCache l1;
        sim::PerfCounters pc;
    };
    std::vector<Backup> backups;
    backups.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        CoreId c = ctx.coreOf(t);
        backups.push_back(Backup{machine.core(c).saveShardState(),
                                 hier.l1dOf(c),
                                 ctx.threadCounters(t)});
    }

    // Phase B: private replay. Each shard thread owns the logical
    // threads with tid % nshards == shard, hence their cores' TLB /
    // PWC / L1D exclusively; page tables are read through the const
    // view only. Shared effects land in per-tid sinks.
    std::vector<std::vector<sim::SharedOp>> sinks(
        static_cast<std::size_t>(threads));
    std::atomic<bool> aborted{false};
    {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(nshards));
        for (int s = 0; s < nshards; ++s) {
            pool.emplace_back([&, s] {
                for (int t = s; t < threads; t += nshards) {
                    sim::Core &core = machine.core(ctx.coreOf(t));
                    sim::PerfCounters &pc = ctx.threadCounters(t);
                    auto &sink = sinks[static_cast<std::size_t>(t)];
                    for (std::uint64_t seq :
                         per_tid[static_cast<std::size_t>(t)]) {
                        if (aborted.load(std::memory_order_relaxed))
                            return;
                        const os::TraceOp &op = trace[seq];
                        if (op.isCompute) {
                            pc.cycles += op.cycles;
                            pc.computeCycles += op.cycles;
                            continue;
                        }
                        if (!core.accessSharded(op.va, op.isWrite, pc,
                                                sink, seq)) {
                            aborted.store(true,
                                          std::memory_order_relaxed);
                            return;
                        }
                    }
                }
            });
        }
        for (auto &th : pool)
            th.join();
    }

    if (aborted.load()) {
        // Faults need the kernel's handler at the serial point of the
        // faulting access. Roll back to the segment start and replay
        // the trace through the normal pipeline; the workload already
        // advanced during recording and needs no rollback.
        for (int t = 0; t < threads; ++t) {
            CoreId c = ctx.coreOf(t);
            machine.core(c).restoreShardState(
                std::move(backups[static_cast<std::size_t>(t)].core));
            hier.l1dOf(c) = backups[static_cast<std::size_t>(t)].l1;
            ctx.threadCounters(t) =
                backups[static_cast<std::size_t>(t)].pc;
        }
        for (const os::TraceOp &op : trace) {
            if (op.isCompute)
                ctx.compute(op.tid, op.cycles);
            else
                ctx.access(op.tid, op.va, op.isWrite);
        }
        return;
    }

    // Phase C: k-way merge by ascending seq (unique per access), so
    // L3 / DRAM state and A/D bits evolve in the exact serial order.
    mem::PhysicalMemory &pm = machine.physmem();
    const numa::Topology &topo = machine.topology();
    // Same bucket the serial walker would have charged: the PT page's
    // socket vs the walking core's socket (walkCyclesAttr).
    auto remoteAttr = [&topo](const sim::SharedOp &op) {
        return static_cast<int>(topo.socketOfPfn(addrToPfn(op.pa)) !=
                                topo.socketOfCore(op.core));
    };
    std::vector<std::size_t> pos(static_cast<std::size_t>(threads), 0);
    while (true) {
        int best = -1;
        std::uint64_t best_seq = ~0ull;
        for (int t = 0; t < threads; ++t) {
            auto ti = static_cast<std::size_t>(t);
            if (pos[ti] < sinks[ti].size() &&
                sinks[ti][pos[ti]].seq < best_seq) {
                best_seq = sinks[ti][pos[ti]].seq;
                best = t;
            }
        }
        if (best < 0)
            break;
        auto bi = static_cast<std::size_t>(best);
        const sim::SharedOp &op = sinks[bi][pos[bi]++];
        sim::PerfCounters &pc = ctx.threadCounters(best);
        switch (op.kind) {
          case sim::SharedOp::L3Data: {
            Cycles lat = hier.accessBelowL1(op.core, op.pa,
                                            sim::AccessKind::Data, &pc);
            pc.dataStallCycles += lat;
            pc.cycles += lat;
            break;
          }
          case sim::SharedOp::L3Pt: {
            Cycles lat = hier.accessBelowL1(
                op.core, op.pa, sim::AccessKind::PageTable, &pc);
            pc.walkCycles += lat;
            pc.cycles += lat;
            pc.walkCyclesAttr[op.level - 1][remoteAttr(op)] += lat;
            if (op.inWindow)
                pc.postSwitchWalkCycles += lat;
            break;
          }
          case sim::SharedOp::AdSet: {
            Pfn table = addrToPfn(op.pa);
            auto idx = static_cast<unsigned>(
                (op.pa & (PageSize - 1)) / sizeof(std::uint64_t));
            std::uint64_t *slot = // the simulated MMU's deferred store
                &pm.table(table)[idx]; // pvops-seam: hardware A/D, not OS
            // An earlier serial-order walk may have set the bits
            // since phase B looked: hardware then reads them set and
            // stores nothing, exactly like the serial walker.
            if ((*slot & op.want) !=
                static_cast<std::uint64_t>(op.want)) {
                *slot |= op.want;
                pc.walkCycles += 1;
                pc.cycles += 1;
                pc.walkCyclesAttr[op.level - 1][remoteAttr(op)] += 1;
                if (op.inWindow)
                    pc.postSwitchWalkCycles += 1;
            }
            break;
          }
        }
    }
}

void
runInterleavedSharded(os::ExecContext &ctx, Workload &w,
                      std::uint64_t ops_per_thread, unsigned chunk,
                      int nshards)
{
    // Record in bounded segments so the trace memory stays flat on
    // long runs. A segment boundary cannot change results: each
    // segment's replay reproduces the exact serial machine state
    // before the next segment records.
    constexpr std::uint64_t SegmentOps = 1ull << 20;
    int threads = ctx.numThreads();
    MITOSIM_ASSERT(threads > 0, "runInterleaved with no threads");
    std::vector<std::uint64_t> done(static_cast<std::size_t>(threads),
                                    0);
    std::vector<os::TraceOp> trace;
    // Recording goes through the batched generator when available:
    // runBatch() is tracing here, so it replays the buffer per-op into
    // the trace — the recorded TraceOp stream is byte-identical to the
    // per-op loop's.
    std::vector<os::BatchOp> buf;
    bool batching = batchEnabled();
    bool any = true;
    while (any) {
        trace.clear();
        ctx.beginTrace(&trace);
        while (any && trace.size() < SegmentOps) {
            any = false;
            for (int t = 0; t < threads; ++t) {
                auto &d = done[static_cast<std::size_t>(t)];
                std::uint64_t end = std::min<std::uint64_t>(
                    ops_per_thread, d + chunk);
                if (batching && d < end) {
                    buf.clear();
                    if (w.stepBatch(t, static_cast<unsigned>(end - d),
                                    buf)) {
                        ctx.runBatch(t, buf.data(), buf.size());
                        d = end;
                    } else {
                        batching = false;
                    }
                }
                for (; d < end; ++d)
                    w.step(ctx, t);
                if (d < ops_per_thread)
                    any = true;
            }
        }
        ctx.endTrace();
        runTraceSharded(ctx, trace, nshards);
    }
}

} // namespace mitosim::workloads
