#include "canneal.h"

namespace mitosim::workloads
{

void
Canneal::setup(os::ExecContext &ctx)
{
    auto &k = ctx.kernel();
    os::MmapOptions opts;
    opts.thp = prm.thp;
    auto region = k.mmap(ctx.process(), prm.footprint, opts);
    elements = region.start;
    numElements = region.length / ElementBytes;

    // The netlist is parsed by worker threads in parallel, so pages are
    // first-touched in a shuffled order — the Figure 1 distribution
    // (86/68/71/75 % remote leaf PTEs across the four sockets).
    InitMode mode = prm.initModeOverridden ? prm.initMode
                                           : InitMode::Shuffled;
    populateRegion(ctx, region.start, region.length, mode);

    rngs.clear();
    for (int t = 0; t < ctx.numThreads(); ++t)
        rngs.push_back(threadRng(t));
}

template <class Sink>
void
Canneal::genStep(Sink &sink, int tid)
{
    auto &rng = rngs[static_cast<std::size_t>(tid)];

    // Pick two random elements, evaluate the swap cost by reading some
    // of each one's neighbours, then commit the swap (two writes).
    std::uint64_t a = rng.below(numElements);
    std::uint64_t b = rng.below(numElements);
    VirtAddr va_a = elements + a * ElementBytes;
    VirtAddr va_b = elements + b * ElementBytes;

    sink.access(va_a, false);
    sink.access(va_b, false);
    for (unsigned n = 0; n < NeighbourReads; ++n) {
        std::uint64_t na = rng.below(numElements);
        std::uint64_t nb = rng.below(numElements);
        sink.access(elements + na * ElementBytes, false);
        sink.access(elements + nb * ElementBytes, false);
    }
    sink.access(va_a, true);
    sink.access(va_b, true);
    sink.compute(14); // routing-cost arithmetic
}

void
Canneal::step(os::ExecContext &ctx, int tid)
{
    detail::CtxSink sink{ctx, tid};
    genStep(sink, tid);
}

bool
Canneal::stepBatch(int tid, unsigned nsteps, std::vector<os::BatchOp> &out)
{
    detail::BufSink sink{out};
    for (unsigned i = 0; i < nsteps; ++i)
        genStep(sink, tid);
    return true;
}

} // namespace mitosim::workloads
