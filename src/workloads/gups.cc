#include "gups.h"

namespace mitosim::workloads
{

void
Gups::setup(os::ExecContext &ctx)
{
    auto &k = ctx.kernel();
    os::MmapOptions opts;
    opts.thp = prm.thp;
    auto region = k.mmap(ctx.process(), prm.footprint, opts);
    base = region.start;
    words = region.length / sizeof(std::uint64_t);

    InitMode mode = prm.initModeOverridden ? prm.initMode
                                           : InitMode::Partitioned;
    populateRegion(ctx, region.start, region.length, mode);

    rngs.clear();
    for (int t = 0; t < ctx.numThreads(); ++t)
        rngs.push_back(threadRng(t));
}

void
Gups::step(os::ExecContext &ctx, int tid)
{
    // One RMW of a uniformly random word: XOR-update, as in HPCC
    // RandomAccess. The simulator charges the load+store as one write
    // reference (same line) plus a couple of ALU cycles.
    auto &rng = rngs[static_cast<std::size_t>(tid)];
    VirtAddr va = base + rng.below(words) * sizeof(std::uint64_t);
    ctx.access(tid, va, true);
    ctx.compute(tid, 4);
}

} // namespace mitosim::workloads
