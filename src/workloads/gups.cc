#include "gups.h"

namespace mitosim::workloads
{

void
Gups::setup(os::ExecContext &ctx)
{
    auto &k = ctx.kernel();
    os::MmapOptions opts;
    opts.thp = prm.thp;
    auto region = k.mmap(ctx.process(), prm.footprint, opts);
    base = region.start;
    words = region.length / sizeof(std::uint64_t);

    InitMode mode = prm.initModeOverridden ? prm.initMode
                                           : InitMode::Partitioned;
    populateRegion(ctx, region.start, region.length, mode);

    rngs.clear();
    for (int t = 0; t < ctx.numThreads(); ++t)
        rngs.push_back(threadRng(t));
}

template <class Sink>
void
Gups::genStep(Sink &sink, int tid)
{
    // One RMW of a uniformly random word: XOR-update, as in HPCC
    // RandomAccess. The simulator charges the load+store as one write
    // reference (same line) plus a couple of ALU cycles.
    auto &rng = rngs[static_cast<std::size_t>(tid)];
    VirtAddr va = base + rng.below(words) * sizeof(std::uint64_t);
    sink.access(va, true);
    sink.compute(4);
}

void
Gups::step(os::ExecContext &ctx, int tid)
{
    detail::CtxSink sink{ctx, tid};
    genStep(sink, tid);
}

bool
Gups::stepBatch(int tid, unsigned nsteps, std::vector<os::BatchOp> &out)
{
    detail::BufSink sink{out};
    for (unsigned i = 0; i < nsteps; ++i)
        genStep(sink, tid);
    return true;
}

} // namespace mitosim::workloads
