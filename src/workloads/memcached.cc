#include "memcached.h"

namespace mitosim::workloads
{

void
Memcached::setup(os::ExecContext &ctx)
{
    auto &k = ctx.kernel();
    os::MmapOptions opts;
    opts.thp = prm.thp;

    std::uint64_t bucket_bytes = alignUp(prm.footprint / 8, PageSize);
    std::uint64_t item_bytes = alignUp(prm.footprint - bucket_bytes,
                                       PageSize);
    auto rb = k.mmap(ctx.process(), bucket_bytes, opts);
    auto ri = k.mmap(ctx.process(), item_bytes, opts);
    buckets = rb.start;
    items = ri.start;
    numBuckets = bucket_bytes / BucketBytes;
    numItems = item_bytes / ItemBytes;

    // Parallel SET storm: pages first-touched by whichever worker got
    // the key — the Shuffled pattern behind Figure 3's 67%-remote dump.
    InitMode mode = prm.initModeOverridden ? prm.initMode
                                           : InitMode::Shuffled;
    populateRegion(ctx, rb.start, rb.length, mode);
    populateRegion(ctx, ri.start, ri.length, mode);

    rngs.clear();
    for (int t = 0; t < ctx.numThreads(); ++t)
        rngs.push_back(threadRng(t));
}

template <class Sink>
void
Memcached::genStep(Sink &sink, int tid)
{
    auto &rng = rngs[static_cast<std::size_t>(tid)];

    // Skewed key choice: 80% of requests hit 20% of the items.
    std::uint64_t item = rng.skewed(numItems);
    std::uint64_t bucket = (item * 0x9e3779b97f4a7c15ull) % numBuckets;
    bool is_set = rng.chance(SetRatio);

    sink.access(buckets + bucket * BucketBytes, false);
    VirtAddr item_va = items + item * ItemBytes;
    sink.access(item_va, false);              // item header
    sink.access(item_va + 128, is_set);       // value line
    sink.compute(12); // hashing, memcmp of the key
}

void
Memcached::step(os::ExecContext &ctx, int tid)
{
    detail::CtxSink sink{ctx, tid};
    genStep(sink, tid);
}

bool
Memcached::stepBatch(int tid, unsigned nsteps, std::vector<os::BatchOp> &out)
{
    detail::BufSink sink{out};
    for (unsigned i = 0; i < nsteps; ++i)
        genStep(sink, tid);
    return true;
}

} // namespace mitosim::workloads
