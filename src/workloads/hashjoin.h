/**
 * @file
 * HashJoin: the probe phase of a database hash join (Table 1: 480 GB MS /
 * 17 GB WM) — random bucket reads with occasional overflow-chain hops,
 * then a payload fetch from the tuple arena.
 */

#ifndef MITOSIM_WORKLOADS_HASHJOIN_H
#define MITOSIM_WORKLOADS_HASHJOIN_H

#include <vector>

#include <memory>

#include "src/workloads/workload.h"

namespace mitosim::workloads
{

/** Hash-table probing over a bucket array and a tuple arena. */
class HashJoin : public Workload
{
  public:
    explicit HashJoin(const WorkloadParams &params) : Workload(params) {}

    const char *name() const override { return "hashjoin"; }
    std::unique_ptr<Workload> clone() const override
    {
        return std::unique_ptr<Workload>(new HashJoin(*this));
    }
    void setup(os::ExecContext &ctx) override;
    void step(os::ExecContext &ctx, int tid) override;
    bool stepBatch(int tid, unsigned nsteps,
                   std::vector<os::BatchOp> &out) override;

  private:
    template <class Sink> void genStep(Sink &sink, int tid);

    static constexpr std::uint64_t BucketBytes = 64; //!< one line
    static constexpr std::uint64_t TupleBytes = 64;
    static constexpr double OverflowChainProb = 0.25;

    VirtAddr buckets = 0;
    VirtAddr tuples = 0;
    std::uint64_t numBuckets = 0;
    std::uint64_t numTuples = 0;
    std::vector<Rng> rngs;
};

} // namespace mitosim::workloads

#endif // MITOSIM_WORKLOADS_HASHJOIN_H
