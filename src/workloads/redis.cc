#include "redis.h"

namespace mitosim::workloads
{

void
Redis::setup(os::ExecContext &ctx)
{
    auto &k = ctx.kernel();
    os::MmapOptions opts;
    opts.thp = prm.thp;

    std::uint64_t per_key = EntryBytes + ObjBytes + ValueBytes;
    numKeys = prm.footprint / per_key;
    auto re = k.mmap(ctx.process(),
                     alignUp(numKeys * EntryBytes, PageSize), opts);
    auto ro = k.mmap(ctx.process(),
                     alignUp(numKeys * ObjBytes, PageSize), opts);
    auto rv = k.mmap(ctx.process(),
                     alignUp(numKeys * ValueBytes, PageSize), opts);
    entries = re.start;
    objects = ro.start;
    values = rv.start;

    InitMode mode = prm.initModeOverridden ? prm.initMode
                                           : InitMode::MainThread;
    populateRegion(ctx, re.start, re.length, mode);
    populateRegion(ctx, ro.start, ro.length, mode);
    populateRegion(ctx, rv.start, rv.length, mode);

    rngs.clear();
    for (int t = 0; t < ctx.numThreads(); ++t)
        rngs.push_back(threadRng(t));
}

template <class Sink>
void
Redis::genStep(Sink &sink, int tid)
{
    auto &rng = rngs[static_cast<std::size_t>(tid)];
    std::uint64_t key = rng.skewed(numKeys);
    bool is_write = rng.chance(WriteRatio);

    // The allocator scatters the three pieces of a key across arenas, so
    // the chase spans three pages: dictEntry -> robj -> sds bytes.
    std::uint64_t entry = (key * 0x9e3779b97f4a7c15ull) % numKeys;
    sink.access(entries + entry * EntryBytes, false);
    std::uint64_t obj = (key * 0xc2b2ae3d27d4eb4full) % numKeys;
    sink.access(objects + obj * ObjBytes, false);
    VirtAddr value_va = values + key * ValueBytes;
    sink.access(value_va, is_write);
    sink.access(value_va + 128, is_write);
    sink.compute(15); // protocol parse + hash
}

void
Redis::step(os::ExecContext &ctx, int tid)
{
    detail::CtxSink sink{ctx, tid};
    genStep(sink, tid);
}

bool
Redis::stepBatch(int tid, unsigned nsteps, std::vector<os::BatchOp> &out)
{
    detail::BufSink sink{out};
    for (unsigned i = 0; i < nsteps; ++i)
        genStep(sink, tid);
    return true;
}

} // namespace mitosim::workloads
