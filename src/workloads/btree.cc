#include "btree.h"

namespace mitosim::workloads
{

void
BTree::setup(os::ExecContext &ctx)
{
    // Size the implicit tree to fill the footprint: levels of Fanout^d
    // nodes until the budget is spent. The leaf level dominates.
    std::uint64_t budget_nodes = prm.footprint / NodeBytes;
    levelBase.clear();
    levelCount.clear();
    std::uint64_t level_nodes = 1;
    std::uint64_t used = 0;
    while (used + level_nodes <= budget_nodes) {
        levelBase.push_back(used);
        levelCount.push_back(level_nodes);
        used += level_nodes;
        if (level_nodes > budget_nodes / Fanout)
            break;
        level_nodes *= Fanout;
    }

    auto &k = ctx.kernel();
    os::MmapOptions opts;
    opts.thp = prm.thp;
    auto region = k.mmap(ctx.process(), used * NodeBytes, opts);
    base = region.start;

    InitMode mode = prm.initModeOverridden ? prm.initMode
                                           : InitMode::Partitioned;
    populateRegion(ctx, region.start, region.length, mode);

    rngs.clear();
    for (int t = 0; t < ctx.numThreads(); ++t)
        rngs.push_back(threadRng(t));
}

template <class Sink>
void
BTree::genStep(Sink &sink, int tid)
{
    // One lookup: descend from the root, reading one node per level.
    // The child choice is a hash of (key, level) so paths are uniform
    // and deterministic. Each node visit touches two of its cache lines
    // (keys then the child pointer slot).
    auto &rng = rngs[static_cast<std::size_t>(tid)];
    std::uint64_t key = rng.next();
    std::uint64_t idx = 0;
    for (std::size_t level = 0; level < levelBase.size(); ++level) {
        std::uint64_t node = levelBase[level] + idx;
        VirtAddr va = base + node * NodeBytes;
        sink.access(va, false);
        sink.access(va + 128, false);
        sink.compute(6); // key comparisons
        if (level + 1 < levelBase.size()) {
            std::uint64_t child_slot =
                (key >> (level * 4)) % Fanout;
            idx = idx * Fanout + child_slot;
            if (idx >= levelCount[level + 1])
                idx %= levelCount[level + 1];
        }
    }
}

void
BTree::step(os::ExecContext &ctx, int tid)
{
    detail::CtxSink sink{ctx, tid};
    genStep(sink, tid);
}

bool
BTree::stepBatch(int tid, unsigned nsteps, std::vector<os::BatchOp> &out)
{
    detail::BufSink sink{out};
    for (unsigned i = 0; i < nsteps; ++i)
        genStep(sink, tid);
    return true;
}

} // namespace mitosim::workloads
