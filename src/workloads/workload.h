/**
 * @file
 * Workload framework: deterministic access-stream generators standing in
 * for the paper's big-memory applications (Table 1).
 *
 * A workload allocates simulated virtual memory, populates it with a
 * characteristic first-touch pattern, and then emits one "operation" per
 * step() call — a short dependent chain of loads/stores whose locality
 * structure matches the real application (random 8-byte updates for GUPS,
 * pointer chases for BTree/Redis, streaming sweeps for LibLinear, ...).
 * Footprints are scaled from the paper's 17-480 GB to the simulated
 * machine (see DESIGN.md), preserving the footprint : TLB-reach : L3
 * ratios that drive the paper's results.
 */

#ifndef MITOSIM_WORKLOADS_WORKLOAD_H
#define MITOSIM_WORKLOADS_WORKLOAD_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/os/exec_context.h"

namespace mitosim::workloads
{

/** How setup() first-touches memory (determines PT/data placement). */
enum class InitMode
{
    MainThread,  //!< thread 0 touches everything (Graph500-style skew)
    Partitioned, //!< thread t touches its contiguous partition
    Shuffled,    //!< threads touch pages in hash-random order (Memcached)
};

/** Common knobs for all workloads. */
struct WorkloadParams
{
    std::uint64_t footprint = 256ull << 20; //!< total data footprint
    std::uint64_t seed = 42;
    bool thp = false;                       //!< back memory with 2 MB pages
    InitMode initMode = InitMode::Partitioned;
    bool initModeOverridden = false; //!< set to keep workload default
};

namespace detail
{

/** step() sink: issue each generated op directly against the context. */
struct CtxSink
{
    os::ExecContext &ctx;
    int tid;

    void
    access(VirtAddr va, bool is_write)
    {
        ctx.access(tid, va, is_write);
    }

    void compute(Cycles c) { ctx.compute(tid, c); }
};

/** stepBatch() sink: defer generated ops into a BatchOp buffer. */
struct BufSink
{
    std::vector<os::BatchOp> &out;

    void
    access(VirtAddr va, bool is_write)
    {
        out.push_back(os::BatchOp{va, 0, is_write, false});
    }

    void compute(Cycles c) { out.push_back(os::BatchOp{0, c, false, true}); }
};

} // namespace detail

/** Base class for all workloads. */
class Workload
{
  public:
    explicit Workload(const WorkloadParams &params) : prm(params) {}
    virtual ~Workload() = default;

    Workload &operator=(const Workload &) = delete;

    virtual const char *name() const = 0;

    /**
     * Deep copy (same dynamic type, same post-setup state: region
     * addresses, per-thread RNG streams, cursors). The populate
     * snapshot cache forks workloads with this right after setup() so
     * every forked run replays the donor's exact access stream.
     */
    virtual std::unique_ptr<Workload> clone() const = 0;

    /**
     * Allocate and populate memory. Threads must already be attached to
     * @p ctx; placement follows the process's data/PT policies.
     */
    virtual void setup(os::ExecContext &ctx) = 0;

    /** Execute one operation on logical thread @p tid. */
    virtual void step(os::ExecContext &ctx, int tid) = 0;

    /**
     * Batched stepping: advance thread @p tid by @p nsteps operations,
     * appending the ops each step() would have issued to @p out instead
     * of executing them (the caller replays the run through
     * ExecContext::runBatch). Identical to @p nsteps step() calls by
     * construction: both entry points run the same generator body
     * through a different sink (detail::CtxSink vs detail::BufSink).
     * Deferred replay is legal because generators never consume the
     * simulated access latency — they are pure RNG/cursor machines.
     * @return false if this workload has no batched generator; the
     * caller must then fall back to per-op step().
     */
    virtual bool
    stepBatch(int tid, unsigned nsteps, std::vector<os::BatchOp> &out)
    {
        (void)tid;
        (void)nsteps;
        (void)out;
        return false;
    }

    /** Reasonable per-thread operation count for benches. */
    virtual std::uint64_t defaultOps() const { return 100000; }

    const WorkloadParams &params() const { return prm; }

  protected:
    /** Subclass clone() implementations copy through this. */
    Workload(const Workload &) = default;

    /** Per-thread deterministic RNG. */
    Rng
    threadRng(int tid) const
    {
        return Rng(prm.seed * 0x9e3779b97f4a7c15ull +
                   static_cast<std::uint64_t>(tid) + 1);
    }

    /**
     * First-touch @p region according to @p mode, issuing real accesses
     * (and hence demand faults) from the owning threads' cores.
     */
    void populateRegion(os::ExecContext &ctx, VirtAddr start,
                        std::uint64_t length, InitMode mode) const;

    WorkloadParams prm;
};

/**
 * Host-side toggle for the batched hot path (generate a short run of
 * ops with Workload::stepBatch, replay through ExecContext::runBatch).
 * On by default; MITOSIM_BATCH=0 forces the per-op reference path so
 * CI can diff the two for byte-identical reports. Read once from the
 * environment: flipping it mid-run is not a supported mode.
 */
bool batchEnabled();

/**
 * Test-only override of batchEnabled(): 0 forces the per-op reference
 * path, 1 forces the batched path, -1 restores the environment
 * setting. The batched-stepping property test compares both paths in
 * one process; production code never calls this.
 */
void setBatchEnabledForTest(int enabled);

/**
 * Run @p ops_per_thread operations per thread, interleaved round-robin in
 * chunks so same-socket threads share cache state realistically.
 */
void runInterleaved(os::ExecContext &ctx, Workload &w,
                    std::uint64_t ops_per_thread, unsigned chunk = 32);

/** Factory: construct a workload by lower-case name ("gups", ...). */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadParams &params);

/** All registered workload names. */
std::vector<std::string> workloadNames();

} // namespace mitosim::workloads

#endif // MITOSIM_WORKLOADS_WORKLOAD_H
