/**
 * @file
 * PageRank over a synthetic power-law graph (GAP-style, Table 1: 69 GB,
 * WM scenario). Per step one vertex is processed: its edge list is read
 * sequentially, the neighbours' ranks are gathered randomly, and the new
 * rank is written — a sequential/random mix typical of graph analytics.
 */

#ifndef MITOSIM_WORKLOADS_PAGERANK_H
#define MITOSIM_WORKLOADS_PAGERANK_H

#include <vector>

#include <memory>

#include "src/workloads/workload.h"

namespace mitosim::workloads
{

/** Pull-style PageRank iteration stream. */
class PageRank : public Workload
{
  public:
    explicit PageRank(const WorkloadParams &params) : Workload(params) {}

    const char *name() const override { return "pagerank"; }
    std::unique_ptr<Workload> clone() const override
    {
        return std::unique_ptr<Workload>(new PageRank(*this));
    }
    void setup(os::ExecContext &ctx) override;
    void step(os::ExecContext &ctx, int tid) override;
    bool stepBatch(int tid, unsigned nsteps,
                   std::vector<os::BatchOp> &out) override;

  private:
    template <class Sink> void genStep(Sink &sink, int tid);

    static constexpr std::uint64_t AvgDegree = 16;
    static constexpr std::uint64_t EdgeBytes = 8;
    static constexpr std::uint64_t RankBytes = 8;

    VirtAddr edges = 0;
    VirtAddr ranks = 0;
    std::uint64_t numVertices = 0;
    std::uint64_t numEdges = 0;
    std::vector<std::uint64_t> cursor; //!< per-thread vertex position
    std::vector<Rng> rngs;
};

} // namespace mitosim::workloads

#endif // MITOSIM_WORKLOADS_PAGERANK_H
