#include "xsbench.h"

namespace mitosim::workloads
{

void
XsBench::setup(os::ExecContext &ctx)
{
    auto &k = ctx.kernel();
    os::MmapOptions opts;
    opts.thp = prm.thp;

    std::uint64_t grid_bytes = alignUp(prm.footprint / 4, PageSize);
    std::uint64_t xs_bytes = alignUp(prm.footprint - grid_bytes, PageSize);
    auto rg = k.mmap(ctx.process(), grid_bytes, opts);
    auto rx = k.mmap(ctx.process(), xs_bytes, opts);
    grid = rg.start;
    xs = rx.start;
    gridEntries = grid_bytes / GridEntryBytes;
    xsRows = xs_bytes / XsRowBytes;

    // The grid is generated once up front by the main rank — the classic
    // first-touch skew case (§3.1 observation 2).
    InitMode mode = prm.initModeOverridden ? prm.initMode
                                           : InitMode::MainThread;
    populateRegion(ctx, rg.start, rg.length, mode);
    populateRegion(ctx, rx.start, rx.length, mode);

    rngs.clear();
    for (int t = 0; t < ctx.numThreads(); ++t)
        rngs.push_back(threadRng(t));
}

template <class Sink>
void
XsBench::genStep(Sink &sink, int tid)
{
    auto &rng = rngs[static_cast<std::size_t>(tid)];

    // Binary search over the energy grid: log2 steps, each halving the
    // range — the early probes are cache-resident, the late ones are
    // effectively random page touches.
    std::uint64_t lo = 0;
    std::uint64_t hi = gridEntries;
    std::uint64_t key = rng.below(gridEntries);
    int probes = 0;
    while (lo + 1 < hi && probes < 24) {
        std::uint64_t mid = lo + (hi - lo) / 2;
        sink.access(grid + mid * GridEntryBytes, false);
        sink.compute(2);
        if (mid <= key)
            lo = mid;
        else
            hi = mid;
        ++probes;
    }

    // Gather the per-nuclide cross-section rows for the found bucket.
    for (unsigned n = 0; n < NuclidesPerLookup; ++n) {
        std::uint64_t row =
            (key * 0x9e3779b97f4a7c15ull + n * 0xc2b2ae3d27d4eb4full) %
            xsRows;
        sink.access(xs + row * XsRowBytes, false);
    }
    sink.compute(20); // interpolation math
}

void
XsBench::step(os::ExecContext &ctx, int tid)
{
    detail::CtxSink sink{ctx, tid};
    genStep(sink, tid);
}

bool
XsBench::stepBatch(int tid, unsigned nsteps, std::vector<os::BatchOp> &out)
{
    detail::BufSink sink{out};
    for (unsigned i = 0; i < nsteps; ++i)
        genStep(sink, tid);
    return true;
}

} // namespace mitosim::workloads
