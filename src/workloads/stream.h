/**
 * @file
 * STREAM triad: a(i) = b(i) + s*c(i), purely sequential, bandwidth-bound.
 * The paper uses STREAM as the *interference* process that "hogs local
 * memory bandwidth" on a socket (§3.2); MitoSim models that pressure via
 * the topology's interference flag, but STREAM is also available as a
 * regular workload for tests and examples.
 */

#ifndef MITOSIM_WORKLOADS_STREAM_H
#define MITOSIM_WORKLOADS_STREAM_H

#include <vector>

#include <memory>

#include "src/workloads/workload.h"

namespace mitosim::workloads
{

/** Sequential triad sweeps over three arrays. */
class Stream : public Workload
{
  public:
    explicit Stream(const WorkloadParams &params) : Workload(params) {}

    const char *name() const override { return "stream"; }
    std::unique_ptr<Workload> clone() const override
    {
        return std::unique_ptr<Workload>(new Stream(*this));
    }
    void setup(os::ExecContext &ctx) override;
    void step(os::ExecContext &ctx, int tid) override;
    bool stepBatch(int tid, unsigned nsteps,
                   std::vector<os::BatchOp> &out) override;

  private:
    template <class Sink> void genStep(Sink &sink, int tid);

    VirtAddr a = 0;
    VirtAddr b = 0;
    VirtAddr c = 0;
    std::uint64_t words = 0;
    std::vector<std::uint64_t> cursor; //!< per-thread position
};

} // namespace mitosim::workloads

#endif // MITOSIM_WORKLOADS_STREAM_H
