/**
 * @file
 * LibLinear: dual coordinate-descent training of a linear classifier
 * (Table 1: 67 GB, WM scenario). Streams one sample's feature vector
 * sequentially, then updates the weight vector at that sample's sparse
 * nonzero indices — a streaming-heavy workload with a modest random
 * component, hence the smallest remote-page-table penalty in Figure 10a.
 */

#ifndef MITOSIM_WORKLOADS_LIBLINEAR_H
#define MITOSIM_WORKLOADS_LIBLINEAR_H

#include <vector>

#include <memory>

#include "src/workloads/workload.h"

namespace mitosim::workloads
{

/** Feature-matrix sweeps with sparse weight updates. */
class LibLinear : public Workload
{
  public:
    explicit LibLinear(const WorkloadParams &params) : Workload(params) {}

    const char *name() const override { return "liblinear"; }
    std::unique_ptr<Workload> clone() const override
    {
        return std::unique_ptr<Workload>(new LibLinear(*this));
    }
    void setup(os::ExecContext &ctx) override;
    void step(os::ExecContext &ctx, int tid) override;
    bool stepBatch(int tid, unsigned nsteps,
                   std::vector<os::BatchOp> &out) override;

  private:
    template <class Sink> void genStep(Sink &sink, int tid);

    static constexpr std::uint64_t SampleBytes = 512; //!< 8 lines/sample
    static constexpr unsigned SparseUpdates = 3;

    VirtAddr features = 0;
    VirtAddr weights = 0;
    std::uint64_t numSamples = 0;
    std::uint64_t numWeights = 0;
    std::vector<std::uint64_t> cursor;
    std::vector<Rng> rngs;
};

} // namespace mitosim::workloads

#endif // MITOSIM_WORKLOADS_LIBLINEAR_H
