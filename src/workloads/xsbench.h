/**
 * @file
 * XSBench: the Monte Carlo neutronics macroscopic-cross-section lookup
 * kernel (Table 1: 440 GB MS / 85 GB WM). Each lookup binary-searches the
 * unionized energy grid, then gathers per-nuclide cross-section rows —
 * a burst of dependent, effectively random reads.
 */

#ifndef MITOSIM_WORKLOADS_XSBENCH_H
#define MITOSIM_WORKLOADS_XSBENCH_H

#include <vector>

#include <memory>

#include "src/workloads/workload.h"

namespace mitosim::workloads
{

/** Unionized-grid cross-section lookups. */
class XsBench : public Workload
{
  public:
    explicit XsBench(const WorkloadParams &params) : Workload(params) {}

    const char *name() const override { return "xsbench"; }
    std::unique_ptr<Workload> clone() const override
    {
        return std::unique_ptr<Workload>(new XsBench(*this));
    }
    void setup(os::ExecContext &ctx) override;
    void step(os::ExecContext &ctx, int tid) override;
    bool stepBatch(int tid, unsigned nsteps,
                   std::vector<os::BatchOp> &out) override;

  private:
    template <class Sink> void genStep(Sink &sink, int tid);

    static constexpr std::uint64_t GridEntryBytes = 64;
    static constexpr std::uint64_t XsRowBytes = 64;
    static constexpr unsigned NuclidesPerLookup = 5;

    VirtAddr grid = 0;
    VirtAddr xs = 0;
    std::uint64_t gridEntries = 0;
    std::uint64_t xsRows = 0;
    std::vector<Rng> rngs;
};

} // namespace mitosim::workloads

#endif // MITOSIM_WORKLOADS_XSBENCH_H
