#include "hashjoin.h"

namespace mitosim::workloads
{

void
HashJoin::setup(os::ExecContext &ctx)
{
    auto &k = ctx.kernel();
    os::MmapOptions opts;
    opts.thp = prm.thp;

    // 1/4 buckets, 3/4 tuples of the footprint.
    std::uint64_t bucket_bytes = alignUp(prm.footprint / 4, PageSize);
    std::uint64_t tuple_bytes = alignUp(prm.footprint - bucket_bytes,
                                        PageSize);
    auto rb = k.mmap(ctx.process(), bucket_bytes, opts);
    auto rt = k.mmap(ctx.process(), tuple_bytes, opts);
    buckets = rb.start;
    tuples = rt.start;
    numBuckets = bucket_bytes / BucketBytes;
    numTuples = tuple_bytes / TupleBytes;

    InitMode mode = prm.initModeOverridden ? prm.initMode
                                           : InitMode::Shuffled;
    populateRegion(ctx, rb.start, rb.length, mode);
    populateRegion(ctx, rt.start, rt.length, mode);

    rngs.clear();
    for (int t = 0; t < ctx.numThreads(); ++t)
        rngs.push_back(threadRng(t));
}

template <class Sink>
void
HashJoin::genStep(Sink &sink, int tid)
{
    auto &rng = rngs[static_cast<std::size_t>(tid)];

    // Probe: hash the key to a bucket, sometimes follow one overflow
    // bucket, then fetch the matching tuple's payload.
    std::uint64_t bucket = rng.below(numBuckets);
    sink.access(buckets + bucket * BucketBytes, false);
    if (rng.chance(OverflowChainProb)) {
        std::uint64_t next = rng.below(numBuckets);
        sink.access(buckets + next * BucketBytes, false);
    }
    std::uint64_t tuple = rng.below(numTuples);
    sink.access(tuples + tuple * TupleBytes, false);
    sink.compute(8); // hash + key compare
}

void
HashJoin::step(os::ExecContext &ctx, int tid)
{
    detail::CtxSink sink{ctx, tid};
    genStep(sink, tid);
}

bool
HashJoin::stepBatch(int tid, unsigned nsteps, std::vector<os::BatchOp> &out)
{
    detail::BufSink sink{out};
    for (unsigned i = 0; i < nsteps; ++i)
        genStep(sink, tid);
    return true;
}

} // namespace mitosim::workloads
