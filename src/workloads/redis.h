/**
 * @file
 * Redis: single-threaded-style key-value store traffic (Table 1: 75 GB,
 * WM scenario). Deeper pointer chase than Memcached: dict entry ->
 * object header -> value string, all in different arenas.
 */

#ifndef MITOSIM_WORKLOADS_REDIS_H
#define MITOSIM_WORKLOADS_REDIS_H

#include <vector>

#include <memory>

#include "src/workloads/workload.h"

namespace mitosim::workloads
{

/** Dict-entry / robj / sds chase per GET. */
class Redis : public Workload
{
  public:
    explicit Redis(const WorkloadParams &params) : Workload(params) {}

    const char *name() const override { return "redis"; }
    std::unique_ptr<Workload> clone() const override
    {
        return std::unique_ptr<Workload>(new Redis(*this));
    }
    void setup(os::ExecContext &ctx) override;
    void step(os::ExecContext &ctx, int tid) override;
    bool stepBatch(int tid, unsigned nsteps,
                   std::vector<os::BatchOp> &out) override;

  private:
    template <class Sink> void genStep(Sink &sink, int tid);

    static constexpr std::uint64_t EntryBytes = 64;
    static constexpr std::uint64_t ObjBytes = 64;
    static constexpr std::uint64_t ValueBytes = 256;
    static constexpr double WriteRatio = 0.05;

    VirtAddr entries = 0;
    VirtAddr objects = 0;
    VirtAddr values = 0;
    std::uint64_t numKeys = 0;
    std::vector<Rng> rngs;
};

} // namespace mitosim::workloads

#endif // MITOSIM_WORKLOADS_REDIS_H
