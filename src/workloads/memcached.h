/**
 * @file
 * Memcached: GET-dominated key-value caching (Table 1: 350 GB, the
 * Figure 3 dump subject). Skewed key popularity, a hash-bucket read, an
 * item-header read and a value read; 10% SETs write the value.
 */

#ifndef MITOSIM_WORKLOADS_MEMCACHED_H
#define MITOSIM_WORKLOADS_MEMCACHED_H

#include <vector>

#include <memory>

#include "src/workloads/workload.h"

namespace mitosim::workloads
{

/** Key-value cache traffic with a hot set. */
class Memcached : public Workload
{
  public:
    explicit Memcached(const WorkloadParams &params) : Workload(params) {}

    const char *name() const override { return "memcached"; }
    std::unique_ptr<Workload> clone() const override
    {
        return std::unique_ptr<Workload>(new Memcached(*this));
    }
    void setup(os::ExecContext &ctx) override;
    void step(os::ExecContext &ctx, int tid) override;
    bool stepBatch(int tid, unsigned nsteps,
                   std::vector<os::BatchOp> &out) override;

  private:
    template <class Sink> void genStep(Sink &sink, int tid);

    static constexpr std::uint64_t BucketBytes = 64;
    static constexpr std::uint64_t ItemBytes = 512; //!< header + value
    static constexpr double SetRatio = 0.10;

    VirtAddr buckets = 0;
    VirtAddr items = 0;
    std::uint64_t numBuckets = 0;
    std::uint64_t numItems = 0;
    std::vector<Rng> rngs;
};

} // namespace mitosim::workloads

#endif // MITOSIM_WORKLOADS_MEMCACHED_H
