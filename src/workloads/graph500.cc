#include "graph500.h"

namespace mitosim::workloads
{

void
Graph500::setup(os::ExecContext &ctx)
{
    auto &k = ctx.kernel();
    os::MmapOptions opts;
    opts.thp = prm.thp;

    numVertices = prm.footprint / (AvgDegree * EdgeBytes + 8);
    if (numVertices == 0)
        numVertices = 1;
    auto re = k.mmap(ctx.process(),
                     alignUp(numVertices * AvgDegree * EdgeBytes,
                             PageSize),
                     opts);
    auto rv = k.mmap(ctx.process(), alignUp(numVertices * 8, PageSize),
                     opts);
    edges = re.start;
    visited = rv.start;

    // Graph generation happens on the main rank: classic skew.
    InitMode mode = prm.initModeOverridden ? prm.initMode
                                           : InitMode::MainThread;
    populateRegion(ctx, re.start, re.length, mode);
    populateRegion(ctx, rv.start, rv.length, mode);

    rngs.clear();
    for (int t = 0; t < ctx.numThreads(); ++t)
        rngs.push_back(threadRng(t));
}

template <class Sink>
void
Graph500::genStep(Sink &sink, int tid)
{
    auto &rng = rngs[static_cast<std::size_t>(tid)];

    // Explore one frontier vertex: read its edge slice sequentially,
    // then check-and-set a few random neighbours in the visited map
    // (Kronecker targets are skewed towards hubs).
    std::uint64_t v = rng.skewed(numVertices, 0.15, 0.6);
    VirtAddr edge_va = edges + v * AvgDegree * EdgeBytes;
    sink.access(edge_va, false);
    sink.access(edge_va + 64, false);
    for (int n = 0; n < 4; ++n) {
        std::uint64_t u = rng.skewed(numVertices, 0.15, 0.6);
        sink.access(visited + u * 8, true);
    }
    sink.compute(8);
}

void
Graph500::step(os::ExecContext &ctx, int tid)
{
    detail::CtxSink sink{ctx, tid};
    genStep(sink, tid);
}

bool
Graph500::stepBatch(int tid, unsigned nsteps, std::vector<os::BatchOp> &out)
{
    detail::BufSink sink{out};
    for (unsigned i = 0; i < nsteps; ++i)
        genStep(sink, tid);
    return true;
}

} // namespace mitosim::workloads
