/**
 * @file
 * GUPS (Giga Updates Per Second), the HPC Challenge RandomAccess kernel:
 * read-modify-write of random 8-byte words across one huge table. The
 * paper's most TLB-hostile workload (64 GB footprint, WM scenario;
 * headline 3.24x win for page-table migration in Figure 1).
 */

#ifndef MITOSIM_WORKLOADS_GUPS_H
#define MITOSIM_WORKLOADS_GUPS_H

#include <vector>

#include <memory>

#include "src/workloads/workload.h"

namespace mitosim::workloads
{

/** Random 8-byte updates over a single table. */
class Gups : public Workload
{
  public:
    explicit Gups(const WorkloadParams &params) : Workload(params) {}

    const char *name() const override { return "gups"; }
    std::unique_ptr<Workload> clone() const override
    {
        return std::unique_ptr<Workload>(new Gups(*this));
    }
    void setup(os::ExecContext &ctx) override;
    void step(os::ExecContext &ctx, int tid) override;
    bool stepBatch(int tid, unsigned nsteps,
                   std::vector<os::BatchOp> &out) override;

  private:
    template <class Sink> void genStep(Sink &sink, int tid);

    VirtAddr base = 0;
    std::uint64_t words = 0;
    std::vector<Rng> rngs;
};

} // namespace mitosim::workloads

#endif // MITOSIM_WORKLOADS_GUPS_H
