#include "workload.h"

#include <cstdlib>
#include <vector>

#include "src/base/logging.h"
#include "src/sim/sharded.h"
#include "src/workloads/sharded_engine.h"
#include "src/workloads/btree.h"
#include "src/workloads/canneal.h"
#include "src/workloads/graph500.h"
#include "src/workloads/gups.h"
#include "src/workloads/hashjoin.h"
#include "src/workloads/liblinear.h"
#include "src/workloads/memcached.h"
#include "src/workloads/pagerank.h"
#include "src/workloads/redis.h"
#include "src/workloads/stream.h"
#include "src/workloads/xsbench.h"

namespace mitosim::workloads
{

namespace
{

/** setBatchEnabledForTest() override; -1 defers to the environment. */
int batchOverride = -1;

} // namespace

bool
batchEnabled()
{
    if (batchOverride >= 0)
        return batchOverride != 0;
    static const bool on = [] {
        const char *e = std::getenv("MITOSIM_BATCH");
        return e == nullptr || *e != '0';
    }();
    return on;
}

void
setBatchEnabledForTest(int enabled)
{
    batchOverride = enabled;
}

namespace
{

/** Pages emitted per runBatch() call while populating. */
constexpr std::uint64_t PopulateBatch = 4096;

} // namespace

void
Workload::populateRegion(os::ExecContext &ctx, VirtAddr start,
                         std::uint64_t length, InitMode mode) const
{
    int threads = ctx.numThreads();
    MITOSIM_ASSERT(threads > 0, "populateRegion with no threads");
    std::uint64_t granule = prm.thp ? LargePageSize : PageSize;
    std::uint64_t pages = (length + granule - 1) / granule;

    // First-touch writes by one thread over a contiguous range batch
    // trivially: same ops, same order, replayed per-thread through
    // runBatch. (Shuffled cannot: its *cross-thread* touch order is
    // what decides first-touch placement, and runBatch is per-thread.)
    auto touch_range = [&](int t, std::uint64_t lo, std::uint64_t hi) {
        if (!batchEnabled()) {
            for (std::uint64_t p = lo; p < hi; ++p)
                ctx.access(t, start + p * granule, true);
            return;
        }
        std::vector<os::BatchOp> buf;
        buf.reserve(static_cast<std::size_t>(
            std::min(hi - lo, PopulateBatch)));
        for (std::uint64_t p = lo; p < hi;) {
            std::uint64_t end = std::min(hi, p + PopulateBatch);
            buf.clear();
            for (; p < end; ++p)
                buf.push_back(
                    os::BatchOp{start + p * granule, 0, true, false});
            ctx.runBatch(t, buf.data(), buf.size());
        }
    };

    switch (mode) {
      case InitMode::MainThread:
        touch_range(0, 0, pages);
        break;

      case InitMode::Partitioned: {
        std::uint64_t per = (pages + threads - 1) /
                            static_cast<std::uint64_t>(threads);
        for (int t = 0; t < threads; ++t) {
            std::uint64_t lo = per * static_cast<std::uint64_t>(t);
            std::uint64_t hi = std::min(pages, lo + per);
            touch_range(t, lo, hi);
        }
        break;
      }

      case InitMode::Shuffled: {
        // Hash-random assignment of pages to threads: models parallel
        // initialization where adjacent pages are touched by different
        // threads (Memcached-style SETs). The *first* toucher of a page
        // determines both the data frame and, for the first page of each
        // 2 MB PT range, the page-table page socket (§3.1 observation 1).
        Rng rng(prm.seed ^ 0xa5a5a5a5ull);
        for (std::uint64_t p = 0; p < pages; ++p) {
            int t = static_cast<int>(rng.below(
                static_cast<std::uint64_t>(threads)));
            ctx.access(t, start + p * granule, true);
        }
        break;
      }
    }
}

void
runInterleaved(os::ExecContext &ctx, Workload &w,
               std::uint64_t ops_per_thread, unsigned chunk)
{
    int threads = ctx.numThreads();
    MITOSIM_ASSERT(threads > 0, "runInterleaved with no threads");

    // --sim-threads > 1: shard the simulation across host threads when
    // the run is eligible (byte-identical by construction). A context
    // already recording is mid-phase-A of an outer sharded call.
    int nshards = sim::simThreads();
    if (nshards > 1 && !ctx.tracing() && shardedEligible(ctx)) {
        runInterleavedSharded(ctx, w, ops_per_thread, chunk, nshards);
        return;
    }

    // Batched hot path: each chunk is generated into a per-call buffer
    // by one virtual stepBatch() call and replayed by runBatch() with
    // the per-op mode checks hoisted — same ops in the same global
    // order as the per-op loop below. Workloads without a batched
    // generator (stepBatch returns false) drop to the reference loop.
    bool batching = batchEnabled();
    std::vector<os::BatchOp> buf;

    std::vector<std::uint64_t> done(static_cast<std::size_t>(threads), 0);
    bool any = true;
    while (any) {
        any = false;
        for (int t = 0; t < threads; ++t) {
            auto &d = done[static_cast<std::size_t>(t)];
            std::uint64_t end = std::min<std::uint64_t>(ops_per_thread,
                                                        d + chunk);
            if (batching && d < end) {
                buf.clear();
                if (w.stepBatch(t, static_cast<unsigned>(end - d), buf)) {
                    ctx.runBatch(t, buf.data(), buf.size());
                    d = end;
                } else {
                    batching = false;
                }
            }
            for (; d < end; ++d)
                w.step(ctx, t);
            if (d < ops_per_thread)
                any = true;
        }
    }
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "gups")
        return std::make_unique<Gups>(params);
    if (name == "stream")
        return std::make_unique<Stream>(params);
    if (name == "btree")
        return std::make_unique<BTree>(params);
    if (name == "hashjoin")
        return std::make_unique<HashJoin>(params);
    if (name == "memcached")
        return std::make_unique<Memcached>(params);
    if (name == "redis")
        return std::make_unique<Redis>(params);
    if (name == "xsbench")
        return std::make_unique<XsBench>(params);
    if (name == "pagerank")
        return std::make_unique<PageRank>(params);
    if (name == "liblinear")
        return std::make_unique<LibLinear>(params);
    if (name == "canneal")
        return std::make_unique<Canneal>(params);
    if (name == "graph500")
        return std::make_unique<Graph500>(params);
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
workloadNames()
{
    return {"gups",     "stream",   "btree",    "hashjoin",
            "memcached", "redis",    "xsbench",  "pagerank",
            "liblinear", "canneal",  "graph500"};
}

} // namespace mitosim::workloads
