#include "stream.h"

namespace mitosim::workloads
{

void
Stream::setup(os::ExecContext &ctx)
{
    auto &k = ctx.kernel();
    os::MmapOptions opts;
    opts.thp = prm.thp;
    std::uint64_t third = alignUp(prm.footprint / 3, PageSize);
    auto ra = k.mmap(ctx.process(), third, opts);
    auto rb = k.mmap(ctx.process(), third, opts);
    auto rc = k.mmap(ctx.process(), third, opts);
    a = ra.start;
    b = rb.start;
    c = rc.start;
    words = third / sizeof(std::uint64_t);

    InitMode mode = prm.initModeOverridden ? prm.initMode
                                           : InitMode::Partitioned;
    populateRegion(ctx, a, third, mode);
    populateRegion(ctx, b, third, mode);
    populateRegion(ctx, c, third, mode);

    cursor.assign(static_cast<std::size_t>(ctx.numThreads()), 0);
    // Start each thread in its own partition so sweeps do not overlap.
    for (int t = 0; t < ctx.numThreads(); ++t) {
        cursor[static_cast<std::size_t>(t)] =
            (words / static_cast<std::uint64_t>(ctx.numThreads())) *
            static_cast<std::uint64_t>(t);
    }
}

template <class Sink>
void
Stream::genStep(Sink &sink, int tid)
{
    auto &pos = cursor[static_cast<std::size_t>(tid)];
    VirtAddr off = pos * sizeof(std::uint64_t);
    sink.access(b + off, false);
    sink.access(c + off, false);
    sink.access(a + off, true);
    sink.compute(2);
    pos = (pos + 1) % words;
}

void
Stream::step(os::ExecContext &ctx, int tid)
{
    detail::CtxSink sink{ctx, tid};
    genStep(sink, tid);
}

bool
Stream::stepBatch(int tid, unsigned nsteps, std::vector<os::BatchOp> &out)
{
    detail::BufSink sink{out};
    for (unsigned i = 0; i < nsteps; ++i)
        genStep(sink, tid);
    return true;
}

} // namespace mitosim::workloads
