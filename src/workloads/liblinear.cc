#include "liblinear.h"

namespace mitosim::workloads
{

void
LibLinear::setup(os::ExecContext &ctx)
{
    auto &k = ctx.kernel();
    os::MmapOptions opts;
    opts.thp = prm.thp;

    std::uint64_t weight_bytes = alignUp(prm.footprint / 16, PageSize);
    std::uint64_t feature_bytes = alignUp(prm.footprint - weight_bytes,
                                          PageSize);
    auto rf = k.mmap(ctx.process(), feature_bytes, opts);
    auto rw = k.mmap(ctx.process(), weight_bytes, opts);
    features = rf.start;
    weights = rw.start;
    numSamples = feature_bytes / SampleBytes;
    numWeights = weight_bytes / sizeof(std::uint64_t);

    InitMode mode = prm.initModeOverridden ? prm.initMode
                                           : InitMode::MainThread;
    populateRegion(ctx, rf.start, rf.length, mode);
    populateRegion(ctx, rw.start, rw.length, mode);

    cursor.assign(static_cast<std::size_t>(ctx.numThreads()), 0);
    for (int t = 0; t < ctx.numThreads(); ++t) {
        cursor[static_cast<std::size_t>(t)] =
            (numSamples / static_cast<std::uint64_t>(ctx.numThreads())) *
            static_cast<std::uint64_t>(t);
    }
    rngs.clear();
    for (int t = 0; t < ctx.numThreads(); ++t)
        rngs.push_back(threadRng(t));
}

template <class Sink>
void
LibLinear::genStep(Sink &sink, int tid)
{
    auto &s = cursor[static_cast<std::size_t>(tid)];
    auto &rng = rngs[static_cast<std::size_t>(tid)];

    // Stream the sample's feature lines (sequential — TLB friendly).
    VirtAddr sample_va = features + s * SampleBytes;
    for (std::uint64_t line = 0; line < SampleBytes / 64; ++line)
        sink.access(sample_va + line * 64, false);

    // Sparse weight updates at the sample's nonzero coordinates.
    for (unsigned u = 0; u < SparseUpdates; ++u) {
        std::uint64_t w = rng.below(numWeights);
        sink.access(weights + w * sizeof(std::uint64_t), true);
    }
    sink.compute(30); // dot products
    s = (s + 1) % numSamples;
}

void
LibLinear::step(os::ExecContext &ctx, int tid)
{
    detail::CtxSink sink{ctx, tid};
    genStep(sink, tid);
}

bool
LibLinear::stepBatch(int tid, unsigned nsteps, std::vector<os::BatchOp> &out)
{
    detail::BufSink sink{out};
    for (unsigned i = 0; i < nsteps; ++i)
        genStep(sink, tid);
    return true;
}

} // namespace mitosim::workloads
