/**
 * @file
 * Canneal (PARSEC): cache-aware simulated annealing of chip routing
 * (Table 1: 382 GB MS / 32 GB WM; the paper's best multi-socket case at
 * 1.34x). Each step picks two random netlist elements, reads both and a
 * few of their neighbours, and swaps them — uniformly random traffic
 * over a huge element array.
 */

#ifndef MITOSIM_WORKLOADS_CANNEAL_H
#define MITOSIM_WORKLOADS_CANNEAL_H

#include <vector>

#include <memory>

#include "src/workloads/workload.h"

namespace mitosim::workloads
{

/** Random element swaps with neighbour reads. */
class Canneal : public Workload
{
  public:
    explicit Canneal(const WorkloadParams &params) : Workload(params) {}

    const char *name() const override { return "canneal"; }
    std::unique_ptr<Workload> clone() const override
    {
        return std::unique_ptr<Workload>(new Canneal(*this));
    }
    void setup(os::ExecContext &ctx) override;
    void step(os::ExecContext &ctx, int tid) override;
    bool stepBatch(int tid, unsigned nsteps,
                   std::vector<os::BatchOp> &out) override;

  private:
    template <class Sink> void genStep(Sink &sink, int tid);

    static constexpr std::uint64_t ElementBytes = 128;
    static constexpr unsigned NeighbourReads = 2;

    VirtAddr elements = 0;
    std::uint64_t numElements = 0;
    std::vector<Rng> rngs;
};

} // namespace mitosim::workloads

#endif // MITOSIM_WORKLOADS_CANNEAL_H
