#include "pagerank.h"

namespace mitosim::workloads
{

void
PageRank::setup(os::ExecContext &ctx)
{
    auto &k = ctx.kernel();
    os::MmapOptions opts;
    opts.thp = prm.thp;

    // Budget: |E| * 8 bytes for the CSR edge array, |V| * 8 for ranks,
    // with |E| = AvgDegree * |V|.
    numVertices = prm.footprint / (RankBytes + AvgDegree * EdgeBytes);
    if (numVertices == 0)
        numVertices = 1;
    numEdges = numVertices * AvgDegree;
    auto re = k.mmap(ctx.process(),
                     alignUp(numEdges * EdgeBytes, PageSize), opts);
    auto rr = k.mmap(ctx.process(),
                     alignUp(numVertices * RankBytes, PageSize), opts);
    edges = re.start;
    ranks = rr.start;

    InitMode mode = prm.initModeOverridden ? prm.initMode
                                           : InitMode::Partitioned;
    populateRegion(ctx, re.start, re.length, mode);
    populateRegion(ctx, rr.start, rr.length, mode);

    cursor.assign(static_cast<std::size_t>(ctx.numThreads()), 0);
    for (int t = 0; t < ctx.numThreads(); ++t) {
        cursor[static_cast<std::size_t>(t)] =
            (numVertices / static_cast<std::uint64_t>(ctx.numThreads())) *
            static_cast<std::uint64_t>(t);
    }
    rngs.clear();
    for (int t = 0; t < ctx.numThreads(); ++t)
        rngs.push_back(threadRng(t));
}

template <class Sink>
void
PageRank::genStep(Sink &sink, int tid)
{
    auto &v = cursor[static_cast<std::size_t>(tid)];
    auto &rng = rngs[static_cast<std::size_t>(tid)];

    // Sequential: this vertex's slice of the CSR edge array (AvgDegree
    // edge ids = 2 cache lines).
    VirtAddr edge_va = edges + v * AvgDegree * EdgeBytes;
    sink.access(edge_va, false);
    sink.access(edge_va + 64, false);

    // Random: gather a sample of the neighbours' ranks. Power-law-ish
    // targets: skewed towards hub vertices.
    for (int n = 0; n < 6; ++n) {
        std::uint64_t u = rng.skewed(numVertices, 0.1, 0.5);
        sink.access(ranks + u * RankBytes, false);
    }

    // Write the new rank.
    sink.access(ranks + v * RankBytes, true);
    sink.compute(10);
    v = (v + 1) % numVertices;
}

void
PageRank::step(os::ExecContext &ctx, int tid)
{
    detail::CtxSink sink{ctx, tid};
    genStep(sink, tid);
}

bool
PageRank::stepBatch(int tid, unsigned nsteps, std::vector<os::BatchOp> &out)
{
    detail::BufSink sink{out};
    for (unsigned i = 0; i < nsteps; ++i)
        genStep(sink, tid);
    return true;
}

} // namespace mitosim::workloads
