/**
 * @file
 * The sharded intra-job simulation engine (see src/sim/sharded.h for
 * the three-phase design). Entry points are internal to the workloads
 * layer: runInterleaved dispatches here when --sim-threads > 1 and the
 * run is eligible.
 */

#ifndef MITOSIM_WORKLOADS_SHARDED_ENGINE_H
#define MITOSIM_WORKLOADS_SHARDED_ENGINE_H

#include <cstdint>
#include <vector>

#include "src/os/exec_context.h"
#include "src/workloads/workload.h"

namespace mitosim::workloads
{

/**
 * Can runs of @p ctx be sharded? Requires pinned scheduling (the
 * time-shared dispatcher interleaves by cycle counts), no THP ticks
 * tied to the context clock, AutoNUMA off for the process (hint
 * faults would abort every segment), and at least two logical threads
 * on distinct cores.
 */
bool shardedEligible(os::ExecContext &ctx);

/**
 * Replay a recorded trace with private state sharded across
 * @p nshards host threads; byte-identical to serially replaying the
 * trace through ctx.access()/compute(). Any fault rolls the segment
 * back and replays serially (fault handlers need serial order).
 */
void runTraceSharded(os::ExecContext &ctx,
                     const std::vector<os::TraceOp> &trace, int nshards);

/**
 * The sharded equivalent of runInterleaved's serial loop: record the
 * workload's round-robin access trace in bounded segments and replay
 * each through runTraceSharded.
 */
void runInterleavedSharded(os::ExecContext &ctx, Workload &w,
                           std::uint64_t ops_per_thread, unsigned chunk,
                           int nshards);

} // namespace mitosim::workloads

#endif // MITOSIM_WORKLOADS_SHARDED_ENGINE_H
