/**
 * @file
 * Set-associative LRU cache model over physical cache-line addresses.
 *
 * Used for the per-socket shared L3 (35 MB on the paper's machine, scaled
 * in MitoSim's default config) and for the small per-core L1D that absorbs
 * spatial locality in streaming workloads. The model tracks presence only;
 * data values are never stored (data frames are unbacked).
 */

#ifndef MITOSIM_CACHE_SET_ASSOC_CACHE_H
#define MITOSIM_CACHE_SET_ASSOC_CACHE_H

#include <cstdint>
#include <vector>

#include "src/base/logging.h"
#include "src/base/types.h"

namespace mitosim::cache
{

/** Cache statistics. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;

    double
    hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Presence-tracking set-associative cache with true-LRU replacement.
 * Addresses are physical; the tag granule is one 64-byte line.
 */
class SetAssocCache
{
  public:
    /**
     * @param capacity_bytes total capacity (power-of-two line count)
     * @param ways associativity
     */
    SetAssocCache(std::uint64_t capacity_bytes, unsigned ways);

    /**
     * Look up the line containing @p pa; on hit, refresh LRU.
     * @return true on hit.
     */
    bool
    lookup(PhysAddr pa)
    {
        std::uint64_t line = lineAddr(pa);
        std::size_t set = setOf(line);
        // Per-set MRU memo: the line most recently stamped in this set
        // (hit, fill or refresh; cleared by every invalidation path).
        // A repeat probe skips the set scan. Exact by MRU idempotence:
        // the memo line holds the newest stamp in its set — nothing in
        // that set has been stamped since, or the memo would have been
        // replaced — so the re-stamp a real probe would perform cannot
        // change the relative stamp order true-LRU eviction depends
        // on, and the hit counter is charged identically. Per-set
        // (rather than one global last-line) so interleaved streams —
        // a walker's PTE-line reads alternating with data lines, or
        // two data streams — keep their memos alive independently.
        if (line == memoMru_[set]) {
            ++stats_.hits;
            return true;
        }
        std::size_t base = set * numWays;
        for (unsigned w = 0; w < numWays; ++w) {
            if (tags[base + w] == line) {
                lrus[base + w] = ++clock;
                ++stats_.hits;
                memoMru_[set] = line;
                return true;
            }
        }
        ++stats_.misses;
        return false;
    }

    /**
     * Insert the line containing @p pa (no-op if present; refreshes LRU).
     * @return the evicted line address, or ~0ull if none.
     */
    std::uint64_t
    insert(PhysAddr pa)
    {
        std::uint64_t line = lineAddr(pa);
        std::size_t set = setOf(line);
        std::size_t base = set * numWays;
        std::size_t victim = base;
        memoMru_[set] = line; // stamped below on every path
        for (unsigned w = 0; w < numWays; ++w) {
            std::size_t i = base + w;
            if (tags[i] == line) { // already present
                lrus[i] = ++clock;
                return ~0ull;
            }
            if (tags[i] == ~0ull) { // free way
                tags[i] = line;
                lrus[i] = ++clock;
                return ~0ull;
            }
            if (lrus[victim] > lrus[i])
                victim = i;
        }
        std::uint64_t evicted = tags[victim];
        tags[victim] = line;
        lrus[victim] = ++clock;
        ++stats_.evictions;
        return evicted;
    }

    /**
     * Fused lookup() + insert(): probe the set once and, on a miss,
     * install the line during the same scan. Replacement decision, LRU
     * stamps and statistics are identical to lookup(pa) followed by
     * insert(pa) — this exists because the hierarchy's miss path always
     * does exactly that pair, and the second set scan was pure waste.
     * @return true on hit.
     */
    bool
    probeInsert(PhysAddr pa)
    {
        std::uint64_t line = lineAddr(pa);
        std::size_t set = setOf(line);
        // Same MRU-memo short-circuit as lookup(), same exactness
        // argument — and a memo hit needs no fill, so the insert half
        // is moot.
        if (line == memoMru_[set]) {
            ++stats_.hits;
            return true;
        }
        memoMru_[set] = line; // every continuation below stamps this line
        std::size_t base = set * numWays;
        std::size_t victim = base;
        bool free_way = false;
        for (unsigned w = 0; w < numWays; ++w) {
            std::size_t i = base + w;
            if (tags[i] == line) {
                lrus[i] = ++clock;
                ++stats_.hits;
                return true;
            }
            // Victim choice mirrors insert(): first free way wins, else
            // oldest LRU, earliest way on ties. A free way freezes the
            // choice but the match scan must continue — invalidations
            // can leave holes before a still-resident line.
            if (!free_way) {
                if (tags[i] == ~0ull) {
                    victim = i;
                    free_way = true;
                } else if (lrus[victim] > lrus[i]) {
                    victim = i;
                }
            }
        }
        ++stats_.misses;
        if (!free_way)
            ++stats_.evictions;
        tags[victim] = line;
        lrus[victim] = ++clock;
        return false;
    }

    /** Drop the line containing @p pa if present. */
    void invalidateLine(PhysAddr pa);

    /** Drop every line whose frame is @p pfn (PT page teardown). */
    void invalidateFrame(Pfn pfn);

    /** Drop everything. */
    void flush();

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }

    /**
     * Charge @p n hits for fused same-line repeats (Core::accessRun)
     * without re-probing. Exact by MRU idempotence: the line was
     * stamped most-recent by the probe that opened the run, and
     * true-LRU victim choice depends only on the relative stamp order
     * within a set, so re-stamping the already-newest line cannot
     * change any future hit, miss or eviction.
     */
    void noteFusedHits(std::uint64_t n) { stats_.hits += n; }

    std::uint64_t capacityBytes() const { return tags.size() * LineSize; }
    unsigned associativity() const { return numWays; }
    std::uint64_t numSets() const { return sets; }

  private:
    std::uint64_t lineAddr(PhysAddr pa) const { return pa >> LineShift; }
    std::size_t setOf(std::uint64_t line) const
    {
        return static_cast<std::size_t>(line & (sets - 1));
    }

    unsigned numWays;
    std::uint64_t sets;
    // Struct of arrays, set-major: a probe scans only the packed tag
    // vector (an 8-way set of tags is exactly one cache line; the old
    // 16-byte {tag, lru} pairs spread it over two) and touches the LRU
    // stamp of at most one way.
    std::vector<std::uint64_t> tags; //!< full line address, ~0 = invalid
    std::vector<std::uint32_t> lrus; //!< higher = more recently used
    std::uint32_t clock = 0;         //!< LRU timestamp source
    CacheStats stats_;
    /**
     * Per-set lookup memo (see lookup()/probeInsert()): the line most
     * recently stamped in each set. ~0 is "empty" — it doubles as the
     * invalid tag, so no real line can ever equal it.
     */
    std::vector<std::uint64_t> memoMru_;
};

} // namespace mitosim::cache

#endif // MITOSIM_CACHE_SET_ASSOC_CACHE_H
