#include "set_assoc_cache.h"

#include <algorithm>

namespace mitosim::cache
{

namespace
{

std::uint64_t
roundDownPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

} // namespace

SetAssocCache::SetAssocCache(std::uint64_t capacity_bytes, unsigned ways)
    : numWays(ways)
{
    if (ways == 0)
        fatal("cache associativity must be nonzero");
    std::uint64_t total_lines = capacity_bytes / LineSize;
    if (total_lines < ways)
        fatal("cache capacity smaller than one set");
    sets = roundDownPow2(total_lines / ways);
    tags.assign(sets * ways, ~0ull);
    lrus.assign(sets * ways, 0);
    memoMru_.assign(sets, ~0ull);
}

void
SetAssocCache::invalidateLine(PhysAddr pa)
{
    std::uint64_t line = lineAddr(pa);
    if (memoMru_[setOf(line)] == line)
        memoMru_[setOf(line)] = ~0ull;
    std::size_t base = setOf(line) * numWays;
    for (unsigned w = 0; w < numWays; ++w) {
        if (tags[base + w] == line) {
            tags[base + w] = ~0ull;
            ++stats_.invalidations;
            return;
        }
    }
}

void
SetAssocCache::invalidateFrame(Pfn pfn)
{
    std::uint64_t first = pfnToAddr(pfn) >> LineShift;
    for (std::uint64_t line = first; line < first + (PageSize / LineSize);
         ++line) {
        if (memoMru_[setOf(line)] == line)
            memoMru_[setOf(line)] = ~0ull;
    }
    for (std::uint64_t line = first; line < first + (PageSize / LineSize);
         ++line) {
        std::size_t base = setOf(line) * numWays;
        for (unsigned w = 0; w < numWays; ++w) {
            if (tags[base + w] == line) {
                tags[base + w] = ~0ull;
                ++stats_.invalidations;
                break;
            }
        }
    }
}

void
SetAssocCache::flush()
{
    std::fill(tags.begin(), tags.end(), ~0ull);
    std::fill(memoMru_.begin(), memoMru_.end(), ~0ull);
}

} // namespace mitosim::cache
