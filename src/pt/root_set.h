/**
 * @file
 * Per-process page-table root bookkeeping.
 *
 * The paper (§5.3) keeps "an array of root page-table pointers which allows
 * directly selecting the local replica by indexing this array using the
 * socket id"; initializing every slot with the same root is exactly the
 * native behaviour. RootSet is that array plus the primary root and the
 * current replication mask.
 */

#ifndef MITOSIM_PT_ROOT_SET_H
#define MITOSIM_PT_ROOT_SET_H

#include <array>

#include "src/base/socket_mask.h"
#include "src/base/types.h"

namespace mitosim::pt
{

/** Largest socket count a RootSet supports (Table 4 sweeps to 16). */
inline constexpr int MaxSockets = 16;

/** The CR3 array of one process. */
struct RootSet
{
    /** The original (native) root; always valid for a live process. */
    Pfn primaryRoot = InvalidPfn;

    /** Sockets currently holding a full replica tree. */
    SocketMask replicaMask;

    /**
     * Per-socket root pointer loaded into CR3 on context switch. Slots of
     * sockets without a replica fall back to primaryRoot.
     */
    std::array<Pfn, MaxSockets> perSocketRoot{};

    RootSet() { perSocketRoot.fill(InvalidPfn); }

    /** Root the MMU of a core on @p socket should use. */
    Pfn
    rootFor(SocketId socket) const
    {
        if (socket >= 0 && socket < MaxSockets &&
            perSocketRoot[static_cast<std::size_t>(socket)] != InvalidPfn) {
            return perSocketRoot[static_cast<std::size_t>(socket)];
        }
        return primaryRoot;
    }

    /** Reset all slots to the primary root (native behaviour). */
    void
    resetToPrimary()
    {
        perSocketRoot.fill(primaryRoot);
        replicaMask = SocketMask::none();
    }

    bool replicated() const { return !replicaMask.empty(); }
};

} // namespace mitosim::pt

#endif // MITOSIM_PT_ROOT_SET_H
