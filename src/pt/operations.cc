#include "operations.h"

#include <algorithm>
#include <array>
#include <vector>

#include "src/base/logging.h"
#include "src/pvops/costs.h"

namespace mitosim::pt
{

namespace
{

/** First slot of @p table (entry va of slot 0 = @p base) in range. */
unsigned
firstSlotInRange(VirtAddr base, std::uint64_t span, VirtAddr start)
{
    return start > base ? static_cast<unsigned>((start - base) / span) : 0;
}

/** Is @p entry a leaf at @p level (L1, or a huge L2 entry)? */
bool
isLeafAt(Pte entry, int level)
{
    return entry.present() &&
           (level == 1 || (level == 2 && entry.huge()));
}

} // namespace

bool
PageTableOps::createRoot(RootSet &roots, ProcId owner, SocketId socket,
                         pvops::KernelCost *cost)
{
    MITOSIM_ASSERT(roots.primaryRoot == InvalidPfn,
                   "createRoot: process already has a root");
    Pfn root = pv->allocPtPage(roots, owner, 4, socket, cost);
    if (root == InvalidPfn)
        return false;
    roots.primaryRoot = root;
    roots.resetToPrimary();
    return true;
}

Pfn
PageTableOps::descendAlloc(RootSet &roots, ProcId owner, VirtAddr va,
                           int target_level, PtPlacementPolicy &pt_policy,
                           SocketId faulting_socket,
                           pvops::KernelCost *cost)
{
    MITOSIM_ASSERT(roots.primaryRoot != InvalidPfn, "process has no root");
    Pfn table = roots.primaryRoot;
    for (int level = 4; level > target_level; --level) {
        unsigned idx = ptIndex(va, ptLevel(level));
        Pte entry = pv->readPte(roots, PteLoc{table, idx}, cost);
        if (!entry.present()) {
            SocketId target = pt_policy.chooseSocket(
                faulting_socket, mem.topology().numSockets());
            Pfn child = pv->allocPtPage(roots, owner, level - 1, target,
                                        cost);
            if (child == InvalidPfn)
                return InvalidPfn;
            Pte new_entry = Pte::make(child, PtePresent | PteWrite |
                                                 PteUser);
            pv->setPte(roots, PteLoc{table, idx}, new_entry, level, cost);
            table = child;
        } else {
            MITOSIM_ASSERT(!entry.huge(),
                           "descendAlloc: hit a huge leaf above target");
            table = entry.pfn();
        }
    }
    return table;
}

Pfn
PageTableOps::descend(const RootSet &roots, VirtAddr va,
                      int target_level) const
{
    if (roots.primaryRoot == InvalidPfn)
        return InvalidPfn;
    Pfn table = roots.primaryRoot;
    for (int level = 4; level > target_level; --level) {
        unsigned idx = ptIndex(va, ptLevel(level));
        Pte entry{mem.table(table)[idx]};
        if (!entry.present() || entry.huge())
            return InvalidPfn;
        table = entry.pfn();
    }
    return table;
}

bool
PageTableOps::map4K(RootSet &roots, ProcId owner, VirtAddr va, Pfn data_pfn,
                    std::uint64_t flags, PtPlacementPolicy &pt_policy,
                    SocketId faulting_socket, pvops::KernelCost *cost)
{
    Pfn leaf_table = descendAlloc(roots, owner, va, 1, pt_policy,
                                  faulting_socket, cost);
    if (leaf_table == InvalidPfn)
        return false;
    unsigned idx = ptIndex(va, PtLevel::L1);
    Pte value = Pte::make(data_pfn, flags | PtePresent);
    pv->setPte(roots, PteLoc{leaf_table, idx}, value, 1, cost);
    return true;
}

bool
PageTableOps::map2M(RootSet &roots, ProcId owner, VirtAddr va, Pfn head_pfn,
                    std::uint64_t flags, PtPlacementPolicy &pt_policy,
                    SocketId faulting_socket, pvops::KernelCost *cost)
{
    MITOSIM_ASSERT((va & (LargePageSize - 1)) == 0,
                   "map2M: va not 2MB aligned");
    MITOSIM_ASSERT((head_pfn & (FramesPerLargePage - 1)) == 0,
                   "map2M: pfn not 2MB aligned");
    Pfn dir_table = descendAlloc(roots, owner, va, 2, pt_policy,
                                 faulting_socket, cost);
    if (dir_table == InvalidPfn)
        return false;
    unsigned idx = ptIndex(va, PtLevel::L2);
    Pte value = Pte::make(head_pfn, flags | PtePresent | PteHuge);
    pv->setPte(roots, PteLoc{dir_table, idx}, value, 2, cost);
    return true;
}

WalkResult
PageTableOps::walk(const RootSet &roots, VirtAddr va) const
{
    WalkResult res;
    if (roots.primaryRoot == InvalidPfn)
        return res;
    Pfn table = roots.primaryRoot;
    for (int level = 4; level >= 1; --level) {
        unsigned idx = ptIndex(va, ptLevel(level));
        Pte entry{mem.table(table)[idx]};
        ++res.depth;
        if (!entry.present())
            return res;
        if (level == 2 && entry.huge()) {
            res.mapped = true;
            res.leaf = entry;
            res.loc = PteLoc{table, idx};
            res.size = PageSizeKind::Large2M;
            return res;
        }
        if (level == 1) {
            res.mapped = true;
            res.leaf = entry;
            res.loc = PteLoc{table, idx};
            res.size = PageSizeKind::Base4K;
            return res;
        }
        table = entry.pfn();
    }
    return res;
}

WalkResult
PageTableOps::unmap(RootSet &roots, VirtAddr va, pvops::KernelCost *cost)
{
    WalkResult res = walk(roots, va);
    if (!res.mapped)
        return res;
    int level = (res.size == PageSizeKind::Large2M) ? 2 : 1;
    pv->setPte(roots, res.loc, Pte{}, level, cost);
    return res;
}

bool
PageTableOps::protect(RootSet &roots, VirtAddr va, std::uint64_t set_flags,
                      std::uint64_t clear_flags, pvops::KernelCost *cost)
{
    WalkResult res = walk(roots, va);
    if (!res.mapped)
        return false;
    int level = (res.size == PageSizeKind::Large2M) ? 2 : 1;
    // Read-modify-write through the hook interface.
    Pte cur = pv->readPte(roots, res.loc, cost);
    Pte updated = cur.withFlags(set_flags, clear_flags);
    pv->setPte(roots, res.loc, updated, level, cost);
    return true;
}

void
PageTableOps::forEachLeafRun(
    Pfn table, int level, VirtAddr base, VirtAddr start, VirtAddr end,
    const std::function<void(Pfn, int, VirtAddr, unsigned, unsigned)> &fn)
    const
{
    const std::uint64_t *tbl = mem.table(table);
    std::uint64_t span = bytesPerEntry(ptLevel(level));
    unsigned i = firstSlotInRange(base, span, start);
    while (i < PtEntriesPerPage && base + i * span < end) {
        Pte entry{tbl[i]};
        if (!entry.present()) {
            ++i;
            continue;
        }
        if (!isLeafAt(entry, level)) {
            forEachLeafRun(entry.pfn(), level - 1, base + i * span,
                           start, end, fn);
            ++i;
            continue;
        }
        unsigned run_start = i;
        while (i < PtEntriesPerPage && base + i * span < end &&
               isLeafAt(Pte{tbl[i]}, level))
            ++i;
        fn(table, level, base, run_start, i - run_start);
    }
}

void
PageTableOps::forRange(
    const RootSet &roots, VirtAddr start, VirtAddr end,
    const std::function<void(VirtAddr, PteLoc, Pte, PageSizeKind)> &fn)
    const
{
    if (roots.primaryRoot == InvalidPfn || start >= end)
        return;
    forEachLeafRun(
        roots.primaryRoot, 4, 0, start, end,
        [&](Pfn table, int level, VirtAddr base, unsigned first,
            unsigned n) {
            const std::uint64_t *tbl = mem.table(table);
            std::uint64_t span = bytesPerEntry(ptLevel(level));
            for (unsigned k = first; k < first + n; ++k) {
                fn(base + k * span, PteLoc{table, k}, Pte{tbl[k]},
                   level == 1 ? PageSizeKind::Base4K
                              : PageSizeKind::Large2M);
            }
        });
}

std::uint64_t
PageTableOps::mapRange4K(RootSet &roots, ProcId owner, VirtAddr start,
                         VirtAddr end, PtPlacementPolicy &pt_policy,
                         SocketId faulting_socket,
                         const std::function<Pte(VirtAddr)> &fill,
                         pvops::KernelCost *cost)
{
    MITOSIM_ASSERT(roots.primaryRoot != InvalidPfn, "process has no root");
    std::uint64_t mapped = 0;
    std::array<Pte, PtEntriesPerPage> run;
    int num_sockets = mem.topology().numSockets();

    VirtAddr va = alignDown(start, PageSize);
    while (va < end) {
        VirtAddr chunk_end =
            std::min(end, alignDown(va, LargePageSize) + LargePageSize);

        // Descend once per leaf table, raw reads like walk(). The path
        // slots are shared by every page of the chunk and are re-read
        // through the backend per mapped page below, reproducing the
        // per-page descendAlloc charges.
        PteLoc path[3];
        Pfn leaf_table = InvalidPfn;
        int missing_level = 0; //!< levels missing_level..1 need tables
        bool huge = false;
        Pfn table = roots.primaryRoot;
        for (int level = 4; level >= 2; --level) {
            unsigned idx = ptIndex(va, ptLevel(level));
            path[4 - level] = PteLoc{table, idx};
            Pte entry{mem.table(table)[idx]};
            if (!entry.present()) {
                missing_level = level - 1;
                break;
            }
            if (level == 2 && entry.huge()) {
                huge = true;
                break;
            }
            table = entry.pfn();
        }
        if (huge) {
            va = chunk_end; // whole chunk mapped by a 2 MB leaf
            continue;
        }
        if (!missing_level)
            leaf_table = table;

        unsigned run_start = 0;
        unsigned run_len = 0;
        std::uint64_t filled = 0;
        auto flushRun = [&] {
            if (run_len) {
                pv->setPtes(roots, PteLoc{leaf_table, run_start},
                            run.data(), run_len, 1, cost);
                run_len = 0;
            }
        };

        for (; va < chunk_end; va += PageSize) {
            unsigned idx = ptIndex(va, PtLevel::L1);
            if (leaf_table != InvalidPfn &&
                Pte{mem.table(leaf_table)[idx]}.present()) {
                flushRun();
                continue;
            }

            Pte value = fill(va);

            if (leaf_table == InvalidPfn) {
                // First page under a missing subtree: allocate the
                // chain top-down *after* fill(), so frame-allocation
                // order matches the per-page fault path (data frame
                // first, then tables).
                for (int level = missing_level; level >= 1; --level) {
                    PteLoc parent = path[3 - level];
                    SocketId target = pt_policy.chooseSocket(
                        faulting_socket, num_sockets);
                    Pfn child = pv->allocPtPage(roots, owner, level,
                                                target, cost);
                    if (child == InvalidPfn)
                        fatal("mapRange4K: out of memory for a "
                              "level-%d table",
                              level);
                    pv->setPte(roots, parent,
                               Pte::make(child, PtePresent | PteWrite |
                                                    PteUser),
                               level + 1, cost);
                    if (level > 1) {
                        path[4 - level] =
                            PteLoc{child, ptIndex(va, ptLevel(level))};
                    } else {
                        leaf_table = child;
                    }
                }
                missing_level = 0;
            }

            if (run_len == 0)
                run_start = idx;
            run[run_len++] = value;
            ++filled;
            ++mapped;
        }
        flushRun();

        // Per-page descent charge: the per-page path paid one readPte
        // per upper level for every page it mapped. All pages of the
        // chunk share the same three path slots, so charge the n-fold
        // reads in one backend call each.
        if (filled) {
            for (const PteLoc &slot : path)
                pv->readPteMany(roots, slot,
                                static_cast<unsigned>(filled), cost);
        }
    }
    return mapped;
}

std::uint64_t
PageTableOps::unmapRange(
    RootSet &roots, VirtAddr start, VirtAddr end,
    const std::function<void(VirtAddr, Pte, PageSizeKind)> &freed,
    pvops::KernelCost *cost)
{
    if (roots.primaryRoot == InvalidPfn || start >= end)
        return 0;
    std::uint64_t cleared = 0;
    std::array<Pte, PtEntriesPerPage> zeros{}; // shared batched value
    std::array<Pte, PtEntriesPerPage> olds;

    forEachLeafRun(
        roots.primaryRoot, 4, 0, start, end,
        [&](Pfn table, int level, VirtAddr base, unsigned first,
            unsigned n) {
            const std::uint64_t *tbl = mem.table(table);
            std::uint64_t span = bytesPerEntry(ptLevel(level));
            PageSizeKind size = level == 1 ? PageSizeKind::Base4K
                                           : PageSizeKind::Large2M;
            for (unsigned k = 0; k < n; ++k)
                olds[k] = Pte{tbl[first + k]};
            // One batched clear through the backend per run.
            pv->setPtes(roots, PteLoc{table, first}, zeros.data(), n,
                        level, cost);
            for (unsigned k = 0; k < n; ++k)
                freed(base + (first + k) * span, olds[k], size);
            cleared += n;
        });
    return cleared;
}

std::uint64_t
PageTableOps::protectRange(
    RootSet &roots, VirtAddr start, VirtAddr end, std::uint64_t set_flags,
    std::uint64_t clear_flags,
    const std::function<void(VirtAddr, PageSizeKind)> &touched,
    pvops::KernelCost *cost)
{
    if (roots.primaryRoot == InvalidPfn || start >= end)
        return 0;
    std::uint64_t rewritten = 0;
    std::array<Pte, PtEntriesPerPage> values;

    forEachLeafRun(
        roots.primaryRoot, 4, 0, start, end,
        [&](Pfn table, int level, VirtAddr base, unsigned first,
            unsigned n) {
            std::uint64_t span = bytesPerEntry(ptLevel(level));
            PageSizeKind size = level == 1 ? PageSizeKind::Base4K
                                           : PageSizeKind::Large2M;
            // Read-modify-write the run; reads go through the backend
            // (OR-ed A/D bits), the store is one batched setPtes.
            for (unsigned k = 0; k < n; ++k) {
                Pte cur = pv->readPte(roots, PteLoc{table, first + k},
                                      cost);
                values[k] = cur.withFlags(set_flags, clear_flags);
            }
            pv->setPtes(roots, PteLoc{table, first}, values.data(), n,
                        level, cost);
            if (touched) {
                for (unsigned k = 0; k < n; ++k)
                    touched(base + (first + k) * span, size);
            }
            rewritten += n;
        });
    return rewritten;
}

Pfn
PageTableOps::tableFor(const RootSet &roots, VirtAddr va, int level) const
{
    return descend(roots, va, level);
}

bool
PageTableOps::collapse2M(RootSet &roots, VirtAddr va, Pte huge,
                         pvops::KernelCost *cost)
{
    MITOSIM_ASSERT((va & (LargePageSize - 1)) == 0,
                   "collapse2M: va not 2MB aligned");
    MITOSIM_ASSERT(huge.present() && huge.huge(),
                   "collapse2M: replacement is not a huge leaf");
    Pfn dir_table = descend(roots, va, 2);
    if (dir_table == InvalidPfn)
        return false;
    unsigned idx = ptIndex(va, PtLevel::L2);
    Pte entry{mem.table(dir_table)[idx]};
    if (!entry.present() || entry.huge())
        return false; // nothing to collapse (hole, or already huge)
    pv->collapseRange(roots, PteLoc{dir_table, idx}, huge, entry.pfn(),
                      cost);
    return true;
}

bool
PageTableOps::split2M(RootSet &roots, ProcId owner, VirtAddr va,
                      PtPlacementPolicy &pt_policy,
                      SocketId faulting_socket, pvops::KernelCost *cost)
{
    VirtAddr base = alignDown(va, LargePageSize);
    Pfn dir_table = descend(roots, base, 2);
    if (dir_table == InvalidPfn)
        return false;
    unsigned idx = ptIndex(base, PtLevel::L2);
    Pte huge{mem.table(dir_table)[idx]};
    if (!huge.present() || !huge.huge())
        return false;

    std::uint64_t flags = huge.raw() & ~PtePfnMask &
                          ~static_cast<std::uint64_t>(PteHuge);
    std::array<Pte, PtEntriesPerPage> values;
    for (unsigned k = 0; k < PtEntriesPerPage; ++k)
        values[k] = Pte::make(huge.pfn() + k, flags);

    SocketId target =
        pt_policy.chooseSocket(faulting_socket,
                               mem.topology().numSockets());
    return pv->splitHuge(roots, owner, PteLoc{dir_table, idx},
                         values.data(), target, cost);
}

WalkResult
PageTableOps::readLeaf(const RootSet &roots, VirtAddr va,
                       pvops::KernelCost *cost) const
{
    WalkResult res = walk(roots, va);
    if (res.mapped)
        res.leaf = pv->readPte(roots, res.loc, cost); // OR-ed A/D
    return res;
}

bool
PageTableOps::clearAccessedDirty(RootSet &roots, VirtAddr va,
                                 std::uint64_t bits,
                                 pvops::KernelCost *cost)
{
    WalkResult res = walk(roots, va);
    if (!res.mapped)
        return false;
    pv->clearAccessedDirty(roots, res.loc, bits, cost);
    return true;
}

void
PageTableOps::forEachTable(const RootSet &roots,
                           const std::function<void(Pfn, int)> &fn) const
{
    if (roots.primaryRoot == InvalidPfn)
        return;
    // Depth-first, parents before children; callers needing leaves-last
    // can collect and reverse.
    struct Frame
    {
        Pfn table;
        int level;
    };
    std::vector<Frame> stack{{roots.primaryRoot, 4}};
    while (!stack.empty()) {
        Frame f = stack.back();
        stack.pop_back();
        fn(f.table, f.level);
        if (f.level == 1)
            continue;
        const std::uint64_t *tbl = mem.table(f.table);
        for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
            Pte entry{tbl[i]};
            if (entry.present() && !(f.level == 2 && entry.huge()))
                stack.push_back({entry.pfn(), f.level - 1});
        }
    }
}

void
PageTableOps::destroyLevel(RootSet &roots, Pfn table, int level,
                           pvops::KernelCost *cost)
{
    if (level > 1) {
        const std::uint64_t *tbl = mem.table(table);
        for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
            Pte entry{tbl[i]};
            if (entry.present() && !(level == 2 && entry.huge()))
                destroyLevel(roots, entry.pfn(), level - 1, cost);
        }
    }
    pv->releasePtPage(roots, table, cost);
}

void
PageTableOps::destroy(RootSet &roots, pvops::KernelCost *cost)
{
    if (roots.primaryRoot == InvalidPfn)
        return;
    destroyLevel(roots, roots.primaryRoot, 4, cost);
    roots.primaryRoot = InvalidPfn;
    roots.perSocketRoot.fill(InvalidPfn);
    roots.replicaMask = SocketMask::none();
}

} // namespace mitosim::pt
