#include "operations.h"

#include <vector>

#include "src/base/logging.h"
#include "src/pvops/costs.h"

namespace mitosim::pt
{

bool
PageTableOps::createRoot(RootSet &roots, ProcId owner, SocketId socket,
                         pvops::KernelCost *cost)
{
    MITOSIM_ASSERT(roots.primaryRoot == InvalidPfn,
                   "createRoot: process already has a root");
    Pfn root = pv->allocPtPage(roots, owner, 4, socket, cost);
    if (root == InvalidPfn)
        return false;
    roots.primaryRoot = root;
    roots.resetToPrimary();
    return true;
}

Pfn
PageTableOps::descendAlloc(RootSet &roots, ProcId owner, VirtAddr va,
                           int target_level, PtPlacementPolicy &pt_policy,
                           SocketId faulting_socket,
                           pvops::KernelCost *cost)
{
    MITOSIM_ASSERT(roots.primaryRoot != InvalidPfn, "process has no root");
    Pfn table = roots.primaryRoot;
    for (int level = 4; level > target_level; --level) {
        unsigned idx = ptIndex(va, ptLevel(level));
        Pte entry = pv->readPte(roots, PteLoc{table, idx}, cost);
        if (!entry.present()) {
            SocketId target = pt_policy.chooseSocket(
                faulting_socket, mem.topology().numSockets());
            Pfn child = pv->allocPtPage(roots, owner, level - 1, target,
                                        cost);
            if (child == InvalidPfn)
                return InvalidPfn;
            Pte new_entry = Pte::make(child, PtePresent | PteWrite |
                                                 PteUser);
            pv->setPte(roots, PteLoc{table, idx}, new_entry, level, cost);
            table = child;
        } else {
            MITOSIM_ASSERT(!entry.huge(),
                           "descendAlloc: hit a huge leaf above target");
            table = entry.pfn();
        }
    }
    return table;
}

Pfn
PageTableOps::descend(const RootSet &roots, VirtAddr va,
                      int target_level) const
{
    if (roots.primaryRoot == InvalidPfn)
        return InvalidPfn;
    Pfn table = roots.primaryRoot;
    for (int level = 4; level > target_level; --level) {
        unsigned idx = ptIndex(va, ptLevel(level));
        Pte entry{mem.table(table)[idx]};
        if (!entry.present() || entry.huge())
            return InvalidPfn;
        table = entry.pfn();
    }
    return table;
}

bool
PageTableOps::map4K(RootSet &roots, ProcId owner, VirtAddr va, Pfn data_pfn,
                    std::uint64_t flags, PtPlacementPolicy &pt_policy,
                    SocketId faulting_socket, pvops::KernelCost *cost)
{
    Pfn leaf_table = descendAlloc(roots, owner, va, 1, pt_policy,
                                  faulting_socket, cost);
    if (leaf_table == InvalidPfn)
        return false;
    unsigned idx = ptIndex(va, PtLevel::L1);
    Pte value = Pte::make(data_pfn, flags | PtePresent);
    pv->setPte(roots, PteLoc{leaf_table, idx}, value, 1, cost);
    return true;
}

bool
PageTableOps::map2M(RootSet &roots, ProcId owner, VirtAddr va, Pfn head_pfn,
                    std::uint64_t flags, PtPlacementPolicy &pt_policy,
                    SocketId faulting_socket, pvops::KernelCost *cost)
{
    MITOSIM_ASSERT((va & (LargePageSize - 1)) == 0,
                   "map2M: va not 2MB aligned");
    MITOSIM_ASSERT((head_pfn & (FramesPerLargePage - 1)) == 0,
                   "map2M: pfn not 2MB aligned");
    Pfn dir_table = descendAlloc(roots, owner, va, 2, pt_policy,
                                 faulting_socket, cost);
    if (dir_table == InvalidPfn)
        return false;
    unsigned idx = ptIndex(va, PtLevel::L2);
    Pte value = Pte::make(head_pfn, flags | PtePresent | PteHuge);
    pv->setPte(roots, PteLoc{dir_table, idx}, value, 2, cost);
    return true;
}

WalkResult
PageTableOps::walk(const RootSet &roots, VirtAddr va) const
{
    WalkResult res;
    if (roots.primaryRoot == InvalidPfn)
        return res;
    Pfn table = roots.primaryRoot;
    for (int level = 4; level >= 1; --level) {
        unsigned idx = ptIndex(va, ptLevel(level));
        Pte entry{mem.table(table)[idx]};
        ++res.depth;
        if (!entry.present())
            return res;
        if (level == 2 && entry.huge()) {
            res.mapped = true;
            res.leaf = entry;
            res.loc = PteLoc{table, idx};
            res.size = PageSizeKind::Large2M;
            return res;
        }
        if (level == 1) {
            res.mapped = true;
            res.leaf = entry;
            res.loc = PteLoc{table, idx};
            res.size = PageSizeKind::Base4K;
            return res;
        }
        table = entry.pfn();
    }
    return res;
}

WalkResult
PageTableOps::unmap(RootSet &roots, VirtAddr va, pvops::KernelCost *cost)
{
    WalkResult res = walk(roots, va);
    if (!res.mapped)
        return res;
    int level = (res.size == PageSizeKind::Large2M) ? 2 : 1;
    pv->setPte(roots, res.loc, Pte{}, level, cost);
    return res;
}

bool
PageTableOps::protect(RootSet &roots, VirtAddr va, std::uint64_t set_flags,
                      std::uint64_t clear_flags, pvops::KernelCost *cost)
{
    WalkResult res = walk(roots, va);
    if (!res.mapped)
        return false;
    int level = (res.size == PageSizeKind::Large2M) ? 2 : 1;
    // Read-modify-write through the hook interface.
    Pte cur = pv->readPte(roots, res.loc, cost);
    Pte updated = cur.withFlags(set_flags, clear_flags);
    pv->setPte(roots, res.loc, updated, level, cost);
    return true;
}

WalkResult
PageTableOps::readLeaf(const RootSet &roots, VirtAddr va,
                       pvops::KernelCost *cost) const
{
    WalkResult res = walk(roots, va);
    if (res.mapped)
        res.leaf = pv->readPte(roots, res.loc, cost); // OR-ed A/D
    return res;
}

bool
PageTableOps::clearAccessedDirty(RootSet &roots, VirtAddr va,
                                 std::uint64_t bits,
                                 pvops::KernelCost *cost)
{
    WalkResult res = walk(roots, va);
    if (!res.mapped)
        return false;
    pv->clearAccessedDirty(roots, res.loc, bits, cost);
    return true;
}

void
PageTableOps::forEachLeaf(
    const RootSet &roots,
    const std::function<void(VirtAddr, PteLoc, Pte, PageSizeKind)> &fn)
    const
{
    if (roots.primaryRoot == InvalidPfn)
        return;

    struct Frame
    {
        Pfn table;
        int level;
        VirtAddr base;
    };
    std::vector<Frame> stack{{roots.primaryRoot, 4, 0}};
    while (!stack.empty()) {
        Frame f = stack.back();
        stack.pop_back();
        const std::uint64_t *tbl = mem.table(f.table);
        std::uint64_t span = bytesPerEntry(ptLevel(f.level));
        for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
            Pte entry{tbl[i]};
            if (!entry.present())
                continue;
            VirtAddr va = f.base + i * span;
            if (f.level == 1) {
                fn(va, PteLoc{f.table, i}, entry, PageSizeKind::Base4K);
            } else if (f.level == 2 && entry.huge()) {
                fn(va, PteLoc{f.table, i}, entry, PageSizeKind::Large2M);
            } else {
                stack.push_back({entry.pfn(), f.level - 1, va});
            }
        }
    }
}

void
PageTableOps::forEachTable(const RootSet &roots,
                           const std::function<void(Pfn, int)> &fn) const
{
    if (roots.primaryRoot == InvalidPfn)
        return;
    // Depth-first, parents before children; callers needing leaves-last
    // can collect and reverse.
    struct Frame
    {
        Pfn table;
        int level;
    };
    std::vector<Frame> stack{{roots.primaryRoot, 4}};
    while (!stack.empty()) {
        Frame f = stack.back();
        stack.pop_back();
        fn(f.table, f.level);
        if (f.level == 1)
            continue;
        const std::uint64_t *tbl = mem.table(f.table);
        for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
            Pte entry{tbl[i]};
            if (entry.present() && !(f.level == 2 && entry.huge()))
                stack.push_back({entry.pfn(), f.level - 1});
        }
    }
}

void
PageTableOps::destroyLevel(RootSet &roots, Pfn table, int level,
                           pvops::KernelCost *cost)
{
    if (level > 1) {
        const std::uint64_t *tbl = mem.table(table);
        for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
            Pte entry{tbl[i]};
            if (entry.present() && !(level == 2 && entry.huge()))
                destroyLevel(roots, entry.pfn(), level - 1, cost);
        }
    }
    pv->releasePtPage(roots, table, cost);
}

void
PageTableOps::destroy(RootSet &roots, pvops::KernelCost *cost)
{
    if (roots.primaryRoot == InvalidPfn)
        return;
    destroyLevel(roots, roots.primaryRoot, 4, cost);
    roots.primaryRoot = InvalidPfn;
    roots.perSocketRoot.fill(InvalidPfn);
    roots.replicaMask = SocketMask::none();
}

} // namespace mitosim::pt
