/**
 * @file
 * x86-64-style page-table entry as a value type.
 *
 * Bit layout follows the architecture: P/W/U low bits, Accessed (5) and
 * Dirty (6) set by the hardware walker, PS (7) marking a 2 MB leaf at L2,
 * frame number in bits 12..51. Bit 9 (one of the software-available bits)
 * carries the AutoNUMA hint, mirroring how Linux repurposes PROT_NONE for
 * NUMA-balancing faults.
 */

#ifndef MITOSIM_PT_PTE_H
#define MITOSIM_PT_PTE_H

#include <cstdint>

#include "src/base/types.h"

namespace mitosim::pt
{

/** PTE flag bits. */
enum PteFlags : std::uint64_t
{
    PtePresent = 1ull << 0,
    PteWrite = 1ull << 1,
    PteUser = 1ull << 2,
    PteAccessed = 1ull << 5,
    PteDirty = 1ull << 6,
    PteHuge = 1ull << 7, //!< PS: this L2 entry maps a 2 MB page
    PteNumaHint = 1ull << 9, //!< software: AutoNUMA sampling hint
};

/** Mask of the frame-number field (bits 12..51). */
inline constexpr std::uint64_t PtePfnMask = 0x000ffffffffff000ull;

/** Mask of the two hardware-written bits. */
inline constexpr std::uint64_t PteAdMask = PteAccessed | PteDirty;

/** A single page-table entry. */
class Pte
{
  public:
    constexpr Pte() = default;
    constexpr explicit Pte(std::uint64_t raw) : bits(raw) {}

    /** Build an entry mapping @p pfn with @p flags. */
    static constexpr Pte
    make(Pfn pfn, std::uint64_t flags)
    {
        return Pte{((pfn << PageShift) & PtePfnMask) | flags};
    }

    constexpr std::uint64_t raw() const { return bits; }

    constexpr bool present() const { return bits & PtePresent; }
    constexpr bool writable() const { return bits & PteWrite; }
    constexpr bool accessed() const { return bits & PteAccessed; }
    constexpr bool dirty() const { return bits & PteDirty; }
    constexpr bool huge() const { return bits & PteHuge; }
    constexpr bool numaHint() const { return bits & PteNumaHint; }

    constexpr Pfn pfn() const { return (bits & PtePfnMask) >> PageShift; }

    constexpr Pte
    withFlags(std::uint64_t set, std::uint64_t clear = 0) const
    {
        return Pte{(bits & ~clear) | set};
    }

    constexpr Pte withPfn(Pfn pfn) const
    {
        return Pte{(bits & ~PtePfnMask) | ((pfn << PageShift) & PtePfnMask)};
    }

    constexpr bool operator==(const Pte &o) const = default;

  private:
    std::uint64_t bits = 0;
};

/** Physical location of one PTE: containing PT frame + entry index. */
struct PteLoc
{
    Pfn ptPfn = InvalidPfn;
    unsigned index = 0;

    PhysAddr
    physAddr() const
    {
        return pfnToAddr(ptPfn) + index * sizeof(std::uint64_t);
    }

    bool operator==(const PteLoc &o) const = default;
};

} // namespace mitosim::pt

#endif // MITOSIM_PT_PTE_H
