/**
 * @file
 * Software page-table management: map, unmap, protect, walk, destroy.
 *
 * This is the kernel-side view of the radix tree. All mutation goes
 * through the PV-Ops backend so that replication is transparent to the
 * callers (the OS layer), exactly as in the paper's Linux implementation.
 * Reads used for tree navigation go through readPte() as well, which is
 * how the Mitosis backend guarantees OR-ed Accessed/Dirty bits.
 */

#ifndef MITOSIM_PT_OPERATIONS_H
#define MITOSIM_PT_OPERATIONS_H

#include <cstdint>
#include <functional>

#include "src/mem/physical_memory.h"
#include "src/pt/pte.h"
#include "src/pt/root_set.h"
#include "src/pvops/pvops.h"

namespace mitosim::pt
{

/** Result of a software walk. */
struct WalkResult
{
    bool mapped = false;       //!< leaf present
    Pte leaf;                  //!< leaf entry value (possibly OR-ed A/D)
    PteLoc loc;                //!< where the leaf lives (primary tree)
    PageSizeKind size = PageSizeKind::Base4K;
    int depth = 0;             //!< levels traversed (diagnostics)
};

/** How to choose the socket of a newly allocated page-table page. */
enum class PtPlacement
{
    FirstTouch,  //!< socket of the faulting thread (Linux default, §3.1)
    Interleave,  //!< round-robin across sockets
    Fixed,       //!< always a designated socket (§3.2 methodology)
};

/** PT placement policy state for one process. */
struct PtPlacementPolicy
{
    PtPlacement mode = PtPlacement::FirstTouch;
    SocketId fixedSocket = 0;     //!< used when mode == Fixed
    int interleaveNext = 0;       //!< rotor when mode == Interleave

    SocketId
    chooseSocket(SocketId faulting_socket, int num_sockets)
    {
        switch (mode) {
          case PtPlacement::FirstTouch:
            return faulting_socket;
          case PtPlacement::Interleave: {
            SocketId s = interleaveNext;
            interleaveNext = (interleaveNext + 1) % num_sockets;
            return s;
          }
          case PtPlacement::Fixed:
            return fixedSocket;
        }
        return faulting_socket;
    }
};

/**
 * Page-table operations bound to a physical memory and a PV-Ops backend.
 * Stateless per-process: all per-process state lives in RootSet.
 */
class PageTableOps
{
  public:
    PageTableOps(mem::PhysicalMemory &physmem, pvops::PvOps &backend)
        : mem(physmem), pv(&backend)
    {
    }

    /** Swap the PV-Ops backend (native <-> mitosis). */
    void setBackend(pvops::PvOps &backend) { pv = &backend; }
    pvops::PvOps &backend() { return *pv; }
    const pvops::PvOps &backend() const { return *pv; }

    /**
     * Create the root (L4) table for a new process.
     * @return false on allocation failure.
     */
    bool createRoot(RootSet &roots, ProcId owner, SocketId socket,
                    pvops::KernelCost *cost);

    /**
     * Map @p va -> @p data_pfn as a 4 KB page, allocating intermediate
     * tables as needed via the placement policy.
     */
    bool map4K(RootSet &roots, ProcId owner, VirtAddr va, Pfn data_pfn,
               std::uint64_t flags, PtPlacementPolicy &pt_policy,
               SocketId faulting_socket, pvops::KernelCost *cost);

    /** Map @p va -> 2 MB page at @p head_pfn (PS entry at L2). */
    bool map2M(RootSet &roots, ProcId owner, VirtAddr va, Pfn head_pfn,
               std::uint64_t flags, PtPlacementPolicy &pt_policy,
               SocketId faulting_socket, pvops::KernelCost *cost);

    /**
     * Software walk of the *primary* tree (used by the OS; the hardware
     * walker in pt/walker.h walks per-socket replicas with timing).
     * A/D bits in the result are OR-ed across replicas by the backend.
     */
    WalkResult walk(const RootSet &roots, VirtAddr va) const;

    /**
     * Clear the leaf mapping at @p va. Intermediate tables are retained
     * (as Linux does for non-exit unmaps). Returns the former leaf.
     */
    WalkResult unmap(RootSet &roots, VirtAddr va, pvops::KernelCost *cost);

    /**
     * Rewrite the leaf flags at @p va: set @p set_flags, clear
     * @p clear_flags. Returns false if @p va is unmapped.
     */
    bool protect(RootSet &roots, VirtAddr va, std::uint64_t set_flags,
                 std::uint64_t clear_flags, pvops::KernelCost *cost);

    /** OR-read A/D bits of the leaf at @p va; InvalidPfn leaf if absent. */
    WalkResult readLeaf(const RootSet &roots, VirtAddr va,
                        pvops::KernelCost *cost) const;

    /** Clear A/D bits at @p va across all replicas. */
    bool clearAccessedDirty(RootSet &roots, VirtAddr va, std::uint64_t bits,
                            pvops::KernelCost *cost);

    /// @name Range operations
    /// @{
    ///
    /// The seed kernel executed every range syscall as a per-page loop
    /// that re-descended the radix tree from CR3 for each 4 KB page.
    /// These operations descend once per table instead and then sweep
    /// its 512 slots, batching contiguous leaf stores through the
    /// backend's setPtes hook. The *charged* cost model is kept
    /// per-entry-identical to the per-page loops (each mapped page
    /// still pays one readPte per upper level, each store the same
    /// per-PTE charges) so that all reported metrics are unchanged;
    /// only host wall-clock improves. See EXPERIMENTS.md
    /// ("Range-based address-space operations").

    /**
     * Visit every present leaf whose entry intersects [start, end),
     * in address order. Descends once per table (raw reads, uncharged,
     * like walk()).
     */
    void forRange(const RootSet &roots, VirtAddr start, VirtAddr end,
                  const std::function<void(VirtAddr, PteLoc, Pte,
                                           PageSizeKind)> &fn) const;

    /**
     * Map every *unmapped* 4 KB slot in [start, end). @p fill(va)
     * supplies the leaf to install (data frame + flags) and is invoked
     * in ascending address order *before* any page-table page the
     * mapping needs is allocated, so physical-frame allocation order
     * matches the demand-fault path exactly. Missing intermediate
     * tables are allocated top-down via @p pt_policy, as descendAlloc
     * does. Slots already mapped (4 KB or huge) are skipped.
     *
     * @return the number of pages mapped.
     */
    std::uint64_t mapRange4K(RootSet &roots, ProcId owner, VirtAddr start,
                             VirtAddr end, PtPlacementPolicy &pt_policy,
                             SocketId faulting_socket,
                             const std::function<Pte(VirtAddr)> &fill,
                             pvops::KernelCost *cost);

    /**
     * Clear every present leaf intersecting [start, end). @p freed is
     * invoked with each former leaf (entry-aligned va) after its slot
     * run is cleared; intermediate tables are retained as in unmap().
     *
     * @return the number of leaf entries cleared.
     */
    std::uint64_t
    unmapRange(RootSet &roots, VirtAddr start, VirtAddr end,
               const std::function<void(VirtAddr, Pte, PageSizeKind)>
                   &freed,
               pvops::KernelCost *cost);

    /**
     * Read-modify-write the flags of every present leaf intersecting
     * [start, end): set @p set_flags, clear @p clear_flags. @p touched
     * (may be empty) observes each rewritten leaf's entry-aligned va.
     *
     * @return the number of leaf entries rewritten.
     */
    std::uint64_t
    protectRange(RootSet &roots, VirtAddr start, VirtAddr end,
                 std::uint64_t set_flags, std::uint64_t clear_flags,
                 const std::function<void(VirtAddr, PageSizeKind)>
                     &touched,
                 pvops::KernelCost *cost);

    /// @}

    /// @name THP lifecycle (collapse / split)
    /// @{

    /**
     * Primary-tree table containing @p va's entry at @p level, or
     * InvalidPfn when the path is missing (or covered by a huge leaf
     * above @p level). Read-only, uncharged, like walk().
     */
    Pfn tableFor(const RootSet &roots, VirtAddr va, int level) const;

    /**
     * Collapse the fully-populated leaf table under @p va (2 MB
     * aligned) into the single huge leaf @p huge: the backend's
     * collapseRange hook rewrites the L2 slot in *every* replica and
     * releases the dead leaf table's whole replica set. Data-frame
     * bookkeeping (copy, free) is the caller's job.
     *
     * @return false when @p va is not currently backed by a leaf table.
     */
    bool collapse2M(RootSet &roots, VirtAddr va, Pte huge,
                    pvops::KernelCost *cost);

    /**
     * Demote the huge leaf at @p va into 512 4 KB PTEs mapping the same
     * frames (flags preserved, PS dropped; hardware-written A/D bits
     * are inherited by every small PTE, the conservative Linux
     * choice). The fresh leaf table is placed via @p pt_policy.
     *
     * @return false when @p va has no huge leaf, or the table
     *         allocation failed (mapping left intact).
     */
    bool split2M(RootSet &roots, ProcId owner, VirtAddr va,
                 PtPlacementPolicy &pt_policy, SocketId faulting_socket,
                 pvops::KernelCost *cost);

    /// @}

    /**
     * Visit every present leaf entry in the primary tree.
     * @param fn (va, level-1-or-2 loc, pte, size)
     *
     * Templated on the visitor so the per-leaf callback inlines: the
     * THP scanner and kcompactd walk every mapped leaf per tick
     * (millions of invocations per run), where type-erased dispatch
     * through std::function is measurable host overhead.
     */
    template <typename Fn>
    void
    forEachLeaf(const RootSet &roots, Fn &&fn) const
    {
        if (roots.primaryRoot == InvalidPfn)
            return;

        struct Frame
        {
            Pfn table;
            int level;
            VirtAddr base;
        };
        std::vector<Frame> stack{{roots.primaryRoot, 4, 0}};
        while (!stack.empty()) {
            Frame f = stack.back();
            stack.pop_back();
            const std::uint64_t *tbl = mem.table(f.table);
            std::uint64_t span = bytesPerEntry(ptLevel(f.level));
            for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
                Pte entry{tbl[i]};
                if (!entry.present())
                    continue;
                VirtAddr va = f.base + i * span;
                if (f.level == 1) {
                    fn(va, PteLoc{f.table, i}, entry,
                       PageSizeKind::Base4K);
                } else if (f.level == 2 && entry.huge()) {
                    fn(va, PteLoc{f.table, i}, entry,
                       PageSizeKind::Large2M);
                } else {
                    stack.push_back({entry.pfn(), f.level - 1, va});
                }
            }
        }
    }

    /**
     * Visit every page-table page of the primary tree, leaves last.
     * @param fn (pt_pfn, level)
     */
    void forEachTable(const RootSet &roots,
                      const std::function<void(Pfn, int)> &fn) const;

    /** Free the whole tree (process exit), including replicas. */
    void destroy(RootSet &roots, pvops::KernelCost *cost);

    mem::PhysicalMemory &physmem() { return mem; }

  private:
    /**
     * Descend to the table at @p target_level, allocating missing
     * intermediate tables. Returns the pfn of the target-level table in
     * the primary tree, or InvalidPfn on allocation failure.
     */
    Pfn descendAlloc(RootSet &roots, ProcId owner, VirtAddr va,
                     int target_level, PtPlacementPolicy &pt_policy,
                     SocketId faulting_socket, pvops::KernelCost *cost);

    /** Read-only descend; InvalidPfn if a level is missing. */
    Pfn descend(const RootSet &roots, VirtAddr va, int target_level) const;

    /**
     * The shared range-cursor skeleton: recursively visit [start, end)
     * of the tree under @p table, invoking @p fn once per maximal run
     * of contiguous present leaf entries (L1 slots, or huge L2 slots)
     * with (table, level, table_base_va, first_slot, slot_count).
     * forRange/unmapRange/protectRange all sit on this.
     */
    void forEachLeafRun(
        Pfn table, int level, VirtAddr base, VirtAddr start, VirtAddr end,
        const std::function<void(Pfn, int, VirtAddr, unsigned, unsigned)>
            &fn) const;

    void destroyLevel(RootSet &roots, Pfn table, int level,
                      pvops::KernelCost *cost);

    mem::PhysicalMemory &mem;
    pvops::PvOps *pv;
};

} // namespace mitosim::pt

#endif // MITOSIM_PT_OPERATIONS_H
