/**
 * @file
 * Per-core two-level TLB, modelled after the paper's platform (§8:
 * "a per-core two-level TLB with 64+1024 entries").
 *
 * L1 is split by page size (64 entries for 4 KB, 32 for 2 MB, like
 * Haswell's DTLB); L2 is a unified 1024-entry STLB. Entries are tagged
 * with the translation's page size so a 2 MB entry covers its whole
 * range. Replacement is true LRU within a set.
 *
 * Every entry additionally carries the ASID (x86 PCID) it was installed
 * under: lookups only hit entries of the current address space (set via
 * setAsid, the PCID field of a CR3 write), so a core time-sharing
 * several processes keeps their translations apart without flushing.
 * flushAsid() is the selective INVPCID path the scheduler uses when an
 * ASID is recycled. A single-ASID user (the pinned default: one process
 * per core, full flush on every CR3 load) behaves exactly as before.
 */

#ifndef MITOSIM_TLB_TLB_H
#define MITOSIM_TLB_TLB_H

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/base/types.h"

namespace mitosim::tlb
{

/** Sizing knobs; defaults match the paper's machine. */
struct TlbConfig
{
    unsigned l1Entries4K = 64;
    unsigned l1Entries2M = 32;
    unsigned l1Ways = 4;
    unsigned l2Entries = 1024;
    unsigned l2Ways = 8;
    Cycles l1HitLatency = 1;  //!< folded into the load latency
    Cycles l2HitLatency = 7;  //!< STLB probe cost

    /**
     * Whether the unified L2 caches 2 MB translations. Haswell does
     * (default); Sandy-Bridge-class STLBs are 4 KB-only. Scaled-down
     * simulations disable this to keep the large-page-count : TLB-reach
     * ratio of the paper's machine (see DESIGN.md).
     */
    bool l2Holds2M = true;
};

/** One cached translation. */
struct TlbEntry
{
    Pfn pfn = InvalidPfn;          //!< 4 KB frame or 2 MB head frame
    bool writable = false;
    PageSizeKind size = PageSizeKind::Base4K;
};

/** Statistics for one TLB instance. */
struct TlbStats
{
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t flushes = 0;
    std::uint64_t singleInvalidations = 0;
    std::uint64_t asidFlushes = 0; //!< selective flushAsid() calls

    std::uint64_t
    lookups() const
    {
        return l1Hits + l2Hits + misses;
    }

    double
    missRate() const
    {
        std::uint64_t n = lookups();
        return n ? static_cast<double>(misses) / static_cast<double>(n)
                 : 0.0;
    }
};

/** Outcome of a lookup. */
struct TlbLookupResult
{
    bool hit = false;
    int hitLevel = 0; //!< 1 or 2 on hit, 0 on miss
    Cycles latency = 0;
    TlbEntry entry;
};

/** A two-level data TLB for one core. */
class TwoLevelTlb
{
  public:
    explicit TwoLevelTlb(const TlbConfig &config = TlbConfig{});

    /**
     * Set the current address space (the PCID field of a CR3 write).
     * Subsequent lookups hit only entries installed under this ASID;
     * inserts tag new entries with it.
     */
    void setAsid(Asid asid) { asid_ = asid; }
    Asid asid() const { return asid_; }

    /**
     * Probe for the translation of @p va under the current ASID. L1 by
     * size class, then L2. A hit in L2 promotes into L1.
     */
    TlbLookupResult
    lookup(VirtAddr va)
    {
        TlbLookupResult res;

        // MRU memo: a decoded copy of the most recently stamped L1
        // entry (set by every L1 hit, promote and insert; cleared by
        // every invalidation path). A repeat probe of the same page
        // under the same ASID short-circuits the whole set scan.
        // Exact, not approximate: the memo entry carries the newest
        // LRU stamp in its L1 set (nothing else in that set has been
        // stamped since, or the memo would have been replaced), so the
        // re-stamp a real probe would perform cannot change the
        // relative stamp order true-LRU victim choice depends on —
        // and the counter/latency effects charged here are exactly
        // the real L1-hit path's. Skipping the ++clock tick is
        // equally invisible: stamps stay unique and ordered.
        if ((va & memoMask_) == memoBase_ && asid_ == memoAsid_) {
            ++stats_.l1Hits;
            res.hit = true;
            res.hitLevel = 1;
            res.latency = cfg.l1HitLatency;
            res.entry = memoEntry_;
            return res;
        }

        // Early-out ASID guard (same licence as sawLarge_ below): if
        // every entry ever installed carries one single ASID and the
        // probing ASID differs, no array can hold a match — take the
        // miss directly without scanning. A guaranteed-miss probe
        // changes no state and no per-array stats, so skipping it is
        // invisible to the simulation.
        if (asid_ != onlyAsid_ && !multiAsid_ && anyInsert_)
            [[unlikely]] {
            ++stats_.misses;
            res.hit = false;
            res.latency = cfg.l2HitLatency;
            return res;
        }

        // L1, both size classes probed in parallel on real hardware.
        // Each size class's probes are skipped until a translation of
        // that size has ever been installed (saw4K_ / sawLarge_): a
        // guaranteed-miss probe changes no state and no stats, and
        // all-2M (or all-4K) address spaces otherwise pay for both
        // size classes on every single lookup.
        if (saw4K_) {
            if (std::size_t s = l1Small.find(tag4K(va), asid_);
                s != Array::npos) {
                l1Small.touch(s, ++clock);
                ++stats_.l1Hits;
                res.hit = true;
                res.hitLevel = 1;
                res.latency = cfg.l1HitLatency;
                res.entry = l1Small.entryAt(s);
                noteMru(va, res.entry);
                return res;
            }
        }
        if (sawLarge_) {
            if (std::size_t s = l1Large.find(tag2M(va), asid_);
                s != Array::npos) {
                l1Large.touch(s, ++clock);
                ++stats_.l1Hits;
                res.hit = true;
                res.hitLevel = 1;
                res.latency = cfg.l1HitLatency;
                res.entry = l1Large.entryAt(s);
                noteMru(va, res.entry);
                return res;
            }
        }

        // Unified L2: try the 4 KB-granule tag, then the 2 MB-granule tag.
        if (saw4K_) {
            if (std::size_t s = l2.find(tag4K(va), asid_);
                s != Array::npos) {
                l2.touch(s, ++clock);
                ++stats_.l2Hits;
                res.hit = true;
                res.hitLevel = 2;
                res.latency = cfg.l2HitLatency;
                res.entry = l2.entryAt(s);
                l1Small.insert(tag4K(va), asid_, res.entry, ++clock);
                noteMru(va, res.entry);
                return res;
            }
        }
        if (cfg.l2Holds2M && sawLarge_) {
            if (std::size_t s = l2.find(tag2M(va) | LargeTagBit, asid_);
                s != Array::npos) {
                l2.touch(s, ++clock);
                ++stats_.l2Hits;
                res.hit = true;
                res.hitLevel = 2;
                res.latency = cfg.l2HitLatency;
                res.entry = l2.entryAt(s);
                l1Large.insert(tag2M(va), asid_, res.entry, ++clock);
                noteMru(va, res.entry);
                return res;
            }
        }

        ++stats_.misses;
        res.hit = false;
        res.latency = cfg.l2HitLatency; // paid the full probe before missing
        return res;
    }

    /** Install a translation after a walk (fills L1 and L2). */
    void
    insert(VirtAddr va, const TlbEntry &entry)
    {
        if (!anyInsert_) {
            onlyAsid_ = asid_;
            anyInsert_ = true;
        } else if (asid_ != onlyAsid_) {
            multiAsid_ = true;
        }
        if (entry.size == PageSizeKind::Base4K) {
            saw4K_ = true;
            l1Small.insert(tag4K(va), asid_, entry, ++clock);
            l2.insert(tag4K(va), asid_, entry, ++clock);
        } else {
            sawLarge_ = true;
            l1Large.insert(tag2M(va), asid_, entry, ++clock);
            if (cfg.l2Holds2M)
                l2.insert(tag2M(va) | LargeTagBit, asid_, entry, ++clock);
        }
        noteMru(va, entry);
    }

    /**
     * Invalidate any entry covering @p va in *every* address space
     * (both levels) — the shootdown path is a broadcast, conservative
     * across ASIDs like a kernel INVPCID type-0 loop.
     */
    void invalidatePage(VirtAddr va);

    /** Full flush, e.g. on CR3 load without PCID. */
    void flushAll();

    /** Selective flush of every entry tagged @p asid (INVPCID type 1). */
    void flushAsid(Asid asid);

    const TlbStats &stats() const { return stats_; }
    void resetStats() { stats_ = TlbStats{}; }
    const TlbConfig &config() const { return cfg; }

    /**
     * Charge @p n L1 hits for fused same-page repeats (Core::accessRun)
     * without re-probing. Exact by MRU idempotence: the repeated entry
     * was stamped most-recent by the probe that opened the run, and
     * true-LRU victim choice depends only on the *relative* stamp
     * order within a set, so re-stamping the already-newest entry
     * cannot change any future hit, miss or eviction.
     */
    void noteFusedL1Hits(std::uint64_t n) { stats_.l1Hits += n; }

    /**
     * Visit every valid entry across both levels as (va, asid, entry).
     * A translation resident in L1 and L2 is visited once per copy.
     * Diagnostic/validation hook (vmcheck); not part of the timed path.
     */
    void forEachEntry(
        const std::function<void(VirtAddr, Asid, const TlbEntry &)> &fn)
        const;

  private:
    /**
     * One set-associative array, stored struct-of-arrays: the packed
     * tag vector is the only thing a find touches until it hits (the
     * ASID vector is read per way only after its tag matched, which is
     * rare outside the hit way), so a whole set's tags land in one or
     * two cache lines instead of one per slot. Victim selection in
     * insert is decision-identical to the old slot scan: matching or
     * first-free way wins immediately, else the earliest way with the
     * lowest LRU stamp.
     */
    class Array
    {
      public:
        Array(unsigned entries, unsigned ways);

        static constexpr std::size_t npos = ~std::size_t{0};
        static constexpr std::uint64_t InvalidTag = ~0ull;

        std::size_t
        find(std::uint64_t tag, Asid asid) const
        {
            std::size_t base =
                static_cast<std::size_t>(tag & (sets - 1)) * numWays;
            for (unsigned w = 0; w < numWays; ++w) {
                if (tags[base + w] == tag && asids[base + w] == asid)
                    return base + w;
            }
            return npos;
        }

        void touch(std::size_t slot, std::uint32_t now)
        {
            lrus[slot] = now;
        }

        const TlbEntry &entryAt(std::size_t slot) const
        {
            return entries[slot];
        }

        void
        insert(std::uint64_t tag, Asid asid, const TlbEntry &entry,
               std::uint32_t now)
        {
            std::size_t base =
                static_cast<std::size_t>(tag & (sets - 1)) * numWays;
            std::size_t victim = base;
            for (unsigned w = 0; w < numWays; ++w) {
                std::size_t i = base + w;
                if ((tags[i] == tag && asids[i] == asid) ||
                    tags[i] == InvalidTag) {
                    victim = i;
                    break;
                }
                if (lrus[victim] > lrus[i])
                    victim = i;
            }
            tags[victim] = tag;
            asids[victim] = asid;
            entries[victim] = entry;
            lrus[victim] = now;
        }

        void invalidate(std::uint64_t tag); //!< all ASIDs holding tag
        void flush();
        void flushAsid(Asid asid);

        /** Visit every valid slot as (tag, asid, entry). */
        template <typename Fn>
        void
        forEach(Fn &&fn) const
        {
            for (std::size_t i = 0; i < tags.size(); ++i) {
                if (tags[i] != InvalidTag)
                    fn(tags[i], asids[i], entries[i]);
            }
        }

      private:
        unsigned numWays;
        std::uint64_t sets;
        std::vector<std::uint64_t> tags;  //!< InvalidTag = empty slot
        std::vector<Asid> asids;
        std::vector<TlbEntry> entries;
        std::vector<std::uint32_t> lrus;
    };

    static std::uint64_t tag4K(VirtAddr va) { return va >> PageShift; }
    static std::uint64_t tag2M(VirtAddr va) { return va >> LargePageShift; }

    /**
     * Remember @p entry (just stamped in its L1 array, so the newest
     * stamp in its set) as the lookup memo. The base/mask pair makes
     * the memo hit test one AND+compare regardless of page size.
     */
    void
    noteMru(VirtAddr va, const TlbEntry &entry)
    {
        memoMask_ = (entry.size == PageSizeKind::Large2M)
                        ? ~(LargePageSize - 1)
                        : ~(PageSize - 1);
        memoBase_ = va & memoMask_;
        memoAsid_ = asid_;
        memoEntry_ = entry;
    }

    /** Drop the memo (any invalidation: mask 0 can never match ~0). */
    void
    clearMemo()
    {
        memoBase_ = ~0ull;
        memoMask_ = 0;
    }

    /** Granularity marker mixed into unified-L2 tags (no collisions). */
    static constexpr std::uint64_t LargeTagBit = 1ull << 63;

    TlbConfig cfg;
    Array l1Small;
    Array l1Large;
    Array l2;     //!< unified; tags are 4K-granule with size in entry
    /**
     * Whether any 2 MB / any 4 KB translation was ever installed.
     * Sticky (never cleared by flushes): false only guarantees the
     * size class's arrays are empty, which licenses skipping their
     * probes — a pure host-side shortcut with no effect on simulated
     * state or statistics.
     */
    bool sawLarge_ = false;
    bool saw4K_ = false;
    /**
     * Sticky single-ASID tracking for the lookup early-out: onlyAsid_
     * is the ASID of the first insert ever, multiAsid_ goes true (and
     * stays true) once a second distinct ASID is installed. While
     * multiAsid_ is false, a probe under any other ASID is a
     * guaranteed miss. The pinned default (one process per core) never
     * sets multiAsid_.
     */
    Asid onlyAsid_ = 0;
    bool anyInsert_ = false;
    bool multiAsid_ = false;
    Asid asid_ = 0;
    std::uint32_t clock = 0;
    TlbStats stats_;
    // Lookup memo (see lookup()/noteMru): decoded copy of the most
    // recently stamped L1 entry. memoBase_ = ~0 with memoMask_ = 0 is
    // the "empty" state — no canonical address matches it.
    std::uint64_t memoBase_ = ~0ull;
    std::uint64_t memoMask_ = 0;
    Asid memoAsid_ = 0;
    TlbEntry memoEntry_;
};

} // namespace mitosim::tlb

#endif // MITOSIM_TLB_TLB_H
