#include "paging_structure_cache.h"

#include "src/base/logging.h"

namespace mitosim::tlb
{

PagingStructureCache::Slot *
PagingStructureCache::Level::find(Pfn cr3, Asid asid, VirtAddr va)
{
    std::uint64_t tag = va >> tagShift;
    for (auto &s : slots) {
        if (s.cr3 == cr3 && s.asid == asid && s.vaTag == tag)
            return &s;
    }
    return nullptr;
}

void
PagingStructureCache::Level::insert(Pfn cr3, Asid asid, VirtAddr va,
                                    Pfn table, std::uint32_t now)
{
    std::uint64_t tag = va >> tagShift;
    Slot *victim = &slots[0];
    for (auto &s : slots) {
        if (s.cr3 == cr3 && s.asid == asid && s.vaTag == tag) {
            s.tablePfn = table;
            s.lru = now;
            return;
        }
        if (s.cr3 == InvalidPfn) {
            victim = &s;
            break;
        }
        if (s.lru < victim->lru)
            victim = &s;
    }
    victim->cr3 = cr3;
    victim->asid = asid;
    victim->vaTag = tag;
    victim->tablePfn = table;
    victim->lru = now;
}

void
PagingStructureCache::Level::invalidate(VirtAddr va)
{
    std::uint64_t tag = va >> tagShift;
    for (auto &s : slots) {
        if (s.vaTag == tag)
            s.cr3 = InvalidPfn;
    }
}

void
PagingStructureCache::Level::flush()
{
    for (auto &s : slots)
        s.cr3 = InvalidPfn;
}

void
PagingStructureCache::Level::flushAsid(Asid asid)
{
    for (auto &s : slots) {
        if (s.asid == asid)
            s.cr3 = InvalidPfn;
    }
}

PagingStructureCache::PagingStructureCache(const PwcConfig &config)
{
    MITOSIM_ASSERT(config.pml4eEntries > 0 && config.pdpteEntries > 0 &&
                   config.pdeEntries > 0);
    pml4e.slots.resize(config.pml4eEntries);
    pml4e.tagShift = PageShift + 3 * PtIndexBits; // 39
    pdpte.slots.resize(config.pdpteEntries);
    pdpte.tagShift = PageShift + 2 * PtIndexBits; // 30
    pde.slots.resize(config.pdeEntries);
    pde.tagShift = PageShift + PtIndexBits; // 21
}

PagingStructureCache::Probe
PagingStructureCache::lookup(Pfn cr3, VirtAddr va)
{
    Probe p;
    if (Slot *s = pde.find(cr3, asid_, va)) {
        s->lru = ++clock;
        ++stats_.hits;
        p.startLevel = 1;
        p.tablePfn = s->tablePfn;
        return p;
    }
    if (Slot *s = pdpte.find(cr3, asid_, va)) {
        s->lru = ++clock;
        ++stats_.hits;
        p.startLevel = 2;
        p.tablePfn = s->tablePfn;
        return p;
    }
    if (Slot *s = pml4e.find(cr3, asid_, va)) {
        s->lru = ++clock;
        ++stats_.hits;
        p.startLevel = 3;
        p.tablePfn = s->tablePfn;
        return p;
    }
    ++stats_.misses;
    p.startLevel = 4;
    p.tablePfn = cr3;
    return p;
}

void
PagingStructureCache::fill(Pfn cr3, VirtAddr va, int level, Pfn table_pfn)
{
    switch (level) {
      case 3:
        pml4e.insert(cr3, asid_, va, table_pfn, ++clock);
        break;
      case 2:
        pdpte.insert(cr3, asid_, va, table_pfn, ++clock);
        break;
      case 1:
        pde.insert(cr3, asid_, va, table_pfn, ++clock);
        break;
      default:
        panic("PWC fill with bad level %d", level);
    }
}

void
PagingStructureCache::invalidate(VirtAddr va)
{
    pml4e.invalidate(va);
    pdpte.invalidate(va);
    pde.invalidate(va);
}

void
PagingStructureCache::flushAll()
{
    pml4e.flush();
    pdpte.flush();
    pde.flush();
    ++stats_.flushes;
}

void
PagingStructureCache::flushAsid(Asid asid)
{
    pml4e.flushAsid(asid);
    pdpte.flushAsid(asid);
    pde.flushAsid(asid);
    ++stats_.asidFlushes;
}

void
PagingStructureCache::forEachEntry(
    const std::function<void(Pfn, Asid, int, Pfn)> &fn) const
{
    pml4e.forEach([&](const Slot &s) { fn(s.cr3, s.asid, 3, s.tablePfn); });
    pdpte.forEach([&](const Slot &s) { fn(s.cr3, s.asid, 2, s.tablePfn); });
    pde.forEach([&](const Slot &s) { fn(s.cr3, s.asid, 1, s.tablePfn); });
}

} // namespace mitosim::tlb
