#include "paging_structure_cache.h"

#include "src/base/logging.h"

namespace mitosim::tlb
{

void
PagingStructureCache::Level::resize(unsigned n)
{
    vaTags.assign(n, ~0ull);
    cr3s.assign(n, InvalidPfn);
    asids.assign(n, 0);
    tablePfns.assign(n, InvalidPfn);
    lrus.assign(n, 0);
}

void
PagingStructureCache::Level::invalidate(VirtAddr va)
{
    std::uint64_t tag = va >> tagShift;
    for (std::size_t i = 0; i < vaTags.size(); ++i) {
        if (vaTags[i] == tag)
            cr3s[i] = InvalidPfn;
    }
}

void
PagingStructureCache::Level::flush()
{
    for (auto &c : cr3s)
        c = InvalidPfn;
}

void
PagingStructureCache::Level::flushAsid(Asid asid)
{
    for (std::size_t i = 0; i < cr3s.size(); ++i) {
        if (asids[i] == asid)
            cr3s[i] = InvalidPfn;
    }
}

PagingStructureCache::PagingStructureCache(const PwcConfig &config)
{
    MITOSIM_ASSERT(config.pml4eEntries > 0 && config.pdpteEntries > 0 &&
                   config.pdeEntries > 0);
    pml4e.resize(config.pml4eEntries);
    pml4e.tagShift = PageShift + 3 * PtIndexBits; // 39
    pdpte.resize(config.pdpteEntries);
    pdpte.tagShift = PageShift + 2 * PtIndexBits; // 30
    pde.resize(config.pdeEntries);
    pde.tagShift = PageShift + PtIndexBits; // 21
}

void
PagingStructureCache::invalidate(VirtAddr va)
{
    clearMemo();
    pml4e.invalidate(va);
    pdpte.invalidate(va);
    pde.invalidate(va);
}

void
PagingStructureCache::flushAll()
{
    clearMemo();
    pml4e.flush();
    pdpte.flush();
    pde.flush();
    ++stats_.flushes;
}

void
PagingStructureCache::flushAsid(Asid asid)
{
    clearMemo();
    pml4e.flushAsid(asid);
    pdpte.flushAsid(asid);
    pde.flushAsid(asid);
    ++stats_.asidFlushes;
}

void
PagingStructureCache::forEachEntry(
    const std::function<void(Pfn, Asid, int, Pfn)> &fn) const
{
    pml4e.forEach(
        [&](Pfn cr3, Asid asid, Pfn table) { fn(cr3, asid, 3, table); });
    pdpte.forEach(
        [&](Pfn cr3, Asid asid, Pfn table) { fn(cr3, asid, 2, table); });
    pde.forEach(
        [&](Pfn cr3, Asid asid, Pfn table) { fn(cr3, asid, 1, table); });
}

} // namespace mitosim::tlb
