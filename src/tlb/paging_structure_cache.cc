#include "paging_structure_cache.h"

#include "src/base/logging.h"

namespace mitosim::tlb
{

void
PagingStructureCache::Level::invalidate(VirtAddr va)
{
    std::uint64_t tag = va >> tagShift;
    for (auto &s : slots) {
        if (s.vaTag == tag)
            s.cr3 = InvalidPfn;
    }
}

void
PagingStructureCache::Level::flush()
{
    for (auto &s : slots)
        s.cr3 = InvalidPfn;
}

void
PagingStructureCache::Level::flushAsid(Asid asid)
{
    for (auto &s : slots) {
        if (s.asid == asid)
            s.cr3 = InvalidPfn;
    }
}

PagingStructureCache::PagingStructureCache(const PwcConfig &config)
{
    MITOSIM_ASSERT(config.pml4eEntries > 0 && config.pdpteEntries > 0 &&
                   config.pdeEntries > 0);
    pml4e.slots.resize(config.pml4eEntries);
    pml4e.tagShift = PageShift + 3 * PtIndexBits; // 39
    pdpte.slots.resize(config.pdpteEntries);
    pdpte.tagShift = PageShift + 2 * PtIndexBits; // 30
    pde.slots.resize(config.pdeEntries);
    pde.tagShift = PageShift + PtIndexBits; // 21
}

void
PagingStructureCache::invalidate(VirtAddr va)
{
    pml4e.invalidate(va);
    pdpte.invalidate(va);
    pde.invalidate(va);
}

void
PagingStructureCache::flushAll()
{
    pml4e.flush();
    pdpte.flush();
    pde.flush();
    ++stats_.flushes;
}

void
PagingStructureCache::flushAsid(Asid asid)
{
    pml4e.flushAsid(asid);
    pdpte.flushAsid(asid);
    pde.flushAsid(asid);
    ++stats_.asidFlushes;
}

void
PagingStructureCache::forEachEntry(
    const std::function<void(Pfn, Asid, int, Pfn)> &fn) const
{
    pml4e.forEach([&](const Slot &s) { fn(s.cr3, s.asid, 3, s.tablePfn); });
    pdpte.forEach([&](const Slot &s) { fn(s.cr3, s.asid, 2, s.tablePfn); });
    pde.forEach([&](const Slot &s) { fn(s.cr3, s.asid, 1, s.tablePfn); });
}

} // namespace mitosim::tlb
