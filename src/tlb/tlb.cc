#include "tlb.h"

#include <algorithm>

#include "src/base/logging.h"

namespace mitosim::tlb
{

namespace
{

std::uint64_t
roundDownPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

} // namespace

TwoLevelTlb::Array::Array(unsigned num_entries, unsigned ways)
    : numWays(ways)
{
    MITOSIM_ASSERT(ways > 0 && num_entries >= ways);
    sets = roundDownPow2(num_entries / ways);
    tags.assign(sets * ways, InvalidTag);
    asids.assign(sets * ways, 0);
    entries.assign(sets * ways, TlbEntry{});
    lrus.assign(sets * ways, 0);
}

void
TwoLevelTlb::Array::invalidate(std::uint64_t tag)
{
    // Shootdowns broadcast: the same page may be cached under several
    // ASIDs (one per tenant that touched it before a remap).
    std::size_t base = static_cast<std::size_t>(tag & (sets - 1)) * numWays;
    for (unsigned w = 0; w < numWays; ++w) {
        if (tags[base + w] == tag)
            tags[base + w] = InvalidTag;
    }
}

void
TwoLevelTlb::Array::flush()
{
    std::fill(tags.begin(), tags.end(), InvalidTag);
}

void
TwoLevelTlb::Array::flushAsid(Asid asid)
{
    for (std::size_t i = 0; i < tags.size(); ++i) {
        if (asids[i] == asid)
            tags[i] = InvalidTag;
    }
}

TwoLevelTlb::TwoLevelTlb(const TlbConfig &config)
    : cfg(config),
      l1Small(cfg.l1Entries4K, cfg.l1Ways),
      l1Large(cfg.l1Entries2M, cfg.l1Ways),
      l2(cfg.l2Entries, cfg.l2Ways)
{
}

void
TwoLevelTlb::invalidatePage(VirtAddr va)
{
    l1Small.invalidate(tag4K(va));
    l1Large.invalidate(tag2M(va));
    l2.invalidate(tag4K(va));
    l2.invalidate(tag2M(va) | LargeTagBit);
    clearMemo();
    ++stats_.singleInvalidations;
}

void
TwoLevelTlb::flushAll()
{
    l1Small.flush();
    l1Large.flush();
    l2.flush();
    clearMemo();
    ++stats_.flushes;
}

void
TwoLevelTlb::flushAsid(Asid asid)
{
    l1Small.flushAsid(asid);
    l1Large.flushAsid(asid);
    l2.flushAsid(asid);
    clearMemo();
    ++stats_.asidFlushes;
}

void
TwoLevelTlb::forEachEntry(
    const std::function<void(VirtAddr, Asid, const TlbEntry &)> &fn) const
{
    // The VA is recoverable from the tag: 2 MB entries tag at 2 MB
    // granularity (with LargeTagBit mixed in for the unified L2).
    auto visit = [&](std::uint64_t tag, Asid asid,
                     const TlbEntry &entry) {
        VirtAddr va = entry.size == PageSizeKind::Large2M
                          ? ((tag & ~LargeTagBit) << LargePageShift)
                          : (tag << PageShift);
        fn(va, asid, entry);
    };
    l1Small.forEach(visit);
    l1Large.forEach(visit);
    l2.forEach(visit);
}

} // namespace mitosim::tlb
