#include "tlb.h"

#include "src/base/logging.h"

namespace mitosim::tlb
{

namespace
{

std::uint64_t
roundDownPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

/** Granularity marker mixed into unified-L2 tags to avoid collisions. */
constexpr std::uint64_t LargeTagBit = 1ull << 63;

} // namespace

TwoLevelTlb::Array::Array(unsigned entries, unsigned ways)
    : numWays(ways)
{
    MITOSIM_ASSERT(ways > 0 && entries >= ways);
    sets = roundDownPow2(entries / ways);
    slots.assign(sets * ways, Slot{});
}

TwoLevelTlb::Slot *
TwoLevelTlb::Array::find(std::uint64_t tag, Asid asid)
{
    std::size_t base = static_cast<std::size_t>(tag & (sets - 1)) * numWays;
    for (unsigned w = 0; w < numWays; ++w) {
        if (slots[base + w].tag == tag && slots[base + w].asid == asid)
            return &slots[base + w];
    }
    return nullptr;
}

void
TwoLevelTlb::Array::insert(std::uint64_t tag, Asid asid,
                           const TlbEntry &entry, std::uint32_t now)
{
    std::size_t base = static_cast<std::size_t>(tag & (sets - 1)) * numWays;
    std::size_t victim = base;
    for (unsigned w = 0; w < numWays; ++w) {
        Slot &s = slots[base + w];
        if ((s.tag == tag && s.asid == asid) || s.tag == ~0ull) {
            victim = base + w;
            break;
        }
        if (slots[victim].lru > s.lru)
            victim = base + w;
    }
    slots[victim].tag = tag;
    slots[victim].asid = asid;
    slots[victim].entry = entry;
    slots[victim].lru = now;
}

void
TwoLevelTlb::Array::invalidate(std::uint64_t tag)
{
    // Shootdowns broadcast: the same page may be cached under several
    // ASIDs (one per tenant that touched it before a remap).
    std::size_t base = static_cast<std::size_t>(tag & (sets - 1)) * numWays;
    for (unsigned w = 0; w < numWays; ++w) {
        if (slots[base + w].tag == tag)
            slots[base + w].tag = ~0ull;
    }
}

void
TwoLevelTlb::Array::flush()
{
    for (auto &s : slots)
        s.tag = ~0ull;
}

void
TwoLevelTlb::Array::flushAsid(Asid asid)
{
    for (auto &s : slots) {
        if (s.asid == asid)
            s.tag = ~0ull;
    }
}

TwoLevelTlb::TwoLevelTlb(const TlbConfig &config)
    : cfg(config),
      l1Small(cfg.l1Entries4K, cfg.l1Ways),
      l1Large(cfg.l1Entries2M, cfg.l1Ways),
      l2(cfg.l2Entries, cfg.l2Ways)
{
}

TlbLookupResult
TwoLevelTlb::lookup(VirtAddr va)
{
    TlbLookupResult res;

    // L1, both size classes probed in parallel on real hardware.
    if (Slot *s = l1Small.find(tag4K(va), asid_)) {
        s->lru = ++clock;
        ++stats_.l1Hits;
        res.hit = true;
        res.hitLevel = 1;
        res.latency = cfg.l1HitLatency;
        res.entry = s->entry;
        return res;
    }
    if (Slot *s = l1Large.find(tag2M(va), asid_)) {
        s->lru = ++clock;
        ++stats_.l1Hits;
        res.hit = true;
        res.hitLevel = 1;
        res.latency = cfg.l1HitLatency;
        res.entry = s->entry;
        return res;
    }

    // Unified L2: try the 4 KB-granule tag, then the 2 MB-granule tag.
    if (Slot *s = l2.find(tag4K(va), asid_)) {
        s->lru = ++clock;
        ++stats_.l2Hits;
        res.hit = true;
        res.hitLevel = 2;
        res.latency = cfg.l2HitLatency;
        res.entry = s->entry;
        l1Small.insert(tag4K(va), asid_, s->entry, ++clock);
        return res;
    }
    if (cfg.l2Holds2M) {
        if (Slot *s = l2.find(tag2M(va) | LargeTagBit, asid_)) {
            s->lru = ++clock;
            ++stats_.l2Hits;
            res.hit = true;
            res.hitLevel = 2;
            res.latency = cfg.l2HitLatency;
            res.entry = s->entry;
            l1Large.insert(tag2M(va), asid_, s->entry, ++clock);
            return res;
        }
    }

    ++stats_.misses;
    res.hit = false;
    res.latency = cfg.l2HitLatency; // paid the full probe before missing
    return res;
}

void
TwoLevelTlb::insert(VirtAddr va, const TlbEntry &entry)
{
    if (entry.size == PageSizeKind::Base4K) {
        l1Small.insert(tag4K(va), asid_, entry, ++clock);
        l2.insert(tag4K(va), asid_, entry, ++clock);
    } else {
        l1Large.insert(tag2M(va), asid_, entry, ++clock);
        if (cfg.l2Holds2M)
            l2.insert(tag2M(va) | LargeTagBit, asid_, entry, ++clock);
    }
}

void
TwoLevelTlb::invalidatePage(VirtAddr va)
{
    l1Small.invalidate(tag4K(va));
    l1Large.invalidate(tag2M(va));
    l2.invalidate(tag4K(va));
    l2.invalidate(tag2M(va) | LargeTagBit);
    ++stats_.singleInvalidations;
}

void
TwoLevelTlb::flushAll()
{
    l1Small.flush();
    l1Large.flush();
    l2.flush();
    ++stats_.flushes;
}

void
TwoLevelTlb::flushAsid(Asid asid)
{
    l1Small.flushAsid(asid);
    l1Large.flushAsid(asid);
    l2.flushAsid(asid);
    ++stats_.asidFlushes;
}

void
TwoLevelTlb::forEachEntry(
    const std::function<void(VirtAddr, Asid, const TlbEntry &)> &fn) const
{
    // The VA is recoverable from the tag: 2 MB entries tag at 2 MB
    // granularity (with LargeTagBit mixed in for the unified L2).
    auto visit = [&](const Slot &s) {
        VirtAddr va = s.entry.size == PageSizeKind::Large2M
                          ? ((s.tag & ~LargeTagBit) << LargePageShift)
                          : (s.tag << PageShift);
        fn(va, s.asid, s.entry);
    };
    l1Small.forEach(visit);
    l1Large.forEach(visit);
    l2.forEach(visit);
}

} // namespace mitosim::tlb
