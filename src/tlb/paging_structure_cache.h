/**
 * @file
 * Paging-structure caches (MMU caches), per core.
 *
 * x86 walkers cache upper-level entries (PML4E/PDPTE/PDE) so that a walk
 * can skip levels [Barr et al., ISCA'10; Bhattacharjee, MICRO'13 — paper
 * refs 19/24]. The paper's §3.1 notes "even though MMU caches help reduce
 * some of the accesses, at least leaf-level PTEs have to be accessed" —
 * modelling these caches is essential or the simulator would overstate
 * upper-level walk traffic.
 *
 * Entries are tagged by (root pfn, ASID, va prefix), so switching CR3
 * (e.g. to a socket-local replica) naturally misses, and replicas are
 * cached independently per core, as on real hardware. The ASID tag (set
 * via setAsid on context switch, like the PCID field of CR3) exists for
 * *selective invalidation*: flushAsid() removes one dead or recycled
 * address space's entries without nuking the other tenants sharing the
 * core — essential once root-page frames can be freed and reused, since
 * a recycled root pfn would otherwise hit another process's stale
 * upper-level entries.
 */

#ifndef MITOSIM_TLB_PAGING_STRUCTURE_CACHE_H
#define MITOSIM_TLB_PAGING_STRUCTURE_CACHE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/logging.h"
#include "src/base/types.h"

namespace mitosim::tlb
{

/** Per-level capacity; defaults are Haswell-like. */
struct PwcConfig
{
    unsigned pml4eEntries = 2;  //!< caches L4 entries (skip to L3)
    unsigned pdpteEntries = 4;  //!< caches L3 entries (skip to L2)
    unsigned pdeEntries = 32;   //!< caches L2 entries (skip to L1)
};

/** PWC statistics. */
struct PwcStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0; //!< lookups that found no prefix at all
    std::uint64_t flushes = 0;
    std::uint64_t asidFlushes = 0; //!< selective flushAsid() calls
};

/**
 * The three upper-level caches. Lookup returns the deepest cached level
 * so the walker can start there.
 */
class PagingStructureCache
{
  public:
    explicit PagingStructureCache(const PwcConfig &config = PwcConfig{});

    /** Result of a probe: where to start the walk. */
    struct Probe
    {
        /**
         * Level of the *next table to read*: 1 means only the leaf PTE
         * remains (PDE cached), 4 means start from the root.
         */
        int startLevel = 4;
        /** pfn of the table to read at startLevel (root if 4). */
        Pfn tablePfn = InvalidPfn;
    };

    /** Current address space for lookups/fills (PCID field of CR3). */
    void setAsid(Asid asid) { asid_ = asid; }
    Asid asid() const { return asid_; }

    /** Find the deepest cached prefix for @p va under root @p cr3. */
    Probe
    lookup(Pfn cr3, VirtAddr va)
    {
        Probe p;
        // MRU memo over the pde level (the first and longest scan of
        // every probe): the most recently stamped pde entry, cleared
        // by every invalidation path. Exact by MRU idempotence — the
        // memo entry's stamp is the newest in the (fully-associative)
        // pde array, so skipping the re-stamp cannot change any LRU
        // victim choice, and the hit counter and probe result are
        // exactly the scan's. Sequential walk streams (populate, range
        // sweeps) hit the same 2 MB prefix for 512 walks in a row.
        if ((va >> PdeShift) == memoTag_ && cr3 == memoCr3_ &&
            asid_ == memoAsid_) {
            ++stats_.hits;
            p.startLevel = 1;
            p.tablePfn = memoTablePfn_;
            return p;
        }
        if (std::size_t s = pde.find(cr3, asid_, va); s != npos) {
            pde.lrus[s] = ++clock;
            ++stats_.hits;
            p.startLevel = 1;
            p.tablePfn = pde.tablePfns[s];
            noteMru(cr3, va, pde.tablePfns[s]);
            return p;
        }
        if (std::size_t s = pdpte.find(cr3, asid_, va); s != npos) {
            pdpte.lrus[s] = ++clock;
            ++stats_.hits;
            p.startLevel = 2;
            p.tablePfn = pdpte.tablePfns[s];
            return p;
        }
        if (std::size_t s = pml4e.find(cr3, asid_, va); s != npos) {
            pml4e.lrus[s] = ++clock;
            ++stats_.hits;
            p.startLevel = 3;
            p.tablePfn = pml4e.tablePfns[s];
            return p;
        }
        ++stats_.misses;
        p.startLevel = 4;
        p.tablePfn = cr3;
        return p;
    }

    /**
     * Record that under @p cr3 the table at @p level for @p va is
     * @p table_pfn (called by the walker as it descends). @p level is the
     * level of the table being *entered* (3, 2, or 1).
     */
    void
    fill(Pfn cr3, VirtAddr va, int level, Pfn table_pfn)
    {
        switch (level) {
          case 3:
            pml4e.insert(cr3, asid_, va, table_pfn, ++clock);
            break;
          case 2:
            pdpte.insert(cr3, asid_, va, table_pfn, ++clock);
            break;
          case 1:
            pde.insert(cr3, asid_, va, table_pfn, ++clock);
            noteMru(cr3, va, table_pfn); // freshest stamp in the level
            break;
          default:
            panic("PWC fill with bad level %d", level);
        }
    }

    /** Invalidate all entries covering @p va, any ASID (shootdowns). */
    void invalidate(VirtAddr va);

    /** Full flush (CR3 write without PCID). */
    void flushAll();

    /** Selective flush of every entry tagged @p asid. */
    void flushAsid(Asid asid);

    const PwcStats &stats() const { return stats_; }
    void resetStats() { stats_ = PwcStats{}; }

    /**
     * Visit every valid entry as (cr3, asid, level, table pfn), where
     * @p level is the level of the cached table — 3 for PML4E entries,
     * 2 for PDPTEs, 1 for PDEs, matching Probe::startLevel. Diagnostic/
     * validation hook (vmcheck); not part of the timed path.
     */
    void forEachEntry(
        const std::function<void(Pfn, Asid, int, Pfn)> &fn) const;

  private:
    static constexpr std::size_t npos = ~std::size_t{0};
    /** pde-level tag shift (va >> 21 == 2 MB region index). */
    static constexpr unsigned PdeShift = 21;

    void
    noteMru(Pfn cr3, VirtAddr va, Pfn table_pfn)
    {
        memoTag_ = va >> PdeShift;
        memoCr3_ = cr3;
        memoAsid_ = asid_;
        memoTablePfn_ = table_pfn;
    }
    void clearMemo() { memoTag_ = ~0ull; }

    /**
     * Fully-associative array for one level, stored struct-of-arrays:
     * the packed vaTag vector is scanned first (it is the most
     * discriminating field for a single process, and the whole pde
     * level's tags fit in four cache lines), cr3 / ASID confirm only
     * on a tag match. Scan order, the free-slot early break in insert,
     * and the lowest-LRU tiebreak are identical to the old slot scan,
     * so victim choice — and therefore every simulated outcome — is
     * unchanged. Emptiness is keyed on cr3 == InvalidPfn, exactly as
     * before (invalidate/flush leave stale vaTags behind, which can
     * never match because a live cr3 is never InvalidPfn).
     */
    struct Level
    {
        std::vector<std::uint64_t> vaTags;
        std::vector<Pfn> cr3s; //!< InvalidPfn = empty slot
        std::vector<Asid> asids;
        std::vector<Pfn> tablePfns;
        std::vector<std::uint32_t> lrus;
        unsigned tagShift; //!< VA bits above this shift form the tag

        /**
         * Sticky "insert() has ever run" flag: lets find() skip the tag
         * scan entirely while the level has never been filled. A 2 MB-
         * mapped address space never fills the pde level (walks stop at
         * the level-2 leaf), so its 32-tag scan — the first probe of
         * every lookup — is pure waste there. Decision-identical: with
         * no insert ever, every slot is empty and find() misses anyway.
         */
        bool everInserted = false;

        void resize(unsigned n);

        std::size_t
        find(Pfn cr3, Asid asid, VirtAddr va) const
        {
            if (!everInserted)
                return npos;
            std::uint64_t tag = va >> tagShift;
            for (std::size_t i = 0; i < vaTags.size(); ++i) {
                if (vaTags[i] == tag && cr3s[i] == cr3 &&
                    asids[i] == asid)
                    return i;
            }
            return npos;
        }

        void
        insert(Pfn cr3, Asid asid, VirtAddr va, Pfn table,
               std::uint32_t now)
        {
            everInserted = true;
            std::uint64_t tag = va >> tagShift;
            std::size_t victim = 0;
            for (std::size_t i = 0; i < vaTags.size(); ++i) {
                if (cr3s[i] == cr3 && asids[i] == asid &&
                    vaTags[i] == tag) {
                    tablePfns[i] = table;
                    lrus[i] = now;
                    return;
                }
                if (cr3s[i] == InvalidPfn) {
                    victim = i;
                    break;
                }
                if (lrus[i] < lrus[victim])
                    victim = i;
            }
            cr3s[victim] = cr3;
            asids[victim] = asid;
            vaTags[victim] = tag;
            tablePfns[victim] = table;
            lrus[victim] = now;
        }

        void invalidate(VirtAddr va);
        void flush();
        void flushAsid(Asid asid);

        /** Visit every valid slot as (cr3, asid, tablePfn). */
        template <typename Fn>
        void
        forEach(Fn &&fn) const
        {
            for (std::size_t i = 0; i < cr3s.size(); ++i) {
                if (cr3s[i] != InvalidPfn)
                    fn(cr3s[i], asids[i], tablePfns[i]);
            }
        }
    };

    // pml4e cache: tag = va >> 39, yields L3 table (startLevel 3)
    // pdpte cache: tag = va >> 30, yields L2 table (startLevel 2)
    // pde cache:   tag = va >> 21, yields L1 table (startLevel 1)
    Level pml4e;
    Level pdpte;
    Level pde;
    Asid asid_ = 0;
    std::uint32_t clock = 0;
    PwcStats stats_;
    /**
     * pde-level MRU memo (see lookup()): ~0 tag = empty (no shifted VA
     * can produce it). Cleared by invalidate/flushAll/flushAsid.
     */
    std::uint64_t memoTag_ = ~0ull;
    Pfn memoCr3_ = InvalidPfn;
    Asid memoAsid_ = 0;
    Pfn memoTablePfn_ = InvalidPfn;
};

} // namespace mitosim::tlb

#endif // MITOSIM_TLB_PAGING_STRUCTURE_CACHE_H
