/**
 * @file
 * Paging-structure caches (MMU caches), per core.
 *
 * x86 walkers cache upper-level entries (PML4E/PDPTE/PDE) so that a walk
 * can skip levels [Barr et al., ISCA'10; Bhattacharjee, MICRO'13 — paper
 * refs 19/24]. The paper's §3.1 notes "even though MMU caches help reduce
 * some of the accesses, at least leaf-level PTEs have to be accessed" —
 * modelling these caches is essential or the simulator would overstate
 * upper-level walk traffic.
 *
 * Entries are tagged by (root pfn, ASID, va prefix), so switching CR3
 * (e.g. to a socket-local replica) naturally misses, and replicas are
 * cached independently per core, as on real hardware. The ASID tag (set
 * via setAsid on context switch, like the PCID field of CR3) exists for
 * *selective invalidation*: flushAsid() removes one dead or recycled
 * address space's entries without nuking the other tenants sharing the
 * core — essential once root-page frames can be freed and reused, since
 * a recycled root pfn would otherwise hit another process's stale
 * upper-level entries.
 */

#ifndef MITOSIM_TLB_PAGING_STRUCTURE_CACHE_H
#define MITOSIM_TLB_PAGING_STRUCTURE_CACHE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/logging.h"
#include "src/base/types.h"

namespace mitosim::tlb
{

/** Per-level capacity; defaults are Haswell-like. */
struct PwcConfig
{
    unsigned pml4eEntries = 2;  //!< caches L4 entries (skip to L3)
    unsigned pdpteEntries = 4;  //!< caches L3 entries (skip to L2)
    unsigned pdeEntries = 32;   //!< caches L2 entries (skip to L1)
};

/** PWC statistics. */
struct PwcStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0; //!< lookups that found no prefix at all
    std::uint64_t flushes = 0;
    std::uint64_t asidFlushes = 0; //!< selective flushAsid() calls
};

/**
 * The three upper-level caches. Lookup returns the deepest cached level
 * so the walker can start there.
 */
class PagingStructureCache
{
  public:
    explicit PagingStructureCache(const PwcConfig &config = PwcConfig{});

    /** Result of a probe: where to start the walk. */
    struct Probe
    {
        /**
         * Level of the *next table to read*: 1 means only the leaf PTE
         * remains (PDE cached), 4 means start from the root.
         */
        int startLevel = 4;
        /** pfn of the table to read at startLevel (root if 4). */
        Pfn tablePfn = InvalidPfn;
    };

    /** Current address space for lookups/fills (PCID field of CR3). */
    void setAsid(Asid asid) { asid_ = asid; }
    Asid asid() const { return asid_; }

    /** Find the deepest cached prefix for @p va under root @p cr3. */
    Probe
    lookup(Pfn cr3, VirtAddr va)
    {
        Probe p;
        if (Slot *s = pde.find(cr3, asid_, va)) {
            s->lru = ++clock;
            ++stats_.hits;
            p.startLevel = 1;
            p.tablePfn = s->tablePfn;
            return p;
        }
        if (Slot *s = pdpte.find(cr3, asid_, va)) {
            s->lru = ++clock;
            ++stats_.hits;
            p.startLevel = 2;
            p.tablePfn = s->tablePfn;
            return p;
        }
        if (Slot *s = pml4e.find(cr3, asid_, va)) {
            s->lru = ++clock;
            ++stats_.hits;
            p.startLevel = 3;
            p.tablePfn = s->tablePfn;
            return p;
        }
        ++stats_.misses;
        p.startLevel = 4;
        p.tablePfn = cr3;
        return p;
    }

    /**
     * Record that under @p cr3 the table at @p level for @p va is
     * @p table_pfn (called by the walker as it descends). @p level is the
     * level of the table being *entered* (3, 2, or 1).
     */
    void
    fill(Pfn cr3, VirtAddr va, int level, Pfn table_pfn)
    {
        switch (level) {
          case 3:
            pml4e.insert(cr3, asid_, va, table_pfn, ++clock);
            break;
          case 2:
            pdpte.insert(cr3, asid_, va, table_pfn, ++clock);
            break;
          case 1:
            pde.insert(cr3, asid_, va, table_pfn, ++clock);
            break;
          default:
            panic("PWC fill with bad level %d", level);
        }
    }

    /** Invalidate all entries covering @p va, any ASID (shootdowns). */
    void invalidate(VirtAddr va);

    /** Full flush (CR3 write without PCID). */
    void flushAll();

    /** Selective flush of every entry tagged @p asid. */
    void flushAsid(Asid asid);

    const PwcStats &stats() const { return stats_; }
    void resetStats() { stats_ = PwcStats{}; }

    /**
     * Visit every valid entry as (cr3, asid, level, table pfn), where
     * @p level is the level of the cached table — 3 for PML4E entries,
     * 2 for PDPTEs, 1 for PDEs, matching Probe::startLevel. Diagnostic/
     * validation hook (vmcheck); not part of the timed path.
     */
    void forEachEntry(
        const std::function<void(Pfn, Asid, int, Pfn)> &fn) const;

  private:
    struct Slot
    {
        Pfn cr3 = InvalidPfn;
        Asid asid = 0;
        std::uint64_t vaTag = ~0ull;
        Pfn tablePfn = InvalidPfn;
        std::uint32_t lru = 0;
    };

    /** Fully-associative array for one level. */
    struct Level
    {
        std::vector<Slot> slots;
        unsigned tagShift; //!< VA bits above this shift form the tag

        Slot *
        find(Pfn cr3, Asid asid, VirtAddr va)
        {
            std::uint64_t tag = va >> tagShift;
            for (auto &s : slots) {
                if (s.cr3 == cr3 && s.asid == asid && s.vaTag == tag)
                    return &s;
            }
            return nullptr;
        }

        void
        insert(Pfn cr3, Asid asid, VirtAddr va, Pfn table,
               std::uint32_t now)
        {
            std::uint64_t tag = va >> tagShift;
            Slot *victim = &slots[0];
            for (auto &s : slots) {
                if (s.cr3 == cr3 && s.asid == asid && s.vaTag == tag) {
                    s.tablePfn = table;
                    s.lru = now;
                    return;
                }
                if (s.cr3 == InvalidPfn) {
                    victim = &s;
                    break;
                }
                if (s.lru < victim->lru)
                    victim = &s;
            }
            victim->cr3 = cr3;
            victim->asid = asid;
            victim->vaTag = tag;
            victim->tablePfn = table;
            victim->lru = now;
        }

        void invalidate(VirtAddr va);
        void flush();
        void flushAsid(Asid asid);

        template <typename Fn>
        void
        forEach(Fn &&fn) const
        {
            for (const Slot &s : slots) {
                if (s.cr3 != InvalidPfn)
                    fn(s);
            }
        }
    };

    // pml4e cache: tag = va >> 39, yields L3 table (startLevel 3)
    // pdpte cache: tag = va >> 30, yields L2 table (startLevel 2)
    // pde cache:   tag = va >> 21, yields L1 table (startLevel 1)
    Level pml4e;
    Level pdpte;
    Level pde;
    Asid asid_ = 0;
    std::uint32_t clock = 0;
    PwcStats stats_;
};

} // namespace mitosim::tlb

#endif // MITOSIM_TLB_PAGING_STRUCTURE_CACHE_H
