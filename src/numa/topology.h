/**
 * @file
 * NUMA machine topology: sockets, cores, per-socket physical memory ranges
 * and the access latency/bandwidth matrix.
 *
 * Defaults mirror the paper's evaluation platform, a 4-socket Intel Xeon
 * E7-4850v3: 14 cores/socket, local DRAM ~280 cycles / 28 GB/s, remote DRAM
 * ~580 cycles / 11 GB/s (§8, Hardware Configuration). Physical memory is
 * homed contiguously: socket s owns frames [s*framesPerSocket,
 * (s+1)*framesPerSocket), so frame->socket lookup is a shift, like Linux's
 * pfn_to_nid on contiguous-memory-model machines.
 */

#ifndef MITOSIM_NUMA_TOPOLOGY_H
#define MITOSIM_NUMA_TOPOLOGY_H

#include <vector>

#include "src/base/logging.h"
#include "src/base/types.h"

namespace mitosim::numa
{

/** Static description of the simulated machine. */
struct TopologyConfig
{
    int numSockets = 4;
    int coresPerSocket = 14;

    /**
     * Simulated physical memory per socket. Scaled down from the paper's
     * 128 GB/socket; see DESIGN.md for the scaling argument. Data frames
     * are unbacked so this costs only metadata on the host.
     */
    std::uint64_t memPerSocket = 4ull << 30; // 4 GiB

    /** DRAM access latency, cycles (paper: 280 local / 580 remote). */
    Cycles dramLocalLatency = 280;
    Cycles dramRemoteLatency = 580;

    /**
     * Extra queueing delay factor applied to DRAM accesses targeting a
     * socket whose memory bandwidth is being hogged by an interfering
     * process (the paper's "I" configurations run STREAM there). Local
     * bandwidth is 28 GB/s vs 11 GB/s remote, so a loaded socket roughly
     * doubles effective latency for everyone else.
     */
    double interferenceFactor = 2.0;
};

/**
 * Topology instance: owns the config, answers homing and latency queries,
 * and tracks which sockets currently host a bandwidth interferer.
 */
class Topology
{
  public:
    explicit Topology(const TopologyConfig &config);

    const TopologyConfig &config() const { return cfg; }

    int numSockets() const { return cfg.numSockets; }
    int coresPerSocket() const { return cfg.coresPerSocket; }
    int numCores() const { return cfg.numSockets * cfg.coresPerSocket; }

    /** Socket that owns core @p core. */
    SocketId
    socketOfCore(CoreId core) const
    {
        MITOSIM_DASSERT(core >= 0 && core < numCores());
        // Table instead of `core / coresPerSocket`: this sits on the
        // per-reference simulation path (every cache access derives the
        // issuing socket) and the divisor is runtime-variable, so the
        // compiler cannot strength-reduce it.
        return coreSocket_[static_cast<std::size_t>(core)];
    }

    /** First core id on socket @p socket. */
    CoreId
    firstCoreOf(SocketId socket) const
    {
        MITOSIM_ASSERT(socket >= 0 && socket < numSockets());
        return socket * cfg.coresPerSocket;
    }

    std::uint64_t framesPerSocket() const { return framesPerSocket_; }
    std::uint64_t totalFrames() const
    {
        return framesPerSocket_ * static_cast<std::uint64_t>(numSockets());
    }

    /** Home socket of a physical frame. */
    SocketId
    socketOfPfn(Pfn pfn) const
    {
        MITOSIM_DASSERT(pfn < totalFrames());
        // Same hot-path argument as socketOfCore: a 64-bit division by
        // a runtime divisor costs ~20-40 cycles and runs once per
        // simulated memory reference. Frames are homed contiguously, so
        // a block-granular table (block size = the largest power of two
        // dividing framesPerSocket_) answers exactly; the division
        // remains as fallback when that table would be unreasonably
        // large (pathological odd per-socket frame counts).
        if (!pfnBlockSocket_.empty()) {
            return static_cast<SocketId>(
                pfnBlockSocket_[pfn >> pfnBlockShift_]);
        }
        return static_cast<SocketId>(pfn / framesPerSocket_);
    }

    /** First frame homed on @p socket. */
    Pfn
    firstPfnOf(SocketId socket) const
    {
        MITOSIM_ASSERT(socket >= 0 && socket < numSockets());
        return framesPerSocket_ * static_cast<std::uint64_t>(socket);
    }

    /**
     * Raw DRAM latency for an access issued from @p from targeting memory
     * homed on @p to, including the interference penalty if an interferer
     * is active on @p to.
     */
    Cycles
    dramLatency(SocketId from, SocketId to) const
    {
        Cycles base = (from == to) ? cfg.dramLocalLatency
                                   : cfg.dramRemoteLatency;
        if (interferers[static_cast<std::size_t>(to)] > 0) {
            base = static_cast<Cycles>(static_cast<double>(base) *
                                       cfg.interferenceFactor);
        }
        return base;
    }

    bool isRemote(SocketId from, SocketId to) const { return from != to; }

    /** Register/unregister a bandwidth hog on @p socket. */
    void addInterferer(SocketId socket);
    void removeInterferer(SocketId socket);

    bool
    hasInterferer(SocketId socket) const
    {
        MITOSIM_DASSERT(socket >= 0 && socket < numSockets());
        return interferers[static_cast<std::size_t>(socket)] > 0;
    }

  private:
    TopologyConfig cfg;
    std::uint64_t framesPerSocket_;
    std::vector<int> interferers; // refcount per socket

    // Hot-path lookup tables (see socketOfCore / socketOfPfn).
    std::vector<SocketId> coreSocket_; //!< core -> owning socket
    std::vector<std::uint8_t> pfnBlockSocket_; //!< pfn block -> socket
    unsigned pfnBlockShift_ = 0;
};

} // namespace mitosim::numa

#endif // MITOSIM_NUMA_TOPOLOGY_H
