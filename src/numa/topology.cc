#include "topology.h"

namespace mitosim::numa
{

Topology::Topology(const TopologyConfig &config)
    : cfg(config),
      framesPerSocket_(cfg.memPerSocket / PageSize),
      interferers(static_cast<std::size_t>(cfg.numSockets), 0)
{
    if (cfg.numSockets < 1 || cfg.numSockets > 64)
        fatal("numSockets must be in [1,64], got %d", cfg.numSockets);
    if (cfg.coresPerSocket < 1)
        fatal("coresPerSocket must be positive, got %d", cfg.coresPerSocket);
    if (cfg.memPerSocket < LargePageSize)
        fatal("memPerSocket must be at least one large page");
    if (cfg.interferenceFactor < 1.0)
        fatal("interferenceFactor must be >= 1.0");
}

void
Topology::addInterferer(SocketId socket)
{
    MITOSIM_ASSERT(socket >= 0 && socket < numSockets());
    ++interferers[static_cast<std::size_t>(socket)];
}

void
Topology::removeInterferer(SocketId socket)
{
    MITOSIM_ASSERT(socket >= 0 && socket < numSockets());
    MITOSIM_ASSERT(interferers[static_cast<std::size_t>(socket)] > 0,
                   "no interferer registered on socket");
    --interferers[static_cast<std::size_t>(socket)];
}

bool
Topology::hasInterferer(SocketId socket) const
{
    MITOSIM_ASSERT(socket >= 0 && socket < numSockets());
    return interferers[static_cast<std::size_t>(socket)] > 0;
}

} // namespace mitosim::numa
