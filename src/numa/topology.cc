#include "topology.h"

namespace mitosim::numa
{

Topology::Topology(const TopologyConfig &config)
    : cfg(config),
      framesPerSocket_(cfg.memPerSocket / PageSize),
      interferers(static_cast<std::size_t>(cfg.numSockets), 0)
{
    if (cfg.numSockets < 1 || cfg.numSockets > 64)
        fatal("numSockets must be in [1,64], got %d", cfg.numSockets);
    if (cfg.coresPerSocket < 1)
        fatal("coresPerSocket must be positive, got %d", cfg.coresPerSocket);
    if (cfg.memPerSocket < LargePageSize)
        fatal("memPerSocket must be at least one large page");
    if (cfg.interferenceFactor < 1.0)
        fatal("interferenceFactor must be >= 1.0");

    coreSocket_.reserve(static_cast<std::size_t>(numCores()));
    for (int core = 0; core < numCores(); ++core)
        coreSocket_.push_back(core / cfg.coresPerSocket);

    // Frame-homing table at the coarsest exact granularity. Sockets are
    // at most 64 and fit a uint8_t; the 16M-entry cap bounds the table
    // at 16 MB for degenerate (odd framesPerSocket_) configs, which
    // instead keep the division fallback.
    unsigned shift = 0;
    while (shift < 63 && !((framesPerSocket_ >> shift) & 1))
        ++shift;
    std::uint64_t entries = (totalFrames() + (1ull << shift) - 1) >> shift;
    if (entries <= (1ull << 24)) {
        pfnBlockShift_ = shift;
        pfnBlockSocket_.reserve(static_cast<std::size_t>(entries));
        for (std::uint64_t b = 0; b < entries; ++b) {
            pfnBlockSocket_.push_back(static_cast<std::uint8_t>(
                (b << shift) / framesPerSocket_));
        }
    }
}

void
Topology::addInterferer(SocketId socket)
{
    MITOSIM_ASSERT(socket >= 0 && socket < numSockets());
    ++interferers[static_cast<std::size_t>(socket)];
}

void
Topology::removeInterferer(SocketId socket)
{
    MITOSIM_ASSERT(socket >= 0 && socket < numSockets());
    MITOSIM_ASSERT(interferers[static_cast<std::size_t>(socket)] > 0,
                   "no interferer registered on socket");
    --interferers[static_cast<std::size_t>(socket)];
}

} // namespace mitosim::numa
