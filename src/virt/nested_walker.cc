#include "nested_walker.h"

#include "src/base/logging.h"

namespace mitosim::virt
{

VCpu::VCpu(VirtualMachine &vm_ref, GuestAddressSpace &gspace_ref,
           int vsocket, CoreId host_core)
    : vm(vm_ref), gspace(gspace_ref), vs(vsocket), core(host_core),
      hostWalker(vm.kernel().machine().physmem(),
                 vm.kernel().machine().hierarchy())
{
    MITOSIM_ASSERT(
        vm.kernel().machine().topology().socketOfCore(host_core) ==
            vm.hostSocketOf(vsocket),
        "vCPU host core must live on the vsocket's host socket");
}

void
VCpu::flushTranslations()
{
    gtlb.flushAll();
    ntlb.flushAll();
    hostPwc.flushAll();
}

PhysAddr
VCpu::nestedTranslate(GuestPa gpa, bool is_write)
{
    VirtAddr hva = vm.hostVaOf(gpa);

    auto look = ntlb.lookup(hva);
    if (look.hit) {
        return pfnToAddr(look.entry.pfn) + (hva & (PageSize - 1));
    }

    // Walk the nPT: the backing process's page-table, using the root for
    // *this vCPU's host socket* — this is where nPT replication pays.
    Pfn ncr3 = vm.kernel().backend().cr3For(vm.process().roots(),
                                            vm.hostSocketOf(vs));
    auto out = hostWalker.walk(core, ncr3, hva, is_write, hostPwc, &pc);
    if (out.fault != sim::WalkFault::None)
        panic("nPT walk faulted: VM memory must be fully populated");
    pc.walkCycles += out.latency;
    ntlb.insert(hva, out.entry);
    return pfnToAddr(out.entry.pfn) + (hva & (PageSize - 1));
}

bool
VCpu::walk2D(GuestVa gva, bool is_write, Cycles &latency)
{
    auto &hier = vm.kernel().machine().hierarchy();
    GuestPfn gpt = gspace.rootFor(vs);
    Cycles start_stall = pc.dataStallCycles;
    (void)start_stall;

    for (int level = 4; level >= 1; --level) {
        unsigned idx = ptIndex(gva, ptLevel(level));
        // The gPT entry lives at a guest-physical address: nested
        // translation first, then the actual memory reference.
        GuestPa entry_gpa = (gpt << PageShift) + idx * 8;
        Cycles before = pc.walkCycles;
        PhysAddr entry_hpa = nestedTranslate(entry_gpa, false);
        latency += pc.walkCycles - before; // nested walk cycles

        Cycles ref = hier.access(core, entry_hpa, false,
                                 sim::AccessKind::PageTable, &pc);
        latency += ref;
        pc.walkCycles += ref;
        // Attribute the gPT reference like the host walker does its
        // own levels: which radix level, and whether the (nested-
        // translated) gPT page is remote to the walking core.
        const auto &topo = vm.kernel().machine().topology();
        pc.walkCyclesAttr[level - 1]
                         [topo.socketOfPfn(addrToPfn(entry_hpa)) !=
                          topo.socketOfCore(core)] += ref;
        ++pc.walkMemRefs;

        pt::Pte entry = gspace.readEntry(gpt, idx);
        if (!entry.present())
            return false; // guest fault

        if (level == 1) {
            // Combined translation: gVA page -> host frame of the data.
            Cycles before_data = pc.walkCycles;
            PhysAddr data_hpa =
                nestedTranslate(entry.pfn() << PageShift, is_write);
            latency += pc.walkCycles - before_data;
            tlb::TlbEntry combined;
            combined.pfn = addrToPfn(data_hpa);
            combined.writable = entry.writable();
            combined.size = PageSizeKind::Base4K;
            gtlb.insert(gva, combined);
            return true;
        }
        gpt = entry.pfn();
    }
    return false;
}

Cycles
VCpu::access(GuestVa gva, bool is_write)
{
    ++pc.accesses;
    auto &hier = vm.kernel().machine().hierarchy();
    Cycles total = 0;

    for (int attempt = 0; attempt < 4; ++attempt) {
        auto look = gtlb.lookup(gva);
        total += look.latency;

        if (look.hit) {
            if (look.hitLevel == 1)
                ++pc.tlbL1Hits;
            else
                ++pc.tlbL2Hits;
            PhysAddr pa =
                pfnToAddr(look.entry.pfn) + (gva & (PageSize - 1));
            Cycles dl = hier.access(core, pa, is_write,
                                    sim::AccessKind::Data, &pc);
            pc.dataStallCycles += dl;
            total += dl;
            pc.cycles += total;
            return total;
        }

        ++pc.tlbMisses;
        Cycles walk_latency = 0;
        if (walk2D(gva, is_write, walk_latency)) {
            ++pc.walks;
            total += walk_latency;
            auto refill = gtlb.lookup(gva);
            MITOSIM_ASSERT(refill.hit, "combined TLB refill failed");
            PhysAddr pa =
                pfnToAddr(refill.entry.pfn) + (gva & (PageSize - 1));
            Cycles dl = hier.access(core, pa, is_write,
                                    sim::AccessKind::Data, &pc);
            pc.dataStallCycles += dl;
            total += dl;
            pc.cycles += total;
            return total;
        }

        // Guest demand fault: the guest kernel maps the page, then the
        // access retries.
        total += walk_latency;
        ++pc.pageFaults;
        Cycles kc = gspace.handleGuestFault(gva, vs);
        pc.kernelCycles += kc;
        total += kc;
    }
    panic("vCPU: unresolved guest fault at gva=0x%llx",
          (unsigned long long)gva);
}

} // namespace mitosim::virt
