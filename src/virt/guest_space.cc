#include "guest_space.h"

#include <cstring>

#include "src/base/logging.h"
#include "src/pvops/costs.h"

namespace mitosim::virt
{

GuestAddressSpace::GuestAddressSpace(VirtualMachine &vm) : vm_(vm)
{
    rootPerVsocket.assign(static_cast<std::size_t>(vm_.numVSockets()),
                          InvalidGuestPfn);
    primaryRoot = allocGptPage(0);
    if (primaryRoot == InvalidGuestPfn)
        fatal("guest out of memory allocating gPT root");
    gptPages[primaryRoot].level = 4;
    for (auto &r : rootPerVsocket)
        r = primaryRoot;
}

std::uint64_t *
GuestAddressSpace::tableOf(GuestPfn gpfn) const
{
    auto it = gptPages.find(gpfn);
    MITOSIM_ASSERT(it != gptPages.end(), "not a gPT frame");
    return it->second.table.get();
}

GuestPfn
GuestAddressSpace::allocGptPage(int vsocket)
{
    GuestPfn gpfn = vm_.allocGuestFrame(vsocket);
    if (gpfn == InvalidGuestPfn)
        return InvalidGuestPfn;
    GptPage page;
    page.table = std::make_unique<std::uint64_t[]>(PtEntriesPerPage);
    std::memset(page.table.get(), 0,
                PtEntriesPerPage * sizeof(std::uint64_t));
    page.ringNext = gpfn;
    gptPages.emplace(gpfn, std::move(page));
    ++stats_.gptPages;
    return gpfn;
}

void
GuestAddressSpace::freeGptPage(GuestPfn gpfn)
{
    auto it = gptPages.find(gpfn);
    MITOSIM_ASSERT(it != gptPages.end());
    MITOSIM_ASSERT(it->second.ringNext == gpfn,
                   "freeing a gPT page still in a replica ring");
    gptPages.erase(it);
    vm_.freeGuestFrame(gpfn);
    --stats_.gptPages;
}

GuestPfn
GuestAddressSpace::ringNext(GuestPfn gpfn) const
{
    auto it = gptPages.find(gpfn);
    MITOSIM_ASSERT(it != gptPages.end());
    return it->second.ringNext;
}

void
GuestAddressSpace::ringLink(GuestPfn base, GuestPfn added)
{
    auto &b = gptPages.at(base);
    auto &a = gptPages.at(added);
    MITOSIM_ASSERT(a.ringNext == added);
    a.ringNext = b.ringNext;
    b.ringNext = added;
}

void
GuestAddressSpace::ringUnlink(GuestPfn gpfn)
{
    auto &m = gptPages.at(gpfn);
    if (m.ringNext == gpfn)
        return;
    GuestPfn prev = gpfn;
    while (ringNext(prev) != gpfn)
        prev = ringNext(prev);
    gptPages.at(prev).ringNext = m.ringNext;
    m.ringNext = gpfn;
}

GuestPfn
GuestAddressSpace::replicaOn(GuestPfn gpfn, int vsocket) const
{
    GuestPfn p = gpfn;
    do {
        if (vm_.vsocketOfGuestFrame(p) == vsocket)
            return p;
        p = ringNext(p);
    } while (p != gpfn);
    return InvalidGuestPfn;
}

void
GuestAddressSpace::setEntry(GuestPfn gpt_frame, unsigned index,
                            pt::Pte value, int level)
{
    // Primary store with vsocket-local child fixup (same symmetry rule
    // as the host backend: a tree never leaves its vsocket when a local
    // child replica exists).
    bool non_leaf = value.present() && level > 1;
    auto localized = [&](GuestPfn frame) {
        if (!non_leaf)
            return value;
        GuestPfn child = value.pfn();
        if (!gptPages.count(child))
            return value;
        GuestPfn local = replicaOn(child, vm_.vsocketOfGuestFrame(frame));
        return (local != InvalidGuestPfn) ? value.withPfn(local) : value;
    };

    tableOf(gpt_frame)[index] = localized(gpt_frame).raw();
    GuestPfn p = ringNext(gpt_frame);
    while (p != gpt_frame) {
        tableOf(p)[index] = localized(p).raw();
        ++stats_.eagerUpdates;
        p = ringNext(p);
    }
}

GuestPfn
GuestAddressSpace::rootFor(int vsocket) const
{
    MITOSIM_ASSERT(vsocket >= 0 && vsocket < vm_.numVSockets());
    return rootPerVsocket[static_cast<std::size_t>(vsocket)];
}

Cycles
GuestAddressSpace::handleGuestFault(GuestVa gva, int vsocket)
{
    ++stats_.guestFaults;
    pvops::KernelCost cost;
    cost.charge(pvops::FaultFixedCost);

    // Descend/allocate down to L1 in the primary tree.
    GuestPfn table = primaryRoot;
    for (int level = 4; level > 1; --level) {
        unsigned idx = ptIndex(gva, ptLevel(level));
        pt::Pte entry{tableOf(table)[idx]};
        if (!entry.present()) {
            GuestPfn child = allocGptPage(vsocket);
            if (child == InvalidGuestPfn)
                fatal("guest out of gPT memory");
            gptPages.at(child).level = level - 1;
            cost.charge(pvops::PtPageSetupCost);
            if (replicated_) {
                // Allocate the full replica set right away.
                for (int v = 0; v < vm_.numVSockets(); ++v) {
                    if (v == vsocket)
                        continue;
                    GuestPfn rep = allocGptPage(v);
                    if (rep == InvalidGuestPfn)
                        continue;
                    gptPages.at(rep).level = level - 1;
                    ringLink(child, rep);
                    ++stats_.replicaPages;
                    cost.charge(pvops::PtPageSetupCost);
                }
            }
            setEntry(table, idx,
                     pt::Pte::make(child, pt::PtePresent | pt::PteWrite),
                     level);
            cost.charge(pvops::PteWriteCost);
            table = child;
        } else {
            table = entry.pfn();
        }
    }

    // Map the data frame (guest first-touch on the faulting vsocket).
    GuestPfn data = vm_.allocGuestFrame(vsocket);
    if (data == InvalidGuestPfn)
        fatal("guest out of memory");
    cost.charge(pvops::PageAllocCost + pvops::PageZeroCost);
    setEntry(table, ptIndex(gva, PtLevel::L1),
             pt::Pte::make(data, pt::PtePresent | pt::PteWrite), 1);
    cost.charge(pvops::PteWriteCost);
    return cost.cycles;
}

GuestAddressSpace::GuestWalk
GuestAddressSpace::walk(GuestVa gva, int vsocket) const
{
    GuestWalk out;
    GuestPfn table = rootFor(vsocket);
    for (int level = 4; level >= 1; --level) {
        pt::Pte entry{tableOf(table)[ptIndex(gva, ptLevel(level))]};
        if (!entry.present())
            return out;
        if (level == 1) {
            out.mapped = true;
            out.gpfn = entry.pfn();
            out.writable = entry.writable();
            return out;
        }
        table = entry.pfn();
    }
    return out;
}

GuestPfn
GuestAddressSpace::replicateSubtree(GuestPfn src, int level, int vsocket)
{
    GuestPfn dst = replicaOn(src, vsocket);
    if (dst == InvalidGuestPfn) {
        dst = allocGptPage(vsocket);
        if (dst == InvalidGuestPfn)
            return InvalidGuestPfn;
        gptPages.at(dst).level = level;
        ringLink(src, dst);
        ++stats_.replicaPages;
    }
    const std::uint64_t *src_tbl = tableOf(src);
    std::uint64_t *dst_tbl = tableOf(dst);
    for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
        pt::Pte entry{src_tbl[i]};
        if (!entry.present()) {
            dst_tbl[i] = entry.raw();
            continue;
        }
        if (level == 1) {
            dst_tbl[i] = entry.raw();
        } else {
            GuestPfn child =
                replicateSubtree(entry.pfn(), level - 1, vsocket);
            dst_tbl[i] = (child != InvalidGuestPfn)
                             ? entry.withPfn(child).raw()
                             : entry.raw();
        }
    }
    return dst;
}

void
GuestAddressSpace::collectTreePages(
    std::vector<std::pair<GuestPfn, int>> &out) const
{
    std::vector<std::pair<GuestPfn, int>> stack{{primaryRoot, 4}};
    while (!stack.empty()) {
        auto [frame, level] = stack.back();
        stack.pop_back();
        out.push_back({frame, level});
        if (level == 1)
            continue;
        const std::uint64_t *tbl = tableOf(frame);
        for (unsigned i = 0; i < PtEntriesPerPage; ++i) {
            pt::Pte entry{tbl[i]};
            if (entry.present())
                stack.push_back({entry.pfn(), level - 1});
        }
    }
}

void
GuestAddressSpace::setReplication(bool on, pvops::KernelCost *cost)
{
    if (on == replicated_)
        return;
    if (on) {
        for (int v = 0; v < vm_.numVSockets(); ++v) {
            replicateSubtree(primaryRoot, 4, v);
            if (cost)
                cost->charge(pvops::PtPageSetupCost);
        }
        for (int v = 0; v < vm_.numVSockets(); ++v) {
            GuestPfn r = replicaOn(primaryRoot, v);
            rootPerVsocket[static_cast<std::size_t>(v)] =
                (r != InvalidGuestPfn) ? r : primaryRoot;
        }
        replicated_ = true;
    } else {
        std::vector<std::pair<GuestPfn, int>> pages;
        collectTreePages(pages);
        for (auto [frame, level] : pages) {
            (void)level;
            std::vector<GuestPfn> others;
            GuestPfn p = ringNext(frame);
            while (p != frame) {
                others.push_back(p);
                p = ringNext(p);
            }
            for (GuestPfn o : others) {
                ringUnlink(o);
                freeGptPage(o);
                --stats_.replicaPages;
                if (cost)
                    cost->charge(pvops::PageFreeCost);
            }
        }
        for (auto &r : rootPerVsocket)
            r = primaryRoot;
        replicated_ = false;
    }
}

} // namespace mitosim::virt
