/**
 * @file
 * Two-dimensional (nested) page walks — §7.4's cost model made concrete.
 *
 * A guest memory access on a TLB miss walks the 4-level gPT, but every
 * gPT pointer is a *guest-physical* address that itself needs an nPT
 * walk: up to 4 x 5 + 4 = 24 memory references on x86-64, the figure the
 * paper quotes. A vCPU therefore carries:
 *
 *  - a combined gVA -> hPFN TLB (what hardware TLBs actually hold),
 *  - a nested gPA -> hPFN TLB (the "nTLB" of nested-paging hardware),
 *  - a paging-structure cache for the host dimension.
 *
 * Replication applies independently per dimension: the guest replicates
 * its gPT across virtual sockets (GuestAddressSpace::setReplication) and
 * the host replicates the nPT with the ordinary Mitosis backend; the
 * walker picks the vCPU-local root in each dimension, exactly the design
 * the paper proposes.
 */

#ifndef MITOSIM_VIRT_NESTED_WALKER_H
#define MITOSIM_VIRT_NESTED_WALKER_H

#include "src/sim/machine.h"
#include "src/sim/perf_counters.h"
#include "src/sim/walker.h"
#include "src/tlb/paging_structure_cache.h"
#include "src/tlb/tlb.h"
#include "src/virt/guest_space.h"

namespace mitosim::virt
{

/** One virtual CPU pinned to a host core. */
class VCpu
{
  public:
    /**
     * @param vsocket virtual socket this vCPU belongs to; its host core
     *        is taken from the matching host socket.
     */
    VCpu(VirtualMachine &vm, GuestAddressSpace &gspace, int vsocket,
         CoreId host_core);

    /**
     * One guest load/store. Drives the combined TLB, the 2D walk, guest
     * demand faults, and the data access; charges everything into the
     * vCPU's counters.
     */
    Cycles access(GuestVa gva, bool is_write);

    sim::PerfCounters &counters() { return pc; }
    void resetCounters() { pc = sim::PerfCounters{}; }

    /** Flush vCPU translation state (guest CR3 write). */
    void flushTranslations();

    int vsocket() const { return vs; }
    CoreId hostCore() const { return core; }

  private:
    /**
     * Translate a guest-physical address via the nPT, charging through
     * the host hierarchy. Returns the host physical address.
     */
    PhysAddr nestedTranslate(GuestPa gpa, bool is_write);

    /** Full 2D walk of @p gva; fills the combined TLB on success. */
    bool walk2D(GuestVa gva, bool is_write, Cycles &latency);

    VirtualMachine &vm;
    GuestAddressSpace &gspace;
    int vs;
    CoreId core;

    tlb::TwoLevelTlb gtlb;  //!< gVA -> hPFN (combined)
    tlb::TwoLevelTlb ntlb;  //!< gPA-page -> hPFN (nested)
    tlb::PagingStructureCache hostPwc; //!< for nPT walks
    sim::PageWalker hostWalker;
    sim::PerfCounters pc;
};

} // namespace mitosim::virt

#endif // MITOSIM_VIRT_NESTED_WALKER_H
