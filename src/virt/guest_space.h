/**
 * @file
 * Guest-side virtual memory: the gVA -> gPA page-table (gPT), stored in
 * guest-physical frames, with optional guest-level Mitosis replication
 * across virtual sockets — the first dimension of §7.4's proposal to
 * "replicate both guest page-tables and nested page-tables
 * independently".
 *
 * Guest page-table placement mirrors the native story: a gPT page is
 * allocated from the faulting vCPU's virtual socket (first touch).
 * Replication allocates one copy per virtual socket, keeps a circular
 * replica ring (guest struct-page analogue) and fixes upper-level
 * gPA pointers per replica so every vsocket walks vsocket-local guest
 * frames — which the VM's vNUMA pinning turns into host-local memory.
 */

#ifndef MITOSIM_VIRT_GUEST_SPACE_H
#define MITOSIM_VIRT_GUEST_SPACE_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/pt/pte.h"
#include "src/pvops/pvops.h"
#include "src/virt/virtual_machine.h"

namespace mitosim::virt
{

/** Statistics for the guest-side Mitosis. */
struct GuestSpaceStats
{
    std::uint64_t gptPages = 0;         //!< live gPT pages incl. replicas
    std::uint64_t replicaPages = 0;     //!< extra replica pages
    std::uint64_t eagerUpdates = 0;     //!< propagated gPTE stores
    std::uint64_t guestFaults = 0;
};

/** The guest kernel's address-space manager. */
class GuestAddressSpace
{
  public:
    explicit GuestAddressSpace(VirtualMachine &vm);

    /** Root gPT frame the vCPUs of @p vsocket load (guest CR3, §5.3). */
    GuestPfn rootFor(int vsocket) const;

    /** Whether gPT replication is active. */
    bool replicated() const { return replicated_; }

    /**
     * Replicate the gPT onto every virtual socket (true) or tear the
     * replicas down (false). The guest-side equivalent of
     * numa_set_pgtable_replication_mask(all).
     */
    void setReplication(bool on, pvops::KernelCost *cost = nullptr);

    /**
     * Demand-fault @p gva from a vCPU on @p vsocket: allocates a data
     * frame on the vsocket (guest first-touch) and maps it, allocating
     * gPT pages as needed.
     *
     * @return kernel cycles spent.
     */
    Cycles handleGuestFault(GuestVa gva, int vsocket);

    /** Software walk from @p vsocket's root (no timing). */
    struct GuestWalk
    {
        bool mapped = false;
        GuestPfn gpfn = InvalidGuestPfn;
        bool writable = false;
    };
    GuestWalk walk(GuestVa gva, int vsocket) const;

    /**
     * Read one gPT entry by guest-physical location (used by the nested
     * walker, which has already charged the memory access).
     */
    pt::Pte
    readEntry(GuestPfn gpt_frame, unsigned index) const
    {
        return pt::Pte{tableOf(gpt_frame)[index]};
    }

    const GuestSpaceStats &stats() const { return stats_; }
    VirtualMachine &vm() { return vm_; }

  private:
    /** Host-side storage for guest frames used as gPT pages. */
    std::uint64_t *tableOf(GuestPfn gpfn) const;

    GuestPfn allocGptPage(int vsocket);
    void freeGptPage(GuestPfn gpfn);

    /** Guest replica-ring metadata (guest struct page). */
    GuestPfn ringNext(GuestPfn gpfn) const;
    void ringLink(GuestPfn base, GuestPfn added);
    void ringUnlink(GuestPfn gpfn);
    GuestPfn replicaOn(GuestPfn gpfn, int vsocket) const;

    /** Store @p value at (frame, index) and propagate to replicas. */
    void setEntry(GuestPfn gpt_frame, unsigned index, pt::Pte value,
                  int level);

    GuestPfn replicateSubtree(GuestPfn src, int level, int vsocket);
    void collectTreePages(std::vector<std::pair<GuestPfn, int>> &out) const;

    VirtualMachine &vm_;
    GuestPfn primaryRoot = InvalidGuestPfn;
    std::vector<GuestPfn> rootPerVsocket;
    bool replicated_ = false;

    struct GptPage
    {
        std::unique_ptr<std::uint64_t[]> table;
        GuestPfn ringNext = InvalidGuestPfn;
        int level = 0;
    };
    std::unordered_map<GuestPfn, GptPage> gptPages;
    GuestSpaceStats stats_;
};

} // namespace mitosim::virt

#endif // MITOSIM_VIRT_GUEST_SPACE_H
