/**
 * @file
 * Virtualization substrate (paper §7.4): a VM whose guest-physical
 * memory is backed, vNUMA-style, by per-virtual-socket host regions.
 *
 * The nested page-table (gPA -> hPA) is simply the host page-table of
 * the VM's backing process — exactly as in hardware nested paging, where
 * the nPT has the same radix format as a process page-table. That means
 * *nested* page-table replication falls out of the existing Mitosis
 * backend: replicate the backing process's tree.
 *
 * Guest physical memory is identity-offset into one large host mapping:
 * hVA = regionBase + gPA. Virtual socket v owns the gPA range
 * [v * guestMemPerVSocket, (v+1) * guestMemPerVSocket), and that range
 * is populated on host socket v at boot (pinned VM memory), so guest
 * NUMA decisions translate 1:1 to host locality — the "underlying NUMA
 * architecture is exposed to the guest OS" premise of §7.4.
 */

#ifndef MITOSIM_VIRT_VIRTUAL_MACHINE_H
#define MITOSIM_VIRT_VIRTUAL_MACHINE_H

#include <cstdint>
#include <vector>

#include "src/os/kernel.h"

namespace mitosim::virt
{

/** Guest-physical frame number / address / virtual address. */
using GuestPfn = std::uint64_t;
using GuestPa = std::uint64_t;
using GuestVa = std::uint64_t;

inline constexpr GuestPfn InvalidGuestPfn = ~0ull;

/** VM sizing. */
struct VmConfig
{
    /** Guest memory per virtual socket (one vsocket per host socket). */
    std::uint64_t guestMemPerVSocket = 64ull << 20;
};

/** A virtual machine with vNUMA-pinned, fully populated memory. */
class VirtualMachine
{
  public:
    /**
     * Boot a VM: create the backing host process, mmap and populate one
     * pinned region per virtual socket.
     */
    VirtualMachine(os::Kernel &kernel, const VmConfig &config);
    ~VirtualMachine();

    VirtualMachine(const VirtualMachine &) = delete;
    VirtualMachine &operator=(const VirtualMachine &) = delete;

    int numVSockets() const { return vsockets; }
    std::uint64_t guestFramesPerVSocket() const { return framesPerVs; }

    /** Host socket backing virtual socket @p v (identity mapping). */
    SocketId hostSocketOf(int vsocket) const
    {
        return static_cast<SocketId>(vsocket);
    }

    int
    vsocketOfGuestFrame(GuestPfn gpfn) const
    {
        return static_cast<int>(gpfn / framesPerVs);
    }

    /// @name Guest frame allocation (the guest's buddy allocator)
    /// @{
    GuestPfn allocGuestFrame(int vsocket);
    void freeGuestFrame(GuestPfn gpfn);
    std::uint64_t freeGuestFrames(int vsocket) const;
    /// @}

    /** Host virtual address backing @p gpa (for nested translation). */
    VirtAddr
    hostVaOf(GuestPa gpa) const
    {
        return regionBase + gpa;
    }

    /** The backing process — its page-table *is* the nPT. */
    os::Process &process() { return *proc; }
    os::Kernel &kernel() { return k; }

  private:
    os::Kernel &k;
    os::Process *proc;
    int vsockets;
    std::uint64_t framesPerVs;
    VirtAddr regionBase = 0;

    // Per-vsocket bump pointer + free list over guest frames.
    std::vector<GuestPfn> bump;
    std::vector<std::vector<GuestPfn>> freeList;
};

} // namespace mitosim::virt

#endif // MITOSIM_VIRT_VIRTUAL_MACHINE_H
