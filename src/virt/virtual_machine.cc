#include "virtual_machine.h"

#include "src/base/logging.h"

namespace mitosim::virt
{

VirtualMachine::VirtualMachine(os::Kernel &kernel, const VmConfig &config)
    : k(kernel)
{
    vsockets = k.machine().numSockets();
    framesPerVs = config.guestMemPerVSocket / PageSize;
    if (framesPerVs == 0)
        fatal("VM needs at least one guest frame per virtual socket");

    proc = &k.createProcess("vm", 0);

    // Pin guest memory: one host region per virtual socket, populated
    // eagerly on the matching host socket. Regions are mapped
    // back-to-back so gPA -> hVA is a single offset.
    for (int v = 0; v < vsockets; ++v) {
        k.setDataPolicy(*proc, os::DataPolicy::Fixed, hostSocketOf(v));
        // Intermediate nPT pages follow the vsocket they serve.
        k.setPtPlacement(*proc, pt::PtPlacement::Fixed, hostSocketOf(v));
        auto region = k.mmap(*proc, config.guestMemPerVSocket,
                             os::MmapOptions{.populate = true});
        if (v == 0) {
            regionBase = region.start;
        } else if (region.start !=
                   regionBase + static_cast<std::uint64_t>(v) *
                                    config.guestMemPerVSocket) {
            fatal("VM backing regions are not contiguous");
        }
    }

    bump.assign(static_cast<std::size_t>(vsockets), 0);
    for (int v = 0; v < vsockets; ++v) {
        bump[static_cast<std::size_t>(v)] =
            static_cast<GuestPfn>(v) * framesPerVs;
    }
    freeList.assign(static_cast<std::size_t>(vsockets), {});
}

VirtualMachine::~VirtualMachine()
{
    k.destroyProcess(*proc);
}

GuestPfn
VirtualMachine::allocGuestFrame(int vsocket)
{
    MITOSIM_ASSERT(vsocket >= 0 && vsocket < vsockets);
    auto vs = static_cast<std::size_t>(vsocket);
    if (!freeList[vs].empty()) {
        GuestPfn gpfn = freeList[vs].back();
        freeList[vs].pop_back();
        return gpfn;
    }
    GuestPfn limit =
        (static_cast<GuestPfn>(vsocket) + 1) * framesPerVs;
    if (bump[vs] >= limit)
        return InvalidGuestPfn;
    return bump[vs]++;
}

void
VirtualMachine::freeGuestFrame(GuestPfn gpfn)
{
    MITOSIM_ASSERT(gpfn != InvalidGuestPfn);
    int v = vsocketOfGuestFrame(gpfn);
    MITOSIM_ASSERT(v >= 0 && v < vsockets);
    freeList[static_cast<std::size_t>(v)].push_back(gpfn);
}

std::uint64_t
VirtualMachine::freeGuestFrames(int vsocket) const
{
    MITOSIM_ASSERT(vsocket >= 0 && vsocket < vsockets);
    auto vs = static_cast<std::size_t>(vsocket);
    GuestPfn limit = (static_cast<GuestPfn>(vsocket) + 1) * framesPerVs;
    return (limit - bump[vs]) + freeList[vs].size();
}

} // namespace mitosim::virt
