#!/usr/bin/env python3
"""Diff two bench reports, ignoring host telemetry.

The simulated metrics in a BENCH_<name>.json report are deterministic:
they must be byte-identical across --sim-threads values, across
MITOSIM_SNAPSHOTS={0,1}, across --jobs values, and (unless the model
changed) across commits. Only diagnostic surfaces are allowed to
differ: the top-level "wall_ms", "check" and "metrics" (src/obs
registry flatten — an observability surface free to grow richer
between PRs) sections, and per-run metric keys prefixed "wall_" or
"check_".

This tool strips exactly those and requires everything else to be
equal. CI uses it as the determinism wall for the sharded simulation
engine and the populate snapshot cache.

Usage:
  tools/cmp_reports.py A.json B.json   # exit 1 + unified diff on drift
"""

import difflib
import json
import sys


def strip_host_telemetry(doc):
    doc = json.loads(json.dumps(doc))
    for sec in ("wall_ms", "check", "metrics"):
        doc.pop(sec, None)
    for run in doc.get("runs", []):
        metrics = run.get("metrics", {})
        for k in [k for k in metrics
                  if k.startswith("wall_") or k.startswith("check_")]:
            metrics.pop(k)
    return doc


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    path_a, path_b = sys.argv[1], sys.argv[2]
    with open(path_a) as f:
        doc_a = strip_host_telemetry(json.load(f))
    with open(path_b) as f:
        doc_b = strip_host_telemetry(json.load(f))
    if doc_a == doc_b:
        print(f"identical (host telemetry excluded): "
              f"{path_a} == {path_b}")
        return 0
    lines_a = json.dumps(doc_a, indent=1, sort_keys=True).splitlines()
    lines_b = json.dumps(doc_b, indent=1, sort_keys=True).splitlines()
    print(f"DIFF {path_a} vs {path_b}", file=sys.stderr)
    for line in difflib.unified_diff(lines_a, lines_b,
                                     fromfile=path_a, tofile=path_b,
                                     lineterm=""):
        print(line, file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
