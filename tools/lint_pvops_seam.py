#!/usr/bin/env python3
"""Static lint for the PV-Ops seam (CI-enforced).

The repo's central correctness contract is that *all* page-table
storage mutation flows through the PV-Ops seam: the `pvops::PvOps`
interface and the page-table walkers/operations built directly on it.
Everything else — kernel, scheduler, THP daemons, AutoNUMA, analysis,
benches — must go through a backend, or replicas silently diverge and
the Mitosis model breaks (vmcheck class 1 catches that at runtime;
this lint catches it at review time).

Concretely: outside the seam, `PhysicalMemory::table(pfn)` may only be
used through its *const* overload (reads are fine and ubiquitous —
dumps, checks, the walker's lookups). The lint flags, for every
`.cc`/`.h` under `src/` outside the seam:

  * direct element writes:        `...table(pfn)[i] = / |= / &= ...`
  * non-const pointer bindings:   `std::uint64_t *p = ...table(pfn)...`
  * taking a mutable element address: `&...table(pfn)[i]`

The seam (mutation allowed):

  * `src/pvops/`   — the PvOps interface + native backend
  * `src/pt/`      — page-table operations layered on raw storage
  * `src/core/`    — the Mitosis/lazy backends (PvOps implementations;
                     the seam's server side, not clients around it)

Known non-seam mutator, allow-listed with a reason:

  * `src/sim/walker.h` — the simulated MMU's A/D-bit update path.
    Hardware sets Accessed/Dirty below the OS; it is not an OS-side
    PTE write and has no replica-coherence obligation (§5.4: A/D bits
    are compared OR-ed across replicas).

A line may also carry an inline waiver comment

    // pvops-seam: <why this direct write is sound>

which skips it; waivers are for hardware-model code only and should be
as rare as the allowlist above.

Exit status: 0 clean, 1 violations (printed GCC-style), 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Directories whose files ARE the seam: mutation is their job.
SEAM_DIRS = ("src/pvops", "src/pt", "src/core")

# file -> reason; keep this list short and justified.
ALLOWLIST = {
    "src/sim/walker.h": "simulated MMU A/D-bit update (hardware, not OS)",
}

WAIVER_RE = re.compile(r"//\s*pvops-seam:\s*\S")

# `...table(pfn)[idx] =` and compound assignments / inc / dec.
WRITE_RE = re.compile(
    r"\.table\s*\([^()]*\)\s*\[[^\]]*\]\s*"
    r"(?:=[^=]|(?:[|&^+\-*/%]|<<|>>)=|\+\+|--)"
)
# `std::uint64_t *p = ...table(...)` without const.
NONCONST_PTR_RE = re.compile(
    r"(?<!const\s)(?<!const)\bstd::uint64_t\s*\*\s*\w+\s*=[^;]*\.table\s*\("
)
# `&...table(...)[...]` — mutable element address escapes.
ADDR_RE = re.compile(r"&\s*[\w.()\->]*\.table\s*\([^()]*\)\s*\[")

PATTERNS = (
    (WRITE_RE, "direct PTE element write"),
    (NONCONST_PTR_RE, "non-const pointer into PTE storage"),
    (ADDR_RE, "mutable address of a PTE element"),
)


def strip_strings(line: str) -> str:
    """Blank out string/char literals so patterns can't match inside."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def lint_file(path: pathlib.Path, rel: str) -> list[str]:
    violations = []
    in_block_comment = False
    for lineno, raw in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and line.find("*/", start) < 0:
            in_block_comment = True
            line = line[:start]
        if WAIVER_RE.search(line):
            continue
        code = strip_strings(line).split("//", 1)[0]
        for pattern, what in PATTERNS:
            if pattern.search(code):
                violations.append(
                    f"{rel}:{lineno}: error: {what} outside the "
                    f"PV-Ops seam: {raw.strip()}")
                break
    return violations


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="PV-Ops seam lint (see module docstring)")
    parser.add_argument(
        "root", nargs="?", default=".",
        help="repository root (default: cwd)")
    args = parser.parse_args(argv)

    root = pathlib.Path(args.root).resolve()
    src = root / "src"
    if not src.is_dir():
        print(f"lint_pvops_seam: no src/ under {root}", file=sys.stderr)
        return 2

    violations = []
    checked = 0
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".cc", ".h"):
            continue
        rel = path.relative_to(root).as_posix()
        if rel.startswith(tuple(d + "/" for d in SEAM_DIRS)):
            continue
        if rel in ALLOWLIST:
            continue
        checked += 1
        violations.extend(lint_file(path, rel))

    for v in violations:
        print(v)
    if violations:
        print(f"\nlint_pvops_seam: {len(violations)} violation(s) in "
              f"{checked} files. PTE storage writes belong behind the "
              f"PV-Ops seam ({', '.join(d + '/' for d in SEAM_DIRS)}).",
              file=sys.stderr)
        return 1
    print(f"lint_pvops_seam: OK ({checked} files checked, "
          f"{len(ALLOWLIST)} allow-listed)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
