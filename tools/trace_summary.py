#!/usr/bin/env python3
"""Summarize a TRACE_<bench>_<job>.json event trace.

Prints the virtual-time span, per-category and per-event-name counts,
how many events the fixed-capacity ring dropped, and the densest 1%
window — the slice of virtual time holding the most events, which is
where to zoom first when the trace is opened in Perfetto
(https://ui.perfetto.dev) or chrome://tracing.

Usage:
  tools/trace_summary.py TRACE_fig09b_thp_canneal_F_M.json [more...]
"""

import collections
import json
import signal
import sys

# Die quietly when piped into head(1) instead of tracebacking.
if hasattr(signal, "SIGPIPE"):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def densest_window(stamps, span):
    """(start, end, count) of the densest window of width span/100."""
    width = max(span // 100, 1)
    best_start, best_count = stamps[0], 1
    lo = 0
    for hi, ts in enumerate(stamps):
        while ts - stamps[lo] > width:
            lo += 1
        if hi - lo + 1 > best_count:
            best_count = hi - lo + 1
            best_start = stamps[lo]
    return best_start, best_start + width, best_count


def summarize(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents", [])
    print("%s: %d events" % (path, len(events)))
    if not events:
        return
    dropped = doc.get("otherData", {}).get("dropped_events", 0)
    if dropped:
        print("  dropped (ring overflow): %d" % dropped)

    stamps = sorted(ev["ts"] for ev in events)
    span = stamps[-1] - stamps[0]
    print("  span: %d virtual cycles (ts %d .. %d)"
          % (span, stamps[0], stamps[-1]))

    by_cat = collections.Counter(ev.get("cat", "?") for ev in events)
    by_name = collections.Counter(ev.get("name", "?") for ev in events)
    print("  by category:")
    for cat, n in by_cat.most_common():
        print("    %-12s %8d" % (cat, n))
    print("  by event:")
    for name, n in by_name.most_common():
        print("    %-24s %8d" % (name, n))

    start, end, count = densest_window(stamps, span)
    print("  densest 1%% window: ts [%d, %d] holds %d events (%.1f%%)"
          % (start, end, count, 100.0 * count / len(events)))


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in sys.argv[1:]:
        summarize(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
