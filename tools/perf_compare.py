#!/usr/bin/env python3
"""Compare bench host wall-clock against a committed baseline.

Every bench report (BENCH_<name>.json) carries a host-telemetry
"wall_ms" section: per-job wall clock with a populate/run/report phase
split, plus the invocation total. This tool diffs the totals of one or
more fresh reports against bench/baselines/wall_ms.json and fails when
a bench slowed down beyond the tolerance — the cheap guard against
accidentally serializing the populate path or breaking the snapshot
cache.

Wall clock is host-dependent: the committed baseline records the
reference host in "_host" and CI uses a generous tolerance. Simulated
metrics are never compared here (they are byte-stable and CI diffs
them exactly); this is wall time only.

Usage:
  tools/perf_compare.py build/BENCH_*.json            # compare
  tools/perf_compare.py --update build/BENCH_*.json   # rewrite baseline
  tools/perf_compare.py --tolerance 2.0 ...           # ratio gate
  tools/perf_compare.py --max-regress 30 ...          # percent gate
  tools/perf_compare.py --markdown ...                # GFM table output
"""

import argparse
import json
import math
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "baselines", "wall_ms.json")


def bench_name(report):
    return report.get("bench", "")


def load_report(path):
    with open(path) as f:
        doc = json.load(f)
    name = doc.get("bench") or os.path.basename(path).removeprefix(
        "BENCH_").removesuffix(".json")
    wall = doc.get("wall_ms", {})
    total = wall.get("total")
    if total is None:
        raise SystemExit(f"{path}: no wall_ms.total section")
    return name, float(total)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("reports", nargs="+",
                    help="BENCH_*.json files to compare")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--tolerance", type=float, default=2.0,
                    help="fail when new/base exceeds this (default 2.0; "
                         "wall clock is noisy across hosts)")
    ap.add_argument("--max-regress", type=float, default=None,
                    metavar="PCT",
                    help="fail when a bench is more than PCT%% slower "
                         "than its baseline (e.g. 30 fails at 1.30x). "
                         "Overrides --tolerance when given — use for "
                         "same-host gating, where the generous default "
                         "ratio would hide real regressions")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the given reports")
    ap.add_argument("--markdown", action="store_true",
                    help="emit the comparison as a GitHub-flavored "
                         "markdown table (for CI job summaries)")
    args = ap.parse_args()

    gate = (1.0 + args.max_regress / 100.0
            if args.max_regress is not None else args.tolerance)

    fresh = dict(load_report(p) for p in args.reports)

    if args.update:
        base = {}
        if os.path.exists(args.baseline):
            with open(args.baseline) as f:
                base = json.load(f)
        host = base.get("_host", {})
        base = {"_host": host, **{k: round(v, 1)
                                  for k, v in sorted(fresh.items())}}
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w") as f:
            json.dump(base, f, indent=1)
            f.write("\n")
        print(f"baseline updated: {args.baseline} "
              f"({len(fresh)} benches)")
        return 0

    with open(args.baseline) as f:
        base = json.load(f)

    failed = []
    ratios = []
    if args.markdown:
        print("| bench | base_ms | new_ms | ratio |")
        print("|---|---:|---:|---:|")
    else:
        print(f"{'bench':<26} {'base_ms':>10} {'new_ms':>10} "
              f"{'ratio':>7}")
    for name, new_ms in sorted(fresh.items()):
        base_ms = base.get(name)
        if base_ms is None:
            if args.markdown:
                print(f"| {name} | - | {new_ms:.1f} | (new) |")
            else:
                print(f"{name:<26} {'-':>10} {new_ms:>10.1f}   (new)")
            continue
        ratio = new_ms / base_ms if base_ms else float("inf")
        ratios.append(ratio)
        flag = ""
        if ratio > gate:
            flag = "REGRESSION"
            failed.append(name)
        if args.markdown:
            mark = f" **{flag}**" if flag else ""
            print(f"| {name} | {base_ms:.1f} | {new_ms:.1f} | "
                  f"{ratio:.2f}x{mark} |")
        else:
            pad = f"  {flag}" if flag else ""
            print(f"{name:<26} {base_ms:>10.1f} {new_ms:>10.1f} "
                  f"{ratio:>6.2f}x{pad}")

    # The headline number: geometric mean of new/base across every
    # bench with a baseline (< 1.0 means the tree got faster overall).
    if ratios:
        geomean = math.exp(sum(math.log(r) for r in ratios)
                           / len(ratios))
        if args.markdown:
            print(f"| **geomean** ({len(ratios)} benches) | | | "
                  f"**{geomean:.3f}x** |")
        else:
            print(f"{'geomean (' + str(len(ratios)) + ' benches)':<26} "
                  f"{'':>10} {'':>10} {geomean:>6.3f}x")

    if failed:
        print(f"\n{len(failed)} bench(es) beyond {gate:.2f}x: "
              f"{', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
