#!/usr/bin/env bash
# Profile one bench binary with gprof.
#
# Maintains a dedicated instrumented build tree (build-pg/: Release
# codegen + -pg) so profiling never dirties the main build, rebuilds
# the requested bench there, runs it (extra arguments are passed
# through, e.g. --filter), and prints the flat profile plus the call
# graph of the hottest functions.
#
# gprof is the one profiler the toolchain image ships — perf is not
# installed, and gprof's instrumented call counts are exact (not
# sampled), which is what the per-access cost estimates in
# EXPERIMENTS.md "Hot-path engineering" are based on. Mind its
# blind spot: time in inlined callees is attributed to the caller, so
# a flat Core::access line means "access + everything inlined into
# it" — use the call graph and -l (line-level) for finer splits.
#
# Usage:
#   tools/profile_bench.sh fig09b_multisocket_2m
#   tools/profile_bench.sh ext_thp_aging --filter='gups/*'
#   LINES=80 tools/profile_bench.sh fig11_fragmentation
#
# Diff mode: run the same bench in two already-configured -pg build
# trees (e.g. build-pg on this commit and a worktree's build-pg on the
# baseline commit) and print the top-N per-function self-seconds side
# by side, sorted by absolute delta — where the hot path actually
# moved, not just what is hot:
#   tools/profile_bench.sh --diff build-pg-base build-pg \
#       fig09b_multisocket_2m [bench args...]

set -euo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
lines=${LINES:-40}

profile_tree() {
    # Build + run $bench in tree $1; flat profile on stdout.
    local t=$1
    shift
    cmake --build "$t" -j "$(nproc)" --target "$bench" >&2
    (cd "$t" && rm -f gmon.out && "./$bench" "$@" >/dev/null &&
        gprof -b -p "./$bench" gmon.out)
}

if [ "${1:-}" = --diff ]; then
    shift
    if [ $# -lt 3 ]; then
        echo "usage: $0 --diff <buildA> <buildB> <bench> [args...]" >&2
        exit 2
    fi
    tree_a=$1
    tree_b=$2
    bench=$3
    shift 3
    for t in "$tree_a" "$tree_b"; do
        if [ ! -f "$t/CMakeCache.txt" ]; then
            echo "error: $t is not a configured build tree" >&2
            exit 2
        fi
    done
    profile_tree "$tree_a" "$@" > /tmp/profile_a.$$
    profile_tree "$tree_b" "$@" > /tmp/profile_b.$$
    python3 - "$tree_a" "$tree_b" "$lines" \
        /tmp/profile_a.$$ /tmp/profile_b.$$ <<'EOF'
import sys

tree_a, tree_b, lines, file_a, file_b = sys.argv[1:6]

def parse(path):
    # gprof -b -p flat lines: "%time cum self [calls ms ms] name";
    # the name keeps internal spaces (template/argument lists), so
    # strip the leading numeric columns and join the rest.
    out = {}
    for line in open(path):
        parts = line.split(None, 3)
        if len(parts) < 4:
            continue
        try:
            self_s = float(parts[2])
        except ValueError:
            continue
        tokens = parts[3].split()
        calls = None
        while tokens:
            try:
                v = float(tokens[0])
            except ValueError:
                break
            if calls is None:
                calls = int(v)
            tokens.pop(0)
        name = " ".join(tokens)
        if name:
            out[name] = (self_s, calls)
    return out

a, b = parse(file_a), parse(file_b)
rows = []
for name in a.keys() | b.keys():
    sa, ca = a.get(name, (0.0, None))
    sb, cb = b.get(name, (0.0, None))
    rows.append((abs(sb - sa), sa, sb, ca, cb, name))
# Ties on delta are common (0.00 vs 0.00): key on (delta, name) only,
# since the calls columns may be None and don't order.
rows.sort(key=lambda r: (r[0], r[5]), reverse=True)

fmt_calls = lambda c: "-" if c is None else str(c)
print(f"{'A_self_s':>9} {'B_self_s':>9} {'delta':>8} "
      f"{'A_calls':>12} {'B_calls':>12}  function")
print(f"(A = {tree_a}, B = {tree_b}; sorted by |delta self seconds|)")
for _, sa, sb, ca, cb, name in rows[: int(lines)]:
    print(f"{sa:>9.2f} {sb:>9.2f} {sb - sa:>+8.2f} "
          f"{fmt_calls(ca):>12} {fmt_calls(cb):>12}  {name[:90]}")
EOF
    rm -f /tmp/profile_a.$$ /tmp/profile_b.$$
    exit 0
fi

if [ $# -lt 1 ]; then
    echo "usage: $0 <bench> [bench args...]" >&2
    exit 2
fi

bench=$1
shift

tree="$repo/build-pg"

cmake -B "$tree" -S "$repo" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS=-pg \
    -DCMAKE_EXE_LINKER_FLAGS=-pg \
    -DMITOSIM_BUILD_TESTS=OFF \
    -DMITOSIM_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$tree" -j "$(nproc)" --target "$bench"

cd "$tree"
rm -f gmon.out
"./$bench" "$@" >/dev/null
gprof -b "./$bench" gmon.out | head -n "$lines"
echo
echo "[full output: (cd build-pg && gprof ./$bench gmon.out | less)]"
