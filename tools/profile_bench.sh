#!/usr/bin/env bash
# Profile one bench binary with gprof.
#
# Maintains a dedicated instrumented build tree (build-pg/: Release
# codegen + -pg) so profiling never dirties the main build, rebuilds
# the requested bench there, runs it (extra arguments are passed
# through, e.g. --filter), and prints the flat profile plus the call
# graph of the hottest functions.
#
# gprof is the one profiler the toolchain image ships — perf is not
# installed, and gprof's instrumented call counts are exact (not
# sampled), which is what the per-access cost estimates in
# EXPERIMENTS.md "Hot-path engineering" are based on. Mind its
# blind spot: time in inlined callees is attributed to the caller, so
# a flat Core::access line means "access + everything inlined into
# it" — use the call graph and -l (line-level) for finer splits.
#
# Usage:
#   tools/profile_bench.sh fig09b_multisocket_2m
#   tools/profile_bench.sh ext_thp_aging --filter='gups/*'
#   LINES=80 tools/profile_bench.sh fig11_fragmentation

set -euo pipefail

if [ $# -lt 1 ]; then
    echo "usage: $0 <bench> [bench args...]" >&2
    exit 2
fi

bench=$1
shift

repo=$(cd "$(dirname "$0")/.." && pwd)
tree="$repo/build-pg"
lines=${LINES:-40}

cmake -B "$tree" -S "$repo" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS=-pg \
    -DCMAKE_EXE_LINKER_FLAGS=-pg \
    -DMITOSIM_BUILD_TESTS=OFF \
    -DMITOSIM_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$tree" -j "$(nproc)" --target "$bench"

cd "$tree"
rm -f gmon.out
"./$bench" "$@" >/dev/null
gprof -b "./$bench" gmon.out | head -n "$lines"
echo
echo "[full output: (cd build-pg && gprof ./$bench gmon.out | less)]"
