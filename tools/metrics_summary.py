#!/usr/bin/env python3
"""Summarize the "metrics" section of a BENCH_<name>.json report.

The section is the flattened src/obs registry: counters, gauges,
histogram digests (name_count/_sum/_p50/_p90/_p99) and the walk-cycle
attribution buckets (walk_cycles_L<level>_<local|remote>{pid=N}).
This tool renders it per job: scalars aligned, each histogram on one
line, and the attribution as a per-pid level x local/remote table with
remote shares — the fig09b companion table in EXPERIMENTS.md is this
tool's output.

Usage:
  tools/metrics_summary.py BENCH_x.json            # every job
  tools/metrics_summary.py BENCH_x.json --job gups # substring filter
"""

import argparse
import json
import re
import sys

HIST_SUFFIXES = ("_count", "_sum", "_p50", "_p90", "_p99")
ATTR_RE = re.compile(
    r"^walk_cycles_L(\d+)_(local|remote)\{pid=(\d+)\}$")


def fmt(v):
    if v == int(v):
        return str(int(v))
    return "%.3f" % v


def split_metrics(metrics):
    """Partition a job's metrics into (scalars, histograms, attr).

    histograms: name -> {count, sum, p50, p90, p99}
    attr: pid -> level -> [local, remote]
    """
    hists, attr, scalars = {}, {}, []
    hist_bases = {k[: -len("_count")] for k in metrics
                  if k.endswith("_count")
                  and all(k[: -len("_count")] + s in metrics
                          for s in HIST_SUFFIXES)}
    for key, value in metrics.items():
        m = ATTR_RE.match(key)
        if m:
            level, kind, pid = int(m.group(1)), m.group(2), int(m.group(3))
            attr.setdefault(pid, {}).setdefault(level, [0, 0])[
                kind == "remote"] = value
            continue
        for base in hist_bases:
            if key.startswith(base + "_") and \
                    key[len(base):] in HIST_SUFFIXES:
                hists.setdefault(base, {})[key[len(base) + 1:]] = value
                break
        else:
            scalars.append((key, value))
    return scalars, hists, attr


def print_job(job, metrics):
    print("%s:" % job)
    scalars, hists, attr = split_metrics(metrics)
    width = max((len(k) for k, _ in scalars), default=0)
    for key, value in scalars:
        print("  %-*s %s" % (width, key, fmt(value)))
    for base in sorted(hists):
        h = hists[base]
        print("  %s: count=%s sum=%s p50=%s p90=%s p99=%s" %
              (base, fmt(h["count"]), fmt(h["sum"]), fmt(h["p50"]),
               fmt(h["p90"]), fmt(h["p99"])))
    for pid in sorted(attr):
        print("  walk-cycle attribution, pid %d:" % pid)
        print("    %-6s %14s %14s %8s" %
              ("level", "local", "remote", "remote%"))
        tot_local = tot_remote = 0.0
        for level in sorted(attr[pid]):
            local, remote = attr[pid][level]
            tot_local += local
            tot_remote += remote
            share = 100.0 * remote / (local + remote) \
                if local + remote else 0.0
            print("    L%-5d %14s %14s %7.1f%%" %
                  (level, fmt(local), fmt(remote), share))
        total = tot_local + tot_remote
        share = 100.0 * tot_remote / total if total else 0.0
        print("    %-6s %14s %14s %7.1f%%" %
              ("total", fmt(tot_local), fmt(tot_remote), share))


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("report", help="BENCH_<name>.json path")
    ap.add_argument("--job", default="",
                    help="only jobs whose name contains this substring")
    args = ap.parse_args()

    with open(args.report) as f:
        doc = json.load(f)
    section = doc.get("metrics", {})
    if not section:
        print("%s: no metrics section (pre-observability report?)"
              % args.report, file=sys.stderr)
        return 1
    shown = 0
    for job, metrics in section.items():
        if args.job and args.job not in job:
            continue
        print_job(job, metrics)
        shown += 1
    if not shown:
        print("--job '%s' matched none of %d jobs"
              % (args.job, len(section)), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
