/**
 * @file
 * Figure 3: processed page-table dump for Memcached in the multi-socket
 * scenario (4 KB pages, first-touch allocation, AutoNUMA disabled).
 * Prints, per level and socket: live page-table pages, the distribution
 * of valid PTE targets across sockets, and the remote-pointer fraction.
 */

#include "bench/harness.h"
#include "src/driver/bench_main.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "fig03_pt_dump";
    spec.title =
        "Figure 3: Memcached page-table dump (4KB, first-touch, no "
        "AutoNUMA)";
    spec.describe = [](BenchReport &report) {
        describeMachine(report);
        ScenarioConfig cfg;
        cfg.workload = "memcached";
        describeScenario(report, cfg);
    };
    spec.registerJobs = [](driver::JobRegistry &registry) {
        ScenarioConfig cfg;
        cfg.workload = "memcached";
        registry.add("memcached/first-touch",
                     [cfg] { return placementJob(cfg); });
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        const driver::JobResult &res = results[0];
        std::printf("%s", res.text.c_str());

        std::printf("\nRemote leaf PTEs per observing socket: ");
        for (double f : placementFractions(res))
            std::printf("%5.0f%%", 100.0 * f);
        std::printf("\n(paper: L1 row ~67%% remote pointers on every "
                    "socket; each socket holds a similar number of L1 "
                    "pages)\n");

        recordPlacement(report, "memcached placement", res)
            .tag("workload", "memcached")
            .tag("placement", "first-touch");
    };
    return driver::benchMain(argc, argv, spec);
}
