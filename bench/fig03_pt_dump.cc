/**
 * @file
 * Figure 3: processed page-table dump for Memcached in the multi-socket
 * scenario (4 KB pages, first-touch allocation, AutoNUMA disabled).
 * Prints, per level and socket: live page-table pages, the distribution
 * of valid PTE targets across sockets, and the remote-pointer fraction.
 */

#include "bench/harness.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main()
{
    setInformEnabled(false);
    printTitle(
        "Figure 3: Memcached page-table dump (4KB, first-touch, no "
        "AutoNUMA)");

    BenchReport report("fig03_pt_dump");
    describeMachine(report);
    ScenarioConfig cfg;
    cfg.workload = "memcached";
    describeScenario(report, cfg);
    auto placement = analyzePlacement(cfg);
    std::printf("%s", placement.figure3Dump.c_str());

    std::printf("\nRemote leaf PTEs per observing socket: ");
    for (double f : placement.remoteLeafFraction)
        std::printf("%5.0f%%", 100.0 * f);
    std::printf("\n(paper: L1 row ~67%% remote pointers on every socket; "
                "each socket holds a similar number of L1 pages)\n");

    recordPlacement(report, "memcached placement", placement)
        .tag("workload", "memcached")
        .tag("placement", "first-touch");
    writeReport(report);
    return 0;
}
