#include "harness.h"

#include <cstdarg>

#include "src/base/logging.h"
#include "src/check/vmcheck.h"

namespace mitosim::bench
{

sim::MachineConfig
benchMachine()
{
    sim::MachineConfig cfg;
    cfg.topo.numSockets = 4;
    cfg.topo.coresPerSocket = 2;
    cfg.topo.memPerSocket = 6ull << 30;
    // Keep the leaf-PTE : L3 ratio of the paper's machine (see header).
    cfg.hier.l3BytesPerSocket = 64ull << 10;
    // The L1D scales with the L3 so page-directory lines of the scaled
    // THP footprints overflow it as they do on the real machine.
    cfg.hier.l1dBytes = 4ull << 10;
    // Sandy-Bridge-style STLB (no 2 MB entries): preserves the paper's
    // large-page-count : TLB-reach ratio at scaled THP footprints.
    cfg.tlb.l2Holds2M = false;
    return cfg;
}

const char *
msConfigName(MsConfig config, bool thp)
{
    switch (config) {
      case MsConfig::F:
        return thp ? "TF" : "F";
      case MsConfig::FM:
        return thp ? "TF+M" : "F+M";
      case MsConfig::FA:
        return thp ? "TF-A" : "F-A";
      case MsConfig::FAM:
        return thp ? "TF-A+M" : "F-A+M";
      case MsConfig::I:
        return thp ? "TI" : "I";
      case MsConfig::IM:
        return thp ? "TI+M" : "I+M";
    }
    return "?";
}

namespace
{

/** THP footprint of the Figure 9b/10b/11 runs (paper: 32-192 GB). */
constexpr std::uint64_t ThpFootprint = 4ull << 30;

/** Run ops with periodic AutoNUMA scan ticks when enabled. */
void
runMeasured(os::Kernel &kernel, os::ExecContext &ctx,
            workloads::Workload &w, std::uint64_t ops, bool autonuma,
            std::uint64_t seed)
{
    if (!autonuma) {
        workloads::runInterleaved(ctx, w, ops);
        return;
    }
    // Linux AutoNUMA samples a bounded number of pages per period with
    // adaptive back-off; a light sampling rate models that. Heavier
    // rates thrash multi-socket workloads with page ping-pong.
    Rng rng(seed ^ 0x5eedull);
    std::uint64_t chunk = ops / 4 ? ops / 4 : ops;
    std::uint64_t done = 0;
    while (done < ops) {
        std::uint64_t now = std::min(chunk, ops - done);
        workloads::runInterleaved(ctx, w, now);
        kernel.autoNumaTick(0.005, rng);
        done += now;
    }
}

/**
 * Serialize everything in @p s that influences populate into the
 * snapshot-cache key. Op counts and post-populate config (masks,
 * daemons, interferers, AutoNUMA) are deliberately absent — sharing
 * donors across them is the whole point.
 */
std::string
populateKey(const PopulateSpec &s)
{
    const sim::MachineConfig &m = s.machine;
    std::string key = format(
        "%s|fp=%llu|seed=%llu|thp=%d|init=%d.%d|frag=%g@%llu|home=%d|"
        "data=%d.%d|pt=%d.%d|be=%d|mi=%d.%d.%d.%d.%d|"
        "kc=%d.%d.%llu.%d.%d|ma=%d.%d.%llu.%llu.%llu.%d",
        s.workload.c_str(),
        static_cast<unsigned long long>(s.params.footprint),
        static_cast<unsigned long long>(s.params.seed),
        s.params.thp ? 1 : 0, static_cast<int>(s.params.initMode),
        s.params.initModeOverridden ? 1 : 0, s.fragmentation,
        static_cast<unsigned long long>(s.fragSeed), s.homeSocket,
        static_cast<int>(s.dataPolicy), s.dataFixedSocket,
        static_cast<int>(s.ptPlacement), s.ptFixedSocket,
        static_cast<int>(s.backend),
        static_cast<int>(s.mitosisCfg.policy), s.mitosisCfg.fixedSocket,
        static_cast<int>(s.mitosisCfg.updateMode),
        s.mitosisCfg.eagerFreeOnMigration ? 1 : 0,
        s.mitosisCfg.migrateOnProcessMove ? 1 : 0,
        s.kernelCfg.sched.timeShared ? 1 : 0,
        s.kernelCfg.sched.pcid ? 1 : 0,
        static_cast<unsigned long long>(s.kernelCfg.sched.timeslice),
        s.kernelCfg.sched.maxAsids,
        s.kernelCfg.thp.splitPartial ? 1 : 0, m.topo.numSockets,
        m.topo.coresPerSocket,
        static_cast<unsigned long long>(m.topo.memPerSocket),
        static_cast<unsigned long long>(m.hier.l3BytesPerSocket),
        static_cast<unsigned long long>(m.hier.l1dBytes),
        m.tlb.l2Holds2M ? 1 : 0);
    key += "|th=";
    for (SocketId t : s.threadSockets)
        key += std::to_string(t) + ",";
    return key;
}

} // namespace

std::unique_ptr<snapshot::Universe>
preparePopulated(const PopulateSpec &spec)
{
    auto build = [&spec]() {
        auto u = std::make_unique<snapshot::Universe>(
            spec.machine, spec.backend, spec.mitosisCfg, spec.kernelCfg);
        if (spec.fragmentation > 0.0) {
            Rng frag_rng(spec.fragSeed);
            for (SocketId s = 0; s < u->machine.numSockets(); ++s)
                u->machine.physmem().fragment(s, spec.fragmentation,
                                              frag_rng);
        }
        u->proc = &u->kernel.createProcess(spec.workload,
                                           spec.homeSocket);
        u->kernel.setDataPolicy(*u->proc, spec.dataPolicy,
                                spec.dataFixedSocket);
        u->kernel.setPtPlacement(*u->proc, spec.ptPlacement,
                                 spec.ptFixedSocket);
        u->ctx = std::make_unique<os::ExecContext>(u->kernel, *u->proc);
        for (SocketId s : spec.threadSockets)
            u->ctx->addThread(s);
        u->workload = workloads::makeWorkload(spec.workload, spec.params);
        u->workload->setup(*u->ctx);
        return u;
    };
    auto u = snapshot::SnapshotCache::instance().populated(
        populateKey(spec), spec.kernelCfg, build);
    // Discard populate-phase observability: a job's metrics and trace
    // describe only what happens after this point, which also keeps a
    // fork of a cached donor (whose obs state is never cloned, see
    // Machine::cloneStateFrom) byte-identical to a fresh
    // MITOSIM_SNAPSHOTS=0 build-and-populate.
    u->machine.metrics().reset();
    u->machine.tracer().reset();
    return u;
}

RunOutcome
runMultiSocket(const ScenarioConfig &scenario, MsConfig config,
               driver::JobResult *sink)
{
    PhaseTimer phases;

    bool interleave = config == MsConfig::I || config == MsConfig::IM;
    bool mitosis = config == MsConfig::FM || config == MsConfig::FAM ||
                   config == MsConfig::IM;
    bool autonuma = config == MsConfig::FA || config == MsConfig::FAM;

    PopulateSpec spec;
    spec.machine = benchMachine();
    spec.workload = scenario.workload;
    spec.params.footprint = scenario.footprint;
    spec.params.seed = scenario.seed;
    spec.params.thp = scenario.thp;
    spec.fragmentation = scenario.fragmentation;
    spec.fragSeed = scenario.seed ^ 0xf7a6ull;
    if (interleave) {
        spec.dataPolicy = os::DataPolicy::Interleave;
        spec.ptPlacement = pt::PtPlacement::Interleave;
    }
    for (SocketId s = 0; s < spec.machine.topo.numSockets; ++s)
        spec.threadSockets.push_back(s);

    auto u = preparePopulated(spec);
    os::Kernel &kernel = u->kernel;
    os::Process &proc = *u->proc;

    // Post-populate config: the AutoNUMA flag only matters once scan
    // ticks run, and the replication mask diverges the configs — both
    // act on the shared populate state, so forks stay byte-identical
    // to a from-scratch run.
    kernel.enableAutoNuma(proc, autonuma);
    if (mitosis) {
        u->mitosis().setReplicationMask(
            proc.roots(), proc.id(),
            SocketMask::all(u->machine.numSockets()));
        kernel.reloadContexts(proc);
    }
    phases.populateDone();

    runMeasured(kernel, *u->ctx, *u->workload, scenario.warmupOps,
                autonuma, scenario.seed);
    u->ctx->resetCounters();
    runMeasured(kernel, *u->ctx, *u->workload, scenario.measureOps,
                autonuma, scenario.seed + 1);
    phases.runDone();

    RunOutcome out;
    out.runtime = u->ctx->runtime();
    out.totals = u->ctx->totals();
    if (sink)
        recordWalkAttribution(*sink, proc.id(), out.totals);
    u->finalize();
    if (sink) {
        recordJobStats(kernel, *sink);
        phases.stamp(*sink);
    }
    return out;
}

PlacementAnalysis
analyzePlacement(const ScenarioConfig &scenario, bool interleave)
{
    PhaseTimer phases;

    PopulateSpec spec;
    spec.machine = benchMachine();
    spec.workload = scenario.workload;
    spec.params.footprint = scenario.footprint;
    spec.params.seed = scenario.seed;
    spec.params.thp = scenario.thp;
    if (interleave) {
        spec.dataPolicy = os::DataPolicy::Interleave;
        spec.ptPlacement = pt::PtPlacement::Interleave;
    }
    for (SocketId s = 0; s < spec.machine.topo.numSockets; ++s)
        spec.threadSockets.push_back(s);

    auto u = preparePopulated(spec);
    phases.populateDone();
    // A short run so access-driven effects (faults, AutoNUMA) settle.
    workloads::runInterleaved(*u->ctx, *u->workload, scenario.warmupOps);
    phases.runDone();

    analysis::PtAnalyzer analyzer(u->machine.physmem(),
                                  u->kernel.ptOps());
    auto snap = analyzer.snapshot(u->proc->roots());

    PlacementAnalysis out;
    out.wallPopulateMs = phases.populateMs();
    out.wallRunMs = phases.runMs();
    for (SocketId s = 0; s < u->machine.numSockets(); ++s)
        out.remoteLeafFraction.push_back(snap.remoteLeafFractionFrom(s));
    out.figure3Dump = snap.str();
    u->finalize();
    return out;
}

WmPlacement
wmPlacement(const std::string &name)
{
    if (name == "LP-LD")
        return {"LP-LD", false, false, false, false};
    if (name == "LP-RD")
        return {"LP-RD", false, true, false, false};
    if (name == "LP-RDI")
        return {"LP-RDI", false, true, true, false};
    if (name == "RP-LD")
        return {"RP-LD", true, false, false, false};
    if (name == "RPI-LD")
        return {"RPI-LD", true, false, true, false};
    if (name == "RP-RD")
        return {"RP-RD", true, true, false, false};
    if (name == "RPI-RDI")
        return {"RPI-RDI", true, true, true, false};
    if (name == "RPI-LD+M")
        return {"RPI-LD+M", true, false, true, true};
    if (name == "TRPI-LD+M")
        return {"TRPI-LD+M", true, false, true, true};
    fatal("unknown workload-migration placement '%s'", name.c_str());
}

RunOutcome
runWorkloadMigration(const ScenarioConfig &scenario, const WmPlacement &wm,
                     driver::JobResult *sink)
{
    PhaseTimer phases;

    constexpr SocketId SocketA = 0;
    constexpr SocketId SocketB = 1;

    PopulateSpec spec;
    spec.machine = benchMachine();
    spec.workload = scenario.workload;
    spec.params.footprint = scenario.footprint;
    spec.params.seed = scenario.seed;
    spec.params.thp = scenario.thp;
    spec.fragmentation = scenario.fragmentation;
    spec.fragSeed = scenario.seed ^ 0xf7a6ull;
    spec.homeSocket = SocketA;
    spec.dataPolicy = os::DataPolicy::Fixed;
    spec.dataFixedSocket = wm.remoteData ? SocketB : SocketA;
    spec.ptPlacement = pt::PtPlacement::Fixed;
    spec.ptFixedSocket = wm.remotePt ? SocketB : SocketA;
    spec.threadSockets.push_back(SocketA);

    auto u = preparePopulated(spec);
    os::Kernel &kernel = u->kernel;
    os::Process &proc = *u->proc;

    // Post-populate config: +M migration and the bandwidth interferer
    // are what distinguish the Table 2 placements sharing a populate.
    if (wm.mitosisMigrate) {
        u->mitosis().migratePageTables(proc.roots(), proc.id(), SocketA);
        kernel.reloadContexts(proc);
    }
    if (wm.interference)
        u->machine.topology().addInterferer(SocketB);
    phases.populateDone();

    workloads::runInterleaved(*u->ctx, *u->workload, scenario.warmupOps);
    u->ctx->resetCounters();
    workloads::runInterleaved(*u->ctx, *u->workload, scenario.measureOps);
    phases.runDone();

    RunOutcome out;
    out.runtime = u->ctx->runtime();
    out.totals = u->ctx->totals();
    if (wm.interference)
        u->machine.topology().removeInterferer(SocketB);
    if (sink)
        recordWalkAttribution(*sink, proc.id(), out.totals);
    u->finalize();
    if (sink) {
        recordJobStats(kernel, *sink);
        phases.stamp(*sink);
    }
    return out;
}

/// @name Job factories
/// @{

driver::JobResult
multiSocketJob(const ScenarioConfig &scenario, MsConfig config)
{
    driver::JobResult result;
    result.outcome = runMultiSocket(scenario, config, &result);
    return result;
}

driver::JobResult
migrationJob(const ScenarioConfig &scenario, const std::string &placement)
{
    driver::JobResult result;
    result.outcome =
        runWorkloadMigration(scenario, wmPlacement(placement), &result);
    return result;
}

driver::JobResult
placementJob(const ScenarioConfig &scenario, bool interleave)
{
    PlacementAnalysis analysis = analyzePlacement(scenario, interleave);
    driver::JobResult result;
    for (std::size_t s = 0; s < analysis.remoteLeafFraction.size(); ++s)
        result.value("remote_leaf_socket" + std::to_string(s),
                     analysis.remoteLeafFraction[s]);
    result.text = analysis.figure3Dump;
    result.wallPopulateMs = analysis.wallPopulateMs;
    result.wallRunMs = analysis.wallRunMs;
    return result;
}

std::vector<double>
placementFractions(const driver::JobResult &result)
{
    std::vector<double> fractions;
    for (const auto &[key, value] : result.values)
        if (key.rfind("remote_leaf_socket", 0) == 0)
            fractions.push_back(value);
    return fractions;
}

/// @}
/// @name Canonical matrices
/// @{

const std::vector<std::string> &
multiSocketWorkloads()
{
    static const std::vector<std::string> list = {
        "canneal", "memcached", "xsbench", "graph500", "hashjoin",
        "btree"};
    return list;
}

const std::vector<std::string> &
migrationWorkloads()
{
    static const std::vector<std::string> list = {
        "gups",    "btree",    "hashjoin",  "redis",
        "xsbench", "pagerank", "liblinear", "canneal"};
    return list;
}

const std::vector<MsConfig> &
msMatrixConfigs()
{
    static const std::vector<MsConfig> list = {
        MsConfig::F, MsConfig::FM, MsConfig::FA,
        MsConfig::FAM, MsConfig::I, MsConfig::IM};
    return list;
}

const std::vector<std::string> &
wmMatrixPlacements()
{
    static const std::vector<std::string> list = {
        "LP-LD", "LP-RD", "LP-RDI", "RP-LD", "RPI-LD", "RP-RD",
        "RPI-RDI"};
    return list;
}

void
registerMsMatrix(driver::JobRegistry &registry, bool thp)
{
    for (const std::string &name : multiSocketWorkloads()) {
        ScenarioConfig cfg;
        cfg.workload = name;
        if (thp) {
            cfg.footprint = ThpFootprint;
            // Figure 9b normalizes every THP bar to this 4 KB F run.
            ScenarioConfig base = cfg;
            registry.add(name + "/F-4k-base", [base] {
                return multiSocketJob(base, MsConfig::F);
            });
            cfg.thp = true;
        }
        for (MsConfig config : msMatrixConfigs()) {
            registry.add(name + "/" + msConfigName(config, thp),
                         [cfg, config] {
                             return multiSocketJob(cfg, config);
                         });
        }
    }
}

void
emitMsMatrix(const std::vector<driver::JobResult> &results,
             BenchReport &report, bool thp)
{
    const auto &configs = msMatrixConfigs();

    std::printf("%-11s", "workload");
    for (MsConfig config : configs)
        std::printf(" %8s", msConfigName(config, thp));
    std::printf("   speedups(+M)\n");

    std::size_t i = 0;
    for (const std::string &name : multiSocketWorkloads()) {
        double base = 0;
        if (thp)
            base = results[i++].runtime();
        std::vector<double> norm(configs.size());
        std::vector<double> walks(configs.size());
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const driver::JobResult &res = results[i++];
            if (!thp && c == 0)
                base = res.runtime();
            norm[c] = res.runtime() / base;
            walks[c] = res.outcome->walkFraction();
            const char *config = msConfigName(configs[c], thp);
            recordOutcome(report, name + " " + config, res, base)
                .tag("workload", name)
                .tag("config", config);
        }
        std::printf("%-11s", name.c_str());
        for (double r : norm)
            std::printf(" %8.3f", r);
        // Each +M config directly follows its non-M partner, so the
        // speedup pairs are consecutive (config, config+M) couples.
        std::printf("  ");
        for (std::size_t pair = 0; 2 * pair + 1 < configs.size();
             ++pair) {
            std::printf(" %.2fx", norm[2 * pair] / norm[2 * pair + 1]);
            report.speedup(
                format("%s %s/%s", name.c_str(),
                       msConfigName(configs[2 * pair], thp),
                       msConfigName(configs[2 * pair + 1], thp)),
                norm[2 * pair] / norm[2 * pair + 1]);
        }
        std::printf("\n");
        std::printf("%-11s", "  walk%");
        for (double wf : walks)
            std::printf(" %7.0f%%", 100.0 * wf);
        std::printf("\n");
    }
}

void
registerWmMatrix(driver::JobRegistry &registry,
                 const std::vector<std::string> &workloads,
                 const std::vector<std::string> &placements)
{
    for (const std::string &name : workloads) {
        ScenarioConfig cfg;
        cfg.workload = name;
        for (const std::string &placement : placements) {
            registry.add(name + "/" + placement, [cfg, placement] {
                return migrationJob(cfg, placement);
            });
        }
    }
}

void
registerWmTrio(driver::JobRegistry &registry, const WmTrioSpec &spec)
{
    const bool thp = spec.thp();
    for (const std::string &name : spec.workloads) {
        ScenarioConfig cfg;
        cfg.workload = name;
        if (thp) {
            cfg.footprint = ThpFootprint;
            cfg.thp = true;
        }
        if (spec.baseline == WmBaseline::Base4k) {
            ScenarioConfig base = cfg;
            base.thp = false;
            registry.add(name + "/LP-LD-4k-base", [base] {
                return migrationJob(base, "LP-LD");
            });
        } else if (spec.baseline == WmBaseline::CleanThp) {
            ScenarioConfig base = cfg;
            registry.add(name + "/TLP-LD-clean-base", [base] {
                return migrationJob(base, "LP-LD");
            });
        }
        ScenarioConfig run = cfg;
        if (spec.baseline == WmBaseline::CleanThp)
            run.fragmentation = 1.0; // every 2MB block is broken
        const char *jobNames[3] = {thp ? "TLP-LD" : "LP-LD",
                                   thp ? "TRPI-LD" : "RPI-LD",
                                   thp ? "TRPI-LD+M" : "RPI-LD+M"};
        const char *placements[3] = {"LP-LD", "RPI-LD",
                                     thp ? "TRPI-LD+M" : "RPI-LD+M"};
        for (int k = 0; k < 3; ++k) {
            std::string placement = placements[k];
            registry.add(name + "/" + jobNames[k], [run, placement] {
                return migrationJob(run, placement);
            });
        }
    }
}

void
emitWmTrio(const std::vector<driver::JobResult> &results,
           BenchReport &report, const WmTrioSpec &spec)
{
    const bool thp = spec.thp();
    const char *cols[3] = {thp ? "TLP-LD" : "LP-LD",
                           thp ? "TRPI-LD" : "RPI-LD",
                           thp ? "TRPI-LD+M" : "RPI-LD+M"};
    std::printf("%-11s %9s %9s %9s   %s\n", "workload", cols[0],
                cols[1], cols[2], "improvement(+M)");

    std::size_t i = 0;
    for (const std::string &name : spec.workloads) {
        double base = 0;
        double clean = 0;
        if (spec.baseline == WmBaseline::Base4k)
            base = results[i++].runtime();
        else if (spec.baseline == WmBaseline::CleanThp)
            clean = results[i++].runtime();
        const driver::JobResult &lp = results[i++];
        const driver::JobResult &rpi = results[i++];
        const driver::JobResult &mito = results[i++];
        if (spec.baseline != WmBaseline::Base4k)
            base = lp.runtime();

        double improvement = rpi.runtime() / mito.runtime();
        std::printf("%-11s %9.2f %9.2f %9.2f   %.2fx", name.c_str(),
                    lp.runtime() / base, rpi.runtime() / base,
                    mito.runtime() / base, improvement);
        if (spec.baseline == WmBaseline::CleanThp)
            std::printf("   (4KB-fallback cost vs clean THP: %.2fx)",
                        base / clean);
        std::printf("\n");

        BenchRun &lp_run =
            recordOutcome(report, name + " " + cols[0], lp, base)
                .tag("workload", name)
                .tag("config", cols[0]);
        if (spec.baseline == WmBaseline::CleanThp)
            lp_run.metric("fallback_cost_vs_clean_thp", base / clean);
        recordOutcome(report, name + " " + cols[1], rpi, base)
            .tag("workload", name)
            .tag("config", cols[1]);
        recordOutcome(report, name + " " + cols[2], mito, base)
            .tag("workload", name)
            .tag("config", cols[2]);
        report.speedup(
            format("%s %s/%s", name.c_str(), cols[1], cols[2]),
            improvement);
    }
}

/// @}

void
printTitle(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

void
printRow(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::vprintf(fmt, ap);
    va_end(ap);
    std::printf("\n");
}

void
describeMachine(BenchReport &report)
{
    const sim::MachineConfig cfg = benchMachine();
    report.config("num_sockets",
                  static_cast<double>(cfg.topo.numSockets));
    report.config("cores_per_socket",
                  static_cast<double>(cfg.topo.coresPerSocket));
    report.config("mem_per_socket_bytes",
                  static_cast<double>(cfg.topo.memPerSocket));
    report.config("l3_bytes_per_socket",
                  static_cast<double>(cfg.hier.l3BytesPerSocket));
    report.config("l1d_bytes", static_cast<double>(cfg.hier.l1dBytes));
    report.config("dram_local_latency",
                  static_cast<double>(cfg.topo.dramLocalLatency));
    report.config("stlb_holds_2m", cfg.tlb.l2Holds2M ? "yes" : "no");
    // Physical contiguity capacity: fully-free 2 MB blocks per socket
    // on the pristine machine. With the fragmentation knob in config
    // (fig11 / ext_thp_aging) this pins down the physical state a run
    // started from; live per-socket values are job metrics.
    report.config("free_2m_blocks_per_socket",
                  static_cast<double>(cfg.topo.memPerSocket /
                                      LargePageSize));
}

void
describeScenario(BenchReport &report, const ScenarioConfig &scenario)
{
    report.config("footprint_bytes",
                  static_cast<double>(scenario.footprint));
    report.config("thp", scenario.thp ? "on" : "off");
    report.config("warmup_ops", static_cast<double>(scenario.warmupOps));
    report.config("measure_ops",
                  static_cast<double>(scenario.measureOps));
    report.config("seed", static_cast<double>(scenario.seed));
    if (scenario.fragmentation > 0.0)
        report.config("fragmentation", scenario.fragmentation);
}

BenchRun &
recordOutcome(BenchReport &report, const std::string &label,
              const RunOutcome &out, double normBase)
{
    BenchRun &run = report.addRun(label);
    run.metric("runtime_cycles", static_cast<double>(out.runtime));
    if (normBase > 0.0)
        run.metric("norm_runtime",
                   static_cast<double>(out.runtime) / normBase);
    run.metric("walk_fraction", out.walkFraction());
    run.metric("remote_pt_fraction", out.remotePtFraction());
    return run;
}

BenchRun &
recordOutcome(BenchReport &report, const std::string &label,
              const driver::JobResult &result, double normBase)
{
    if (!result.outcome)
        fatal("recordOutcome: job '%s' carries no run outcome",
              label.c_str());
    return recordOutcome(report, label, *result.outcome, normBase);
}

BenchRun &
recordPlacement(BenchReport &report, const std::string &label,
                const driver::JobResult &result)
{
    BenchRun &run = report.addRun(label);
    for (const auto &[key, value] : result.values)
        run.metric(key, value);
    return run;
}

void
recordHostStats(sim::Machine &machine, driver::JobResult &res)
{
    std::uint64_t runs = 0;
    std::uint64_t ops = 0;
    for (CoreId c = 0; c < machine.numCores(); ++c) {
        runs += machine.core(c).fusedRuns();
        ops += machine.core(c).fusedOps();
    }
    res.hostStat("fused_runs", static_cast<double>(runs));
    res.hostStat("fused_ops", static_cast<double>(ops));

    mem::TableArenaStats arena = machine.physmem().tableArenaStats();
    res.hostStat("arena_table_chunks", static_cast<double>(arena.chunks));
    res.hostStat("arena_table_detaches",
                 static_cast<double>(arena.detaches));
    res.hostStat("arena_slot_recycles",
                 static_cast<double>(arena.slotRecycles));

    mem::SlabPoolStats pool = mem::slabPoolStats();
    res.hostStat("arena_slabs",
                 static_cast<double>(pool.metaSlabs + pool.tableSlabs));
    res.hostStat("arena_chunk_recycles",
                 static_cast<double>(pool.metaRecycles +
                                     pool.tableRecycles));
}

void
recordCheckStats(os::Kernel &kernel, driver::JobResult &res)
{
    check::Checker *chk = kernel.checker();
    if (!chk)
        return;
    // Fires the whole battery one last time on the final machine
    // state; with the default fail-fast config a violation fatal()s
    // here, so the stats below only ever describe a passing run.
    chk->atEndOfRun();
    const check::CheckStats &s = chk->stats();
    res.checkStat("checkpoints", static_cast<double>(s.checkpoints));
    res.checkStat("checks_run", static_cast<double>(s.checksRun));
    res.checkStat("violations", static_cast<double>(s.violations));
    res.checkStat("replica_tables_compared",
                  static_cast<double>(s.replicaTablesCompared));
    res.checkStat("leaves_checked", static_cast<double>(s.leavesChecked));
    res.checkStat("frames_accounted",
                  static_cast<double>(s.framesAccounted));
}

void
recordJobStats(os::Kernel &kernel, driver::JobResult &res,
               const JobStatsOptions &opts)
{
    if (opts.sched) {
        const os::SchedulerStats &ss = kernel.scheduler().stats();
        res.schedStat("context_switches",
                      static_cast<double>(ss.contextSwitches));
        res.schedStat("preemptions",
                      static_cast<double>(ss.preemptions));
        res.schedStat("migrations", static_cast<double>(ss.migrations));
        res.schedStat("asid_recycle_flushes",
                      static_cast<double>(ss.asidRecycleFlushes));
        res.schedStat("enqueues", static_cast<double>(ss.enqueues));
    }
    if (opts.thp) {
        const os::thp::ThpStats &ts = kernel.thp().stats();
        res.thpStat("collapses", static_cast<double>(ts.collapses));
        res.thpStat("collapse_failed_no_block",
                    static_cast<double>(ts.collapseFailedNoBlock));
        res.thpStat("splits", static_cast<double>(ts.splits));
        res.thpStat("compaction_blocks_reclaimed",
                    static_cast<double>(ts.compactionBlocksReclaimed));
        res.thpStat("compaction_pages_moved",
                    static_cast<double>(ts.compactionPagesMoved));
        res.thpStat("compaction_failures",
                    static_cast<double>(ts.compactionFailures));
        res.thpStat("ranges_scanned",
                    static_cast<double>(ts.rangesScanned));
        res.thpStat("daemon_cycles",
                    static_cast<double>(ts.daemonCycles));
    }
    recordCheckStats(kernel, res);
    sim::Machine &machine = kernel.machine();
    if (opts.host)
        recordHostStats(machine, res);
    for (const auto &[key, value] : machine.metrics().flatten())
        res.metricStat(key, value);
    res.traceJson = machine.tracer().exportJson();
}

void
recordWalkAttribution(driver::JobResult &res, ProcId pid,
                      const sim::PerfCounters &totals)
{
    for (unsigned level = 1; level <= PtLevels; ++level) {
        for (int remote = 0; remote < 2; ++remote) {
            res.metricStat(
                format("walk_cycles_L%u_%s{pid=%d}", level,
                       remote ? "remote" : "local",
                       static_cast<int>(pid)),
                static_cast<double>(
                    totals.walkCyclesAttr[level - 1][remote]));
        }
    }
    // The buckets above sum to exactly this (the attribution
    // invariant); recording the total makes the report self-checkable.
    res.metricStat(format("walk_cycles_total{pid=%d}",
                          static_cast<int>(pid)),
                   static_cast<double>(totals.walkCycles));
}

} // namespace mitosim::bench
