#include "harness.h"

#include <cstdarg>

#include "src/base/logging.h"

namespace mitosim::bench
{

sim::MachineConfig
benchMachine()
{
    sim::MachineConfig cfg;
    cfg.topo.numSockets = 4;
    cfg.topo.coresPerSocket = 2;
    cfg.topo.memPerSocket = 6ull << 30;
    // Keep the leaf-PTE : L3 ratio of the paper's machine (see header).
    cfg.hier.l3BytesPerSocket = 64ull << 10;
    // The L1D scales with the L3 so page-directory lines of the scaled
    // THP footprints overflow it as they do on the real machine.
    cfg.hier.l1dBytes = 4ull << 10;
    // Sandy-Bridge-style STLB (no 2 MB entries): preserves the paper's
    // large-page-count : TLB-reach ratio at scaled THP footprints.
    cfg.tlb.l2Holds2M = false;
    return cfg;
}

const char *
msConfigName(MsConfig config, bool thp)
{
    switch (config) {
      case MsConfig::F:
        return thp ? "TF" : "F";
      case MsConfig::FM:
        return thp ? "TF+M" : "F+M";
      case MsConfig::FA:
        return thp ? "TF-A" : "F-A";
      case MsConfig::FAM:
        return thp ? "TF-A+M" : "F-A+M";
      case MsConfig::I:
        return thp ? "TI" : "I";
      case MsConfig::IM:
        return thp ? "TI+M" : "I+M";
    }
    return "?";
}

namespace
{

/** Run ops with periodic AutoNUMA scan ticks when enabled. */
void
runMeasured(os::Kernel &kernel, os::ExecContext &ctx,
            workloads::Workload &w, std::uint64_t ops, bool autonuma,
            std::uint64_t seed)
{
    if (!autonuma) {
        workloads::runInterleaved(ctx, w, ops);
        return;
    }
    // Linux AutoNUMA samples a bounded number of pages per period with
    // adaptive back-off; a light sampling rate models that. Heavier
    // rates thrash multi-socket workloads with page ping-pong.
    Rng rng(seed ^ 0x5eedull);
    std::uint64_t chunk = ops / 4 ? ops / 4 : ops;
    std::uint64_t done = 0;
    while (done < ops) {
        std::uint64_t now = std::min(chunk, ops - done);
        workloads::runInterleaved(ctx, w, now);
        kernel.autoNumaTick(0.005, rng);
        done += now;
    }
}

} // namespace

RunOutcome
runMultiSocket(const ScenarioConfig &scenario, MsConfig config)
{
    sim::Machine machine(benchMachine());
    core::MitosisBackend backend(machine.physmem());
    os::Kernel kernel(machine, backend);

    if (scenario.fragmentation > 0.0) {
        Rng frag_rng(scenario.seed ^ 0xf7a6ull);
        for (SocketId s = 0; s < machine.numSockets(); ++s)
            machine.physmem().fragment(s, scenario.fragmentation,
                                       frag_rng);
    }

    os::Process &proc =
        kernel.createProcess(scenario.workload, 0);

    bool interleave = config == MsConfig::I || config == MsConfig::IM;
    bool mitosis = config == MsConfig::FM || config == MsConfig::FAM ||
                   config == MsConfig::IM;
    bool autonuma = config == MsConfig::FA || config == MsConfig::FAM;

    if (interleave) {
        kernel.setDataPolicy(proc, os::DataPolicy::Interleave);
        kernel.setPtPlacement(proc, pt::PtPlacement::Interleave);
    } else {
        kernel.setDataPolicy(proc, os::DataPolicy::FirstTouch);
        kernel.setPtPlacement(proc, pt::PtPlacement::FirstTouch);
    }
    kernel.enableAutoNuma(proc, autonuma);

    os::ExecContext ctx(kernel, proc);
    for (SocketId s = 0; s < machine.numSockets(); ++s)
        ctx.addThread(s);

    workloads::WorkloadParams params;
    params.footprint = scenario.footprint;
    params.seed = scenario.seed;
    params.thp = scenario.thp;
    auto w = workloads::makeWorkload(scenario.workload, params);
    w->setup(ctx);

    if (mitosis) {
        backend.setReplicationMask(
            proc.roots(), proc.id(),
            SocketMask::all(machine.numSockets()));
        kernel.reloadContexts(proc);
    }

    runMeasured(kernel, ctx, *w, scenario.warmupOps, autonuma,
                scenario.seed);
    ctx.resetCounters();
    runMeasured(kernel, ctx, *w, scenario.measureOps, autonuma,
                scenario.seed + 1);

    RunOutcome out;
    out.runtime = ctx.runtime();
    out.totals = ctx.totals();
    kernel.destroyProcess(proc);
    return out;
}

PlacementAnalysis
analyzePlacement(const ScenarioConfig &scenario, bool interleave)
{
    sim::Machine machine(benchMachine());
    core::MitosisBackend backend(machine.physmem());
    os::Kernel kernel(machine, backend);
    os::Process &proc = kernel.createProcess(scenario.workload, 0);
    if (interleave) {
        kernel.setDataPolicy(proc, os::DataPolicy::Interleave);
        kernel.setPtPlacement(proc, pt::PtPlacement::Interleave);
    }

    os::ExecContext ctx(kernel, proc);
    for (SocketId s = 0; s < machine.numSockets(); ++s)
        ctx.addThread(s);

    workloads::WorkloadParams params;
    params.footprint = scenario.footprint;
    params.seed = scenario.seed;
    params.thp = scenario.thp;
    auto w = workloads::makeWorkload(scenario.workload, params);
    w->setup(ctx);
    // A short run so access-driven effects (faults, AutoNUMA) settle.
    workloads::runInterleaved(ctx, *w, scenario.warmupOps);

    analysis::PtAnalyzer analyzer(machine.physmem(), kernel.ptOps());
    auto snap = analyzer.snapshot(proc.roots());

    PlacementAnalysis out;
    for (SocketId s = 0; s < machine.numSockets(); ++s)
        out.remoteLeafFraction.push_back(snap.remoteLeafFractionFrom(s));
    out.figure3Dump = snap.str();
    kernel.destroyProcess(proc);
    return out;
}

WmPlacement
wmPlacement(const std::string &name)
{
    if (name == "LP-LD")
        return {"LP-LD", false, false, false, false};
    if (name == "LP-RD")
        return {"LP-RD", false, true, false, false};
    if (name == "LP-RDI")
        return {"LP-RDI", false, true, true, false};
    if (name == "RP-LD")
        return {"RP-LD", true, false, false, false};
    if (name == "RPI-LD")
        return {"RPI-LD", true, false, true, false};
    if (name == "RP-RD")
        return {"RP-RD", true, true, false, false};
    if (name == "RPI-RDI")
        return {"RPI-RDI", true, true, true, false};
    if (name == "RPI-LD+M")
        return {"RPI-LD+M", true, false, true, true};
    if (name == "TRPI-LD+M")
        return {"TRPI-LD+M", true, false, true, true};
    fatal("unknown workload-migration placement '%s'", name.c_str());
}

RunOutcome
runWorkloadMigration(const ScenarioConfig &scenario, const WmPlacement &wm)
{
    sim::Machine machine(benchMachine());
    core::MitosisBackend backend(machine.physmem());
    os::Kernel kernel(machine, backend);

    constexpr SocketId SocketA = 0;
    constexpr SocketId SocketB = 1;

    if (scenario.fragmentation > 0.0) {
        Rng frag_rng(scenario.seed ^ 0xf7a6ull);
        for (SocketId s = 0; s < machine.numSockets(); ++s)
            machine.physmem().fragment(s, scenario.fragmentation,
                                       frag_rng);
    }

    os::Process &proc = kernel.createProcess(scenario.workload, SocketA);
    kernel.setDataPolicy(proc, os::DataPolicy::Fixed,
                         wm.remoteData ? SocketB : SocketA);
    kernel.setPtPlacement(proc, pt::PtPlacement::Fixed,
                          wm.remotePt ? SocketB : SocketA);

    os::ExecContext ctx(kernel, proc);
    ctx.addThread(SocketA);

    workloads::WorkloadParams params;
    params.footprint = scenario.footprint;
    params.seed = scenario.seed;
    params.thp = scenario.thp;
    auto w = workloads::makeWorkload(scenario.workload, params);
    w->setup(ctx);

    if (wm.mitosisMigrate) {
        backend.migratePageTables(proc.roots(), proc.id(), SocketA);
        kernel.reloadContexts(proc);
    }
    if (wm.interference)
        machine.topology().addInterferer(SocketB);

    workloads::runInterleaved(ctx, *w, scenario.warmupOps);
    ctx.resetCounters();
    workloads::runInterleaved(ctx, *w, scenario.measureOps);

    RunOutcome out;
    out.runtime = ctx.runtime();
    out.totals = ctx.totals();
    if (wm.interference)
        machine.topology().removeInterferer(SocketB);
    kernel.destroyProcess(proc);
    return out;
}

void
printTitle(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

void
printRow(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::vprintf(fmt, ap);
    va_end(ap);
    std::printf("\n");
}

void
describeMachine(BenchReport &report)
{
    const sim::MachineConfig cfg = benchMachine();
    report.config("num_sockets",
                  static_cast<double>(cfg.topo.numSockets));
    report.config("cores_per_socket",
                  static_cast<double>(cfg.topo.coresPerSocket));
    report.config("mem_per_socket_bytes",
                  static_cast<double>(cfg.topo.memPerSocket));
    report.config("l3_bytes_per_socket",
                  static_cast<double>(cfg.hier.l3BytesPerSocket));
    report.config("l1d_bytes", static_cast<double>(cfg.hier.l1dBytes));
    report.config("dram_local_latency",
                  static_cast<double>(cfg.topo.dramLocalLatency));
    report.config("stlb_holds_2m", cfg.tlb.l2Holds2M ? "yes" : "no");
}

void
describeScenario(BenchReport &report, const ScenarioConfig &scenario)
{
    report.config("footprint_bytes",
                  static_cast<double>(scenario.footprint));
    report.config("thp", scenario.thp ? "on" : "off");
    report.config("warmup_ops", static_cast<double>(scenario.warmupOps));
    report.config("measure_ops",
                  static_cast<double>(scenario.measureOps));
    report.config("seed", static_cast<double>(scenario.seed));
    if (scenario.fragmentation > 0.0)
        report.config("fragmentation", scenario.fragmentation);
}

BenchRun &
recordOutcome(BenchReport &report, const std::string &label,
              const RunOutcome &out, double normBase)
{
    BenchRun &run = report.addRun(label);
    run.metric("runtime_cycles", static_cast<double>(out.runtime));
    if (normBase > 0.0)
        run.metric("norm_runtime",
                   static_cast<double>(out.runtime) / normBase);
    run.metric("walk_fraction", out.walkFraction());
    run.metric("remote_pt_fraction", out.remotePtFraction());
    return run;
}

BenchRun &
recordPlacement(BenchReport &report, const std::string &label,
                const PlacementAnalysis &analysis)
{
    BenchRun &run = report.addRun(label);
    for (std::size_t s = 0; s < analysis.remoteLeafFraction.size(); ++s)
        run.metric("remote_leaf_socket" + std::to_string(s),
                   analysis.remoteLeafFraction[s]);
    return run;
}

void
writeReport(const BenchReport &report)
{
    if (report.write())
        std::printf("\n[report] %s\n", report.outputPath().c_str());
}

} // namespace mitosim::bench
