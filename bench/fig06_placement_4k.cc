/**
 * @file
 * Figure 6: workload-migration scenario, all seven Table 2 placements,
 * 4 KB pages. For every workload prints runtime normalized to LP-LD and
 * the fraction of cycles spent in page walks (the hashed bar part).
 *
 * Expected shape (paper): LP-LD fastest; LP-RD/LP-RDI ~3x; RP-LD/RPI-LD
 * ~3.3x (remote page-tables can hurt *more* than remote data); RP-RD /
 * RPI-RDI worst (~3.6x).
 */

#include "bench/harness.h"
#include "src/driver/bench_main.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "fig06_placement_4k";
    spec.title = "Figure 6: placement matrix, 4KB pages "
                 "(runtime normalized to LP-LD)";
    spec.describe = [](BenchReport &report) { describeMachine(report); };
    spec.registerJobs = [](driver::JobRegistry &registry) {
        registerWmMatrix(registry, migrationWorkloads(),
                         wmMatrixPlacements());
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        const auto &placements = wmMatrixPlacements();
        std::printf("%-11s", "workload");
        for (const std::string &placement : placements)
            std::printf(" %9s", placement.c_str());
        std::printf("\n");

        std::size_t i = 0;
        for (const std::string &name : migrationWorkloads()) {
            double base = 0;
            std::printf("%-11s", name.c_str());
            std::string walk_row;
            for (const std::string &placement : placements) {
                const driver::JobResult &res = results[i++];
                if (base == 0)
                    base = res.runtime();
                recordOutcome(report, name + " " + placement, res, base)
                    .tag("workload", name)
                    .tag("config", placement);
                std::printf(" %9.2f", res.runtime() / base);
                walk_row += format(
                    " %8.0f%%", 100.0 * res.outcome->walkFraction());
            }
            std::printf("\n%-11s%s\n", "  walk%", walk_row.c_str());
        }
    };
    return driver::benchMain(argc, argv, spec);
}
