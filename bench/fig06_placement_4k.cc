/**
 * @file
 * Figure 6: workload-migration scenario, all seven Table 2 placements,
 * 4 KB pages. For every workload prints runtime normalized to LP-LD and
 * the fraction of cycles spent in page walks (the hashed bar part).
 *
 * Expected shape (paper): LP-LD fastest; LP-RD/LP-RDI ~3x; RP-LD/RPI-LD
 * ~3.3x (remote page-tables can hurt *more* than remote data); RP-RD /
 * RPI-RDI worst (~3.6x).
 */

#include "bench/harness.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main()
{
    setInformEnabled(false);
    printTitle("Figure 6: placement matrix, 4KB pages "
               "(runtime normalized to LP-LD)");
    BenchReport report("fig06_placement_4k");
    describeMachine(report);

    const char *workloads[] = {"gups",    "btree",    "hashjoin",
                               "redis",   "xsbench",  "pagerank",
                               "liblinear", "canneal"};
    const char *configs[] = {"LP-LD", "LP-RD", "LP-RDI", "RP-LD",
                             "RPI-LD", "RP-RD", "RPI-RDI"};

    std::printf("%-11s", "workload");
    for (const char *c : configs)
        std::printf(" %9s", c);
    std::printf("\n");

    for (const char *name : workloads) {
        ScenarioConfig cfg;
        cfg.workload = name;
        double base = 0;
        std::printf("%-11s", name);
        std::string walk_row;
        for (const char *c : configs) {
            auto out = runWorkloadMigration(cfg, wmPlacement(c));
            if (base == 0)
                base = static_cast<double>(out.runtime);
            recordOutcome(report, std::string(name) + " " + c, out, base)
                .tag("workload", name)
                .tag("config", c);
            std::printf(" %9.2f",
                        static_cast<double>(out.runtime) / base);
            walk_row += format(" %8.0f%%", 100.0 * out.walkFraction());
        }
        std::printf("\n%-11s%s\n", "  walk%", walk_row.c_str());
    }
    writeReport(report);
    return 0;
}
