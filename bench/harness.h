/**
 * @file
 * Shared benchmark harness: the two experimental scenarios of the paper
 * (§3/§8) with their full configuration matrices, plus table printing.
 *
 * The harness is expressed as *job factories* for the parallel
 * experiment runner (src/driver): every config point of a figure/table
 * becomes a named driver::Job whose thunk builds a private Machine +
 * Kernel and returns a driver::JobResult, and the duplicated matrix
 * loops of the fig09a/b, fig10a/b and fig11 binaries live here once
 * as register/emit pairs.
 *
 * Scaling: footprints are 128 MiB against a 64 KiB/socket L3, preserving
 * the paper's leaf-PTE-working-set : L3 ratio (~4:1) that makes 4 KB-page
 * walks DRAM-bound, and the paper's DRAM latencies (280/580 cycles).
 * Absolute numbers differ from the paper's testbed; shapes are the
 * reproduction target (see EXPERIMENTS.md).
 */

#ifndef MITOSIM_BENCH_HARNESS_H
#define MITOSIM_BENCH_HARNESS_H

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/report.h"
#include "src/analysis/pt_dump.h"
#include "src/core/mitosis.h"
#include "src/driver/job.h"
#include "src/os/exec_context.h"
#include "src/os/kernel.h"
#include "src/sim/machine.h"
#include "src/snapshot/snapshot.h"
#include "src/workloads/workload.h"

namespace mitosim::bench
{

/** Machine used by all scenario benches. */
sim::MachineConfig benchMachine();

/** Common workload knobs. */
struct ScenarioConfig
{
    std::string workload;
    std::uint64_t footprint = 128ull << 20;
    bool thp = false;
    std::uint64_t warmupOps = 2000;
    std::uint64_t measureOps = 6000;
    std::uint64_t seed = 42;
    double fragmentation = 0.0; //!< pre-fragment all sockets (Fig 11)
};

/** What a run produced (defined with the driver's Job machinery). */
using RunOutcome = driver::RunOutcome;

/**
 * Host wall-clock phase stamps for the report's wall_ms breakdown.
 * Construct at job entry, call populateDone() once the simulated
 * machine is built and populated (setup complete, replication applied),
 * runDone() after the last simulated operation, then stamp() the
 * result. Whatever wall-clock the job spends after runDone() —
 * teardown, end-of-run checks, analysis — lands in the derived
 * "report" phase (total - populate - run).
 */
class PhaseTimer
{
  public:
    PhaseTimer() : start_(std::chrono::steady_clock::now()) {}

    void populateDone() { populateMs_ = elapsedMs(); }
    void runDone() { runMs_ = elapsedMs(); }

    double populateMs() const { return populateMs_; }
    double
    runMs() const
    {
        return runMs_ > populateMs_ ? runMs_ - populateMs_ : 0.0;
    }

    void
    stamp(driver::JobResult &res) const
    {
        res.wallPopulateMs = populateMs();
        res.wallRunMs = runMs();
    }

  private:
    double
    elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    std::chrono::steady_clock::time_point start_;
    double populateMs_ = 0.0;
    double runMs_ = 0.0;
};

/// @name Shared populate path (snapshot-cached)
/// @{

/**
 * Everything that determines the state of a populated universe: one
 * spec = one deterministic populate = one snapshot-cache key. The
 * matrix runners and ext_thp_aging all build their machine through
 * this single helper, so config points that share a populate (e.g.
 * the six Table 3 configs of one workload, or a daemon-on/off pair)
 * fork one cached donor instead of re-faulting the footprint.
 *
 * Deliberately *not* part of the spec (and of the key): anything that
 * acts only after populate — AutoNUMA enablement, the Mitosis
 * replication mask, page-table migration, bandwidth interferers, THP
 * daemon settings, warmup/measure op counts. Callers apply those to
 * the returned fork. The determinism rule: a job run from a fork must
 * be byte-identical to the same job run from a fresh populate
 * (MITOSIM_SNAPSHOTS=0), which CI enforces.
 */
struct PopulateSpec
{
    sim::MachineConfig machine;
    snapshot::BackendKind backend = snapshot::BackendKind::Mitosis;
    core::MitosisConfig mitosisCfg;
    os::KernelConfig kernelCfg;
    std::string workload;
    workloads::WorkloadParams params;
    double fragmentation = 0.0; //!< fragment all sockets before populate
    std::uint64_t fragSeed = 0;
    SocketId homeSocket = 0;
    os::DataPolicy dataPolicy = os::DataPolicy::FirstTouch;
    SocketId dataFixedSocket = 0;
    pt::PtPlacement ptPlacement = pt::PtPlacement::FirstTouch;
    SocketId ptFixedSocket = 0;
    std::vector<SocketId> threadSockets; //!< one addThread per entry
};

/**
 * A populated universe per @p spec: a fork of the process-wide cached
 * donor (built on first use), or a fresh build when MITOSIM_SNAPSHOTS=0.
 * The caller owns the result, applies its post-populate config, runs,
 * records metrics, then calls Universe::finalize().
 */
std::unique_ptr<snapshot::Universe>
preparePopulated(const PopulateSpec &spec);

/// @}
/// @name Multi-socket scenario (Table 3 configs: F, F+M, F-A, F-A+M, I, I+M)
/// @{

enum class MsConfig
{
    F,   //!< first-touch data + PT
    FM,  //!< first-touch + Mitosis replication
    FA,  //!< first-touch + AutoNUMA data migration
    FAM, //!< first-touch + AutoNUMA + Mitosis
    I,   //!< interleaved data + PT
    IM,  //!< interleaved + Mitosis
};

const char *msConfigName(MsConfig config, bool thp);

/**
 * Threads on every socket; returns aggregate counters + runtime. When
 * @p sink is non-null and the kernel ran with vmcheck enabled
 * (MITOSIM_CHECK=1 or a Debug build with MITOSIM_CHECK_DEFAULT), the
 * end-of-run invariant battery fires and its counters land in
 * @p sink's "check" section (see recordCheckStats).
 */
RunOutcome runMultiSocket(const ScenarioConfig &scenario, MsConfig config,
                          driver::JobResult *sink = nullptr);

/**
 * Remote-leaf-PTE percentages per observing socket for a multi-socket
 * workload after setup with first-touch placement (Figures 1/4), and the
 * full snapshot (Figure 3).
 */
struct PlacementAnalysis
{
    std::vector<double> remoteLeafFraction; //!< per observing socket
    std::string figure3Dump;
    double wallPopulateMs = 0.0; //!< host phase stamps (see PhaseTimer)
    double wallRunMs = 0.0;
};

PlacementAnalysis analyzePlacement(const ScenarioConfig &scenario,
                                   bool interleave = false);

/// @}
/// @name Workload migration scenario (Table 2 configs)
/// @{

struct WmPlacement
{
    const char *name = "LP-LD";
    bool remotePt = false;      //!< page-tables forced on socket B
    bool remoteData = false;    //!< data forced on socket B
    bool interference = false;  //!< STREAM-style hog on socket B
    bool mitosisMigrate = false; //!< +M: migrate PTs back to A
};

/** The seven Table 2 placements by name: LP-LD ... RPI-RDI. */
WmPlacement wmPlacement(const std::string &name);

/** Single thread on socket A; placement per @p wm. @p sink as above. */
RunOutcome runWorkloadMigration(const ScenarioConfig &scenario,
                                const WmPlacement &wm,
                                driver::JobResult *sink = nullptr);

/// @}
/// @name Job factories (the scenario runs as driver jobs)
/// @{

/** runMultiSocket as a JobResult-returning config point. */
driver::JobResult multiSocketJob(const ScenarioConfig &scenario,
                                 MsConfig config);

/** runWorkloadMigration for the Table 2 placement named @p placement. */
driver::JobResult migrationJob(const ScenarioConfig &scenario,
                               const std::string &placement);

/**
 * analyzePlacement as a job: one remote_leaf_socket<N> value per
 * observing socket (in socket order) plus the Figure 3 dump as text.
 */
driver::JobResult placementJob(const ScenarioConfig &scenario,
                               bool interleave = false);

/** The remote-leaf fractions recorded by placementJob, socket order. */
std::vector<double> placementFractions(const driver::JobResult &result);

/// @}
/// @name Canonical workload / config matrices (deduplicated from mains)
/// @{

/** Multi-socket scenario workloads (Figures 1/3/4/9). */
const std::vector<std::string> &multiSocketWorkloads();

/** Workload-migration scenario workloads (Figures 6/10). */
const std::vector<std::string> &migrationWorkloads();

/** The six Table 3 configs in figure order: F, F+M, F-A, F-A+M, I, I+M. */
const std::vector<MsConfig> &msMatrixConfigs();

/** The seven Table 2 placements in figure order: LP-LD ... RPI-RDI. */
const std::vector<std::string> &wmMatrixPlacements();

/**
 * Register the Figure 9 matrix: for every multi-socket workload the six
 * Table 3 configs ("<wl>/<config>"), preceded in THP mode by the 4 KB F
 * baseline job ("<wl>/F-4k-base") that Figure 9b normalizes to.
 */
void registerMsMatrix(driver::JobRegistry &registry, bool thp);

/** Print + record the matrix registered by registerMsMatrix. */
void emitMsMatrix(const std::vector<driver::JobResult> &results,
                  BenchReport &report, bool thp);

/** One migration job per (workload, placement), named "<wl>/<pl>". */
void registerWmMatrix(driver::JobRegistry &registry,
                      const std::vector<std::string> &workloads,
                      const std::vector<std::string> &placements);

/** What the Figure 10/11 trio (LP-LD, RPI-LD, +M) is normalized to. */
enum class WmBaseline
{
    None,     //!< Fig 10a: the trio's own LP-LD, 4 KB pages
    Base4k,   //!< Fig 10b: a separate 4 KB LP-LD run; trio uses THP
    CleanThp, //!< Fig 11: unfragmented TLP-LD; trio is fragmented THP
};

struct WmTrioSpec
{
    std::vector<std::string> workloads;
    WmBaseline baseline = WmBaseline::None;

    bool thp() const { return baseline != WmBaseline::None; }
};

/**
 * Register the Figure 10/11 shape: per workload an optional baseline
 * job followed by LP-LD / RPI-LD / RPI-LD+M (T-prefixed under THP).
 */
void registerWmTrio(driver::JobRegistry &registry, const WmTrioSpec &spec);

/** Print + record the trio registered by registerWmTrio. */
void emitWmTrio(const std::vector<driver::JobResult> &results,
                BenchReport &report, const WmTrioSpec &spec);

/// @}
/// @name Output helpers
/// @{

void printTitle(const std::string &title);
void printRow(const char *fmt, ...);

/// @}
/// @name JSON result reporting (see report.h for the schema)
/// @{

/** Record benchMachine()'s shape in @p report's config section. */
void describeMachine(BenchReport &report);

/** Record @p scenario's workload-independent knobs in the config. */
void describeScenario(BenchReport &report, const ScenarioConfig &scenario);

/**
 * Add @p out as a run: raw runtime plus walk / remote-PT fractions, and
 * runtime normalized to @p normBase when normBase > 0. Returns the run
 * so callers can attach tags and extra metrics.
 */
BenchRun &recordOutcome(BenchReport &report, const std::string &label,
                        const RunOutcome &out, double normBase = 0.0);

/** recordOutcome for a job result that must carry an outcome. */
BenchRun &recordOutcome(BenchReport &report, const std::string &label,
                        const driver::JobResult &result,
                        double normBase = 0.0);

/**
 * Run @p kernel's end-of-run vmcheck battery (if checking is enabled)
 * and copy the checker's counters into @p res's "check" section. A
 * no-op when the kernel has no checker, so every bench can call it
 * unconditionally before its kernel dies; violations fatal() unless
 * the checker was configured otherwise, so a report that carries a
 * "check" section with violations == 0 really did pass the battery.
 */
void recordCheckStats(os::Kernel &kernel, driver::JobResult &res);

/**
 * Copy the machine's host-side hot-path telemetry into @p res's host
 * stats: fused replay activity summed over cores (Core::fusedRuns /
 * fusedOps) and table-arena slab/chunk counters (PhysicalMemory).
 * These land inside the report's per-job "wall_ms" entry — host
 * throughput context like host_ops_per_sec, excluded from metric
 * comparisons — and vary legitimately with MITOSIM_FUSE and snapshot
 * donor reuse.
 */
void recordHostStats(sim::Machine &machine, driver::JobResult &res);

/** Which optional stat sections recordJobStats copies. */
struct JobStatsOptions
{
    bool sched = false; //!< scheduler activity ("scheduler" section)
    bool thp = false;   //!< THP lifecycle counters ("thp" section)
    bool host = true;   //!< host hot-path telemetry ("wall_ms" section)
};

/**
 * One-stop end-of-job stat sink: copies every diagnostic surface the
 * job's kernel/machine accumulated into @p res — the vmcheck battery
 * (recordCheckStats, always), scheduler and THP counters in their
 * established key orders (opted in, since those sections only appear
 * for benches whose jobs ran the respective machinery), host hot-path
 * telemetry (recordHostStats, opted out by benches that bypass the
 * populate path), the flattened src/obs metrics registry, and the
 * exported trace JSON (empty unless MITOSIM_TRACE enabled categories).
 * Call once per job, after Universe::finalize() / finalizeProcess().
 */
void recordJobStats(os::Kernel &kernel, driver::JobResult &res,
                    const JobStatsOptions &opts = {});

/**
 * Record @p totals' walk-cycle attribution (PerfCounters::walkCyclesAttr)
 * into @p res's "metrics" section as walk_cycles_L<level>_<local|remote>
 * keys labelled {pid=<pid>} — one call per measured process, before the
 * process is finalized. The buckets sum exactly to totals.walkCycles.
 */
void recordWalkAttribution(driver::JobResult &res, ProcId pid,
                           const sim::PerfCounters &totals);

/**
 * Add a placementJob result as a run with one remote_leaf_socket<N>
 * metric per observing socket. Returns the run for extra tags.
 */
BenchRun &recordPlacement(BenchReport &report, const std::string &label,
                          const driver::JobResult &result);

/// @}

} // namespace mitosim::bench

#endif // MITOSIM_BENCH_HARNESS_H
