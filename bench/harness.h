/**
 * @file
 * Shared benchmark harness: the two experimental scenarios of the paper
 * (§3/§8) with their full configuration matrices, plus table printing.
 *
 * The harness is expressed as *job factories* for the parallel
 * experiment runner (src/driver): every config point of a figure/table
 * becomes a named driver::Job whose thunk builds a private Machine +
 * Kernel and returns a driver::JobResult, and the duplicated matrix
 * loops of the fig09a/b, fig10a/b and fig11 binaries live here once
 * as register/emit pairs.
 *
 * Scaling: footprints are 128 MiB against a 64 KiB/socket L3, preserving
 * the paper's leaf-PTE-working-set : L3 ratio (~4:1) that makes 4 KB-page
 * walks DRAM-bound, and the paper's DRAM latencies (280/580 cycles).
 * Absolute numbers differ from the paper's testbed; shapes are the
 * reproduction target (see EXPERIMENTS.md).
 */

#ifndef MITOSIM_BENCH_HARNESS_H
#define MITOSIM_BENCH_HARNESS_H

#include <cstdio>
#include <string>
#include <vector>

#include "bench/report.h"
#include "src/analysis/pt_dump.h"
#include "src/core/mitosis.h"
#include "src/driver/job.h"
#include "src/os/exec_context.h"
#include "src/os/kernel.h"
#include "src/sim/machine.h"
#include "src/workloads/workload.h"

namespace mitosim::bench
{

/** Machine used by all scenario benches. */
sim::MachineConfig benchMachine();

/** Common workload knobs. */
struct ScenarioConfig
{
    std::string workload;
    std::uint64_t footprint = 128ull << 20;
    bool thp = false;
    std::uint64_t warmupOps = 2000;
    std::uint64_t measureOps = 6000;
    std::uint64_t seed = 42;
    double fragmentation = 0.0; //!< pre-fragment all sockets (Fig 11)
};

/** What a run produced (defined with the driver's Job machinery). */
using RunOutcome = driver::RunOutcome;

/// @name Multi-socket scenario (Table 3 configs: F, F+M, F-A, F-A+M, I, I+M)
/// @{

enum class MsConfig
{
    F,   //!< first-touch data + PT
    FM,  //!< first-touch + Mitosis replication
    FA,  //!< first-touch + AutoNUMA data migration
    FAM, //!< first-touch + AutoNUMA + Mitosis
    I,   //!< interleaved data + PT
    IM,  //!< interleaved + Mitosis
};

const char *msConfigName(MsConfig config, bool thp);

/**
 * Threads on every socket; returns aggregate counters + runtime. When
 * @p sink is non-null and the kernel ran with vmcheck enabled
 * (MITOSIM_CHECK=1 or a Debug build with MITOSIM_CHECK_DEFAULT), the
 * end-of-run invariant battery fires and its counters land in
 * @p sink's "check" section (see recordCheckStats).
 */
RunOutcome runMultiSocket(const ScenarioConfig &scenario, MsConfig config,
                          driver::JobResult *sink = nullptr);

/**
 * Remote-leaf-PTE percentages per observing socket for a multi-socket
 * workload after setup with first-touch placement (Figures 1/4), and the
 * full snapshot (Figure 3).
 */
struct PlacementAnalysis
{
    std::vector<double> remoteLeafFraction; //!< per observing socket
    std::string figure3Dump;
};

PlacementAnalysis analyzePlacement(const ScenarioConfig &scenario,
                                   bool interleave = false);

/// @}
/// @name Workload migration scenario (Table 2 configs)
/// @{

struct WmPlacement
{
    const char *name = "LP-LD";
    bool remotePt = false;      //!< page-tables forced on socket B
    bool remoteData = false;    //!< data forced on socket B
    bool interference = false;  //!< STREAM-style hog on socket B
    bool mitosisMigrate = false; //!< +M: migrate PTs back to A
};

/** The seven Table 2 placements by name: LP-LD ... RPI-RDI. */
WmPlacement wmPlacement(const std::string &name);

/** Single thread on socket A; placement per @p wm. @p sink as above. */
RunOutcome runWorkloadMigration(const ScenarioConfig &scenario,
                                const WmPlacement &wm,
                                driver::JobResult *sink = nullptr);

/// @}
/// @name Job factories (the scenario runs as driver jobs)
/// @{

/** runMultiSocket as a JobResult-returning config point. */
driver::JobResult multiSocketJob(const ScenarioConfig &scenario,
                                 MsConfig config);

/** runWorkloadMigration for the Table 2 placement named @p placement. */
driver::JobResult migrationJob(const ScenarioConfig &scenario,
                               const std::string &placement);

/**
 * analyzePlacement as a job: one remote_leaf_socket<N> value per
 * observing socket (in socket order) plus the Figure 3 dump as text.
 */
driver::JobResult placementJob(const ScenarioConfig &scenario,
                               bool interleave = false);

/** The remote-leaf fractions recorded by placementJob, socket order. */
std::vector<double> placementFractions(const driver::JobResult &result);

/// @}
/// @name Canonical workload / config matrices (deduplicated from mains)
/// @{

/** Multi-socket scenario workloads (Figures 1/3/4/9). */
const std::vector<std::string> &multiSocketWorkloads();

/** Workload-migration scenario workloads (Figures 6/10). */
const std::vector<std::string> &migrationWorkloads();

/** The six Table 3 configs in figure order: F, F+M, F-A, F-A+M, I, I+M. */
const std::vector<MsConfig> &msMatrixConfigs();

/** The seven Table 2 placements in figure order: LP-LD ... RPI-RDI. */
const std::vector<std::string> &wmMatrixPlacements();

/**
 * Register the Figure 9 matrix: for every multi-socket workload the six
 * Table 3 configs ("<wl>/<config>"), preceded in THP mode by the 4 KB F
 * baseline job ("<wl>/F-4k-base") that Figure 9b normalizes to.
 */
void registerMsMatrix(driver::JobRegistry &registry, bool thp);

/** Print + record the matrix registered by registerMsMatrix. */
void emitMsMatrix(const std::vector<driver::JobResult> &results,
                  BenchReport &report, bool thp);

/** One migration job per (workload, placement), named "<wl>/<pl>". */
void registerWmMatrix(driver::JobRegistry &registry,
                      const std::vector<std::string> &workloads,
                      const std::vector<std::string> &placements);

/** What the Figure 10/11 trio (LP-LD, RPI-LD, +M) is normalized to. */
enum class WmBaseline
{
    None,     //!< Fig 10a: the trio's own LP-LD, 4 KB pages
    Base4k,   //!< Fig 10b: a separate 4 KB LP-LD run; trio uses THP
    CleanThp, //!< Fig 11: unfragmented TLP-LD; trio is fragmented THP
};

struct WmTrioSpec
{
    std::vector<std::string> workloads;
    WmBaseline baseline = WmBaseline::None;

    bool thp() const { return baseline != WmBaseline::None; }
};

/**
 * Register the Figure 10/11 shape: per workload an optional baseline
 * job followed by LP-LD / RPI-LD / RPI-LD+M (T-prefixed under THP).
 */
void registerWmTrio(driver::JobRegistry &registry, const WmTrioSpec &spec);

/** Print + record the trio registered by registerWmTrio. */
void emitWmTrio(const std::vector<driver::JobResult> &results,
                BenchReport &report, const WmTrioSpec &spec);

/// @}
/// @name Output helpers
/// @{

void printTitle(const std::string &title);
void printRow(const char *fmt, ...);

/// @}
/// @name JSON result reporting (see report.h for the schema)
/// @{

/** Record benchMachine()'s shape in @p report's config section. */
void describeMachine(BenchReport &report);

/** Record @p scenario's workload-independent knobs in the config. */
void describeScenario(BenchReport &report, const ScenarioConfig &scenario);

/**
 * Add @p out as a run: raw runtime plus walk / remote-PT fractions, and
 * runtime normalized to @p normBase when normBase > 0. Returns the run
 * so callers can attach tags and extra metrics.
 */
BenchRun &recordOutcome(BenchReport &report, const std::string &label,
                        const RunOutcome &out, double normBase = 0.0);

/** recordOutcome for a job result that must carry an outcome. */
BenchRun &recordOutcome(BenchReport &report, const std::string &label,
                        const driver::JobResult &result,
                        double normBase = 0.0);

/**
 * Run @p kernel's end-of-run vmcheck battery (if checking is enabled)
 * and copy the checker's counters into @p res's "check" section. A
 * no-op when the kernel has no checker, so every bench can call it
 * unconditionally before its kernel dies; violations fatal() unless
 * the checker was configured otherwise, so a report that carries a
 * "check" section with violations == 0 really did pass the battery.
 */
void recordCheckStats(os::Kernel &kernel, driver::JobResult &res);

/**
 * Add a placementJob result as a run with one remote_leaf_socket<N>
 * metric per observing socket. Returns the run for extra tags.
 */
BenchRun &recordPlacement(BenchReport &report, const std::string &label,
                          const driver::JobResult &result);

/// @}

} // namespace mitosim::bench

#endif // MITOSIM_BENCH_HARNESS_H
