/**
 * @file
 * Shared benchmark harness: the two experimental scenarios of the paper
 * (§3/§8) with their full configuration matrices, plus table printing.
 *
 * Scaling: footprints are 128 MiB against a 64 KiB/socket L3, preserving
 * the paper's leaf-PTE-working-set : L3 ratio (~4:1) that makes 4 KB-page
 * walks DRAM-bound, and the paper's DRAM latencies (280/580 cycles).
 * Absolute numbers differ from the paper's testbed; shapes are the
 * reproduction target (see EXPERIMENTS.md).
 */

#ifndef MITOSIM_BENCH_HARNESS_H
#define MITOSIM_BENCH_HARNESS_H

#include <cstdio>
#include <string>

#include "bench/report.h"
#include "src/analysis/pt_dump.h"
#include "src/core/mitosis.h"
#include "src/os/exec_context.h"
#include "src/os/kernel.h"
#include "src/sim/machine.h"
#include "src/workloads/workload.h"

namespace mitosim::bench
{

/** Machine used by all scenario benches. */
sim::MachineConfig benchMachine();

/** Common workload knobs. */
struct ScenarioConfig
{
    std::string workload;
    std::uint64_t footprint = 128ull << 20;
    bool thp = false;
    std::uint64_t warmupOps = 2000;
    std::uint64_t measureOps = 6000;
    std::uint64_t seed = 42;
    double fragmentation = 0.0; //!< pre-fragment all sockets (Fig 11)
};

/** What a run produced. */
struct RunOutcome
{
    Cycles runtime = 0;
    sim::PerfCounters totals;

    double walkFraction() const { return totals.walkFraction(); }
    double remotePtFraction() const { return totals.remotePtFraction(); }
};

/// @name Multi-socket scenario (Table 3 configs: F, F+M, F-A, F-A+M, I, I+M)
/// @{

enum class MsConfig
{
    F,   //!< first-touch data + PT
    FM,  //!< first-touch + Mitosis replication
    FA,  //!< first-touch + AutoNUMA data migration
    FAM, //!< first-touch + AutoNUMA + Mitosis
    I,   //!< interleaved data + PT
    IM,  //!< interleaved + Mitosis
};

const char *msConfigName(MsConfig config, bool thp);

/** Threads on every socket; returns aggregate counters + runtime. */
RunOutcome runMultiSocket(const ScenarioConfig &scenario, MsConfig config);

/**
 * Remote-leaf-PTE percentages per observing socket for a multi-socket
 * workload after setup with first-touch placement (Figures 1/4), and the
 * full snapshot (Figure 3).
 */
struct PlacementAnalysis
{
    std::vector<double> remoteLeafFraction; //!< per observing socket
    std::string figure3Dump;
};

PlacementAnalysis analyzePlacement(const ScenarioConfig &scenario,
                                   bool interleave = false);

/// @}
/// @name Workload migration scenario (Table 2 configs)
/// @{

struct WmPlacement
{
    const char *name = "LP-LD";
    bool remotePt = false;      //!< page-tables forced on socket B
    bool remoteData = false;    //!< data forced on socket B
    bool interference = false;  //!< STREAM-style hog on socket B
    bool mitosisMigrate = false; //!< +M: migrate PTs back to A
};

/** The seven Table 2 placements by name: LP-LD ... RPI-RDI. */
WmPlacement wmPlacement(const std::string &name);

/** Single thread on socket A; placement per @p wm. */
RunOutcome runWorkloadMigration(const ScenarioConfig &scenario,
                                const WmPlacement &wm);

/// @}
/// @name Output helpers
/// @{

void printTitle(const std::string &title);
void printRow(const char *fmt, ...);

/// @}
/// @name JSON result reporting (see report.h for the schema)
/// @{

/** Record benchMachine()'s shape in @p report's config section. */
void describeMachine(BenchReport &report);

/** Record @p scenario's workload-independent knobs in the config. */
void describeScenario(BenchReport &report, const ScenarioConfig &scenario);

/**
 * Add @p out as a run: raw runtime plus walk / remote-PT fractions, and
 * runtime normalized to @p normBase when normBase > 0. Returns the run
 * so callers can attach tags and extra metrics.
 */
BenchRun &recordOutcome(BenchReport &report, const std::string &label,
                        const RunOutcome &out, double normBase = 0.0);

/**
 * Add @p analysis as a run with one remote_leaf_socket<N> metric per
 * observing socket. Returns the run for extra tags.
 */
BenchRun &recordPlacement(BenchReport &report, const std::string &label,
                          const PlacementAnalysis &analysis);

/** Write BENCH_<name>.json and note the path on stdout. */
void writeReport(const BenchReport &report);

/// @}

} // namespace mitosim::bench

#endif // MITOSIM_BENCH_HARNESS_H
