/**
 * @file
 * Table 4: memory-footprint overhead of page-table replication for
 * compact address spaces of 1 MB .. 16 TB with 1..16 replicas, relative
 * to the single-page-table baseline. Purely analytical (the paper's own
 * model), cross-checked against a live simulated process at the small
 * end.
 */

#include "bench/harness.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main()
{
    setInformEnabled(false);
    printTitle("Table 4: memory overhead of replication "
               "(multiplier vs 1 replica)");
    BenchReport report("tab04_mem_overhead");

    struct Row
    {
        const char *label;
        std::uint64_t footprint;
    };
    const Row rows[] = {
        {"1 MB", 1ull << 20},
        {"1 GB", 1ull << 30},
        {"1 TB", 1ull << 40},
        {"16 TB", 16ull << 40},
    };
    const int replica_counts[] = {1, 2, 4, 8, 16};

    std::printf("%-8s %-10s", "Footprnt", "PT size");
    for (int r : replica_counts)
        std::printf(" %8d", r);
    std::printf("\n");

    for (const Row &row : rows) {
        std::uint64_t pt = analysis::pageTableBytes(row.footprint);
        std::printf("%-8s %7.2f MB", row.label,
                    static_cast<double>(pt) / (1024.0 * 1024.0));
        BenchRun &run = report.addRun(row.label);
        run.tag("footprint", row.label)
            .metric("footprint_bytes",
                    static_cast<double>(row.footprint))
            .metric("pt_bytes", static_cast<double>(pt));
        for (int r : replica_counts) {
            double overhead =
                analysis::replicationMemOverhead(row.footprint, r);
            std::printf(" %8.3f", overhead);
            run.metric("overhead_x" + std::to_string(r), overhead);
        }
        std::printf("\n");
    }
    std::printf("\n(paper row for 1 GB: 1.0 / 1.002 / 1.006 / 1.014 / "
                "1.029; 1 MB row: up to 1.231)\n");

    // Cross-check the analytical model against a real simulated process
    // with a compact 64 MiB address space and 4-way replication.
    printTitle("Cross-check: live simulated process, 64 MiB, 4 replicas");
    sim::Machine machine(benchMachine());
    core::MitosisBackend backend(machine.physmem());
    os::Kernel kernel(machine, backend);
    os::Process &proc = kernel.createProcess("check", 0);
    kernel.mmap(proc, 64ull << 20, os::MmapOptions{.populate = true});

    auto pt_pages = [&]() {
        std::uint64_t n = 0;
        for (SocketId s = 0; s < machine.numSockets(); ++s)
            for (int l = 1; l <= 4; ++l)
                n += machine.physmem().ptPagesAt(s, l);
        return n;
    };
    std::uint64_t before = pt_pages();
    backend.setReplicationMask(proc.roots(), proc.id(),
                               SocketMask::all(4));
    std::uint64_t after = pt_pages();
    double measured = 1.0 + static_cast<double>((after - before) *
                                                PageSize) /
                                static_cast<double>((64ull << 20) +
                                                    before * PageSize);
    std::printf("PT pages: %llu -> %llu; measured overhead %.4f "
                "(model: %.4f)\n",
                (unsigned long long)before, (unsigned long long)after,
                measured,
                analysis::replicationMemOverhead(64ull << 20, 4));
    report.addRun("live cross-check 64 MiB x4")
        .tag("kind", "live")
        .metric("pt_pages_before", static_cast<double>(before))
        .metric("pt_pages_after", static_cast<double>(after))
        .metric("measured_overhead", measured)
        .metric("model_overhead",
                analysis::replicationMemOverhead(64ull << 20, 4));
    kernel.destroyProcess(proc);
    writeReport(report);
    return 0;
}
