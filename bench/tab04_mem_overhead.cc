/**
 * @file
 * Table 4: memory-footprint overhead of page-table replication for
 * compact address spaces of 1 MB .. 16 TB with 1..16 replicas, relative
 * to the single-page-table baseline. Purely analytical (the paper's own
 * model), cross-checked against a live simulated process at the small
 * end.
 */

#include "bench/harness.h"
#include "src/driver/bench_main.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

constexpr int ReplicaCounts[] = {1, 2, 4, 8, 16};

struct Row
{
    const char *label;
    std::uint64_t footprint;
};

constexpr Row AnalyticalRows[] = {
    {"1 MB", 1ull << 20},
    {"1 GB", 1ull << 30},
    {"1 TB", 1ull << 40},
    {"16 TB", 16ull << 40},
};

/** The analytical model for one footprint row (cheap, still a job). */
driver::JobResult
analyticalJob(const Row &row)
{
    driver::JobResult result;
    result.value("footprint_bytes", static_cast<double>(row.footprint));
    result.value("pt_bytes", static_cast<double>(
                                 analysis::pageTableBytes(row.footprint)));
    for (int r : ReplicaCounts) {
        result.value("overhead_x" + std::to_string(r),
                     analysis::replicationMemOverhead(row.footprint, r));
    }
    return result;
}

/** Live cross-check: a simulated 64 MiB process, 4-way replicated. */
driver::JobResult
liveCrossCheckJob()
{
    sim::Machine machine(benchMachine());
    core::MitosisBackend backend(machine.physmem());
    os::Kernel kernel(machine, backend);
    os::Process &proc = kernel.createProcess("check", 0);
    kernel.mmap(proc, 64ull << 20, os::MmapOptions{.populate = true});

    auto pt_pages = [&]() {
        std::uint64_t n = 0;
        for (SocketId s = 0; s < machine.numSockets(); ++s)
            for (int l = 1; l <= 4; ++l)
                n += machine.physmem().ptPagesAt(s, l);
        return n;
    };
    std::uint64_t before = pt_pages();
    backend.setReplicationMask(proc.roots(), proc.id(),
                               SocketMask::all(4));
    std::uint64_t after = pt_pages();
    double measured = 1.0 + static_cast<double>((after - before) *
                                                PageSize) /
                                static_cast<double>((64ull << 20) +
                                                    before * PageSize);
    driver::JobResult result;
    result.value("pt_pages_before", static_cast<double>(before));
    result.value("pt_pages_after", static_cast<double>(after));
    result.value("measured_overhead", measured);
    result.value("model_overhead",
                 analysis::replicationMemOverhead(64ull << 20, 4));
    kernel.finalizeProcess(proc);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "tab04_mem_overhead";
    spec.title = "Table 4: memory overhead of replication "
                 "(multiplier vs 1 replica)";
    spec.registerJobs = [](driver::JobRegistry &registry) {
        for (const Row &row : AnalyticalRows) {
            registry.add(std::string("model/") + row.label,
                         [row] { return analyticalJob(row); });
        }
        registry.add("live/64MiB-x4", liveCrossCheckJob);
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        std::printf("%-8s %-10s", "Footprnt", "PT size");
        for (int r : ReplicaCounts)
            std::printf(" %8d", r);
        std::printf("\n");

        std::size_t i = 0;
        for (const Row &row : AnalyticalRows) {
            const driver::JobResult &res = results[i++];
            std::printf("%-8s %7.2f MB", row.label,
                        res.valueOf("pt_bytes") / (1024.0 * 1024.0));
            BenchRun &run = report.addRun(row.label);
            run.tag("footprint", row.label);
            for (const auto &[key, value] : res.values)
                run.metric(key, value);
            for (int r : ReplicaCounts)
                std::printf(" %8.3f",
                            res.valueOf("overhead_x" +
                                        std::to_string(r)));
            std::printf("\n");
        }
        std::printf("\n(paper row for 1 GB: 1.0 / 1.002 / 1.006 / "
                    "1.014 / 1.029; 1 MB row: up to 1.231)\n");

        printTitle(
            "Cross-check: live simulated process, 64 MiB, 4 replicas");
        const driver::JobResult &live = results[i++];
        std::printf("PT pages: %.0f -> %.0f; measured overhead %.4f "
                    "(model: %.4f)\n",
                    live.valueOf("pt_pages_before"),
                    live.valueOf("pt_pages_after"),
                    live.valueOf("measured_overhead"),
                    live.valueOf("model_overhead"));
        BenchRun &run = report.addRun("live cross-check 64 MiB x4");
        run.tag("kind", "live");
        for (const auto &[key, value] : live.values)
            run.metric(key, value);
    };
    return driver::benchMain(argc, argv, spec);
}
