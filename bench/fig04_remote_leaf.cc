/**
 * @file
 * Figure 4: percentage of remote leaf PTEs as observed from each socket
 * for the six multi-socket workloads (first-touch placement).
 *
 * Expected shape (paper): most sockets observe a large remote share;
 * workloads whose memory is initialized by a single thread (Graph500,
 * XSBench) are skewed — the initializing socket sees few remote leaf
 * PTEs while every other socket sees ~100%.
 */

#include "bench/harness.h"
#include "src/driver/bench_main.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

const std::vector<std::string> &
interleaveReferenceWorkloads()
{
    static const std::vector<std::string> list = {"canneal", "btree"};
    return list;
}

void
printFractionRow(const std::string &name,
                 const driver::JobResult &result)
{
    std::printf("%-12s", name.c_str());
    for (double f : placementFractions(result))
        std::printf("  %6.1f%%", 100.0 * f);
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "fig04_remote_leaf";
    spec.title = "Figure 4: % remote leaf PTEs per observing socket "
                 "(first-touch)";
    spec.describe = [](BenchReport &report) { describeMachine(report); };
    spec.registerJobs = [](driver::JobRegistry &registry) {
        for (const std::string &name : multiSocketWorkloads()) {
            ScenarioConfig cfg;
            cfg.workload = name;
            registry.add(name + "/first-touch",
                         [cfg] { return placementJob(cfg); });
        }
        for (const std::string &name : interleaveReferenceWorkloads()) {
            ScenarioConfig cfg;
            cfg.workload = name;
            registry.add(name + "/interleave", [cfg] {
                return placementJob(cfg, /*interleave=*/true);
            });
        }
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        auto record = [&report](const std::string &workload,
                                const char *placement,
                                const driver::JobResult &result) {
            recordPlacement(report, workload + " " + placement, result)
                .tag("workload", workload)
                .tag("placement", placement);
        };

        std::printf("%-12s", "workload");
        for (int s = 0; s < 4; ++s)
            std::printf("  socket%-2d", s);
        std::printf("\n");

        std::size_t i = 0;
        for (const std::string &name : multiSocketWorkloads()) {
            const driver::JobResult &res = results[i++];
            record(name, "first-touch", res);
            printFractionRow(name, res);
        }

        std::printf("\nInterleaved placement for reference ((N-1)/N = "
                    "75%% expected on every socket):\n");
        for (const std::string &name : interleaveReferenceWorkloads()) {
            const driver::JobResult &res = results[i++];
            record(name, "interleave", res);
            printFractionRow(name, res);
        }
    };
    return driver::benchMain(argc, argv, spec);
}
