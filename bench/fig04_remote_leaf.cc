/**
 * @file
 * Figure 4: percentage of remote leaf PTEs as observed from each socket
 * for the six multi-socket workloads (first-touch placement).
 *
 * Expected shape (paper): most sockets observe a large remote share;
 * workloads whose memory is initialized by a single thread (Graph500,
 * XSBench) are skewed — the initializing socket sees few remote leaf
 * PTEs while every other socket sees ~100%.
 */

#include "bench/harness.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main()
{
    setInformEnabled(false);
    printTitle("Figure 4: % remote leaf PTEs per observing socket "
               "(first-touch)");
    BenchReport report("fig04_remote_leaf");
    describeMachine(report);

    const char *workloads[] = {"canneal",  "memcached", "xsbench",
                               "graph500", "hashjoin",  "btree"};

    auto record = [&report](const char *workload, const char *placement,
                            const PlacementAnalysis &analysis) {
        recordPlacement(report,
                        std::string(workload) + " " + placement,
                        analysis)
            .tag("workload", workload)
            .tag("placement", placement);
    };

    std::printf("%-12s", "workload");
    for (int s = 0; s < 4; ++s)
        std::printf("  socket%-2d", s);
    std::printf("\n");

    for (const char *name : workloads) {
        ScenarioConfig cfg;
        cfg.workload = name;
        auto placement = analyzePlacement(cfg);
        record(name, "first-touch", placement);
        std::printf("%-12s", name);
        for (double f : placement.remoteLeafFraction)
            std::printf("  %6.1f%%", 100.0 * f);
        std::printf("\n");
    }

    std::printf("\nInterleaved placement for reference ((N-1)/N = 75%% "
                "expected on every socket):\n");
    for (const char *name : {"canneal", "btree"}) {
        ScenarioConfig cfg;
        cfg.workload = name;
        auto placement = analyzePlacement(cfg, /*interleave=*/true);
        record(name, "interleave", placement);
        std::printf("%-12s", name);
        for (double f : placement.remoteLeafFraction)
            std::printf("  %6.1f%%", 100.0 * f);
        std::printf("\n");
    }
    writeReport(report);
    return 0;
}
