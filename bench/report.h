/**
 * @file
 * Machine-readable benchmark results. Every fig/tab/abl bench main
 * builds a BenchReport alongside its stdout table and writes
 * BENCH_<name>.json — the artifact perf-trajectory tooling diffs across
 * commits. The schema is deliberately small and stable:
 *
 *   {
 *     "schema_version": 1,
 *     "bench":   "<name>",
 *     "config":  { "<key>": <string|number>, ... },
 *     "runs":    [ { "label":   "<row label>",
 *                    "tags":    { "<key>": "<string>", ... },
 *                    "metrics": { "<key>": <finite number>, ... } }, ... ],
 *     "speedups": { "<label>": <finite number>, ... },
 *     "wall_ms":  { "<job>": { "total": <number>, "populate": <number>,
 *                              "run": <number>, "report": <number> }
 *                           | <number>, ..., "total": <number> },
 *     "scheduler": { "<job>": { "<stat>": <number>, ... }, ... },
 *     "thp":       { "<job>": { "<stat>": <number>, ... }, ... },
 *     "metrics":   { "<job>": { "<metric>": <number>, ... }, ... }
 *   }
 *
 * Several sections are excluded from metric comparisons. "wall_ms" is
 * host-side telemetry (per-job and total wall-clock, recorded by the
 * driver): simulated results must be bit-identical across commits
 * unless the model changed, while wall_ms is expected to drift with
 * host load and to improve with host-side optimizations. "scheduler"
 * (present only for benches that run the time-sharing scheduler)
 * carries per-job scheduling activity — context switches, preemptions,
 * migrations — which is deterministic but diagnostic: it explains the
 * metrics without being one. "thp" (present only when the THP
 * lifecycle daemons ran) carries per-job collapse/split/compaction and
 * failed-allocation counters under the same rule. "check" (vmcheck)
 * and "metrics" (the src/obs registry flatten: named counters, gauge
 * snapshots, histogram digests, walk-cycle attribution) are likewise
 * diagnostic surfaces, free to grow richer between PRs. Tools diffing
 * reports must ignore all of them; they exist so wall-clock trends,
 * scheduling, huge-page lifecycle and observability signals stay
 * visible PR-to-PR via the CI artifacts.
 *
 * A minimal JSON value/writer/parser keeps the repo dependency-free; the
 * parser exists so tests and tools can round-trip what the writer emits.
 */

#ifndef MITOSIM_BENCH_REPORT_H
#define MITOSIM_BENCH_REPORT_H

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mitosim::bench
{

/// @name Minimal JSON model
/// @{

/** A JSON value; objects preserve insertion order. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;
    static JsonValue null() { return JsonValue(); }
    static JsonValue boolean(bool b);
    /** Non-finite values degrade to null: JSON has no NaN/Inf. */
    static JsonValue number(double v);
    static JsonValue string(std::string s);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return number_; }
    const std::string &asString() const { return string_; }

    /** Array/object element count (0 for scalars). */
    std::size_t size() const;
    /** Array element (must be an array; index in range). */
    const JsonValue &at(std::size_t index) const;
    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, JsonValue>> &members() const
    {
        return object_;
    }

    /** Append to an array (converts a default-constructed value). */
    void append(JsonValue v);
    /** Set an object member, replacing an existing key. */
    void set(const std::string &key, JsonValue v);

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string str(int indent = 0) const;

    /**
     * Deep structural equality (member order is significant — the
     * writer preserves insertion order). Lets tests compare a parallel
     * run's report against a serial run's without string-diffing.
     */
    bool operator==(const JsonValue &other) const = default;

  private:
    void write(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/** Strict parse of one JSON document; nullopt on any syntax error. */
std::optional<JsonValue> parseJson(const std::string &text);

/// @}
/// @name Benchmark report
/// @{

/** One measured configuration: a row of the printed table. */
class BenchRun
{
  public:
    explicit BenchRun(std::string label) : label_(std::move(label)) {}

    /** Attach a string dimension (workload, config name, page size). */
    BenchRun &tag(const std::string &key, std::string value);
    /** Attach a finite numeric result (norm_runtime, walk_fraction...). */
    BenchRun &metric(const std::string &key, double value);

    JsonValue toJson() const;

  private:
    std::string label_;
    std::vector<std::pair<std::string, std::string>> tags_;
    std::vector<std::pair<std::string, double>> metrics_;
};

/** Accumulates a bench binary's results and writes BENCH_<name>.json. */
class BenchReport
{
  public:
    explicit BenchReport(std::string name);

    const std::string &name() const { return name_; }

    /** Config-matrix entries (machine shape, footprint, op counts). */
    void config(const std::string &key, std::string value);
    void config(const std::string &key, double value);

    /** Add a run; the reference stays valid until the next addRun. */
    BenchRun &addRun(std::string label);

    /** Record a headline speedup (e.g. "canneal F/F+M"). */
    void speedup(const std::string &label, double value);

    /**
     * Record host wall-clock telemetry for @p label (a job name, or
     * "total"). Kept outside "metrics" — excluded from comparisons.
     */
    void wallMs(const std::string &label, double ms);

    /**
     * Record a job's wall-clock with its phase breakdown: the entry
     * becomes {"total", "populate", "run", "report"} where "report" is
     * the remainder (teardown + end-of-run checks + analysis). Jobs
     * that never stamped phases (populate == run == 0) fall back to
     * the scalar form. The whole section stays excluded from metric
     * comparisons either way.
     *
     * When @p sim_accesses is non-zero (a timed run), the entry also
     * carries "sim_accesses" (the job's simulated memory accesses —
     * deterministic, but host throughput context rather than a result)
     * and "host_ops_per_sec" (sim_accesses over the run phase, or over
     * the total when the job never stamped phases): the simulator's
     * host throughput for this job, the number the hot-path work in
     * EXPERIMENTS.md optimizes.
     */
    void wallMsPhases(const std::string &label, double total,
                      double populate, double run,
                      std::uint64_t sim_accesses = 0);

    /**
     * Extend job @p label's wall_ms entry with one host-side hot-path
     * telemetry counter (fused_runs, fused_ops, arena slab activity,
     * ...). Host state, not simulated state: it lands inside the
     * "wall_ms" section next to host_ops_per_sec and is excluded from
     * metric comparisons with the rest of that section. A scalar
     * entry written earlier by wallMs() is promoted to the object form
     * ({"total": <scalar>, ...}) so both shapes compose.
     */
    void wallMsHostStat(const std::string &label, const std::string &key,
                        double value);

    /**
     * Record one scheduler activity counter for job @p label. The
     * "scheduler" section only appears in the JSON when at least one
     * stat was recorded, and — like "wall_ms" — is excluded from
     * metric comparisons.
     */
    void schedStat(const std::string &label, const std::string &key,
                   double value);

    /**
     * Record one THP lifecycle counter (collapses, splits, compaction
     * activity, failed allocations) for job @p label. The "thp"
     * section only appears when the THP daemons actually ran and —
     * like "scheduler" — is diagnostic, excluded from metric
     * comparisons.
     */
    void thpStat(const std::string &label, const std::string &key,
                 double value);

    /**
     * Record one vmcheck invariant-checker counter (checkpoints,
     * checks run, violations, ...) for job @p label. The "check"
     * section only appears when a job's kernel ran with checking
     * enabled and — like "scheduler" and "thp" — is diagnostic,
     * excluded from metric comparisons. CI asserts violations == 0
     * on every entry of this section.
     */
    void checkStat(const std::string &label, const std::string &key,
                   double value);

    /**
     * Record one observability metric (a flattened src/obs registry
     * entry or a walk-cycle attribution bucket) for job @p label. The
     * "metrics" section only appears when a job recorded any and —
     * like "scheduler"/"thp"/"check" — is diagnostic, excluded from
     * metric comparisons.
     */
    void metricStat(const std::string &label, const std::string &key,
                    double value);

    JsonValue toJson() const;
    std::string str() const { return toJson().str(2); }

    /**
     * Output file: $MITOSIM_BENCH_DIR/BENCH_<name>.json, or the current
     * directory when the variable is unset.
     */
    std::string outputPath() const;

    /** Write outputPath(); returns false (and keeps going) on I/O error. */
    bool write() const;

  private:
    std::string name_;
    JsonValue config_ = JsonValue::object();
    std::vector<std::unique_ptr<BenchRun>> runs_;
    JsonValue speedups_ = JsonValue::object();
    JsonValue wallMs_ = JsonValue::object();
    JsonValue schedStats_ = JsonValue::object();
    JsonValue thpStats_ = JsonValue::object();
    JsonValue checkStats_ = JsonValue::object();
    JsonValue metricsStats_ = JsonValue::object();
};

/// @}

} // namespace mitosim::bench

#endif // MITOSIM_BENCH_REPORT_H
