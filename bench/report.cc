#include "report.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mitosim::bench
{

/// @name JsonValue
/// @{

JsonValue
JsonValue::boolean(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::number(double value)
{
    if (!std::isfinite(value))
        return null();
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = value;
    return v;
}

JsonValue
JsonValue::string(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    return 0;
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    return array_.at(index);
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object_)
        if (k == key)
            return &v;
    return nullptr;
}

void
JsonValue::append(JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    array_.push_back(std::move(v));
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    for (auto &[k, existing] : object_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    object_.emplace_back(key, std::move(v));
}

namespace
{

void
escapeTo(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

/** Shortest decimal form that parses back to exactly @p value. */
void
numberTo(std::string &out, double value)
{
    char buf[40];
    for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    out += buf;
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
}

} // namespace

void
JsonValue::write(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        numberTo(out, number_);
        break;
      case Kind::String:
        escapeTo(out, string_);
        break;
      case Kind::Array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            newlineIndent(out, indent, depth + 1);
            array_[i].write(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += ']';
        break;
      case Kind::Object:
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            newlineIndent(out, indent, depth + 1);
            escapeTo(out, object_[i].first);
            out += ": ";
            object_[i].second.write(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::str(int indent) const
{
    std::string out;
    write(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

/// @}
/// @name Parser (recursive descent, strict)
/// @{

namespace
{

struct Parser
{
    const char *p;
    const char *end;
    int depth = 0;

    static constexpr int MaxDepth = 64;

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    consume(char c)
    {
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, std::size_t n)
    {
        if (static_cast<std::size_t>(end - p) < n ||
            std::memcmp(p, word, n) != 0)
            return false;
        p += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (p < end && *p != '"') {
            unsigned char c = static_cast<unsigned char>(*p);
            if (c < 0x20)
                return false; // raw control character
            if (c == '\\') {
                ++p;
                if (p >= end)
                    return false;
                switch (*p) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (end - p < 5)
                        return false;
                    unsigned code = 0;
                    for (int i = 1; i <= 4; ++i) {
                        char h = p[i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return false;
                    }
                    p += 4;
                    // UTF-8 encode the BMP code point (no surrogate
                    // pairing: the writer never emits them).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    return false;
                }
                ++p;
            } else {
                out += static_cast<char>(c);
                ++p;
            }
        }
        return consume('"');
    }

    bool
    parseValue(JsonValue &out)
    {
        if (++depth > MaxDepth)
            return false;
        skipWs();
        if (p >= end)
            return false;
        bool ok = false;
        switch (*p) {
          case 'n':
            ok = literal("null", 4);
            out = JsonValue::null();
            break;
          case 't':
            ok = literal("true", 4);
            out = JsonValue::boolean(true);
            break;
          case 'f':
            ok = literal("false", 5);
            out = JsonValue::boolean(false);
            break;
          case '"': {
            std::string s;
            ok = parseString(s);
            out = JsonValue::string(std::move(s));
            break;
          }
          case '[': {
            ++p;
            out = JsonValue::array();
            skipWs();
            if (consume(']')) {
                ok = true;
                break;
            }
            for (;;) {
                JsonValue elem;
                if (!parseValue(elem))
                    return false;
                out.append(std::move(elem));
                skipWs();
                if (consume(']')) {
                    ok = true;
                    break;
                }
                if (!consume(','))
                    return false;
            }
            break;
          }
          case '{': {
            ++p;
            out = JsonValue::object();
            skipWs();
            if (consume('}')) {
                ok = true;
                break;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return false;
                JsonValue val;
                if (!parseValue(val))
                    return false;
                out.set(key, std::move(val));
                skipWs();
                if (consume('}')) {
                    ok = true;
                    break;
                }
                if (!consume(','))
                    return false;
            }
            break;
          }
          default: {
            // Walk the RFC 8259 number grammar by hand: strtod alone
            // accepts forms JSON forbids (hex, inf/nan, "+1", "01",
            // ".5", "5.").
            const char *q = p;
            if (q < end && *q == '-')
                ++q;
            if (q >= end || !std::isdigit(static_cast<unsigned char>(*q)))
                return false;
            if (*q == '0')
                ++q; // a leading zero must stand alone
            else
                while (q < end &&
                       std::isdigit(static_cast<unsigned char>(*q)))
                    ++q;
            if (q < end && *q == '.') {
                ++q;
                if (q >= end ||
                    !std::isdigit(static_cast<unsigned char>(*q)))
                    return false;
                while (q < end &&
                       std::isdigit(static_cast<unsigned char>(*q)))
                    ++q;
            }
            if (q < end && (*q == 'e' || *q == 'E')) {
                ++q;
                if (q < end && (*q == '+' || *q == '-'))
                    ++q;
                if (q >= end ||
                    !std::isdigit(static_cast<unsigned char>(*q)))
                    return false;
                while (q < end &&
                       std::isdigit(static_cast<unsigned char>(*q)))
                    ++q;
            }
            char *num_end = nullptr;
            double v = std::strtod(p, &num_end);
            if (num_end != q || !std::isfinite(v))
                return false;
            p = num_end;
            out = JsonValue::number(v);
            ok = true;
            break;
          }
        }
        --depth;
        return ok;
    }
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text)
{
    Parser parser{text.data(), text.data() + text.size()};
    JsonValue out;
    if (!parser.parseValue(out))
        return std::nullopt;
    parser.skipWs();
    if (parser.p != parser.end)
        return std::nullopt; // trailing garbage
    return out;
}

/// @}
/// @name BenchRun / BenchReport
/// @{

BenchRun &
BenchRun::tag(const std::string &key, std::string value)
{
    tags_.emplace_back(key, std::move(value));
    return *this;
}

BenchRun &
BenchRun::metric(const std::string &key, double value)
{
    metrics_.emplace_back(key, value);
    return *this;
}

JsonValue
BenchRun::toJson() const
{
    JsonValue run = JsonValue::object();
    run.set("label", JsonValue::string(label_));
    JsonValue tags = JsonValue::object();
    for (const auto &[k, v] : tags_)
        tags.set(k, JsonValue::string(v));
    run.set("tags", std::move(tags));
    JsonValue metrics = JsonValue::object();
    for (const auto &[k, v] : metrics_)
        metrics.set(k, JsonValue::number(v));
    run.set("metrics", std::move(metrics));
    return run;
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void
BenchReport::config(const std::string &key, std::string value)
{
    config_.set(key, JsonValue::string(std::move(value)));
}

void
BenchReport::config(const std::string &key, double value)
{
    config_.set(key, JsonValue::number(value));
}

BenchRun &
BenchReport::addRun(std::string label)
{
    runs_.push_back(std::make_unique<BenchRun>(std::move(label)));
    return *runs_.back();
}

void
BenchReport::speedup(const std::string &label, double value)
{
    speedups_.set(label, JsonValue::number(value));
}

void
BenchReport::wallMs(const std::string &label, double ms)
{
    wallMs_.set(label, JsonValue::number(ms));
}

void
BenchReport::wallMsPhases(const std::string &label, double total,
                          double populate, double run,
                          std::uint64_t sim_accesses)
{
    if (populate <= 0.0 && run <= 0.0 && sim_accesses == 0) {
        wallMs(label, total);
        return;
    }
    double report = total - populate - run;
    JsonValue entry = JsonValue::object();
    entry.set("total", JsonValue::number(total));
    entry.set("populate", JsonValue::number(populate));
    entry.set("run", JsonValue::number(run));
    entry.set("report", JsonValue::number(report > 0.0 ? report : 0.0));
    if (sim_accesses) {
        entry.set("sim_accesses",
                  JsonValue::number(static_cast<double>(sim_accesses)));
        double denom_ms = run > 0.0 ? run : total;
        if (denom_ms > 0.0)
            entry.set("host_ops_per_sec",
                      JsonValue::number(static_cast<double>(sim_accesses) /
                                        (denom_ms / 1000.0)));
    }
    wallMs_.set(label, std::move(entry));
}

void
BenchReport::wallMsHostStat(const std::string &label,
                            const std::string &key, double value)
{
    JsonValue entry = JsonValue::object();
    if (const JsonValue *existing = wallMs_.find(label)) {
        if (existing->isObject())
            entry = *existing;
        else if (existing->isNumber())
            entry.set("total", *existing);
    }
    entry.set(key, JsonValue::number(value));
    wallMs_.set(label, std::move(entry));
}

void
BenchReport::schedStat(const std::string &label, const std::string &key,
                       double value)
{
    JsonValue job = JsonValue::object();
    if (const JsonValue *existing = schedStats_.find(label))
        job = *existing;
    job.set(key, JsonValue::number(value));
    schedStats_.set(label, std::move(job));
}

void
BenchReport::thpStat(const std::string &label, const std::string &key,
                     double value)
{
    JsonValue job = JsonValue::object();
    if (const JsonValue *existing = thpStats_.find(label))
        job = *existing;
    job.set(key, JsonValue::number(value));
    thpStats_.set(label, std::move(job));
}

void
BenchReport::checkStat(const std::string &label, const std::string &key,
                       double value)
{
    JsonValue job = JsonValue::object();
    if (const JsonValue *existing = checkStats_.find(label))
        job = *existing;
    job.set(key, JsonValue::number(value));
    checkStats_.set(label, std::move(job));
}

void
BenchReport::metricStat(const std::string &label, const std::string &key,
                        double value)
{
    JsonValue job = JsonValue::object();
    if (const JsonValue *existing = metricsStats_.find(label))
        job = *existing;
    job.set(key, JsonValue::number(value));
    metricsStats_.set(label, std::move(job));
}

JsonValue
BenchReport::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("schema_version", JsonValue::number(1));
    doc.set("bench", JsonValue::string(name_));
    doc.set("config", config_);
    JsonValue runs = JsonValue::array();
    for (const auto &run : runs_)
        runs.append(run->toJson());
    doc.set("runs", std::move(runs));
    doc.set("speedups", speedups_);
    if (wallMs_.size())
        doc.set("wall_ms", wallMs_);
    if (schedStats_.size())
        doc.set("scheduler", schedStats_);
    if (thpStats_.size())
        doc.set("thp", thpStats_);
    if (checkStats_.size())
        doc.set("check", checkStats_);
    if (metricsStats_.size())
        doc.set("metrics", metricsStats_);
    return doc;
}

std::string
BenchReport::outputPath() const
{
    std::string path;
    if (const char *dir = std::getenv("MITOSIM_BENCH_DIR");
        dir && *dir) {
        path = dir;
        if (path.back() != '/')
            path += '/';
    }
    return path + "BENCH_" + name_ + ".json";
}

bool
BenchReport::write() const
{
    const std::string path = outputPath();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "BenchReport: cannot open %s\n",
                     path.c_str());
        return false;
    }
    const std::string text = str();
    bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        std::fprintf(stderr, "BenchReport: short write to %s\n",
                     path.c_str());
    return ok;
}

/// @}

} // namespace mitosim::bench
