/**
 * @file
 * Extension: multi-tenant consolidation under the time-sharing
 * scheduler (the §3.2/§5.3 scenario MitoSim's pinned kernel could not
 * express).
 *
 * Eight tenant processes — memcached, redis and GUPS instances — are
 * "homed" round-robin across all four sockets: their data AND their
 * page-tables are bound there (Fixed policies, the paper's §3.2
 * methodology for a process whose state was allocated before the
 * scheduler moved it). The consolidation scheduler then packs every
 * tenant's worker thread onto the cores of sockets 0-1 only — half the
 * machine, 2x oversubscribed — so tenants time-share cores and half of
 * them run remote from their memory.
 *
 * The 2x2 matrix separates the two mechanisms:
 *
 *  - {PCID off, PCID on}: with PCID off every context switch flushes
 *    TLB+PWC, so each timeslice starts with a cold refill; PCID keeps
 *    each tenant's tagged entries alive across its neighbours' slices.
 *    Measured by the post-switch window counters (misses and walk
 *    cycles in the first 256 accesses after each CR3 load).
 *
 *  - {native, mitosis}: native walks reach back to the home socket's
 *    page-tables forever; Mitosis (schedule-driven, §5.3) replicates a
 *    tenant's page-table onto a socket at its first timeslice there,
 *    making all later walks local. Data stays remote either way —
 *    exactly the paper's point that page-table locality is a separate
 *    axis from data locality.
 *
 * Expected shape: PCID-on cuts post-switch TLB/PWC miss cycles vs
 * PCID-off within a backend; mitosis cuts (post-switch and total) walk
 * cycles vs native within a PCID mode; the combination is best.
 */

#include "bench/harness.h"

#include <memory>

#include "src/base/logging.h"
#include "src/driver/bench_main.h"
#include "src/pvops/native_backend.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

struct TenantSpec
{
    const char *workload;
    std::uint64_t footprint;
};

/** Hot-set sizes chosen against the 1024-entry STLB: the key-value
 *  tenants' skewed hot sets fit (PCID retention pays), GUPS thrashes
 *  (its misses are all refills); leaf-PTE sets overflow the 64 KiB L3
 *  so walks touch DRAM and PT locality matters. */
constexpr TenantSpec Tenants[] = {
    {"memcached", 24ull << 20}, {"redis", 24ull << 20},
    {"gups", 32ull << 20},      {"memcached", 24ull << 20},
    {"redis", 24ull << 20},     {"gups", 32ull << 20},
    {"memcached", 24ull << 20}, {"redis", 24ull << 20},
};
constexpr int NumTenants =
    static_cast<int>(sizeof(Tenants) / sizeof(Tenants[0]));

/** Tenant threads are packed onto sockets [0, ConsolidatedSockets). */
constexpr int ConsolidatedSockets = 2;

constexpr std::uint64_t WarmupRounds = 6;
constexpr std::uint64_t MeasureRounds = 24;
constexpr std::uint64_t StepsPerSlice = 50;

struct Config
{
    const char *name;
    const char *slug;
    bool mitosis;
    bool pcid;
};

constexpr Config Configs[] = {
    {"native/pcid-off", "native-nopcid", false, false},
    {"native/pcid-on", "native-pcid", false, true},
    {"mitosis/pcid-off", "mitosis-nopcid", true, false},
    {"mitosis/pcid-on", "mitosis-pcid", true, true},
};

struct Tenant
{
    os::Process *proc = nullptr;
    std::unique_ptr<os::ExecContext> ctx;
    std::unique_ptr<workloads::Workload> work;
};

driver::JobResult
run(bool use_mitosis, bool pcid)
{
    sim::Machine machine(benchMachine());

    std::unique_ptr<pvops::PvOps> backend;
    core::MitosisBackend *mitosis = nullptr;
    if (use_mitosis) {
        core::MitosisConfig mcfg;
        mcfg.policy = core::SystemPolicy::AllProcesses;
        mcfg.scheduleDriven = true; // §5.3: replicate at first timeslice
        auto owned = std::make_unique<core::MitosisBackend>(
            machine.physmem(), mcfg);
        mitosis = owned.get();
        mitosis->attachObs(&machine.metrics(), &machine.tracer());
        backend = std::move(owned);
    } else {
        backend =
            std::make_unique<pvops::NativeBackend>(machine.physmem());
    }

    os::KernelConfig kcfg;
    kcfg.sched.timeShared = true;
    kcfg.sched.pcid = pcid;
    os::Kernel kernel(machine, *backend, kcfg);

    std::vector<Tenant> tenants(NumTenants);
    for (int i = 0; i < NumTenants; ++i) {
        SocketId home = i % machine.numSockets();
        SocketId run_socket = i % ConsolidatedSockets;
        Tenant &t = tenants[i];
        t.proc = &kernel.createProcess(
            format("tenant%d-%s", i, Tenants[i].workload), home);
        // Tenant state is bound to its home NUMA node (allocated there
        // before consolidation); only the compute moves.
        kernel.setDataPolicy(*t.proc, os::DataPolicy::Fixed, home);
        kernel.setPtPlacement(*t.proc, pt::PtPlacement::Fixed, home);
        t.ctx = std::make_unique<os::ExecContext>(kernel, *t.proc);
        t.ctx->addThread(run_socket);

        workloads::WorkloadParams params;
        params.footprint = Tenants[i].footprint;
        params.seed = 42 + static_cast<std::uint64_t>(i);
        t.work = workloads::makeWorkload(Tenants[i].workload, params);
        t.work->setup(*t.ctx);
    }

    // Round-robin slices: each tenant runs a burst of operations, then
    // the next tenant's dispatch context-switches the shared core.
    auto rounds = [&](std::uint64_t n) {
        for (std::uint64_t r = 0; r < n; ++r) {
            for (auto &t : tenants) {
                for (std::uint64_t s = 0; s < StepsPerSlice; ++s)
                    t.work->step(*t.ctx, 0);
            }
        }
    };
    rounds(WarmupRounds);
    for (auto &t : tenants)
        t.ctx->resetCounters();
    rounds(MeasureRounds);

    driver::RunOutcome out;
    for (auto &t : tenants) {
        sim::PerfCounters pc = t.ctx->totals();
        out.totals.add(pc);
        out.runtime = std::max(out.runtime, pc.cycles);
    }

    driver::JobResult res = driver::JobResult::of(out);
    res.value("post_switch_tlb_misses",
              static_cast<double>(out.totals.postSwitchTlbMisses));
    res.value("post_switch_walk_cycles",
              static_cast<double>(out.totals.postSwitchWalkCycles));
    res.value("walk_cycles",
              static_cast<double>(out.totals.walkCycles));
    res.value("context_switches",
              static_cast<double>(out.totals.contextSwitches));
    if (mitosis) {
        res.value("schedule_replications",
                  static_cast<double>(
                      mitosis->stats().scheduleReplications));
    }

    // Per-tenant walk-cycle attribution: eight pid-labelled bucket
    // sets, the per-job table EXPERIMENTS.md's consolidation analysis
    // reads (which tenants walk remote, at which level).
    for (auto &t : tenants)
        recordWalkAttribution(res, t.proc->id(), t.ctx->totals());

    for (auto &t : tenants)
        kernel.finalizeProcess(*t.proc);
    // Under MITOSIM_CHECK=1 CI runs this bench and asserts that the
    // report's "check" section shows zero violations per job. Host
    // stats stay off: this bench drives step() directly, outside the
    // harness populate/replay path the host counters describe.
    recordJobStats(kernel, res, {.sched = true, .host = false});
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "ext_consolidation";
    spec.title = "Extension: multi-tenant consolidation — time-shared "
                 "cores, {PCID off/on} x {native, mitosis}";
    spec.describe = [](BenchReport &report) {
        describeMachine(report);
        report.config("tenants", NumTenants);
        report.config("consolidated_sockets", ConsolidatedSockets);
        report.config("steps_per_slice",
                      static_cast<double>(StepsPerSlice));
        report.config("measure_rounds",
                      static_cast<double>(MeasureRounds));
    };
    spec.registerJobs = [](driver::JobRegistry &registry) {
        for (const Config &c : Configs)
            registry.add(c.slug, [c] { return run(c.mitosis, c.pcid); });
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        std::printf("%-18s %12s %14s %14s %12s\n", "config",
                    "runtime", "ps_miss", "ps_walk_cyc", "walk_frac");
        double base = 0;
        std::size_t i = 0;
        for (const Config &c : Configs) {
            const driver::JobResult &res = results[i++];
            if (base == 0)
                base = res.runtime();
            std::printf("%-18s %12.3f %14.0f %14.0f %11.1f%%\n", c.name,
                        res.runtime() / base,
                        res.valueOf("post_switch_tlb_misses"),
                        res.valueOf("post_switch_walk_cycles"),
                        100.0 * res.outcome->walkFraction());
            BenchRun &run_rec = recordOutcome(report, c.name, res, base);
            run_rec.tag("backend", c.mitosis ? "mitosis" : "native")
                .tag("pcid", c.pcid ? "on" : "off")
                .metric("post_switch_tlb_misses",
                        res.valueOf("post_switch_tlb_misses"))
                .metric("post_switch_walk_cycles",
                        res.valueOf("post_switch_walk_cycles"))
                .metric("walk_cycles", res.valueOf("walk_cycles"))
                .metric("context_switches",
                        res.valueOf("context_switches"));
        }

        // Headline ratios: the two mechanisms, isolated.
        auto of = [&](const char *slug) -> const driver::JobResult & {
            for (std::size_t k = 0; k < 4; ++k) {
                if (std::string(Configs[k].slug) == slug)
                    return results[k];
            }
            fatal("unknown config '%s'", slug);
        };
        double pcid_gain =
            of("native-nopcid").valueOf("post_switch_walk_cycles") /
            of("native-pcid").valueOf("post_switch_walk_cycles");
        double mitosis_gain =
            of("native-pcid").valueOf("post_switch_walk_cycles") /
            of("mitosis-pcid").valueOf("post_switch_walk_cycles");
        report.speedup("post-switch walk cycles, PCID on vs off (native)",
                       pcid_gain);
        report.speedup(
            "post-switch walk cycles, mitosis vs native (PCID on)",
            mitosis_gain);
        std::printf("\nPCID on cuts native post-switch walk cycles "
                    "%.2fx; mitosis cuts them a further %.2fx "
                    "(schedule-driven replicas make remote tenants' "
                    "walks local)\n",
                    pcid_gain, mitosis_gain);
    };
    return driver::benchMain(argc, argv, spec);
}
