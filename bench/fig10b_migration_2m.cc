/**
 * @file
 * Figure 10b: workload-migration scenario with 2 MB pages, normalized to
 * the 4 KB LP-LD baseline.
 *
 * Expected shape (paper): THP shrinks the remote-PT penalty; for
 * workloads whose (much smaller) page-table working set now fits in the
 * caches — GUPS is the paper's example — TRPI-LD ~= TLP-LD and Mitosis
 * shows no further gain; a few workloads (Redis 1.70x, Canneal 2.35x,
 * LibLinear 1.31x) still benefit.
 */

#include "bench/harness.h"
#include "src/driver/bench_main.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main(int argc, char **argv)
{
    const WmTrioSpec trio{migrationWorkloads(), WmBaseline::Base4k};

    driver::BenchSpec spec;
    spec.name = "fig10b_migration_2m";
    spec.title = "Figure 10b: workload migration, 2MB pages "
                 "(normalized to 4KB LP-LD)";
    spec.describe = [](BenchReport &report) {
        describeMachine(report);
        report.config("normalized_to", "4KB LP-LD");
    };
    spec.registerJobs = [trio](driver::JobRegistry &registry) {
        registerWmTrio(registry, trio);
    };
    spec.emit = [trio](const std::vector<driver::JobResult> &results,
                       BenchReport &report) {
        emitWmTrio(results, report, trio);
        std::printf("\n(paper improvements: GUPS 1.00x, BTree 1.02x, "
                    "HashJoin 1.00x, Redis 1.70x, XSBench 1.00x, "
                    "PageRank 1.00x, LibLinear 1.31x, Canneal 2.35x)\n");
    };
    return driver::benchMain(argc, argv, spec);
}
