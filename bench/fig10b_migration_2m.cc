/**
 * @file
 * Figure 10b: workload-migration scenario with 2 MB pages, normalized to
 * the 4 KB LP-LD baseline.
 *
 * Expected shape (paper): THP shrinks the remote-PT penalty; for
 * workloads whose (much smaller) page-table working set now fits in the
 * caches — GUPS is the paper's example — TRPI-LD ~= TLP-LD and Mitosis
 * shows no further gain; a few workloads (Redis 1.70x, Canneal 2.35x,
 * LibLinear 1.31x) still benefit.
 */

#include "bench/harness.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main()
{
    setInformEnabled(false);
    printTitle("Figure 10b: workload migration, 2MB pages "
               "(normalized to 4KB LP-LD)");
    BenchReport report("fig10b_migration_2m");
    describeMachine(report);
    report.config("normalized_to", "4KB LP-LD");

    const char *workloads[] = {"gups",    "btree",    "hashjoin",
                               "redis",   "xsbench",  "pagerank",
                               "liblinear", "canneal"};

    std::printf("%-11s %9s %9s %9s   %s\n", "workload", "TLP-LD",
                "TRPI-LD", "TRPI-LD+M", "improvement(+M)");
    for (const char *name : workloads) {
        ScenarioConfig cfg4k;
        cfg4k.workload = name;
        cfg4k.footprint = 4ull << 30;
        auto base4k = runWorkloadMigration(cfg4k, wmPlacement("LP-LD"));
        double b = static_cast<double>(base4k.runtime);

        ScenarioConfig cfg;
        cfg.workload = name;
        cfg.footprint = 4ull << 30;
        cfg.thp = true;
        auto tlp = runWorkloadMigration(cfg, wmPlacement("LP-LD"));
        auto trpi = runWorkloadMigration(cfg, wmPlacement("RPI-LD"));
        auto mito = runWorkloadMigration(cfg, wmPlacement("TRPI-LD+M"));
        std::printf("%-11s %9.2f %9.2f %9.2f   %.2fx\n", name,
                    static_cast<double>(tlp.runtime) / b,
                    static_cast<double>(trpi.runtime) / b,
                    static_cast<double>(mito.runtime) / b,
                    static_cast<double>(trpi.runtime) /
                        static_cast<double>(mito.runtime));
        recordOutcome(report, std::string(name) + " TLP-LD", tlp, b)
            .tag("workload", name)
            .tag("config", "TLP-LD");
        recordOutcome(report, std::string(name) + " TRPI-LD", trpi, b)
            .tag("workload", name)
            .tag("config", "TRPI-LD");
        recordOutcome(report, std::string(name) + " TRPI-LD+M", mito, b)
            .tag("workload", name)
            .tag("config", "TRPI-LD+M");
        report.speedup(std::string(name) + " TRPI-LD/TRPI-LD+M",
                       static_cast<double>(trpi.runtime) /
                           static_cast<double>(mito.runtime));
    }
    std::printf("\n(paper improvements: GUPS 1.00x, BTree 1.02x, "
                "HashJoin 1.00x, Redis 1.70x, XSBench 1.00x, PageRank "
                "1.00x, LibLinear 1.31x, Canneal 2.35x)\n");
    writeReport(report);
    return 0;
}
