/**
 * @file
 * Figure 11: THP under heavy physical-memory fragmentation for XSBench,
 * Redis and GUPS (TLP-LD / TRPI-LD / TRPI-LD+M, normalized to the
 * *fragmented* TLP-LD; the unfragmented cost is shown separately).
 *
 * Expected shape (paper): fragmentation makes 2 MB allocations fail so
 * workloads silently fall back to 4 KB pages; even workloads that showed
 * no THP-mode gain (GUPS, XSBench in Fig 10b) now lose badly with remote
 * page-tables (up to 2.73x) and Mitosis recovers the baseline.
 */

#include "bench/harness.h"
#include "src/driver/bench_main.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main(int argc, char **argv)
{
    const WmTrioSpec trio{{"xsbench", "redis", "gups"},
                          WmBaseline::CleanThp};

    driver::BenchSpec spec;
    spec.name = "fig11_fragmentation";
    spec.title = "Figure 11: THP under heavy fragmentation "
                 "(normalized to fragmented TLP-LD; unfragmented cost "
                 "shown separately)";
    spec.describe = [](BenchReport &report) {
        describeMachine(report);
        report.config("fragmentation", 1.0);
    };
    spec.registerJobs = [trio](driver::JobRegistry &registry) {
        registerWmTrio(registry, trio);
    };
    spec.emit = [trio](const std::vector<driver::JobResult> &results,
                       BenchReport &report) {
        emitWmTrio(results, report, trio);
        std::printf("\n(paper improvements under fragmentation: XSBench "
                    "2.73x, Redis 1.70x, GUPS 1.08x)\n");
    };
    return driver::benchMain(argc, argv, spec);
}
