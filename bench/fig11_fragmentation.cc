/**
 * @file
 * Figure 11: THP under heavy physical-memory fragmentation for XSBench,
 * Redis and GUPS (TLP-LD / TRPI-LD / TRPI-LD+M, normalized to the
 * *unfragmented* TLP-LD).
 *
 * Expected shape (paper): fragmentation makes 2 MB allocations fail so
 * workloads silently fall back to 4 KB pages; even workloads that showed
 * no THP-mode gain (GUPS, XSBench in Fig 10b) now lose badly with remote
 * page-tables (up to 2.73x) and Mitosis recovers the baseline.
 */

#include "bench/harness.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main()
{
    setInformEnabled(false);
    printTitle("Figure 11: THP under heavy fragmentation "
               "(normalized to fragmented TLP-LD; unfragmented cost "
               "shown separately)");
    BenchReport report("fig11_fragmentation");
    describeMachine(report);
    report.config("fragmentation", 1.0);

    const char *workloads[] = {"xsbench", "redis", "gups"};

    std::printf("%-11s %9s %9s %9s   %s\n", "workload", "TLP-LD",
                "TRPI-LD", "TRPI-LD+M", "improvement(+M)");
    for (const char *name : workloads) {
        ScenarioConfig clean;
        clean.workload = name;
        clean.footprint = 4ull << 30;
        clean.thp = true;
        auto base = runWorkloadMigration(clean, wmPlacement("LP-LD"));
        double b = static_cast<double>(base.runtime);

        ScenarioConfig frag = clean;
        frag.fragmentation = 1.0; // every 2MB block is broken
        auto tlp = runWorkloadMigration(frag, wmPlacement("LP-LD"));
        auto trpi = runWorkloadMigration(frag, wmPlacement("RPI-LD"));
        auto mito =
            runWorkloadMigration(frag, wmPlacement("TRPI-LD+M"));
        double fb = static_cast<double>(tlp.runtime);
        std::printf("%-11s %9.2f %9.2f %9.2f   %.2fx   (4KB-fallback "
                    "cost vs clean THP: %.2fx)\n",
                    name, 1.0, static_cast<double>(trpi.runtime) / fb,
                    static_cast<double>(mito.runtime) / fb,
                    static_cast<double>(trpi.runtime) /
                        static_cast<double>(mito.runtime),
                    fb / b);
        recordOutcome(report, std::string(name) + " TLP-LD", tlp, fb)
            .tag("workload", name)
            .tag("config", "TLP-LD")
            .metric("fallback_cost_vs_clean_thp", fb / b);
        recordOutcome(report, std::string(name) + " TRPI-LD", trpi, fb)
            .tag("workload", name)
            .tag("config", "TRPI-LD");
        recordOutcome(report, std::string(name) + " TRPI-LD+M", mito, fb)
            .tag("workload", name)
            .tag("config", "TRPI-LD+M");
        report.speedup(std::string(name) + " TRPI-LD/TRPI-LD+M",
                       static_cast<double>(trpi.runtime) /
                           static_cast<double>(mito.runtime));
    }
    std::printf("\n(paper improvements under fragmentation: XSBench "
                "2.73x, Redis 1.70x, GUPS 1.08x)\n");
    writeReport(report);
    return 0;
}
