/**
 * @file
 * Figure 10a: workload-migration scenario, 4 KB pages. Per workload:
 * LP-LD (baseline), RPI-LD (page-tables stranded remotely, interfered)
 * and RPI-LD+M (Mitosis migrates the page-tables back).
 *
 * Expected shape (paper): RPI-LD costs 1.4x-3.2x; +M recovers the LP-LD
 * baseline exactly. GUPS shows the largest gap (3.24x).
 */

#include "bench/harness.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main()
{
    setInformEnabled(false);
    printTitle("Figure 10a: workload migration, 4KB pages "
               "(normalized to LP-LD)");
    BenchReport report("fig10a_migration_4k");
    describeMachine(report);

    const char *workloads[] = {"gups",    "btree",    "hashjoin",
                               "redis",   "xsbench",  "pagerank",
                               "liblinear", "canneal"};

    std::printf("%-11s %9s %9s %9s   %s\n", "workload", "LP-LD", "RPI-LD",
                "RPI-LD+M", "improvement(+M)");
    for (const char *name : workloads) {
        ScenarioConfig cfg;
        cfg.workload = name;
        auto base = runWorkloadMigration(cfg, wmPlacement("LP-LD"));
        auto remote = runWorkloadMigration(cfg, wmPlacement("RPI-LD"));
        auto mitosis =
            runWorkloadMigration(cfg, wmPlacement("RPI-LD+M"));
        double b = static_cast<double>(base.runtime);
        std::printf("%-11s %9.2f %9.2f %9.2f   %.2fx\n", name, 1.0,
                    static_cast<double>(remote.runtime) / b,
                    static_cast<double>(mitosis.runtime) / b,
                    static_cast<double>(remote.runtime) /
                        static_cast<double>(mitosis.runtime));
        recordOutcome(report, std::string(name) + " LP-LD", base, b)
            .tag("workload", name)
            .tag("config", "LP-LD");
        recordOutcome(report, std::string(name) + " RPI-LD", remote, b)
            .tag("workload", name)
            .tag("config", "RPI-LD");
        recordOutcome(report, std::string(name) + " RPI-LD+M", mitosis,
                      b)
            .tag("workload", name)
            .tag("config", "RPI-LD+M");
        report.speedup(std::string(name) + " RPI-LD/RPI-LD+M",
                       static_cast<double>(remote.runtime) /
                           static_cast<double>(mitosis.runtime));
    }
    std::printf("\n(paper improvements: GUPS 3.24x, BTree 1.97x, "
                "HashJoin 2.10x, Redis 1.80x, XSBench 1.44x, PageRank "
                "1.83x, LibLinear 1.42x, Canneal 1.95x)\n");
    writeReport(report);
    return 0;
}
