/**
 * @file
 * Figure 10a: workload-migration scenario, 4 KB pages. Per workload:
 * LP-LD (baseline), RPI-LD (page-tables stranded remotely, interfered)
 * and RPI-LD+M (Mitosis migrates the page-tables back).
 *
 * Expected shape (paper): RPI-LD costs 1.4x-3.2x; +M recovers the LP-LD
 * baseline exactly. GUPS shows the largest gap (3.24x).
 */

#include "bench/harness.h"
#include "src/driver/bench_main.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main(int argc, char **argv)
{
    const WmTrioSpec trio{migrationWorkloads(), WmBaseline::None};

    driver::BenchSpec spec;
    spec.name = "fig10a_migration_4k";
    spec.title = "Figure 10a: workload migration, 4KB pages "
                 "(normalized to LP-LD)";
    spec.describe = [](BenchReport &report) { describeMachine(report); };
    spec.registerJobs = [trio](driver::JobRegistry &registry) {
        registerWmTrio(registry, trio);
    };
    spec.emit = [trio](const std::vector<driver::JobResult> &results,
                       BenchReport &report) {
        emitWmTrio(results, report, trio);
        std::printf("\n(paper improvements: GUPS 3.24x, BTree 1.97x, "
                    "HashJoin 2.10x, Redis 1.80x, XSBench 1.44x, "
                    "PageRank 1.83x, LibLinear 1.42x, Canneal 1.95x)\n");
    };
    return driver::benchMain(argc, argv, spec);
}
