/**
 * @file
 * Extension: THP aging and recovery — the *dynamic* continuation of
 * Figure 11.
 *
 * Figure 11 measures the static end state of fragmentation: every 2 MB
 * allocation fails, the workload silently runs on 4 KB pages, and
 * remote page-table walks get devastating. Real Linux fights back with
 * khugepaged (background 4K→2M collapse) and kcompactd (physical
 * compaction that reconstitutes free 2 MB blocks). This bench ages the
 * machine (fragmentation 1.0, so setup degrades to all-4K exactly as
 * in fig11), then lets the daemons run during measurement and tracks
 * the recovery over simulated time:
 *
 *   {native, mitosis} x {daemon off, on}  per workload
 *
 * reporting per-phase 2 MB coverage, per-phase walk cycles, final
 * free-2MB-block capacity per socket, and the lifecycle counters in
 * the report's "thp" section.
 *
 * Expected shape: with the daemons on, coverage climbs from ~0 toward
 * full and walk cycles fall back to the unfragmented level (recovering
 * most of fig11's loss) for both backends; in the *residual* 4K window
 * (the early phases, before collapse catches up) Mitosis keeps walks
 * cheap because leaf PTEs are socket-local, while native pays remote
 * walks — the two mechanisms compose instead of competing.
 *
 * Replica-coherence acceptance check: for the mitosis jobs every
 * per-socket replica tree must agree with the primary entry-for-entry
 * after all collapses (verified by vmcheck's coherence sweep,
 * src/check/), and the backend's ring-wide collapse count must equal
 * the OS-side count.
 */

#include "bench/harness.h"

#include <memory>

#include "src/base/logging.h"
#include "src/check/vmcheck.h"
#include "src/driver/bench_main.h"
#include "src/pvops/native_backend.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

const char *const Workloads[] = {"memcached", "xsbench", "gups"};

constexpr std::uint64_t Footprint = 2ull << 30;
constexpr std::uint64_t WarmupOps = 2000;
constexpr std::uint64_t MeasureOps = 6000;
constexpr int Phases = 8;
constexpr int TicksPerPhase = 4;
constexpr std::uint64_t Seed = 42;

struct Config
{
    const char *slug;
    bool mitosis;
    bool daemon;
};

constexpr Config Configs[] = {
    {"native-off", false, false},
    {"native-on", false, true},
    {"mitosis-off", true, false},
    {"mitosis-on", true, true},
};

driver::JobResult
run(const std::string &workload, bool use_mitosis, bool daemon)
{
    PhaseTimer phases;

    // The daemon flags only act through thpTick() during measurement,
    // so the daemon-on and daemon-off jobs of one (workload, backend)
    // pair share a populate snapshot — the spec (and hence the cache
    // key) carries everything that ages the machine: fragmentation
    // 1.0 before any allocation (the fig11 injector), the THP-eligible
    // 4 KB-degraded setup, splitPartial.
    PopulateSpec spec;
    spec.machine = benchMachine();
    spec.backend = use_mitosis ? snapshot::BackendKind::Mitosis
                               : snapshot::BackendKind::Native;
    spec.kernelCfg.thp.splitPartial = true;
    spec.kernelCfg.thp.khugepaged = daemon;
    spec.kernelCfg.thp.kcompactd = daemon;
    spec.workload = workload;
    spec.params.footprint = Footprint;
    spec.params.seed = Seed;
    spec.params.thp = true; // eligible, but every 2 MB allocation fails
    spec.fragmentation = 1.0;
    spec.fragSeed = Seed ^ 0xf7a6ull;
    for (SocketId s = 0; s < spec.machine.topo.numSockets; ++s)
        spec.threadSockets.push_back(s);

    auto u = preparePopulated(spec);
    sim::Machine &machine = u->machine;
    os::Kernel &kernel = u->kernel;
    os::Process &proc = *u->proc;
    os::ExecContext &ctx = *u->ctx;
    workloads::Workload &w = *u->workload;
    core::MitosisBackend *mitosis = use_mitosis ? &u->mitosis() : nullptr;

    if (mitosis) {
        mitosis->setReplicationMask(
            proc.roots(), proc.id(),
            SocketMask::all(machine.numSockets()));
        kernel.reloadContexts(proc);
    }
    phases.populateDone();

    workloads::runInterleaved(ctx, w, WarmupOps);
    ctx.resetCounters();

    driver::JobResult res;
    os::thp::ThpManager &thp = kernel.thp();
    res.value("coverage_initial", thp.coverage(proc));

    // Phased measurement: a slice of operations, then one daemon
    // period (kcompactd reconstitutes blocks, khugepaged collapses) —
    // the same explicit-period pattern as the AutoNUMA scan ticks.
    Cycles prev_cycles = 0;
    Cycles prev_walk = 0;
    Cycles first_phase_walk = 0;
    Cycles last_phase_walk = 0;
    for (int phase = 0; phase < Phases; ++phase) {
        workloads::runInterleaved(ctx, w, MeasureOps / Phases);
        for (int t = 0; t < TicksPerPhase; ++t)
            kernel.thpTick();

        sim::PerfCounters totals = ctx.totals();
        Cycles walk = totals.walkCycles - prev_walk;
        prev_walk = totals.walkCycles;
        Cycles cycles = ctx.runtime() - prev_cycles;
        prev_cycles = ctx.runtime();
        if (phase == 0)
            first_phase_walk = walk;
        last_phase_walk = walk;

        std::string suffix = "_p" + std::to_string(phase);
        res.value("coverage" + suffix, thp.coverage(proc));
        res.value("walk_cycles" + suffix, static_cast<double>(walk));
        res.value("phase_cycles" + suffix,
                  static_cast<double>(cycles));
    }
    phases.runDone();
    res.value("coverage_final", thp.coverage(proc));
    res.value("walk_recovery",
              last_phase_walk
                  ? static_cast<double>(first_phase_walk) /
                        static_cast<double>(last_phase_walk)
                  : 1.0);
    for (SocketId s = 0; s < machine.numSockets(); ++s) {
        res.value("free_2m_blocks_socket" + std::to_string(s),
                  static_cast<double>(
                      machine.physmem().freeLargeBlocks(s)));
    }

    driver::RunOutcome out;
    out.runtime = ctx.runtime();
    out.totals = ctx.totals();
    res.outcome = out;

    const os::thp::ThpStats &ts = thp.stats();

    if (mitosis) {
        // Acceptance: every replica table must agree with the primary
        // entry-for-entry after the collapses. vmcheck's coherence
        // sweep (class 1) is strictly stronger than the old leaf-count
        // comparison — it descends every (primary, replica) pair in
        // lockstep and diffs flags and ring membership too. The
        // default fail-fast config fatal()s with full context
        // (process, VA range, socket) on the first divergence.
        check::Checker coherence(kernel, check::CheckConfig{});
        coherence.checkReplicaCoherence();
        // And the backend must have applied exactly one ring-wide
        // collapse/split per OS-side lifecycle event.
        if (mitosis->stats().hugeCollapses != ts.collapses ||
            mitosis->stats().hugeSplits != ts.splits) {
            fatal("backend collapse/split counts diverge from the "
                  "OS-side lifecycle counts");
        }
        analysis::PtAnalyzer analyzer(machine.physmem(),
                                      kernel.ptOps());
        res.value("replica_leaf_ptes",
                  static_cast<double>(
                      analyzer.snapshot(proc.roots()).totalLeafPtes()));
    }

    recordWalkAttribution(res, proc.id(), out.totals);
    u->finalize();
    recordJobStats(kernel, res, {.thp = true});
    phases.stamp(res);
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "ext_thp_aging";
    spec.title = "Extension: THP aging — khugepaged/kcompactd recover "
                 "2MB coverage under fragmentation, {native, mitosis} "
                 "x {daemon off, on}";
    spec.describe = [](BenchReport &report) {
        describeMachine(report);
        report.config("footprint_bytes",
                      static_cast<double>(Footprint));
        report.config("fragmentation", 1.0);
        report.config("phases", static_cast<double>(Phases));
        report.config("ticks_per_phase",
                      static_cast<double>(TicksPerPhase));
        report.config("measure_ops", static_cast<double>(MeasureOps));
        report.config("seed", static_cast<double>(Seed));
    };
    spec.registerJobs = [](driver::JobRegistry &registry) {
        for (const char *wl : Workloads) {
            std::string name = wl;
            for (const Config &c : Configs) {
                registry.add(name + "/" + c.slug, [name, c] {
                    return run(name, c.mitosis, c.daemon);
                });
            }
        }
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        std::printf("%-11s %-12s %9s %9s %9s %10s\n", "workload",
                    "config", "runtime", "cov_final", "walk_rec",
                    "walk_frac");
        std::size_t i = 0;
        for (const char *wl : Workloads) {
            double base = 0;
            std::vector<double> runtimes;
            for (const Config &c : Configs) {
                const driver::JobResult &res = results[i++];
                if (base == 0)
                    base = res.runtime();
                runtimes.push_back(res.runtime());
                std::printf("%-11s %-12s %9.3f %9.3f %9.2f %9.1f%%\n",
                            wl, c.slug, res.runtime() / base,
                            res.valueOf("coverage_final"),
                            res.valueOf("walk_recovery"),
                            100.0 * res.outcome->walkFraction());
                BenchRun &run_rec = recordOutcome(
                    report, std::string(wl) + " " + c.slug, res, base);
                run_rec.tag("workload", wl)
                    .tag("backend", c.mitosis ? "mitosis" : "native")
                    .tag("daemon", c.daemon ? "on" : "off")
                    .metric("coverage_initial",
                            res.valueOf("coverage_initial"))
                    .metric("coverage_final",
                            res.valueOf("coverage_final"))
                    .metric("walk_recovery",
                            res.valueOf("walk_recovery"));
                for (int p = 0; p < Phases; ++p) {
                    std::string suffix = "_p" + std::to_string(p);
                    run_rec.metric("coverage" + suffix,
                                   res.valueOf("coverage" + suffix));
                    run_rec.metric("walk_cycles" + suffix,
                                   res.valueOf("walk_cycles" + suffix));
                }
            }
            // Headline ratios. Job order per workload: native-off,
            // native-on, mitosis-off, mitosis-on.
            const driver::JobResult &nat_on = results[i - 3];
            const driver::JobResult &mit_on = results[i - 1];
            report.speedup(std::string(wl) +
                               " native daemon-on recovery",
                           runtimes[0] / runtimes[1]);
            report.speedup(std::string(wl) +
                               " mitosis daemon-on recovery",
                           runtimes[2] / runtimes[3]);
            report.speedup(
                std::string(wl) +
                    " residual-4k window, native/mitosis walk "
                    "cycles (daemon on, first phase)",
                nat_on.valueOf("walk_cycles_p0") /
                    mit_on.valueOf("walk_cycles_p0"));
            std::printf("  %s: daemon-on coverage %.0f%% -> %.0f%%, "
                        "walk-cycle recovery %.2fx (native)\n",
                        wl,
                        100.0 * nat_on.valueOf("coverage_initial"),
                        100.0 * nat_on.valueOf("coverage_final"),
                        nat_on.valueOf("walk_recovery"));
        }
    };
    return driver::benchMain(argc, argv, spec);
}
