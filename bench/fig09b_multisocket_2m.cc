/**
 * @file
 * Figure 9b: multi-socket scenario with transparent huge pages (2 MB).
 * Same Table 3 matrix as Figure 9a, normalized to the *4 KB* F config to
 * show the page-size effect, as in the paper.
 *
 * Expected shape (paper): THP cuts walk overheads substantially, yet
 * Mitosis still helps several workloads (Canneal 1.14x, Memcached 1.31x
 * best cases) and never hurts.
 */

#include "bench/harness.h"
#include "src/driver/bench_main.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "fig09b_multisocket_2m";
    spec.title = "Figure 9b: multi-socket scenario, 2MB pages "
                 "(normalized to 4KB F)";
    spec.describe = [](BenchReport &report) {
        describeMachine(report);
        report.config("normalized_to", "4KB F");
    };
    spec.registerJobs = [](driver::JobRegistry &registry) {
        registerMsMatrix(registry, /*thp=*/true);
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        emitMsMatrix(results, report, /*thp=*/true);
        std::printf("\n(paper: 2MB bars < 1.0 of 4KB-F; +M still up to "
                    "1.14-1.31x on some workloads, never slower)\n");
    };
    return driver::benchMain(argc, argv, spec);
}
