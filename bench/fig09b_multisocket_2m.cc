/**
 * @file
 * Figure 9b: multi-socket scenario with transparent huge pages (2 MB).
 * Same Table 3 matrix as Figure 9a, normalized to the *4 KB* F config to
 * show the page-size effect, as in the paper.
 *
 * Expected shape (paper): THP cuts walk overheads substantially, yet
 * Mitosis still helps several workloads (Canneal 1.14x, Memcached 1.31x
 * best cases) and never hurts.
 */

#include "bench/harness.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main()
{
    setInformEnabled(false);
    printTitle("Figure 9b: multi-socket scenario, 2MB pages "
               "(normalized to 4KB F)");
    BenchReport report("fig09b_multisocket_2m");
    describeMachine(report);
    report.config("normalized_to", "4KB F");

    const char *workloads[] = {"canneal",  "memcached", "xsbench",
                               "graph500", "hashjoin",  "btree"};
    const MsConfig configs[] = {MsConfig::F,  MsConfig::FM, MsConfig::FA,
                                MsConfig::FAM, MsConfig::I, MsConfig::IM};

    std::printf("%-11s", "workload");
    for (MsConfig c : configs)
        std::printf(" %8s", msConfigName(c, true));
    std::printf("   speedups(+M)\n");

    for (const char *name : workloads) {
        ScenarioConfig cfg4k;
        cfg4k.workload = name;
        cfg4k.footprint = 4ull << 30;
        auto base4k = runMultiSocket(cfg4k, MsConfig::F);
        double base = static_cast<double>(base4k.runtime);

        ScenarioConfig cfg;
        cfg.workload = name;
        cfg.footprint = 4ull << 30;
        cfg.thp = true;
        double results[6];
        double walks[6];
        for (int i = 0; i < 6; ++i) {
            auto out = runMultiSocket(cfg, configs[i]);
            results[i] = static_cast<double>(out.runtime) / base;
            walks[i] = out.walkFraction();
            const char *config = msConfigName(configs[i], true);
            recordOutcome(report,
                          std::string(name) + " " + config, out, base)
                .tag("workload", name)
                .tag("config", config);
        }
        std::printf("%-11s", name);
        for (double r : results)
            std::printf(" %8.3f", r);
        std::printf("   %.2fx %.2fx %.2fx\n", results[0] / results[1],
                    results[2] / results[3], results[4] / results[5]);
        report.speedup(std::string(name) + " TF/TF+M",
                       results[0] / results[1]);
        report.speedup(std::string(name) + " TF-A/TF-A+M",
                       results[2] / results[3]);
        report.speedup(std::string(name) + " TI/TI+M",
                       results[4] / results[5]);
        std::printf("%-11s", "  walk%");
        for (double wf : walks)
            std::printf(" %7.0f%%", 100.0 * wf);
        std::printf("\n");
    }
    std::printf("\n(paper: 2MB bars < 1.0 of 4KB-F; +M still up to "
                "1.14-1.31x on some workloads, never slower)\n");
    writeReport(report);
    return 0;
}
