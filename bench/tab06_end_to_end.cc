/**
 * @file
 * Table 6: end-to-end overhead of merely *running under* Mitosis with
 * replication disabled (LP-LD, everything local, THP off), including the
 * allocation/initialization phase — the cost of the PV-Ops indirection.
 *
 * Expected shape (paper): GUPS 0.46%, Redis 0.37% — well under 1%.
 */

#include "bench/harness.h"

#include "src/pvops/native_backend.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

Cycles
endToEnd(bool mitosis_backend, const std::string &workload)
{
    sim::Machine machine(benchMachine());
    pvops::NativeBackend native(machine.physmem());
    core::MitosisBackend mitosis(machine.physmem());
    os::Kernel kernel(machine,
                      mitosis_backend
                          ? static_cast<pvops::PvOps &>(mitosis)
                          : static_cast<pvops::PvOps &>(native));
    os::Process &proc = kernel.createProcess(workload, 0);
    kernel.setDataPolicy(proc, os::DataPolicy::Fixed, 0);
    kernel.setPtPlacement(proc, pt::PtPlacement::Fixed, 0);

    os::ExecContext ctx(kernel, proc);
    ctx.addThread(0);

    workloads::WorkloadParams params;
    params.footprint = 128ull << 20;
    params.seed = 21;
    auto w = workloads::makeWorkload(workload, params);
    // Counters are NOT reset: setup (allocation + population) counts,
    // as in the paper's Table 6 methodology.
    w->setup(ctx);
    workloads::runInterleaved(ctx, *w, 20000);
    Cycles total = ctx.runtime();
    kernel.destroyProcess(proc);
    return total;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    printTitle("Table 6: end-to-end runtime incl. initialization, "
               "LP-LD, Mitosis off vs on (replication disabled)");
    BenchReport report("tab06_end_to_end");
    describeMachine(report);
    report.config("replication", "disabled");

    std::printf("%-10s %16s %16s %10s\n", "Workload", "Mitosis Off",
                "Mitosis On", "Overhead");
    for (const char *name : {"gups", "redis"}) {
        Cycles off = endToEnd(false, name);
        Cycles on = endToEnd(true, name);
        double overhead = (static_cast<double>(on) -
                           static_cast<double>(off)) /
                          static_cast<double>(off);
        std::printf("%-10s %16llu %16llu %9.2f%%\n", name,
                    (unsigned long long)off, (unsigned long long)on,
                    100.0 * overhead);
        report.addRun(name)
            .tag("workload", name)
            .metric("runtime_cycles_off", static_cast<double>(off))
            .metric("runtime_cycles_on", static_cast<double>(on))
            .metric("overhead_fraction", overhead);
    }
    std::printf("\n(paper: GUPS 0.46%%, Redis 0.37%% — both < 0.5%%)\n");
    writeReport(report);
    return 0;
}
