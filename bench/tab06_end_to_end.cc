/**
 * @file
 * Table 6: end-to-end overhead of merely *running under* Mitosis with
 * replication disabled (LP-LD, everything local, THP off), including the
 * allocation/initialization phase — the cost of the PV-Ops indirection.
 *
 * Expected shape (paper): GUPS 0.46%, Redis 0.37% — well under 1%.
 */

#include "bench/harness.h"

#include "src/driver/bench_main.h"
#include "src/pvops/native_backend.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

const std::vector<std::string> &
endToEndWorkloads()
{
    static const std::vector<std::string> list = {"gups", "redis"};
    return list;
}

driver::JobResult
endToEnd(bool mitosis_backend, const std::string &workload)
{
    sim::Machine machine(benchMachine());
    pvops::NativeBackend native(machine.physmem());
    core::MitosisBackend mitosis(machine.physmem());
    os::Kernel kernel(machine,
                      mitosis_backend
                          ? static_cast<pvops::PvOps &>(mitosis)
                          : static_cast<pvops::PvOps &>(native));
    os::Process &proc = kernel.createProcess(workload, 0);
    kernel.setDataPolicy(proc, os::DataPolicy::Fixed, 0);
    kernel.setPtPlacement(proc, pt::PtPlacement::Fixed, 0);

    os::ExecContext ctx(kernel, proc);
    ctx.addThread(0);

    workloads::WorkloadParams params;
    params.footprint = 128ull << 20;
    params.seed = 21;
    auto w = workloads::makeWorkload(workload, params);
    // Counters are NOT reset: setup (allocation + population) counts,
    // as in the paper's Table 6 methodology.
    w->setup(ctx);
    workloads::runInterleaved(ctx, *w, 20000);
    driver::JobResult result;
    result.value("runtime_cycles", static_cast<double>(ctx.runtime()));
    kernel.finalizeProcess(proc);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "tab06_end_to_end";
    spec.title = "Table 6: end-to-end runtime incl. initialization, "
                 "LP-LD, Mitosis off vs on (replication disabled)";
    spec.describe = [](BenchReport &report) {
        describeMachine(report);
        report.config("replication", "disabled");
    };
    spec.registerJobs = [](driver::JobRegistry &registry) {
        for (const std::string &name : endToEndWorkloads()) {
            for (bool on : {false, true}) {
                registry.add(name + (on ? "/on" : "/off"), [name, on] {
                    return endToEnd(on, name);
                });
            }
        }
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        std::printf("%-10s %16s %16s %10s\n", "Workload", "Mitosis Off",
                    "Mitosis On", "Overhead");
        std::size_t i = 0;
        for (const std::string &name : endToEndWorkloads()) {
            double off = results[i++].valueOf("runtime_cycles");
            double on = results[i++].valueOf("runtime_cycles");
            double overhead = (on - off) / off;
            std::printf("%-10s %16.0f %16.0f %9.2f%%\n", name.c_str(),
                        off, on, 100.0 * overhead);
            report.addRun(name)
                .tag("workload", name)
                .metric("runtime_cycles_off", off)
                .metric("runtime_cycles_on", on)
                .metric("overhead_fraction", overhead);
        }
        std::printf(
            "\n(paper: GUPS 0.46%%, Redis 0.37%% — both < 0.5%%)\n");
    };
    return driver::benchMain(argc, argv, spec);
}
