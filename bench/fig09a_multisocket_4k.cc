/**
 * @file
 * Figure 9a: multi-socket scenario, 4 KB pages. Six Table 3 configs per
 * workload (F, F+M, F-A, F-A+M, I, I+M), runtime normalized to F, plus
 * the speedup of each +M config over its non-M partner.
 *
 * Expected shape (paper): Mitosis (+M) never slows a workload down and
 * improves each pairing, up to 1.34x (Canneal F vs F+M).
 */

#include "bench/harness.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main()
{
    setInformEnabled(false);
    printTitle("Figure 9a: multi-socket scenario, 4KB pages "
               "(normalized to F)");
    BenchReport report("fig09a_multisocket_4k");
    describeMachine(report);

    const char *workloads[] = {"canneal",  "memcached", "xsbench",
                               "graph500", "hashjoin",  "btree"};
    const MsConfig configs[] = {MsConfig::F,  MsConfig::FM, MsConfig::FA,
                                MsConfig::FAM, MsConfig::I, MsConfig::IM};

    std::printf("%-11s", "workload");
    for (MsConfig c : configs)
        std::printf(" %8s", msConfigName(c, false));
    std::printf("   speedups(+M)\n");

    for (const char *name : workloads) {
        ScenarioConfig cfg;
        cfg.workload = name;
        double results[6];
        double walks[6];
        double base = 0;
        for (int i = 0; i < 6; ++i) {
            auto out = runMultiSocket(cfg, configs[i]);
            if (i == 0)
                base = static_cast<double>(out.runtime);
            results[i] = static_cast<double>(out.runtime) / base;
            walks[i] = out.walkFraction();
            const char *config = msConfigName(configs[i], false);
            recordOutcome(report,
                          std::string(name) + " " + config, out, base)
                .tag("workload", name)
                .tag("config", config);
        }
        std::printf("%-11s", name);
        for (double r : results)
            std::printf(" %8.3f", r);
        std::printf("   %.2fx %.2fx %.2fx\n", results[0] / results[1],
                    results[2] / results[3], results[4] / results[5]);
        report.speedup(std::string(name) + " F/F+M",
                       results[0] / results[1]);
        report.speedup(std::string(name) + " F-A/F-A+M",
                       results[2] / results[3]);
        report.speedup(std::string(name) + " I/I+M",
                       results[4] / results[5]);
        std::printf("%-11s", "  walk%");
        for (double wf : walks)
            std::printf(" %7.0f%%", 100.0 * wf);
        std::printf("\n");
    }
    std::printf("\n(paper best case: Canneal F->F+M = 1.34x; Mitosis "
                "never slower)\n");
    writeReport(report);
    return 0;
}
