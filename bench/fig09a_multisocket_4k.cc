/**
 * @file
 * Figure 9a: multi-socket scenario, 4 KB pages. Six Table 3 configs per
 * workload (F, F+M, F-A, F-A+M, I, I+M), runtime normalized to F, plus
 * the speedup of each +M config over its non-M partner.
 *
 * Expected shape (paper): Mitosis (+M) never slows a workload down and
 * improves each pairing, up to 1.34x (Canneal F vs F+M).
 */

#include "bench/harness.h"
#include "src/driver/bench_main.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "fig09a_multisocket_4k";
    spec.title = "Figure 9a: multi-socket scenario, 4KB pages "
                 "(normalized to F)";
    spec.describe = [](BenchReport &report) { describeMachine(report); };
    spec.registerJobs = [](driver::JobRegistry &registry) {
        registerMsMatrix(registry, /*thp=*/false);
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        emitMsMatrix(results, report, /*thp=*/false);
        std::printf("\n(paper best case: Canneal F->F+M = 1.34x; "
                    "Mitosis never slower)\n");
    };
    return driver::benchMain(argc, argv, spec);
}
