/**
 * @file
 * Extension: paper-scale footprints — the multi-socket scenario at the
 * testbed's real memory scale instead of the harness's scaled-down
 * machine.
 *
 * The paper's experiments run on a 4-socket, 512 GiB machine with
 * workloads sized far beyond any cache (§8.1). The regular benches
 * reproduce the *shapes* on a 24 GiB simulated machine with caches
 * scaled to preserve the leaf-PTE : L3 ratio; this bench instead
 * simulates the full-size machine (4 x 128 GiB) and runs 64 GiB THP
 * footprints ({F, F+M} per workload), demonstrating that the simulator
 * reaches paper-scale: page metadata is chunked and materialized on
 * touch, data frames are unbacked (placement only), and page-table
 * frames are the only host-backed state — so a 512 GiB machine costs
 * host memory proportional to the *touched* footprint, and snapshot
 * forking shares even that copy-on-write across the F / F+M pair.
 *
 * Reported per job besides the usual counters: host wall-clock phases
 * and the process's peak RSS, the honest footprint-to-host-cost story
 * for EXPERIMENTS.md.
 */

#include "bench/harness.h"

#include <sys/resource.h>

#include "src/driver/bench_main.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

const char *const Workloads[] = {"gups", "memcached"};

constexpr std::uint64_t Footprint = 64ull << 30;
constexpr std::uint64_t WarmupOps = 2000;
constexpr std::uint64_t MeasureOps = 20000;
constexpr std::uint64_t Seed = 42;

sim::MachineConfig
paperMachine()
{
    sim::MachineConfig cfg;
    cfg.topo.numSockets = 4;
    cfg.topo.coresPerSocket = 2;
    cfg.topo.memPerSocket = 128ull << 30;
    // Unscaled caches: at a 64 GiB footprint even 2 MB leaf PDEs
    // overflow the default 1 MB L3, so walk locality matters without
    // any ratio engineering.
    cfg.tlb.l2Holds2M = false;
    return cfg;
}

double
peakRssMib()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

driver::JobResult
run(const std::string &workload, bool replicate)
{
    PhaseTimer phases;

    PopulateSpec spec;
    spec.machine = paperMachine();
    spec.backend = snapshot::BackendKind::Mitosis;
    spec.workload = workload;
    spec.params.footprint = Footprint;
    spec.params.seed = Seed;
    spec.params.thp = true;
    for (SocketId s = 0; s < spec.machine.topo.numSockets; ++s)
        spec.threadSockets.push_back(s);

    // F and F+M differ only post-populate (the replication mask), so
    // they fork one 64 GiB donor: the second job's populate is a CoW
    // fork instead of re-faulting 32k large pages.
    auto u = preparePopulated(spec);
    if (replicate) {
        u->mitosis().setReplicationMask(
            u->proc->roots(), u->proc->id(),
            SocketMask::all(u->machine.numSockets()));
        u->kernel.reloadContexts(*u->proc);
    }
    phases.populateDone();

    workloads::runInterleaved(*u->ctx, *u->workload, WarmupOps);
    u->ctx->resetCounters();
    workloads::runInterleaved(*u->ctx, *u->workload, MeasureOps);
    phases.runDone();

    driver::JobResult res;
    driver::RunOutcome out;
    out.runtime = u->ctx->runtime();
    out.totals = u->ctx->totals();
    res.outcome = out;
    res.value("peak_rss_mib", peakRssMib());
    std::uint64_t pt_pages = 0;
    for (SocketId s = 0; s < u->machine.numSockets(); ++s)
        pt_pages += u->machine.physmem().stats(s).ptPages;
    res.value("pt_pages", static_cast<double>(pt_pages));

    recordWalkAttribution(res, u->proc->id(), out.totals);
    u->finalize();
    recordJobStats(u->kernel, res);
    phases.stamp(res);
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "ext_paper_scale";
    spec.title = "Extension: paper-scale footprints — 64 GiB THP "
                 "workloads on a simulated 4x128 GiB machine, F vs F+M";
    spec.describe = [](BenchReport &report) {
        sim::MachineConfig cfg = paperMachine();
        report.config("sockets",
                      static_cast<double>(cfg.topo.numSockets));
        report.config("mem_per_socket_bytes",
                      static_cast<double>(cfg.topo.memPerSocket));
        report.config("footprint_bytes",
                      static_cast<double>(Footprint));
        report.config("measure_ops", static_cast<double>(MeasureOps));
        report.config("seed", static_cast<double>(Seed));
    };
    spec.registerJobs = [](driver::JobRegistry &registry) {
        for (const char *wl : Workloads) {
            std::string name = wl;
            registry.add(name + "/F", [name] { return run(name, false); });
            registry.add(name + "/F+M", [name] { return run(name, true); });
        }
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        std::printf("%-11s %-5s %9s %9s %10s %10s %10s\n", "workload",
                    "cfg", "runtime", "walk_frac", "remote_pt",
                    "pt_pages", "rss_mib");
        std::size_t i = 0;
        for (const char *wl : Workloads) {
            double base = 0;
            for (const char *cfg : {"F", "F+M"}) {
                const driver::JobResult &res = results[i++];
                if (base == 0)
                    base = res.runtime();
                std::printf("%-11s %-5s %9.3f %8.1f%% %9.1f%% %10.0f "
                            "%10.0f\n",
                            wl, cfg, res.runtime() / base,
                            100.0 * res.outcome->walkFraction(),
                            100.0 * res.outcome->remotePtFraction(),
                            res.valueOf("pt_pages"),
                            res.valueOf("peak_rss_mib"));
                BenchRun &run_rec = recordOutcome(
                    report, std::string(wl) + " " + cfg, res, base);
                run_rec.tag("workload", wl)
                    .tag("config", cfg)
                    .metric("pt_pages", res.valueOf("pt_pages"));
                report.wallMs(std::string(wl) + " " + cfg +
                                  " peak_rss_mib",
                              res.valueOf("peak_rss_mib"));
            }
            const driver::JobResult &f = results[i - 2];
            const driver::JobResult &fm = results[i - 1];
            report.speedup(std::string(wl) + " F/F+M",
                           f.runtime() / fm.runtime());
        }
    };
    return driver::benchMain(argc, argv, spec);
}
