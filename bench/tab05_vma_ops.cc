/**
 * @file
 * Table 5: kernel-cycle overhead of mmap / mprotect / munmap with 4-way
 * page-table replication vs no replication, for small / medium / large
 * regions (paper: 4 KB, 8 MB, 4 GB; the large region is scaled to
 * 128 MB — the per-page work is identical, only the loop is shorter).
 *
 * Expected shape (paper): mmap ~1.02x (allocation+zeroing dominate),
 * munmap ~1.35x, mprotect ~3.2x (pure PTE read-modify-write loop, so the
 * replica stores dominate; still below the 4x replication factor).
 */

#include "bench/harness.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

struct OpCosts
{
    Cycles mmapCycles = 0;
    Cycles mprotectCycles = 0;
    Cycles munmapCycles = 0;
};

OpCosts
measure(bool replicated, std::uint64_t region_bytes)
{
    sim::Machine machine(benchMachine());
    core::MitosisBackend backend(machine.physmem());
    os::Kernel kernel(machine, backend);
    os::Process &proc = kernel.createProcess("vma", 0);
    if (replicated) {
        backend.setReplicationMask(proc.roots(), proc.id(),
                                   SocketMask::all(4));
    }

    // Warm-up round so page-table pages for the range exist (as in the
    // paper's repeated-syscall micro-benchmark; Linux also retains PT
    // pages across munmap). Iterations remap the *same* address range.
    auto region = kernel.mmap(proc, region_bytes,
                              os::MmapOptions{.populate = true});
    kernel.munmap(proc, region.start, region.length);

    OpCosts costs;
    constexpr int Iterations = 3;
    for (int i = 0; i < Iterations; ++i) {
        pvops::KernelCost mmap_cost;
        auto r = kernel.mmapFixed(proc, region.start, region_bytes,
                                  os::MmapOptions{.populate = true},
                                  &mmap_cost);
        costs.mmapCycles += mmap_cost.cycles;

        pvops::KernelCost protect_cost;
        kernel.mprotect(proc, r.start, r.length, os::ProtRead,
                        &protect_cost);
        costs.mprotectCycles += protect_cost.cycles;

        pvops::KernelCost unmap_cost;
        kernel.munmap(proc, r.start, r.length, &unmap_cost);
        costs.munmapCycles += unmap_cost.cycles;
    }
    costs.mmapCycles /= Iterations;
    costs.mprotectCycles /= Iterations;
    costs.munmapCycles /= Iterations;
    kernel.destroyProcess(proc);
    return costs;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    printTitle("Table 5: VMA operation overhead, 4-way replication "
               "(ratio Mitosis-on / Mitosis-off)");
    BenchReport report("tab05_vma_ops");
    describeMachine(report);
    report.config("replicas", 4.0);

    struct Region
    {
        const char *label;
        std::uint64_t bytes;
    };
    const Region regions[] = {
        {"4KB region", 4ull << 10},
        {"8MB region", 8ull << 20},
        {"128MB region", 128ull << 20}, // paper used 4GB; same shape
    };

    std::printf("%-12s %-14s %-14s %-14s\n", "Operation",
                regions[0].label, regions[1].label, regions[2].label);

    double mmap_ratio[3];
    double mprotect_ratio[3];
    double munmap_ratio[3];
    for (int i = 0; i < 3; ++i) {
        OpCosts off = measure(false, regions[i].bytes);
        OpCosts on = measure(true, regions[i].bytes);
        mmap_ratio[i] = static_cast<double>(on.mmapCycles) /
                        static_cast<double>(off.mmapCycles);
        mprotect_ratio[i] = static_cast<double>(on.mprotectCycles) /
                            static_cast<double>(off.mprotectCycles);
        munmap_ratio[i] = static_cast<double>(on.munmapCycles) /
                          static_cast<double>(off.munmapCycles);
        report.addRun(regions[i].label)
            .tag("region", regions[i].label)
            .metric("region_bytes",
                    static_cast<double>(regions[i].bytes))
            .metric("mmap_ratio", mmap_ratio[i])
            .metric("mprotect_ratio", mprotect_ratio[i])
            .metric("munmap_ratio", munmap_ratio[i])
            .metric("mmap_cycles_off",
                    static_cast<double>(off.mmapCycles))
            .metric("mmap_cycles_on",
                    static_cast<double>(on.mmapCycles))
            .metric("mprotect_cycles_off",
                    static_cast<double>(off.mprotectCycles))
            .metric("mprotect_cycles_on",
                    static_cast<double>(on.mprotectCycles))
            .metric("munmap_cycles_off",
                    static_cast<double>(off.munmapCycles))
            .metric("munmap_cycles_on",
                    static_cast<double>(on.munmapCycles));
    }
    std::printf("%-12s %-14.3f %-14.3f %-14.3f\n", "mmap",
                mmap_ratio[0], mmap_ratio[1], mmap_ratio[2]);
    std::printf("%-12s %-14.3f %-14.3f %-14.3f\n", "mprotect",
                mprotect_ratio[0], mprotect_ratio[1], mprotect_ratio[2]);
    std::printf("%-12s %-14.3f %-14.3f %-14.3f\n", "munmap",
                munmap_ratio[0], munmap_ratio[1], munmap_ratio[2]);

    std::printf("\n(paper: mmap 1.021/1.008/1.006, mprotect "
                "1.121/3.238/3.279, munmap 1.043/1.354/1.393)\n");
    writeReport(report);
    return 0;
}
