/**
 * @file
 * Table 5: kernel-cycle overhead of mmap / mprotect / munmap with 4-way
 * page-table replication vs no replication, for small / medium / large
 * regions (paper: 4 KB, 8 MB, 4 GB; the large region is scaled to
 * 128 MB — the per-page work is identical, only the loop is shorter).
 *
 * Expected shape (paper): mmap ~1.02x (allocation+zeroing dominate),
 * munmap ~1.35x, mprotect ~3.2x (pure PTE read-modify-write loop, so the
 * replica stores dominate; still below the 4x replication factor).
 *
 * Extension jobs (beyond the paper): 512 MB range ops, 4 KB and THP,
 * native vs mitosis vs mitosis-batched. "mitosis-batched" opts into
 * UpdateMode::Batched, where the range-first kernel's batched setPtes
 * charges the replica locate once per leaf table instead of once per
 * PTE — the cheaper cost model that range operations make possible
 * (numaPTE's argument). The default-mode jobs above are unaffected.
 */

#include "bench/harness.h"
#include "src/driver/bench_main.h"
#include "src/pvops/native_backend.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

struct Region
{
    const char *label;
    const char *slug; //!< job-name fragment
    std::uint64_t bytes;
};

constexpr Region Regions[] = {
    {"4KB region", "4KB", 4ull << 10},
    {"8MB region", "8MB", 8ull << 20},
    {"128MB region", "128MB", 128ull << 20}, // paper used 4GB; same shape
};

/// @name Large-range extension jobs
/// @{

constexpr std::uint64_t LargeRegionBytes = 512ull << 20;

enum class LargeBackend
{
    Native,
    Mitosis,
    MitosisBatched,
};

constexpr LargeBackend LargeBackends[] = {
    LargeBackend::Native,
    LargeBackend::Mitosis,
    LargeBackend::MitosisBatched,
};

constexpr const char *
largeBackendName(LargeBackend kind)
{
    switch (kind) {
      case LargeBackend::Native:
        return "native";
      case LargeBackend::Mitosis:
        return "mitosis";
      case LargeBackend::MitosisBatched:
        return "mitosis-batched";
    }
    return "?";
}

constexpr struct
{
    const char *slug;
    bool thp;
} LargePageModes[] = {{"4K", false}, {"THP", true}};

driver::JobResult
measureLarge(bool thp, LargeBackend kind)
{
    sim::Machine machine(benchMachine());
    pvops::NativeBackend native(machine.physmem());
    core::MitosisConfig cfg;
    if (kind == LargeBackend::MitosisBatched)
        cfg.updateMode = core::UpdateMode::Batched;
    core::MitosisBackend mitosis(machine.physmem(), cfg);
    pvops::PvOps &backend =
        kind == LargeBackend::Native
            ? static_cast<pvops::PvOps &>(native)
            : static_cast<pvops::PvOps &>(mitosis);
    os::Kernel kernel(machine, backend);
    os::Process &proc = kernel.createProcess("vma-large", 0);
    if (kind != LargeBackend::Native) {
        mitosis.setReplicationMask(proc.roots(), proc.id(),
                                   SocketMask::all(4));
    }

    // Warm-up as in the small jobs: PT pages for the range pre-exist.
    auto region =
        kernel.mmap(proc, LargeRegionBytes,
                    os::MmapOptions{.populate = true, .thp = thp});
    kernel.munmap(proc, region.start, region.length);

    pvops::KernelCost mmap_cost;
    auto r = kernel.mmapFixed(proc, region.start, LargeRegionBytes,
                              os::MmapOptions{.populate = true,
                                              .thp = thp},
                              &mmap_cost);
    pvops::KernelCost protect_cost;
    kernel.mprotect(proc, r.start, r.length, os::ProtRead,
                    &protect_cost);
    pvops::KernelCost unmap_cost;
    kernel.munmap(proc, r.start, r.length, &unmap_cost);
    kernel.finalizeProcess(proc);

    driver::JobResult result;
    result.value("mmap_cycles", static_cast<double>(mmap_cost.cycles));
    result.value("mprotect_cycles",
                 static_cast<double>(protect_cost.cycles));
    result.value("munmap_cycles",
                 static_cast<double>(unmap_cost.cycles));
    return result;
}

/// @}

driver::JobResult
measure(bool replicated, std::uint64_t region_bytes)
{
    sim::Machine machine(benchMachine());
    core::MitosisBackend backend(machine.physmem());
    os::Kernel kernel(machine, backend);
    os::Process &proc = kernel.createProcess("vma", 0);
    if (replicated) {
        backend.setReplicationMask(proc.roots(), proc.id(),
                                   SocketMask::all(4));
    }

    // Warm-up round so page-table pages for the range exist (as in the
    // paper's repeated-syscall micro-benchmark; Linux also retains PT
    // pages across munmap). Iterations remap the *same* address range.
    auto region = kernel.mmap(proc, region_bytes,
                              os::MmapOptions{.populate = true});
    kernel.munmap(proc, region.start, region.length);

    Cycles mmap_cycles = 0;
    Cycles mprotect_cycles = 0;
    Cycles munmap_cycles = 0;
    constexpr int Iterations = 3;
    for (int i = 0; i < Iterations; ++i) {
        pvops::KernelCost mmap_cost;
        auto r = kernel.mmapFixed(proc, region.start, region_bytes,
                                  os::MmapOptions{.populate = true},
                                  &mmap_cost);
        mmap_cycles += mmap_cost.cycles;

        pvops::KernelCost protect_cost;
        kernel.mprotect(proc, r.start, r.length, os::ProtRead,
                        &protect_cost);
        mprotect_cycles += protect_cost.cycles;

        pvops::KernelCost unmap_cost;
        kernel.munmap(proc, r.start, r.length, &unmap_cost);
        munmap_cycles += unmap_cost.cycles;
    }
    kernel.finalizeProcess(proc);

    driver::JobResult result;
    result.value("mmap_cycles",
                 static_cast<double>(mmap_cycles / Iterations));
    result.value("mprotect_cycles",
                 static_cast<double>(mprotect_cycles / Iterations));
    result.value("munmap_cycles",
                 static_cast<double>(munmap_cycles / Iterations));
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "tab05_vma_ops";
    spec.title = "Table 5: VMA operation overhead, 4-way replication "
                 "(ratio Mitosis-on / Mitosis-off)";
    spec.describe = [](BenchReport &report) {
        describeMachine(report);
        report.config("replicas", 4.0);
    };
    spec.registerJobs = [](driver::JobRegistry &registry) {
        for (const Region &region : Regions) {
            for (bool replicated : {false, true}) {
                registry.add(format("%s/%s", region.slug,
                                    replicated ? "on" : "off"),
                             [region, replicated] {
                                 return measure(replicated,
                                                region.bytes);
                             });
            }
        }
        // Extension: 512 MB range ops, incl. the batched cost model.
        for (const auto &mode : LargePageModes) {
            for (LargeBackend kind : LargeBackends) {
                registry.add(format("large-512MB-%s/%s", mode.slug,
                                    largeBackendName(kind)),
                             [thp = mode.thp, kind] {
                                 return measureLarge(thp, kind);
                             });
            }
        }
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        std::printf("%-12s %-14s %-14s %-14s\n", "Operation",
                    Regions[0].label, Regions[1].label,
                    Regions[2].label);

        constexpr const char *Ops[] = {"mmap", "mprotect", "munmap"};
        double ratios[3][3];
        std::size_t i = 0;
        for (int r = 0; r < 3; ++r) {
            const driver::JobResult &off = results[i++];
            const driver::JobResult &on = results[i++];
            BenchRun &run = report.addRun(Regions[r].label);
            run.tag("region", Regions[r].label)
                .metric("region_bytes",
                        static_cast<double>(Regions[r].bytes));
            for (int op = 0; op < 3; ++op) {
                std::string key = std::string(Ops[op]) + "_cycles";
                ratios[op][r] = on.valueOf(key) / off.valueOf(key);
                run.metric(std::string(Ops[op]) + "_ratio",
                           ratios[op][r]);
            }
            for (int op = 0; op < 3; ++op) {
                std::string key = std::string(Ops[op]) + "_cycles";
                run.metric(key + "_off", off.valueOf(key));
                run.metric(key + "_on", on.valueOf(key));
            }
        }
        for (int op = 0; op < 3; ++op) {
            std::printf("%-12s %-14.3f %-14.3f %-14.3f\n", Ops[op],
                        ratios[op][0], ratios[op][1], ratios[op][2]);
        }
        std::printf("\n(paper: mmap 1.021/1.008/1.006, mprotect "
                    "1.121/3.238/3.279, munmap 1.043/1.354/1.393)\n");

        // Extension table: 512 MB ranges, batched replica updates.
        std::printf("\n512 MB range ops (cycles; ratio vs native)\n");
        std::printf("%-18s %-16s %14s %14s %14s\n", "mode", "backend",
                    "mmap", "mprotect", "munmap");
        for (const auto &mode : LargePageModes) {
            const driver::JobResult *native = nullptr;
            for (LargeBackend kind : LargeBackends) {
                const driver::JobResult &res = results[i++];
                if (kind == LargeBackend::Native)
                    native = &res;
                std::string label =
                    format("large-512MB-%s %s", mode.slug,
                           largeBackendName(kind));
                BenchRun &run = report.addRun(label);
                run.tag("region", "512MB")
                    .tag("page_mode", mode.slug)
                    .tag("backend", largeBackendName(kind))
                    .metric("region_bytes",
                            static_cast<double>(LargeRegionBytes));
                std::printf("%-18s %-16s", mode.slug,
                            largeBackendName(kind));
                for (const char *op : Ops) {
                    std::string key = std::string(op) + "_cycles";
                    double cycles = res.valueOf(key);
                    run.metric(key, cycles);
                    double ratio = cycles / native->valueOf(key);
                    run.metric(std::string(op) + "_vs_native", ratio);
                    std::printf(" %10.0f %-3.2fx", cycles, ratio);
                }
                std::printf("\n");
                if (kind == LargeBackend::MitosisBatched) {
                    report.speedup(
                        format("512MB-%s mprotect mitosis/batched",
                               mode.slug),
                        results[i - 2].valueOf("mprotect_cycles") /
                            res.valueOf("mprotect_cycles"));
                }
            }
        }
        std::printf("\n(batched = UpdateMode::Batched: replica locate "
                    "charged once per leaf table on range ops)\n");
    };
    return driver::benchMain(argc, argv, spec);
}
