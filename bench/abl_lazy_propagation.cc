/**
 * @file
 * Ablation (§7.2 library-OS design, implemented): eager vs lazy replica
 * update propagation.
 *
 * Update-heavy phases (populating a large region under 4-way
 * replication) pay 2N references per PTE store with eager propagation;
 * lazy propagation defers the three replica stores into per-socket
 * message queues. The bill comes due on first touch from each remote
 * socket — cheap if remote sockets only ever touch a subset, a wash if
 * they touch everything.
 */

#include "bench/harness.h"

#include "src/core/lazy_backend.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

struct Outcome
{
    Cycles installCycles = 0; //!< kernel cycles to map the region
    Cycles firstTouch = 0;    //!< remote socket touching 1/8 of pages
    std::uint64_t queuedPeak = 0;
};

Outcome
run(bool lazy)
{
    sim::Machine machine(benchMachine());
    core::MitosisBackend eager_b(machine.physmem());
    core::LazyMitosisBackend lazy_b(machine.physmem());
    os::Kernel kernel(machine,
                      lazy ? static_cast<pvops::PvOps &>(lazy_b)
                           : static_cast<pvops::PvOps &>(eager_b));
    core::MitosisBackend &backend = lazy ? lazy_b : eager_b;

    os::Process &proc = kernel.createProcess("install", 0);
    kernel.mmap(proc, PageSize, os::MmapOptions{.populate = true});
    backend.setReplicationMask(proc.roots(), proc.id(),
                               SocketMask::all(machine.numSockets()));

    // Update-heavy phase: install 16k pages under replication.
    pvops::KernelCost install_cost;
    auto region = kernel.mmap(proc, 64ull << 20,
                              os::MmapOptions{.populate = true},
                              &install_cost);

    // Remote socket touches an eighth of the pages.
    os::ExecContext ctx(kernel, proc);
    int tid = ctx.addThread(1);
    for (VirtAddr va = region.start; va < region.end();
         va += 8 * PageSize)
        ctx.access(tid, va, false);

    Outcome out;
    out.installCycles = install_cost.cycles;
    out.firstTouch = ctx.threadCounters(tid).kernelCycles;
    if (lazy)
        out.queuedPeak = lazy_b.lazyStats().maxQueueDepth;
    kernel.destroyProcess(proc);
    return out;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    printTitle("Ablation: eager (§5.2) vs lazy (§7.2) replica update "
               "propagation, 4-way replication");
    BenchReport report("abl_lazy_propagation");
    describeMachine(report);

    Outcome eager = run(false);
    Outcome lazy = run(true);

    std::printf("%-24s %16s %16s\n", "", "eager", "lazy");
    std::printf("%-24s %16llu %16llu   (%.2fx cheaper installs)\n",
                "install kcycles",
                (unsigned long long)eager.installCycles,
                (unsigned long long)lazy.installCycles,
                static_cast<double>(eager.installCycles) /
                    static_cast<double>(lazy.installCycles));
    std::printf("%-24s %16llu %16llu   (deferred work surfaces here)\n",
                "remote 1st-touch kcycles",
                (unsigned long long)eager.firstTouch,
                (unsigned long long)lazy.firstTouch);
    std::printf("%-24s %16s %16llu\n", "peak queue depth", "-",
                (unsigned long long)lazy.queuedPeak);
    std::printf("\n(§7.2: message-based propagation avoids eager "
                "cross-socket stores; faults process the messages)\n");
    report.addRun("eager")
        .tag("mode", "eager")
        .metric("install_kcycles",
                static_cast<double>(eager.installCycles))
        .metric("first_touch_kcycles",
                static_cast<double>(eager.firstTouch));
    report.addRun("lazy")
        .tag("mode", "lazy")
        .metric("install_kcycles",
                static_cast<double>(lazy.installCycles))
        .metric("first_touch_kcycles",
                static_cast<double>(lazy.firstTouch))
        .metric("peak_queue_depth",
                static_cast<double>(lazy.queuedPeak));
    report.speedup("install eager/lazy",
                   static_cast<double>(eager.installCycles) /
                       static_cast<double>(lazy.installCycles));
    writeReport(report);
    return 0;
}
