/**
 * @file
 * Ablation (§7.2 library-OS design, implemented): eager vs lazy replica
 * update propagation.
 *
 * Update-heavy phases (populating a large region under 4-way
 * replication) pay 2N references per PTE store with eager propagation;
 * lazy propagation defers the three replica stores into per-socket
 * message queues. The bill comes due on first touch from each remote
 * socket — cheap if remote sockets only ever touch a subset, a wash if
 * they touch everything.
 */

#include "bench/harness.h"

#include "src/core/lazy_backend.h"
#include "src/driver/bench_main.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

driver::JobResult
run(bool lazy)
{
    sim::Machine machine(benchMachine());
    core::MitosisBackend eager_b(machine.physmem());
    core::LazyMitosisBackend lazy_b(machine.physmem());
    os::Kernel kernel(machine,
                      lazy ? static_cast<pvops::PvOps &>(lazy_b)
                           : static_cast<pvops::PvOps &>(eager_b));
    core::MitosisBackend &backend = lazy ? lazy_b : eager_b;

    os::Process &proc = kernel.createProcess("install", 0);
    kernel.mmap(proc, PageSize, os::MmapOptions{.populate = true});
    backend.setReplicationMask(proc.roots(), proc.id(),
                               SocketMask::all(machine.numSockets()));

    // Update-heavy phase: install 16k pages under replication.
    pvops::KernelCost install_cost;
    auto region = kernel.mmap(proc, 64ull << 20,
                              os::MmapOptions{.populate = true},
                              &install_cost);

    // Remote socket touches an eighth of the pages.
    os::ExecContext ctx(kernel, proc);
    int tid = ctx.addThread(1);
    for (VirtAddr va = region.start; va < region.end();
         va += 8 * PageSize)
        ctx.access(tid, va, false);

    driver::JobResult result;
    result.value("install_kcycles",
                 static_cast<double>(install_cost.cycles));
    result.value("first_touch_kcycles",
                 static_cast<double>(
                     ctx.threadCounters(tid).kernelCycles));
    if (lazy)
        result.value("peak_queue_depth",
                     static_cast<double>(
                         lazy_b.lazyStats().maxQueueDepth));
    kernel.finalizeProcess(proc);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "abl_lazy_propagation";
    spec.title = "Ablation: eager (§5.2) vs lazy (§7.2) replica update "
                 "propagation, 4-way replication";
    spec.describe = [](BenchReport &report) { describeMachine(report); };
    spec.registerJobs = [](driver::JobRegistry &registry) {
        registry.add("eager", [] { return run(false); });
        registry.add("lazy", [] { return run(true); });
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        const driver::JobResult &eager = results[0];
        const driver::JobResult &lazy = results[1];
        double eager_install = eager.valueOf("install_kcycles");
        double lazy_install = lazy.valueOf("install_kcycles");

        std::printf("%-24s %16s %16s\n", "", "eager", "lazy");
        std::printf("%-24s %16.0f %16.0f   (%.2fx cheaper installs)\n",
                    "install kcycles", eager_install, lazy_install,
                    eager_install / lazy_install);
        std::printf("%-24s %16.0f %16.0f   (deferred work surfaces "
                    "here)\n",
                    "remote 1st-touch kcycles",
                    eager.valueOf("first_touch_kcycles"),
                    lazy.valueOf("first_touch_kcycles"));
        std::printf("%-24s %16s %16.0f\n", "peak queue depth", "-",
                    lazy.valueOf("peak_queue_depth"));
        std::printf("\n(§7.2: message-based propagation avoids eager "
                    "cross-socket stores; faults process the "
                    "messages)\n");
        report.addRun("eager")
            .tag("mode", "eager")
            .metric("install_kcycles", eager_install)
            .metric("first_touch_kcycles",
                    eager.valueOf("first_touch_kcycles"));
        report.addRun("lazy")
            .tag("mode", "lazy")
            .metric("install_kcycles", lazy_install)
            .metric("first_touch_kcycles",
                    lazy.valueOf("first_touch_kcycles"))
            .metric("peak_queue_depth",
                    lazy.valueOf("peak_queue_depth"));
        report.speedup("install eager/lazy",
                       eager_install / lazy_install);
    };
    return driver::benchMain(argc, argv, spec);
}
