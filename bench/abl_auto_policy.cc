/**
 * @file
 * Ablation (§6.1 future work, implemented): the counter-driven automatic
 * policy versus static choices. For a TLB-hostile workload (GUPS) and a
 * TLB-friendly one (STREAM), compares always-off, always-on, and the
 * automatic engine. The engine should match always-on for GUPS and
 * always-off for STREAM — one knob, per-process-right answers.
 */

#include "bench/harness.h"

#include "src/core/auto_policy.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

struct Outcome
{
    Cycles runtime = 0;
    bool replicated = false;
};

enum class Mode
{
    Off,
    On,
    Auto,
};

Outcome
run(const std::string &workload, Mode mode)
{
    sim::Machine machine(benchMachine());
    core::MitosisBackend backend(machine.physmem());
    os::Kernel kernel(machine, backend);
    core::AutoPolicyEngine engine(backend);

    os::Process &proc = kernel.createProcess(workload, 0);
    os::ExecContext ctx(kernel, proc);
    for (SocketId s = 0; s < machine.numSockets(); ++s)
        ctx.addThread(s);

    workloads::WorkloadParams params;
    params.footprint = 128ull << 20;
    auto w = workloads::makeWorkload(workload, params);
    w->setup(ctx);

    if (mode == Mode::On) {
        backend.setReplicationMask(
            proc.roots(), proc.id(),
            SocketMask::all(machine.numSockets()));
        kernel.reloadContexts(proc);
    }

    // Warm + policy-sampling phase.
    for (int round = 0; round < 4; ++round) {
        ctx.resetCounters();
        workloads::runInterleaved(ctx, *w, 1500);
        if (mode == Mode::Auto)
            engine.sample(kernel, proc, ctx.totals());
    }

    ctx.resetCounters();
    workloads::runInterleaved(ctx, *w, 6000);
    Outcome out;
    out.runtime = ctx.runtime();
    out.replicated = proc.roots().replicated();
    kernel.destroyProcess(proc);
    return out;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    printTitle("Ablation: automatic counter-based policy (§6.1) vs "
               "static on/off");
    BenchReport report("abl_auto_policy");
    describeMachine(report);

    std::printf("%-10s %12s %12s %12s   %s\n", "workload", "off", "on",
                "auto", "auto chose");
    for (const char *name : {"gups", "canneal", "stream", "liblinear"}) {
        Outcome off = run(name, Mode::Off);
        Outcome on = run(name, Mode::On);
        Outcome automatic = run(name, Mode::Auto);
        double b = static_cast<double>(off.runtime);
        std::printf("%-10s %12.3f %12.3f %12.3f   %s\n", name, 1.0,
                    static_cast<double>(on.runtime) / b,
                    static_cast<double>(automatic.runtime) / b,
                    automatic.replicated ? "replicate" : "leave alone");
        report.addRun(name)
            .tag("workload", name)
            .tag("auto_chose",
                 automatic.replicated ? "replicate" : "leave alone")
            .metric("norm_runtime_off", 1.0)
            .metric("norm_runtime_on",
                    static_cast<double>(on.runtime) / b)
            .metric("norm_runtime_auto",
                    static_cast<double>(automatic.runtime) / b)
            .metric("runtime_cycles_off", b);
    }
    std::printf("\n(expected: auto tracks the better static choice per "
                "workload)\n");
    writeReport(report);
    return 0;
}
