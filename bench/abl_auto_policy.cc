/**
 * @file
 * Ablation (§6.1 future work, implemented): the counter-driven automatic
 * policy versus static choices. For a TLB-hostile workload (GUPS) and a
 * TLB-friendly one (STREAM), compares always-off, always-on, and the
 * automatic engine. The engine should match always-on for GUPS and
 * always-off for STREAM — one knob, per-process-right answers.
 */

#include "bench/harness.h"

#include "src/core/auto_policy.h"
#include "src/driver/bench_main.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

const std::vector<std::string> &
policyWorkloads()
{
    static const std::vector<std::string> list = {"gups", "canneal",
                                                  "stream", "liblinear"};
    return list;
}

enum class Mode
{
    Off,
    On,
    Auto,
};

constexpr const char *ModeNames[] = {"off", "on", "auto"};

driver::JobResult
run(const std::string &workload, Mode mode)
{
    sim::Machine machine(benchMachine());
    core::MitosisBackend backend(machine.physmem());
    os::Kernel kernel(machine, backend);
    core::AutoPolicyEngine engine(backend);

    os::Process &proc = kernel.createProcess(workload, 0);
    os::ExecContext ctx(kernel, proc);
    for (SocketId s = 0; s < machine.numSockets(); ++s)
        ctx.addThread(s);

    workloads::WorkloadParams params;
    params.footprint = 128ull << 20;
    auto w = workloads::makeWorkload(workload, params);
    w->setup(ctx);

    if (mode == Mode::On) {
        backend.setReplicationMask(
            proc.roots(), proc.id(),
            SocketMask::all(machine.numSockets()));
        kernel.reloadContexts(proc);
    }

    // Warm + policy-sampling phase.
    for (int round = 0; round < 4; ++round) {
        ctx.resetCounters();
        workloads::runInterleaved(ctx, *w, 1500);
        if (mode == Mode::Auto)
            engine.sample(kernel, proc, ctx.totals());
    }

    ctx.resetCounters();
    workloads::runInterleaved(ctx, *w, 6000);
    driver::JobResult result;
    result.value("runtime_cycles", static_cast<double>(ctx.runtime()));
    result.value("replicated", proc.roots().replicated() ? 1.0 : 0.0);
    kernel.finalizeProcess(proc);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "abl_auto_policy";
    spec.title = "Ablation: automatic counter-based policy (§6.1) vs "
                 "static on/off";
    spec.describe = [](BenchReport &report) { describeMachine(report); };
    spec.registerJobs = [](driver::JobRegistry &registry) {
        for (const std::string &name : policyWorkloads()) {
            for (Mode mode : {Mode::Off, Mode::On, Mode::Auto}) {
                registry.add(
                    name + "/" + ModeNames[static_cast<int>(mode)],
                    [name, mode] { return run(name, mode); });
            }
        }
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        std::printf("%-10s %12s %12s %12s   %s\n", "workload", "off",
                    "on", "auto", "auto chose");
        std::size_t i = 0;
        for (const std::string &name : policyWorkloads()) {
            const driver::JobResult &off = results[i++];
            const driver::JobResult &on = results[i++];
            const driver::JobResult &automatic = results[i++];
            double b = off.valueOf("runtime_cycles");
            bool replicated = automatic.valueOf("replicated") != 0.0;
            std::printf("%-10s %12.3f %12.3f %12.3f   %s\n",
                        name.c_str(), 1.0,
                        on.valueOf("runtime_cycles") / b,
                        automatic.valueOf("runtime_cycles") / b,
                        replicated ? "replicate" : "leave alone");
            report.addRun(name)
                .tag("workload", name)
                .tag("auto_chose",
                     replicated ? "replicate" : "leave alone")
                .metric("norm_runtime_off", 1.0)
                .metric("norm_runtime_on",
                        on.valueOf("runtime_cycles") / b)
                .metric("norm_runtime_auto",
                        automatic.valueOf("runtime_cycles") / b)
                .metric("runtime_cycles_off", b);
        }
        std::printf("\n(expected: auto tracks the better static choice "
                    "per workload)\n");
    };
    return driver::benchMain(argc, argv, spec);
}
