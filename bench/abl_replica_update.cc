/**
 * @file
 * Ablation (§5.2): cost of propagating one PTE store to all replicas,
 * circular struct-page list (2N references) vs walking every replica
 * tree (4N+N references), across replica counts. The figure of merit is
 * *simulated* kernel cycles per update — fully deterministic, so the
 * matrix runs as ordinary driver jobs (host time would also measure the
 * implementation, which is not the reproduction target).
 */

#include "bench/harness.h"

#include "src/driver/bench_main.h"
#include "src/mem/physical_memory.h"
#include "src/pt/operations.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

constexpr int ReplicaCounts[] = {1, 2, 4, 8};
constexpr std::uint64_t Updates = 4096;

struct Rig
{
    explicit Rig(int sockets, core::UpdateMode mode)
        : topo([sockets] {
              numa::TopologyConfig cfg;
              cfg.numSockets = sockets;
              cfg.coresPerSocket = 1;
              cfg.memPerSocket = 16ull << 20;
              return cfg;
          }()),
          pm(topo),
          backend(pm,
                  [mode] {
                      core::MitosisConfig cfg;
                      cfg.updateMode = mode;
                      return cfg;
                  }()),
          ops(pm, backend)
    {
        if (!ops.createRoot(roots, 1, 0, nullptr))
            fatal("rig: out of memory");
        pt::PtPlacementPolicy policy;
        auto data = pm.allocData(0, 1);
        if (!ops.map4K(roots, 1, 0x1000, *data, pt::PteWrite, policy, 0,
                       nullptr))
            fatal("rig: map failed");
        backend.setReplicationMask(roots, 1, SocketMask::all(sockets));
        loc = ops.walk(roots, 0x1000).loc;
    }

    ~Rig() { ops.destroy(roots, nullptr); }

    numa::Topology topo;
    mem::PhysicalMemory pm;
    core::MitosisBackend backend;
    pt::PageTableOps ops;
    pt::RootSet roots;
    pt::PteLoc loc;
};

driver::JobResult
replicaUpdateJob(int replicas, core::UpdateMode mode)
{
    Rig rig(replicas, mode);
    std::uint64_t sim_cycles = 0;
    for (std::uint64_t i = 0; i < Updates; ++i) {
        pvops::KernelCost cost;
        std::uint64_t flag =
            (i & 1) ? std::uint64_t{pt::PteNumaHint} : 0;
        rig.backend.setPte(rig.roots, rig.loc,
                           pt::Pte::make(7, pt::PtePresent | flag), 1,
                           &cost);
        sim_cycles += cost.cycles;
    }
    driver::JobResult result;
    result.value("replicas", replicas);
    result.value("updates", static_cast<double>(Updates));
    result.value("sim_cycles_per_update",
                 static_cast<double>(sim_cycles) /
                     static_cast<double>(Updates));
    return result;
}

const char *
modeName(core::UpdateMode mode)
{
    return mode == core::UpdateMode::CircularList ? "circular-list"
                                                  : "walk-replicas";
}

} // namespace

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "abl_replica_update";
    spec.title = "Ablation: PTE-update propagation, circular "
                 "struct-page list (2N refs) vs walking every replica "
                 "tree (4N+N refs)";
    spec.registerJobs = [](driver::JobRegistry &registry) {
        for (int replicas : ReplicaCounts) {
            for (core::UpdateMode mode :
                 {core::UpdateMode::CircularList,
                  core::UpdateMode::WalkReplicas}) {
                registry.add(format("replicas=%d/%s", replicas,
                                    modeName(mode)),
                             [replicas, mode] {
                                 return replicaUpdateJob(replicas,
                                                         mode);
                             });
            }
        }
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        std::printf("%-10s %20s %20s %10s\n", "replicas",
                    "circular-list", "walk-replicas", "ratio");
        std::size_t i = 0;
        for (int replicas : ReplicaCounts) {
            const driver::JobResult &circular = results[i++];
            const driver::JobResult &walk = results[i++];
            double c = circular.valueOf("sim_cycles_per_update");
            double w = walk.valueOf("sim_cycles_per_update");
            std::printf("%-10d %20.1f %20.1f %9.2fx\n", replicas, c, w,
                        w / c);
            for (const driver::JobResult *res : {&circular, &walk}) {
                BenchRun &run = report.addRun(format(
                    "replicas=%d %s", replicas,
                    res == &circular ? "circular-list"
                                     : "walk-replicas"));
                run.tag("mode", res == &circular ? "circular-list"
                                                 : "walk-replicas");
                for (const auto &[key, value] : res->values)
                    run.metric(key, value);
            }
            report.speedup(format("replicas=%d walk/circular",
                                  replicas),
                           w / c);
        }
        std::printf("\n(sim cycles per update; circular list stays "
                    "~2N references while walking replica trees pays "
                    "4N+N)\n");
    };
    return driver::benchMain(argc, argv, spec);
}
