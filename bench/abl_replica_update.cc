/**
 * @file
 * Ablation (§5.2): cost of propagating one PTE store to all replicas,
 * circular struct-page list (2N references) vs walking every replica
 * tree (4N+N references), across replica counts. Google-benchmark
 * harness; the figure of merit is *simulated* kernel cycles per update,
 * reported as a counter (host time also measures the implementation).
 */

#include <benchmark/benchmark.h>

#include "src/core/mitosis.h"
#include "src/mem/physical_memory.h"
#include "src/pt/operations.h"

namespace
{

using namespace mitosim;

struct Rig
{
    explicit Rig(int sockets, core::UpdateMode mode)
        : topo([sockets] {
              numa::TopologyConfig cfg;
              cfg.numSockets = sockets;
              cfg.coresPerSocket = 1;
              cfg.memPerSocket = 16ull << 20;
              return cfg;
          }()),
          pm(topo),
          backend(pm,
                  [mode] {
                      core::MitosisConfig cfg;
                      cfg.updateMode = mode;
                      return cfg;
                  }()),
          ops(pm, backend)
    {
        if (!ops.createRoot(roots, 1, 0, nullptr))
            fatal("rig: out of memory");
        pt::PtPlacementPolicy policy;
        auto data = pm.allocData(0, 1);
        if (!ops.map4K(roots, 1, 0x1000, *data, pt::PteWrite, policy, 0,
                       nullptr))
            fatal("rig: map failed");
        backend.setReplicationMask(roots, 1, SocketMask::all(sockets));
        loc = ops.walk(roots, 0x1000).loc;
    }

    ~Rig() { ops.destroy(roots, nullptr); }

    numa::Topology topo;
    mem::PhysicalMemory pm;
    core::MitosisBackend backend;
    pt::PageTableOps ops;
    pt::RootSet roots;
    pt::PteLoc loc;
};

void
BM_ReplicaUpdate(benchmark::State &state)
{
    int replicas = static_cast<int>(state.range(0));
    auto mode = state.range(1) == 0 ? core::UpdateMode::CircularList
                                    : core::UpdateMode::WalkReplicas;
    Rig rig(replicas, mode);

    std::uint64_t toggles = 0;
    std::uint64_t sim_cycles = 0;
    for (auto _ : state) {
        pvops::KernelCost cost;
        std::uint64_t flag = (toggles++ & 1) ? pt::PteNumaHint : 0;
        rig.backend.setPte(rig.roots, rig.loc,
                           pt::Pte::make(7, pt::PtePresent | flag), 1,
                           &cost);
        sim_cycles += cost.cycles;
        benchmark::DoNotOptimize(cost.cycles);
    }
    state.counters["sim_cycles_per_update"] =
        benchmark::Counter(static_cast<double>(sim_cycles) /
                           static_cast<double>(state.iterations()));
}

} // namespace

BENCHMARK(BM_ReplicaUpdate)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->ArgNames({"replicas", "walk_mode"});

BENCHMARK_MAIN();
