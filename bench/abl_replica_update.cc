/**
 * @file
 * Ablation (§5.2): cost of propagating one PTE store to all replicas,
 * circular struct-page list (2N references) vs walking every replica
 * tree (4N+N references), across replica counts. Google-benchmark
 * harness; the figure of merit is *simulated* kernel cycles per update,
 * reported as a counter (host time also measures the implementation).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "bench/report.h"
#include "src/core/mitosis.h"
#include "src/mem/physical_memory.h"
#include "src/pt/operations.h"

namespace
{

using namespace mitosim;

struct Rig
{
    explicit Rig(int sockets, core::UpdateMode mode)
        : topo([sockets] {
              numa::TopologyConfig cfg;
              cfg.numSockets = sockets;
              cfg.coresPerSocket = 1;
              cfg.memPerSocket = 16ull << 20;
              return cfg;
          }()),
          pm(topo),
          backend(pm,
                  [mode] {
                      core::MitosisConfig cfg;
                      cfg.updateMode = mode;
                      return cfg;
                  }()),
          ops(pm, backend)
    {
        if (!ops.createRoot(roots, 1, 0, nullptr))
            fatal("rig: out of memory");
        pt::PtPlacementPolicy policy;
        auto data = pm.allocData(0, 1);
        if (!ops.map4K(roots, 1, 0x1000, *data, pt::PteWrite, policy, 0,
                       nullptr))
            fatal("rig: map failed");
        backend.setReplicationMask(roots, 1, SocketMask::all(sockets));
        loc = ops.walk(roots, 0x1000).loc;
    }

    ~Rig() { ops.destroy(roots, nullptr); }

    numa::Topology topo;
    mem::PhysicalMemory pm;
    core::MitosisBackend backend;
    pt::PageTableOps ops;
    pt::RootSet roots;
    pt::PteLoc loc;
};

void
BM_ReplicaUpdate(benchmark::State &state)
{
    int replicas = static_cast<int>(state.range(0));
    auto mode = state.range(1) == 0 ? core::UpdateMode::CircularList
                                    : core::UpdateMode::WalkReplicas;
    Rig rig(replicas, mode);

    std::uint64_t toggles = 0;
    std::uint64_t sim_cycles = 0;
    for (auto _ : state) {
        pvops::KernelCost cost;
        std::uint64_t flag =
            (toggles++ & 1) ? std::uint64_t{pt::PteNumaHint} : 0;
        rig.backend.setPte(rig.roots, rig.loc,
                           pt::Pte::make(7, pt::PtePresent | flag), 1,
                           &cost);
        sim_cycles += cost.cycles;
        benchmark::DoNotOptimize(cost.cycles);
    }
    state.counters["sim_cycles_per_update"] =
        benchmark::Counter(static_cast<double>(sim_cycles) /
                           static_cast<double>(state.iterations()));
}

/**
 * Console output as usual, plus a copy of every run's counters so the
 * binary can emit the repo-standard BENCH_<name>.json next to Google
 * Benchmark's own table.
 */
class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        benchmark::ConsoleReporter::ReportRuns(runs);
        for (const Run &run : runs) {
            bench::BenchRun &row = report_.addRun(run.benchmark_name());
            row.metric("iterations",
                       static_cast<double>(run.iterations));
            row.metric("real_time_ns", run.GetAdjustedRealTime());
            for (const auto &[name, counter] : run.counters)
                row.metric(name, counter.value);
        }
    }

    bench::BenchReport &report() { return report_; }

  private:
    bench::BenchReport report_{"abl_replica_update"};
};

} // namespace

BENCHMARK(BM_ReplicaUpdate)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->ArgNames({"replicas", "walk_mode"});

int
main(int argc, char **argv)
{
    // Substituting a display reporter would override --benchmark_format;
    // only capture into BENCH_*.json for the default console output and
    // let Google Benchmark's own json/csv formats pass through untouched.
    bool console_format = true;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (const char *eq = std::strchr(arg, '=');
            eq && std::strncmp(arg, "--benchmark_format",
                               static_cast<std::size_t>(eq - arg)) == 0)
            console_format = std::strcmp(eq + 1, "console") == 0;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    if (!console_format) {
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
        return 0;
    }
    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    if (reporter.report().write())
        std::printf("\n[report] %s\n",
                    reporter.report().outputPath().c_str());
    return 0;
}
