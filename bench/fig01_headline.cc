/**
 * @file
 * Figure 1 (headline): remote/local leaf-PTE tables and the two headline
 * speedups — Canneal in the multi-socket scenario (paper: 1.34x with
 * first-touch + Mitosis) and GUPS in the workload-migration scenario
 * (paper: 3.24x for RPI-LD vs RPI-LD+M).
 */

#include "bench/harness.h"
#include "src/driver/bench_main.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

/** GUPS after an OS migration: data local, page-tables stranded. */
driver::JobResult
gupsPostMigrationJob()
{
    sim::Machine machine(benchMachine());
    core::MitosisBackend backend(machine.physmem());
    os::Kernel kernel(machine, backend);
    os::Process &proc = kernel.createProcess("gups", 0);
    kernel.setDataPolicy(proc, os::DataPolicy::Fixed, 0);
    kernel.setPtPlacement(proc, pt::PtPlacement::Fixed, 1);
    os::ExecContext ctx(kernel, proc);
    ctx.addThread(0);
    workloads::WorkloadParams params;
    params.footprint = 128ull << 20;
    auto w = workloads::makeWorkload("gups", params);
    w->setup(ctx);
    analysis::PtAnalyzer analyzer(machine.physmem(), kernel.ptOps());
    auto snap = analyzer.snapshot(proc.roots());
    driver::JobResult result;
    result.value("remote_leaf_socket0", snap.remoteLeafFractionFrom(0));
    kernel.finalizeProcess(proc);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    ScenarioConfig canneal;
    canneal.workload = "canneal";
    ScenarioConfig gups;
    gups.workload = "gups";

    driver::BenchSpec spec;
    spec.name = "fig01_headline";
    spec.describe = [canneal](BenchReport &report) {
        describeMachine(report);
        describeScenario(report, canneal);
    };
    spec.registerJobs = [canneal, gups](driver::JobRegistry &registry) {
        registry.add("canneal/placement",
                     [canneal] { return placementJob(canneal); });
        registry.add("gups/post-migration", gupsPostMigrationJob);
        registry.add("canneal/F", [canneal] {
            return multiSocketJob(canneal, MsConfig::F);
        });
        registry.add("canneal/F+M", [canneal] {
            return multiSocketJob(canneal, MsConfig::FM);
        });
        for (const char *placement : {"LP-LD", "RPI-LD", "RPI-LD+M"}) {
            registry.add(std::string("gups/") + placement,
                         [gups, placement] {
                             return migrationJob(gups, placement);
                         });
        }
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        // Top-left table: % of local/remote leaf PTEs per observing
        // socket for Canneal (multi-socket, first-touch).
        printTitle(
            "Figure 1 (top left): Canneal leaf-PTE locality per socket");
        const driver::JobResult &placement = results[0];
        auto fractions = placementFractions(placement);
        std::printf("%-10s", "Sockets");
        for (std::size_t s = 0; s < fractions.size(); ++s)
            std::printf("%8zu", s);
        std::printf("\n%-10s", "Remote");
        for (double f : fractions)
            std::printf("%7.0f%%", 100.0 * f);
        std::printf("\n%-10s", "Local");
        for (double f : fractions)
            std::printf("%7.0f%%", 100.0 * (1.0 - f));
        std::printf("\n(paper: remote 86/68/71/75%%)\n");
        recordPlacement(report, "canneal placement", placement)
            .tag("workload", "canneal")
            .tag("scenario", "multisocket");

        // Top-right table: GUPS after migration — all leaf PTEs remote.
        printTitle(
            "Figure 1 (top right): GUPS single-socket after migration");
        double gups_remote = results[1].valueOf("remote_leaf_socket0");
        std::printf(
            "Remote %6.0f%%   Local %6.0f%%   (paper: 100%% / 0%%)\n",
            100.0 * gups_remote, 100.0 * (1.0 - gups_remote));
        report.addRun("gups post-migration")
            .tag("workload", "gups")
            .tag("scenario", "migration")
            .metric("remote_leaf_socket0", gups_remote);

        // Bottom-left: Canneal multi-socket, first-touch vs +Mitosis.
        printTitle("Figure 1 (bottom left): Canneal multi-socket");
        const driver::JobResult &f = results[2];
        const driver::JobResult &fm = results[3];
        double ms_base = f.runtime();
        double ms_speedup = f.runtime() / fm.runtime();
        printRow("%-22s norm_runtime=%.3f walk_frac=%.2f", "first-touch",
                 1.0, f.outcome->walkFraction());
        printRow("%-22s norm_runtime=%.3f walk_frac=%.2f",
                 "first-touch+Mitosis", fm.runtime() / ms_base,
                 fm.outcome->walkFraction());
        printRow("speedup: %.2fx   (paper: 1.34x)", ms_speedup);
        recordOutcome(report, "canneal F", f, ms_base)
            .tag("workload", "canneal")
            .tag("config", "F");
        recordOutcome(report, "canneal F+M", fm, ms_base)
            .tag("workload", "canneal")
            .tag("config", "F+M");
        report.speedup("canneal F/F+M", ms_speedup);

        // Bottom-right: GUPS workload migration, local vs
        // remote(interfere) vs Mitosis.
        printTitle("Figure 1 (bottom right): GUPS workload migration");
        const driver::JobResult &local = results[4];
        const driver::JobResult &remote = results[5];
        const driver::JobResult &mitosis = results[6];
        double wm_base = local.runtime();
        printRow("%-22s norm_runtime=%.3f", "local (LP-LD)", 1.0);
        printRow("%-22s norm_runtime=%.3f", "remote+interf (RPI-LD)",
                 remote.runtime() / wm_base);
        printRow("%-22s norm_runtime=%.3f", "Mitosis (RPI-LD+M)",
                 mitosis.runtime() / wm_base);
        printRow("speedup: %.2fx   (paper: 3.24x)",
                 remote.runtime() / mitosis.runtime());
        recordOutcome(report, "gups LP-LD", local, wm_base)
            .tag("workload", "gups")
            .tag("config", "LP-LD");
        recordOutcome(report, "gups RPI-LD", remote, wm_base)
            .tag("workload", "gups")
            .tag("config", "RPI-LD");
        recordOutcome(report, "gups RPI-LD+M", mitosis, wm_base)
            .tag("workload", "gups")
            .tag("config", "RPI-LD+M");
        report.speedup("gups RPI-LD/RPI-LD+M",
                       remote.runtime() / mitosis.runtime());
    };
    return driver::benchMain(argc, argv, spec);
}
