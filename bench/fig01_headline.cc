/**
 * @file
 * Figure 1 (headline): remote/local leaf-PTE tables and the two headline
 * speedups — Canneal in the multi-socket scenario (paper: 1.34x with
 * first-touch + Mitosis) and GUPS in the workload-migration scenario
 * (paper: 3.24x for RPI-LD vs RPI-LD+M).
 */

#include "bench/harness.h"

using namespace mitosim;
using namespace mitosim::bench;

int
main()
{
    setInformEnabled(false);
    BenchReport report("fig01_headline");
    describeMachine(report);

    // Top-left table: % of local/remote leaf PTEs per observing socket
    // for Canneal (multi-socket, first-touch).
    printTitle("Figure 1 (top left): Canneal leaf-PTE locality per socket");
    ScenarioConfig canneal;
    canneal.workload = "canneal";
    describeScenario(report, canneal);
    auto placement = analyzePlacement(canneal);
    std::printf("%-10s", "Sockets");
    for (std::size_t s = 0; s < placement.remoteLeafFraction.size(); ++s)
        std::printf("%8zu", s);
    std::printf("\n%-10s", "Remote");
    for (double f : placement.remoteLeafFraction)
        std::printf("%7.0f%%", 100.0 * f);
    std::printf("\n%-10s", "Local");
    for (double f : placement.remoteLeafFraction)
        std::printf("%7.0f%%", 100.0 * (1.0 - f));
    std::printf("\n(paper: remote 86/68/71/75%%)\n");
    recordPlacement(report, "canneal placement", placement)
        .tag("workload", "canneal")
        .tag("scenario", "multisocket");

    // Top-right table: GUPS after migration — all leaf PTEs remote.
    printTitle("Figure 1 (top right): GUPS single-socket after migration");
    {
        sim::Machine machine(benchMachine());
        core::MitosisBackend backend(machine.physmem());
        os::Kernel kernel(machine, backend);
        os::Process &proc = kernel.createProcess("gups", 0);
        kernel.setDataPolicy(proc, os::DataPolicy::Fixed, 0);
        kernel.setPtPlacement(proc, pt::PtPlacement::Fixed, 1);
        os::ExecContext ctx(kernel, proc);
        ctx.addThread(0);
        workloads::WorkloadParams params;
        params.footprint = 128ull << 20;
        auto w = workloads::makeWorkload("gups", params);
        w->setup(ctx);
        analysis::PtAnalyzer analyzer(machine.physmem(), kernel.ptOps());
        auto snap = analyzer.snapshot(proc.roots());
        std::printf("Remote %6.0f%%   Local %6.0f%%   (paper: 100%% / 0%%)\n",
                    100.0 * snap.remoteLeafFractionFrom(0),
                    100.0 * (1.0 - snap.remoteLeafFractionFrom(0)));
        report.addRun("gups post-migration")
            .tag("workload", "gups")
            .tag("scenario", "migration")
            .metric("remote_leaf_socket0", snap.remoteLeafFractionFrom(0));
        kernel.destroyProcess(proc);
    }

    // Bottom-left: Canneal multi-socket, first-touch vs +Mitosis.
    printTitle("Figure 1 (bottom left): Canneal multi-socket");
    auto f = runMultiSocket(canneal, MsConfig::F);
    auto fm = runMultiSocket(canneal, MsConfig::FM);
    double ms_speedup = static_cast<double>(f.runtime) /
                        static_cast<double>(fm.runtime);
    printRow("%-22s norm_runtime=%.3f walk_frac=%.2f", "first-touch", 1.0,
             f.walkFraction());
    printRow("%-22s norm_runtime=%.3f walk_frac=%.2f", "first-touch+Mitosis",
             static_cast<double>(fm.runtime) /
                 static_cast<double>(f.runtime),
             fm.walkFraction());
    printRow("speedup: %.2fx   (paper: 1.34x)", ms_speedup);
    double ms_base = static_cast<double>(f.runtime);
    recordOutcome(report, "canneal F", f, ms_base)
        .tag("workload", "canneal")
        .tag("config", "F");
    recordOutcome(report, "canneal F+M", fm, ms_base)
        .tag("workload", "canneal")
        .tag("config", "F+M");
    report.speedup("canneal F/F+M", ms_speedup);

    // Bottom-right: GUPS workload migration, local vs remote(interfere)
    // vs Mitosis.
    printTitle("Figure 1 (bottom right): GUPS workload migration");
    ScenarioConfig gups;
    gups.workload = "gups";
    auto local = runWorkloadMigration(gups, wmPlacement("LP-LD"));
    auto remote = runWorkloadMigration(gups, wmPlacement("RPI-LD"));
    auto mitosis = runWorkloadMigration(gups, wmPlacement("RPI-LD+M"));
    printRow("%-22s norm_runtime=%.3f", "local (LP-LD)", 1.0);
    printRow("%-22s norm_runtime=%.3f", "remote+interf (RPI-LD)",
             static_cast<double>(remote.runtime) /
                 static_cast<double>(local.runtime));
    printRow("%-22s norm_runtime=%.3f", "Mitosis (RPI-LD+M)",
             static_cast<double>(mitosis.runtime) /
                 static_cast<double>(local.runtime));
    printRow("speedup: %.2fx   (paper: 3.24x)",
             static_cast<double>(remote.runtime) /
                 static_cast<double>(mitosis.runtime));
    double wm_base = static_cast<double>(local.runtime);
    recordOutcome(report, "gups LP-LD", local, wm_base)
        .tag("workload", "gups")
        .tag("config", "LP-LD");
    recordOutcome(report, "gups RPI-LD", remote, wm_base)
        .tag("workload", "gups")
        .tag("config", "RPI-LD");
    recordOutcome(report, "gups RPI-LD+M", mitosis, wm_base)
        .tag("workload", "gups")
        .tag("config", "RPI-LD+M");
    report.speedup("gups RPI-LD/RPI-LD+M",
                   static_cast<double>(remote.runtime) /
                       static_cast<double>(mitosis.runtime));
    writeReport(report);
    return 0;
}
