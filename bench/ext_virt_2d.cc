/**
 * @file
 * Extension (§7.4): Mitosis for virtualized, nested-paging systems.
 *
 * A VM with vNUMA-pinned memory runs a GUPS-style guest workload with
 * one vCPU per virtual socket. The guest's memory was initialized from
 * vsocket 0 (first-touch skew), so both the guest page-table (gPT) and
 * the data sit behind socket 0 in *both* translation dimensions. The
 * four configurations replicate the gPT (guest-level Mitosis) and the
 * nPT (host-level Mitosis) independently, realizing the paper's claim
 * that the two levels can be replicated independently once the NUMA
 * architecture is exposed to the guest.
 *
 * Expected shape: each dimension removes part of the remote walker
 * traffic; only gPT+nPT replication makes 2D walks fully local.
 */

#include "bench/harness.h"

#include "src/driver/bench_main.h"
#include "src/virt/nested_walker.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

struct Config
{
    const char *name;
    const char *slug; //!< job-name fragment
    bool gpt;
    bool npt;
};

constexpr Config Configs[] = {
    {"none", "none", false, false},
    {"gPT only", "gpt", true, false},
    {"nPT only", "npt", false, true},
    {"gPT+nPT", "gpt+npt", true, true},
};

driver::JobResult
run(bool gpt_replicated, bool npt_replicated)
{
    sim::Machine machine(benchMachine());
    core::MitosisBackend backend(machine.physmem());
    os::Kernel kernel(machine, backend);

    virt::VmConfig vm_cfg;
    vm_cfg.guestMemPerVSocket = 64ull << 20;
    virt::VirtualMachine vm(kernel, vm_cfg);
    virt::GuestAddressSpace gspace(vm);

    // Guest boot: one "main thread" on vsocket 0 faults in the whole
    // working set — first-touch skew, as in Graph500/XSBench (§3.1).
    const std::uint64_t working_set = 48ull << 20;
    for (virt::GuestPa gva = 0; gva < working_set; gva += PageSize)
        gspace.handleGuestFault(gva, 0);

    if (gpt_replicated)
        gspace.setReplication(true);
    if (npt_replicated) {
        backend.setReplicationMask(
            vm.process().roots(), vm.process().id(),
            SocketMask::all(machine.numSockets()));
    }

    // One vCPU per virtual socket, random guest accesses.
    std::vector<std::unique_ptr<virt::VCpu>> vcpus;
    for (int v = 0; v < vm.numVSockets(); ++v) {
        vcpus.push_back(std::make_unique<virt::VCpu>(
            vm, gspace, v,
            machine.topology().firstCoreOf(vm.hostSocketOf(v))));
    }

    std::uint64_t pages = working_set / PageSize;
    auto one_round = [&](std::uint64_t ops, std::uint64_t seed) {
        std::vector<Rng> rngs;
        for (std::size_t v = 0; v < vcpus.size(); ++v)
            rngs.emplace_back(seed + v);
        for (std::uint64_t i = 0; i < ops; ++i) {
            for (std::size_t v = 0; v < vcpus.size(); ++v) {
                virt::GuestPa gva = rngs[v].below(pages) * PageSize +
                              rngs[v].below(PageSize / 8) * 8;
                vcpus[v]->access(gva, (i & 3) == 0);
            }
        }
    };

    one_round(2000, 17); // warm
    for (auto &v : vcpus)
        v->resetCounters();
    one_round(6000, 18);

    driver::RunOutcome out;
    for (auto &v : vcpus) {
        out.totals.add(v->counters());
        out.runtime = std::max(out.runtime, v->counters().cycles);
    }
    return driver::JobResult::of(out);
}

} // namespace

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "ext_virt_2d";
    spec.title = "Extension (§7.4): 2D page-table replication in a VM "
                 "(normalized to no replication)";
    spec.describe = [](BenchReport &report) { describeMachine(report); };
    spec.registerJobs = [](driver::JobRegistry &registry) {
        for (const Config &c : Configs) {
            registry.add(c.slug,
                         [c] { return run(c.gpt, c.npt); });
        }
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        double base = 0;
        std::printf("%-10s %12s %12s %12s\n", "config", "runtime",
                    "walk_frac", "remote_pt");
        std::size_t i = 0;
        for (const Config &c : Configs) {
            const driver::JobResult &res = results[i++];
            if (base == 0)
                base = res.runtime();
            std::printf("%-10s %12.3f %11.0f%% %11.0f%%\n", c.name,
                        res.runtime() / base,
                        100.0 * res.outcome->walkFraction(),
                        100.0 * res.outcome->remotePtFraction());
            report.addRun(c.name)
                .tag("gpt_replicated", c.gpt ? "yes" : "no")
                .tag("npt_replicated", c.npt ? "yes" : "no")
                .metric("runtime_cycles", res.runtime())
                .metric("norm_runtime", res.runtime() / base)
                .metric("walk_fraction", res.outcome->walkFraction())
                .metric("remote_pt_fraction",
                        res.outcome->remotePtFraction());
        }
        std::printf("\n(expected: walk traffic is remote in both "
                    "dimensions without replication; gPT and nPT "
                    "replication each remove part; together they "
                    "localize 2D walks fully)\n");
    };
    return driver::benchMain(argc, argv, spec);
}
