/**
 * @file
 * Extension (§7.4): Mitosis for virtualized, nested-paging systems.
 *
 * A VM with vNUMA-pinned memory runs a GUPS-style guest workload with
 * one vCPU per virtual socket. The guest's memory was initialized from
 * vsocket 0 (first-touch skew), so both the guest page-table (gPT) and
 * the data sit behind socket 0 in *both* translation dimensions. The
 * four configurations replicate the gPT (guest-level Mitosis) and the
 * nPT (host-level Mitosis) independently, realizing the paper's claim
 * that the two levels can be replicated independently once the NUMA
 * architecture is exposed to the guest.
 *
 * Expected shape: each dimension removes part of the remote walker
 * traffic; only gPT+nPT replication makes 2D walks fully local.
 */

#include "bench/harness.h"

#include "src/virt/nested_walker.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

struct Outcome
{
    Cycles runtime = 0;
    double remotePt = 0.0;
    double walkFrac = 0.0;
};

Outcome
run(bool gpt_replicated, bool npt_replicated)
{
    sim::Machine machine(benchMachine());
    core::MitosisBackend backend(machine.physmem());
    os::Kernel kernel(machine, backend);

    virt::VmConfig vm_cfg;
    vm_cfg.guestMemPerVSocket = 64ull << 20;
    virt::VirtualMachine vm(kernel, vm_cfg);
    virt::GuestAddressSpace gspace(vm);

    // Guest boot: one "main thread" on vsocket 0 faults in the whole
    // working set — first-touch skew, as in Graph500/XSBench (§3.1).
    const std::uint64_t working_set = 48ull << 20;
    for (virt::GuestPa gva = 0; gva < working_set; gva += PageSize)
        gspace.handleGuestFault(gva, 0);

    if (gpt_replicated)
        gspace.setReplication(true);
    if (npt_replicated) {
        backend.setReplicationMask(
            vm.process().roots(), vm.process().id(),
            SocketMask::all(machine.numSockets()));
    }

    // One vCPU per virtual socket, random guest accesses.
    std::vector<std::unique_ptr<virt::VCpu>> vcpus;
    for (int v = 0; v < vm.numVSockets(); ++v) {
        vcpus.push_back(std::make_unique<virt::VCpu>(
            vm, gspace, v,
            machine.topology().firstCoreOf(vm.hostSocketOf(v))));
    }

    std::uint64_t pages = working_set / PageSize;
    auto one_round = [&](std::uint64_t ops, std::uint64_t seed) {
        std::vector<Rng> rngs;
        for (std::size_t v = 0; v < vcpus.size(); ++v)
            rngs.emplace_back(seed + v);
        for (std::uint64_t i = 0; i < ops; ++i) {
            for (std::size_t v = 0; v < vcpus.size(); ++v) {
                virt::GuestPa gva = rngs[v].below(pages) * PageSize +
                              rngs[v].below(PageSize / 8) * 8;
                vcpus[v]->access(gva, (i & 3) == 0);
            }
        }
    };

    one_round(2000, 17); // warm
    for (auto &v : vcpus)
        v->resetCounters();
    one_round(6000, 18);

    Outcome out;
    sim::PerfCounters totals;
    for (auto &v : vcpus) {
        totals.add(v->counters());
        out.runtime = std::max(out.runtime, v->counters().cycles);
    }
    out.remotePt = totals.remotePtFraction();
    out.walkFrac = totals.walkFraction();
    return out;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    printTitle("Extension (§7.4): 2D page-table replication in a VM "
               "(normalized to no replication)");

    struct Config
    {
        const char *name;
        bool gpt;
        bool npt;
    };
    const Config configs[] = {
        {"none", false, false},
        {"gPT only", true, false},
        {"nPT only", false, true},
        {"gPT+nPT", true, true},
    };

    BenchReport report("ext_virt_2d");
    describeMachine(report);

    double base = 0;
    std::printf("%-10s %12s %12s %12s\n", "config", "runtime",
                "walk_frac", "remote_pt");
    for (const Config &c : configs) {
        Outcome out = run(c.gpt, c.npt);
        if (base == 0)
            base = static_cast<double>(out.runtime);
        std::printf("%-10s %12.3f %11.0f%% %11.0f%%\n", c.name,
                    static_cast<double>(out.runtime) / base,
                    100.0 * out.walkFrac, 100.0 * out.remotePt);
        report.addRun(c.name)
            .tag("gpt_replicated", c.gpt ? "yes" : "no")
            .tag("npt_replicated", c.npt ? "yes" : "no")
            .metric("runtime_cycles", static_cast<double>(out.runtime))
            .metric("norm_runtime",
                    static_cast<double>(out.runtime) / base)
            .metric("walk_fraction", out.walkFrac)
            .metric("remote_pt_fraction", out.remotePt);
    }
    std::printf("\n(expected: walk traffic is remote in both dimensions "
                "without replication; gPT and nPT replication each "
                "remove part; together they localize 2D walks fully)\n");
    writeReport(report);
    return 0;
}
