/**
 * @file
 * Ablation (§5.1): the per-socket page-table reserve cache. Strict
 * page-table allocation on a memory-exhausted socket fails without the
 * reserve and silently spills page-tables to other sockets (re-creating
 * the remote-walk problem); with the sysctl-sized reserve, allocations
 * stay local until the reserve drains.
 */

#include "bench/harness.h"
#include "src/driver/bench_main.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

constexpr std::uint64_t ReserveSizes[] = {0, 16, 64};

driver::JobResult
runWithReserve(std::uint64_t reserve_frames)
{
    sim::MachineConfig mc;
    mc.topo.numSockets = 2;
    mc.topo.coresPerSocket = 1;
    mc.topo.memPerSocket = 32ull << 20;
    sim::Machine machine(mc);
    core::MitosisBackend backend(machine.physmem());
    os::Kernel kernel(machine, backend);
    auto &pm = machine.physmem();

    pm.setPtCacheTarget(0, reserve_frames);

    os::Process &proc = kernel.createProcess("pressure", 0);
    kernel.setDataPolicy(proc, os::DataPolicy::Fixed, 0);
    kernel.setPtPlacement(proc, pt::PtPlacement::Fixed, 0);

    // Fill socket 0 almost completely with data, then keep mapping
    // sparse regions (each needing fresh page-table pages).
    std::uint64_t bulk = pm.freeFrames(0) - 64;
    kernel.mmap(proc, bulk * PageSize, os::MmapOptions{.populate = true});

    for (int i = 0; i < 48; ++i) {
        // One page in its own 1 GiB-aligned slice: needs new L2+L1 (and
        // sometimes L3) page-table pages every time.
        auto region = kernel.mmap(proc, PageSize, os::MmapOptions{});
        VirtAddr sparse = alignUp(region.start, 1ull << 30) +
                          static_cast<VirtAddr>(i) * (1ull << 30);
        kernel.munmap(proc, region.start, region.length);
        os::MmapOptions opts;
        opts.populate = false;
        (void)sparse;
        // Directly drive the fault path at a sparse address by mapping
        // a fresh region each time (the bump allocator spaces them).
        auto r2 = kernel.mmap(proc, PageSize,
                              os::MmapOptions{.populate = true});
        (void)r2;
    }

    driver::JobResult result;
    std::uint64_t local = 0;
    std::uint64_t remote = 0;
    for (int l = 1; l <= 4; ++l) {
        local += pm.ptPagesAt(0, l);
        remote += pm.ptPagesAt(1, l);
    }
    result.value("reserve_frames", static_cast<double>(reserve_frames));
    result.value("local_pt_pages", static_cast<double>(local));
    result.value("remote_pt_pages", static_cast<double>(remote));
    result.value("reserve_hits",
                 static_cast<double>(pm.stats(0).ptCacheHits));
    kernel.finalizeProcess(proc);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    driver::BenchSpec spec;
    spec.name = "abl_pt_page_cache";
    spec.title = "Ablation: per-socket PT page reserve under memory "
                 "pressure (socket 0 exhausted)";
    spec.registerJobs = [](driver::JobRegistry &registry) {
        for (std::uint64_t reserve : ReserveSizes) {
            registry.add("reserve/" + std::to_string(reserve),
                         [reserve] { return runWithReserve(reserve); });
        }
    };
    spec.emit = [](const std::vector<driver::JobResult> &results,
                   BenchReport &report) {
        std::printf("%-16s %10s %10s %12s\n", "reserve(frames)",
                    "local_pt", "remote_pt", "reserve_hits");
        std::size_t i = 0;
        for (std::uint64_t reserve : ReserveSizes) {
            const driver::JobResult &res = results[i++];
            std::printf("%-16llu %10.0f %10.0f %12.0f\n",
                        (unsigned long long)reserve,
                        res.valueOf("local_pt_pages"),
                        res.valueOf("remote_pt_pages"),
                        res.valueOf("reserve_hits"));
            BenchRun &run =
                report.addRun("reserve " + std::to_string(reserve));
            for (const auto &[key, value] : res.values)
                run.metric(key, value);
        }
        std::printf("\n(expected: without a reserve, page-tables spill "
                    "to the remote socket; with it they stay local and "
                    "reserve_hits > 0)\n");
    };
    return driver::benchMain(argc, argv, spec);
}
