/**
 * @file
 * Ablation (§5.1): the per-socket page-table reserve cache. Strict
 * page-table allocation on a memory-exhausted socket fails without the
 * reserve and silently spills page-tables to other sockets (re-creating
 * the remote-walk problem); with the sysctl-sized reserve, allocations
 * stay local until the reserve drains.
 */

#include "bench/harness.h"

using namespace mitosim;
using namespace mitosim::bench;

namespace
{

struct Outcome
{
    std::uint64_t localPt = 0;
    std::uint64_t remotePt = 0;
    std::uint64_t cacheHits = 0;
};

Outcome
runWithReserve(std::uint64_t reserve_frames)
{
    sim::MachineConfig mc;
    mc.topo.numSockets = 2;
    mc.topo.coresPerSocket = 1;
    mc.topo.memPerSocket = 32ull << 20;
    sim::Machine machine(mc);
    core::MitosisBackend backend(machine.physmem());
    os::Kernel kernel(machine, backend);
    auto &pm = machine.physmem();

    pm.setPtCacheTarget(0, reserve_frames);

    os::Process &proc = kernel.createProcess("pressure", 0);
    kernel.setDataPolicy(proc, os::DataPolicy::Fixed, 0);
    kernel.setPtPlacement(proc, pt::PtPlacement::Fixed, 0);

    // Fill socket 0 almost completely with data, then keep mapping
    // sparse regions (each needing fresh page-table pages).
    std::uint64_t bulk = pm.freeFrames(0) - 64;
    kernel.mmap(proc, bulk * PageSize, os::MmapOptions{.populate = true});

    for (int i = 0; i < 48; ++i) {
        // One page in its own 1 GiB-aligned slice: needs new L2+L1 (and
        // sometimes L3) page-table pages every time.
        auto region = kernel.mmap(proc, PageSize, os::MmapOptions{});
        VirtAddr sparse = alignUp(region.start, 1ull << 30) +
                          static_cast<VirtAddr>(i) * (1ull << 30);
        kernel.munmap(proc, region.start, region.length);
        os::MmapOptions opts;
        opts.populate = false;
        (void)sparse;
        // Directly drive the fault path at a sparse address by mapping
        // a fresh region each time (the bump allocator spaces them).
        auto r2 = kernel.mmap(proc, PageSize,
                              os::MmapOptions{.populate = true});
        (void)r2;
    }

    Outcome out;
    for (int l = 1; l <= 4; ++l) {
        out.localPt += pm.ptPagesAt(0, l);
        out.remotePt += pm.ptPagesAt(1, l);
    }
    out.cacheHits = pm.stats(0).ptCacheHits;
    kernel.destroyProcess(proc);
    return out;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    printTitle("Ablation: per-socket PT page reserve under memory "
               "pressure (socket 0 exhausted)");
    BenchReport report("abl_pt_page_cache");

    std::printf("%-16s %10s %10s %12s\n", "reserve(frames)", "local_pt",
                "remote_pt", "reserve_hits");
    for (std::uint64_t reserve : {0ull, 16ull, 64ull}) {
        Outcome out = runWithReserve(reserve);
        std::printf("%-16llu %10llu %10llu %12llu\n",
                    (unsigned long long)reserve,
                    (unsigned long long)out.localPt,
                    (unsigned long long)out.remotePt,
                    (unsigned long long)out.cacheHits);
        report.addRun("reserve " + std::to_string(reserve))
            .metric("reserve_frames", static_cast<double>(reserve))
            .metric("local_pt_pages", static_cast<double>(out.localPt))
            .metric("remote_pt_pages",
                    static_cast<double>(out.remotePt))
            .metric("reserve_hits", static_cast<double>(out.cacheHits));
    }
    std::printf("\n(expected: without a reserve, page-tables spill to "
                "the remote socket; with it they stay local and "
                "reserve_hits > 0)\n");
    writeReport(report);
    return 0;
}
