/**
 * @file
 * Page-table placement inspector — the example equivalent of the paper's
 * analysis kernel module (§3.1): run any registered workload, then dump
 * the per-level / per-socket page-table distribution (Figure 3 format)
 * and the remote-leaf-PTE share each socket observes (Figure 4 metric),
 * before and after replication.
 *
 *   $ ./examples/pagetable_inspector [workload] [footprint_mb]
 *   $ ./examples/pagetable_inspector canneal 256
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/analysis/pt_dump.h"
#include "src/core/mitosis.h"
#include "src/os/exec_context.h"
#include "src/os/kernel.h"
#include "src/sim/machine.h"
#include "src/workloads/workload.h"

using namespace mitosim;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "memcached";
    std::uint64_t footprint_mb =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 128;

    sim::MachineConfig config;
    config.topo.memPerSocket = 1ull << 30;
    config.topo.coresPerSocket = 2;
    sim::Machine machine(config);
    core::MitosisBackend mitosis(machine.physmem());
    os::Kernel kernel(machine, mitosis);

    os::Process &proc = kernel.createProcess(workload, 0);
    os::ExecContext ctx(kernel, proc);
    for (SocketId s = 0; s < machine.numSockets(); ++s)
        ctx.addThread(s);

    workloads::WorkloadParams params;
    params.footprint = footprint_mb << 20;
    auto w = workloads::makeWorkload(workload, params);
    w->setup(ctx);
    workloads::runInterleaved(ctx, *w, 2000);

    analysis::PtAnalyzer analyzer(machine.physmem(), kernel.ptOps());

    std::printf("== %s, %llu MiB, first-touch, no replication ==\n",
                workload.c_str(), (unsigned long long)footprint_mb);
    auto snap = analyzer.snapshot(proc.roots());
    std::printf("%s", snap.str().c_str());
    std::printf("remote leaf PTEs per observing socket:");
    for (SocketId s = 0; s < machine.numSockets(); ++s)
        std::printf(" %5.1f%%", 100.0 * snap.remoteLeafFractionFrom(s));
    std::printf("\n\n");

    mitosis.setReplicationMask(proc.roots(), proc.id(),
                               SocketMask::all(machine.numSockets()));
    kernel.reloadContexts(proc);

    std::printf("== after numa_set_pgtable_replication_mask(all) ==\n");
    for (SocketId s = 0; s < machine.numSockets(); ++s) {
        auto local = analyzer.snapshotFor(proc.roots(), s);
        std::printf("socket %d walks a tree with %5.1f%% remote leaf "
                    "PTEs (%llu leaf PTEs local)\n",
                    s, 100.0 * local.remoteLeafFractionFrom(s),
                    (unsigned long long)local.leafPtesOn(s));
    }

    kernel.destroyProcess(proc);
    return 0;
}
