/**
 * @file
 * Quickstart: build a simulated 4-socket machine, boot the kernel with
 * the Mitosis backend, run a small workload, and turn page-table
 * replication on to see remote page-walk traffic disappear.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "src/analysis/pt_dump.h"
#include "src/core/mitosis.h"
#include "src/os/exec_context.h"
#include "src/os/kernel.h"
#include "src/sim/machine.h"
#include "src/workloads/workload.h"

using namespace mitosim;

int
main()
{
    // 1. The hardware: 4 sockets, paper-calibrated DRAM latencies
    //    (280 cycles local / 580 remote), per-socket L3, per-core TLBs.
    sim::MachineConfig config;
    config.topo.numSockets = 4;
    config.topo.coresPerSocket = 2;
    config.topo.memPerSocket = 512ull << 20;
    sim::Machine machine(config);

    // 2. The software: a kernel wired to the Mitosis PV-Ops backend.
    //    (Use pvops::NativeBackend instead for a stock kernel.)
    core::MitosisBackend mitosis(machine.physmem());
    os::Kernel kernel(machine, mitosis);

    // 3. A process with one thread per socket.
    os::Process &proc = kernel.createProcess("quickstart", 0);
    os::ExecContext ctx(kernel, proc);
    for (SocketId s = 0; s < machine.numSockets(); ++s)
        ctx.addThread(s);

    // 4. A workload: GUPS-style random updates over 64 MiB.
    workloads::WorkloadParams params;
    params.footprint = 64ull << 20;
    auto gups = workloads::makeWorkload("gups", params);
    gups->setup(ctx);

    // 5. Run without replication and look at the walker's counters.
    ctx.resetCounters();
    workloads::runInterleaved(ctx, *gups, 20000);
    auto before = ctx.totals();
    std::printf("without Mitosis: %llu cycles, %.0f%% of page-walk DRAM "
                "refs remote\n",
                (unsigned long long)ctx.runtime(),
                100.0 * before.remotePtFraction());

    // 6. numactl --pgtablerepl=all equivalent: replicate the page-table
    //    onto every socket, reload CR3s, run again.
    mitosis.setReplicationMask(proc.roots(), proc.id(),
                               SocketMask::all(machine.numSockets()));
    kernel.reloadContexts(proc);

    ctx.resetCounters();
    workloads::runInterleaved(ctx, *gups, 20000);
    auto after = ctx.totals();
    std::printf("with Mitosis:    %llu cycles, %.0f%% of page-walk DRAM "
                "refs remote\n",
                (unsigned long long)ctx.runtime(),
                100.0 * after.remotePtFraction());
    std::printf("replica pages created: %llu (memory overhead of %.2f%%)\n",
                (unsigned long long)mitosis.stats().replicaPagesCreated,
                100.0 * (analysis::replicationMemOverhead(
                             params.footprint, machine.numSockets()) -
                         1.0));

    kernel.destroyProcess(proc);
    return 0;
}
