/**
 * @file
 * Workload-migration scenario walkthrough (paper §3.2 / §8.2).
 *
 * A database-style workload (BTree index probes) starts on socket 0.
 * The scheduler consolidates it onto socket 1 — stock kernels migrate
 * the *data* but strand the page-tables, so every TLB miss crosses the
 * interconnect. The example contrasts three kernels:
 *
 *   1. native           — page-tables left behind after migration
 *   2. mitosis (off)    — Mitosis compiled in, migration disabled
 *   3. mitosis (on)     — page-tables migrate with the process (§5.5)
 *
 *   $ ./examples/workload_migration
 */

#include <cstdio>

#include "src/core/mitosis.h"
#include "src/os/exec_context.h"
#include "src/os/kernel.h"
#include "src/pvops/native_backend.h"
#include "src/sim/machine.h"
#include "src/workloads/workload.h"

using namespace mitosim;

namespace
{

struct Result
{
    Cycles runtime;
    double remotePt;
};

Result
run(pvops::PvOps &backend, bool interfere_on_source)
{
    sim::MachineConfig config;
    config.topo.memPerSocket = 512ull << 20;
    config.topo.coresPerSocket = 2;
    config.hier.l3BytesPerSocket = 64ull << 10;
    sim::Machine machine(config);
    // The backend is constructed against a different PhysicalMemory in
    // main(); rebuild a kernel-local one to keep the example simple.
    core::MitosisBackend mitosis(machine.physmem());
    pvops::NativeBackend native(machine.physmem());
    bool use_mitosis = std::string(backend.name()) == "mitosis";
    os::Kernel kernel(machine,
                      use_mitosis ? static_cast<pvops::PvOps &>(mitosis)
                                  : static_cast<pvops::PvOps &>(native));

    os::Process &proc = kernel.createProcess("btree", 0);
    os::ExecContext ctx(kernel, proc);
    ctx.addThread(0);

    workloads::WorkloadParams params;
    params.footprint = 128ull << 20;
    auto w = workloads::makeWorkload("btree", params);
    w->setup(ctx);

    // The scheduler decides to consolidate: move the process (and its
    // data, as NUMA balancing eventually would) to socket 1.
    if (!kernel.migrateProcess(proc, 1, /*migrate_data=*/true))
        fatal("socket 1 cannot seat the process");

    // Meanwhile another tenant starts hammering socket 0's memory.
    if (interfere_on_source)
        machine.topology().addInterferer(0);

    workloads::runInterleaved(ctx, *w, 3000); // warm
    ctx.resetCounters();
    workloads::runInterleaved(ctx, *w, 10000);

    Result r{ctx.runtime(), ctx.totals().remotePtFraction()};
    if (interfere_on_source)
        machine.topology().removeInterferer(0);
    kernel.destroyProcess(proc);
    return r;
}

} // namespace

int
main()
{
    // Dummy instances only used to select the backend by name.
    sim::Machine probe(sim::MachineConfig::tiny());
    pvops::NativeBackend native(probe.physmem());
    core::MitosisBackend mitosis(probe.physmem());

    std::printf("BTree, migrated socket 0 -> 1, interference on the old "
                "socket:\n\n");

    Result stock = run(native, true);
    std::printf("stock kernel   : %10llu cycles  (%.0f%% of walk DRAM "
                "refs remote — page-tables stranded)\n",
                (unsigned long long)stock.runtime,
                100.0 * stock.remotePt);

    Result moved = run(mitosis, true);
    std::printf("mitosis kernel : %10llu cycles  (%.0f%% remote — "
                "page-tables migrated with the process)\n",
                (unsigned long long)moved.runtime,
                100.0 * moved.remotePt);

    std::printf("\nspeedup from page-table migration: %.2fx\n",
                static_cast<double>(stock.runtime) /
                    static_cast<double>(moved.runtime));
    return 0;
}
