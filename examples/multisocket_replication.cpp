/**
 * @file
 * Multi-socket scenario walkthrough (paper §3.1 / §8.1).
 *
 * A key-value store (Memcached-style) serves requests from threads on
 * all four sockets. First-touch placement scatters both data *and*
 * page-table pages, so most TLB misses walk remote page-tables. The
 * example sweeps the replication mask from no replicas to all four
 * sockets and prints the effect on walk locality and runtime — the §6
 * policy surface in action (numactl --pgtablerepl=<sockets>).
 *
 *   $ ./examples/multisocket_replication
 */

#include <cstdio>

#include "src/core/mitosis.h"
#include "src/os/exec_context.h"
#include "src/os/kernel.h"
#include "src/sim/machine.h"
#include "src/workloads/workload.h"

using namespace mitosim;

int
main()
{
    sim::MachineConfig config;
    config.topo.memPerSocket = 512ull << 20;
    config.topo.coresPerSocket = 2;
    config.hier.l3BytesPerSocket = 64ull << 10;
    sim::Machine machine(config);
    core::MitosisBackend mitosis(machine.physmem());
    os::Kernel kernel(machine, mitosis);

    os::Process &proc = kernel.createProcess("memcached", 0);
    os::ExecContext ctx(kernel, proc);
    for (SocketId s = 0; s < machine.numSockets(); ++s)
        ctx.addThread(s);

    workloads::WorkloadParams params;
    params.footprint = 128ull << 20;
    auto w = workloads::makeWorkload("memcached", params);
    w->setup(ctx);

    std::printf("memcached on 4 sockets, replication mask sweep:\n\n");
    std::printf("%-12s %14s %12s %12s\n", "mask", "runtime", "walk_frac",
                "remote_pt");

    Cycles base = 0;
    const SocketMask masks[] = {
        SocketMask::none(),
        SocketMask::single(0),
        SocketMask::all(2),
        SocketMask::all(4),
    };
    for (const SocketMask &mask : masks) {
        mitosis.setReplicationMask(proc.roots(), proc.id(), mask);
        kernel.reloadContexts(proc);
        workloads::runInterleaved(ctx, *w, 3000); // warm
        ctx.resetCounters();
        workloads::runInterleaved(ctx, *w, 10000);
        auto totals = ctx.totals();
        if (base == 0)
            base = ctx.runtime();
        std::printf("%-12s %10llu cyc %11.0f%% %11.0f%%   (%.2fx)\n",
                    mask.empty() ? "{} (off)" : mask.str().c_str(),
                    (unsigned long long)ctx.runtime(),
                    100.0 * totals.walkFraction(),
                    100.0 * totals.remotePtFraction(),
                    static_cast<double>(base) /
                        static_cast<double>(ctx.runtime()));
    }

    std::printf("\nreplica pages now live: created %llu, freed %llu\n",
                (unsigned long long)mitosis.stats().replicaPagesCreated,
                (unsigned long long)mitosis.stats().replicaPagesFreed);
    kernel.destroyProcess(proc);
    return 0;
}
