/**
 * @file
 * Unit tests for the two-level TLB: hit/miss paths, size classes,
 * promotion, invalidation, LRU behaviour and stats.
 */

#include <gtest/gtest.h>

#include "src/tlb/tlb.h"

namespace mitosim::tlb
{
namespace
{

TlbEntry
entry4K(Pfn pfn, bool writable = true)
{
    TlbEntry e;
    e.pfn = pfn;
    e.writable = writable;
    e.size = PageSizeKind::Base4K;
    return e;
}

TlbEntry
entry2M(Pfn pfn)
{
    TlbEntry e;
    e.pfn = pfn;
    e.writable = true;
    e.size = PageSizeKind::Large2M;
    return e;
}

TEST(Tlb, MissOnEmpty)
{
    TwoLevelTlb tlb;
    auto res = tlb.lookup(0x1000);
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, InsertThenL1Hit)
{
    TwoLevelTlb tlb;
    tlb.insert(0x1000, entry4K(42));
    auto res = tlb.lookup(0x1abc); // same page, different offset
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.hitLevel, 1);
    EXPECT_EQ(res.entry.pfn, 42u);
    EXPECT_EQ(res.latency, TlbConfig{}.l1HitLatency);
}

TEST(Tlb, DifferentPageMisses)
{
    TwoLevelTlb tlb;
    tlb.insert(0x1000, entry4K(42));
    EXPECT_FALSE(tlb.lookup(0x2000).hit);
}

TEST(Tlb, L2HitAfterL1Eviction)
{
    TlbConfig cfg;
    cfg.l1Entries4K = 8;
    cfg.l1Ways = 4;
    cfg.l2Entries = 1024;
    TwoLevelTlb tlb(cfg);
    // Fill far beyond L1 capacity; early pages remain in L2.
    for (VirtAddr va = 0; va < 64 * PageSize; va += PageSize)
        tlb.insert(va, entry4K(va >> PageShift));
    auto res = tlb.lookup(0);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.hitLevel, 2);
    EXPECT_EQ(res.latency, cfg.l2HitLatency);
    // The L2 hit promotes to L1: the next lookup is an L1 hit.
    auto res2 = tlb.lookup(0);
    EXPECT_EQ(res2.hitLevel, 1);
}

TEST(Tlb, CapacityEvictionProducesMisses)
{
    TlbConfig cfg;
    cfg.l1Entries4K = 8;
    cfg.l1Ways = 4;
    cfg.l2Entries = 16;
    cfg.l2Ways = 4;
    TwoLevelTlb tlb(cfg);
    for (VirtAddr va = 0; va < 1024 * PageSize; va += PageSize)
        tlb.insert(va, entry4K(va >> PageShift));
    // Old translations must be long gone.
    EXPECT_FALSE(tlb.lookup(0).hit);
}

TEST(Tlb, LargePageCoversWholeRange)
{
    TwoLevelTlb tlb;
    tlb.insert(0x40000000ull, entry2M(512));
    for (VirtAddr off : {0ull, 4096ull, 1024 * 1024ull, 2097151ull}) {
        auto res = tlb.lookup(0x40000000ull + off);
        EXPECT_TRUE(res.hit) << "offset " << off;
        EXPECT_EQ(res.entry.size, PageSizeKind::Large2M);
    }
    EXPECT_FALSE(tlb.lookup(0x40000000ull + LargePageSize).hit);
}

TEST(Tlb, SizeClassesDoNotCollide)
{
    TwoLevelTlb tlb;
    // A 2M entry and a 4K entry whose tags would alias numerically.
    tlb.insert(0x40000000ull, entry2M(1000));
    tlb.insert(0x40000000ull >> 9, entry4K(2000));
    auto large = tlb.lookup(0x40000000ull + 0x3000);
    EXPECT_TRUE(large.hit);
    EXPECT_EQ(large.entry.pfn, 1000u);
}

TEST(Tlb, InvalidatePageDropsBothLevels)
{
    TwoLevelTlb tlb;
    tlb.insert(0x5000, entry4K(5));
    tlb.invalidatePage(0x5000);
    EXPECT_FALSE(tlb.lookup(0x5000).hit);
    EXPECT_EQ(tlb.stats().singleInvalidations, 1u);
}

TEST(Tlb, InvalidateLargePage)
{
    TwoLevelTlb tlb;
    tlb.insert(0x40000000ull, entry2M(7));
    tlb.invalidatePage(0x40000000ull + 0x1000);
    EXPECT_FALSE(tlb.lookup(0x40000000ull).hit);
}

TEST(Tlb, FlushAllEmptiesEverything)
{
    TwoLevelTlb tlb;
    for (VirtAddr va = 0; va < 32 * PageSize; va += PageSize)
        tlb.insert(va, entry4K(va >> PageShift));
    tlb.flushAll();
    EXPECT_FALSE(tlb.lookup(0).hit);
    EXPECT_EQ(tlb.stats().flushes, 1u);
}

TEST(Tlb, WritableFlagIsPreserved)
{
    TwoLevelTlb tlb;
    tlb.insert(0x1000, entry4K(1, false));
    auto res = tlb.lookup(0x1000);
    EXPECT_TRUE(res.hit);
    EXPECT_FALSE(res.entry.writable);
}

TEST(Tlb, StatsAccumulateAndReset)
{
    TwoLevelTlb tlb;
    tlb.insert(0x1000, entry4K(1));
    tlb.lookup(0x1000);
    tlb.lookup(0x9000);
    EXPECT_EQ(tlb.stats().l1Hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 1u);
    EXPECT_EQ(tlb.stats().lookups(), 2u);
    EXPECT_NEAR(tlb.stats().missRate(), 0.5, 1e-9);
    tlb.resetStats();
    EXPECT_EQ(tlb.stats().lookups(), 0u);
}

TEST(Tlb, LruKeepsHotEntryInSet)
{
    TlbConfig cfg;
    cfg.l1Entries4K = 4;
    cfg.l1Ways = 4; // one set
    cfg.l2Entries = 8;
    cfg.l2Ways = 8; // one set
    TwoLevelTlb tlb(cfg);
    tlb.insert(0x0000, entry4K(0));
    // Keep page 0 hot while streaming many others through.
    for (int i = 1; i <= 6; ++i) {
        tlb.lookup(0x0000);
        tlb.insert(static_cast<VirtAddr>(i) * PageSize,
                   entry4K(static_cast<Pfn>(i)));
    }
    EXPECT_TRUE(tlb.lookup(0x0000).hit);
}

TEST(Tlb, PaperSizesAreDefault)
{
    // §8: "per-core two-level TLB with 64+1024 entries".
    TlbConfig cfg;
    EXPECT_EQ(cfg.l1Entries4K, 64u);
    EXPECT_EQ(cfg.l2Entries, 1024u);
}

} // namespace
} // namespace mitosim::tlb
